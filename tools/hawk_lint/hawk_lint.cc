// hawk-lint: the repo's determinism & invariant static-analysis pass.
//
// A dependency-free C++17 token/decl-level scanner over src/, bench/,
// examples/ and tests/ (no LLVM dev dependency, so it builds everywhere CI
// does). Every rule encodes an invariant this repo has already paid to
// learn dynamically — the PR/incident behind each one is listed in
// docs/development.md#hawk-lint.
//
//   HL001  no positional brace-init of wire/event message structs
//   HL002  no iteration over unordered containers in determinism dirs
//   HL003  no wall-clock reads or rogue RNG outside allowlisted dirs
//          (tools/hawk_lint/wallclock_allowlist.txt is the single source
//          for the permitted directories)
//   HL004  no float/double accumulation into RunResult/RunCounters fields
//          without an `ordered-reduction` comment
//   HL005  every RunCounters field asserted in tests/ and documented in
//          docs/ (cross-file)
//   HL006  no CHECK-free discard of a Status/StatusOr return value
//
// Suppression syntax (the reason is mandatory; HL000 fires without one):
//   ... offending code ...  // hawk-lint: allow(HL003) measuring real RTT
// or, on its own line, suppressing the next line:
//   // hawk-lint: allow(HL002) order folded through a sort below
//
// Usage:
//   hawk_lint [--root=DIR] [--allowlist=FILE] [--list-rules] [files...]
//
// With no positional files the tree under --root (default ".") is scanned:
// src/, bench/, examples/, tests/ (tests/lint_fixtures/ excluded — the
// fixtures deliberately violate the rules) plus docs/*.md for the HL005
// cross-check. Explicit file arguments scan just those files (HL005 is
// skipped: it needs the whole tree). Exit status is 1 iff any finding
// survives suppression.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Rule table.
// ---------------------------------------------------------------------------

struct RuleInfo {
  const char* id;
  const char* summary;
};

constexpr RuleInfo kRules[] = {
    {"HL000", "malformed hawk-lint suppression (unknown rule or missing reason)"},
    {"HL001", "positional brace-init of a wire/event message struct"},
    {"HL002", "iteration over an unordered container in determinism-critical code"},
    {"HL003", "wall-clock read or RNG outside the allowlisted directories"},
    {"HL004", "floating-point accumulation into a RunResult/RunCounters field"},
    {"HL005", "RunCounters field missing from test assertions or the docs table"},
    {"HL006", "discarded Status/StatusOr return value"},
};

bool KnownRule(const std::string& id) {
  for (const RuleInfo& r : kRules) {
    if (id == r.id) {
      return true;
    }
  }
  return false;
}

// Message/event structs whose fields have already been silently swapped once
// (the PR 2 SimEvent positional brace-init incident): construction must go
// through named factories or per-field assignment, never positional braces.
const std::set<std::string>& MessageStructs() {
  static const std::set<std::string> kSet = {
      "SimEvent",       "ProbeMsg",        "TaskMsg",         "JobRefMsg",
      "JobSubmitMsg",   "StealRequestMsg", "StealResponseMsg", "HeartbeatMsg",
  };
  return kSet;
}

// Directories whose code feeds the deterministic simulation result. HL002
// and HL004 apply only here.
const std::vector<std::string>& DeterminismDirs() {
  static const std::vector<std::string> kDirs = {"src/sim", "src/scheduler", "src/core",
                                                 "src/cluster"};
  return kDirs;
}

// Built-in fallback for the HL003 allowlist when the config file is absent
// (e.g. fixture mini-trees). The real tree's single source of truth is
// tools/hawk_lint/wallclock_allowlist.txt.
const std::vector<std::string>& DefaultWallclockAllow() {
  static const std::vector<std::string> kDirs = {"src/runtime", "src/rpc"};
  return kDirs;
}

// ---------------------------------------------------------------------------
// Source model: lines, comments, suppressions, tokens.
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;
  bool is_float_literal = false;
};

struct Suppression {
  std::string rule;
  int line = 0;       // Line the comment sits on.
  bool own_line = false;  // Comment-only line: also covers line + 1.
};

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct SourceFile {
  std::string rel;  // Root-relative, '/'-separated.
  std::vector<std::string> lines;
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  // line -> concatenated comment text on that line (suppression + marker
  // comments like `ordered-reduction` are looked up here).
  std::map<int, std::string> comments;
};

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

bool IsIdent(const std::string& t) { return !t.empty() && IsIdentStart(t[0]); }

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// Parses `hawk-lint: allow(RULE) reason` out of a comment. Emits HL000 for
// malformed or reasonless suppressions (which are then NOT honored).
void ParseSuppression(SourceFile& f, const std::string& comment, int line, bool own_line,
                      std::vector<Finding>* findings) {
  const size_t tag = comment.find("hawk-lint:");
  if (tag == std::string::npos) {
    return;
  }
  const size_t allow = comment.find("allow(", tag);
  if (allow == std::string::npos) {
    findings->push_back({f.rel, line, "HL000",
                         "malformed suppression: expected 'hawk-lint: allow(<rule>) <reason>'"});
    return;
  }
  const size_t open = allow + std::strlen("allow(");
  const size_t close = comment.find(')', open);
  if (close == std::string::npos) {
    findings->push_back({f.rel, line, "HL000", "malformed suppression: missing ')'"});
    return;
  }
  const std::string rule = Trim(comment.substr(open, close - open));
  if (!KnownRule(rule) || rule == "HL000") {
    findings->push_back(
        {f.rel, line, "HL000", "suppression names unknown rule '" + rule + "'"});
    return;
  }
  const std::string reason = Trim(comment.substr(close + 1));
  if (reason.empty()) {
    findings->push_back({f.rel, line, "HL000",
                         "suppression of " + rule +
                             " carries no reason — every allow() must say why"});
    return;
  }
  f.suppressions.push_back({rule, line, own_line});
}

// Tokenizes C++ source: skips comments (recording their text per line) and
// string/char literal contents; splits identifiers, numeric literals (with
// a float flag) and a small set of multi-char operators.
void Tokenize(SourceFile& f, const std::string& text, std::vector<Finding>* findings) {
  static const char* kMultiOps[] = {"::", "->", "+=", "-=", "<<", ">>",
                                    "==", "!=", "<=", ">=", "&&", "||"};
  int line = 1;
  size_t i = 0;
  const size_t n = text.size();
  size_t line_start = 0;

  auto record_comment = [&](int at_line, const std::string& body, bool own_line) {
    std::string& slot = f.comments[at_line];
    if (!slot.empty()) {
      slot += ' ';
    }
    slot += body;
    ParseSuppression(f, body, at_line, own_line, findings);
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const size_t end = text.find('\n', i);
      const std::string body = text.substr(i + 2, (end == std::string::npos ? n : end) - i - 2);
      const bool own_line =
          Trim(text.substr(line_start, i - line_start)).empty();
      record_comment(line, body, own_line);
      i = (end == std::string::npos) ? n : end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const size_t end = text.find("*/", i + 2);
      const size_t stop = (end == std::string::npos) ? n : end;
      const bool own_line = Trim(text.substr(line_start, i - line_start)).empty();
      record_comment(line, text.substr(i + 2, stop - i - 2), own_line);
      for (size_t k = i; k < stop; ++k) {
        if (text[k] == '\n') {
          ++line;
          line_start = k + 1;
        }
      }
      i = (end == std::string::npos) ? n : end + 2;
      continue;
    }
    // Raw string literal (basic R"delim(...)delim" support).
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      const size_t paren = text.find('(', i + 2);
      if (paren != std::string::npos) {
        const std::string delim = text.substr(i + 2, paren - i - 2);
        const std::string closer = ")" + delim + "\"";
        const size_t end = text.find(closer, paren + 1);
        const size_t stop = (end == std::string::npos) ? n : end + closer.size();
        for (size_t k = i; k < stop; ++k) {
          if (text[k] == '\n') {
            ++line;
            line_start = k + 1;
          }
        }
        i = stop;
        continue;
      }
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) {
          ++i;
        }
        if (text[i] == '\n') {
          ++line;
          line_start = i + 1;
        }
        ++i;
      }
      ++i;  // Closing quote.
      continue;
    }
    // Identifier.
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(text[j])) {
        ++j;
      }
      f.tokens.push_back({text.substr(i, j - i), line, false});
      i = j;
      continue;
    }
    // Numeric literal (loose: handles 1'000, 0x1F, 1e-3, 2.5f).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t j = i;
      bool is_float = false;
      const bool hex = (c == '0' && i + 1 < n && (text[i + 1] == 'x' || text[i + 1] == 'X'));
      while (j < n) {
        const char d = text[j];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '\'' || d == '.') {
          if (d == '.' || (!hex && (d == 'e' || d == 'E' || d == 'f' || d == 'F'))) {
            is_float = true;
          }
          ++j;
          continue;
        }
        if ((d == '+' || d == '-') && j > i &&
            (text[j - 1] == 'e' || text[j - 1] == 'E' || text[j - 1] == 'p' ||
             text[j - 1] == 'P')) {
          ++j;
          continue;
        }
        break;
      }
      f.tokens.push_back({text.substr(i, j - i), line, is_float});
      i = j;
      continue;
    }
    // Multi-char operator.
    bool matched = false;
    for (const char* op : kMultiOps) {
      const size_t len = std::strlen(op);
      if (text.compare(i, len, op) == 0) {
        f.tokens.push_back({op, line, false});
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) {
      continue;
    }
    f.tokens.push_back({std::string(1, c), line, false});
    ++i;
  }
}

// ---------------------------------------------------------------------------
// Cross-file project context.
// ---------------------------------------------------------------------------

struct Project {
  std::vector<std::string> wallclock_allow;  // HL003-exempt dir prefixes.
  std::set<std::string> unordered_names;     // Variables declared as unordered containers.
  std::set<std::string> statusor_fns;        // Functions returning Status/StatusOr.
  // RunCounters fields: name -> declaration line in the counters header.
  std::vector<std::pair<std::string, int>> counter_field_lines;
  std::set<std::string> counter_fields;
  std::string counters_file;
  std::set<std::string> asserted_idents;  // Identifiers inside test assertion macros.
  std::string docs_text;                  // Concatenated docs/*.md + README.md.
};

bool HasDirPrefix(const std::string& rel, const std::string& prefix) {
  return rel.size() > prefix.size() && rel.compare(0, prefix.size(), prefix) == 0 &&
         rel[prefix.size()] == '/';
}

bool InAnyDir(const std::string& rel, const std::vector<std::string>& dirs) {
  for (const std::string& d : dirs) {
    if (HasDirPrefix(rel, d)) {
      return true;
    }
  }
  return false;
}

bool WordInText(const std::string& text, const std::string& word) {
  size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) {
      return true;
    }
    pos = end;
  }
  return false;
}

// Skips a balanced template-argument list starting at tokens[i] == "<".
// Returns the index one past the closing ">". Treats ">>" as two closes.
size_t SkipTemplateArgs(const std::vector<Token>& t, size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (t[i].text == "<") {
      ++depth;
    } else if (t[i].text == ">") {
      if (--depth == 0) {
        return i + 1;
      }
    } else if (t[i].text == ">>") {
      depth -= 2;
      if (depth <= 0) {
        return i + 1;
      }
    } else if (t[i].text == ";" || t[i].text == "{") {
      break;  // Not template args after all (comparison expression).
    }
  }
  return i;
}

// Collection pass: unordered-container variable names (any scanned file) and
// Status/StatusOr-returning function names (src/ only — the library API).
void Collect(const SourceFile& f, Project* p) {
  const std::vector<Token>& t = f.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    const std::string& tok = t[i].text;
    if (tok == "unordered_map" || tok == "unordered_set" || tok == "unordered_multimap" ||
        tok == "unordered_multiset") {
      size_t j = i + 1;
      if (j < t.size() && t[j].text == "<") {
        j = SkipTemplateArgs(t, j);
      }
      while (j < t.size() &&
             (t[j].text == "&" || t[j].text == "*" || t[j].text == "const")) {
        ++j;
      }
      if (j < t.size() && IsIdent(t[j].text)) {
        p->unordered_names.insert(t[j].text);
      }
      continue;
    }
    if ((tok == "Status" || tok == "StatusOr") &&
        (f.rel.rfind("src/", 0) == 0 || f.rel.find("/src/") != std::string::npos)) {
      size_t j = i + 1;
      if (j < t.size() && t[j].text == "<") {
        j = SkipTemplateArgs(t, j);
      }
      while (j < t.size() && (t[j].text == "&" || t[j].text == "*")) {
        ++j;
      }
      if (j + 1 < t.size() && IsIdent(t[j].text) && t[j + 1].text == "(") {
        p->statusor_fns.insert(t[j].text);
      }
    }
  }
}

// Parses the RunCounters struct's field names out of the counters header.
void ParseCounterFields(const SourceFile& f, Project* p) {
  const std::vector<Token>& t = f.tokens;
  for (size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].text != "RunCounters" || t[i - 1].text != "struct" || t[i + 1].text != "{") {
      continue;
    }
    p->counters_file = f.rel;
    size_t j = i + 2;
    int depth = 1;
    std::vector<std::string> decl;  // Tokens of the current declaration.
    int decl_line = 0;
    while (j < t.size() && depth > 0) {
      const std::string& tok = t[j].text;
      if (tok == "{") {
        ++depth;
      } else if (tok == "}") {
        --depth;
      }
      if (depth == 1 && tok != "{" && tok != "}") {
        if (tok == ";") {
          // A data member declaration has no parens (functions do).
          if (!decl.empty() &&
              std::find(decl.begin(), decl.end(), "(") == decl.end()) {
            auto eq = std::find(decl.begin(), decl.end(), "=");
            auto end = (eq != decl.end()) ? eq : decl.end();
            for (auto it = end; it != decl.begin();) {
              --it;
              if (IsIdent(*it)) {
                p->counter_field_lines.emplace_back(*it, decl_line);
                p->counter_fields.insert(*it);
                break;
              }
            }
          }
          decl.clear();
        } else {
          if (decl.empty()) {
            decl_line = t[j].line;
          }
          decl.push_back(tok);
        }
      } else if (depth >= 2) {
        decl.clear();  // Inside a member function body: not a field.
      }
      ++j;
    }
    return;
  }
}

// Records every identifier appearing inside EXPECT_*/ASSERT_*/*CHECK*
// assertion macros of a test file (HL005's "asserted in tests" half).
void CollectAssertedIdents(const SourceFile& f, Project* p) {
  const std::vector<Token>& t = f.tokens;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    const std::string& tok = t[i].text;
    const bool is_assert = tok.rfind("EXPECT_", 0) == 0 || tok.rfind("ASSERT_", 0) == 0 ||
                           tok.find("CHECK") != std::string::npos;
    if (!is_assert || t[i + 1].text != "(") {
      continue;
    }
    int depth = 0;
    size_t j = i + 1;
    for (; j < t.size(); ++j) {
      if (t[j].text == "(") {
        ++depth;
      } else if (t[j].text == ")") {
        if (--depth == 0) {
          break;
        }
      } else if (IsIdent(t[j].text)) {
        p->asserted_idents.insert(t[j].text);
      }
    }
    i = j;
  }
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

// HL001: positional brace-init of a message/event struct. Empty braces
// (value-init) and designated initializers are fine; `Name{a, b, ...}` and
// `Name var{a, b, ...}` are not.
void RuleMessageBraceInit(const SourceFile& f, std::vector<Finding>* out) {
  const std::vector<Token>& t = f.tokens;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (MessageStructs().count(t[i].text) == 0) {
      continue;
    }
    if (i > 0 && (t[i - 1].text == "struct" || t[i - 1].text == "class")) {
      continue;  // The definition itself.
    }
    size_t brace = 0;
    if (t[i + 1].text == "{") {
      brace = i + 1;
    } else if (IsIdent(t[i + 1].text) && i + 2 < t.size() && t[i + 2].text == "{") {
      brace = i + 2;
    } else {
      continue;
    }
    if (brace + 1 >= t.size() || t[brace + 1].text == "}" || t[brace + 1].text == ".") {
      continue;  // Value-init or designated initializers.
    }
    out->push_back({f.rel, t[i].line, "HL001",
                    "positional brace-init of message struct '" + t[i].text +
                        "' — use its named factory or per-field assignment so fields "
                        "cannot be silently swapped (the PR 2 SimEvent incident)"});
  }
}

// HL002: iteration over unordered containers in determinism-critical dirs.
void RuleUnorderedIteration(const SourceFile& f, const Project& p,
                            std::vector<Finding>* out) {
  if (!InAnyDir(f.rel, DeterminismDirs())) {
    return;
  }
  const std::vector<Token>& t = f.tokens;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    // Range-for: `for ( ... : container )`.
    if (t[i].text == "for" && t[i + 1].text == "(") {
      int depth = 0;
      size_t colon = 0;
      size_t close = 0;
      for (size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(") {
          ++depth;
        } else if (t[j].text == ")") {
          if (--depth == 0) {
            close = j;
            break;
          }
        } else if (t[j].text == ":" && depth == 1 && colon == 0) {
          colon = j;
        }
      }
      if (colon != 0 && close != 0) {
        for (size_t j = colon + 1; j < close; ++j) {
          if (IsIdent(t[j].text) && p.unordered_names.count(t[j].text) != 0) {
            out->push_back(
                {f.rel, t[i].line, "HL002",
                 "range-for over unordered container '" + t[j].text +
                     "' in determinism-critical code — iteration order is "
                     "unspecified; iterate a sorted copy or an ordered container"});
            break;
          }
        }
      }
      continue;
    }
    // Explicit iteration start: `container.begin()`. Lone `.end()` calls are
    // fine — they anchor `find() != end()` membership checks, which are
    // order-independent.
    if (IsIdent(t[i].text) && p.unordered_names.count(t[i].text) != 0 &&
        (t[i + 1].text == "." || t[i + 1].text == "->") && i + 3 < t.size()) {
      const std::string& m = t[i + 2].text;
      if ((m == "begin" || m == "cbegin") && t[i + 3].text == "(") {
        out->push_back({f.rel, t[i].line, "HL002",
                        "iterator over unordered container '" + t[i].text +
                            "' in determinism-critical code — iteration order is "
                            "unspecified; iterate a sorted copy or an ordered container"});
      }
    }
  }
}

// HL003: wall-clock reads and rogue RNG outside the allowlisted dirs. All
// simulation time must flow through SimTime, all randomness through Rng.
void RuleWallClock(const SourceFile& f, const Project& p, std::vector<Finding>* out) {
  if (InAnyDir(f.rel, p.wallclock_allow)) {
    return;
  }
  static const std::set<std::string> kBadTypes = {
      "system_clock", "steady_clock",  "high_resolution_clock",
      "random_device", "mt19937",      "mt19937_64",
      "minstd_rand",   "minstd_rand0", "default_random_engine",
      "knuth_b",       "ranlux24",     "ranlux48"};
  static const std::set<std::string> kBadCalls = {
      "rand",  "srand",        "drand48",      "lrand48",     "random",
      "time",  "gettimeofday", "clock_gettime", "timespec_get", "clock"};
  const std::vector<Token>& t = f.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    const std::string& tok = t[i].text;
    if (kBadTypes.count(tok) != 0) {
      out->push_back({f.rel, t[i].line, "HL003",
                      "'" + tok +
                          "' outside the wall-clock allowlist — sim-visible time must "
                          "flow through SimTime and randomness through Rng (allowlist: "
                          "tools/hawk_lint/wallclock_allowlist.txt)"});
      continue;
    }
    if (kBadCalls.count(tok) != 0 && i + 1 < t.size() && t[i + 1].text == "(") {
      if (i > 0) {
        const std::string& prev = t[i - 1].text;
        if (prev == "." || prev == "->") {
          continue;  // Member call on some object; not the libc function.
        }
        if (prev == "::" && (i < 2 || t[i - 2].text != "std")) {
          continue;  // Qualified call into a project type.
        }
      }
      out->push_back({f.rel, t[i].line, "HL003",
                      "call to '" + tok +
                          "()' outside the wall-clock allowlist — sim-visible time must "
                          "flow through SimTime and randomness through Rng"});
    }
  }
}

// HL004: floating-point accumulation into RunResult/RunCounters fields.
// FP addition is order-dependent: a parallel or reordered reduction changes
// the bits. Accumulate integers, or document the fixed order with an
// `ordered-reduction` comment on the statement (or the line above).
void RuleFloatAccumulation(const SourceFile& f, const Project& p,
                           std::vector<Finding>* out) {
  if (!InAnyDir(f.rel, DeterminismDirs())) {
    return;
  }
  static const std::set<std::string> kResultFields = {"makespan_us", "total_busy_us",
                                                      "utilization_samples"};
  const std::vector<Token>& t = f.tokens;
  for (size_t i = 1; i < t.size(); ++i) {
    if (t[i].text != "+=" && t[i].text != "-=") {
      continue;
    }
    // LHS: walk back to the statement boundary; remember the trailing
    // identifier (the assigned field) and whether the chain mentions a
    // counters/result object.
    std::string lhs_field;
    bool counters_chain = false;
    for (size_t j = i; j-- > 0;) {
      const std::string& tok = t[j].text;
      if (tok == ";" || tok == "{" || tok == "}") {
        break;
      }
      if (IsIdent(tok)) {
        if (lhs_field.empty()) {
          lhs_field = tok;
        }
        if (tok == "counters" || tok == "result_" || tok == "result") {
          counters_chain = true;
        }
      }
    }
    const bool is_counter_field =
        p.counter_fields.count(lhs_field) != 0 || kResultFields.count(lhs_field) != 0;
    if (!is_counter_field && !counters_chain) {
      continue;
    }
    // RHS: scan to the end of the statement for floating-point signals.
    bool floaty = false;
    for (size_t j = i + 1; j < t.size() && t[j].text != ";"; ++j) {
      if (t[j].is_float_literal || t[j].text == "double" || t[j].text == "float") {
        floaty = true;
        break;
      }
    }
    if (!floaty) {
      continue;
    }
    const int line = t[i].line;
    auto has_marker = [&](int l) {
      auto it = f.comments.find(l);
      return it != f.comments.end() &&
             it->second.find("ordered-reduction") != std::string::npos;
    };
    if (has_marker(line) || has_marker(line - 1)) {
      continue;
    }
    out->push_back({f.rel, line, "HL004",
                    "floating-point accumulation into '" + lhs_field +
                        "' — FP addition is order-dependent; accumulate integers or "
                        "document the fixed order with an 'ordered-reduction' comment"});
  }
}

// HL006: a bare statement discarding a Status/StatusOr return value.
void RuleStatusDiscard(const SourceFile& f, const Project& p, std::vector<Finding>* out) {
  const std::vector<Token>& t = f.tokens;
  size_t stmt_start = 0;
  for (size_t i = 0; i < t.size(); ++i) {
    const std::string& tok = t[i].text;
    if (tok == "{" || tok == "}") {
      stmt_start = i + 1;
      continue;
    }
    if (tok != ";") {
      continue;
    }
    const size_t a = stmt_start;
    stmt_start = i + 1;
    if (i == a || t[i - 1].text != ")") {
      continue;  // Not a bare `call(...);` statement.
    }
    // Match the closing paren back to its opener.
    int depth = 0;
    size_t open = 0;
    bool found = false;
    for (size_t j = i; j-- > a;) {
      if (t[j].text == ")") {
        ++depth;
      } else if (t[j].text == "(") {
        if (--depth == 0) {
          open = j;
          found = true;
          break;
        }
      }
    }
    if (!found || open == a) {
      continue;
    }
    const size_t name_idx = open - 1;
    if (!IsIdent(t[name_idx].text) || p.statusor_fns.count(t[name_idx].text) == 0) {
      continue;
    }
    // Everything before the name must be a pure qualifier chain
    // (`obj.`, `ptr->`, `ns::`) — otherwise the value is consumed
    // (assignment, return, macro argument...).
    bool chain_ok = true;
    size_t j = a;
    while (j < name_idx) {
      if (!IsIdent(t[j].text)) {
        chain_ok = false;
        break;
      }
      ++j;
      if (j >= name_idx) {
        chain_ok = false;  // Two adjacent identifiers (e.g. `return Foo(...)`).
        break;
      }
      if (t[j].text != "::" && t[j].text != "." && t[j].text != "->") {
        chain_ok = false;
        break;
      }
      ++j;
    }
    if (!chain_ok) {
      continue;
    }
    out->push_back({f.rel, t[name_idx].line, "HL006",
                    "result of Status/StatusOr-returning '" + t[name_idx].text +
                        "(...)' is discarded — HAWK_CHECK it, propagate it, or handle "
                        "the error"});
  }
}

// HL005 (cross-file): every RunCounters field must be asserted somewhere in
// tests/ and appear in the docs counter table. Catches silent-counter drift:
// a counter nobody asserts or documents is a counter nobody will notice
// breaking.
void RuleCounterCoverage(const Project& p, std::vector<Finding>* out) {
  if (p.counters_file.empty()) {
    return;
  }
  for (const auto& [field, line] : p.counter_field_lines) {
    const bool asserted = p.asserted_idents.count(field) != 0;
    const bool documented = WordInText(p.docs_text, field);
    if (asserted && documented) {
      continue;
    }
    std::string missing;
    if (!asserted) {
      missing += "no test assertion mentions it";
    }
    if (!documented) {
      if (!missing.empty()) {
        missing += " and ";
      }
      missing += "it is absent from docs/";
    }
    out->push_back({p.counters_file, line, "HL005",
                    "RunCounters field '" + field + "': " + missing +
                        " — every counter needs a test assertion and a row in the "
                        "docs counter table"});
  }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

struct Options {
  fs::path root = ".";
  fs::path allowlist;  // Empty: <root>/tools/hawk_lint/wallclock_allowlist.txt.
  std::vector<fs::path> files;
  bool list_rules = false;
};

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

std::string RelPath(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  std::string s = (ec || rel.empty()) ? p.generic_string() : rel.generic_string();
  return s;
}

std::vector<std::string> LoadAllowlist(const fs::path& path) {
  std::ifstream in(path);
  if (!in) {
    return DefaultWallclockAllow();
  }
  std::vector<std::string> dirs;
  std::string line;
  while (std::getline(in, line)) {
    const std::string entry = Trim(line.substr(0, line.find('#')));
    if (!entry.empty()) {
      dirs.push_back(entry);
    }
  }
  return dirs;
}

int Run(const Options& opt) {
  std::vector<Finding> findings;
  std::vector<SourceFile> files;
  Project project;
  project.wallclock_allow = LoadAllowlist(
      opt.allowlist.empty() ? opt.root / "tools/hawk_lint/wallclock_allowlist.txt"
                            : opt.allowlist);

  // Assemble the file list.
  std::vector<fs::path> paths;
  const bool tree_mode = opt.files.empty();
  if (tree_mode) {
    for (const char* dir : {"src", "bench", "examples", "tests"}) {
      const fs::path base = opt.root / dir;
      if (!fs::exists(base)) {
        continue;
      }
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file() || !IsSourceFile(entry.path())) {
          continue;
        }
        // Exclude fixtures relative to the scan root, so a fixture tree can
        // itself be scanned with --root=tests/lint_fixtures/<case>.
        const std::string rel =
            entry.path().lexically_relative(opt.root).generic_string();
        if (rel.find("lint_fixtures") != std::string::npos) {
          continue;  // The fixtures deliberately violate the rules.
        }
        paths.push_back(entry.path());
      }
    }
    // Docs for the HL005 cross-check.
    for (const char* doc_dir : {"docs", "."}) {
      const fs::path base = opt.root / doc_dir;
      if (!fs::exists(base)) {
        continue;
      }
      for (const auto& entry : fs::directory_iterator(base)) {
        if (entry.is_regular_file() && entry.path().extension() == ".md") {
          std::ifstream in(entry.path());
          std::stringstream ss;
          ss << in.rdbuf();
          project.docs_text += ss.str();
          project.docs_text += '\n';
        }
      }
    }
  } else {
    paths = opt.files;
  }
  std::sort(paths.begin(), paths.end());

  for (const fs::path& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "hawk-lint: cannot read %s\n", path.string().c_str());
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    SourceFile f;
    f.rel = RelPath(path, opt.root);
    Tokenize(f, ss.str(), &findings);
    files.push_back(std::move(f));
  }

  // Pass 1: cross-file collection.
  for (const SourceFile& f : files) {
    Collect(f, &project);
    if (f.rel.find("results.h") != std::string::npos) {
      ParseCounterFields(f, &project);
    }
    if (HasDirPrefix(f.rel, "tests") || f.rel.find("/tests/") != std::string::npos) {
      CollectAssertedIdents(f, &project);
    }
  }

  // Pass 2: per-file rules.
  for (const SourceFile& f : files) {
    RuleMessageBraceInit(f, &findings);
    RuleUnorderedIteration(f, project, &findings);
    RuleWallClock(f, project, &findings);
    RuleFloatAccumulation(f, project, &findings);
    RuleStatusDiscard(f, project, &findings);
  }

  // Pass 3: cross-file rules (whole-tree scans only — explicit file lists
  // cannot prove absence).
  if (tree_mode) {
    RuleCounterCoverage(project, &findings);
  }

  // Apply suppressions (HL000 itself is never suppressible).
  std::vector<Finding> surviving;
  for (const Finding& finding : findings) {
    bool suppressed = false;
    if (finding.rule != "HL000") {
      for (const SourceFile& f : files) {
        if (f.rel != finding.file) {
          continue;
        }
        for (const Suppression& s : f.suppressions) {
          if (s.rule == finding.rule &&
              (s.line == finding.line || (s.own_line && s.line + 1 == finding.line))) {
            suppressed = true;
            break;
          }
        }
        break;
      }
    }
    if (!suppressed) {
      surviving.push_back(finding);
    }
  }

  std::sort(surviving.begin(), surviving.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  for (const Finding& finding : surviving) {
    std::printf("%s:%d: %s: %s\n", finding.file.c_str(), finding.line, finding.rule.c_str(),
                finding.message.c_str());
  }
  std::printf("hawk-lint: %zu finding(s) across %zu file(s)\n", surviving.size(),
              files.size());
  return surviving.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> std::string {
      return arg.substr(std::strlen(prefix));
    };
    if (arg == "--list-rules") {
      opt.list_rules = true;
    } else if (arg.rfind("--root=", 0) == 0) {
      opt.root = value("--root=");
    } else if (arg.rfind("--allowlist=", 0) == 0) {
      opt.allowlist = value("--allowlist=");
    } else if (arg == "-h" || arg == "--help") {
      std::printf("usage: hawk_lint [--root=DIR] [--allowlist=FILE] [--list-rules] "
                  "[files...]\n\nrules:\n");
      for (const RuleInfo& r : kRules) {
        std::printf("  %s  %s\n", r.id, r.summary);
      }
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "hawk-lint: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      opt.files.push_back(arg);
    }
  }
  if (opt.list_rules) {
    for (const RuleInfo& r : kRules) {
      std::printf("%s  %s\n", r.id, r.summary);
    }
    return 0;
  }
  return Run(opt);
}
