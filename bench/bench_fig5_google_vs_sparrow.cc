// Figure 5 (a, b, c): Hawk normalized to Sparrow on the Google trace, as a
// function of cluster size.
//
// Paper series:
//   5a: 50th/90th percentile runtime ratio, long jobs + Sparrow median util.
//   5b: 50th/90th percentile runtime ratio, short jobs + Sparrow median util.
//   5c: fraction of jobs Hawk improves (>=) and average runtime ratio, both
//       classes.
// Paper results to compare against: at high-but-not-saturated load
// (15k-25k nodes) Hawk improves short p50 by up to 80% and p90 by up to 90%;
// long jobs improve up to 35% (p50) / 10% (p90); under overload (10k) Hawk is
// slightly worse for long jobs; at 40k+ both converge.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/comparison.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"

namespace {

std::vector<double> SimSizes(const std::vector<int64_t>& paper_sizes) {
  std::vector<double> sizes;
  sizes.reserve(paper_sizes.size());
  for (const int64_t paper_size : paper_sizes) {
    sizes.push_back(hawk::bench::SimSize(static_cast<uint32_t>(paper_size)));
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t num_jobs = hawk::bench::ScaledJobs(flags, 3000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  // Paper sweep: 10k..50k nodes; simulated at 1/10 scale.
  const std::vector<int64_t> paper_sizes =
      flags.GetIntList("paper-sizes", {10000, 15000, 20000, 25000, 30000, 35000, 40000, 45000,
                                       50000});
  const uint32_t min_workers = hawk::bench::SimSize(static_cast<uint32_t>(paper_sizes.front()));
  const uint32_t ref_workers = hawk::bench::SimSize(static_cast<uint32_t>(paper_sizes[1]));

  const double ref_util = flags.GetDouble("util", 0.93);
  const hawk::Trace trace =
      hawk::bench::GoogleSweepTrace(num_jobs, seed, min_workers, ref_workers, ref_util);

  hawk::bench::PrintHeader(
      "Figure 5: Hawk normalized to Sparrow, Google trace (" + std::to_string(num_jobs) +
      " jobs; sizes are paper-equivalent, simulated at 1/10 scale)");

  hawk::Table fig5a({"nodes(paper)", "p50 long", "p90 long", "sparrow med util"});
  hawk::Table fig5b({"nodes(paper)", "p50 short", "p90 short", "sparrow med util"});
  hawk::Table fig5c({"nodes(paper)", "frac long improved", "avg ratio long",
                     "frac short improved", "avg ratio short"});

  // The whole grid — cluster sizes x {hawk, sparrow} — as one declarative
  // sweep, fanned across the thread pool.
  hawk::SweepSpec sweep(hawk::ExperimentSpec()
                            .WithConfig(hawk::bench::GoogleConfig(ref_workers, seed))
                            .WithTrace(&trace)
                            .WithLabel("fig5"));
  sweep.Vary("num_workers", SimSizes(paper_sizes))
      .VarySchedulers({"hawk", "sparrow"});
  const std::vector<hawk::SweepRun> runs =
      hawk::RunSweep(sweep, static_cast<uint32_t>(flags.GetInt("threads", 0)));

  for (size_t i = 0; i < paper_sizes.size(); ++i) {
    const hawk::RunComparison cmp =
        hawk::CompareRuns(runs[2 * i].result, runs[2 * i + 1].result);

    const std::string nodes = std::to_string(paper_sizes[i]);
    fig5a.AddRow({nodes, hawk::Table::Num(cmp.long_jobs.p50_ratio),
                  hawk::Table::Num(cmp.long_jobs.p90_ratio),
                  hawk::Table::Pct(cmp.baseline_median_util)});
    fig5b.AddRow({nodes, hawk::Table::Num(cmp.short_jobs.p50_ratio),
                  hawk::Table::Num(cmp.short_jobs.p90_ratio),
                  hawk::Table::Pct(cmp.baseline_median_util)});
    fig5c.AddRow({nodes, hawk::Table::Pct(cmp.long_jobs.fraction_improved_or_equal),
                  hawk::Table::Num(cmp.long_jobs.avg_ratio),
                  hawk::Table::Pct(cmp.short_jobs.fraction_improved_or_equal),
                  hawk::Table::Num(cmp.short_jobs.avg_ratio)});
  }

  std::printf("\nFigure 5a: long jobs (ratios < 1 mean Hawk is better)\n");
  fig5a.Print();
  std::printf("\nFigure 5b: short jobs\n");
  fig5b.Print();
  std::printf("\nFigure 5c: additional metrics\n");
  fig5c.Print();
  return 0;
}
