// Ablation (beyond the paper): scheduler robustness under injected faults.
//
// Hawk's evaluation assumes a healthy cluster; the fault layer asks how each
// policy degrades when workers fail-stop and the network loses messages.
// The sweep grids worker_crash_rate x message_loss_rate over EVERY scheduler
// in the registry (external registrations included), in both executors: the
// deterministic simulator and — at a tiny wall-clock scale — the threaded
// prototype, whose crashes are real silent node monitors recovered by
// timeout re-dispatch.
//
// Crash rates are expressed as expected crashes per worker over the trace's
// LONGEST task: a rate much above ~1/longest_task makes the tail restart
// forever (true on a real cluster too), so sweeping that dimensionless
// multiple keeps the grid meaningful at any --scale.
//
// scripts/bench.sh runs this with --json=BENCH_faults.json.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/runtime/prototype_cluster.h"
#include "src/scheduler/experiment.h"
#include "src/scheduler/registry.h"
#include "src/workload/scaling.h"

namespace {

hawk::DurationUs LongestTaskUs(const hawk::Trace& trace) {
  hawk::DurationUs longest = 1;
  for (const hawk::Job& job : trace.jobs()) {
    for (const hawk::DurationUs duration : job.task_durations) {
      longest = std::max(longest, duration);
    }
  }
  return longest;
}

struct FaultRow {
  std::string executor;
  std::string scheduler;
  double crash_rate = 0.0;
  double loss_rate = 0.0;
  hawk::RunResult result;
};

std::string RowJson(const FaultRow& row) {
  const hawk::Samples shorts = row.result.RuntimesSeconds(false);
  const hawk::Samples longs = row.result.RuntimesSeconds(true);
  char text[640];
  std::snprintf(
      text, sizeof(text),
      "{\"executor\": \"%s\", \"scheduler\": \"%s\", \"crash_rate\": %.3e, "
      "\"loss_rate\": %.3f, \"p50_short_s\": %.6f, \"p90_short_s\": %.6f, "
      "\"p50_long_s\": %.6f, \"crashes\": %llu, \"rejoins\": %llu, "
      "\"dropped\": %llu, \"re_dispatched\": %llu, \"duplicates\": %llu, "
      "\"wasted_work_us\": %llu, \"makespan_us\": %llu}",
      row.executor.c_str(), row.scheduler.c_str(), row.crash_rate, row.loss_rate,
      shorts.Empty() ? 0.0 : shorts.Percentile(50),
      shorts.Empty() ? 0.0 : shorts.Percentile(90),
      longs.Empty() ? 0.0 : longs.Percentile(50),
      static_cast<unsigned long long>(row.result.counters.worker_crashes),
      static_cast<unsigned long long>(row.result.counters.worker_rejoins),
      static_cast<unsigned long long>(row.result.counters.messages_dropped),
      static_cast<unsigned long long>(row.result.counters.tasks_re_dispatched),
      static_cast<unsigned long long>(row.result.counters.duplicate_completions),
      static_cast<unsigned long long>(row.result.counters.wasted_work_us),
      static_cast<unsigned long long>(row.result.makespan_us));
  return std::string(text);
}

void PrintRows(const std::vector<FaultRow>& rows) {
  hawk::Table table({"executor", "scheduler", "crash rate (/w/s)", "loss", "p50 short (s)",
                     "p90 short (s)", "crashes", "dropped", "re-disp", "wasted (s)"});
  for (const FaultRow& row : rows) {
    const hawk::Samples shorts = row.result.RuntimesSeconds(false);
    char crash[32];
    std::snprintf(crash, sizeof(crash), "%.2e", row.crash_rate);
    table.AddRow({row.executor, row.scheduler, crash, hawk::Table::Num(row.loss_rate, 2),
                  hawk::Table::Num(shorts.Empty() ? 0.0 : shorts.Percentile(50), 1),
                  hawk::Table::Num(shorts.Empty() ? 0.0 : shorts.Percentile(90), 1),
                  std::to_string(row.result.counters.worker_crashes),
                  std::to_string(row.result.counters.messages_dropped),
                  std::to_string(row.result.counters.tasks_re_dispatched),
                  hawk::Table::Num(
                      static_cast<double>(row.result.counters.wasted_work_us) / 1e6, 1)});
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 1200);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 3));
  const uint32_t num_workers =
      static_cast<uint32_t>(flags.GetInt("workers", hawk::bench::SimSize(10000)));
  const std::vector<std::string> schedulers = hawk::SchedulerRegistry::Global().Names();

  const hawk::Trace trace =
      hawk::bench::GoogleSweepTrace(jobs, seed, num_workers, num_workers,
                                    flags.GetDouble("util", 0.85));
  const double longest_s = static_cast<double>(LongestTaskUs(trace)) / 1e6;
  // Crash-rate axis: {0, 0.1, 0.3} expected crashes per worker per
  // longest-task; loss axis in absolute drop probability.
  const std::vector<double> crash_multiples = {0.0, 0.1, 0.3};
  std::vector<double> crash_rates;
  for (const double multiple : crash_multiples) {
    crash_rates.push_back(multiple / longest_s);
  }
  const std::vector<double> loss_rates = {0.0, 0.05, 0.2};

  hawk::HawkConfig config;
  config.num_workers = num_workers;
  config.short_partition_fraction = 0.17;
  config.cutoff_us = hawk::SecondsToUs(1129.0);
  config.classify_mode = hawk::ClassifyMode::kCutoff;
  config.seed = seed;
  config.worker_downtime_us = hawk::SecondsToUs(30.0);
  config.message_delay_jitter_us = 500;
  config.fault_seed = static_cast<uint64_t>(flags.GetInt("fault-seed", 1));

  hawk::bench::PrintHeader(
      "Ablation: fault injection — crash rate x loss rate x every registered "
      "scheduler (" + std::to_string(jobs) + "-job Google sample, " +
      std::to_string(num_workers) + " workers, longest task " +
      std::to_string(longest_s) + " s)");

  // --- simulator grid -------------------------------------------------------
  hawk::SweepSpec sweep(hawk::ExperimentSpec()
                            .WithConfig(config)
                            .WithTrace(&trace)
                            .WithLabel("faults"));
  sweep.VarySchedulers(schedulers)
      .Vary("worker_crash_rate", crash_rates)
      .Vary("message_loss_rate", loss_rates);
  const std::vector<hawk::SweepRun> runs =
      hawk::RunSweep(sweep, static_cast<uint32_t>(flags.GetInt("threads", 0)));

  std::vector<FaultRow> rows;
  for (const hawk::SweepRun& run : runs) {
    FaultRow row;
    row.executor = "sim";
    row.scheduler = run.spec.scheduler;
    row.crash_rate = run.spec.config.worker_crash_rate;
    row.loss_rate = run.spec.config.message_loss_rate;
    row.result = run.result;
    rows.push_back(row);
  }

  // --- prototype grid (tiny, wall-clock) ------------------------------------
  // Real crashes on the threaded runtime: a few seconds of sleep-task work on
  // a handful of node monitors, healthy vs crashing at ~0.3 expected crashes
  // per worker per longest task — the same dimensionless point as the sim's
  // middle crash setting.
  if (flags.GetInt("proto", 1) != 0) {
    const uint32_t proto_workers = static_cast<uint32_t>(flags.GetInt("proto-workers", 8));
    const double proto_work_s = flags.GetDouble("proto-work-seconds", 6.0);
    hawk::GoogleTraceParams params;
    params.num_jobs = static_cast<uint32_t>(flags.GetInt("proto-jobs", 40));
    params.seed = seed;
    hawk::Trace proto_trace =
        hawk::CapTasksPreserveWork(hawk::GenerateGoogleTrace(params), proto_workers / 2);
    proto_trace = hawk::RescaleTime(
        proto_trace, proto_work_s * 1e6 / static_cast<double>(proto_trace.TotalWorkUs()));
    hawk::Rng arrivals_rng(seed ^ 0xFACEULL);
    hawk::AssignPoissonArrivals(
        &proto_trace,
        hawk::MeanInterarrivalForUtilization(proto_trace, 0.8, proto_workers),
        &arrivals_rng);
    const double proto_longest_s =
        static_cast<double>(LongestTaskUs(proto_trace)) / 1e6;

    hawk::HawkConfig proto_config;
    proto_config.num_workers = proto_workers;
    proto_config.classify_mode = hawk::ClassifyMode::kHint;
    proto_config.seed = seed;
    proto_config.worker_downtime_us = 200'000;
    proto_config.fault_seed = config.fault_seed;

    for (const std::string& scheduler : schedulers) {
      for (const double crash_multiple : {0.0, 0.3}) {
        hawk::HawkConfig point = proto_config;
        point.worker_crash_rate = crash_multiple / proto_longest_s;
        hawk::runtime::PrototypeConfig runtime_knobs;
        runtime_knobs.scheduler = scheduler;
        runtime_knobs.hawk = point;
        runtime_knobs.num_frontends = 4;
        runtime_knobs.fault_detection_timeout = std::chrono::milliseconds(300);
        runtime_knobs.reap_period = std::chrono::milliseconds(50);
        const hawk::StatusOr<hawk::RunResult> result =
            hawk::runtime::RunPrototype(proto_trace, runtime_knobs);
        HAWK_CHECK(result.ok()) << scheduler << ": " << result.status().message();
        FaultRow row;
        row.executor = "prototype";
        row.scheduler = scheduler;
        row.crash_rate = point.worker_crash_rate;
        row.result = result.value();
        rows.push_back(row);
        std::printf("  [prototype %s crash=%.2e done: %zu jobs, %llu crashes]\n",
                    scheduler.c_str(), row.crash_rate, row.result.jobs.size(),
                    static_cast<unsigned long long>(row.result.counters.worker_crashes));
      }
    }
  }

  std::printf("\n");
  PrintRows(rows);
  std::printf("\nLate binding re-probes around losses; the waiting-time queue absorbs\n"
              "re-dispatched long tasks — degradation stays graceful until the crash\n"
              "rate nears 1/longest_task, where tail restarts dominate.\n");

  if (flags.Has("json")) {
    const std::string path = flags.GetString("json", "BENCH_faults.json");
    const hawk::Status status = hawk::bench::WriteJsonRows(
        path, rows.size(), [&rows](size_t i) { return RowJson(rows[i]); });
    if (!status.ok()) {
      std::fprintf(stderr, "json export failed: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("Wrote %s\n", path.c_str());
  }
  return 0;
}
