// google-benchmark microbenchmarks for the hot data structures: the event
// queue, the centralized waiting-time queue, the steal-group scan, and trace
// generation throughput. These bound the simulator's events/second and the
// per-decision cost a production scheduler would pay.
#include <benchmark/benchmark.h>

#include "src/cluster/worker_store.h"
#include "src/common/random.h"
#include "src/core/waiting_time_queue.h"
#include "src/sim/event_queue.h"
#include "src/workload/google_trace.h"

namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  const int64_t batch = state.range(0);
  hawk::Rng rng(1);
  for (auto _ : state) {
    hawk::sim::EventQueue<uint64_t> queue;
    for (int64_t i = 0; i < batch; ++i) {
      queue.Push(static_cast<hawk::SimTime>(rng.NextBounded(1'000'000)),
                 static_cast<uint64_t>(i));
    }
    while (!queue.Empty()) {
      benchmark::DoNotOptimize(queue.Pop());
    }
  }
  state.SetItemsProcessed(state.iterations() * batch * 2);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(65536);

void BM_WaitingTimeQueueAssign(benchmark::State& state) {
  const auto workers = static_cast<uint32_t>(state.range(0));
  hawk::WaitingTimeQueue queue(workers);
  hawk::Rng rng(2);
  hawk::SimTime now = 0;
  for (auto _ : state) {
    now += 1000;
    const hawk::WorkerId w =
        queue.AssignTask(now, static_cast<hawk::DurationUs>(rng.NextBounded(5'000'000)));
    benchmark::DoNotOptimize(w);
    // Keep the backlog bounded: immediately start and finish the task.
    queue.OnTaskFinish(w, now + 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WaitingTimeQueueAssign)->Arg(1500)->Arg(15000);

void BM_StealScan(benchmark::State& state) {
  const int64_t queue_depth = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    hawk::WorkerStore store(1);
    // Worst-ish case: long entry buried mid-queue behind shorts.
    for (int64_t i = 0; i < queue_depth / 2; ++i) {
      store.Enqueue(0, hawk::QueueEntry::Probe(static_cast<hawk::JobId>(i), /*is_long=*/false));
    }
    store.Enqueue(0, hawk::QueueEntry::Task(9999, 0, 1000, /*is_long=*/true));
    for (int64_t i = 0; i < queue_depth / 2; ++i) {
      store.Enqueue(0, hawk::QueueEntry::Probe(static_cast<hawk::JobId>(i), /*is_long=*/false));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(store.ExtractStealableGroup(0));
  }
  state.SetItemsProcessed(state.iterations() * queue_depth);
}
BENCHMARK(BM_StealScan)->Arg(16)->Arg(256);

void BM_GoogleTraceGeneration(benchmark::State& state) {
  hawk::GoogleTraceParams params;
  params.num_jobs = static_cast<uint32_t>(state.range(0));
  uint64_t seed = 1;
  for (auto _ : state) {
    params.seed = seed++;
    benchmark::DoNotOptimize(hawk::GenerateGoogleTrace(params));
  }
  state.SetItemsProcessed(state.iterations() * params.num_jobs);
}
BENCHMARK(BM_GoogleTraceGeneration)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
