// Table 2: number of long jobs and total number of jobs per workload.
//
// Paper values: Google 10.00% of 506460, Cloudera-c 5.02% of 21030,
// Facebook 2.01% of 1169184, Yahoo 9.41% of 24262. Trace sizes here are
// scaled down (DESIGN.md §2); the class percentages are the reproduction
// target, and the paper's absolute counts are printed alongside.
#include <string>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/workload/trace_stats.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const double scale = hawk::bench::BenchScale(flags);

  // Per-workload job counts proportional to the paper's trace sizes
  // (divided by ~100 by default).
  const auto scaled = [&](double paper_jobs) {
    return static_cast<uint32_t>(paper_jobs / 100.0 * scale) + 1;
  };

  hawk::bench::PrintHeader("Table 2: number of long jobs and total jobs");
  hawk::Table table(
      {"workload", "% long jobs", "paper %", "total jobs", "paper total (unscaled)"});

  {
    hawk::GoogleTraceParams p;
    p.num_jobs = scaled(506460);
    p.seed = seed;
    const hawk::Trace trace = hawk::GenerateGoogleTrace(p);
    const hawk::WorkloadMix mix =
        hawk::ComputeMix(trace, hawk::LongByCutoff(hawk::SecondsToUs(1129.0)));
    table.AddRow({"google-2011", hawk::Table::Num(mix.pct_long_jobs, 2), "10.00",
                  std::to_string(mix.total_jobs), "506460"});
  }
  {
    const hawk::Trace trace =
        hawk::GenerateClusterWorkload(hawk::ClouderaParams(scaled(21030), seed));
    const hawk::WorkloadMix mix = hawk::ComputeMix(trace, hawk::LongByHint());
    table.AddRow({"cloudera-c", hawk::Table::Num(mix.pct_long_jobs, 2), "5.02",
                  std::to_string(mix.total_jobs), "21030"});
  }
  {
    const hawk::Trace trace =
        hawk::GenerateClusterWorkload(hawk::FacebookParams(scaled(1169184), seed));
    const hawk::WorkloadMix mix = hawk::ComputeMix(trace, hawk::LongByHint());
    table.AddRow({"facebook-2010", hawk::Table::Num(mix.pct_long_jobs, 2), "2.01",
                  std::to_string(mix.total_jobs), "1169184"});
  }
  {
    const hawk::Trace trace =
        hawk::GenerateClusterWorkload(hawk::YahooParams(scaled(24262), seed));
    const hawk::WorkloadMix mix = hawk::ComputeMix(trace, hawk::LongByHint());
    table.AddRow({"yahoo-2011", hawk::Table::Num(mix.pct_long_jobs, 2), "9.41",
                  std::to_string(mix.total_jobs), "24262"});
  }
  table.Print();
  return 0;
}
