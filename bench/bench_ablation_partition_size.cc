// Ablation (beyond the paper's figures): short-partition size sweep.
//
// §3.4 sizes the short partition by the short jobs' task-seconds share (17%
// for the Google trace). This ablation sweeps the fraction to show the rule
// lands near the sweet spot: too small starves short jobs of reserved
// capacity; too large starves long jobs of general capacity.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/partition.h"
#include "src/metrics/comparison.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"
#include "src/workload/trace_stats.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 3000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const uint32_t workers =
      static_cast<uint32_t>(flags.GetInt("workers", hawk::bench::SimSize(15000)));

  const hawk::Trace trace = hawk::bench::GoogleSweepTrace(
      jobs, seed, hawk::bench::SimSize(10000), workers, flags.GetDouble("util", 0.93));

  // What §3.4's rule derives from this trace's measured mix:
  const double rule_fraction = hawk::ShortPartitionFractionForTrace(
      trace, hawk::LongByCutoff(hawk::SecondsToUs(1129.0)));

  const hawk::HawkConfig config = hawk::bench::GoogleConfig(workers, seed);
  const hawk::RunResult sparrow = hawk::RunExperiment(trace, config, "sparrow");

  hawk::bench::PrintHeader(
      "Ablation: short partition size, Hawk vs Sparrow (Google trace, 15k-equivalent "
      "nodes). Task-seconds rule gives " +
      hawk::Table::Pct(rule_fraction) + " (paper uses 17%)");
  hawk::Table table({"short partition", "p50 short", "p90 short", "p50 long", "p90 long"});
  // The fraction axis needs a paired edit (0% also disables the partition),
  // so it is a VaryConfig axis rather than a plain field Vary.
  const std::vector<double> fractions = {0.0, 0.05, 0.10, 0.17, 0.25, 0.35, 0.50};
  std::vector<std::pair<std::string, hawk::SweepSpec::ConfigMutator>> points;
  for (const double fraction : fractions) {
    points.emplace_back(hawk::Table::Pct(fraction, 0), [fraction](hawk::HawkConfig& c) {
      c.short_partition_fraction = fraction;
      c.use_partition = fraction > 0.0;
    });
  }
  hawk::SweepSpec sweep(hawk::ExperimentSpec("hawk").WithConfig(config).WithTrace(&trace));
  sweep.VaryConfig("short_partition", std::move(points));
  const std::vector<hawk::SweepRun> runs =
      hawk::RunSweep(sweep, static_cast<uint32_t>(flags.GetInt("threads", 0)));
  for (size_t i = 0; i < fractions.size(); ++i) {
    const hawk::RunComparison cmp = hawk::CompareRuns(runs[i].result, sparrow);
    table.AddRow({hawk::Table::Pct(fractions[i], 0),
                  hawk::Table::Num(cmp.short_jobs.p50_ratio),
                  hawk::Table::Num(cmp.short_jobs.p90_ratio),
                  hawk::Table::Num(cmp.long_jobs.p50_ratio),
                  hawk::Table::Num(cmp.long_jobs.p90_ratio)});
  }
  table.Print();
  return 0;
}
