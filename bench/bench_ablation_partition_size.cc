// Ablation (beyond the paper's figures): short-partition size sweep.
//
// §3.4 sizes the short partition by the short jobs' task-seconds share (17%
// for the Google trace). This ablation sweeps the fraction to show the rule
// lands near the sweet spot: too small starves short jobs of reserved
// capacity; too large starves long jobs of general capacity.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/partition.h"
#include "src/metrics/comparison.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"
#include "src/workload/trace_stats.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 3000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const uint32_t workers =
      static_cast<uint32_t>(flags.GetInt("workers", hawk::bench::SimSize(15000)));

  const hawk::Trace trace = hawk::bench::GoogleSweepTrace(
      jobs, seed, hawk::bench::SimSize(10000), workers, flags.GetDouble("util", 0.93));

  // What §3.4's rule derives from this trace's measured mix:
  const double rule_fraction = hawk::ShortPartitionFractionForTrace(
      trace, hawk::LongByCutoff(hawk::SecondsToUs(1129.0)));

  hawk::HawkConfig config = hawk::bench::GoogleConfig(workers, seed);
  const hawk::RunResult sparrow =
      hawk::RunScheduler(trace, config, hawk::SchedulerKind::kSparrow);

  hawk::bench::PrintHeader(
      "Ablation: short partition size, Hawk vs Sparrow (Google trace, 15k-equivalent "
      "nodes). Task-seconds rule gives " +
      hawk::Table::Pct(rule_fraction) + " (paper uses 17%)");
  hawk::Table table({"short partition", "p50 short", "p90 short", "p50 long", "p90 long"});
  for (const double fraction : {0.0, 0.05, 0.10, 0.17, 0.25, 0.35, 0.50}) {
    config.short_partition_fraction = fraction;
    config.use_partition = fraction > 0.0;
    const hawk::RunResult run = hawk::RunScheduler(trace, config, hawk::SchedulerKind::kHawk);
    const hawk::RunComparison cmp = hawk::CompareRuns(run, sparrow);
    table.AddRow({hawk::Table::Pct(fraction, 0), hawk::Table::Num(cmp.short_jobs.p50_ratio),
                  hawk::Table::Num(cmp.short_jobs.p90_ratio),
                  hawk::Table::Num(cmp.long_jobs.p50_ratio),
                  hawk::Table::Num(cmp.long_jobs.p90_ratio)});
  }
  table.Print();
  return 0;
}
