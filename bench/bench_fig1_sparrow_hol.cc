// Figure 1 (§2.3): CDF of short-job runtime under Sparrow in a loaded,
// heterogeneous cluster — the motivating head-of-line-blocking experiment.
//
// Paper scenario: 15000 servers, 1000 jobs, 95% short (100 tasks x 100 s),
// 5% long (1000 tasks x 20000 s), Poisson arrivals with 50 s mean. Median
// utilization 86%, max 97.8%; yet "a large fraction of short jobs exhibit
// runtimes of more than 15000 seconds, far in excess of their [100 s]
// execution time". Simulated here at 1/10 scale (1500 workers, long jobs
// scaled to 100 tasks with durations unchanged), which preserves the
// offered-load ratio.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 1000);
  const uint32_t workers =
      static_cast<uint32_t>(flags.GetInt("workers", hawk::bench::SimSize(15000)));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  const hawk::Trace trace = hawk::GenerateMotivationTrace(jobs, 0.1, seed);

  hawk::HawkConfig config;
  config.num_workers = workers;
  config.seed = seed;
  const hawk::RunResult run = hawk::RunExperiment(trace, config, "sparrow");

  hawk::bench::PrintHeader("Figure 1: short-job runtime CDF under Sparrow, loaded cluster (" +
                           std::to_string(jobs) + " jobs, " + std::to_string(workers) +
                           " workers)");
  const hawk::Samples short_runtimes = run.RuntimesSeconds(/*long_jobs=*/false);
  hawk::PrintCdf("short job runtime (seconds); execution time alone would be 100 s",
                 short_runtimes, 20);
  std::printf("\nmedian cluster utilization: %.1f%% (paper: 86%%)\n",
              run.MedianUtilization() * 100.0);
  std::printf("max cluster utilization:    %.1f%% (paper: 97.8%%)\n",
              run.MaxUtilization() * 100.0);
  std::printf("short jobs with runtime > 15000 s: %.1f%% (paper: \"a large fraction\")\n",
              (1.0 - short_runtimes.CdfAt(15000.0)) * 100.0);
  return 0;
}
