// Table 1: "Long jobs in heterogeneous workloads form a small fraction of the
// total number of jobs, but use a large amount of resources."
//
// Paper values (measured -> printed for comparison):
//   Google 2011    10.00% long jobs   83.65% task-seconds
//   Cloudera-c     5.02%              92.79%
//   Facebook 2010  2.01%              99.79%
//   Yahoo 2011     9.41%              98.31%
// Also prints the §2.1 text statistics for the Google trace: the share of
// tasks in long jobs (paper: 28%) and the ratio of average task durations
// (paper: 7.34x).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/workload/trace_stats.h"

namespace {

struct Row {
  const char* name;
  double paper_pct_long;
  double paper_pct_task_seconds;
};

}  // namespace

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 12000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  hawk::bench::PrintHeader("Table 1: long-job share of jobs and of task-seconds (" +
                           std::to_string(jobs) + " jobs per workload)");

  hawk::Table table({"workload", "% long jobs", "paper", "% task-seconds", "paper"});

  const hawk::GoogleTraceParams google_params = [&] {
    hawk::GoogleTraceParams p;
    p.num_jobs = jobs;
    p.seed = seed;
    return p;
  }();
  const hawk::Trace google = hawk::GenerateGoogleTrace(google_params);
  const hawk::WorkloadMix google_mix =
      hawk::ComputeMix(google, hawk::LongByCutoff(hawk::SecondsToUs(1129.0)));
  table.AddRow({"google-2011", hawk::Table::Num(google_mix.pct_long_jobs, 2), "10.00",
                hawk::Table::Num(google_mix.pct_task_seconds_long, 2), "83.65"});

  const Row rows[] = {
      {"cloudera-c", 5.02, 92.79},
      {"facebook-2010", 2.01, 99.79},
      {"yahoo-2011", 9.41, 98.31},
  };
  for (const Row& row : rows) {
    hawk::ClusterWorkloadParams params =
        row.name == std::string("cloudera-c")      ? hawk::ClouderaParams(jobs, seed)
        : row.name == std::string("facebook-2010") ? hawk::FacebookParams(jobs, seed)
                                                   : hawk::YahooParams(jobs, seed);
    const hawk::Trace trace = hawk::GenerateClusterWorkload(params);
    const hawk::WorkloadMix mix = hawk::ComputeMix(trace, hawk::LongByHint());
    table.AddRow({row.name, hawk::Table::Num(mix.pct_long_jobs, 2),
                  hawk::Table::Num(row.paper_pct_long, 2),
                  hawk::Table::Num(mix.pct_task_seconds_long, 2),
                  hawk::Table::Num(row.paper_pct_task_seconds, 2)});
  }
  table.Print();

  std::printf("\nSection 2.1 text statistics, Google trace:\n");
  std::printf("  share of tasks in long jobs: %.1f%% (paper: 28%%)\n",
              google_mix.pct_tasks_long);
  std::printf("  avg task duration ratio long/short: %.2fx (paper: 7.34x)\n",
              google_mix.avg_task_duration_ratio);
  return 0;
}
