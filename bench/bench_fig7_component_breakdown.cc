// Figure 7 (§4.4): break-down of Hawk's benefits — job runtimes of Hawk with
// one component disabled, normalized to full Hawk. Google trace, 15k nodes.
//
// Paper observations:
//   - without centralized scheduling, long jobs take a significant hit and
//     short jobs improve slightly;
//   - without the partition, short jobs suffer and long jobs improve a bit;
//   - without stealing, both suffer, short jobs dramatically.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/metrics/comparison.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 3000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const uint32_t workers =
      static_cast<uint32_t>(flags.GetInt("workers", hawk::bench::SimSize(15000)));

  const hawk::Trace trace = hawk::bench::GoogleSweepTrace(
      jobs, seed, hawk::bench::SimSize(10000), workers, flags.GetDouble("util", 0.93));

  const hawk::HawkConfig base_config = hawk::bench::GoogleConfig(workers, seed);
  const hawk::RunResult full = hawk::RunExperiment(trace, base_config, "hawk");

  hawk::bench::PrintHeader(
      "Figure 7: component breakdown, normalized to full Hawk (Google trace, "
      "15k-equivalent nodes, " +
      std::to_string(jobs) + " jobs; >1 means worse than Hawk)");
  hawk::Table table({"variant", "p50 short", "p90 short", "p50 long", "p90 long"});

  // One sweep axis over the §4.4 component toggles.
  hawk::SweepSpec sweep(
      hawk::ExperimentSpec("hawk").WithConfig(base_config).WithTrace(&trace));
  sweep.VaryConfig(
      "variant",
      {{"hawk w/out centralized",
        [](hawk::HawkConfig& c) { c.use_centralized_long = false; }},
       {"hawk w/out partition", [](hawk::HawkConfig& c) { c.use_partition = false; }},
       {"hawk w/out stealing", [](hawk::HawkConfig& c) { c.use_stealing = false; }}});
  const std::vector<hawk::SweepRun> runs =
      hawk::RunSweep(sweep, static_cast<uint32_t>(flags.GetInt("threads", 0)));
  for (const hawk::SweepRun& run : runs) {
    const hawk::RunComparison cmp = hawk::CompareRuns(run.result, full);
    // "hawk/<variant>" -> "<variant>" for the table row.
    const std::string variant = run.spec.Label().substr(run.spec.Label().find('/') + 1);
    table.AddRow({variant, hawk::Table::Num(cmp.short_jobs.p50_ratio),
                  hawk::Table::Num(cmp.short_jobs.p90_ratio),
                  hawk::Table::Num(cmp.long_jobs.p50_ratio),
                  hawk::Table::Num(cmp.long_jobs.p90_ratio)});
  }
  table.Print();
  return 0;
}
