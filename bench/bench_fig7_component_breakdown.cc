// Figure 7 (§4.4): break-down of Hawk's benefits — job runtimes of Hawk with
// one component disabled, normalized to full Hawk. Google trace, 15k nodes.
//
// Paper observations:
//   - without centralized scheduling, long jobs take a significant hit and
//     short jobs improve slightly;
//   - without the partition, short jobs suffer and long jobs improve a bit;
//   - without stealing, both suffer, short jobs dramatically.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/metrics/comparison.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 3000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const uint32_t workers =
      static_cast<uint32_t>(flags.GetInt("workers", hawk::bench::SimSize(15000)));

  const hawk::Trace trace = hawk::bench::GoogleSweepTrace(
      jobs, seed, hawk::bench::SimSize(10000), workers, flags.GetDouble("util", 0.93));

  const hawk::HawkConfig base_config = hawk::bench::GoogleConfig(workers, seed);
  const hawk::RunResult full =
      hawk::RunScheduler(trace, base_config, hawk::SchedulerKind::kHawk);

  hawk::bench::PrintHeader(
      "Figure 7: component breakdown, normalized to full Hawk (Google trace, "
      "15k-equivalent nodes, " +
      std::to_string(jobs) + " jobs; >1 means worse than Hawk)");
  hawk::Table table({"variant", "p50 short", "p90 short", "p50 long", "p90 long"});

  struct Variant {
    std::string name;
    bool centralized;
    bool partition;
    bool stealing;
  };
  const Variant variants[] = {
      {"hawk w/out centralized", false, true, true},
      {"hawk w/out partition", true, false, true},
      {"hawk w/out stealing", true, true, false},
  };
  for (const Variant& variant : variants) {
    hawk::HawkConfig config = base_config;
    config.use_centralized_long = variant.centralized;
    config.use_partition = variant.partition;
    config.use_stealing = variant.stealing;
    const hawk::RunResult run = hawk::RunScheduler(trace, config, hawk::SchedulerKind::kHawk);
    const hawk::RunComparison cmp = hawk::CompareRuns(run, full);
    table.AddRow({variant.name, hawk::Table::Num(cmp.short_jobs.p50_ratio),
                  hawk::Table::Num(cmp.short_jobs.p90_ratio),
                  hawk::Table::Num(cmp.long_jobs.p50_ratio),
                  hawk::Table::Num(cmp.long_jobs.p90_ratio)});
  }
  table.Print();
  return 0;
}
