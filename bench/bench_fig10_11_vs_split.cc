// Figures 10 & 11 (§4.6): Hawk normalized to a split cluster — disjoint long
// (83%, centralized) and short (17%, distributed) partitions, no stealing,
// no shared general partition. Google trace, cluster-size sweep.
//
// Paper observations: Hawk fares significantly better for short jobs (the
// split cluster's short partition cannot use idle general capacity and shows
// "extreme degradation" at intermediate sizes), while the split cluster is
// slightly better for long jobs (no short tasks in its long partition).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/comparison.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 3000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::vector<int64_t> paper_sizes =
      flags.GetIntList("paper-sizes", {10000, 15000, 20000, 25000, 30000, 35000, 40000, 45000,
                                       50000});

  const hawk::Trace trace = hawk::bench::GoogleSweepTrace(
      jobs, seed, hawk::bench::SimSize(static_cast<uint32_t>(paper_sizes.front())),
      hawk::bench::SimSize(static_cast<uint32_t>(paper_sizes[1])),
      flags.GetDouble("util", 0.93));

  hawk::bench::PrintHeader("Figures 10-11: Hawk normalized to split cluster (Google trace, " +
                           std::to_string(jobs) + " jobs; 17%/83% split)");
  hawk::Table fig10({"nodes(paper)", "p50 short", "p90 short"});
  hawk::Table fig11({"nodes(paper)", "p50 long", "p90 long"});
  // Cluster sizes x {hawk, split} as one declarative sweep over the thread
  // pool.
  std::vector<double> sizes;
  for (const int64_t paper_size : paper_sizes) {
    sizes.push_back(hawk::bench::SimSize(static_cast<uint32_t>(paper_size)));
  }
  hawk::SweepSpec sweep(
      hawk::ExperimentSpec()
          .WithConfig(hawk::bench::GoogleConfig(hawk::bench::SimSize(15000), seed))
          .WithTrace(&trace)
          .WithLabel("fig10_11"));
  sweep.Vary("num_workers", sizes).VarySchedulers({"hawk", "split"});
  const std::vector<hawk::SweepRun> runs =
      hawk::RunSweep(sweep, static_cast<uint32_t>(flags.GetInt("threads", 0)));
  for (size_t i = 0; i < paper_sizes.size(); ++i) {
    const hawk::RunComparison cmp =
        hawk::CompareRuns(runs[2 * i].result, runs[2 * i + 1].result);
    fig10.AddRow({std::to_string(paper_sizes[i]), hawk::Table::Num(cmp.short_jobs.p50_ratio),
                  hawk::Table::Num(cmp.short_jobs.p90_ratio)});
    fig11.AddRow({std::to_string(paper_sizes[i]), hawk::Table::Num(cmp.long_jobs.p50_ratio),
                  hawk::Table::Num(cmp.long_jobs.p90_ratio)});
  }
  std::printf("\nFigure 10: short jobs (Hawk much better at intermediate sizes)\n");
  fig10.Print();
  std::printf("\nFigure 11: long jobs (split slightly better => ratios slightly > 1)\n");
  fig11.Print();
  return 0;
}
