// Ablation (beyond the paper): scheduler robustness under straggling tasks.
//
// Crash injection models workers that die; stragglers model the quieter
// failure mode the Hawk evaluation never exercises — a task whose execution
// silently drags N x its duration on a node that stays alive and responsive.
// The sweep grids straggler_rate over EVERY registered scheduler (the
// "hawk-spec" variant shows what speculative re-execution buys back), in
// both executors: the deterministic simulator and — at a tiny wall-clock
// scale — the threaded prototype, where a stricken executor slot really
// sleeps slowdown x the nominal duration.
//
// The headline metric is the NORMALIZED runtime: each job's runtime divided
// by the same job's runtime in the zero-straggler run of the same scheduler,
// so p50/p99 read directly as degradation factors (1.0 = unharmed). A
// scheduler that keeps p99 near 1.0 as the rate climbs is absorbing
// stragglers; one whose p99 tracks the slowdown factor is hostage to them.
//
// scripts/bench.sh runs this with --json=BENCH_stragglers.json.
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/histogram.h"
#include "src/metrics/report.h"
#include "src/runtime/prototype_cluster.h"
#include "src/scheduler/experiment.h"
#include "src/scheduler/registry.h"
#include "src/workload/scaling.h"

namespace {

struct StragglerRow {
  std::string executor;
  std::string scheduler;
  double straggler_rate = 0.0;
  double p50_norm = 0.0;
  double p99_norm = 0.0;
  hawk::RunResult result;
};

// Per-job degradation against the matched zero-rate baseline. Both results
// come from the same trace and are sorted by job id, so rows pair up.
hawk::Samples NormalizedRuntimes(const hawk::RunResult& run, const hawk::RunResult& base) {
  hawk::Samples samples;
  const size_t n = std::min(run.jobs.size(), base.jobs.size());
  for (size_t i = 0; i < n; ++i) {
    if (base.jobs[i].runtime_us > 0) {
      samples.Add(static_cast<double>(run.jobs[i].runtime_us) /
                  static_cast<double>(base.jobs[i].runtime_us));
    }
  }
  return samples;
}

std::string RowJson(const StragglerRow& row) {
  const hawk::Samples shorts = row.result.RuntimesSeconds(false);
  char text[640];
  std::snprintf(
      text, sizeof(text),
      "{\"executor\": \"%s\", \"scheduler\": \"%s\", \"straggler_rate\": %.3f, "
      "\"p50_norm\": %.4f, \"p99_norm\": %.4f, \"p50_short_s\": %.6f, "
      "\"p99_short_s\": %.6f, \"speculated\": %llu, \"spec_wins\": %llu, "
      "\"spec_wasted_us\": %llu, \"wasted_work_us\": %llu, "
      "\"re_dispatched\": %llu, \"abandoned\": %llu, \"makespan_us\": %llu}",
      row.executor.c_str(), row.scheduler.c_str(), row.straggler_rate, row.p50_norm,
      row.p99_norm, shorts.Empty() ? 0.0 : shorts.Percentile(50),
      shorts.Empty() ? 0.0 : shorts.Percentile(99),
      static_cast<unsigned long long>(row.result.counters.tasks_speculated),
      static_cast<unsigned long long>(row.result.counters.speculative_wins),
      static_cast<unsigned long long>(row.result.counters.speculative_wasted_us),
      static_cast<unsigned long long>(row.result.counters.wasted_work_us),
      static_cast<unsigned long long>(row.result.counters.tasks_re_dispatched),
      static_cast<unsigned long long>(row.result.counters.tasks_abandoned),
      static_cast<unsigned long long>(row.result.makespan_us));
  return std::string(text);
}

void PrintRows(const std::vector<StragglerRow>& rows) {
  hawk::Table table({"executor", "scheduler", "rate", "p50 norm", "p99 norm",
                     "speculated", "spec wins", "wasted (s)"});
  for (const StragglerRow& row : rows) {
    table.AddRow({row.executor, row.scheduler, hawk::Table::Num(row.straggler_rate, 2),
                  hawk::Table::Num(row.p50_norm, 3), hawk::Table::Num(row.p99_norm, 3),
                  std::to_string(row.result.counters.tasks_speculated),
                  std::to_string(row.result.counters.speculative_wins),
                  hawk::Table::Num(
                      static_cast<double>(row.result.counters.wasted_work_us) / 1e6, 1)});
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 1200);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 3));
  const uint32_t num_workers =
      static_cast<uint32_t>(flags.GetInt("workers", hawk::bench::SimSize(10000)));
  const double slowdown = flags.GetDouble("slowdown", 8.0);
  const std::vector<std::string> schedulers = hawk::SchedulerRegistry::Global().Names();
  const std::vector<double> straggler_rates = {0.0, 0.05, 0.2};

  const hawk::Trace trace =
      hawk::bench::GoogleSweepTrace(jobs, seed, num_workers, num_workers,
                                    flags.GetDouble("util", 0.85));

  hawk::HawkConfig config;
  config.num_workers = num_workers;
  config.short_partition_fraction = 0.17;
  config.cutoff_us = hawk::SecondsToUs(1129.0);
  config.classify_mode = hawk::ClassifyMode::kCutoff;
  config.seed = seed;
  config.straggler_slowdown_factor = slowdown;
  config.fault_seed = static_cast<uint64_t>(flags.GetInt("fault-seed", 1));

  hawk::bench::PrintHeader(
      "Ablation: stragglers — rate x every registered scheduler at " +
      std::to_string(slowdown) + "x slowdown (" + std::to_string(jobs) +
      "-job Google sample, " + std::to_string(num_workers) + " workers)");

  // --- simulator grid -------------------------------------------------------
  hawk::SweepSpec sweep(hawk::ExperimentSpec()
                            .WithConfig(config)
                            .WithTrace(&trace)
                            .WithLabel("stragglers"));
  sweep.VarySchedulers(schedulers).Vary("straggler_rate", straggler_rates);
  const std::vector<hawk::SweepRun> runs =
      hawk::RunSweep(sweep, static_cast<uint32_t>(flags.GetInt("threads", 0)));

  // First pass: index each scheduler's zero-rate run as its baseline.
  std::map<std::string, const hawk::RunResult*> baselines;
  for (const hawk::SweepRun& run : runs) {
    if (run.spec.config.straggler_rate == 0.0) {
      baselines.emplace(run.spec.scheduler, &run.result);
    }
  }
  std::vector<StragglerRow> rows;
  for (const hawk::SweepRun& run : runs) {
    StragglerRow row;
    row.executor = "sim";
    row.scheduler = run.spec.scheduler;
    row.straggler_rate = run.spec.config.straggler_rate;
    row.result = run.result;
    const hawk::Samples norm = NormalizedRuntimes(run.result, *baselines.at(row.scheduler));
    if (!norm.Empty()) {
      row.p50_norm = norm.Percentile(50);
      row.p99_norm = norm.Percentile(99);
    }
    rows.push_back(row);
  }

  // --- prototype grid (tiny, wall-clock) ------------------------------------
  // Real slowdowns on the threaded runtime: a stricken sleep task actually
  // sleeps slowdown x longer. A couple of seconds of work on a handful of
  // node monitors, healthy vs rate 0.2, every registered scheduler.
  if (flags.GetInt("proto", 1) != 0) {
    const uint32_t proto_workers = static_cast<uint32_t>(flags.GetInt("proto-workers", 8));
    const double proto_work_s = flags.GetDouble("proto-work-seconds", 4.0);
    const double proto_slowdown = flags.GetDouble("proto-slowdown", 4.0);
    hawk::GoogleTraceParams params;
    params.num_jobs = static_cast<uint32_t>(flags.GetInt("proto-jobs", 30));
    params.seed = seed;
    hawk::Trace proto_trace =
        hawk::CapTasksPreserveWork(hawk::GenerateGoogleTrace(params), proto_workers / 2);
    proto_trace = hawk::RescaleTime(
        proto_trace, proto_work_s * 1e6 / static_cast<double>(proto_trace.TotalWorkUs()));
    hawk::Rng arrivals_rng(seed ^ 0xFACEULL);
    hawk::AssignPoissonArrivals(
        &proto_trace,
        hawk::MeanInterarrivalForUtilization(proto_trace, 0.8, proto_workers),
        &arrivals_rng);

    for (const std::string& scheduler : schedulers) {
      std::vector<std::pair<double, hawk::RunResult>> proto_runs;
      for (const double rate : {0.0, 0.2}) {
        hawk::HawkConfig point;
        point.num_workers = proto_workers;
        point.classify_mode = hawk::ClassifyMode::kHint;
        point.seed = seed;
        point.straggler_rate = rate;
        point.straggler_slowdown_factor = proto_slowdown;
        point.fault_seed = config.fault_seed;
        hawk::runtime::PrototypeConfig runtime_knobs;
        runtime_knobs.scheduler = scheduler;
        runtime_knobs.hawk = point;
        runtime_knobs.num_frontends = 4;
        runtime_knobs.fault_detection_timeout = std::chrono::milliseconds(300);
        runtime_knobs.reap_period = std::chrono::milliseconds(50);
        const hawk::StatusOr<hawk::RunResult> result =
            hawk::runtime::RunPrototype(proto_trace, runtime_knobs);
        HAWK_CHECK(result.ok()) << scheduler << ": " << result.status().message();
        proto_runs.emplace_back(rate, result.value());
        std::printf("  [prototype %s rate=%.2f done: %zu jobs, %llu us wasted]\n",
                    scheduler.c_str(), rate, result.value().jobs.size(),
                    static_cast<unsigned long long>(
                        result.value().counters.wasted_work_us));
      }
      for (const auto& [rate, result] : proto_runs) {
        StragglerRow row;
        row.executor = "prototype";
        row.scheduler = scheduler;
        row.straggler_rate = rate;
        row.result = result;
        const hawk::Samples norm = NormalizedRuntimes(result, proto_runs.front().second);
        if (!norm.Empty()) {
          row.p50_norm = norm.Percentile(50);
          row.p99_norm = norm.Percentile(99);
        }
        rows.push_back(row);
      }
    }
  }

  std::printf("\n");
  PrintRows(rows);
  std::printf("\nStealing drains the queues stragglers leave behind and the waiting-time\n"
              "queue routes around slow-draining workers, so hawk's p99 degrades slower\n"
              "than sparrow's; hawk-spec additionally caps the straggler itself by\n"
              "racing a duplicate against it (at the spec_wasted_us cost shown).\n");

  if (flags.Has("json")) {
    const std::string path = flags.GetString("json", "BENCH_stragglers.json");
    const hawk::Status status = hawk::bench::WriteJsonRows(
        path, rows.size(), [&rows](size_t i) { return RowJson(rows[i]); });
    if (!status.ok()) {
      std::fprintf(stderr, "json export failed: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("Wrote %s\n", path.c_str());
  }
  return 0;
}
