// Ablation (extension beyond the paper): steal-retry policy.
//
// Hawk's stealing is one bounded round per idle transition (§3.6). This
// ablation lets idle workers retry after a configurable interval and
// measures what that buys: additional short-job improvement at the cost of
// more victim probes (messaging). Also reports the per-class queueing-delay
// telemetry that explains the effect.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/comparison.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 3000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const uint32_t workers =
      static_cast<uint32_t>(flags.GetInt("workers", hawk::bench::SimSize(15000)));

  const hawk::Trace trace = hawk::bench::GoogleSweepTrace(
      jobs, seed, hawk::bench::SimSize(10000), workers, flags.GetDouble("util", 0.93));

  const hawk::HawkConfig config = hawk::bench::GoogleConfig(workers, seed);
  const hawk::RunResult base = hawk::RunExperiment(trace, config, "hawk");

  hawk::bench::PrintHeader(
      "Ablation: steal retry interval, normalized to one-shot Hawk (Google trace, "
      "15k-equivalent nodes)");
  hawk::Table table({"retry interval", "p50 short", "p90 short", "p50 long", "victim probes",
                     "avg short wait (s)"});
  table.AddRow({"off (paper)", "1.000", "1.000", "1.000",
                std::to_string(base.counters.steal_victim_probes),
                hawk::Table::Num(base.counters.AvgQueueWaitSeconds(false), 1)});
  // The retry-interval axis as a declarative sweep over the thread pool.
  const std::vector<double> intervals_s = {100.0, 30.0, 10.0, 3.0, 1.0};
  std::vector<double> intervals_us;
  for (const double interval_s : intervals_s) {
    intervals_us.push_back(static_cast<double>(hawk::SecondsToUs(interval_s)));
  }
  hawk::SweepSpec sweep(hawk::ExperimentSpec("hawk").WithConfig(config).WithTrace(&trace));
  sweep.Vary("steal_retry_interval_us", intervals_us);
  const std::vector<hawk::SweepRun> runs =
      hawk::RunSweep(sweep, static_cast<uint32_t>(flags.GetInt("threads", 0)));
  for (size_t i = 0; i < intervals_s.size(); ++i) {
    const hawk::RunResult& run = runs[i].result;
    const hawk::RunComparison cmp = hawk::CompareRuns(run, base);
    table.AddRow({hawk::Table::Num(intervals_s[i], 0) + " s",
                  hawk::Table::Num(cmp.short_jobs.p50_ratio),
                  hawk::Table::Num(cmp.short_jobs.p90_ratio),
                  hawk::Table::Num(cmp.long_jobs.p50_ratio),
                  std::to_string(run.counters.steal_victim_probes),
                  hawk::Table::Num(run.counters.AvgQueueWaitSeconds(false), 1)});
  }
  table.Print();
  std::printf("\nSmaller ratios = retries help; victim probes = messaging cost.\n");
  return 0;
}
