// Ablation (extension beyond the paper): steal-retry policy and d-choice
// victim selection.
//
// Hawk's stealing is one bounded round per idle transition (§3.6). This
// ablation lets idle workers retry after a configurable interval and
// measures what that buys: additional short-job improvement at the cost of
// more victim probes (messaging). The sweep runs the grid for both plain
// hawk and the registered "hawk-dchoice" variant (steal sample contacted
// most-loaded-first), so the victim-ordering effect on probe cost is read
// off the same table. Also reports the per-class queueing-delay telemetry
// that explains the effect.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/comparison.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 3000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const uint32_t workers =
      static_cast<uint32_t>(flags.GetInt("workers", hawk::bench::SimSize(15000)));

  const hawk::Trace trace = hawk::bench::GoogleSweepTrace(
      jobs, seed, hawk::bench::SimSize(10000), workers, flags.GetDouble("util", 0.93));

  const hawk::HawkConfig config = hawk::bench::GoogleConfig(workers, seed);
  const hawk::RunResult base = hawk::RunExperiment(trace, config, "hawk");

  hawk::bench::PrintHeader(
      "Ablation: steal retry interval x victim selection, normalized to one-shot "
      "random-victim Hawk (Google trace, 15k-equivalent nodes)");
  hawk::Table table({"scheduler", "retry interval", "p50 short", "p90 short", "p50 long",
                     "victim probes", "avg short wait (s)"});
  table.AddRow({"hawk", "off (paper)", "1.000", "1.000", "1.000",
                std::to_string(base.counters.steal_victim_probes),
                hawk::Table::Num(base.counters.AvgQueueWaitSeconds(false), 1)});
  // Retry interval x victim-selection variant, as one declarative sweep over
  // the thread pool. 0 = the paper's one-shot round, so the d-choice variant
  // also gets a no-retry row.
  const std::vector<double> intervals_s = {0.0, 100.0, 30.0, 10.0, 3.0, 1.0};
  std::vector<double> intervals_us;
  for (const double interval_s : intervals_s) {
    intervals_us.push_back(static_cast<double>(hawk::SecondsToUs(interval_s)));
  }
  hawk::SweepSpec sweep(hawk::ExperimentSpec("hawk").WithConfig(config).WithTrace(&trace));
  sweep.VarySchedulers({"hawk", "hawk-dchoice"}).Vary("steal_retry_interval_us", intervals_us);
  const std::vector<hawk::SweepRun> runs =
      hawk::RunSweep(sweep, static_cast<uint32_t>(flags.GetInt("threads", 0)));
  for (const hawk::SweepRun& run : runs) {
    // The hawk / interval=0 point reproduces `base` exactly; keep it in the
    // table as a sanity row (all ratios print 1.000).
    const hawk::RunComparison cmp = hawk::CompareRuns(run.result, base);
    const double interval_s =
        static_cast<double>(run.spec.config.steal_retry_interval_us) / 1e6;
    table.AddRow({run.spec.scheduler,
                  interval_s == 0.0 ? "off (paper)" : hawk::Table::Num(interval_s, 0) + " s",
                  hawk::Table::Num(cmp.short_jobs.p50_ratio),
                  hawk::Table::Num(cmp.short_jobs.p90_ratio),
                  hawk::Table::Num(cmp.long_jobs.p50_ratio),
                  std::to_string(run.result.counters.steal_victim_probes),
                  hawk::Table::Num(run.result.counters.AvgQueueWaitSeconds(false), 1)});
  }
  table.Print();
  std::printf("\nSmaller ratios = the variant helps; victim probes = messaging cost "
              "(d-choice aims to cut probes per successful steal).\n");
  return 0;
}
