// Ablation (beyond the paper): multi-slot and heterogeneous-capacity workers.
//
// "The Power of d Choices in Scheduling for Data Centers with Heterogeneous
// Servers" (PAPERS.md) asks how random placement behaves when servers have
// unequal capacity. Hawk's evaluation assumes identical single-slot machines;
// this sweep holds total slot capacity fixed and redistributes it across
// layouts — many small workers, fewer big multi-slot workers, and mixed
// fleets where an evenly spread fraction of workers is upgraded — for both
// Sparrow and Hawk. Probe placement and steal-victim selection sample the
// slot space, so capacity weights placement automatically; the interesting
// question is what concentrating capacity does to head-of-line blocking and
// tail latencies at equal aggregate throughput.
//
// Layouts (one VaryConfig axis; ~1500 slots at the reference scale):
//   uniform-1x    1500 workers x 1 slot   (the paper's world)
//   uniform-2x     750 workers x 2 slots
//   uniform-4x     375 workers x 4 slots
//   mixed-20pct-4x 937 workers, 20% upgraded to 4 slots (750x1 + 187x4 = 1498)
//
// --json=PATH / --csv=PATH emit machine-readable artifacts like the other
// ablations; CI smoke-runs a reduced-scale grid.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/csv_export.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"

namespace {

hawk::Status WriteSweepJson(const std::string& path,
                            const std::vector<hawk::SweepRun>& runs) {
  return hawk::bench::WriteJsonRows(path, runs.size(), [&runs](size_t i) {
    const hawk::SweepRun& run = runs[i];
    const hawk::Samples shorts = run.result.RuntimesSeconds(false);
    const hawk::Samples longs = run.result.RuntimesSeconds(true);
    char row[512];
    std::snprintf(row, sizeof(row),
                  "{\"label\": \"%s\", \"scheduler\": \"%s\", \"num_workers\": %u, "
                  "\"slots_per_worker\": %u, \"big_worker_fraction\": %.3f, "
                  "\"big_worker_slots\": %u, \"p50_short_s\": %.6f, \"p90_short_s\": %.6f, "
                  "\"p50_long_s\": %.6f, \"median_util\": %.6f}",
                  run.spec.Label().c_str(), run.spec.scheduler.c_str(),
                  run.spec.config.num_workers, run.spec.config.slots_per_worker,
                  run.spec.config.big_worker_fraction, run.spec.config.big_worker_slots,
                  shorts.Empty() ? 0.0 : shorts.Percentile(50),
                  shorts.Empty() ? 0.0 : shorts.Percentile(90),
                  longs.Empty() ? 0.0 : longs.Percentile(50),
                  run.result.MedianUtilization());
    return std::string(row);
  });
}

}  // namespace

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 3000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const uint32_t ref_workers = hawk::bench::SimSize(15000);  // 1500 slots total.

  // Calibrate arrivals against the reference capacity; the smallest layout
  // (375 workers) caps tasks per job so 2t probes always fit.
  const hawk::Trace trace = hawk::bench::GoogleSweepTrace(
      jobs, seed, /*min_workers=*/ref_workers / 4, ref_workers,
      flags.GetDouble("util", 0.93));

  // Equal-capacity layouts: the axis redistributes the same 1500 slots.
  using Mutator = hawk::SweepSpec::ConfigMutator;
  std::vector<std::pair<std::string, Mutator>> layouts;
  // GCC 12 misfires -Warray-bounds on string+lambda pairs constructed through
  // vector's insert path (PR105651-family false positive); scoped suppression.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
  layouts.emplace_back("uniform-1x", [ref_workers](hawk::HawkConfig& c) {
    c.num_workers = ref_workers;
    c.slots_per_worker = 1;
  });
  layouts.emplace_back("uniform-2x", [ref_workers](hawk::HawkConfig& c) {
    c.num_workers = ref_workers / 2;
    c.slots_per_worker = 2;
  });
  layouts.emplace_back("uniform-4x", [ref_workers](hawk::HawkConfig& c) {
    c.num_workers = ref_workers / 4;
    c.slots_per_worker = 4;
  });
  // Mixed fleet: 625 workers, 20% (125) upgraded to 4 slots
  // -> 500*1 + 125*4 = 1000... scale worker count so capacity stays 1500:
  // 937 workers, 20% big: 750*1 + 187*4 = 1498 slots (within 0.2%).
  layouts.emplace_back("mixed-20pct-4x", [ref_workers](hawk::HawkConfig& c) {
    c.num_workers = ref_workers * 10 / 16;  // 937 at the reference scale.
    c.slots_per_worker = 1;
    c.big_worker_fraction = 0.2;
    c.big_worker_slots = 4;
  });
#pragma GCC diagnostic pop

  hawk::SweepSpec sweep(hawk::ExperimentSpec()
                            .WithConfig(hawk::bench::GoogleConfig(ref_workers, seed))
                            .WithTrace(&trace)
                            .WithLabel("hetero_slots"));
  sweep.VarySchedulers({"sparrow", "hawk"}).VaryConfig("layout", std::move(layouts));
  const std::vector<hawk::SweepRun> runs =
      hawk::RunSweep(sweep, static_cast<uint32_t>(flags.GetInt("threads", 0)));

  hawk::bench::PrintHeader(
      "Ablation: capacity layout at fixed total slots (Google trace, " +
      std::to_string(jobs) + " jobs, " + std::to_string(runs.size()) + " sweep points)");
  hawk::Table table({"scheduler", "layout", "workers", "p50 short (s)", "p90 short (s)",
                     "p50 long (s)", "median util"});
  for (const hawk::SweepRun& run : runs) {
    const hawk::Samples shorts = run.result.RuntimesSeconds(false);
    const hawk::Samples longs = run.result.RuntimesSeconds(true);
    const std::string& label = run.spec.Label();
    table.AddRow({run.spec.scheduler, label.substr(label.rfind('/') + 1),
                  std::to_string(run.spec.config.num_workers),
                  hawk::Table::Num(shorts.Empty() ? 0.0 : shorts.Percentile(50), 1),
                  hawk::Table::Num(shorts.Empty() ? 0.0 : shorts.Percentile(90), 1),
                  hawk::Table::Num(longs.Empty() ? 0.0 : longs.Percentile(50), 1),
                  hawk::Table::Num(run.result.MedianUtilization(), 3)});
  }
  table.Print();
  std::printf("\nFewer, bigger workers concentrate each FIFO queue over more slots;\n"
              "slot-weighted probing keeps placement capacity-proportional.\n");

  if (flags.Has("json")) {
    const std::string path = flags.GetString("json", "BENCH_hetero_slots.json");
    const hawk::Status status = WriteSweepJson(path, runs);
    if (!status.ok()) {
      std::fprintf(stderr, "json export failed: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("Wrote %s\n", path.c_str());
  }
  if (flags.Has("csv")) {
    const std::string path = flags.GetString("csv", "BENCH_hetero_slots.csv");
    const hawk::Status status = hawk::WriteSweepSummaryCsv(path, runs);
    if (!status.ok()) {
      std::fprintf(stderr, "csv export failed: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("Wrote %s\n", path.c_str());
  }
  return 0;
}
