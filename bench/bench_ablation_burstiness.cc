// Ablation (extension beyond the paper): arrival-pattern robustness.
//
// The paper evaluates with homogeneous Poisson arrivals; real traces are
// diurnal and bursty. This ablation re-runs the Figure-5-style comparison at
// the 15k-equivalent point under Poisson, diurnal (sinusoidal rate), and
// MMPP bursty arrivals at the SAME mean load, to check that Hawk's advantage
// over Sparrow is not an artifact of smooth arrivals.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/comparison.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"
#include "src/workload/arrival_patterns.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 3000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const uint32_t workers =
      static_cast<uint32_t>(flags.GetInt("workers", hawk::bench::SimSize(15000)));

  // Base job population; arrivals are (re)assigned per pattern below.
  hawk::GoogleTraceParams params;
  params.num_jobs = jobs;
  params.seed = seed;
  const hawk::Trace base =
      hawk::CapTasksPreserveWork(hawk::GenerateGoogleTrace(params), workers / 2);
  const hawk::DurationUs mean_interarrival =
      hawk::MeanInterarrivalForUtilization(base, 0.93, workers);

  const hawk::HawkConfig config = hawk::bench::GoogleConfig(workers, seed);

  hawk::bench::PrintHeader(
      "Ablation: arrival-pattern robustness, Hawk vs Sparrow at equal mean load "
      "(Google trace, 15k-equivalent nodes)");
  hawk::Table table({"arrivals", "p50 short", "p90 short", "p50 long", "p90 long",
                     "sparrow med util"});

  // Build the three arrival variants of the same job population, then sweep
  // traces x {hawk, sparrow} as one declarative grid.
  hawk::Trace poisson = base;
  {
    hawk::Rng rng(seed ^ 0x1);
    hawk::AssignPoissonArrivals(&poisson, mean_interarrival, &rng);
  }
  hawk::Trace diurnal_trace = base;
  {
    hawk::Rng rng(seed ^ 0x2);
    hawk::DiurnalParams diurnal;
    diurnal.mean_interarrival_us = mean_interarrival;
    diurnal.amplitude = 0.6;
    diurnal.period_us = mean_interarrival * static_cast<hawk::DurationUs>(jobs) / 4;
    hawk::AssignDiurnalArrivals(&diurnal_trace, diurnal, &rng);
  }
  hawk::Trace bursty_trace = base;
  {
    hawk::Rng rng(seed ^ 0x3);
    hawk::BurstyParams bursty;
    bursty.mean_interarrival_us = mean_interarrival;
    bursty.burst_duty = 0.3;
    bursty.burstiness = 3.0;
    bursty.cycle_us = mean_interarrival * 100;
    hawk::AssignBurstyArrivals(&bursty_trace, bursty, &rng);
  }

  const std::vector<std::pair<std::string, const hawk::Trace*>> patterns = {
      {"poisson (paper)", &poisson},
      {"diurnal (amp 0.6)", &diurnal_trace},
      {"bursty (mmpp 3x)", &bursty_trace}};
  hawk::SweepSpec sweep(hawk::ExperimentSpec().WithConfig(config));
  sweep.VaryTraces(patterns).VarySchedulers({"hawk", "sparrow"});
  const std::vector<hawk::SweepRun> runs =
      hawk::RunSweep(sweep, static_cast<uint32_t>(flags.GetInt("threads", 0)));

  for (size_t i = 0; i < patterns.size(); ++i) {
    const hawk::RunComparison cmp =
        hawk::CompareRuns(runs[2 * i].result, runs[2 * i + 1].result);
    table.AddRow({patterns[i].first, hawk::Table::Num(cmp.short_jobs.p50_ratio),
                  hawk::Table::Num(cmp.short_jobs.p90_ratio),
                  hawk::Table::Num(cmp.long_jobs.p50_ratio),
                  hawk::Table::Num(cmp.long_jobs.p90_ratio),
                  hawk::Table::Pct(cmp.baseline_median_util)});
  }
  table.Print();
  return 0;
}
