// Ablation (beyond the paper): power-of-d-choices probing at scale.
//
// "The Power of d Choices in Scheduling for Data Centers with Heterogeneous
// Servers" (PAPERS.md) studies how the number of probes per task changes
// placement quality. Hawk fixes d = 2 (§4.1); this sweep varies the probe
// ratio d over {1, 2, 4, 8} for both Sparrow (all jobs probed) and Hawk
// (short jobs only) across cluster sizes — the first scenario added as a
// single SweepSpec declaration on the experiment API rather than hand-rolled
// grid loops.
//
// scripts/bench.sh runs this with --json=BENCH_sweep.json so the sweep
// becomes part of the repo's tracked benchmark artifacts; --csv=PATH emits
// the same grid through the metrics CSV exporter.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/csv_export.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"

namespace {

hawk::Status WriteSweepJson(const std::string& path,
                            const std::vector<hawk::SweepRun>& runs) {
  return hawk::bench::WriteJsonRows(path, runs.size(), [&runs](size_t i) {
    const hawk::SweepRun& run = runs[i];
    const hawk::Samples shorts = run.result.RuntimesSeconds(false);
    const hawk::Samples longs = run.result.RuntimesSeconds(true);
    char row[512];
    std::snprintf(row, sizeof(row),
                  "{\"label\": \"%s\", \"scheduler\": \"%s\", \"probe_ratio\": %u, "
                  "\"num_workers\": %u, \"p50_short_s\": %.6f, \"p90_short_s\": %.6f, "
                  "\"p50_long_s\": %.6f, \"p90_long_s\": %.6f, \"median_util\": %.6f}",
                  run.spec.Label().c_str(), run.spec.scheduler.c_str(),
                  run.spec.config.probe_ratio, run.spec.config.num_workers,
                  shorts.Empty() ? 0.0 : shorts.Percentile(50),
                  shorts.Empty() ? 0.0 : shorts.Percentile(90),
                  longs.Empty() ? 0.0 : longs.Percentile(50),
                  longs.Empty() ? 0.0 : longs.Percentile(90),
                  run.result.MedianUtilization());
    return std::string(row);
  });
}

}  // namespace

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 3000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::vector<int64_t> ds = flags.GetIntList("d", {1, 2, 4, 8});
  const std::vector<int64_t> paper_sizes =
      flags.GetIntList("paper-sizes", {10000, 15000, 20000});

  const hawk::Trace trace = hawk::bench::GoogleSweepTrace(
      jobs, seed, hawk::bench::SimSize(static_cast<uint32_t>(paper_sizes.front())),
      hawk::bench::SimSize(15000), flags.GetDouble("util", 0.93));

  // The whole study is one declaration: schedulers x d x cluster sizes.
  std::vector<double> sizes;
  for (const int64_t paper_size : paper_sizes) {
    sizes.push_back(hawk::bench::SimSize(static_cast<uint32_t>(paper_size)));
  }
  hawk::SweepSpec sweep(
      hawk::ExperimentSpec()
          .WithConfig(hawk::bench::GoogleConfig(hawk::bench::SimSize(15000), seed))
          .WithTrace(&trace)
          .WithLabel("power_of_d"));
  sweep.VarySchedulers({"sparrow", "hawk"})
      .Vary("probe_ratio", std::vector<double>(ds.begin(), ds.end()))
      .Vary("num_workers", sizes);
  const std::vector<hawk::SweepRun> runs =
      hawk::RunSweep(sweep, static_cast<uint32_t>(flags.GetInt("threads", 0)));

  hawk::bench::PrintHeader(
      "Ablation: power-of-d probing, Sparrow (all jobs) and Hawk (short jobs) "
      "(Google trace, " +
      std::to_string(jobs) + " jobs, " + std::to_string(runs.size()) + " sweep points)");
  hawk::Table table({"scheduler", "d", "nodes(paper)", "p50 short (s)", "p90 short (s)",
                     "p50 long (s)", "probes placed"});
  for (size_t i = 0; i < runs.size(); ++i) {
    const hawk::SweepRun& run = runs[i];
    const hawk::Samples shorts = run.result.RuntimesSeconds(false);
    const hawk::Samples longs = run.result.RuntimesSeconds(true);
    const size_t size_index = i % paper_sizes.size();
    table.AddRow({run.spec.scheduler, std::to_string(run.spec.config.probe_ratio),
                  std::to_string(paper_sizes[size_index]),
                  hawk::Table::Num(shorts.Percentile(50), 1),
                  hawk::Table::Num(shorts.Percentile(90), 1),
                  hawk::Table::Num(longs.Percentile(50), 1),
                  std::to_string(run.result.counters.probes_placed)});
  }
  table.Print();
  std::printf("\nd=2 is the paper's choice; larger d trades messaging for placement "
              "quality and saturates quickly.\n");

  if (flags.Has("json")) {
    const std::string path = flags.GetString("json", "BENCH_sweep.json");
    const hawk::Status status = WriteSweepJson(path, runs);
    if (!status.ok()) {
      std::fprintf(stderr, "json export failed: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("Wrote %s\n", path.c_str());
  }
  if (flags.Has("csv")) {
    const std::string path = flags.GetString("csv", "BENCH_sweep.csv");
    const hawk::Status status = hawk::WriteSweepSummaryCsv(path, runs);
    if (!status.ok()) {
      std::fprintf(stderr, "csv export failed: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("Wrote %s\n", path.c_str());
  }
  return 0;
}
