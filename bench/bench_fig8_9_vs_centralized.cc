// Figures 8 & 9 (§4.5): Hawk normalized to a fully centralized scheduler
// (the §3.7 algorithm applied to all jobs, whole cluster, no partition, no
// stealing). Google trace, cluster-size sweep.
//
// Paper observations: the centralized scheduler penalizes short jobs under
// heavy load (Hawk ratio < 1 at 10k-15k, converging at 50k); for long jobs
// the centralized approach is slightly better because they can use the whole
// cluster (Hawk ratio slightly > 1).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/comparison.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 3000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::vector<int64_t> paper_sizes =
      flags.GetIntList("paper-sizes", {10000, 15000, 20000, 25000, 30000, 35000, 40000, 45000,
                                       50000});

  const hawk::Trace trace = hawk::bench::GoogleSweepTrace(
      jobs, seed, hawk::bench::SimSize(static_cast<uint32_t>(paper_sizes.front())),
      hawk::bench::SimSize(static_cast<uint32_t>(paper_sizes[1])),
      flags.GetDouble("util", 0.93));

  // Three sweep points per cluster size (Hawk, the late-binding hybrid
  // variant, and the centralized baseline), fanned across the thread pool;
  // results are identical to a serial loop.
  std::vector<double> sizes;
  for (const int64_t paper_size : paper_sizes) {
    sizes.push_back(hawk::bench::SimSize(static_cast<uint32_t>(paper_size)));
  }
  hawk::SweepSpec sweep(
      hawk::ExperimentSpec()
          .WithConfig(hawk::bench::GoogleConfig(hawk::bench::SimSize(15000), seed))
          .WithTrace(&trace)
          .WithLabel("fig8_9"));
  sweep.Vary("num_workers", sizes).VarySchedulers({"hawk", "hawk-latebind", "centralized"});
  const std::vector<hawk::SweepRun> results =
      hawk::RunSweep(sweep, static_cast<uint32_t>(flags.GetInt("threads", 0)));

  hawk::bench::PrintHeader("Figures 8-9: Hawk normalized to fully centralized (Google trace, " +
                           std::to_string(jobs) + " jobs)");
  hawk::Table fig8({"nodes(paper)", "p50 short", "p90 short", "p50 short(lb)", "p90 short(lb)"});
  hawk::Table fig9({"nodes(paper)", "p50 long", "p90 long", "p50 long(lb)", "p90 long(lb)"});
  for (size_t i = 0; i < paper_sizes.size(); ++i) {
    const int64_t paper_size = paper_sizes[i];
    const hawk::RunResult& central = results[3 * i + 2].result;
    const hawk::RunComparison cmp = hawk::CompareRuns(results[3 * i].result, central);
    const hawk::RunComparison lb = hawk::CompareRuns(results[3 * i + 1].result, central);
    fig8.AddRow({std::to_string(paper_size), hawk::Table::Num(cmp.short_jobs.p50_ratio),
                 hawk::Table::Num(cmp.short_jobs.p90_ratio),
                 hawk::Table::Num(lb.short_jobs.p50_ratio),
                 hawk::Table::Num(lb.short_jobs.p90_ratio)});
    fig9.AddRow({std::to_string(paper_size), hawk::Table::Num(cmp.long_jobs.p50_ratio),
                 hawk::Table::Num(cmp.long_jobs.p90_ratio),
                 hawk::Table::Num(lb.long_jobs.p50_ratio),
                 hawk::Table::Num(lb.long_jobs.p90_ratio)});
  }
  std::printf("\nFigure 8: short jobs (Hawk better where < 1)\n");
  fig8.Print();
  std::printf("\nFigure 9: long jobs (centralized slightly better => ratios slightly > 1)\n");
  fig9.Print();
  return 0;
}
