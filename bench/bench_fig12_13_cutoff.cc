// Figures 12 & 13 (§4.7): sensitivity to the long/short cutoff threshold.
// Hawk normalized to Sparrow on the Google trace at 15k-equivalent nodes,
// with the cutoff swept over {750, 1000, 1129, 1300, 1500, 2000} seconds.
//
// Paper observations: Hawk yields benefits over the whole range. Smaller
// cutoffs classify more jobs as long, loading the general partition and
// affecting the long p90; larger cutoffs classify more jobs as short,
// leaving the short partition underloaded with more stealing opportunity.
// Both runs of each pair use the cutoff-consistent job classes for metrics.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/comparison.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 3000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const uint32_t workers =
      static_cast<uint32_t>(flags.GetInt("workers", hawk::bench::SimSize(15000)));
  const std::vector<int64_t> cutoffs =
      flags.GetIntList("cutoffs", {750, 1000, 1129, 1300, 1500, 2000});

  const hawk::Trace trace = hawk::bench::GoogleSweepTrace(
      jobs, seed, hawk::bench::SimSize(10000), workers, flags.GetDouble("util", 0.93));

  hawk::bench::PrintHeader(
      "Figures 12-13: cutoff sensitivity, Hawk normalized to Sparrow (Google trace, "
      "15k-equivalent nodes, " +
      std::to_string(jobs) + " jobs)");
  hawk::Table fig12({"cutoff (s)", "% jobs long", "p50 long", "p90 long"});
  hawk::Table fig13({"cutoff (s)", "p50 short", "p90 short"});
  // Two sweep points per cutoff (Hawk + Sparrow baseline), fanned across the
  // thread pool; results are identical to a serial loop. Sparrow schedules
  // all jobs identically; the cutoff only affects which jobs are *reported*
  // as long vs short, so it is applied to both runs of each pair.
  std::vector<double> cutoff_us;
  for (const int64_t cutoff_s : cutoffs) {
    cutoff_us.push_back(
        static_cast<double>(hawk::SecondsToUs(static_cast<double>(cutoff_s))));
  }
  hawk::SweepSpec sweep(hawk::ExperimentSpec()
                            .WithConfig(hawk::bench::GoogleConfig(workers, seed))
                            .WithTrace(&trace)
                            .WithLabel("fig12_13"));
  sweep.Vary("cutoff_us", cutoff_us).VarySchedulers({"hawk", "sparrow"});
  const std::vector<hawk::SweepRun> results =
      hawk::RunSweep(sweep, static_cast<uint32_t>(flags.GetInt("threads", 0)));
  for (size_t i = 0; i < cutoffs.size(); ++i) {
    const int64_t cutoff_s = cutoffs[i];
    const hawk::RunComparison cmp =
        hawk::CompareRuns(results[2 * i].result, results[2 * i + 1].result);
    const double pct_long =
        100.0 * static_cast<double>(cmp.long_jobs.jobs) /
        static_cast<double>(cmp.long_jobs.jobs + cmp.short_jobs.jobs);
    fig12.AddRow({std::to_string(cutoff_s), hawk::Table::Num(pct_long, 1),
                  hawk::Table::Num(cmp.long_jobs.p50_ratio),
                  hawk::Table::Num(cmp.long_jobs.p90_ratio)});
    fig13.AddRow({std::to_string(cutoff_s), hawk::Table::Num(cmp.short_jobs.p50_ratio),
                  hawk::Table::Num(cmp.short_jobs.p90_ratio)});
  }
  std::printf("\nFigure 12: long jobs\n");
  fig12.Print();
  std::printf("\nFigure 13: short jobs\n");
  fig13.Print();
  return 0;
}
