// Figure 14 (§4.8): sensitivity to task runtime mis-estimation. Each job's
// estimate is multiplied by a uniform random factor from ranges 0.1-1.9
// through 0.7-1.3; results are long-job runtimes normalized to Sparrow,
// averaged over several seeds (the paper averages ten runs), for the set of
// jobs classified as long *without* mis-estimation.
//
// Paper observation: Hawk is robust; opposing mis-classifications cancel,
// and at 15k nodes long jobs even improve slightly at the 90th percentile
// with larger noise because long-classified-as-short jobs benefit from the
// less-loaded short partition.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/comparison.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 3000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const uint32_t workers =
      static_cast<uint32_t>(flags.GetInt("workers", hawk::bench::SimSize(15000)));
  const int64_t runs = flags.GetInt("runs", 5);

  const hawk::Trace trace = hawk::bench::GoogleSweepTrace(
      jobs, seed, hawk::bench::SimSize(10000), workers, flags.GetDouble("util", 0.93));

  struct Range {
    double lo;
    double hi;
  };
  const std::vector<Range> ranges = {{0.1, 1.9}, {0.2, 1.8}, {0.3, 1.7}, {0.4, 1.6},
                                     {0.5, 1.5}, {0.6, 1.4}, {0.7, 1.3}};

  hawk::bench::PrintHeader(
      "Figure 14: mis-estimation sensitivity, long jobs, Hawk normalized to Sparrow "
      "(Google trace, 15k-equivalent nodes, avg of " +
      std::to_string(runs) + " runs)");

  const hawk::HawkConfig base_config = hawk::bench::GoogleConfig(workers, seed);
  const hawk::RunResult sparrow_run = hawk::RunExperiment(trace, base_config, "sparrow");

  // Noise ranges x repeated seeds as one declarative grid (ranges slowest),
  // fanned across the thread pool.
  std::vector<std::pair<std::string, hawk::SweepSpec::ConfigMutator>> noise_points;
  for (const Range& range : ranges) {
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f-%.1f", range.lo, range.hi);
    noise_points.emplace_back(label, [range](hawk::HawkConfig& c) {
      c.estimate_noise_lo = range.lo;
      c.estimate_noise_hi = range.hi;
    });
  }
  std::vector<double> run_seeds;
  for (int64_t r = 0; r < runs; ++r) {
    run_seeds.push_back(static_cast<double>(seed + static_cast<uint64_t>(r) * 7919));
  }
  hawk::SweepSpec sweep(
      hawk::ExperimentSpec("hawk").WithConfig(base_config).WithTrace(&trace));
  sweep.VaryConfig("noise", std::move(noise_points)).Vary("seed", run_seeds);
  const std::vector<hawk::SweepRun> grid =
      hawk::RunSweep(sweep, static_cast<uint32_t>(flags.GetInt("threads", 0)));

  hawk::Table table({"misestimation", "p50 long", "p90 long"});
  for (size_t i = 0; i < ranges.size(); ++i) {
    double p50_sum = 0.0;
    double p90_sum = 0.0;
    for (int64_t r = 0; r < runs; ++r) {
      // Metrics classification inside the runs is noise-free (Fig. 14
      // protocol), so CompareRuns groups by the unperturbed classes.
      const hawk::RunComparison cmp = hawk::CompareRuns(
          grid[i * static_cast<size_t>(runs) + static_cast<size_t>(r)].result, sparrow_run);
      p50_sum += cmp.long_jobs.p50_ratio;
      p90_sum += cmp.long_jobs.p90_ratio;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f-%.1f", ranges[i].lo, ranges[i].hi);
    table.AddRow({label, hawk::Table::Num(p50_sum / static_cast<double>(runs)),
                  hawk::Table::Num(p90_sum / static_cast<double>(runs))});
  }
  table.Print();
  return 0;
}
