// Shared setup for the experiment benches (bench_fig*/bench_table*).
//
// Scaling convention (DESIGN.md §2): simulated cluster sizes are the paper's
// divided by 10 and traces have thousands of jobs instead of ~506k; rows are
// labelled with the paper-equivalent sizes. HAWK_BENCH_SCALE (env var or
// --scale flag) multiplies the default job counts for bigger runs.
#ifndef HAWK_BENCH_BENCH_UTIL_H_
#define HAWK_BENCH_BENCH_UTIL_H_

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>

#include "src/cluster/results.h"
#include "src/common/check.h"
#include "src/common/flags.h"
#include "src/common/status.h"
#include "src/common/random.h"
#include "src/core/hawk_config.h"
#include "src/workload/arrivals.h"
#include "src/workload/cluster_workloads.h"
#include "src/workload/google_trace.h"
#include "src/workload/scaling.h"
#include "src/workload/trace.h"

namespace hawk {
namespace bench {

// Paper cluster size (in nodes) -> simulated size. The simulation runs the
// paper's clusters at 1/10 scale.
inline constexpr uint32_t kClusterScaleDivisor = 10;

inline uint32_t SimSize(uint32_t paper_nodes) { return paper_nodes / kClusterScaleDivisor; }

inline double BenchScale(const Flags& flags) {
  double env_scale = 1.0;
  if (const char* env = std::getenv("HAWK_BENCH_SCALE"); env != nullptr && *env != '\0') {
    // Strict parse: a malformed value must fail loudly, not silently run the
    // default-scale configuration (std::atof would quietly yield 0).
    char* end = nullptr;
    env_scale = std::strtod(env, &end);
    while (end != nullptr && std::isspace(static_cast<unsigned char>(*end))) {
      ++end;
    }
    HAWK_CHECK(end != nullptr && *end == '\0' && end != env)
        << "HAWK_BENCH_SCALE is not a number: \"" << env << "\"";
    HAWK_CHECK_GT(env_scale, 0.0) << "HAWK_BENCH_SCALE must be > 0, got \"" << env << "\"";
  }
  return flags.GetDouble("scale", env_scale);
}

inline uint32_t ScaledJobs(const Flags& flags, uint32_t default_jobs) {
  const auto jobs = static_cast<uint32_t>(flags.GetInt(
      "jobs", static_cast<int64_t>(default_jobs * BenchScale(flags))));
  return jobs > 0 ? jobs : 1;
}

// Builds a trace ready for a cluster-size sweep: tasks-per-job capped for the
// smallest cluster (2t probes must fit; the paper applies the same transform
// for its prototype, §4.1) and Poisson arrivals calibrated once so that the
// *reference* cluster size sees `target_util` offered load. Larger clusters
// in the sweep are then progressively less loaded, smaller ones overloaded —
// the paper's load knob.
inline Trace PrepareSweepTrace(Trace trace, uint64_t seed, uint32_t min_workers,
                               uint32_t ref_workers, double target_util) {
  trace = CapTasksPreserveWork(trace, min_workers / 2);
  Rng rng(seed ^ 0xA5A5A5A5ULL);
  const DurationUs interarrival =
      MeanInterarrivalForUtilization(trace, target_util, ref_workers);
  AssignPoissonArrivals(&trace, interarrival, &rng);
  return trace;
}

inline Trace GoogleSweepTrace(uint32_t num_jobs, uint64_t seed, uint32_t min_workers,
                              uint32_t ref_workers, double target_util = 0.93) {
  GoogleTraceParams params;
  params.num_jobs = num_jobs;
  params.seed = seed;
  return PrepareSweepTrace(GenerateGoogleTrace(params), seed, min_workers, ref_workers,
                           target_util);
}

// Default Google-trace experiment configuration (paper §4.1 parameters).
inline HawkConfig GoogleConfig(uint32_t num_workers, uint64_t seed = 42) {
  HawkConfig config;
  config.num_workers = num_workers;
  config.short_partition_fraction = 0.17;  // 17% for the Google trace.
  config.cutoff_us = SecondsToUs(1129.0);
  config.classify_mode = ClassifyMode::kCutoff;
  config.seed = seed;
  return config;
}

// Executor-independent event count for throughput rates: the paper-level
// control-plane events — job arrivals, probe placements, task placements
// (centralized lane), and one start plus one finish per launched task.
// Derived from the semantic RunCounters, which the determinism contract
// keeps identical across the serial and sharded executors; `counters.events`
// by contrast tallies each executor's internal bookkeeping (the epoch
// machinery splits deliveries across coordinator and shard phases), so rates
// built on it are only comparable within one executor. Rates built on this
// are comparable across rows and executors alike.
inline uint64_t PaperEvents(const RunCounters& c) {
  return c.jobs + c.probes_placed + c.central_tasks_placed + 2 * c.tasks_launched;
}

// Writes a JSON array of `count` objects to `path`; `row_text(i)` returns
// the i-th object ("{...}") without indentation, comma or newline. Shared by
// the ablation benches' --json exporters so the array scaffolding (open and
// write-failure checks, comma discipline) lives in one place.
inline Status WriteJsonRows(const std::string& path, size_t count,
                            const std::function<std::string(size_t)>& row_text) {
  std::ofstream out(path);
  if (!out) {
    return Status::Error("cannot open for writing: " + path);
  }
  out << "[\n";
  for (size_t i = 0; i < count; ++i) {
    out << "  " << row_text(i) << (i + 1 < count ? "," : "") << "\n";
  }
  out << "]\n";
  if (!out) {
    return Status::Error("write failed: " + path);
  }
  return Status::Ok();
}

inline void PrintHeader(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace hawk

#endif  // HAWK_BENCH_BENCH_UTIL_H_
