// Figure 15 (§4.9): sensitivity to the number of stealing attempts. Hawk
// with the per-idle-transition victim cap swept over 1..250, normalized to
// Hawk with cap 1, short jobs, Google trace at 15k-equivalent nodes.
//
// Paper observation: performance increases with the cap, but even a low
// value (10) gives a significant benefit.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/comparison.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 3000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const uint32_t workers =
      static_cast<uint32_t>(flags.GetInt("workers", hawk::bench::SimSize(15000)));
  const std::vector<int64_t> caps =
      flags.GetIntList("caps", {1, 2, 3, 4, 5, 10, 15, 20, 25, 50, 75, 100, 250});

  const hawk::Trace trace = hawk::bench::GoogleSweepTrace(
      jobs, seed, hawk::bench::SimSize(10000), workers, flags.GetDouble("util", 0.93));

  hawk::bench::PrintHeader(
      "Figure 15: stealing-attempt cap, short jobs, normalized to cap=1 (Google trace, "
      "15k-equivalent nodes, " +
      std::to_string(jobs) + " jobs)");

  hawk::HawkConfig config = hawk::bench::GoogleConfig(workers, seed);
  config.steal_cap = 1;
  const hawk::RunResult cap1 = hawk::RunExperiment(trace, config, "hawk");

  // The cap axis as a declarative sweep over the thread pool.
  hawk::SweepSpec sweep(hawk::ExperimentSpec("hawk").WithConfig(config).WithTrace(&trace));
  sweep.Vary("steal_cap", std::vector<double>(caps.begin(), caps.end()));
  const std::vector<hawk::SweepRun> runs =
      hawk::RunSweep(sweep, static_cast<uint32_t>(flags.GetInt("threads", 0)));

  hawk::Table table({"cap", "p50 short", "p90 short", "steal success rate"});
  for (size_t i = 0; i < caps.size(); ++i) {
    const hawk::RunResult& run = runs[i].result;
    const hawk::RunComparison cmp = hawk::CompareRuns(run, cap1);
    const double success_rate =
        run.counters.steal_attempts > 0
            ? static_cast<double>(run.counters.steal_successes) /
                  static_cast<double>(run.counters.steal_attempts)
            : 0.0;
    table.AddRow({std::to_string(caps[i]), hawk::Table::Num(cmp.short_jobs.p50_ratio),
                  hawk::Table::Num(cmp.short_jobs.p90_ratio),
                  hawk::Table::Pct(success_rate)});
  }
  table.Print();
  return 0;
}
