// Ablation (beyond the paper's figures): Sparrow probe ratio sweep.
//
// The paper fixes the probe ratio at 2 "because the authors of Sparrow have
// found two to be the best probe ratio" and notes that more probes are
// counterproductive due to messaging overhead. This ablation verifies the
// choice inside our simulator: absolute Sparrow percentiles and message
// counts per probe ratio, plus Hawk (which probes short jobs only) under the
// same ratios.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 3000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const uint32_t workers =
      static_cast<uint32_t>(flags.GetInt("workers", hawk::bench::SimSize(15000)));
  const std::vector<int64_t> ratios = flags.GetIntList("ratios", {1, 2, 3, 4});

  const hawk::Trace trace = hawk::bench::GoogleSweepTrace(
      jobs, seed, hawk::bench::SimSize(10000), workers, flags.GetDouble("util", 0.93));

  hawk::bench::PrintHeader("Ablation: probe ratio (Google trace, 15k-equivalent nodes)");
  hawk::Table table({"scheduler", "ratio", "p50 short (s)", "p90 short (s)", "p50 long (s)",
                     "probes placed"});
  // Schedulers x probe ratios as one declarative sweep over the thread pool.
  hawk::SweepSpec sweep(hawk::ExperimentSpec()
                            .WithConfig(hawk::bench::GoogleConfig(workers, seed))
                            .WithTrace(&trace));
  sweep.VarySchedulers({"sparrow", "hawk"})
      .Vary("probe_ratio", std::vector<double>(ratios.begin(), ratios.end()));
  const std::vector<hawk::SweepRun> runs =
      hawk::RunSweep(sweep, static_cast<uint32_t>(flags.GetInt("threads", 0)));
  for (const hawk::SweepRun& run : runs) {
    const hawk::Samples shorts = run.result.RuntimesSeconds(false);
    const hawk::Samples longs = run.result.RuntimesSeconds(true);
    table.AddRow({run.spec.scheduler, std::to_string(run.spec.config.probe_ratio),
                  hawk::Table::Num(shorts.Percentile(50), 1),
                  hawk::Table::Num(shorts.Percentile(90), 1),
                  hawk::Table::Num(longs.Percentile(50), 1),
                  std::to_string(run.result.counters.probes_placed)});
  }
  table.Print();
  return 0;
}
