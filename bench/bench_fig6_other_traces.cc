// Figure 6 (a, b, c): Hawk normalized to Sparrow on the Cloudera, Facebook
// and Yahoo traces — 90th percentile runtimes for long and short jobs across
// cluster sizes.
//
// Paper observations: "Hawk's benefits hold across all traces", with larger
// short-job improvements than on the Google trace because the short
// partitions are less utilized, so there are more chances for stealing.
// Short partitions (§4.1): Cloudera 9%, Facebook 2%, Yahoo 2%. Long/short
// classes come from the generator's cluster labels (§4.1). Cluster sizes are
// the paper's divided by 10.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/comparison.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"

namespace {

struct TraceSpec {
  std::string name;
  hawk::Trace trace;
  double short_partition_fraction;
  std::vector<int64_t> paper_sizes;
};

}  // namespace

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 3000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 2));
  // Unlike Fig. 5 (whose 10k point is deliberately overloaded, §4.2), the
  // Fig. 6 sweeps start at "highly loaded but not overloaded": calibrate the
  // offered load at the smallest cluster of each sweep.
  const double ref_util = flags.GetDouble("util", 0.9);

  std::vector<TraceSpec> specs;
  specs.push_back({"cloudera (Fig 6a)",
                   hawk::GenerateClusterWorkload(hawk::ClouderaParams(jobs, seed)), 0.09,
                   {15000, 20000, 25000, 30000, 35000, 40000, 45000, 50000}});
  specs.push_back({"facebook (Fig 6b)",
                   hawk::GenerateClusterWorkload(hawk::FacebookParams(jobs, seed)), 0.02,
                   {70000, 90000, 110000, 130000, 150000, 170000}});
  specs.push_back({"yahoo (Fig 6c)",
                   hawk::GenerateClusterWorkload(hawk::YahooParams(jobs, seed)), 0.02,
                   {5000, 7000, 9000, 11000, 13000, 15000, 17000, 19000}});

  hawk::bench::PrintHeader(
      "Figure 6: Hawk normalized to Sparrow, Cloudera/Facebook/Yahoo traces (" +
      std::to_string(jobs) + " jobs each; paper-equivalent sizes, 1/10 scale)");

  for (TraceSpec& spec : specs) {
    const uint32_t min_workers =
        hawk::bench::SimSize(static_cast<uint32_t>(spec.paper_sizes.front()));
    const hawk::Trace trace = hawk::bench::PrepareSweepTrace(std::move(spec.trace), seed,
                                                             min_workers, min_workers, ref_util);

    // Per-trace declarative grid: cluster sizes x {hawk, sparrow}.
    hawk::HawkConfig base;
    base.short_partition_fraction = spec.short_partition_fraction;
    base.classify_mode = hawk::ClassifyMode::kHint;
    base.seed = seed;
    std::vector<double> sizes;
    for (const int64_t paper_size : spec.paper_sizes) {
      sizes.push_back(hawk::bench::SimSize(static_cast<uint32_t>(paper_size)));
    }
    hawk::SweepSpec sweep(
        hawk::ExperimentSpec().WithConfig(base).WithTrace(&trace).WithLabel(spec.name));
    sweep.Vary("num_workers", sizes).VarySchedulers({"hawk", "sparrow"});
    const std::vector<hawk::SweepRun> runs =
        hawk::RunSweep(sweep, static_cast<uint32_t>(flags.GetInt("threads", 0)));

    hawk::Table table(
        {"nodes(paper)", "p90 long", "p90 short", "sparrow med util", "short part util"});
    for (size_t i = 0; i < spec.paper_sizes.size(); ++i) {
      const hawk::RunComparison cmp =
          hawk::CompareRuns(runs[2 * i].result, runs[2 * i + 1].result);
      table.AddRow({std::to_string(spec.paper_sizes[i]),
                    hawk::Table::Num(cmp.long_jobs.p90_ratio),
                    hawk::Table::Num(cmp.short_jobs.p90_ratio),
                    hawk::Table::Pct(cmp.baseline_median_util),
                    hawk::Table::Pct(cmp.treatment_median_util)});
    }
    std::printf("\n--- %s, short partition %.0f%% ---\n", spec.name.c_str(),
                spec.short_partition_fraction * 100.0);
    table.Print();
  }
  return 0;
}
