// Figures 16 & 17 (§4.10): prototype implementation vs simulation.
//
// The paper runs a 3300-job sample of the Google trace on a 100-node cluster
// (1 centralized + 10 distributed schedulers), with task durations scaled
// down 1000x into sleep tasks and tasks-per-job capped by the cluster-size
// ratio, then varies load through the mean job inter-arrival time as a
// multiple of the mean task runtime (1 .. 2.25). Hawk is normalized to
// Sparrow at the 50th/90th percentile for short (Fig 16) and long (Fig 17)
// jobs, with the corresponding simulation results alongside.
//
// Here both worlds are driven by the SAME ExperimentSpec per grid point:
// RunExperiment simulates it, runtime::RunPrototype deploys it on the
// in-process threaded runtime (real node-monitor threads, sleep tasks, RPC
// bus). The grid covers sparrow, hawk, and "hawk-lb" — a least-loaded Hawk
// variant registered from OUTSIDE src/ right here in this file — at one and
// four slots per node (constant total capacity). Defaults are sized for a
// few minutes of wall time; --jobs / --work-seconds / --num-ratios scale it
// (scripts/bench.sh smoke-runs it small and emits BENCH_impl_vs_sim.json).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/hawk_scheduler.h"
#include "src/metrics/comparison.h"
#include "src/metrics/report.h"
#include "src/runtime/prototype_cluster.h"
#include "src/scheduler/experiment.h"
#include "src/scheduler/registry.h"

namespace {

// The externally registered policy (same spirit as examples/custom_policy.cpp,
// compacted): Hawk whose distributed side sends each probe to the less-loaded
// of two random slots' owners. On the prototype its RuntimeShape — inherited
// from HawkPolicy — drives the control plane with uniform probing, which is
// precisely the paper's point about stale state over a real network.
class HawkLbPolicy : public hawk::HawkPolicy {
 public:
  explicit HawkLbPolicy(const hawk::HawkConfig& config) : HawkPolicy(config) {}

  void OnJobArrival(const hawk::Job& job, const hawk::JobClass& cls) override {
    if (cls.is_long_sched) {
      HawkPolicy::OnJobArrival(job, cls);
      return;
    }
    hawk::Cluster& cluster = ctx_->GetCluster();
    const uint64_t n = cluster.TotalSlots();
    for (uint32_t p = 0; p < config().probe_ratio * job.NumTasks(); ++p) {
      const auto a =
          cluster.WorkerOfSlot(static_cast<hawk::SlotId>(ctx_->SchedRng().NextBounded(n)));
      const auto b =
          cluster.WorkerOfSlot(static_cast<hawk::SlotId>(ctx_->SchedRng().NextBounded(n)));
      const hawk::WorkerStore& workers = cluster.workers();
      const size_t qa = workers.QueueSize(a) + workers.OccupiedSlots(a);
      const size_t qb = workers.QueueSize(b) + workers.OccupiedSlots(b);
      ctx_->PlaceProbe(qa <= qb ? a : b, job.id, false);
    }
  }

  std::string_view Name() const override { return "hawk-lb"; }
};

const hawk::SchedulerRegistration kRegisterHawkLb(
    "hawk-lb",
    [](const hawk::HawkConfig& config) -> std::unique_ptr<hawk::SchedulerPolicy> {
      return std::make_unique<HawkLbPolicy>(config);
    },
    [](const hawk::HawkConfig& config) { return config.GeneralCount(); });

struct GridPoint {
  double ratio = 0.0;
  uint32_t slots = 0;
  std::string scheduler;
  hawk::RunComparison impl;  // Scheduler normalized to sparrow, prototype.
  hawk::RunComparison sim;   // Same, simulated.
};

}  // namespace

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 120);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 5));
  // Total capacity in slots; rounded down to a multiple of the largest slot
  // layout (4) so every grid row carries exactly the same capacity — a
  // 50-node run at 12x4 = 48 slots would see ~4% more offered load than its
  // 50x1 sibling and skew the comparison.
  uint32_t nodes = static_cast<uint32_t>(flags.GetInt("nodes", 100));
  if (nodes % 4 != 0) {
    const uint32_t rounded = std::max(4u, nodes - nodes % 4);
    std::printf("note: --nodes=%u rounded down to %u (multiple of the 4-slot layout)\n",
                nodes, rounded);
    nodes = rounded;
  }
  // Total task-work in the scaled trace, in wall-clock seconds; governs how
  // long the prototype runs (the paper's 1000x scaling is the same idea).
  const double work_seconds = flags.GetDouble("work-seconds", 60.0);

  // Google sample, capped for 2t probes on `nodes` workers (§4.1's scaling
  // rule), then time-scaled so the total work matches `work_seconds`.
  hawk::GoogleTraceParams params;
  params.num_jobs = jobs;
  params.seed = seed;
  hawk::Trace base = hawk::CapTasksPreserveWork(hawk::GenerateGoogleTrace(params), nodes / 2);
  const double factor =
      work_seconds * 1e6 / static_cast<double>(base.TotalWorkUs());
  base = hawk::RescaleTime(base, factor);

  const double mean_job_work_us =
      static_cast<double>(base.TotalWorkUs()) / static_cast<double>(base.NumJobs());
  // Calibrate so that ratio 1.0 offers ~95% utilization, declining as the
  // inter-arrival multiple grows (the paper's load sweep direction).
  const double base_interarrival_us = mean_job_work_us / (0.95 * nodes);

  std::vector<double> ratios = {1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.25};
  if (flags.Has("num-ratios")) {
    const auto keep = static_cast<size_t>(flags.GetInt("num-ratios", 7));
    if (keep < ratios.size()) {
      ratios.resize(keep > 0 ? keep : 1);
    }
  }
  // Constant-capacity slot layouts: `nodes` single-slot monitors vs nodes/4
  // monitors with 4 slots each.
  const std::vector<uint32_t> slot_layouts = {1, 4};
  const std::vector<std::string> schedulers = {"hawk", "hawk-lb"};

  hawk::bench::PrintHeader(
      "Figures 16-17: implementation vs simulation, normalized to Sparrow (" +
      std::to_string(jobs) + "-job Google sample, " + std::to_string(nodes) +
      " execution slots, 10 distributed + 1 centralized schedulers, slots/node in {1,4})");

  std::vector<GridPoint> points;
  for (const double ratio : ratios) {
    hawk::Trace trace = base;
    hawk::Rng arrivals_rng(seed ^ 0xBEEF);
    hawk::AssignPoissonArrivals(
        &trace, static_cast<hawk::DurationUs>(base_interarrival_us * ratio), &arrivals_rng);

    // Sampling resolution: ~60 utilization snapshots over the submission
    // span (the simulator's "every 100 s" scaled to this trace's time base).
    const hawk::DurationUs sample_period_us =
        std::max<hawk::DurationUs>(2000, trace.SpanUs() / 60);

    for (const uint32_t slots : slot_layouts) {
      // One config for both worlds (identical to the historical slots=1
      // simulation setup when slots == 1). `nodes` is a multiple of every
      // layout, so capacity is constant across rows.
      hawk::HawkConfig config;
      config.num_workers = nodes / slots;
      config.slots_per_worker = slots;
      config.short_partition_fraction = 0.17;
      config.classify_mode = hawk::ClassifyMode::kHint;
      config.util_sample_period_us = sample_period_us;
      config.seed = seed;

      hawk::runtime::PrototypeConfig runtime_knobs;
      runtime_knobs.num_frontends = 10;
      // The sampler period is a wall-clock knob and comes from the runtime
      // config on the spec-driven path; match the simulator's resolution.
      runtime_knobs.hawk.util_sample_period_us = sample_period_us;

      // The same spec per scheduler drives RunExperiment and RunPrototype.
      const auto spec_for = [&](const std::string& scheduler) {
        return hawk::ExperimentSpec(scheduler).WithConfig(config).WithTrace(&trace);
      };
      const hawk::RunResult sim_sparrow = hawk::RunExperiment(spec_for("sparrow"));
      const auto impl_sparrow_or =
          hawk::runtime::RunPrototype(spec_for("sparrow"), runtime_knobs);
      HAWK_CHECK(impl_sparrow_or.ok()) << impl_sparrow_or.status().message();

      for (const std::string& scheduler : schedulers) {
        GridPoint point;
        point.ratio = ratio;
        point.slots = slots;
        point.scheduler = scheduler;
        const hawk::RunResult sim_run = hawk::RunExperiment(spec_for(scheduler));
        point.sim = hawk::CompareRuns(sim_run, sim_sparrow);
        const auto impl_or = hawk::runtime::RunPrototype(spec_for(scheduler), runtime_knobs);
        HAWK_CHECK(impl_or.ok()) << impl_or.status().message();
        point.impl = hawk::CompareRuns(impl_or.value(), impl_sparrow_or.value());
        std::printf("  [ratio %.2f slots %u %s done: impl messages=%llu, steals=%llu]\n",
                    ratio, slots, scheduler.c_str(),
                    static_cast<unsigned long long>(impl_or.value().counters.events),
                    static_cast<unsigned long long>(impl_or.value().counters.entries_stolen));
        points.push_back(point);
      }
    }
  }

  hawk::Table fig16({"interarrival/runtime", "slots", "scheduler", "impl p50 short",
                     "impl p90 short", "sim p50 short", "sim p90 short", "sparrow med util"});
  hawk::Table fig17({"interarrival/runtime", "slots", "scheduler", "impl p50 long",
                     "impl p90 long", "sim p50 long", "sim p90 long", "sparrow med util"});
  for (const GridPoint& point : points) {
    const std::string x = hawk::Table::Num(point.ratio, 2);
    fig16.AddRow({x, std::to_string(point.slots), point.scheduler,
                  hawk::Table::Num(point.impl.short_jobs.p50_ratio),
                  hawk::Table::Num(point.impl.short_jobs.p90_ratio),
                  hawk::Table::Num(point.sim.short_jobs.p50_ratio),
                  hawk::Table::Num(point.sim.short_jobs.p90_ratio),
                  hawk::Table::Pct(point.impl.baseline_median_util)});
    fig17.AddRow({x, std::to_string(point.slots), point.scheduler,
                  hawk::Table::Num(point.impl.long_jobs.p50_ratio),
                  hawk::Table::Num(point.impl.long_jobs.p90_ratio),
                  hawk::Table::Num(point.sim.long_jobs.p50_ratio),
                  hawk::Table::Num(point.sim.long_jobs.p90_ratio),
                  hawk::Table::Pct(point.impl.baseline_median_util)});
  }

  std::printf("\nFigure 16: short jobs, implementation vs simulation\n");
  fig16.Print();
  std::printf("\nFigure 17: long jobs, implementation vs simulation\n");
  fig17.Print();

  if (flags.Has("json")) {
    const std::string path = flags.GetString("json", "BENCH_impl_vs_sim.json");
    const hawk::Status status =
        hawk::bench::WriteJsonRows(path, points.size(), [&points](size_t i) {
          const GridPoint& point = points[i];
          char row[512];
          std::snprintf(
              row, sizeof(row),
              "{\"ratio\": %.2f, \"slots\": %u, \"scheduler\": \"%s\", "
              "\"impl_p50_short\": %.4f, \"impl_p90_short\": %.4f, "
              "\"impl_p50_long\": %.4f, \"impl_p90_long\": %.4f, "
              "\"sim_p50_short\": %.4f, \"sim_p90_short\": %.4f, "
              "\"sim_p50_long\": %.4f, \"sim_p90_long\": %.4f, "
              "\"sparrow_median_util\": %.4f}",
              point.ratio, point.slots, point.scheduler.c_str(),
              point.impl.short_jobs.p50_ratio, point.impl.short_jobs.p90_ratio,
              point.impl.long_jobs.p50_ratio, point.impl.long_jobs.p90_ratio,
              point.sim.short_jobs.p50_ratio, point.sim.short_jobs.p90_ratio,
              point.sim.long_jobs.p50_ratio, point.sim.long_jobs.p90_ratio,
              point.impl.baseline_median_util);
          return std::string(row);
        });
    if (!status.ok()) {
      std::fprintf(stderr, "json export failed: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("Wrote %s\n", path.c_str());
  }
  return 0;
}
