// Figures 16 & 17 (§4.10): prototype implementation vs simulation.
//
// The paper runs a 3300-job sample of the Google trace on a 100-node cluster
// (1 centralized + 10 distributed schedulers), with task durations scaled
// down 1000x into sleep tasks and tasks-per-job capped by the cluster-size
// ratio, then varies load through the mean job inter-arrival time as a
// multiple of the mean task runtime (1 .. 2.25). Hawk is normalized to
// Sparrow at the 50th/90th percentile for short (Fig 16) and long (Fig 17)
// jobs, with the corresponding simulation results alongside.
//
// Here the prototype is the in-process threaded runtime (real node-monitor
// threads, sleep tasks, RPC bus with 0.5 ms latency); the simulation runs the
// exact same scaled trace. Defaults are sized for ~a minute of wall time;
// --jobs / --work-seconds scale it up toward the paper's setup.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/comparison.h"
#include "src/metrics/report.h"
#include "src/runtime/prototype_cluster.h"
#include "src/scheduler/experiment.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 120);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 5));
  const uint32_t nodes = static_cast<uint32_t>(flags.GetInt("nodes", 100));
  // Total task-work in the scaled trace, in wall-clock seconds; governs how
  // long the prototype runs (the paper's 1000x scaling is the same idea).
  const double work_seconds = flags.GetDouble("work-seconds", 60.0);

  // Google sample, capped for 2t probes on `nodes` workers (§4.1's scaling
  // rule), then time-scaled so the total work matches `work_seconds`.
  hawk::GoogleTraceParams params;
  params.num_jobs = jobs;
  params.seed = seed;
  hawk::Trace base = hawk::CapTasksPreserveWork(hawk::GenerateGoogleTrace(params), nodes / 2);
  const double factor =
      work_seconds * 1e6 / static_cast<double>(base.TotalWorkUs());
  base = hawk::RescaleTime(base, factor);

  const double mean_job_work_us =
      static_cast<double>(base.TotalWorkUs()) / static_cast<double>(base.NumJobs());
  // Calibrate so that ratio 1.0 offers ~95% utilization, declining as the
  // inter-arrival multiple grows (the paper's load sweep direction).
  const double base_interarrival_us = mean_job_work_us / (0.95 * nodes);

  const std::vector<double> ratios = {1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.25};

  hawk::bench::PrintHeader(
      "Figures 16-17: implementation vs simulation, Hawk normalized to Sparrow (" +
      std::to_string(jobs) + "-job Google sample, " + std::to_string(nodes) +
      " node monitors, 10 distributed + 1 centralized schedulers)");

  hawk::Table fig16({"interarrival/runtime", "impl p50 short", "impl p90 short",
                     "sim p50 short", "sim p90 short", "sparrow med util"});
  hawk::Table fig17({"interarrival/runtime", "impl p50 long", "impl p90 long", "sim p50 long",
                     "sim p90 long", "sparrow med util"});

  for (const double ratio : ratios) {
    hawk::Trace trace = base;
    hawk::Rng arrivals_rng(seed ^ 0xBEEF);
    hawk::AssignPoissonArrivals(
        &trace, static_cast<hawk::DurationUs>(base_interarrival_us * ratio), &arrivals_rng);

    // Sampling resolution: ~60 utilization snapshots over the submission
    // span (the simulator's "every 100 s" scaled to this trace's time base).
    const hawk::DurationUs sample_period_us =
        std::max<hawk::DurationUs>(2000, trace.SpanUs() / 60);

    // --- prototype runs (wall clock) ---
    hawk::runtime::PrototypeConfig proto;
    proto.num_nodes = nodes;
    proto.num_frontends = 10;
    proto.short_partition_fraction = 0.17;
    proto.cutoff_us = 0;  // Classify by generator label, as the paper's fixed 3000/300 split.
    proto.steal_cap = 10;
    proto.util_sample_period = std::chrono::microseconds(sample_period_us);
    proto.seed = seed;
    proto.mode = hawk::runtime::PrototypeMode::kHawk;
    const hawk::RunResult impl_hawk = hawk::runtime::RunPrototype(trace, proto);
    proto.mode = hawk::runtime::PrototypeMode::kSparrow;
    const hawk::RunResult impl_sparrow = hawk::runtime::RunPrototype(trace, proto);
    const hawk::RunComparison impl = hawk::CompareRuns(impl_hawk, impl_sparrow);

    // --- corresponding simulation runs on the same scaled trace ---
    hawk::HawkConfig sim_config;
    sim_config.num_workers = nodes;
    sim_config.short_partition_fraction = 0.17;
    sim_config.classify_mode = hawk::ClassifyMode::kHint;
    sim_config.util_sample_period_us = sample_period_us;  // Same base as the prototype.
    sim_config.seed = seed;
    const hawk::RunResult sim_hawk = hawk::RunExperiment(trace, sim_config, "hawk");
    const hawk::RunResult sim_sparrow = hawk::RunExperiment(trace, sim_config, "sparrow");
    const hawk::RunComparison sim = hawk::CompareRuns(sim_hawk, sim_sparrow);

    const std::string x = hawk::Table::Num(ratio, 2);
    fig16.AddRow({x, hawk::Table::Num(impl.short_jobs.p50_ratio),
                  hawk::Table::Num(impl.short_jobs.p90_ratio),
                  hawk::Table::Num(sim.short_jobs.p50_ratio),
                  hawk::Table::Num(sim.short_jobs.p90_ratio),
                  hawk::Table::Pct(impl.baseline_median_util)});
    fig17.AddRow({x, hawk::Table::Num(impl.long_jobs.p50_ratio),
                  hawk::Table::Num(impl.long_jobs.p90_ratio),
                  hawk::Table::Num(sim.long_jobs.p50_ratio),
                  hawk::Table::Num(sim.long_jobs.p90_ratio),
                  hawk::Table::Pct(impl.baseline_median_util)});
    std::printf("  [ratio %.2f done: impl messages=%llu, steals=%llu]\n", ratio,
                static_cast<unsigned long long>(impl_hawk.counters.events),
                static_cast<unsigned long long>(impl_hawk.counters.entries_stolen));
  }

  std::printf("\nFigure 16: short jobs, implementation vs simulation\n");
  fig16.Print();
  std::printf("\nFigure 17: long jobs, implementation vs simulation\n");
  fig17.Print();
  return 0;
}
