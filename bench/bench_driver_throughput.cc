// End-to-end simulation-driver throughput: events per second for every
// scheduler on the fig-5-style Google-trace workload, at the paper's 15k-node
// scale, at 100k nodes, and at a 1M-worker scale point exercising the
// struct-of-arrays WorkerStore (all paper sizes divided by the usual 1/10
// simulation scale — the 1M-worker rows simulate 10M paper nodes). This is
// the repo's perf-trajectory baseline: scripts/bench.sh runs it and emits
// BENCH_driver.json so regressions show up as a number, not a feeling.
//
// The trace for each cluster size is generated once and shared across
// iterations and schedulers; only SimulationDriver::Run is timed.
#include <benchmark/benchmark.h>

#include <map>
#include <utility>

#include "bench/bench_util.h"
#include "src/scheduler/experiment.h"

namespace {

struct Workload {
  hawk::Trace trace;
  hawk::HawkConfig config;
};

// Jobs are scaled down with cluster size so the 100k-node point stays in
// benchmark territory; the offered load is calibrated to 0.93 in both cases.
const Workload& SharedWorkload(uint32_t paper_nodes, uint32_t jobs) {
  static std::map<std::pair<uint32_t, uint32_t>, Workload>* cache =
      new std::map<std::pair<uint32_t, uint32_t>, Workload>();
  auto [it, inserted] = cache->try_emplace({paper_nodes, jobs});
  if (inserted) {
    const uint32_t workers = hawk::bench::SimSize(paper_nodes);
    it->second.trace = hawk::bench::GoogleSweepTrace(jobs, /*seed=*/1, workers, workers,
                                                     /*target_util=*/0.93);
    it->second.config = hawk::bench::GoogleConfig(workers, /*seed=*/1);
  }
  return it->second;
}

void BM_DriverThroughput(benchmark::State& state, const char* scheduler,
                         uint32_t paper_nodes, uint32_t jobs) {
  const Workload& workload = SharedWorkload(paper_nodes, jobs);
  uint64_t events = 0;
  uint64_t tasks = 0;
  for (auto _ : state) {
    const hawk::RunResult result =
        hawk::RunExperiment(workload.trace, workload.config, scheduler);
    events += result.counters.events;
    tasks += result.counters.tasks_launched;
    benchmark::DoNotOptimize(result.makespan_us);
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["tasks/s"] =
      benchmark::Counter(static_cast<double>(tasks), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<int64_t>(events));
}

#define HAWK_DRIVER_BENCH(kind, scheduler, paper_nodes, jobs)                           \
  BENCHMARK_CAPTURE(BM_DriverThroughput, kind##_##paper_nodes##nodes, scheduler,        \
                    paper_nodes, jobs)                                                  \
      ->Unit(benchmark::kMillisecond)

// Paper scale: 15k nodes (fig. 5 operating point).
HAWK_DRIVER_BENCH(Sparrow, "sparrow", 15000, 3000);
HAWK_DRIVER_BENCH(Centralized, "centralized", 15000, 3000);
HAWK_DRIVER_BENCH(Hawk, "hawk", 15000, 3000);
HAWK_DRIVER_BENCH(Split, "split", 15000, 3000);

// Beyond the paper: 100k nodes.
HAWK_DRIVER_BENCH(Sparrow, "sparrow", 100000, 1000);
HAWK_DRIVER_BENCH(Centralized, "centralized", 100000, 1000);
HAWK_DRIVER_BENCH(Hawk, "hawk", 100000, 1000);
HAWK_DRIVER_BENCH(Split, "split", 100000, 1000);

// Million-worker scale point (10M paper nodes / 10): dominated by the
// worker-state memory layout — the reason WorkerStore is struct-of-arrays.
HAWK_DRIVER_BENCH(Sparrow, "sparrow", 10000000, 1000);
HAWK_DRIVER_BENCH(Hawk, "hawk", 10000000, 1000);

// Multi-slot variant: same 100k-node workload on 25k 4-slot workers (equal
// slot capacity, quarter the worker-state footprint).
void BM_DriverThroughputMultiSlot(benchmark::State& state, const char* scheduler,
                                  uint32_t paper_nodes, uint32_t slots, uint32_t jobs) {
  const Workload& workload = SharedWorkload(paper_nodes, jobs);
  hawk::HawkConfig config = workload.config;
  config.num_workers = hawk::bench::SimSize(paper_nodes) / slots;
  config.slots_per_worker = slots;
  uint64_t events = 0;
  uint64_t tasks = 0;
  for (auto _ : state) {
    const hawk::RunResult result = hawk::RunExperiment(workload.trace, config, scheduler);
    events += result.counters.events;
    tasks += result.counters.tasks_launched;
    benchmark::DoNotOptimize(result.makespan_us);
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["tasks/s"] =
      benchmark::Counter(static_cast<double>(tasks), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<int64_t>(events));
}

BENCHMARK_CAPTURE(BM_DriverThroughputMultiSlot, Hawk_100000nodes_4slots, "hawk", 100000, 4,
                  1000)
    ->Unit(benchmark::kMillisecond);

// Sharded-executor variant: the same workload through the epoch-synchronized
// sharded driver, sweeping the shard count at the 100k- and 1M-worker scale
// points (shards=1 is the serial driver, the scaling baseline). Thread pool
// is left at the hardware default; docs/performance.md tabulates the scaling.
void BM_DriverThroughputSharded(benchmark::State& state, const char* scheduler,
                                uint32_t paper_nodes, uint32_t jobs, uint32_t shards) {
  const Workload& workload = SharedWorkload(paper_nodes, jobs);
  hawk::HawkConfig config = workload.config;
  config.sim_shards = shards;
  config.sim_threads = 0;
  uint64_t events = 0;
  uint64_t tasks = 0;
  for (auto _ : state) {
    const hawk::RunResult result = hawk::RunExperiment(workload.trace, config, scheduler);
    events += result.counters.events;
    tasks += result.counters.tasks_launched;
    benchmark::DoNotOptimize(result.makespan_us);
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["tasks/s"] =
      benchmark::Counter(static_cast<double>(tasks), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<int64_t>(events));
}

#define HAWK_SHARDED_BENCH(kind, scheduler, paper_nodes, jobs, nshards)              \
  BENCHMARK_CAPTURE(BM_DriverThroughputSharded,                                      \
                    kind##_##paper_nodes##nodes_##nshards##shards, scheduler,        \
                    paper_nodes, jobs, nshards)                                      \
      ->Unit(benchmark::kMillisecond)

// 100k workers (1M paper nodes / 10).
HAWK_SHARDED_BENCH(Hawk, "hawk", 1000000, 1000, 1);
HAWK_SHARDED_BENCH(Hawk, "hawk", 1000000, 1000, 2);
HAWK_SHARDED_BENCH(Hawk, "hawk", 1000000, 1000, 4);
HAWK_SHARDED_BENCH(Hawk, "hawk", 1000000, 1000, 8);

// 1M workers (10M paper nodes / 10): the WorkerStore-bound point.
HAWK_SHARDED_BENCH(Hawk, "hawk", 10000000, 1000, 1);
HAWK_SHARDED_BENCH(Hawk, "hawk", 10000000, 1000, 2);
HAWK_SHARDED_BENCH(Hawk, "hawk", 10000000, 1000, 4);
HAWK_SHARDED_BENCH(Hawk, "hawk", 10000000, 1000, 8);

}  // namespace

BENCHMARK_MAIN();
