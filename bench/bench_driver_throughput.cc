// End-to-end simulation-driver throughput: events per second for every
// scheduler on the fig-5-style Google-trace workload, at the paper's 15k-node
// scale, at 100k nodes, and at a 1M-worker scale point exercising the
// struct-of-arrays WorkerStore (all paper sizes divided by the usual 1/10
// simulation scale — the 1M-worker rows simulate 10M paper nodes). This is
// the repo's perf-trajectory baseline: scripts/bench.sh runs it and emits
// BENCH_driver.json so regressions show up as a number, not a feeling.
//
// The trace for each cluster size is generated once and shared across
// iterations and schedulers; only SimulationDriver::Run is timed.
#include <benchmark/benchmark.h>

#include <map>
#include <utility>

#include "bench/bench_util.h"
#include "src/scheduler/experiment.h"

namespace {

struct Workload {
  hawk::Trace trace;
  hawk::HawkConfig config;
};

// Jobs are scaled down with cluster size so the 100k-node point stays in
// benchmark territory; the offered load is calibrated to 0.93 in both cases.
const Workload& SharedWorkload(uint32_t paper_nodes, uint32_t jobs) {
  static std::map<std::pair<uint32_t, uint32_t>, Workload>* cache =
      new std::map<std::pair<uint32_t, uint32_t>, Workload>();
  auto [it, inserted] = cache->try_emplace({paper_nodes, jobs});
  if (inserted) {
    const uint32_t workers = hawk::bench::SimSize(paper_nodes);
    it->second.trace = hawk::bench::GoogleSweepTrace(jobs, /*seed=*/1, workers, workers,
                                                     /*target_util=*/0.93);
    it->second.config = hawk::bench::GoogleConfig(workers, /*seed=*/1);
  }
  return it->second;
}

// Rate counters shared by every variant below. "events/s" is the
// executor-independent paper-event rate (bench_util.h PaperEvents), so
// serial and sharded rows compare directly; "simevents/s" is the executor's
// internal event-loop rate, comparable within one executor only.
void RecordRates(benchmark::State& state, uint64_t pevents, uint64_t sim_events,
                 uint64_t tasks) {
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(pevents), benchmark::Counter::kIsRate);
  state.counters["simevents/s"] =
      benchmark::Counter(static_cast<double>(sim_events), benchmark::Counter::kIsRate);
  state.counters["tasks/s"] =
      benchmark::Counter(static_cast<double>(tasks), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<int64_t>(pevents));
}

void BM_DriverThroughput(benchmark::State& state, const char* scheduler,
                         uint32_t paper_nodes, uint32_t jobs) {
  const Workload& workload = SharedWorkload(paper_nodes, jobs);
  uint64_t pevents = 0;
  uint64_t sim_events = 0;
  uint64_t tasks = 0;
  for (auto _ : state) {
    const hawk::RunResult result =
        hawk::RunExperiment(workload.trace, workload.config, scheduler);
    pevents += hawk::bench::PaperEvents(result.counters);
    sim_events += result.counters.events;
    tasks += result.counters.tasks_launched;
    benchmark::DoNotOptimize(result.makespan_us);
  }
  RecordRates(state, pevents, sim_events, tasks);
}

#define HAWK_DRIVER_BENCH(kind, scheduler, paper_nodes, jobs)                           \
  BENCHMARK_CAPTURE(BM_DriverThroughput, kind##_##paper_nodes##nodes, scheduler,        \
                    paper_nodes, jobs)                                                  \
      ->Unit(benchmark::kMillisecond)

// Paper scale: 15k nodes (fig. 5 operating point).
HAWK_DRIVER_BENCH(Sparrow, "sparrow", 15000, 3000);
HAWK_DRIVER_BENCH(Centralized, "centralized", 15000, 3000);
HAWK_DRIVER_BENCH(Hawk, "hawk", 15000, 3000);
HAWK_DRIVER_BENCH(Split, "split", 15000, 3000);

// Beyond the paper: 100k nodes.
HAWK_DRIVER_BENCH(Sparrow, "sparrow", 100000, 1000);
HAWK_DRIVER_BENCH(Centralized, "centralized", 100000, 1000);
HAWK_DRIVER_BENCH(Hawk, "hawk", 100000, 1000);
HAWK_DRIVER_BENCH(Split, "split", 100000, 1000);

// Million-worker scale point (10M paper nodes / 10): dominated by the
// worker-state memory layout — the reason WorkerStore is struct-of-arrays.
HAWK_DRIVER_BENCH(Sparrow, "sparrow", 10000000, 1000);
HAWK_DRIVER_BENCH(Hawk, "hawk", 10000000, 1000);

// Multi-slot variant: same 100k-node workload on 25k 4-slot workers (equal
// slot capacity, quarter the worker-state footprint).
void BM_DriverThroughputMultiSlot(benchmark::State& state, const char* scheduler,
                                  uint32_t paper_nodes, uint32_t slots, uint32_t jobs) {
  const Workload& workload = SharedWorkload(paper_nodes, jobs);
  hawk::HawkConfig config = workload.config;
  config.num_workers = hawk::bench::SimSize(paper_nodes) / slots;
  config.slots_per_worker = slots;
  uint64_t pevents = 0;
  uint64_t sim_events = 0;
  uint64_t tasks = 0;
  for (auto _ : state) {
    const hawk::RunResult result = hawk::RunExperiment(workload.trace, config, scheduler);
    pevents += hawk::bench::PaperEvents(result.counters);
    sim_events += result.counters.events;
    tasks += result.counters.tasks_launched;
    benchmark::DoNotOptimize(result.makespan_us);
  }
  RecordRates(state, pevents, sim_events, tasks);
}

BENCHMARK_CAPTURE(BM_DriverThroughputMultiSlot, Hawk_100000nodes_4slots, "hawk", 100000, 4,
                  1000)
    ->Unit(benchmark::kMillisecond);

// Sharded-executor variant: the same workload through the epoch-synchronized
// sharded driver, sweeping shard count x pool size at the 100k- and 1M-worker
// scale points (shards=1 is the serial driver, the scaling baseline; there
// the thread count is irrelevant, so only the 1-thread row exists).
// docs/performance.md tabulates the scaling; scripts/bench.sh exports this
// grid as BENCH_shard_scaling.json.
void BM_DriverThroughputSharded(benchmark::State& state, const char* scheduler,
                                uint32_t paper_nodes, uint32_t jobs, uint32_t shards,
                                uint32_t threads) {
  const Workload& workload = SharedWorkload(paper_nodes, jobs);
  hawk::HawkConfig config = workload.config;
  config.sim_shards = shards;
  config.sim_threads = threads;
  uint64_t pevents = 0;
  uint64_t sim_events = 0;
  uint64_t tasks = 0;
  for (auto _ : state) {
    const hawk::RunResult result = hawk::RunExperiment(workload.trace, config, scheduler);
    pevents += hawk::bench::PaperEvents(result.counters);
    sim_events += result.counters.events;
    tasks += result.counters.tasks_launched;
    benchmark::DoNotOptimize(result.makespan_us);
  }
  RecordRates(state, pevents, sim_events, tasks);
}

#define HAWK_SHARDED_BENCH(kind, scheduler, paper_nodes, jobs, nshards, nthreads)    \
  BENCHMARK_CAPTURE(BM_DriverThroughputSharded,                                      \
                    kind##_##paper_nodes##nodes_##nshards##shards_##nthreads##threads, \
                    scheduler, paper_nodes, jobs, nshards, nthreads)                 \
      ->Unit(benchmark::kMillisecond)

#define HAWK_SHARDED_BENCH_GRID(kind, scheduler, paper_nodes, jobs)                  \
  HAWK_SHARDED_BENCH(kind, scheduler, paper_nodes, jobs, 1, 1);                      \
  HAWK_SHARDED_BENCH(kind, scheduler, paper_nodes, jobs, 2, 1);                      \
  HAWK_SHARDED_BENCH(kind, scheduler, paper_nodes, jobs, 2, 2);                      \
  HAWK_SHARDED_BENCH(kind, scheduler, paper_nodes, jobs, 2, 4);                      \
  HAWK_SHARDED_BENCH(kind, scheduler, paper_nodes, jobs, 4, 1);                      \
  HAWK_SHARDED_BENCH(kind, scheduler, paper_nodes, jobs, 4, 2);                      \
  HAWK_SHARDED_BENCH(kind, scheduler, paper_nodes, jobs, 4, 4);                      \
  HAWK_SHARDED_BENCH(kind, scheduler, paper_nodes, jobs, 8, 1);                      \
  HAWK_SHARDED_BENCH(kind, scheduler, paper_nodes, jobs, 8, 2);                      \
  HAWK_SHARDED_BENCH(kind, scheduler, paper_nodes, jobs, 8, 4)

// 100k workers (1M paper nodes / 10).
HAWK_SHARDED_BENCH_GRID(Hawk, "hawk", 1000000, 1000);

// 1M workers (10M paper nodes / 10): the WorkerStore-bound point.
HAWK_SHARDED_BENCH_GRID(Hawk, "hawk", 10000000, 1000);

}  // namespace

BENCHMARK_MAIN();
