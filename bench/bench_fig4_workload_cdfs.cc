// Figure 4 (a-d): workload properties — CDFs of average task duration per job
// and of the number of tasks per job, for long and short jobs, across the
// four workloads.
//
// Paper ranges: long task durations reach ~15000 s (4a); short durations stay
// below ~800 s (4b); long jobs reach thousands of tasks (4c); short jobs stay
// below ~180 tasks (4d).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/workload/trace_stats.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const uint32_t jobs = hawk::bench::ScaledJobs(flags, 6000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const size_t points = static_cast<size_t>(flags.GetInt("points", 10));

  struct Entry {
    std::string name;
    hawk::Trace trace;
    hawk::LongJobPredicate is_long;
  };
  std::vector<Entry> workloads;
  {
    hawk::GoogleTraceParams p;
    p.num_jobs = jobs;
    p.seed = seed;
    workloads.push_back({"google", hawk::GenerateGoogleTrace(p),
                         hawk::LongByCutoff(hawk::SecondsToUs(1129.0))});
  }
  workloads.push_back({"cloudera",
                       hawk::GenerateClusterWorkload(hawk::ClouderaParams(jobs, seed)),
                       hawk::LongByHint()});
  workloads.push_back({"facebook",
                       hawk::GenerateClusterWorkload(hawk::FacebookParams(jobs, seed)),
                       hawk::LongByHint()});
  workloads.push_back({"yahoo", hawk::GenerateClusterWorkload(hawk::YahooParams(jobs, seed)),
                       hawk::LongByHint()});

  hawk::bench::PrintHeader("Figure 4: workload properties (" + std::to_string(jobs) +
                           " jobs per workload)");
  for (const Entry& entry : workloads) {
    const hawk::WorkloadCdfs cdfs = hawk::ComputeCdfs(entry.trace, entry.is_long);
    std::printf("\n--- %s ---\n", entry.name.c_str());
    hawk::PrintCdf("Fig 4a: avg task duration per job (s), long jobs",
                   cdfs.long_avg_task_duration_s, points);
    hawk::PrintCdf("Fig 4b: avg task duration per job (s), short jobs",
                   cdfs.short_avg_task_duration_s, points);
    hawk::PrintCdf("Fig 4c: tasks per job, long jobs", cdfs.long_tasks_per_job, points);
    hawk::PrintCdf("Fig 4d: tasks per job, short jobs", cdfs.short_tasks_per_job, points);
  }
  return 0;
}
