// Tests for the workload substrate: generators hit their calibration targets
// (Table 1), trace I/O round-trips, scaling preserves work, arrivals follow
// the requested Poisson mean.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/common/random.h"
#include "src/workload/arrivals.h"
#include "src/workload/cluster_workloads.h"
#include "src/workload/google_trace.h"
#include "src/workload/scaling.h"
#include "src/workload/trace.h"
#include "src/workload/trace_stats.h"

namespace hawk {
namespace {

constexpr DurationUs kGoogleCutoffUs = SecondsToUs(1129.0);

GoogleTraceParams SmallGoogle(uint32_t jobs, uint64_t seed) {
  GoogleTraceParams params;
  params.num_jobs = jobs;
  params.seed = seed;
  return params;
}

TEST(JobTest, BasicAccessors) {
  Job job;
  job.task_durations = {SecondsToUs(10), SecondsToUs(20), SecondsToUs(30)};
  EXPECT_EQ(job.NumTasks(), 3u);
  EXPECT_EQ(job.TotalWorkUs(), SecondsToUs(60));
  EXPECT_DOUBLE_EQ(job.AvgTaskDurationUs(), SecondsToUs(20));
  EXPECT_EQ(job.MaxTaskDurationUs(), SecondsToUs(30));
}

TEST(TraceTest, SortAndRenumberOrdersBySubmitTime) {
  Trace trace;
  for (const SimTime t : {300, 100, 200}) {
    Job job;
    job.submit_time = t;
    job.task_durations = {1000};
    trace.Add(job);
  }
  trace.SortAndRenumber();
  EXPECT_EQ(trace.job(0).submit_time, 100);
  EXPECT_EQ(trace.job(1).submit_time, 200);
  EXPECT_EQ(trace.job(2).submit_time, 300);
  for (JobId i = 0; i < 3; ++i) {
    EXPECT_EQ(trace.job(i).id, i);
  }
}

TEST(TraceTest, FileRoundTrip) {
  const Trace original = GenerateGoogleTrace(SmallGoogle(50, 3));
  const std::string path = testing::TempDir() + "/trace_roundtrip.txt";
  ASSERT_TRUE(original.SaveToFile(path).ok());
  const auto loaded = Trace::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().NumJobs(), original.NumJobs());
  for (size_t i = 0; i < original.NumJobs(); ++i) {
    EXPECT_EQ(loaded.value().job(i).submit_time, original.job(i).submit_time);
    EXPECT_EQ(loaded.value().job(i).long_hint, original.job(i).long_hint);
    EXPECT_EQ(loaded.value().job(i).task_durations, original.job(i).task_durations);
  }
  std::remove(path.c_str());
}

TEST(TraceTest, LoadRejectsMissingFile) {
  const auto result = Trace::LoadFromFile("/nonexistent/path/to/trace.txt");
  EXPECT_FALSE(result.ok());
}

TEST(TraceTest, LoadRejectsMalformedLine) {
  const std::string path = testing::TempDir() + "/trace_bad.txt";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("0 0 0 3 100 200\n", f);  // Claims 3 tasks, provides 2.
  fclose(f);
  EXPECT_FALSE(Trace::LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(GoogleTraceTest, DeterministicForSeed) {
  const Trace a = GenerateGoogleTrace(SmallGoogle(200, 5));
  const Trace b = GenerateGoogleTrace(SmallGoogle(200, 5));
  ASSERT_EQ(a.NumJobs(), b.NumJobs());
  for (size_t i = 0; i < a.NumJobs(); ++i) {
    EXPECT_EQ(a.job(i).task_durations, b.job(i).task_durations);
  }
}

TEST(GoogleTraceTest, MatchesPaperMixStatistics) {
  // Table 1, Google 2011 row: 10.00% long jobs, 83.65% task-seconds.
  const Trace trace = GenerateGoogleTrace(SmallGoogle(8000, 7));
  const WorkloadMix mix = ComputeMix(trace, LongByCutoff(kGoogleCutoffUs));
  EXPECT_NEAR(mix.pct_long_jobs, 10.0, 1.0);
  EXPECT_NEAR(mix.pct_task_seconds_long, 83.65, 6.0);
  // §2.1: long jobs carry a disproportionate share of tasks as well.
  EXPECT_GT(mix.pct_tasks_long, 12.0);
  EXPECT_GT(mix.avg_task_duration_ratio, 5.0);
}

TEST(GoogleTraceTest, HintAgreesWithCutoffClassification) {
  // The mixture construction keeps short jobs below the default cutoff and
  // long jobs above it, so hint- and cutoff-classification nearly coincide.
  const Trace trace = GenerateGoogleTrace(SmallGoogle(3000, 11));
  size_t disagree = 0;
  const auto by_cutoff = LongByCutoff(kGoogleCutoffUs);
  for (const Job& job : trace.jobs()) {
    if (by_cutoff(job) != job.long_hint) {
      ++disagree;
    }
  }
  EXPECT_LT(static_cast<double>(disagree) / static_cast<double>(trace.NumJobs()), 0.02);
}

TEST(GoogleTraceTest, TaskCountsWithinCaps) {
  GoogleTraceParams params = SmallGoogle(3000, 13);
  const Trace trace = GenerateGoogleTrace(params);
  for (const Job& job : trace.jobs()) {
    ASSERT_GE(job.NumTasks(), 1u);
    if (job.long_hint) {
      EXPECT_LE(job.NumTasks(), params.long_tasks_cap);
    } else {
      EXPECT_LE(job.NumTasks(), params.short_tasks_cap);
    }
  }
}

struct ClusterWorkloadCase {
  const char* name;
  double expected_pct_long;
  double expected_pct_task_seconds;
  double tolerance_pct_long;
  double tolerance_task_seconds;
};

class ClusterWorkloadTest : public testing::TestWithParam<ClusterWorkloadCase> {};

ClusterWorkloadParams ParamsFor(const std::string& name, uint32_t jobs, uint64_t seed) {
  if (name == "cloudera-c") {
    return ClouderaParams(jobs, seed);
  }
  if (name == "facebook-2010") {
    return FacebookParams(jobs, seed);
  }
  return YahooParams(jobs, seed);
}

TEST_P(ClusterWorkloadTest, MatchesPaperTable1) {
  const ClusterWorkloadCase& expected = GetParam();
  const Trace trace = GenerateClusterWorkload(ParamsFor(expected.name, 12000, 17));
  const WorkloadMix mix = ComputeMix(trace, LongByHint());
  EXPECT_NEAR(mix.pct_long_jobs, expected.expected_pct_long, expected.tolerance_pct_long)
      << expected.name;
  EXPECT_NEAR(mix.pct_task_seconds_long, expected.expected_pct_task_seconds,
              expected.tolerance_task_seconds)
      << expected.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, ClusterWorkloadTest,
    testing::Values(ClusterWorkloadCase{"cloudera-c", 5.02, 92.79, 0.8, 4.0},
                    ClusterWorkloadCase{"facebook-2010", 2.01, 99.79, 0.5, 0.5},
                    ClusterWorkloadCase{"yahoo-2011", 9.41, 98.31, 1.0, 1.5}),
    [](const testing::TestParamInfo<ClusterWorkloadCase>& param_info) {
      std::string name = param_info.param.name;
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(MotivationTraceTest, MatchesSection23Scenario) {
  const Trace trace = GenerateMotivationTrace(1000, 0.1, 42);
  EXPECT_EQ(trace.NumJobs(), 1000u);
  size_t long_jobs = 0;
  for (const Job& job : trace.jobs()) {
    if (job.long_hint) {
      ++long_jobs;
      EXPECT_EQ(job.NumTasks(), 100u);  // 1000 * 0.1
      EXPECT_EQ(job.task_durations[0], SecondsToUs(20000.0));
    } else {
      EXPECT_EQ(job.NumTasks(), 100u);
      EXPECT_EQ(job.task_durations[0], SecondsToUs(100.0));
    }
  }
  EXPECT_NEAR(static_cast<double>(long_jobs), 50.0, 25.0);
}

TEST(ArrivalsTest, PoissonMeanConverges) {
  Trace trace;
  for (int i = 0; i < 20000; ++i) {
    Job job;
    job.task_durations = {1000};
    trace.Add(job);
  }
  Rng rng(5);
  AssignPoissonArrivals(&trace, 1000, &rng);
  const double mean = static_cast<double>(trace.jobs().back().submit_time) /
                      static_cast<double>(trace.NumJobs());
  EXPECT_NEAR(mean, 1000.0, 30.0);
  // Monotone submissions after renumbering.
  for (size_t i = 1; i < trace.NumJobs(); ++i) {
    EXPECT_GE(trace.job(i).submit_time, trace.job(i - 1).submit_time);
  }
}

TEST(ArrivalsTest, InterarrivalForUtilizationInvertsLoadFormula) {
  Trace trace = GenerateGoogleTrace(SmallGoogle(500, 23));
  const uint32_t workers = 1500;
  const double target = 0.9;
  const DurationUs mean = MeanInterarrivalForUtilization(trace, target, workers);
  const double implied_util =
      static_cast<double>(trace.TotalWorkUs()) /
      (static_cast<double>(mean) * static_cast<double>(trace.NumJobs()) * workers);
  EXPECT_NEAR(implied_util, target, 0.02);
}

TEST(ScalingTest, CapTasksPreservesWork) {
  const Trace trace = GenerateGoogleTrace(SmallGoogle(400, 29));
  const Trace capped = CapTasksPreserveWork(trace, 50);
  ASSERT_EQ(capped.NumJobs(), trace.NumJobs());
  for (size_t i = 0; i < trace.NumJobs(); ++i) {
    EXPECT_LE(capped.job(i).NumTasks(), 50u);
    // Task-seconds preserved within rounding (1 us per task).
    const double original = static_cast<double>(trace.job(i).TotalWorkUs());
    const double scaled = static_cast<double>(capped.job(i).TotalWorkUs());
    EXPECT_NEAR(scaled / original, 1.0, 1e-4);
  }
}

TEST(ScalingTest, CapLeavesSmallJobsAlone) {
  const Trace trace = GenerateGoogleTrace(SmallGoogle(200, 31));
  const Trace capped = CapTasksPreserveWork(trace, 100000);
  for (size_t i = 0; i < trace.NumJobs(); ++i) {
    EXPECT_EQ(capped.job(i).task_durations, trace.job(i).task_durations);
  }
}

TEST(ScalingTest, RescaleTimeAppliesFactor) {
  Trace trace;
  Job job;
  job.submit_time = 1'000'000;
  job.task_durations = {2'000'000, 4'000'000};
  trace.Add(job);
  trace.SortAndRenumber();
  const Trace scaled = RescaleTime(trace, 0.001);
  EXPECT_EQ(scaled.job(0).submit_time, 1000);
  EXPECT_EQ(scaled.job(0).task_durations[0], 2000);
  EXPECT_EQ(scaled.job(0).task_durations[1], 4000);
}

TEST(ScalingTest, RescaleClampsToOneMicrosecond) {
  Trace trace;
  Job job;
  job.task_durations = {5};
  trace.Add(job);
  trace.SortAndRenumber();
  const Trace scaled = RescaleTime(trace, 0.001);
  EXPECT_EQ(scaled.job(0).task_durations[0], 1);
}

TEST(ScalingTest, SampleJobsTakesSubset) {
  const Trace trace = GenerateGoogleTrace(SmallGoogle(300, 37));
  Rng rng(1);
  const Trace sample = SampleJobs(trace, 50, &rng);
  EXPECT_EQ(sample.NumJobs(), 50u);
  const Trace all = SampleJobs(trace, 1000, &rng);
  EXPECT_EQ(all.NumJobs(), 300u);
}

TEST(TraceStatsTest, MixOnHandBuiltTrace) {
  Trace trace;
  Job short_job;
  short_job.task_durations = {SecondsToUs(10), SecondsToUs(10)};  // 20 task-sec
  short_job.long_hint = false;
  Job long_job;
  long_job.task_durations = {SecondsToUs(40), SecondsToUs(40)};  // 80 task-sec
  long_job.long_hint = true;
  trace.Add(short_job);
  trace.Add(long_job);
  trace.SortAndRenumber();
  const WorkloadMix mix = ComputeMix(trace, LongByHint());
  EXPECT_EQ(mix.total_jobs, 2u);
  EXPECT_EQ(mix.long_jobs, 1u);
  EXPECT_DOUBLE_EQ(mix.pct_long_jobs, 50.0);
  EXPECT_DOUBLE_EQ(mix.pct_task_seconds_long, 80.0);
  EXPECT_DOUBLE_EQ(mix.pct_tasks_long, 50.0);
  EXPECT_DOUBLE_EQ(mix.avg_task_duration_ratio, 4.0);
}

TEST(TraceStatsTest, CdfsSplitByClass) {
  const Trace trace = GenerateGoogleTrace(SmallGoogle(1000, 41));
  const WorkloadCdfs cdfs = ComputeCdfs(trace, LongByCutoff(kGoogleCutoffUs));
  EXPECT_EQ(cdfs.long_avg_task_duration_s.Count() + cdfs.short_avg_task_duration_s.Count(),
            trace.NumJobs());
  // Long jobs sit above the cutoff, short below (Fig. 4a/4b separation).
  EXPECT_GE(cdfs.long_avg_task_duration_s.Min(), 1129.0);
  EXPECT_LT(cdfs.short_avg_task_duration_s.Max(), 1129.0 + 1.0);
}

}  // namespace
}  // namespace hawk
