// Tests for the extension features: diurnal/bursty arrival processes, the
// steal-retry option, queueing-delay telemetry, and CSV export.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/metrics/csv_export.h"
#include "src/scheduler/experiment.h"
#include "src/workload/arrival_patterns.h"
#include "src/workload/arrivals.h"
#include "src/workload/google_trace.h"
#include "src/workload/scaling.h"

namespace hawk {
namespace {

Trace FlatJobs(size_t count) {
  Trace trace;
  for (size_t i = 0; i < count; ++i) {
    Job job;
    job.task_durations = {SecondsToUs(1.0)};
    trace.Add(job);
  }
  trace.SortAndRenumber();
  return trace;
}

double MeanInterarrival(const Trace& trace) {
  return static_cast<double>(trace.jobs().back().submit_time) /
         static_cast<double>(trace.NumJobs());
}

// Coefficient of variation of the inter-arrival gaps; Poisson -> ~1,
// diurnal/bursty -> > 1.
double InterarrivalCv(const Trace& trace) {
  std::vector<double> gaps;
  for (size_t i = 1; i < trace.NumJobs(); ++i) {
    gaps.push_back(
        static_cast<double>(trace.job(i).submit_time - trace.job(i - 1).submit_time));
  }
  double mean = 0;
  for (const double g : gaps) {
    mean += g;
  }
  mean /= static_cast<double>(gaps.size());
  double var = 0;
  for (const double g : gaps) {
    var += (g - mean) * (g - mean);
  }
  var /= static_cast<double>(gaps.size());
  return std::sqrt(var) / mean;
}

TEST(DiurnalArrivalsTest, PreservesMeanRate) {
  Trace trace = FlatJobs(30000);
  Rng rng(3);
  DiurnalParams params;
  params.mean_interarrival_us = 1000;
  params.amplitude = 0.7;
  params.period_us = 200'000;
  AssignDiurnalArrivals(&trace, params, &rng);
  EXPECT_NEAR(MeanInterarrival(trace), 1000.0, 50.0);
}

TEST(DiurnalArrivalsTest, RateOscillates) {
  // Counting arrivals per period-half: peaks should hold more than troughs.
  Trace trace = FlatJobs(40000);
  Rng rng(5);
  DiurnalParams params;
  params.mean_interarrival_us = 1000;
  params.amplitude = 0.8;
  params.period_us = 1'000'000;
  AssignDiurnalArrivals(&trace, params, &rng);
  // First half of each period (sin > 0) vs second half.
  size_t first_half = 0;
  size_t second_half = 0;
  for (const Job& job : trace.jobs()) {
    const SimTime within = job.submit_time % params.period_us;
    (within < params.period_us / 2 ? first_half : second_half)++;
  }
  EXPECT_GT(static_cast<double>(first_half), 1.3 * static_cast<double>(second_half));
}

TEST(DiurnalArrivalsTest, ZeroAmplitudeIsPoissonLike) {
  Trace trace = FlatJobs(20000);
  Rng rng(7);
  DiurnalParams params;
  params.mean_interarrival_us = 500;
  params.amplitude = 0.0;
  AssignDiurnalArrivals(&trace, params, &rng);
  EXPECT_NEAR(InterarrivalCv(trace), 1.0, 0.1);
}

TEST(BurstyArrivalsTest, PreservesMeanRate) {
  // The MMPP mean converges slowly (arrivals are correlated within bursts);
  // use many short cycles and a tolerance sized to the estimator's variance.
  Trace trace = FlatJobs(60000);
  Rng rng(9);
  BurstyParams params;
  params.mean_interarrival_us = 1000;
  params.burst_duty = 0.25;
  params.burstiness = 3.5;
  params.cycle_us = 20'000;
  AssignBurstyArrivals(&trace, params, &rng);
  EXPECT_NEAR(MeanInterarrival(trace), 1000.0, 100.0);
}

TEST(BurstyArrivalsTest, GapsAreOverdispersed) {
  Trace trace = FlatJobs(30000);
  Rng rng(11);
  BurstyParams params;
  params.mean_interarrival_us = 1000;
  params.burst_duty = 0.2;
  params.burstiness = 4.0;
  params.cycle_us = 200'000;
  AssignBurstyArrivals(&trace, params, &rng);
  EXPECT_GT(InterarrivalCv(trace), 1.3);  // Poisson would be ~1.
}

TEST(BurstyArrivalsTest, MonotoneSubmissions) {
  Trace trace = FlatJobs(5000);
  Rng rng(13);
  BurstyParams params;
  AssignBurstyArrivals(&trace, params, &rng);
  for (size_t i = 1; i < trace.NumJobs(); ++i) {
    EXPECT_GE(trace.job(i).submit_time, trace.job(i - 1).submit_time);
  }
}

// --- Steal retry ----------------------------------------------------------

Trace LoadedTrace(uint32_t workers, uint64_t seed) {
  GoogleTraceParams params;
  params.num_jobs = 400;
  params.seed = seed;
  Trace trace = CapTasksPreserveWork(GenerateGoogleTrace(params), workers / 2);
  Rng rng(seed);
  AssignPoissonArrivals(&trace, MeanInterarrivalForUtilization(trace, 0.95, workers), &rng);
  return trace;
}

TEST(StealRetryTest, RetryingNeverLosesTasks) {
  const uint32_t workers = 300;
  const Trace trace = LoadedTrace(workers, 31);
  HawkConfig config;
  config.num_workers = workers;
  config.steal_retry_interval_us = SecondsToUs(5.0);
  const RunResult result = RunExperiment(trace, config, "hawk");
  EXPECT_EQ(result.counters.tasks_launched, trace.TotalTasks());
  EXPECT_EQ(result.total_busy_us, trace.TotalWorkUs());
}

TEST(StealRetryTest, RetryIncreasesStealActivity) {
  const uint32_t workers = 300;
  const Trace trace = LoadedTrace(workers, 33);
  HawkConfig config;
  config.num_workers = workers;
  const RunResult one_shot = RunExperiment(trace, config, "hawk");
  config.steal_retry_interval_us = SecondsToUs(2.0);
  const RunResult retrying = RunExperiment(trace, config, "hawk");
  EXPECT_GT(retrying.counters.steal_attempts, one_shot.counters.steal_attempts);
}

TEST(StealRetryTest, DisabledByDefault) {
  HawkConfig config;
  EXPECT_EQ(config.steal_retry_interval_us, 0);
}

// --- Queueing-delay telemetry -----------------------------------------------

TEST(QueueWaitTelemetryTest, CountsEveryLaunchedTask) {
  const uint32_t workers = 300;
  const Trace trace = LoadedTrace(workers, 35);
  HawkConfig config;
  config.num_workers = workers;
  const RunResult result = RunExperiment(trace, config, "hawk");
  EXPECT_EQ(result.counters.short_tasks_started + result.counters.long_tasks_started,
            trace.TotalTasks());
  EXPECT_GE(result.counters.AvgQueueWaitSeconds(false), 0.0);
  EXPECT_GE(result.counters.AvgQueueWaitSeconds(true), 0.0);
}

TEST(QueueWaitTelemetryTest, SparrowShortWaitsExceedHawksUnderLoad) {
  // The mechanism behind Figure 5b, measured directly: short tasks queue far
  // longer under Sparrow than under Hawk in a loaded cluster.
  const uint32_t workers = 300;
  const Trace trace = LoadedTrace(workers, 37);
  HawkConfig config;
  config.num_workers = workers;
  const RunResult hawk = RunExperiment(trace, config, "hawk");
  const RunResult sparrow = RunExperiment(trace, config, "sparrow");
  EXPECT_LT(hawk.counters.AvgQueueWaitSeconds(false),
            sparrow.counters.AvgQueueWaitSeconds(false));
}

TEST(QueueWaitTelemetryTest, IdleClusterHasNearZeroWaits) {
  Trace trace;
  Job job;
  job.task_durations = {SecondsToUs(1.0)};
  trace.Add(job);
  trace.SortAndRenumber();
  HawkConfig config;
  config.num_workers = 50;
  const RunResult result = RunExperiment(trace, config, "hawk");
  // One short task; waited only the late-binding RTT.
  EXPECT_EQ(result.counters.short_tasks_started, 1u);
  EXPECT_LE(result.counters.short_queue_wait_us, static_cast<uint64_t>(MillisToUs(2)));
}

// --- CSV export ----------------------------------------------------------------

TEST(CsvExportTest, JobResultsRoundTrip) {
  const uint32_t workers = 100;
  const Trace trace = LoadedTrace(workers, 39);
  HawkConfig config;
  config.num_workers = workers;
  const RunResult result = RunExperiment(trace, config, "sparrow");

  const std::string path = testing::TempDir() + "/jobs.csv";
  ASSERT_TRUE(WriteJobResultsCsv(path, result).ok());
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "job_id,is_long,submit_us,finish_us,runtime_us");
  size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++rows;
  }
  EXPECT_EQ(rows, result.jobs.size());
  std::remove(path.c_str());
}

TEST(CsvExportTest, UtilizationCsvWellFormed) {
  RunResult result;
  result.utilization_samples = {0.1, 0.5, 0.9};
  const std::string path = testing::TempDir() + "/util.csv";
  ASSERT_TRUE(WriteUtilizationCsv(path, result).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "sample_index,utilization");
  std::getline(in, line);
  EXPECT_EQ(line, "0,0.1");
  std::remove(path.c_str());
}

TEST(CsvExportTest, BadPathReturnsError) {
  RunResult result;
  EXPECT_FALSE(WriteJobResultsCsv("/nonexistent/dir/x.csv", result).ok());
  EXPECT_FALSE(WriteUtilizationCsv("/nonexistent/dir/y.csv", result).ok());
}

}  // namespace
}  // namespace hawk
