// Sharded-executor pins: for a fixed config, the RunResult must be
// bit-identical across phase thread counts (sim_threads is non-semantic) and
// across shard counts > 1 (the epoch protocol's canonical merge order hides
// the partitioning), with the fault and straggler layers on as well as off.
// Work conservation (busy time = nominal work + wasted ledger) must survive
// sharding, and cross-shard steals must actually flow in a maximally sharded
// cluster. The sharded-vs-serial relationship is pinned by golden_test.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/hawk_config.h"
#include "src/scheduler/experiment.h"
#include "src/workload/arrivals.h"
#include "src/workload/cluster_workloads.h"
#include "src/workload/trace.h"

namespace hawk {
namespace {

const char* kAllSchedulers[] = {"sparrow", "centralized", "hawk", "hawk-dchoice",
                                "hawk-spec", "hawk-latebind", "split"};

Trace MakeTrace(uint32_t jobs = 150, uint64_t seed = 5, double interarrival_s = 2.0) {
  Trace trace = GenerateClusterWorkload(FacebookParams(jobs, seed));
  Rng arrivals_rng(11);
  AssignPoissonArrivals(&trace, SecondsToUs(interarrival_s), &arrivals_rng);
  return trace;
}

HawkConfig BaseConfig() {
  HawkConfig config;
  config.num_workers = 100;
  config.classify_mode = ClassifyMode::kHint;
  config.seed = 7;
  return config;
}

// Rates as in fault_test.cc: per worker per second, well below the reciprocal
// of the longest task duration so crashed work still terminates.
HawkConfig ChaosConfig() {
  HawkConfig config = BaseConfig();
  config.worker_crash_rate = 3e-7;
  config.worker_churn_rate = 2e-7;
  config.worker_downtime_us = SecondsToUs(20.0);
  config.message_loss_rate = 0.05;
  config.message_delay_jitter_us = 2'000;
  config.straggler_rate = 0.05;
  config.fault_seed = 3;
  return config;
}

RunResult RunSharded(const Trace& trace, HawkConfig config, const char* scheduler,
                     uint32_t shards, uint32_t threads) {
  config.sim_shards = shards;
  config.sim_threads = threads;
  return RunExperiment(trace, config, scheduler);
}

// Full bit-identity: every per-job time, every counter, every sample.
void ExpectIdentical(const RunResult& r1, const RunResult& r2) {
  ASSERT_EQ(r1.jobs.size(), r2.jobs.size());
  for (size_t i = 0; i < r1.jobs.size(); ++i) {
    ASSERT_EQ(r1.jobs[i].id, r2.jobs[i].id);
    ASSERT_EQ(r1.jobs[i].is_long, r2.jobs[i].is_long) << "job " << i;
    ASSERT_EQ(r1.jobs[i].submit_time, r2.jobs[i].submit_time) << "job " << i;
    ASSERT_EQ(r1.jobs[i].finish_time, r2.jobs[i].finish_time) << "job " << i;
  }
  EXPECT_EQ(r1.makespan_us, r2.makespan_us);
  EXPECT_EQ(r1.total_busy_us, r2.total_busy_us);
  EXPECT_EQ(r1.utilization_samples, r2.utilization_samples);
  const RunCounters& c1 = r1.counters;
  const RunCounters& c2 = r2.counters;
  EXPECT_EQ(c1.jobs, c2.jobs);
  EXPECT_EQ(c1.tasks_launched, c2.tasks_launched);
  EXPECT_EQ(c1.probes_placed, c2.probes_placed);
  EXPECT_EQ(c1.probe_requests, c2.probe_requests);
  EXPECT_EQ(c1.cancels, c2.cancels);
  EXPECT_EQ(c1.central_tasks_placed, c2.central_tasks_placed);
  EXPECT_EQ(c1.steal_attempts, c2.steal_attempts);
  EXPECT_EQ(c1.steal_victim_probes, c2.steal_victim_probes);
  EXPECT_EQ(c1.steal_successes, c2.steal_successes);
  EXPECT_EQ(c1.entries_stolen, c2.entries_stolen);
  EXPECT_EQ(c1.events, c2.events);
  EXPECT_EQ(c1.short_tasks_started, c2.short_tasks_started);
  EXPECT_EQ(c1.long_tasks_started, c2.long_tasks_started);
  EXPECT_EQ(c1.short_queue_wait_us, c2.short_queue_wait_us);
  EXPECT_EQ(c1.long_queue_wait_us, c2.long_queue_wait_us);
  EXPECT_EQ(c1.worker_crashes, c2.worker_crashes);
  EXPECT_EQ(c1.worker_departures, c2.worker_departures);
  EXPECT_EQ(c1.worker_rejoins, c2.worker_rejoins);
  EXPECT_EQ(c1.messages_dropped, c2.messages_dropped);
  EXPECT_EQ(c1.message_retries, c2.message_retries);
  EXPECT_EQ(c1.tasks_re_dispatched, c2.tasks_re_dispatched);
  EXPECT_EQ(c1.probes_lost, c2.probes_lost);
  EXPECT_EQ(c1.duplicate_completions, c2.duplicate_completions);
  EXPECT_EQ(c1.wasted_work_us, c2.wasted_work_us);
  EXPECT_EQ(c1.tasks_speculated, c2.tasks_speculated);
  EXPECT_EQ(c1.speculative_wins, c2.speculative_wins);
  EXPECT_EQ(c1.speculative_wasted_us, c2.speculative_wasted_us);
  EXPECT_EQ(c1.retries_suppressed, c2.retries_suppressed);
  EXPECT_EQ(c1.tasks_abandoned, c2.tasks_abandoned);
  EXPECT_EQ(c1.node_suspicions, c2.node_suspicions);
}

TEST(ShardConfigTest, ValidationRejectsBadShardCounts) {
  HawkConfig config = BaseConfig();
  config.sim_shards = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = BaseConfig();
  config.sim_shards = config.num_workers + 1;  // A shard needs >= 1 worker.
  EXPECT_FALSE(config.Validate().ok());
  config = BaseConfig();
  config.sim_shards = 4;
  config.net_delay_us = 0;  // No network delay => no conservative horizon.
  EXPECT_FALSE(config.Validate().ok());
  config = BaseConfig();
  config.sim_shards = 4;
  EXPECT_TRUE(config.Validate().ok());
}

// sim_threads must be invisible in the bits: inline (1), a middling pool (2)
// and the hardware default (0) agree for every shard count and scheduler.
TEST(ShardDeterminismTest, ThreadCountIsNonSemantic) {
  const Trace trace = MakeTrace();
  const HawkConfig config = BaseConfig();
  for (const char* scheduler : kAllSchedulers) {
    for (const uint32_t shards : {2u, 4u, 8u}) {
      SCOPED_TRACE(std::string(scheduler) + " shards=" + std::to_string(shards));
      const RunResult inline_run = RunSharded(trace, config, scheduler, shards, 1);
      ExpectIdentical(inline_run, RunSharded(trace, config, scheduler, shards, 2));
      ExpectIdentical(inline_run, RunSharded(trace, config, scheduler, shards, 0));
    }
  }
}

// The shard count only partitions the worker id space; the canonical
// (due, worker) commit order makes 2, 4 and 8 shards bit-equal.
TEST(ShardDeterminismTest, ShardCountIsNonSemantic) {
  const Trace trace = MakeTrace();
  const HawkConfig config = BaseConfig();
  for (const char* scheduler : kAllSchedulers) {
    SCOPED_TRACE(scheduler);
    const RunResult two = RunSharded(trace, config, scheduler, 2, 0);
    ExpectIdentical(two, RunSharded(trace, config, scheduler, 4, 0));
    ExpectIdentical(two, RunSharded(trace, config, scheduler, 8, 0));
  }
}

// The same identities with every fault axis lit: crashes, churn, message
// loss, jitter and stragglers all draw from coordinator-ordered or
// per-worker substreams, so the bits still cannot depend on threads/shards.
TEST(ShardDeterminismTest, ChaosRunsIdenticalAcrossThreadsAndShards) {
  const Trace trace = MakeTrace();
  const HawkConfig config = ChaosConfig();
  for (const char* scheduler : kAllSchedulers) {
    SCOPED_TRACE(scheduler);
    const RunResult base = RunSharded(trace, config, scheduler, 2, 1);
    EXPECT_GT(base.counters.worker_crashes, 0u);
    EXPECT_GT(base.counters.messages_dropped, 0u);
    EXPECT_GT(base.counters.wasted_work_us, 0u);
    ExpectIdentical(base, RunSharded(trace, config, scheduler, 2, 0));
    const RunResult four = RunSharded(trace, config, scheduler, 4, 0);
    ExpectIdentical(four, RunSharded(trace, config, scheduler, 4, 1));
    ExpectIdentical(base, four);
  }
}

// Oversubscription: a pool far larger than this machine's core count (and
// larger than the shard count, so threads contend for the claim cursor and
// some park without ever winning a shard) must still produce the same bits.
// This is the stress case for the generation-counter protocol — parked
// threads waking into a stale generation, claim races, and done-counting
// must all be invisible in the result.
TEST(ShardDeterminismTest, OversubscribedPoolIsNonSemantic) {
  const Trace trace = MakeTrace();
  const HawkConfig config = ChaosConfig();
  const RunResult inline_run = RunSharded(trace, config, "hawk", 4, 1);
  ExpectIdentical(inline_run, RunSharded(trace, config, "hawk", 4, 8));
  ExpectIdentical(inline_run, RunSharded(trace, config, "hawk", 4, 16));
}

// Epoch coalescing skips provably empty phases; on and off must agree
// bit-for-bit, with the fault stack lit (barrier-granted completions are the
// tricky case: they land inside the window after the coalescing check, which
// is why the check runs after barrier replay).
TEST(ShardDeterminismTest, EpochCoalescingIsNonSemantic) {
  const Trace trace = MakeTrace();
  const HawkConfig config = ChaosConfig();
  for (const char* scheduler : {"hawk", "sparrow", "centralized"}) {
    SCOPED_TRACE(scheduler);
    HawkConfig on = config;
    on.sim_epoch_coalescing = true;
    HawkConfig off = config;
    off.sim_epoch_coalescing = false;
    const RunResult with_coalescing = RunSharded(trace, on, scheduler, 4, 0);
    ExpectIdentical(with_coalescing, RunSharded(trace, off, scheduler, 4, 0));
    // And off-path sharding still matches the other shard counts.
    ExpectIdentical(with_coalescing, RunSharded(trace, off, scheduler, 2, 1));
  }
}

// Work conservation must survive sharding: every task completes exactly once
// and cluster busy time splits exactly into nominal work plus the wasted
// ledger (crash re-runs + straggler stretch), regardless of shard count.
TEST(ShardConservationTest, BusyTimeSplitsIntoWorkPlusWaste) {
  const Trace trace = MakeTrace(120, 9, 1.5);
  HawkConfig config = ChaosConfig();
  config.worker_crash_rate = 2e-6;  // Aggressive: hundreds of crashes.
  config.worker_downtime_us = SecondsToUs(10.0);
  for (const char* scheduler : {"sparrow", "centralized", "hawk", "split"}) {
    for (const uint32_t shards : {2u, 8u}) {
      SCOPED_TRACE(std::string(scheduler) + " shards=" + std::to_string(shards));
      const RunResult result = RunSharded(trace, config, scheduler, shards, 0);
      ASSERT_EQ(result.jobs.size(), trace.NumJobs());
      for (const JobResult& job : result.jobs) {
        EXPECT_GE(job.finish_time, job.submit_time);
      }
      EXPECT_GT(result.counters.worker_crashes, 0u);
      EXPECT_EQ(result.total_busy_us,
                static_cast<uint64_t>(trace.TotalWorkUs()) + result.counters.wasted_work_us);
    }
  }
}

// Shard-boundary stress: one worker per shard forces every steal to cross a
// shard boundary through the barrier. Steals must still flow (the work-
// stealing layer is what sharding most directly reorders) and the bits must
// still be thread-count independent.
TEST(ShardBoundaryTest, CrossShardStealsFlowWithOneWorkerPerShard) {
  Trace trace = GenerateClusterWorkload(FacebookParams(200, 13));
  Rng arrivals_rng(11);
  AssignPoissonArrivals(&trace, SecondsToUs(4.0), &arrivals_rng);
  HawkConfig config;
  config.num_workers = 8;
  config.classify_mode = ClassifyMode::kHint;
  config.seed = 7;
  config.sim_shards = 8;
  const RunResult serial_phase = RunSharded(trace, config, "hawk", 8, 1);
  EXPECT_GT(serial_phase.counters.steal_attempts, 0u);
  EXPECT_GT(serial_phase.counters.steal_successes, 0u);
  ExpectIdentical(serial_phase, RunSharded(trace, config, "hawk", 8, 0));
}

}  // namespace
}  // namespace hawk
