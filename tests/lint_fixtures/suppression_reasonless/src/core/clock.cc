// Fixture: a reasonless suppression must be rejected — HL000 fires AND the
// original HL003 finding is still reported. (Never compiled.)
#include <chrono>

namespace hawk {

int64_t MeasuredSetupCost() {
  // hawk-lint: allow(HL003)
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace hawk
