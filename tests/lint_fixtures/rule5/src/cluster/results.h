// Fixture: HL005 must fire for `uncovered` (no test assertion, no docs row)
// and stay quiet for `covered`. (Never compiled; feeds hawk_lint only.)
#include <cstdint>

namespace hawk {

struct RunCounters {
  uint64_t covered = 0;    // Asserted in tests/cov_test.cc, listed in docs/.
  uint64_t uncovered = 0;  // Nobody asserts or documents this one.

  uint64_t Total() const { return covered + uncovered; }
};

}  // namespace hawk
