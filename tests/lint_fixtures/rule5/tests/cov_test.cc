// Fixture test file for the HL005 cross-check: `covered` appears inside an
// assertion macro, `uncovered` does not. (Never compiled.)
#include "src/cluster/results.h"

TEST(Counters, CoveredIsCounted) {
  hawk::RunCounters counters;
  counters.covered = 1;
  uint64_t uncovered_local = counters.uncovered;  // Mentioned, but not asserted.
  (void)uncovered_local;
  EXPECT_EQ(counters.covered, 1u);
}
