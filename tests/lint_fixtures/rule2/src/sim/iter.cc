// Fixture: HL002 must fire on unordered-container iteration in a
// determinism-critical directory. (Never compiled; feeds hawk_lint only.)
#include <cstdint>
#include <unordered_map>

namespace hawk {

uint64_t SumValues(const std::unordered_map<uint32_t, uint64_t>& pending) {
  uint64_t total = 0;
  for (const auto& kv : pending) {  // Unspecified order: HL002.
    total += kv.second;
  }
  return total;
}

bool Contains(const std::unordered_map<uint32_t, uint64_t>& pending, uint32_t key) {
  return pending.find(key) != pending.end();  // Membership check: fine.
}

}  // namespace hawk
