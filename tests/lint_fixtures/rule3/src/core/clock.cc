// Fixture: HL003 must fire on wall-clock reads and rogue RNG outside the
// allowlisted directories. (Never compiled; feeds hawk_lint only.)
#include <chrono>
#include <cstdlib>
#include <random>

namespace hawk {

int64_t RogueNow() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

int RogueDraw() {
  std::mt19937 gen(std::random_device{}());
  return static_cast<int>(gen()) + std::rand();
}

}  // namespace hawk
