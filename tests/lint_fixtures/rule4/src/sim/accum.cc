// Fixture: HL004 must fire on floating-point accumulation into a
// RunResult/RunCounters field without an ordered-reduction comment, and
// stay quiet when the comment documents the fixed order.
// (Never compiled; feeds hawk_lint only.)

namespace hawk {

void Accumulate(RunResult& result_, double busy_fraction) {
  result_.total_busy_us += busy_fraction * 0.5;  // Order-dependent: HL004.

  // ordered-reduction: folded in trace order by the single-threaded driver
  result_.total_busy_us += busy_fraction * 0.5;

  result_.counters.events += 1;  // Integral accumulation: fine.
}

}  // namespace hawk
