// Fixture: a suppression WITH a reason must silence the finding entirely
// (exit 0). (Never compiled; feeds hawk_lint only.)
#include <chrono>

namespace hawk {

int64_t MeasuredSetupCost() {
  // hawk-lint: allow(HL003) measures real setup wall time, never sim-visible
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace hawk
