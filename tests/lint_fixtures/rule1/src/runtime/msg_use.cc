// Fixture: HL001 must fire on a positional brace-init of a message struct.
// (This file is never compiled; it only feeds hawk_lint.)
#include "src/runtime/proto_messages.h"

namespace hawk {
namespace runtime {

ProbeMsg BuildProbe() {
  // Positional init: one field reorder away from the PR 2 SimEvent swap.
  return ProbeMsg{7, 3, 12, true};
}

ProbeMsg BuildProbeOk() {
  ProbeMsg ok;  // Default-init + per-field assignment is fine.
  ok.job = 7;
  return ok;
}

}  // namespace runtime
}  // namespace hawk
