// Fixture: HL006 must fire on a bare statement discarding a Status/StatusOr
// return value, and stay quiet when the value is consumed.
// (Never compiled; feeds hawk_lint only.)

namespace hawk {

Status SaveReport(int rows);
StatusOr<int> ParseRows(const char* text);

void Discards() {
  SaveReport(3);  // Discarded Status: HL006.
}

Status Consumes() {
  const StatusOr<int> rows = ParseRows("3");
  if (!rows.ok()) {
    return rows.status();
  }
  return SaveReport(rows.value());
}

}  // namespace hawk
