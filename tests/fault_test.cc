// Fault-injection layer tests: determinism under faults, work conservation
// under crashes (every task completes exactly once; busy time splits exactly
// into useful and wasted work), zero-fault inertness, and the prototype's
// timeout-based crash recovery including duplicate-completion dedupe.
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/check.h"
#include "src/common/random.h"
#include "src/core/hawk_config.h"
#include "src/runtime/prototype_cluster.h"
#include "src/scheduler/experiment.h"
#include "src/workload/arrivals.h"
#include "src/workload/cluster_workloads.h"
#include "src/workload/trace.h"

namespace hawk {
namespace {

// All four built-in policies plus the d-choices variant — the fault layer is
// policy-agnostic and every registered scheduler must survive it.
const char* kAllSchedulers[] = {"sparrow", "centralized", "hawk", "hawk-dchoice", "split"};

// Strict unsigned-integer env parse (the bench_util::BenchScale idiom): a
// malformed value must fail the run loudly, not silently fall back — a chaos
// soak that quietly reruns the default schedule validates nothing while
// claiming to have walked the matrix.
uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const uint64_t value = std::strtoull(env, &end, 10);
  while (end != nullptr && std::isspace(static_cast<unsigned char>(*end))) {
    ++end;
  }
  HAWK_CHECK(end != nullptr && *end == '\0' && end != env)
      << name << " is not an unsigned integer: \"" << env << "\"";
  return value;
}

// Chaos-soak hook: CI reruns the fault-labeled suites with HAWK_FAULT_SEED
// set to walk several distinct crash/loss/straggler schedules through the
// same invariants. Locally (unset) the fallback keeps runs reproducible.
uint64_t EnvFaultSeed(uint64_t fallback) { return EnvU64("HAWK_FAULT_SEED", fallback); }

// Second chaos-soak axis: HAWK_SIM_SHARDS routes the *simulation* halves of
// the fault suites through the sharded executor (the prototype halves run
// real threads and ignore it). The shards>1 identity pins live in
// shard_test.cc; here the same fault invariants must hold per shard count.
uint32_t EnvSimShards() {
  const uint64_t shards = EnvU64("HAWK_SIM_SHARDS", 1);
  HAWK_CHECK_GE(shards, 1u) << "HAWK_SIM_SHARDS must be >= 1";
  return static_cast<uint32_t>(shards);
}

// Third chaos-soak axis: HAWK_SIM_THREADS sizes the sharded executor's phase
// pool (0 = hardware default, 1 = inline). Only meaningful with shards > 1;
// thread-count identity pins live in shard_test.cc, here each pool size must
// uphold the same fault invariants under TSan.
uint32_t EnvSimThreads() {
  return static_cast<uint32_t>(EnvU64("HAWK_SIM_THREADS", 1));
}

Trace MakeTrace(uint32_t jobs = 150, uint64_t seed = 5, double interarrival_s = 2.0) {
  Trace trace = GenerateClusterWorkload(FacebookParams(jobs, seed));
  Rng arrivals_rng(11);
  AssignPoissonArrivals(&trace, SecondsToUs(interarrival_s), &arrivals_rng);
  return trace;
}

// Fault rates are per worker per second and must sit well below the
// reciprocal of the longest task duration (a crashed task restarts from
// scratch, so rate >~ 1/longest_task makes the tail statistically
// non-terminating — exactly as on a real cluster). This trace's longest
// tasks run ~1e6 simulated seconds, so rates live in the 1e-7 regime,
// which still yields dozens of crash/depart events per run.
HawkConfig FaultyConfig() {
  HawkConfig config;
  config.num_workers = 100;
  config.classify_mode = ClassifyMode::kHint;
  config.seed = 7;
  config.worker_crash_rate = 3e-7;
  config.worker_churn_rate = 2e-7;
  config.worker_downtime_us = SecondsToUs(20.0);
  config.message_loss_rate = 0.05;
  config.message_delay_jitter_us = 2'000;
  config.fault_seed = EnvFaultSeed(3);
  config.sim_shards = EnvSimShards();
  config.sim_threads = EnvSimThreads();
  return config;
}

void ExpectIdentical(const RunResult& r1, const RunResult& r2) {
  ASSERT_EQ(r1.jobs.size(), r2.jobs.size());
  for (size_t i = 0; i < r1.jobs.size(); ++i) {
    ASSERT_EQ(r1.jobs[i].id, r2.jobs[i].id);
    ASSERT_EQ(r1.jobs[i].finish_time, r2.jobs[i].finish_time) << "job " << i;
    ASSERT_EQ(r1.jobs[i].runtime_us, r2.jobs[i].runtime_us) << "job " << i;
  }
  EXPECT_EQ(r1.makespan_us, r2.makespan_us);
  EXPECT_EQ(r1.total_busy_us, r2.total_busy_us);
  EXPECT_EQ(r1.counters.events, r2.counters.events);
  EXPECT_EQ(r1.counters.tasks_launched, r2.counters.tasks_launched);
  EXPECT_EQ(r1.counters.worker_crashes, r2.counters.worker_crashes);
  EXPECT_EQ(r1.counters.worker_departures, r2.counters.worker_departures);
  EXPECT_EQ(r1.counters.worker_rejoins, r2.counters.worker_rejoins);
  EXPECT_EQ(r1.counters.messages_dropped, r2.counters.messages_dropped);
  EXPECT_EQ(r1.counters.message_retries, r2.counters.message_retries);
  EXPECT_EQ(r1.counters.tasks_re_dispatched, r2.counters.tasks_re_dispatched);
  EXPECT_EQ(r1.counters.probes_lost, r2.counters.probes_lost);
  EXPECT_EQ(r1.counters.wasted_work_us, r2.counters.wasted_work_us);
  EXPECT_EQ(r1.utilization_samples, r2.utilization_samples);
}

TEST(FaultConfigTest, ValidationRejectsBadKnobs) {
  HawkConfig config;
  config.worker_crash_rate = -1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = HawkConfig();
  config.message_loss_rate = 1.0;  // Retransmission would never terminate.
  EXPECT_FALSE(config.Validate().ok());
  config = HawkConfig();
  config.worker_churn_rate = 0.1;
  config.worker_downtime_us = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = HawkConfig();
  config.fault_seed = 42;  // A seed alone enables nothing and is valid.
  EXPECT_TRUE(config.Validate().ok());
  EXPECT_FALSE(config.FaultsEnabled());
}

// The fault seed must be dead code while every fault axis is zero: results
// (down to event counts) match a config that never mentions faults.
TEST(FaultDeterminismTest, ZeroRatesAreInert) {
  const Trace trace = MakeTrace();
  HawkConfig base;
  base.num_workers = 100;
  base.classify_mode = ClassifyMode::kHint;
  base.seed = 7;
  HawkConfig seeded = base;
  seeded.fault_seed = 999;  // Only consulted when an axis is nonzero.
  for (const char* scheduler : kAllSchedulers) {
    ExpectIdentical(RunExperiment(trace, base, scheduler),
                    RunExperiment(trace, seeded, scheduler));
  }
}

// Same seed + same fault config => bit-identical runs, for every scheduler,
// with every fault axis active at once.
TEST(FaultDeterminismTest, FaultyRunsAreReproducible) {
  const Trace trace_a = MakeTrace();
  const Trace trace_b = MakeTrace();
  const HawkConfig config = FaultyConfig();
  for (const char* scheduler : kAllSchedulers) {
    SCOPED_TRACE(scheduler);
    ExpectIdentical(RunExperiment(trace_a, config, scheduler),
                    RunExperiment(trace_b, config, scheduler));
  }
}

// Sweep-thread invariance: the same fault grid run serially and on four
// threads must produce identical results point by point.
TEST(FaultDeterminismTest, SweepThreadCountInvariant) {
  const Trace trace = MakeTrace(100, 5, 2.0);
  HawkConfig config = FaultyConfig();
  SweepSpec sweep(ExperimentSpec("hawk").WithTrace(&trace).WithConfig(config));
  sweep.VarySchedulers({"sparrow", "hawk", "split"})
      .Vary("worker_crash_rate", {0.0, 2e-7, 4e-7});
  const std::vector<SweepRun> serial = RunSweep(sweep, /*num_threads=*/1);
  const std::vector<SweepRun> parallel = RunSweep(sweep, /*num_threads=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].spec.Label());
    ExpectIdentical(serial[i].result, parallel[i].result);
  }
}

// Work conservation under crashes: every job finishes, and cluster busy time
// splits exactly into useful work (each task's full duration, once) plus the
// wasted partial executions of crashed copies.
TEST(FaultConservationTest, EveryTaskCompletesExactlyOnce) {
  const Trace trace = MakeTrace(120, 9, 1.5);
  HawkConfig config = FaultyConfig();
  config.worker_crash_rate = 2e-6;  // Aggressive for this trace: hundreds of crashes.
  config.worker_downtime_us = SecondsToUs(10.0);
  for (const char* scheduler : kAllSchedulers) {
    SCOPED_TRACE(scheduler);
    const RunResult result = RunExperiment(trace, config, scheduler);
    ASSERT_EQ(result.jobs.size(), trace.NumJobs());
    for (const JobResult& job : result.jobs) {
      EXPECT_GE(job.finish_time, job.submit_time);
    }
    EXPECT_GT(result.counters.worker_crashes, 0u);
    EXPECT_EQ(result.total_busy_us,
              static_cast<uint64_t>(trace.TotalWorkUs()) + result.counters.wasted_work_us);
  }
}

// Lossy delivery alone (no crashes): every retransmitted message eventually
// lands, so all jobs still finish and no work is wasted.
TEST(FaultConservationTest, LossyDeliveryStillCompletesEverything) {
  const Trace trace = MakeTrace(120, 9, 1.5);
  HawkConfig config;
  config.num_workers = 100;
  config.classify_mode = ClassifyMode::kHint;
  config.seed = 7;
  config.message_loss_rate = 0.2;
  config.message_delay_jitter_us = 1'000;
  for (const char* scheduler : kAllSchedulers) {
    SCOPED_TRACE(scheduler);
    const RunResult result = RunExperiment(trace, config, scheduler);
    ASSERT_EQ(result.jobs.size(), trace.NumJobs());
    EXPECT_GT(result.counters.messages_dropped, 0u);
    EXPECT_EQ(result.counters.messages_dropped, result.counters.message_retries);
    EXPECT_EQ(result.counters.wasted_work_us, 0u);
    EXPECT_EQ(result.total_busy_us, static_cast<uint64_t>(trace.TotalWorkUs()));
  }
}

// --- prototype ---------------------------------------------------------------

// A hand-built wall-clock trace: `jobs` jobs of `tasks` sleeps each.
Trace WallClockTrace(uint32_t jobs, uint32_t tasks, DurationUs task_us, SimTime spacing_us) {
  Trace trace;
  for (uint32_t j = 0; j < jobs; ++j) {
    Job job;
    job.submit_time = j * spacing_us;
    job.task_durations.assign(tasks, task_us);
    trace.Add(job);
  }
  trace.SortAndRenumber();
  return trace;
}

// Real crashes in the prototype: monitors go silent mid-run, and the
// schedulers' timeout reaping re-dispatches the dead work — the run still
// completes every job.
TEST(PrototypeFaultTest, CrashedMonitorsRecoverViaReDispatch) {
  const Trace trace = WallClockTrace(/*jobs=*/12, /*tasks=*/4, /*task_us=*/60'000,
                                     /*spacing_us=*/50'000);
  runtime::PrototypeConfig config;
  config.scheduler = "sparrow";
  config.hawk.num_workers = 8;
  config.hawk.classify_mode = ClassifyMode::kHint;
  config.hawk.net_delay_us = 200;
  config.hawk.util_sample_period_us = 20'000;
  // Mean time to first crash ~25 ms against a ~600 ms submission span: the
  // run sees many crash/rejoin cycles with overwhelming probability, while
  // each 60 ms task still survives its 200 ms per-worker MTBF often enough
  // for re-dispatch to converge quickly.
  config.hawk.worker_crash_rate = 5.0;
  config.hawk.worker_downtime_us = 80'000;
  config.hawk.fault_seed = EnvFaultSeed(1);
  config.num_frontends = 2;
  config.fault_detection_timeout = std::chrono::milliseconds(80);
  config.reap_period = std::chrono::milliseconds(20);
  config.timeout = std::chrono::milliseconds(60'000);
  const StatusOr<RunResult> result = runtime::RunPrototype(trace, config);
  ASSERT_TRUE(result.ok()) << result.status().message();
  ASSERT_EQ(result.value().jobs.size(), trace.NumJobs());
  EXPECT_GT(result.value().counters.worker_crashes, 0u);
}

// Aggressive detection timeout with no crashes: the backend re-places queued
// (but perfectly alive) tasks, both copies run, and the duplicate-completion
// counters absorb the seconds — jobs still complete exactly once. The trace
// needs a straggler: a run ends when its last job completes, so a duplicate
// only registers if it drains while some original is still running.
TEST(PrototypeFaultTest, DuplicateCompletionsAreCountedAndDeduped) {
  Trace trace;
  Job warmup;  // Fills both workers for 60 ms.
  warmup.submit_time = 0;
  warmup.task_durations = {60'000, 60'000};
  trace.Add(warmup);
  Job squeezed;  // Queued behind warmup: overdue long before it starts.
  squeezed.submit_time = 5'000;
  squeezed.task_durations = {30'000, 30'000};
  trace.Add(squeezed);
  Job straggler;  // Pins one worker while the other drains duplicate copies.
  straggler.submit_time = 10'000;
  straggler.task_durations = {400'000};
  trace.Add(straggler);
  trace.SortAndRenumber();
  runtime::PrototypeConfig config;
  config.scheduler = "centralized";  // Every task queues via kTaskPlace.
  config.hawk.num_workers = 2;
  config.hawk.classify_mode = ClassifyMode::kHint;
  config.hawk.net_delay_us = 200;
  config.hawk.util_sample_period_us = 20'000;
  // Enable the fault layer without any actual fault: 1 us of jitter turns on
  // the reaper, whose 10 ms detection window is far shorter than the
  // squeezed job's queueing delay.
  config.hawk.message_delay_jitter_us = 1;
  config.fault_detection_timeout = std::chrono::milliseconds(10);
  config.reap_period = std::chrono::milliseconds(10);
  config.timeout = std::chrono::milliseconds(60'000);
  const StatusOr<RunResult> result = runtime::RunPrototype(trace, config);
  ASSERT_TRUE(result.ok()) << result.status().message();
  // Exactly one completion per job despite the duplicates.
  ASSERT_EQ(result.value().jobs.size(), trace.NumJobs());
  EXPECT_GT(result.value().counters.tasks_re_dispatched, 0u);
  EXPECT_GT(result.value().counters.duplicate_completions, 0u);
}

// Real stragglers in the prototype: stricken executor slots actually sleep
// longer than the nominal duration. Every job still completes, and the
// stretch is charged to wasted work on top of the nominal busy time.
TEST(PrototypeFaultTest, StragglersSlowRealExecutorsButEverythingCompletes) {
  const Trace trace = WallClockTrace(/*jobs=*/10, /*tasks=*/4, /*task_us=*/20'000,
                                     /*spacing_us=*/30'000);
  runtime::PrototypeConfig config;
  config.scheduler = "hawk";
  config.hawk.num_workers = 8;
  config.hawk.classify_mode = ClassifyMode::kHint;
  config.hawk.net_delay_us = 200;
  config.hawk.util_sample_period_us = 20'000;
  config.hawk.straggler_rate = 0.3;
  config.hawk.straggler_slowdown_factor = 4.0;
  config.num_frontends = 2;
  config.timeout = std::chrono::milliseconds(60'000);
  const StatusOr<RunResult> result = runtime::RunPrototype(trace, config);
  ASSERT_TRUE(result.ok()) << result.status().message();
  ASSERT_EQ(result.value().jobs.size(), trace.NumJobs());
  // With 40 tasks at rate 0.3 a zero-straggler run is a ~6e-7 event.
  EXPECT_GT(result.value().counters.wasted_work_us, 0u);
  // Conservation on the wall clock: busy time is nominal work plus stretch
  // (sleeps overshoot slightly, so >=, and crashes are off so nothing else
  // feeds the wasted ledger).
  EXPECT_GE(result.value().total_busy_us,
            static_cast<uint64_t>(trace.TotalWorkUs()) +
                result.value().counters.wasted_work_us);
}

// The heartbeat detector suspects crashed monitors: with downtimes an order
// of magnitude past the suspicion floor, each crash's silence must register
// as at least one alive -> suspected transition, and rejoining nodes are
// rehabilitated (the run completes normally with suspicion steering on).
TEST(PrototypeFaultTest, HeartbeatDetectorSuspectsCrashedNodes) {
  const Trace trace = WallClockTrace(/*jobs=*/12, /*tasks=*/4, /*task_us=*/40'000,
                                     /*spacing_us=*/60'000);
  runtime::PrototypeConfig config;
  config.scheduler = "sparrow";
  config.hawk.num_workers = 8;
  config.hawk.classify_mode = ClassifyMode::kHint;
  config.hawk.net_delay_us = 200;
  config.hawk.util_sample_period_us = 20'000;
  config.hawk.worker_crash_rate = 3.0;
  config.hawk.worker_downtime_us = 400'000;  // >> the 3 x 20 ms suspicion floor.
  config.hawk.fault_seed = EnvFaultSeed(4);
  config.num_frontends = 2;
  config.heartbeat_period = std::chrono::milliseconds(20);
  config.fault_detection_timeout = std::chrono::milliseconds(80);
  config.reap_period = std::chrono::milliseconds(20);
  config.timeout = std::chrono::milliseconds(60'000);
  const StatusOr<RunResult> result = runtime::RunPrototype(trace, config);
  ASSERT_TRUE(result.ok()) << result.status().message();
  ASSERT_EQ(result.value().jobs.size(), trace.NumJobs());
  EXPECT_GT(result.value().counters.worker_crashes, 0u);
  EXPECT_GT(result.value().counters.node_suspicions, 0u);
}

}  // namespace
}  // namespace hawk
