// Property tests across all four workload generators and multiple seeds:
// structural invariants every trace must satisfy, stability of the
// calibrated statistics, and end-to-end invariants of scheduling each
// workload under Hawk.
#include <gtest/gtest.h>

#include <string>

#include "src/core/hawk_config.h"
#include "src/scheduler/experiment.h"
#include "src/workload/arrivals.h"
#include "src/workload/cluster_workloads.h"
#include "src/workload/google_trace.h"
#include "src/workload/scaling.h"
#include "src/workload/trace_stats.h"

namespace hawk {
namespace {

struct WorkloadCase {
  const char* name;
  uint64_t seed;
};

Trace Generate(const std::string& name, uint32_t jobs, uint64_t seed) {
  if (name == "google") {
    GoogleTraceParams params;
    params.num_jobs = jobs;
    params.seed = seed;
    return GenerateGoogleTrace(params);
  }
  if (name == "cloudera") {
    return GenerateClusterWorkload(ClouderaParams(jobs, seed));
  }
  if (name == "facebook") {
    return GenerateClusterWorkload(FacebookParams(jobs, seed));
  }
  if (name == "yahoo") {
    return GenerateClusterWorkload(YahooParams(jobs, seed));
  }
  return GenerateMotivationTrace(jobs, 0.1, seed);
}

LongJobPredicate PredicateFor(const std::string& name) {
  if (name == "google") {
    return LongByCutoff(SecondsToUs(1129.0));
  }
  return LongByHint();
}

class WorkloadPropertyTest : public testing::TestWithParam<WorkloadCase> {};

TEST_P(WorkloadPropertyTest, StructuralInvariants) {
  const auto& param = GetParam();
  const Trace trace = Generate(param.name, 2000, param.seed);
  ASSERT_EQ(trace.NumJobs(), 2000u);
  for (size_t i = 0; i < trace.NumJobs(); ++i) {
    const Job& job = trace.job(i);
    EXPECT_EQ(job.id, i);
    EXPECT_GE(job.NumTasks(), 1u);
    for (const DurationUs d : job.task_durations) {
      EXPECT_GT(d, 0);
    }
    if (i > 0) {
      EXPECT_GE(job.submit_time, trace.job(i - 1).submit_time);
    }
  }
  EXPECT_EQ(trace.TotalTasks(), [&] {
    uint64_t total = 0;
    for (const Job& job : trace.jobs()) {
      total += job.NumTasks();
    }
    return total;
  }());
}

TEST_P(WorkloadPropertyTest, GenerationIsDeterministicPerSeed) {
  const auto& param = GetParam();
  const Trace a = Generate(param.name, 300, param.seed);
  const Trace b = Generate(param.name, 300, param.seed);
  ASSERT_EQ(a.NumJobs(), b.NumJobs());
  for (size_t i = 0; i < a.NumJobs(); ++i) {
    EXPECT_EQ(a.job(i).task_durations, b.job(i).task_durations);
    EXPECT_EQ(a.job(i).long_hint, b.job(i).long_hint);
  }
}

TEST_P(WorkloadPropertyTest, MixStatisticsStableAcrossSeeds) {
  // The calibrated Table-1 statistics should not be a single-seed fluke:
  // compare two disjoint seeds.
  const auto& param = GetParam();
  const Trace a = Generate(param.name, 6000, param.seed);
  const Trace b = Generate(param.name, 6000, param.seed + 1000);
  const LongJobPredicate is_long = PredicateFor(param.name);
  const WorkloadMix mix_a = ComputeMix(a, is_long);
  const WorkloadMix mix_b = ComputeMix(b, is_long);
  EXPECT_NEAR(mix_a.pct_long_jobs, mix_b.pct_long_jobs, 2.0) << param.name;
  EXPECT_NEAR(mix_a.pct_task_seconds_long, mix_b.pct_task_seconds_long, 8.0) << param.name;
}

TEST_P(WorkloadPropertyTest, LongJobsDominateTaskSeconds) {
  // The defining property of the paper's workloads (Table 1): a minority of
  // jobs holds the majority of task-seconds.
  const auto& param = GetParam();
  const Trace trace = Generate(param.name, 6000, param.seed);
  const WorkloadMix mix = ComputeMix(trace, PredicateFor(param.name));
  EXPECT_LT(mix.pct_long_jobs, 15.0) << param.name;
  EXPECT_GT(mix.pct_task_seconds_long, 70.0) << param.name;
}

TEST_P(WorkloadPropertyTest, CapPreservesPerJobWork) {
  const auto& param = GetParam();
  const Trace trace = Generate(param.name, 500, param.seed);
  const Trace capped = CapTasksPreserveWork(trace, 64);
  ASSERT_EQ(capped.NumJobs(), trace.NumJobs());
  for (size_t i = 0; i < trace.NumJobs(); ++i) {
    EXPECT_LE(capped.job(i).NumTasks(), 64u);
    EXPECT_NEAR(static_cast<double>(capped.job(i).TotalWorkUs()) /
                    static_cast<double>(trace.job(i).TotalWorkUs()),
                1.0, 1e-3);
  }
}

TEST_P(WorkloadPropertyTest, HawkRunsToCompletionOnEveryWorkload) {
  // End-to-end: every workload schedules under Hawk with full conservation.
  const auto& param = GetParam();
  const uint32_t workers = 400;
  Trace trace = CapTasksPreserveWork(Generate(param.name, 400, param.seed), workers / 2);
  Rng rng(param.seed);
  AssignPoissonArrivals(&trace, MeanInterarrivalForUtilization(trace, 0.85, workers), &rng);
  HawkConfig config;
  config.num_workers = workers;
  config.classify_mode =
      std::string(param.name) == "google" ? ClassifyMode::kCutoff : ClassifyMode::kHint;
  const RunResult result = RunExperiment(trace, config, "hawk");
  EXPECT_EQ(result.jobs.size(), trace.NumJobs());
  EXPECT_EQ(result.counters.tasks_launched, trace.TotalTasks());
  EXPECT_EQ(result.total_busy_us, trace.TotalWorkUs());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadPropertyTest,
    testing::Values(WorkloadCase{"google", 1}, WorkloadCase{"google", 2},
                    WorkloadCase{"cloudera", 1}, WorkloadCase{"cloudera", 2},
                    WorkloadCase{"facebook", 1}, WorkloadCase{"facebook", 2},
                    WorkloadCase{"yahoo", 1}, WorkloadCase{"yahoo", 2}),
    [](const testing::TestParamInfo<WorkloadCase>& param_info) {
      return std::string(param_info.param.name) + "_seed" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace hawk
