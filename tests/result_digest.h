// Order-sensitive 64-bit digest of a RunResult, for golden-result pins: two
// results digest equal iff every per-job time, every counter, every
// utilization sample and the aggregate times are bit-identical. FNV-1a over
// the fields in a fixed serialization order — stable across platforms as
// long as the arithmetic is (the simulation is integer except utilization,
// which is hashed by bit pattern).
#ifndef HAWK_TESTS_RESULT_DIGEST_H_
#define HAWK_TESTS_RESULT_DIGEST_H_

#include <cstdint>
#include <cstring>

#include "src/cluster/results.h"

namespace hawk {
namespace testing {

class Fnv1a {
 public:
  void MixU64(uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (value >> (8 * i)) & 0xFFu;
      hash_ *= 0x100000001B3ULL;
    }
  }
  void MixI64(int64_t value) { MixU64(static_cast<uint64_t>(value)); }
  void MixDouble(double value) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    MixU64(bits);
  }
  uint64_t Digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xCBF29CE484222325ULL;
};

inline uint64_t DigestResult(const RunResult& result) {
  Fnv1a h;
  h.MixU64(result.jobs.size());
  for (const JobResult& job : result.jobs) {
    h.MixU64(job.id);
    h.MixU64(job.is_long ? 1 : 0);
    h.MixI64(job.submit_time);
    h.MixI64(job.finish_time);
    h.MixI64(job.runtime_us);
  }
  h.MixI64(result.makespan_us);
  h.MixI64(result.total_busy_us);
  h.MixU64(result.utilization_samples.size());
  for (const double sample : result.utilization_samples) {
    h.MixDouble(sample);
  }
  const RunCounters& c = result.counters;
  h.MixU64(c.jobs);
  h.MixU64(c.tasks_launched);
  h.MixU64(c.probes_placed);
  h.MixU64(c.probe_requests);
  h.MixU64(c.cancels);
  h.MixU64(c.central_tasks_placed);
  h.MixU64(c.steal_attempts);
  h.MixU64(c.steal_victim_probes);
  h.MixU64(c.steal_successes);
  h.MixU64(c.entries_stolen);
  h.MixU64(c.events);
  h.MixU64(c.short_tasks_started);
  h.MixU64(c.long_tasks_started);
  h.MixU64(c.short_queue_wait_us);
  h.MixU64(c.long_queue_wait_us);
  h.MixU64(c.worker_crashes);
  h.MixU64(c.worker_departures);
  h.MixU64(c.worker_rejoins);
  h.MixU64(c.messages_dropped);
  h.MixU64(c.message_retries);
  h.MixU64(c.tasks_re_dispatched);
  h.MixU64(c.probes_lost);
  h.MixU64(c.duplicate_completions);
  h.MixU64(c.wasted_work_us);
  h.MixU64(c.tasks_speculated);
  h.MixU64(c.speculative_wins);
  h.MixU64(c.speculative_wasted_us);
  h.MixU64(c.retries_suppressed);
  h.MixU64(c.tasks_abandoned);
  h.MixU64(c.node_suspicions);
  return h.Digest();
}

}  // namespace testing
}  // namespace hawk

#endif  // HAWK_TESTS_RESULT_DIGEST_H_
