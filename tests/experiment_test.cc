// The experiment API: scheduler registry, declarative specs, sweep
// expansion, and equivalence with the hand-built policy + driver path the
// registry replaced.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/hawk_config.h"
#include "src/core/hawk_scheduler.h"
#include "src/scheduler/centralized.h"
#include "src/scheduler/driver.h"
#include "src/scheduler/experiment.h"
#include "src/scheduler/registry.h"
#include "src/scheduler/sparrow.h"
#include "src/scheduler/split.h"
#include "src/workload/arrivals.h"
#include "src/workload/cluster_workloads.h"

namespace hawk {
namespace {

Trace MakeTrace(uint32_t jobs, uint64_t seed) {
  Trace trace = GenerateClusterWorkload(FacebookParams(jobs, seed));
  Rng arrivals_rng(seed ^ 0xBEEF);
  AssignPoissonArrivals(&trace, SecondsToUs(2.0), &arrivals_rng);
  return trace;
}

HawkConfig SmallConfig(uint32_t workers = 100, uint64_t seed = 7) {
  HawkConfig config;
  config.num_workers = workers;
  config.classify_mode = ClassifyMode::kHint;
  config.seed = seed;
  return config;
}

void ExpectBitIdentical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    ASSERT_EQ(a.jobs[i].id, b.jobs[i].id);
    ASSERT_EQ(a.jobs[i].finish_time, b.jobs[i].finish_time) << "job " << i;
    ASSERT_EQ(a.jobs[i].runtime_us, b.jobs[i].runtime_us) << "job " << i;
  }
  EXPECT_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.total_busy_us, b.total_busy_us);
  EXPECT_EQ(a.utilization_samples, b.utilization_samples);
  EXPECT_EQ(a.counters.events, b.counters.events);
  EXPECT_EQ(a.counters.tasks_launched, b.counters.tasks_launched);
  EXPECT_EQ(a.counters.probes_placed, b.counters.probes_placed);
  EXPECT_EQ(a.counters.central_tasks_placed, b.counters.central_tasks_placed);
  EXPECT_EQ(a.counters.steal_attempts, b.counters.steal_attempts);
  EXPECT_EQ(a.counters.entries_stolen, b.counters.entries_stolen);
}

// --- Registry ---------------------------------------------------------------

TEST(SchedulerRegistryTest, BuiltinsAreRegistered) {
  // The four paper schedulers plus the in-library d-choice stealing variant.
  for (const char* name : {"sparrow", "centralized", "hawk", "split", "hawk-dchoice"}) {
    EXPECT_TRUE(SchedulerRegistry::Global().Contains(name)) << name;
  }
}

TEST(SchedulerRegistryTest, EveryRegisteredNameRunsDeterministically) {
  // Whatever is registered — built-ins plus anything other tests added —
  // must construct through its factory and produce seed-determined results.
  const Trace trace = MakeTrace(80, 3);
  for (const std::string& name : SchedulerRegistry::Global().Names()) {
    SCOPED_TRACE(name);
    const RunResult a = RunExperiment(trace, SmallConfig(), name);
    const RunResult b = RunExperiment(trace, SmallConfig(), name);
    ExpectBitIdentical(a, b);
    EXPECT_EQ(a.counters.tasks_launched, trace.TotalTasks());
  }
}

TEST(SchedulerRegistryTest, DuplicateRegistrationIsRejected) {
  const Status status = SchedulerRegistry::Global().Register(
      "hawk", [](const HawkConfig& config) -> std::unique_ptr<SchedulerPolicy> {
        return std::make_unique<SparrowPolicy>(config.probe_ratio);
      });
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("already registered"), std::string::npos);
  // The original registration must still be in effect: "hawk" still places
  // long tasks centrally (a SparrowPolicy would place none).
  const Trace trace = MakeTrace(60, 5);
  const RunResult run = RunExperiment(trace, SmallConfig(), "hawk");
  EXPECT_GT(run.counters.central_tasks_placed, 0u);
}

TEST(SchedulerRegistryTest, EmptyNameAndNullFactoryRejected) {
  EXPECT_FALSE(SchedulerRegistry::Global()
                   .Register("", [](const HawkConfig&) -> std::unique_ptr<SchedulerPolicy> {
                     return nullptr;
                   })
                   .ok());
  EXPECT_FALSE(SchedulerRegistry::Global().Register("null-factory", nullptr).ok());
  EXPECT_FALSE(SchedulerRegistry::Global().Contains("null-factory"));
}

TEST(SchedulerRegistryTest, ExternalRegistrationIsFirstClass) {
  // Register a variant from outside the library (what
  // examples/custom_policy.cpp does with "hawk-lb") and run + sweep it
  // through the same entry points as the built-ins.
  const Status status = SchedulerRegistry::Global().Register(
      "test-wide-probe", [](const HawkConfig&) -> std::unique_ptr<SchedulerPolicy> {
        return std::make_unique<SparrowPolicy>(4);
      });
  ASSERT_TRUE(status.ok()) << status.message();
  const Trace trace = MakeTrace(60, 9);
  const RunResult run = RunExperiment(trace, SmallConfig(), "test-wide-probe");
  EXPECT_EQ(run.counters.probes_placed, 4 * trace.TotalTasks());

  SweepSpec sweep(ExperimentSpec("test-wide-probe").WithConfig(SmallConfig()).WithTrace(&trace));
  sweep.Vary("num_workers", {80, 120});
  const std::vector<SweepRun> runs = RunSweep(sweep, 2);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].spec.Label(), "test-wide-probe/num_workers=80");
  EXPECT_EQ(runs[1].spec.Label(), "test-wide-probe/num_workers=120");
}

// --- Spec + builder ---------------------------------------------------------

TEST(ExperimentSpecTest, BuilderComposes) {
  const Trace trace = MakeTrace(30, 1);
  const HawkConfig config = SmallConfig(64, 11);
  const ExperimentSpec spec =
      ExperimentSpec("sparrow").WithConfig(config).WithTrace(&trace).WithLabel("probe2");
  EXPECT_EQ(spec.scheduler, "sparrow");
  EXPECT_EQ(spec.config.num_workers, 64u);
  EXPECT_EQ(spec.config.seed, 11u);
  EXPECT_EQ(spec.trace, &trace);
  EXPECT_EQ(spec.Label(), "probe2");
  EXPECT_EQ(ExperimentSpec("hawk").Label(), "hawk");  // Label defaults to the name.
}

TEST(ExperimentTest, ConvenienceOverloadMatchesSpecForm) {
  const Trace trace = MakeTrace(50, 13);
  const HawkConfig config = SmallConfig();
  ExpectBitIdentical(
      RunExperiment(trace, config, "hawk"),
      RunExperiment(ExperimentSpec("hawk").WithConfig(config).WithTrace(&trace)));
}

// --- Equivalence with the pre-registry path ---------------------------------

// RunExperiment must be bit-identical to what the old closed-world
// RunScheduler(kind) switch did: construct the policy directly, size the
// general partition the same way, drive the same simulation.
TEST(ExperimentTest, BitIdenticalToHandBuiltDriverPath) {
  const Trace trace = MakeTrace(120, 17);
  const HawkConfig config = SmallConfig(110, 23);

  const auto run_direct = [&](SchedulerPolicy* policy, uint32_t general_count) {
    SimulationDriver driver(&trace, config, general_count, policy);
    return driver.Run();
  };

  {
    SparrowPolicy sparrow(config.probe_ratio);
    ExpectBitIdentical(RunExperiment(trace, config, "sparrow"),
                       run_direct(&sparrow, config.num_workers));
  }
  {
    CentralizedPolicy centralized;
    ExpectBitIdentical(RunExperiment(trace, config, "centralized"),
                       run_direct(&centralized, config.num_workers));
  }
  {
    HawkPolicy hawk_policy(config);
    ExpectBitIdentical(RunExperiment(trace, config, "hawk"),
                       run_direct(&hawk_policy, config.GeneralCount()));
  }
  {
    SplitClusterPolicy split(config.probe_ratio);
    ExpectBitIdentical(RunExperiment(trace, config, "split"),
                       run_direct(&split, config.GeneralCount()));
  }
}

// --- SweepSpec expansion -----------------------------------------------------

TEST(SweepSpecTest, CardinalityAndOrderingAreCrossProduct) {
  const Trace trace = MakeTrace(30, 1);
  SweepSpec sweep(ExperimentSpec("sparrow").WithConfig(SmallConfig()).WithTrace(&trace));
  sweep.Vary("num_workers", {100, 200}).VarySchedulers({"sparrow", "hawk"})
      .Vary("probe_ratio", {1, 2, 3});
  EXPECT_EQ(sweep.Cardinality(), 12u);
  const std::vector<ExperimentSpec> specs = sweep.Expand();
  ASSERT_EQ(specs.size(), 12u);
  // First axis slowest: workers=100 for the first six, 200 for the rest.
  for (size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(specs[i].config.num_workers, i < 6 ? 100u : 200u) << i;
    EXPECT_EQ(specs[i].scheduler, (i / 3) % 2 == 0 ? "sparrow" : "hawk") << i;
    EXPECT_EQ(specs[i].config.probe_ratio, i % 3 + 1) << i;
    EXPECT_EQ(specs[i].trace, &trace);
  }
  EXPECT_EQ(specs[0].Label(), "sparrow/num_workers=100/sparrow/probe_ratio=1");
  EXPECT_EQ(specs[11].Label(), "sparrow/num_workers=200/hawk/probe_ratio=3");
}

TEST(SweepSpecTest, LabelsAreUnique) {
  const Trace trace = MakeTrace(30, 1);
  SweepSpec sweep(ExperimentSpec("hawk").WithConfig(SmallConfig()).WithTrace(&trace));
  sweep.Vary("probe_ratio", {1, 2, 4, 8})
      .Vary("steal_cap", {1, 10})
      .VaryConfig("noise", {{"off", [](HawkConfig&) {}},
                            {"wide", [](HawkConfig& c) {
                               c.estimate_noise_lo = 0.5;
                               c.estimate_noise_hi = 1.5;
                             }}});
  const std::vector<ExperimentSpec> specs = sweep.Expand();
  ASSERT_EQ(specs.size(), 16u);
  std::set<std::string> labels;
  for (const ExperimentSpec& spec : specs) {
    labels.insert(spec.Label());
  }
  EXPECT_EQ(labels.size(), specs.size());
}

TEST(SweepSpecTest, VaryTracesAndEmptyAxes) {
  const Trace trace_a = MakeTrace(30, 1);
  const Trace trace_b = MakeTrace(40, 2);
  SweepSpec sweep(ExperimentSpec("hawk").WithConfig(SmallConfig()));
  sweep.VaryTraces({{"a", &trace_a}, {"b", &trace_b}});
  const std::vector<ExperimentSpec> specs = sweep.Expand();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].trace, &trace_a);
  EXPECT_EQ(specs[1].trace, &trace_b);
  EXPECT_EQ(specs[0].Label(), "hawk/a");

  // No axes: the sweep is the base spec alone.
  SweepSpec single(ExperimentSpec("hawk").WithConfig(SmallConfig()).WithTrace(&trace_a));
  EXPECT_EQ(single.Cardinality(), 1u);
  ASSERT_EQ(single.Expand().size(), 1u);
}

TEST(SweepSpecTest, RunSweepMatchesSerialExpansion) {
  const Trace trace = MakeTrace(80, 21);
  SweepSpec sweep(ExperimentSpec().WithConfig(SmallConfig()).WithTrace(&trace));
  sweep.VarySchedulers({"hawk", "sparrow"}).Vary("num_workers", {80, 120});
  const std::vector<SweepRun> runs = RunSweep(sweep, 4);
  const std::vector<ExperimentSpec> specs = sweep.Expand();
  ASSERT_EQ(runs.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(specs[i].Label());
    EXPECT_EQ(runs[i].spec.Label(), specs[i].Label());
    ExpectBitIdentical(runs[i].result, RunExperiment(specs[i]));
  }
}

// --- Validation and failure paths -------------------------------------------

TEST(HawkConfigValidateTest, AcceptsDefaultsRejectsNonsense) {
  EXPECT_TRUE(HawkConfig().Validate().ok());

  HawkConfig config;
  config.num_workers = 0;
  EXPECT_FALSE(config.Validate().ok());

  config = HawkConfig();
  config.probe_ratio = 0;
  EXPECT_FALSE(config.Validate().ok());

  config = HawkConfig();
  config.short_partition_fraction = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config.short_partition_fraction = -0.1;
  EXPECT_FALSE(config.Validate().ok());

  config = HawkConfig();
  config.estimate_noise_lo = 1.5;
  config.estimate_noise_hi = 0.5;
  EXPECT_FALSE(config.Validate().ok());

  config = HawkConfig();
  config.util_sample_period_us = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(HawkConfigFieldTest, SetConfigFieldCoversEveryName) {
  HawkConfig config;
  for (const std::string_view name : ConfigFieldNames()) {
    EXPECT_TRUE(SetConfigField(&config, name, 1.0).ok()) << name;
  }
  EXPECT_FALSE(SetConfigField(&config, "no_such_field", 1.0).ok());

  ASSERT_TRUE(SetConfigField(&config, "probe_ratio", 8.0).ok());
  EXPECT_EQ(config.probe_ratio, 8u);
  ASSERT_TRUE(SetConfigField(&config, "use_stealing", 0.0).ok());
  EXPECT_FALSE(config.use_stealing);
  ASSERT_TRUE(SetConfigField(&config, "short_partition_fraction", 0.25).ok());
  EXPECT_DOUBLE_EQ(config.short_partition_fraction, 0.25);
}

TEST(HawkConfigFieldTest, OutOfRangeIntegerValuesAreRejected) {
  // A negative or huge double must not wrap into an unsigned field (that
  // would pass Validate() and silently run a nonsense sweep point).
  HawkConfig config;
  const HawkConfig untouched = config;
  EXPECT_FALSE(SetConfigField(&config, "probe_ratio", -1.0).ok());
  EXPECT_FALSE(SetConfigField(&config, "num_workers", -100.0).ok());
  EXPECT_FALSE(SetConfigField(&config, "num_workers", 5e18).ok());
  EXPECT_FALSE(SetConfigField(&config, "seed", -1.0).ok());
  EXPECT_FALSE(SetConfigField(&config, "cutoff_us", 1e19).ok());
  EXPECT_EQ(config.probe_ratio, untouched.probe_ratio);
  EXPECT_EQ(config.num_workers, untouched.num_workers);
  // Boundary values that are representable still work.
  EXPECT_TRUE(SetConfigField(&config, "num_workers", 4294967295.0).ok());
  EXPECT_EQ(config.num_workers, 4294967295u);
}

TEST(ExperimentDeathTest, InvalidConfigFailsLoudly) {
  const Trace trace = MakeTrace(10, 1);
  HawkConfig config = SmallConfig();
  config.probe_ratio = 0;
  EXPECT_DEATH({ RunExperiment(trace, config, "hawk"); }, "probe_ratio");
}

TEST(ExperimentDeathTest, UnknownSchedulerFailsLoudly) {
  const Trace trace = MakeTrace(10, 1);
  EXPECT_DEATH({ RunExperiment(trace, SmallConfig(), "no-such-scheduler"); },
               "unknown scheduler");
}

TEST(ExperimentDeathTest, UnknownSweepFieldFailsAtDeclaration) {
  const Trace trace = MakeTrace(10, 1);
  SweepSpec sweep(ExperimentSpec("hawk").WithConfig(SmallConfig()).WithTrace(&trace));
  EXPECT_DEATH({ sweep.Vary("probe_ration", {1, 2}); }, "unknown config field");
}

TEST(ExperimentDeathTest, MissingTraceFailsLoudly) {
  EXPECT_DEATH({ RunExperiment(ExperimentSpec("hawk").WithConfig(SmallConfig())); },
               "has no trace");
}

}  // namespace
}  // namespace hawk
