// Tests for the Hawk core mechanisms: classifier and noisy estimator,
// partition sizing rule, waiting-time priority queue (ordering, decay,
// start/finish feedback, tie-breaking), stealing policy, probe placement.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <vector>

#include "src/core/estimator.h"
#include "src/core/hawk_config.h"
#include "src/core/job_classifier.h"
#include "src/core/partition.h"
#include "src/core/probe_placement.h"
#include "src/core/stealing_policy.h"
#include "src/core/waiting_time_queue.h"
#include "src/workload/trace_stats.h"

namespace hawk {
namespace {

Job MakeJob(std::vector<double> durations_s, bool long_hint = false) {
  Job job;
  for (const double d : durations_s) {
    job.task_durations.push_back(SecondsToUs(d));
  }
  job.long_hint = long_hint;
  return job;
}

// --- Estimator / classifier --------------------------------------------------

TEST(EstimatorTest, ExactWithoutNoise) {
  Estimator estimator(1.0, 1.0, 1);
  const Job job = MakeJob({100, 200, 300});
  EXPECT_DOUBLE_EQ(estimator.EstimateAvgTaskUs(job), SecondsToUs(200));
}

TEST(EstimatorTest, NoiseStaysInRange) {
  Estimator estimator(0.5, 1.5, 2);
  const Job job = MakeJob({100});
  for (int i = 0; i < 1000; ++i) {
    const double est = estimator.EstimateAvgTaskUs(job);
    EXPECT_GE(est, 0.5 * SecondsToUs(100));
    EXPECT_LE(est, 1.5 * SecondsToUs(100));
  }
}

TEST(EstimatorTest, NoiseCoversRange) {
  Estimator estimator(0.1, 1.9, 3);
  const Job job = MakeJob({100});
  double lo = 1e18;
  double hi = 0;
  for (int i = 0; i < 2000; ++i) {
    const double est = estimator.EstimateAvgTaskUs(job);
    lo = std::min(lo, est);
    hi = std::max(hi, est);
  }
  EXPECT_LT(lo, 0.3 * SecondsToUs(100));
  EXPECT_GT(hi, 1.7 * SecondsToUs(100));
}

TEST(ClassifierTest, CutoffBoundary) {
  JobClassifier classifier(ClassifyMode::kCutoff, SecondsToUs(1129), 1.0, 1.0, 1);
  EXPECT_FALSE(classifier.Classify(MakeJob({1128.9})).is_long_sched);
  EXPECT_TRUE(classifier.Classify(MakeJob({1129.0})).is_long_sched);
  EXPECT_TRUE(classifier.Classify(MakeJob({5000})).is_long_metrics);
}

TEST(ClassifierTest, HintModeIgnoresDurations) {
  JobClassifier classifier(ClassifyMode::kHint, SecondsToUs(1129), 1.0, 1.0, 1);
  EXPECT_TRUE(classifier.Classify(MakeJob({1.0}, /*long_hint=*/true)).is_long_sched);
  EXPECT_FALSE(classifier.Classify(MakeJob({9999.0}, /*long_hint=*/false)).is_long_sched);
}

TEST(ClassifierTest, NoiseOnlyAffectsSchedulingClass) {
  // With strong downward noise, long jobs get scheduled as short, but the
  // metrics class (noise-free) stays long — the Fig. 14 protocol.
  JobClassifier classifier(ClassifyMode::kCutoff, SecondsToUs(1129), 0.01, 0.02, 7);
  const JobClass cls = classifier.Classify(MakeJob({5000}));
  EXPECT_FALSE(cls.is_long_sched);
  EXPECT_TRUE(cls.is_long_metrics);
}

TEST(HawkConfigTest, GeneralCountRespectsPartitionToggle) {
  HawkConfig config;
  config.num_workers = 100;
  config.short_partition_fraction = 0.17;
  EXPECT_EQ(config.GeneralCount(), 83u);
  config.use_partition = false;
  EXPECT_EQ(config.GeneralCount(), 100u);
  config.use_partition = true;
  config.short_partition_fraction = 0.0;
  EXPECT_EQ(config.GeneralCount(), 100u);
}

TEST(HawkConfigTest, PartitionBySlotsMatchesWorkerSplitOnUniformFleets) {
  // With uniform capacity, the slot-share split lands on the same worker as
  // the worker-count split — the flag changes nothing (incl. at slots > 1).
  for (const uint32_t slots : {1u, 2u, 4u}) {
    for (const double fraction : {0.0, 0.02, 0.17, 0.5}) {
      HawkConfig config;
      config.num_workers = 100;
      config.slots_per_worker = slots;
      config.short_partition_fraction = fraction;
      const uint32_t by_workers = config.GeneralCount();
      config.partition_by_slots = true;
      EXPECT_EQ(config.GeneralCount(), by_workers) << slots << " slots, fraction " << fraction;
    }
  }
}

TEST(HawkConfigTest, PartitionBySlotsFollowsCapacityOnHeterogeneousFleets) {
  // 10 workers, every other one upgraded to 4 slots -> 25 slots total, laid
  // out 1,4,1,4,... The short partition is the id suffix; reserving 20% of
  // capacity must stop before the big worker at id 7.
  HawkConfig config;
  config.num_workers = 10;
  config.slots_per_worker = 1;
  config.big_worker_fraction = 0.5;
  config.big_worker_slots = 4;
  config.short_partition_fraction = 0.2;
  // Worker split: floor(10 * 0.2) = 2 short workers.
  EXPECT_EQ(config.GeneralCount(), 8u);
  config.partition_by_slots = true;
  // Slot split: target floor(25 * 0.2) = 5 short slots. Suffix slots from
  // the top: worker 9 (big, 4) = 4, + worker 8 (small, 1) = 5, + worker 7
  // (big, 4) would exceed -> general partition is [0, 8). Same boundary
  // here, but the *reason* is capacity: with fraction 0.3 the worker split
  // gives 7 while the slot split must stop at 8 (7 short slots > target 7?
  // target floor(25*0.3)=7, suffix 4+1=5, +4=9 > 7 -> still [0, 8)).
  EXPECT_EQ(config.GeneralCount(), 8u);
  config.short_partition_fraction = 0.3;
  EXPECT_EQ(config.GeneralCount(), 8u);
  config.partition_by_slots = false;
  EXPECT_EQ(config.GeneralCount(), 7u);
  // The flag is a first-class sweepable field.
  HawkConfig swept;
  ASSERT_TRUE(SetConfigField(&swept, "partition_by_slots", 1.0).ok());
  EXPECT_TRUE(swept.partition_by_slots);
  EXPECT_TRUE(swept.Validate().ok());
}

// --- Partition sizing ---------------------------------------------------------

TEST(PartitionTest, FractionFollowsTaskSecondsShare) {
  WorkloadMix mix;
  mix.pct_task_seconds_long = 83.0;
  EXPECT_NEAR(ShortPartitionFractionFromMix(mix), 0.17, 1e-9);
  mix.pct_task_seconds_long = 99.8;
  EXPECT_NEAR(ShortPartitionFractionFromMix(mix), 0.01, 1e-9);  // Clamped to floor.
  mix.pct_task_seconds_long = 10.0;
  EXPECT_NEAR(ShortPartitionFractionFromMix(mix), 0.5, 1e-9);  // Clamped to ceiling.
}

// --- WaitingTimeQueue ----------------------------------------------------------

TEST(WaitingTimeQueueTest, AssignsToMinWaiting) {
  WaitingTimeQueue queue(3);
  // Three tasks, estimates 100/50/10: first goes to worker 0 (all tie at 0),
  // then workers with less backlog win.
  const WorkerId w0 = queue.AssignTask(0, 100);
  const WorkerId w1 = queue.AssignTask(0, 50);
  const WorkerId w2 = queue.AssignTask(0, 10);
  EXPECT_EQ(w0, 0u);
  EXPECT_EQ(w1, 1u);
  EXPECT_EQ(w2, 2u);
  // Next task goes to worker 2 (backlog 10 is the minimum).
  EXPECT_EQ(queue.AssignTask(0, 1000), 2u);
}

TEST(WaitingTimeQueueTest, WaitingTimeDefinition) {
  WaitingTimeQueue queue(2);
  queue.AssignTask(0, 100);  // worker 0, backlog 100
  EXPECT_EQ(queue.WaitingTime(0, 0), 100);
  queue.OnTaskStart(0, 10, 100);  // backlog -> remaining of executing
  EXPECT_EQ(queue.WaitingTime(0, 10), 100);
  EXPECT_EQ(queue.WaitingTime(0, 60), 50);    // Decays with the clock.
  EXPECT_EQ(queue.WaitingTime(0, 200), 0);    // Overdue task: remaining est 0.
  queue.OnTaskFinish(0, 250);
  EXPECT_EQ(queue.WaitingTime(0, 250), 0);
}

TEST(WaitingTimeQueueTest, DecayRestoresPreference) {
  WaitingTimeQueue queue(2);
  queue.AssignTask(0, 100);
  queue.OnTaskStart(0, 0, 100);
  queue.AssignTask(0, 1000);  // worker 1 (waiting 0 < 100)
  // At t=2000, worker 0's task would have drained (estimate-wise); worker 1
  // still has backlog -> worker 0 preferred.
  EXPECT_EQ(queue.AssignTask(2000, 10), 0u);
}

TEST(WaitingTimeQueueTest, StartFeedbackAbsorbsQueueingDelay) {
  WaitingTimeQueue queue(1);
  queue.AssignTask(0, 100);
  // The task only starts at t=500 (e.g. short work was ahead of it): the
  // waiting time reflects the late start.
  queue.OnTaskStart(0, 500, 100);
  EXPECT_EQ(queue.WaitingTime(0, 500), 100);
  EXPECT_EQ(queue.WaitingTime(0, 550), 50);
}

TEST(WaitingTimeQueueTest, FinishFeedbackCorrectsOverrun) {
  WaitingTimeQueue queue(2);
  queue.AssignTask(0, 100);
  queue.OnTaskStart(0, 0, 100);  // Estimated drain at t=100.
  // Task actually runs to t=400; the estimate said 0 remaining after t=100,
  // and finish feedback re-synchronizes instead of accumulating drift.
  queue.OnTaskFinish(0, 400);
  EXPECT_EQ(queue.WaitingTime(0, 400), 0);
}

TEST(WaitingTimeQueueTest, OverdueExecutingLosesTieToIdle) {
  WaitingTimeQueue queue(2);
  queue.AssignTask(0, 10);
  queue.OnTaskStart(0, 0, 10);
  // At t=1000 worker 0's executing task is overdue (estimated waiting 0) but
  // still running; worker 1 is genuinely idle and must win the tie.
  EXPECT_EQ(queue.AssignTask(1000, 5), 1u);
}

TEST(WaitingTimeQueueTest, ManyAssignmentsBalance) {
  // 1000 equal tasks over 100 workers: every worker gets exactly 10.
  WaitingTimeQueue queue(100);
  std::vector<int> per_worker(100, 0);
  for (int i = 0; i < 1000; ++i) {
    per_worker[queue.AssignTask(0, 100)]++;
  }
  for (const int count : per_worker) {
    EXPECT_EQ(count, 10);
  }
}

TEST(WaitingTimeQueueTest, MatchesNaiveReferenceModel) {
  // Randomized property: the chosen worker always has the minimum §3.7
  // waiting time among all workers (ties by executing bias then id).
  Rng rng(11);
  const uint32_t n = 17;
  WaitingTimeQueue queue(n);
  SimTime now = 0;
  for (int step = 0; step < 2000; ++step) {
    now += static_cast<SimTime>(rng.NextBounded(50));
    const auto est = static_cast<DurationUs>(1 + rng.NextBounded(200));
    DurationUs min_wait = std::numeric_limits<DurationUs>::max();
    for (uint32_t w = 0; w < n; ++w) {
      min_wait = std::min(min_wait, queue.WaitingTime(w, now));
    }
    const WorkerId chosen = queue.AssignTask(now, est);
    // WaitingTime(chosen) now includes the new estimate; subtract it.
    EXPECT_EQ(queue.WaitingTime(chosen, now) - est, min_wait);
    // Randomly start/finish the backlog to exercise feedback paths.
    if (rng.Bernoulli(0.7)) {
      queue.OnTaskStart(chosen, now, est);
      if (rng.Bernoulli(0.5)) {
        queue.OnTaskFinish(chosen, now + static_cast<SimTime>(rng.NextBounded(300)));
      }
    }
  }
}

// --- Probe placement -----------------------------------------------------------

TEST(ProbePlacementTest, DistinctWhenFitting) {
  Rng rng(3);
  const auto targets = ChooseProbeTargets(rng, 10, 100, 40);
  EXPECT_EQ(targets.size(), 40u);
  std::set<WorkerId> unique(targets.begin(), targets.end());
  EXPECT_EQ(unique.size(), 40u);
  for (const WorkerId w : targets) {
    EXPECT_GE(w, 10u);
    EXPECT_LT(w, 110u);
  }
}

TEST(ProbePlacementTest, SpreadsWholeRoundsWhenOverflowing) {
  // 25 probes over 10 workers: every worker gets 2, a distinct 5 get 3.
  Rng rng(5);
  const auto targets = ChooseProbeTargets(rng, 0, 10, 25);
  EXPECT_EQ(targets.size(), 25u);
  std::vector<int> counts(10, 0);
  for (const WorkerId w : targets) {
    ASSERT_LT(w, 10u);
    counts[w]++;
  }
  int threes = 0;
  for (const int c : counts) {
    EXPECT_GE(c, 2);
    EXPECT_LE(c, 3);
    threes += c == 3 ? 1 : 0;
  }
  EXPECT_EQ(threes, 5);
}

TEST(ProbePlacementTest, NeverFewerProbesThanRequested) {
  Rng rng(7);
  for (const uint32_t probes : {1u, 7u, 63u, 64u, 65u, 500u}) {
    EXPECT_EQ(ChooseProbeTargets(rng, 0, 64, probes).size(), probes);
  }
}

// --- StealingPolicy --------------------------------------------------------------

TEST(StealingPolicyTest, StealsFromGeneralPartitionVictim) {
  Cluster cluster(10, 8);  // Workers 8, 9 are the short partition.
  // Worker 3 has a blocked short behind a long.
  cluster.workers().Enqueue(3, QueueEntry::Task(1, 0, 1000, /*is_long=*/true));
  cluster.workers().Enqueue(3, QueueEntry::Probe(2, /*is_long=*/false));
  StealingPolicy policy(/*cap=*/10, /*seed=*/1);
  RunCounters counters;
  const auto stolen = policy.TrySteal(cluster, /*thief=*/9, &counters);
  ASSERT_EQ(stolen.size(), 1u);
  EXPECT_EQ(stolen[0].job, 2u);
  EXPECT_EQ(counters.steal_attempts, 1u);
  EXPECT_EQ(counters.steal_successes, 1u);
  EXPECT_EQ(counters.entries_stolen, 1u);
  // The cap bounds how many victims were contacted.
  EXPECT_LE(counters.steal_victim_probes, 10u);
}

TEST(StealingPolicyTest, NeverStealsFromShortPartition) {
  Cluster cluster(10, 5);
  // Only short-partition workers (5..9) have stealable-looking queues; they
  // are not eligible victims, so every attempt must fail.
  for (WorkerId w = 5; w < 10; ++w) {
    cluster.workers().Enqueue(w, QueueEntry::Task(1, 0, 1000, /*is_long=*/true));
    cluster.workers().Enqueue(w, QueueEntry::Probe(2, /*is_long=*/false));
  }
  StealingPolicy policy(/*cap=*/5, /*seed=*/2);
  RunCounters counters;
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(policy.TrySteal(cluster, /*thief=*/0, &counters).empty());
  }
}

TEST(StealingPolicyTest, ThiefNeverContactsItself) {
  // Single general worker: a general thief has no victims at all.
  Cluster cluster(3, 1);
  cluster.workers().Enqueue(0, QueueEntry::Task(1, 0, 1000, /*is_long=*/true));
  cluster.workers().Enqueue(0, QueueEntry::Probe(2, /*is_long=*/false));
  StealingPolicy policy(/*cap=*/10, /*seed=*/3);
  RunCounters counters;
  EXPECT_TRUE(policy.TrySteal(cluster, /*thief=*/0, &counters).empty());
  // A short-partition thief can steal from worker 0.
  EXPECT_EQ(policy.TrySteal(cluster, /*thief=*/2, &counters).size(), 1u);
}

TEST(StealingPolicyTest, CapZeroDisables) {
  Cluster cluster(4, 4);
  cluster.workers().Enqueue(0, QueueEntry::Task(1, 0, 1000, /*is_long=*/true));
  cluster.workers().Enqueue(0, QueueEntry::Probe(2, /*is_long=*/false));
  StealingPolicy policy(/*cap=*/0, /*seed=*/4);
  RunCounters counters;
  EXPECT_TRUE(policy.TrySteal(cluster, 3, &counters).empty());
  EXPECT_EQ(counters.steal_attempts, 0u);
}

TEST(StealingPolicyTest, CapOneContactsOneVictim) {
  Cluster cluster(100, 100);
  StealingPolicy policy(/*cap=*/1, /*seed=*/5);
  RunCounters counters;
  policy.TrySteal(cluster, 0, &counters);
  EXPECT_EQ(counters.steal_victim_probes, 1u);
}

TEST(StealingPolicyTest, FindsVictimThroughCap) {
  // One of 50 general workers holds stealable work; with cap 50 the policy
  // always finds it.
  Cluster cluster(50, 50);
  cluster.workers().Enqueue(17, QueueEntry::Task(1, 0, 1000, /*is_long=*/true));
  cluster.workers().Enqueue(17, QueueEntry::Probe(2, /*is_long=*/false));
  StealingPolicy policy(/*cap=*/50, /*seed=*/6);
  RunCounters counters;
  const auto stolen = policy.TrySteal(cluster, /*thief=*/0, &counters);
  EXPECT_EQ(stolen.size(), 1u);
}

TEST(StealingPolicyTest, DChoiceContactsMostLoadedVictimFirst) {
  // Load up every worker's queue with its own id's worth of entries; the
  // d-choice contact list must come back sorted by descending queue length,
  // so the first victim probed is always the sample's longest queue. The
  // random policy with the same seed draws the same sample in draw order.
  Cluster cluster(20, 20);
  for (WorkerId w = 0; w < 20; ++w) {
    for (WorkerId i = 0; i < w; ++i) {
      cluster.workers().Enqueue(w, QueueEntry::Probe(1, /*is_long=*/false));
    }
  }
  StealingPolicy random_policy(/*cap=*/5, /*seed=*/9);
  StealingPolicy dchoice_policy(/*cap=*/5, /*seed=*/9,
                                StealingPolicy::VictimSelection::kDChoice);
  std::vector<WorkerId> random_victims;
  std::vector<WorkerId> dchoice_victims;
  random_policy.ChooseVictimsInto(cluster, /*thief=*/0, &random_victims);
  dchoice_policy.ChooseVictimsInto(cluster, /*thief=*/0, &dchoice_victims);
  ASSERT_EQ(random_victims.size(), 5u);
  // Same sample (same seed), different order: d-choice is the random sample
  // sorted by descending queue length, which here means descending id.
  std::vector<WorkerId> sorted = random_victims;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  EXPECT_EQ(dchoice_victims, sorted);
  for (size_t i = 1; i < dchoice_victims.size(); ++i) {
    EXPECT_GE(cluster.workers().QueueSize(dchoice_victims[i - 1]),
              cluster.workers().QueueSize(dchoice_victims[i]));
  }
}

}  // namespace
}  // namespace hawk
