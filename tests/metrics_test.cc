// Tests for the metrics library: run comparisons (the figures' y-axes) and
// the ASCII report rendering.
#include <gtest/gtest.h>

#include "src/metrics/comparison.h"
#include "src/metrics/report.h"

namespace hawk {
namespace {

RunResult MakeRun(const std::vector<std::pair<bool, DurationUs>>& jobs,
                  std::vector<double> util = {}) {
  RunResult run;
  for (size_t i = 0; i < jobs.size(); ++i) {
    JobResult r;
    r.id = static_cast<JobId>(i);
    r.is_long = jobs[i].first;
    r.submit_time = 0;
    r.finish_time = jobs[i].second;
    r.runtime_us = jobs[i].second;
    run.jobs.push_back(r);
  }
  run.utilization_samples = std::move(util);
  return run;
}

TEST(ComparisonTest, RatiosPerClass) {
  // Short jobs: treatment {10, 20, 30}, baseline {20, 40, 60} -> ratios 0.5.
  // Long job: equal -> ratio 1.
  const RunResult treatment =
      MakeRun({{false, 10}, {false, 20}, {false, 30}, {true, 100}}, {0.5, 0.7});
  const RunResult baseline =
      MakeRun({{false, 20}, {false, 40}, {false, 60}, {true, 100}}, {0.9, 0.8});
  const RunComparison cmp = CompareRuns(treatment, baseline);
  EXPECT_DOUBLE_EQ(cmp.short_jobs.p50_ratio, 0.5);
  EXPECT_DOUBLE_EQ(cmp.short_jobs.p90_ratio, 0.5);
  EXPECT_DOUBLE_EQ(cmp.short_jobs.avg_ratio, 0.5);
  EXPECT_DOUBLE_EQ(cmp.short_jobs.fraction_improved_or_equal, 1.0);
  EXPECT_EQ(cmp.short_jobs.jobs, 3u);
  EXPECT_DOUBLE_EQ(cmp.long_jobs.p50_ratio, 1.0);
  EXPECT_DOUBLE_EQ(cmp.long_jobs.fraction_improved_or_equal, 1.0);
  EXPECT_DOUBLE_EQ(cmp.treatment_median_util, 0.6);
  EXPECT_DOUBLE_EQ(cmp.baseline_median_util, 0.85);
}

TEST(ComparisonTest, FractionImprovedCountsPerJob) {
  const RunResult treatment = MakeRun({{false, 10}, {false, 50}, {false, 30}, {false, 70}});
  const RunResult baseline = MakeRun({{false, 20}, {false, 40}, {false, 30}, {false, 60}});
  const RunComparison cmp = CompareRuns(treatment, baseline);
  // Improved-or-equal: jobs 0 (10<=20) and 2 (30<=30) -> 0.5.
  EXPECT_DOUBLE_EQ(cmp.short_jobs.fraction_improved_or_equal, 0.5);
}

TEST(ComparisonTest, EmptyClassYieldsZeroJobs) {
  const RunResult treatment = MakeRun({{false, 10}});
  const RunResult baseline = MakeRun({{false, 20}});
  const RunComparison cmp = CompareRuns(treatment, baseline);
  EXPECT_EQ(cmp.long_jobs.jobs, 0u);
  EXPECT_EQ(cmp.short_jobs.jobs, 1u);
}

TEST(ReportTest, TableRendersAlignedColumns) {
  Table table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(ReportTest, NumberFormatting) {
  EXPECT_EQ(Table::Num(1.23456, 3), "1.235");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
  EXPECT_EQ(Table::Pct(0.1234), "12.34%");
  EXPECT_EQ(Table::Pct(0.5, 0), "50%");
}

}  // namespace
}  // namespace hawk
