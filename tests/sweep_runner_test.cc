// SweepRunner: parallel experiment sweeps must be bit-identical to serial
// RunExperiment loops — the parallelism is across self-contained runs, never
// inside one. Also exercised under TSan in CI.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/scheduler/experiment.h"
#include "src/scheduler/sweep_runner.h"
#include "src/workload/arrivals.h"
#include "src/workload/cluster_workloads.h"

namespace hawk {
namespace {

Trace MakeTrace(uint32_t jobs, uint64_t seed) {
  Trace trace = GenerateClusterWorkload(FacebookParams(jobs, seed));
  Rng arrivals_rng(seed ^ 0x1234);
  AssignPoissonArrivals(&trace, SecondsToUs(2.0), &arrivals_rng);
  return trace;
}

void ExpectBitIdentical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    ASSERT_EQ(a.jobs[i].id, b.jobs[i].id);
    ASSERT_EQ(a.jobs[i].is_long, b.jobs[i].is_long);
    ASSERT_EQ(a.jobs[i].submit_time, b.jobs[i].submit_time);
    ASSERT_EQ(a.jobs[i].finish_time, b.jobs[i].finish_time) << "job " << i;
    ASSERT_EQ(a.jobs[i].runtime_us, b.jobs[i].runtime_us) << "job " << i;
  }
  EXPECT_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.total_busy_us, b.total_busy_us);
  EXPECT_EQ(a.utilization_samples, b.utilization_samples);
  EXPECT_EQ(a.counters.events, b.counters.events);
  EXPECT_EQ(a.counters.jobs, b.counters.jobs);
  EXPECT_EQ(a.counters.tasks_launched, b.counters.tasks_launched);
  EXPECT_EQ(a.counters.probes_placed, b.counters.probes_placed);
  EXPECT_EQ(a.counters.probe_requests, b.counters.probe_requests);
  EXPECT_EQ(a.counters.cancels, b.counters.cancels);
  EXPECT_EQ(a.counters.central_tasks_placed, b.counters.central_tasks_placed);
  EXPECT_EQ(a.counters.steal_attempts, b.counters.steal_attempts);
  EXPECT_EQ(a.counters.steal_victim_probes, b.counters.steal_victim_probes);
  EXPECT_EQ(a.counters.steal_successes, b.counters.steal_successes);
  EXPECT_EQ(a.counters.entries_stolen, b.counters.entries_stolen);
}

std::vector<ExperimentSpec> BuildGrid(const Trace* trace_a, const Trace* trace_b) {
  // Scheduler x config x trace grid: all four schedulers, two cluster sizes,
  // two traces — 16 points, more than typical thread counts.
  std::vector<ExperimentSpec> specs;
  for (const Trace* trace : {trace_a, trace_b}) {
    for (const uint32_t workers : {80u, 130u}) {
      for (const char* scheduler : {"sparrow", "centralized", "hawk", "split"}) {
        HawkConfig config;
        config.num_workers = workers;
        config.classify_mode = ClassifyMode::kHint;
        config.seed = 7;
        specs.push_back(ExperimentSpec(scheduler).WithConfig(config).WithTrace(trace));
      }
    }
  }
  return specs;
}

TEST(SweepRunnerTest, ParallelSweepBitIdenticalToSerialLoop) {
  const Trace trace_a = MakeTrace(120, 5);
  const Trace trace_b = MakeTrace(90, 11);
  const std::vector<ExperimentSpec> specs = BuildGrid(&trace_a, &trace_b);

  std::vector<RunResult> serial;
  serial.reserve(specs.size());
  for (const ExperimentSpec& spec : specs) {
    serial.push_back(RunExperiment(spec));
  }

  const SweepRunner runner(4);
  const std::vector<RunResult> parallel =
      runner.Run(specs.size(), [&specs](size_t i) { return RunExperiment(specs[i]); });
  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("sweep point " + std::to_string(i));
    ExpectBitIdentical(serial[i], parallel[i]);
  }
}

TEST(SweepRunnerTest, RunExperimentsMatchesSerialAndKeepsSpecs) {
  const Trace trace_a = MakeTrace(100, 3);
  const Trace trace_b = MakeTrace(70, 9);
  const std::vector<ExperimentSpec> specs = BuildGrid(&trace_a, &trace_b);
  const std::vector<SweepRun> runs = RunExperiments(specs, 4);
  ASSERT_EQ(runs.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE("sweep point " + std::to_string(i));
    EXPECT_EQ(runs[i].spec.scheduler, specs[i].scheduler);
    EXPECT_EQ(runs[i].spec.trace, specs[i].trace);
    ExpectBitIdentical(runs[i].result, RunExperiment(specs[i]));
  }
}

TEST(SweepRunnerTest, MoreThreadsThanPoints) {
  const Trace trace = MakeTrace(60, 3);
  HawkConfig config;
  config.num_workers = 60;
  config.classify_mode = ClassifyMode::kHint;
  const std::vector<ExperimentSpec> specs = {
      ExperimentSpec("hawk").WithConfig(config).WithTrace(&trace),
      ExperimentSpec("sparrow").WithConfig(config).WithTrace(&trace)};
  const SweepRunner runner(16);
  const std::vector<RunResult> results =
      runner.Run(specs.size(), [&specs](size_t i) { return RunExperiment(specs[i]); });
  ASSERT_EQ(results.size(), 2u);
  ExpectBitIdentical(results[0], RunExperiment(trace, config, "hawk"));
  ExpectBitIdentical(results[1], RunExperiment(trace, config, "sparrow"));
}

TEST(SweepRunnerTest, EmptySweep) {
  const SweepRunner runner(4);
  EXPECT_TRUE(runner.Run(0, [](size_t) { return RunResult(); }).empty());
}

TEST(SweepRunnerTest, ZeroThreadsPicksHardwareConcurrency) {
  const SweepRunner runner(0);
  EXPECT_GE(runner.num_threads(), 1u);
}

}  // namespace
}  // namespace hawk
