// Tests for the cluster substrate: worker FIFO discipline and execution
// state machine, the Fig. 3 steal-group extraction rule, partition layout,
// utilization accounting, and late-binding job tracking.
#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/job_tracker.h"
#include "src/cluster/worker.h"
#include "src/workload/google_trace.h"

namespace hawk {
namespace {

QueueEntry ShortProbe(JobId job) { return QueueEntry::Probe(job, /*is_long=*/false); }
QueueEntry LongTask(JobId job) { return QueueEntry::Task(job, 0, 1000, /*is_long=*/true); }
QueueEntry ShortTask(JobId job) { return QueueEntry::Task(job, 0, 10, /*is_long=*/false); }

TEST(WorkerTest, FifoOrder) {
  Worker w(0);
  w.Enqueue(ShortProbe(1));
  w.Enqueue(ShortProbe(2));
  w.Enqueue(ShortProbe(3));
  EXPECT_EQ(w.PopFront().job, 1u);
  EXPECT_EQ(w.PopFront().job, 2u);
  EXPECT_EQ(w.PopFront().job, 3u);
  EXPECT_TRUE(w.QueueEmpty());
}

TEST(WorkerTest, ExecutionStateMachine) {
  Worker w(0);
  EXPECT_EQ(w.state(), WorkerState::kIdle);
  EXPECT_FALSE(w.Busy());

  w.BeginRequest(/*probe_is_long=*/false);
  EXPECT_EQ(w.state(), WorkerState::kRequesting);
  EXPECT_TRUE(w.Busy());
  w.CancelRequest();
  EXPECT_EQ(w.state(), WorkerState::kIdle);

  w.BeginExecute(100, ShortTask(7));
  EXPECT_EQ(w.state(), WorkerState::kExecuting);
  EXPECT_EQ(w.executing_job(), 7u);
  EXPECT_EQ(w.executing_until(), 110);
  w.FinishExecute();
  EXPECT_EQ(w.state(), WorkerState::kIdle);
  EXPECT_EQ(w.busy_accum_us(), 10);
}

TEST(WorkerTest, BusyAccumulates) {
  Worker w(0);
  for (int i = 0; i < 5; ++i) {
    w.BeginExecute(i * 100, QueueEntry::Task(1, 0, 25, false));
    w.FinishExecute();
  }
  EXPECT_EQ(w.busy_accum_us(), 125);
}

TEST(WorkerTest, FifoOrderSurvivesRingWraparound) {
  // Drive head around the ring several times with a nonempty queue so
  // enqueues wrap while pops drain, then check order end to end.
  Worker w(0);
  JobId next_in = 0;
  JobId next_out = 0;
  for (int i = 0; i < 5; ++i) {
    w.Enqueue(ShortProbe(next_in++));
  }
  for (int round = 0; round < 100; ++round) {
    w.Enqueue(ShortProbe(next_in++));
    w.Enqueue(ShortProbe(next_in++));
    EXPECT_EQ(w.PopFront().job, next_out++);
  }
  while (!w.QueueEmpty()) {
    EXPECT_EQ(w.PopFront().job, next_out++);
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(WorkerTest, StealGroupIntoMovesEntriesToThief) {
  Worker victim(0);
  Worker thief(1);
  victim.BeginExecute(0, LongTask(1));
  victim.Enqueue(ShortProbe(2));
  victim.Enqueue(ShortProbe(3));
  victim.Enqueue(LongTask(4));
  EXPECT_EQ(victim.StealGroupInto(&thief), 2u);
  ASSERT_EQ(thief.QueueSize(), 2u);
  EXPECT_EQ(thief.PopFront().job, 2u);
  EXPECT_EQ(thief.PopFront().job, 3u);
  ASSERT_EQ(victim.QueueSize(), 1u);
  EXPECT_EQ(victim.PopFront().job, 4u);
  // Nothing left to steal: queue is a lone long entry.
  EXPECT_EQ(victim.StealGroupInto(&thief), 0u);
}

TEST(WorkerTest, StealGroupIntoAfterWraparound) {
  // The stealable group must be found and moved correctly even when the
  // ring has wrapped and the group straddles the physical end of storage.
  Worker victim(0);
  Worker thief(1);
  // Advance the ring head: 11 enqueues grow the ring to capacity 16, and 11
  // pops leave the head at physical slot 11.
  for (int i = 0; i < 11; ++i) {
    victim.Enqueue(ShortProbe(100 + static_cast<JobId>(i)));
  }
  for (int i = 0; i < 11; ++i) {
    victim.PopFront();
  }
  // Seven more entries fill slots 11..15 and wrap into 0..1, so the
  // stealable group (jobs 4..8) physically straddles the storage boundary.
  victim.BeginExecute(0, ShortTask(1));
  victim.Enqueue(ShortProbe(2));
  victim.Enqueue(LongTask(3));
  for (JobId job = 4; job <= 8; ++job) {
    victim.Enqueue(ShortProbe(job));
  }
  EXPECT_TRUE(victim.HasStealableGroup());
  EXPECT_EQ(victim.StealGroupInto(&thief), 5u);
  for (JobId job = 4; job <= 8; ++job) {
    EXPECT_EQ(thief.PopFront().job, job);
  }
  EXPECT_TRUE(thief.QueueEmpty());
  EXPECT_EQ(victim.PopFront().job, 2u);
  EXPECT_EQ(victim.PopFront().job, 3u);
  EXPECT_TRUE(victim.QueueEmpty());
}

// --- Fig. 3 steal-group extraction -----------------------------------------

TEST(StealScanTest, CaseA1_ExecutingShortGroupAfterLongInQueue) {
  // a1) executing short; queue = [L, S, S] -> steal the two shorts.
  Worker w(0);
  w.BeginExecute(0, ShortTask(1));
  w.Enqueue(LongTask(2));
  w.Enqueue(ShortProbe(3));
  w.Enqueue(ShortProbe(4));
  const auto stolen = w.ExtractStealableGroup();
  ASSERT_EQ(stolen.size(), 2u);
  EXPECT_EQ(stolen[0].job, 3u);
  EXPECT_EQ(stolen[1].job, 4u);
  EXPECT_EQ(w.QueueSize(), 1u);  // Long entry stays.
}

TEST(StealScanTest, CaseA2_GroupEndsAtNextLong) {
  // a2) executing short; queue = [S, L, S, L, S] -> steal only the first
  // group after the first long (one entry).
  Worker w(0);
  w.BeginExecute(0, ShortTask(1));
  w.Enqueue(ShortProbe(2));
  w.Enqueue(LongTask(3));
  w.Enqueue(ShortProbe(4));
  w.Enqueue(LongTask(5));
  w.Enqueue(ShortProbe(6));
  const auto stolen = w.ExtractStealableGroup();
  ASSERT_EQ(stolen.size(), 1u);
  EXPECT_EQ(stolen[0].job, 4u);
  // Queue keeps [S(2), L(3), L(5), S(6)].
  EXPECT_EQ(w.QueueSize(), 4u);
}

TEST(StealScanTest, CaseB1_ExecutingLongStealsHeadGroup) {
  // b1) executing long; queue = [S, S, L] -> steal the head shorts.
  Worker w(0);
  w.BeginExecute(0, LongTask(1));
  w.Enqueue(ShortProbe(2));
  w.Enqueue(ShortProbe(3));
  w.Enqueue(LongTask(4));
  const auto stolen = w.ExtractStealableGroup();
  ASSERT_EQ(stolen.size(), 2u);
  EXPECT_EQ(stolen[0].job, 2u);
  EXPECT_EQ(stolen[1].job, 3u);
}

TEST(StealScanTest, CaseB2_ExecutingLongQueueStartsLong) {
  // b2) executing long; queue = [L, S, S] -> steal the shorts after the
  // queued long.
  Worker w(0);
  w.BeginExecute(0, LongTask(1));
  w.Enqueue(LongTask(2));
  w.Enqueue(ShortProbe(3));
  w.Enqueue(ShortProbe(4));
  const auto stolen = w.ExtractStealableGroup();
  ASSERT_EQ(stolen.size(), 2u);
  EXPECT_EQ(stolen[0].job, 3u);
}

TEST(StealScanTest, NoLongInvolvedNothingStolen) {
  // Executing short with only short entries: no head-of-line blocking by a
  // long task, nothing eligible.
  Worker w(0);
  w.BeginExecute(0, ShortTask(1));
  w.Enqueue(ShortProbe(2));
  w.Enqueue(ShortProbe(3));
  EXPECT_FALSE(w.HasStealableGroup());
  EXPECT_TRUE(w.ExtractStealableGroup().empty());
  EXPECT_EQ(w.QueueSize(), 2u);
}

TEST(StealScanTest, AllLongNothingStolen) {
  Worker w(0);
  w.BeginExecute(0, LongTask(1));
  w.Enqueue(LongTask(2));
  w.Enqueue(LongTask(3));
  EXPECT_TRUE(w.ExtractStealableGroup().empty());
}

TEST(StealScanTest, IdleWorkerWithBlockedQueue) {
  // Worker not executing (e.g. between dispatches): queue = [L, S] -> the
  // short after the long is eligible.
  Worker w(0);
  w.Enqueue(LongTask(1));
  w.Enqueue(ShortProbe(2));
  const auto stolen = w.ExtractStealableGroup();
  ASSERT_EQ(stolen.size(), 1u);
  EXPECT_EQ(stolen[0].job, 2u);
}

TEST(StealScanTest, RequestingShortProbeDoesNotCountAsLong) {
  // Worker resolving a short probe; queue all short: nothing eligible.
  Worker w(0);
  w.BeginRequest(/*probe_is_long=*/false);
  w.Enqueue(ShortProbe(2));
  EXPECT_TRUE(w.ExtractStealableGroup().empty());
}

TEST(StealScanTest, RequestingLongProbeCountsAsLong) {
  // In the no-centralized ablation, long jobs probe too; an in-flight long
  // probe blocks the head shorts just like an executing long task.
  Worker w(0);
  w.BeginRequest(/*probe_is_long=*/true);
  w.Enqueue(ShortProbe(2));
  const auto stolen = w.ExtractStealableGroup();
  ASSERT_EQ(stolen.size(), 1u);
  EXPECT_EQ(stolen[0].job, 2u);
}

TEST(StealScanTest, ExtractIsRepeatable) {
  // After stealing the first group, the next group becomes eligible.
  Worker w(0);
  w.BeginExecute(0, LongTask(1));
  w.Enqueue(ShortProbe(2));
  w.Enqueue(LongTask(3));
  w.Enqueue(ShortProbe(4));
  EXPECT_EQ(w.ExtractStealableGroup().size(), 1u);
  EXPECT_EQ(w.ExtractStealableGroup().size(), 1u);
  EXPECT_TRUE(w.ExtractStealableGroup().empty());
  EXPECT_EQ(w.QueueSize(), 1u);  // Only L(3) remains.
}

// --- Cluster ----------------------------------------------------------------

TEST(ClusterTest, PartitionLayout) {
  Cluster cluster(100, 83);
  EXPECT_EQ(cluster.NumWorkers(), 100u);
  EXPECT_EQ(cluster.GeneralCount(), 83u);
  EXPECT_EQ(cluster.ShortPartitionCount(), 17u);
  EXPECT_TRUE(cluster.InGeneralPartition(0));
  EXPECT_TRUE(cluster.InGeneralPartition(82));
  EXPECT_FALSE(cluster.InGeneralPartition(83));
  EXPECT_FALSE(cluster.InGeneralPartition(99));
}

TEST(ClusterTest, UtilizationCountsExecutingOnly) {
  Cluster cluster(4, 4);
  EXPECT_DOUBLE_EQ(cluster.Utilization(), 0.0);
  cluster.worker(0).BeginExecute(0, ShortTask(1));
  cluster.worker(1).BeginRequest(false);  // Requesting is not "used".
  EXPECT_DOUBLE_EQ(cluster.Utilization(), 0.25);
  cluster.worker(2).BeginExecute(0, LongTask(2));
  EXPECT_DOUBLE_EQ(cluster.Utilization(), 0.5);
}

TEST(ClusterTest, TotalBusyAggregates) {
  Cluster cluster(3, 3);
  cluster.worker(0).BeginExecute(0, QueueEntry::Task(1, 0, 100, false));
  cluster.worker(0).FinishExecute();
  cluster.worker(2).BeginExecute(0, QueueEntry::Task(2, 0, 50, false));
  cluster.worker(2).FinishExecute();
  EXPECT_EQ(cluster.TotalBusyUs(), 150);
}

// --- JobTracker --------------------------------------------------------------

Trace TwoJobTrace() {
  Trace trace;
  Job a;
  a.task_durations = {100, 200, 300};
  Job b;
  b.task_durations = {50};
  trace.Add(a);
  trace.Add(b);
  trace.SortAndRenumber();
  return trace;
}

TEST(JobTrackerTest, HandsOutTasksExactlyOnceInOrder) {
  const Trace trace = TwoJobTrace();
  JobTracker tracker(&trace);
  auto t0 = tracker.TakeNextTask(0);
  auto t1 = tracker.TakeNextTask(0);
  auto t2 = tracker.TakeNextTask(0);
  ASSERT_TRUE(t0 && t1 && t2);
  EXPECT_EQ(t0->task_index, 0u);
  EXPECT_EQ(t0->duration, 100);
  EXPECT_EQ(t2->duration, 300);
  EXPECT_FALSE(tracker.TakeNextTask(0).has_value());  // Cancels from here on.
  EXPECT_TRUE(tracker.AllTasksAssigned(0));
}

TEST(JobTrackerTest, CompletionDetection) {
  const Trace trace = TwoJobTrace();
  JobTracker tracker(&trace);
  EXPECT_FALSE(tracker.OnTaskFinished(0, 10));
  EXPECT_FALSE(tracker.OnTaskFinished(0, 20));
  EXPECT_FALSE(tracker.AllJobsFinished());
  EXPECT_TRUE(tracker.OnTaskFinished(0, 30));
  EXPECT_TRUE(tracker.JobFinished(0));
  EXPECT_EQ(tracker.FinishTime(0), 30);
  EXPECT_TRUE(tracker.OnTaskFinished(1, 40));
  EXPECT_TRUE(tracker.AllJobsFinished());
}

TEST(JobTrackerTest, ClassificationAndEstimateStorage) {
  const Trace trace = TwoJobTrace();
  JobTracker tracker(&trace);
  tracker.SetClassification(0, /*is_long_sched=*/true, /*is_long_metrics=*/false, 12345);
  EXPECT_TRUE(tracker.IsLongSched(0));
  EXPECT_FALSE(tracker.IsLongMetrics(0));
  EXPECT_EQ(tracker.EstimateUs(0), 12345);
}

}  // namespace
}  // namespace hawk
