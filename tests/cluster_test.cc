// Tests for the cluster substrate: the struct-of-arrays WorkerStore (FIFO
// discipline, slot-based execution transitions, the Fig. 3 steal-group
// extraction rule, slot-index mapping), partition layout, utilization
// accounting, and late-binding job tracking.
#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/job_tracker.h"
#include "src/cluster/worker_store.h"
#include "src/workload/google_trace.h"

namespace hawk {
namespace {

QueueEntry ShortProbe(JobId job) { return QueueEntry::Probe(job, /*is_long=*/false); }
QueueEntry LongTask(JobId job) { return QueueEntry::Task(job, 0, 1000, /*is_long=*/true); }
QueueEntry ShortTask(JobId job) { return QueueEntry::Task(job, 0, 10, /*is_long=*/false); }

TEST(WorkerStoreTest, FifoOrder) {
  WorkerStore store(1);
  store.Enqueue(0, ShortProbe(1));
  store.Enqueue(0, ShortProbe(2));
  store.Enqueue(0, ShortProbe(3));
  EXPECT_EQ(store.PopFront(0).job, 1u);
  EXPECT_EQ(store.PopFront(0).job, 2u);
  EXPECT_EQ(store.PopFront(0).job, 3u);
  EXPECT_TRUE(store.QueueEmpty(0));
}

TEST(WorkerStoreTest, SlotStateMachine) {
  WorkerStore store(1);
  EXPECT_EQ(store.FreeSlots(0), 1u);
  EXPECT_EQ(store.OccupiedSlots(0), 0u);

  store.BeginRequest(0, /*probe_is_long=*/false);
  EXPECT_EQ(store.RequestingSlots(0), 1u);
  EXPECT_FALSE(store.HasFreeSlot(0));
  store.ResolveRequest(0, /*probe_is_long=*/false);
  EXPECT_EQ(store.RequestingSlots(0), 0u);
  EXPECT_TRUE(store.HasFreeSlot(0));

  store.BeginExecute(0, 100, ShortTask(7));
  EXPECT_EQ(store.ExecutingSlots(0), 1u);
  EXPECT_EQ(store.ExecutingTotal(), 1u);
  EXPECT_FALSE(store.HasFreeSlot(0));
  store.FinishExecute(0, /*was_long=*/false);
  EXPECT_EQ(store.ExecutingSlots(0), 0u);
  EXPECT_EQ(store.ExecutingTotal(), 0u);
  EXPECT_EQ(store.BusyAccumUs(0), 10);
}

TEST(WorkerStoreTest, BusyAccumulates) {
  WorkerStore store(1);
  for (int i = 0; i < 5; ++i) {
    store.BeginExecute(0, i * 100, QueueEntry::Task(1, 0, 25, false));
    store.FinishExecute(0, false);
  }
  EXPECT_EQ(store.BusyAccumUs(0), 125);
}

TEST(WorkerStoreTest, MultiSlotConcurrentExecution) {
  SlotSpec spec;
  spec.slots_per_worker = 3;
  WorkerStore store(2, spec);
  EXPECT_EQ(store.TotalSlots(), 6u);
  EXPECT_EQ(store.FreeSlots(0), 3u);

  store.BeginExecute(0, 0, ShortTask(1));
  store.BeginRequest(0, /*probe_is_long=*/true);
  EXPECT_EQ(store.FreeSlots(0), 1u);
  EXPECT_EQ(store.OccupiedSlots(0), 2u);
  EXPECT_TRUE(store.AnyOccupiedLong(0));  // The in-flight long probe counts.
  store.BeginExecute(0, 0, ShortTask(2));
  EXPECT_FALSE(store.HasFreeSlot(0));
  EXPECT_EQ(store.ExecutingTotal(), 2u);

  store.ResolveRequest(0, /*probe_is_long=*/true);
  EXPECT_FALSE(store.AnyOccupiedLong(0));
  store.FinishExecute(0, false);
  store.FinishExecute(0, false);
  EXPECT_EQ(store.FreeSlots(0), 3u);
  EXPECT_EQ(store.ExecutingTotal(), 0u);
}

TEST(WorkerStoreTest, FifoOrderSurvivesRingWraparound) {
  // Drive head around the ring several times with a nonempty queue so
  // enqueues wrap while pops drain, then check order end to end.
  WorkerStore store(1);
  JobId next_in = 0;
  JobId next_out = 0;
  for (int i = 0; i < 5; ++i) {
    store.Enqueue(0, ShortProbe(next_in++));
  }
  for (int round = 0; round < 100; ++round) {
    store.Enqueue(0, ShortProbe(next_in++));
    store.Enqueue(0, ShortProbe(next_in++));
    EXPECT_EQ(store.PopFront(0).job, next_out++);
  }
  while (!store.QueueEmpty(0)) {
    EXPECT_EQ(store.PopFront(0).job, next_out++);
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(WorkerStoreTest, StealGroupIntoMovesEntriesToThief) {
  WorkerStore store(2);
  const WorkerId victim = 0;
  const WorkerId thief = 1;
  store.BeginExecute(victim, 0, LongTask(1));
  store.Enqueue(victim, ShortProbe(2));
  store.Enqueue(victim, ShortProbe(3));
  store.Enqueue(victim, LongTask(4));
  EXPECT_EQ(store.StealGroupInto(victim, thief), 2u);
  ASSERT_EQ(store.QueueSize(thief), 2u);
  EXPECT_EQ(store.PopFront(thief).job, 2u);
  EXPECT_EQ(store.PopFront(thief).job, 3u);
  ASSERT_EQ(store.QueueSize(victim), 1u);
  EXPECT_EQ(store.PopFront(victim).job, 4u);
  // Nothing left to steal: queue is a lone long entry.
  EXPECT_EQ(store.StealGroupInto(victim, thief), 0u);
}

TEST(WorkerStoreTest, StealGroupIntoAfterWraparound) {
  // The stealable group must be found and moved correctly even when the
  // ring has wrapped and the group straddles the physical end of storage.
  WorkerStore store(2);
  const WorkerId victim = 0;
  const WorkerId thief = 1;
  // Advance the ring head: 11 enqueues grow the ring to capacity 16, and 11
  // pops leave the head at physical slot 11.
  for (int i = 0; i < 11; ++i) {
    store.Enqueue(victim, ShortProbe(100 + static_cast<JobId>(i)));
  }
  for (int i = 0; i < 11; ++i) {
    store.PopFront(victim);
  }
  // Seven more entries fill slots 11..15 and wrap into 0..1, so the
  // stealable group (jobs 4..8) physically straddles the storage boundary.
  store.BeginExecute(victim, 0, ShortTask(1));
  store.Enqueue(victim, ShortProbe(2));
  store.Enqueue(victim, LongTask(3));
  for (JobId job = 4; job <= 8; ++job) {
    store.Enqueue(victim, ShortProbe(job));
  }
  EXPECT_TRUE(store.HasStealableGroup(victim));
  EXPECT_EQ(store.StealGroupInto(victim, thief), 5u);
  for (JobId job = 4; job <= 8; ++job) {
    EXPECT_EQ(store.PopFront(thief).job, job);
  }
  EXPECT_TRUE(store.QueueEmpty(thief));
  EXPECT_EQ(store.PopFront(victim).job, 2u);
  EXPECT_EQ(store.PopFront(victim).job, 3u);
  EXPECT_TRUE(store.QueueEmpty(victim));
}

// --- Slot layout -------------------------------------------------------------

TEST(WorkerStoreTest, UniformSlotIndexMapping) {
  SlotSpec spec;
  spec.slots_per_worker = 4;
  WorkerStore store(3, spec);
  EXPECT_EQ(store.TotalSlots(), 12u);
  EXPECT_EQ(store.SlotBegin(0), 0u);
  EXPECT_EQ(store.SlotBegin(1), 4u);
  EXPECT_EQ(store.SlotBegin(3), 12u);
  EXPECT_EQ(store.WorkerOfSlot(0), 0u);
  EXPECT_EQ(store.WorkerOfSlot(3), 0u);
  EXPECT_EQ(store.WorkerOfSlot(4), 1u);
  EXPECT_EQ(store.WorkerOfSlot(11), 2u);
}

TEST(WorkerStoreTest, HeterogeneousSlotLayout) {
  SlotSpec spec;
  spec.slots_per_worker = 1;
  spec.big_worker_fraction = 0.5;
  spec.big_worker_slots = 4;
  WorkerStore store(4, spec);
  // Two of four workers upgraded, spread evenly: 2 big + 2 small = 10 slots.
  EXPECT_EQ(spec.BigWorkerCount(4), 2u);
  EXPECT_EQ(store.TotalSlots(), 10u);
  uint32_t big = 0;
  for (WorkerId w = 0; w < 4; ++w) {
    EXPECT_EQ(store.Slots(w), spec.SlotsOf(w, 4));
    big += store.Slots(w) == 4 ? 1u : 0u;
    // Round-trip: every slot in the worker's range maps back to it.
    for (SlotId s = store.SlotBegin(w); s < store.SlotBegin(w + 1); ++s) {
      EXPECT_EQ(store.WorkerOfSlot(s), w);
    }
  }
  EXPECT_EQ(big, 2u);
}

TEST(SlotSpecTest, EvenSpreadIsDeterministicAndExact) {
  SlotSpec spec;
  spec.slots_per_worker = 2;
  spec.big_worker_fraction = 0.25;
  spec.big_worker_slots = 8;
  const uint32_t n = 1000;
  uint32_t big = 0;
  for (WorkerId w = 0; w < n; ++w) {
    const uint32_t slots = spec.SlotsOf(w, n);
    EXPECT_TRUE(slots == 2 || slots == 8);
    big += slots == 8 ? 1 : 0;
  }
  EXPECT_EQ(big, spec.BigWorkerCount(n));
  EXPECT_EQ(big, 250u);
}

// --- Fig. 3 steal-group extraction -----------------------------------------

TEST(StealScanTest, CaseA1_ExecutingShortGroupAfterLongInQueue) {
  // a1) executing short; queue = [L, S, S] -> steal the two shorts.
  WorkerStore store(1);
  store.BeginExecute(0, 0, ShortTask(1));
  store.Enqueue(0, LongTask(2));
  store.Enqueue(0, ShortProbe(3));
  store.Enqueue(0, ShortProbe(4));
  const auto stolen = store.ExtractStealableGroup(0);
  ASSERT_EQ(stolen.size(), 2u);
  EXPECT_EQ(stolen[0].job, 3u);
  EXPECT_EQ(stolen[1].job, 4u);
  EXPECT_EQ(store.QueueSize(0), 1u);  // Long entry stays.
}

TEST(StealScanTest, CaseA2_GroupEndsAtNextLong) {
  // a2) executing short; queue = [S, L, S, L, S] -> steal only the first
  // group after the first long (one entry).
  WorkerStore store(1);
  store.BeginExecute(0, 0, ShortTask(1));
  store.Enqueue(0, ShortProbe(2));
  store.Enqueue(0, LongTask(3));
  store.Enqueue(0, ShortProbe(4));
  store.Enqueue(0, LongTask(5));
  store.Enqueue(0, ShortProbe(6));
  const auto stolen = store.ExtractStealableGroup(0);
  ASSERT_EQ(stolen.size(), 1u);
  EXPECT_EQ(stolen[0].job, 4u);
  // Queue keeps [S(2), L(3), L(5), S(6)].
  EXPECT_EQ(store.QueueSize(0), 4u);
}

TEST(StealScanTest, CaseB1_ExecutingLongStealsHeadGroup) {
  // b1) executing long; queue = [S, S, L] -> steal the head shorts.
  WorkerStore store(1);
  store.BeginExecute(0, 0, LongTask(1));
  store.Enqueue(0, ShortProbe(2));
  store.Enqueue(0, ShortProbe(3));
  store.Enqueue(0, LongTask(4));
  const auto stolen = store.ExtractStealableGroup(0);
  ASSERT_EQ(stolen.size(), 2u);
  EXPECT_EQ(stolen[0].job, 2u);
  EXPECT_EQ(stolen[1].job, 3u);
}

TEST(StealScanTest, CaseB2_ExecutingLongQueueStartsLong) {
  // b2) executing long; queue = [L, S, S] -> steal the shorts after the
  // queued long.
  WorkerStore store(1);
  store.BeginExecute(0, 0, LongTask(1));
  store.Enqueue(0, LongTask(2));
  store.Enqueue(0, ShortProbe(3));
  store.Enqueue(0, ShortProbe(4));
  const auto stolen = store.ExtractStealableGroup(0);
  ASSERT_EQ(stolen.size(), 2u);
  EXPECT_EQ(stolen[0].job, 3u);
}

TEST(StealScanTest, NoLongInvolvedNothingStolen) {
  // Executing short with only short entries: no head-of-line blocking by a
  // long task, nothing eligible.
  WorkerStore store(1);
  store.BeginExecute(0, 0, ShortTask(1));
  store.Enqueue(0, ShortProbe(2));
  store.Enqueue(0, ShortProbe(3));
  EXPECT_FALSE(store.HasStealableGroup(0));
  EXPECT_TRUE(store.ExtractStealableGroup(0).empty());
  EXPECT_EQ(store.QueueSize(0), 2u);
}

TEST(StealScanTest, AllLongNothingStolen) {
  WorkerStore store(1);
  store.BeginExecute(0, 0, LongTask(1));
  store.Enqueue(0, LongTask(2));
  store.Enqueue(0, LongTask(3));
  EXPECT_TRUE(store.ExtractStealableGroup(0).empty());
}

TEST(StealScanTest, IdleWorkerWithBlockedQueue) {
  // Worker not executing (e.g. between dispatches): queue = [L, S] -> the
  // short after the long is eligible.
  WorkerStore store(1);
  store.Enqueue(0, LongTask(1));
  store.Enqueue(0, ShortProbe(2));
  const auto stolen = store.ExtractStealableGroup(0);
  ASSERT_EQ(stolen.size(), 1u);
  EXPECT_EQ(stolen[0].job, 2u);
}

TEST(StealScanTest, RequestingShortProbeDoesNotCountAsLong) {
  // Worker resolving a short probe; queue all short: nothing eligible.
  WorkerStore store(1);
  store.BeginRequest(0, /*probe_is_long=*/false);
  store.Enqueue(0, ShortProbe(2));
  EXPECT_TRUE(store.ExtractStealableGroup(0).empty());
}

TEST(StealScanTest, RequestingLongProbeCountsAsLong) {
  // In the no-centralized ablation, long jobs probe too; an in-flight long
  // probe blocks the head shorts just like an executing long task.
  WorkerStore store(1);
  store.BeginRequest(0, /*probe_is_long=*/true);
  store.Enqueue(0, ShortProbe(2));
  const auto stolen = store.ExtractStealableGroup(0);
  ASSERT_EQ(stolen.size(), 1u);
  EXPECT_EQ(stolen[0].job, 2u);
}

TEST(StealScanTest, PartiallyFullMultiSlotWorkerScreensOnOccupiedLong) {
  // A multi-slot worker with one long task among its occupied slots exposes
  // its head shorts, exactly like a single-slot worker executing a long —
  // even while other slots are free or running shorts.
  SlotSpec spec;
  spec.slots_per_worker = 3;
  WorkerStore store(1, spec);
  store.BeginExecute(0, 0, ShortTask(1));
  store.BeginExecute(0, 0, LongTask(2));  // One slot still free.
  store.Enqueue(0, ShortProbe(3));
  store.Enqueue(0, ShortProbe(4));
  EXPECT_TRUE(store.HasStealableGroup(0));
  const auto stolen = store.ExtractStealableGroup(0);
  ASSERT_EQ(stolen.size(), 2u);
  EXPECT_EQ(stolen[0].job, 3u);

  // Once the long finishes, a queue of pure shorts is no longer stealable.
  store.Enqueue(0, ShortProbe(5));
  store.FinishExecute(0, /*was_long=*/true);
  EXPECT_FALSE(store.HasStealableGroup(0));
}

TEST(StealScanTest, ExtractIsRepeatable) {
  // After stealing the first group, the next group becomes eligible.
  WorkerStore store(1);
  store.BeginExecute(0, 0, LongTask(1));
  store.Enqueue(0, ShortProbe(2));
  store.Enqueue(0, LongTask(3));
  store.Enqueue(0, ShortProbe(4));
  EXPECT_EQ(store.ExtractStealableGroup(0).size(), 1u);
  EXPECT_EQ(store.ExtractStealableGroup(0).size(), 1u);
  EXPECT_TRUE(store.ExtractStealableGroup(0).empty());
  EXPECT_EQ(store.QueueSize(0), 1u);  // Only L(3) remains.
}

// --- Cluster ----------------------------------------------------------------

TEST(ClusterTest, PartitionLayout) {
  Cluster cluster(100, 83);
  EXPECT_EQ(cluster.NumWorkers(), 100u);
  EXPECT_EQ(cluster.GeneralCount(), 83u);
  EXPECT_EQ(cluster.ShortPartitionCount(), 17u);
  EXPECT_TRUE(cluster.InGeneralPartition(0));
  EXPECT_TRUE(cluster.InGeneralPartition(82));
  EXPECT_FALSE(cluster.InGeneralPartition(83));
  EXPECT_FALSE(cluster.InGeneralPartition(99));
  EXPECT_EQ(cluster.TotalSlots(), 100u);
  EXPECT_EQ(cluster.GeneralSlots(), 83u);
}

TEST(ClusterTest, GeneralSlotsCoverGeneralWorkers) {
  SlotSpec spec;
  spec.slots_per_worker = 2;
  spec.big_worker_fraction = 0.25;
  spec.big_worker_slots = 6;
  Cluster cluster(8, 6, spec);
  // The general partition is a slot-id prefix: every slot below
  // GeneralSlots() maps to a general worker, every slot above to the short
  // partition.
  for (SlotId s = 0; s < cluster.TotalSlots(); ++s) {
    EXPECT_EQ(s < cluster.GeneralSlots(),
              cluster.InGeneralPartition(cluster.WorkerOfSlot(s)));
  }
}

TEST(ClusterTest, UtilizationCountsExecutingSlotsOnly) {
  Cluster cluster(4, 4);
  EXPECT_DOUBLE_EQ(cluster.Utilization(), 0.0);
  cluster.workers().BeginExecute(0, 0, ShortTask(1));
  cluster.workers().BeginRequest(1, false);  // Requesting is not "used".
  EXPECT_DOUBLE_EQ(cluster.Utilization(), 0.25);
  cluster.workers().BeginExecute(2, 0, LongTask(2));
  EXPECT_DOUBLE_EQ(cluster.Utilization(), 0.5);
}

TEST(ClusterTest, UtilizationIsPerSlotWithMultiSlotWorkers) {
  SlotSpec spec;
  spec.slots_per_worker = 4;
  Cluster cluster(2, 2, spec);
  EXPECT_DOUBLE_EQ(cluster.Utilization(), 0.0);
  cluster.workers().BeginExecute(0, 0, ShortTask(1));
  cluster.workers().BeginExecute(0, 0, ShortTask(2));
  EXPECT_DOUBLE_EQ(cluster.Utilization(), 0.25);  // 2 of 8 slots.
  cluster.workers().BeginExecute(1, 0, ShortTask(3));
  EXPECT_DOUBLE_EQ(cluster.Utilization(), 0.375);
}

TEST(ClusterTest, TotalBusyAggregates) {
  Cluster cluster(3, 3);
  cluster.workers().BeginExecute(0, 0, QueueEntry::Task(1, 0, 100, false));
  cluster.workers().FinishExecute(0, false);
  cluster.workers().BeginExecute(2, 0, QueueEntry::Task(2, 0, 50, false));
  cluster.workers().FinishExecute(2, false);
  EXPECT_EQ(cluster.TotalBusyUs(), 150);
}

// --- JobTracker --------------------------------------------------------------

Trace TwoJobTrace() {
  Trace trace;
  Job a;
  a.task_durations = {100, 200, 300};
  Job b;
  b.task_durations = {50};
  trace.Add(a);
  trace.Add(b);
  trace.SortAndRenumber();
  return trace;
}

TEST(JobTrackerTest, HandsOutTasksExactlyOnceInOrder) {
  const Trace trace = TwoJobTrace();
  JobTracker tracker(&trace);
  auto t0 = tracker.TakeNextTask(0);
  auto t1 = tracker.TakeNextTask(0);
  auto t2 = tracker.TakeNextTask(0);
  ASSERT_TRUE(t0 && t1 && t2);
  EXPECT_EQ(t0->task_index, 0u);
  EXPECT_EQ(t0->duration, 100);
  EXPECT_EQ(t2->duration, 300);
  EXPECT_FALSE(tracker.TakeNextTask(0).has_value());  // Cancels from here on.
  EXPECT_TRUE(tracker.AllTasksAssigned(0));
}

TEST(JobTrackerTest, CompletionDetection) {
  const Trace trace = TwoJobTrace();
  JobTracker tracker(&trace);
  EXPECT_FALSE(tracker.OnTaskFinished(0, 10));
  EXPECT_FALSE(tracker.OnTaskFinished(0, 20));
  EXPECT_FALSE(tracker.AllJobsFinished());
  EXPECT_TRUE(tracker.OnTaskFinished(0, 30));
  EXPECT_TRUE(tracker.JobFinished(0));
  EXPECT_EQ(tracker.FinishTime(0), 30);
  EXPECT_TRUE(tracker.OnTaskFinished(1, 40));
  EXPECT_TRUE(tracker.AllJobsFinished());
}

TEST(JobTrackerTest, ClassificationAndEstimateStorage) {
  const Trace trace = TwoJobTrace();
  JobTracker tracker(&trace);
  tracker.SetClassification(0, /*is_long_sched=*/true, /*is_long_metrics=*/false, 12345);
  EXPECT_TRUE(tracker.IsLongSched(0));
  EXPECT_FALSE(tracker.IsLongMetrics(0));
  EXPECT_EQ(tracker.EstimateUs(0), 12345);
}

}  // namespace
}  // namespace hawk
