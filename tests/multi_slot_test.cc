// Multi-slot worker invariants: per-slot utilization accounting, steal
// screening over partially full workers, capacity actually adding
// throughput, config validation and sweepability of the slot fields, and a
// determinism case pinning slots_per_worker=4 RunResults.
#include <gtest/gtest.h>

#include <string_view>

#include "src/cluster/cluster.h"
#include "src/core/hawk_config.h"
#include "src/core/stealing_policy.h"
#include "src/scheduler/experiment.h"
#include "src/workload/arrivals.h"
#include "src/workload/cluster_workloads.h"
#include "src/workload/trace.h"

namespace hawk {
namespace {

Trace SmallTrace(uint32_t jobs, DurationUs mean_interarrival_us) {
  Trace trace = GenerateClusterWorkload(FacebookParams(jobs, 5));
  Rng arrivals_rng(11);
  AssignPoissonArrivals(&trace, mean_interarrival_us, &arrivals_rng);
  return trace;
}

HawkConfig MultiSlotConfig(uint32_t num_workers, uint32_t slots) {
  HawkConfig config;
  config.num_workers = num_workers;
  config.slots_per_worker = slots;
  config.classify_mode = ClassifyMode::kHint;
  config.seed = 7;
  return config;
}

// --- utilization / conservation accounting ----------------------------------

TEST(MultiSlotRunTest, WorkConservationAndBoundedUtilization) {
  const Trace trace = SmallTrace(150, SecondsToUs(2.0));
  DurationUs total_work = 0;
  for (const Job& job : trace.jobs()) {
    for (const DurationUs d : job.task_durations) {
      total_work += d;
    }
  }
  for (const std::string_view scheduler : {"sparrow", "centralized", "hawk", "split"}) {
    const RunResult result = RunExperiment(trace, MultiSlotConfig(60, 4), scheduler);
    // Every task executed exactly once, regardless of which slot ran it.
    EXPECT_EQ(result.total_busy_us, total_work) << scheduler;
    // Utilization is a fraction of *slots*; it can never exceed 1 even when
    // every worker runs several concurrent tasks.
    for (const double u : result.utilization_samples) {
      EXPECT_GE(u, 0.0) << scheduler;
      EXPECT_LE(u, 1.0) << scheduler;
    }
    EXPECT_EQ(result.jobs.size(), trace.NumJobs()) << scheduler;
  }
}

TEST(MultiSlotRunTest, ExtraSlotsRelieveAnOverloadedCluster) {
  // Same trace, same worker count, 4x the slots: the added capacity must not
  // make the overloaded run finish later.
  const Trace trace = SmallTrace(200, SecondsToUs(0.5));
  const RunResult one = RunExperiment(trace, MultiSlotConfig(30, 1), "sparrow");
  const RunResult four = RunExperiment(trace, MultiSlotConfig(30, 4), "sparrow");
  EXPECT_LE(four.makespan_us, one.makespan_us);
  // Identical work either way.
  EXPECT_EQ(one.total_busy_us, four.total_busy_us);
}

TEST(MultiSlotRunTest, HeterogeneousCapacityRuns) {
  const Trace trace = SmallTrace(120, SecondsToUs(2.0));
  HawkConfig config = MultiSlotConfig(60, 2);
  config.big_worker_fraction = 0.25;
  config.big_worker_slots = 8;
  for (const std::string_view scheduler : {"sparrow", "hawk"}) {
    const RunResult result = RunExperiment(trace, config, scheduler);
    EXPECT_EQ(result.jobs.size(), trace.NumJobs()) << scheduler;
    for (const double u : result.utilization_samples) {
      EXPECT_LE(u, 1.0) << scheduler;
    }
  }
}

// --- stealing over partially full workers ------------------------------------

TEST(MultiSlotStealTest, PartiallyFullVictimIsScreenedByOccupiedLong) {
  SlotSpec spec;
  spec.slots_per_worker = 2;
  Cluster cluster(4, 3, spec);  // Worker 3 is the short partition.
  // Victim worker 1: one slot runs a long task, one slot is free; two short
  // probes blocked behind the long occupancy.
  cluster.workers().BeginExecute(1, 0, QueueEntry::Task(1, 0, 1000, /*is_long=*/true));
  cluster.workers().Enqueue(1, QueueEntry::Probe(2, /*is_long=*/false));
  cluster.workers().Enqueue(1, QueueEntry::Probe(3, /*is_long=*/false));

  StealingPolicy policy(/*cap=*/8, /*seed=*/1);
  RunCounters counters;
  const auto stolen = policy.TrySteal(cluster, /*thief=*/3, &counters);
  ASSERT_EQ(stolen.size(), 2u);
  EXPECT_EQ(stolen[0].job, 2u);
  EXPECT_EQ(counters.steal_successes, 1u);
}

TEST(MultiSlotStealTest, VictimWithOnlyShortOccupancyIsRejected) {
  SlotSpec spec;
  spec.slots_per_worker = 2;
  Cluster cluster(2, 1, spec);
  // General worker 0 runs one short task (other slot free) with short
  // entries queued: no long anywhere, nothing stealable.
  cluster.workers().BeginExecute(0, 0, QueueEntry::Task(1, 0, 10, /*is_long=*/false));
  cluster.workers().Enqueue(0, QueueEntry::Probe(2, /*is_long=*/false));
  StealingPolicy policy(/*cap=*/4, /*seed=*/2);
  RunCounters counters;
  EXPECT_TRUE(policy.TrySteal(cluster, /*thief=*/1, &counters).empty());
  EXPECT_EQ(counters.steal_successes, 0u);
}

// --- config validation and sweep integration ---------------------------------

TEST(MultiSlotConfigTest, ValidateRejectsBadSlotLayouts) {
  HawkConfig config;
  config.slots_per_worker = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.slots_per_worker = 5000;  // Above the WorkerStore ceiling.
  EXPECT_FALSE(config.Validate().ok());
  config.slots_per_worker = 1;
  config.big_worker_fraction = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config.big_worker_fraction = 0.2;
  config.big_worker_slots = 0;  // Fraction set but no big capacity.
  EXPECT_FALSE(config.Validate().ok());
  config.big_worker_slots = 4;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(MultiSlotConfigTest, SlotFieldsAreSweepable) {
  HawkConfig config;
  EXPECT_TRUE(SetConfigField(&config, "slots_per_worker", 4).ok());
  EXPECT_EQ(config.slots_per_worker, 4u);
  EXPECT_TRUE(SetConfigField(&config, "big_worker_fraction", 0.25).ok());
  EXPECT_TRUE(SetConfigField(&config, "big_worker_slots", 8).ok());
  EXPECT_EQ(config.big_worker_slots, 8u);

  const Trace trace = SmallTrace(60, SecondsToUs(2.0));
  HawkConfig base;
  base.num_workers = 40;
  base.classify_mode = ClassifyMode::kHint;
  SweepSpec sweep(ExperimentSpec("sparrow").WithConfig(base).WithTrace(&trace));
  sweep.Vary("slots_per_worker", {1, 2, 4});
  const auto runs = RunSweep(sweep, /*num_threads=*/2);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].spec.label, "sparrow/slots_per_worker=1");
  EXPECT_EQ(runs[2].spec.config.slots_per_worker, 4u);
  // Each grid point is a complete, conserved run.
  for (const SweepRun& run : runs) {
    EXPECT_EQ(run.result.jobs.size(), trace.NumJobs());
    EXPECT_EQ(run.result.total_busy_us, runs[0].result.total_busy_us);
  }
}

// --- determinism pin: slots_per_worker = 4 -----------------------------------

// Runs the same trace through the same scheduler twice at slots_per_worker=4
// and demands bit-identical results (the multi-slot twin of the
// determinism_test single-slot cases).
void ExpectIdenticalMultiSlotRuns(std::string_view scheduler) {
  const Trace trace_a = SmallTrace(150, SecondsToUs(2.0));
  const Trace trace_b = SmallTrace(150, SecondsToUs(2.0));
  const HawkConfig config = MultiSlotConfig(30, 4);

  const RunResult r1 = RunExperiment(trace_a, config, scheduler);
  const RunResult r2 = RunExperiment(trace_b, config, scheduler);

  ASSERT_EQ(r1.jobs.size(), r2.jobs.size());
  for (size_t i = 0; i < r1.jobs.size(); ++i) {
    ASSERT_EQ(r1.jobs[i].finish_time, r2.jobs[i].finish_time) << "job " << i;
  }
  EXPECT_EQ(r1.makespan_us, r2.makespan_us);
  EXPECT_EQ(r1.total_busy_us, r2.total_busy_us);
  EXPECT_EQ(r1.counters.events, r2.counters.events);
  EXPECT_EQ(r1.counters.tasks_launched, r2.counters.tasks_launched);
  EXPECT_EQ(r1.counters.probes_placed, r2.counters.probes_placed);
  EXPECT_EQ(r1.counters.steal_attempts, r2.counters.steal_attempts);
  EXPECT_EQ(r1.counters.entries_stolen, r2.counters.entries_stolen);
  EXPECT_EQ(r1.utilization_samples, r2.utilization_samples);
}

TEST(MultiSlotDeterminismTest, Hawk) { ExpectIdenticalMultiSlotRuns("hawk"); }
TEST(MultiSlotDeterminismTest, Sparrow) { ExpectIdenticalMultiSlotRuns("sparrow"); }
TEST(MultiSlotDeterminismTest, Centralized) { ExpectIdenticalMultiSlotRuns("centralized"); }
TEST(MultiSlotDeterminismTest, Split) { ExpectIdenticalMultiSlotRuns("split"); }

}  // namespace
}  // namespace hawk
