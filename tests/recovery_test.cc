// Adaptive-recovery tests: the policy-level fault hooks (OnTaskLost /
// OnProbeLost / OnTaskStraggling) exercised directly against every
// registered scheduler, determinism pins for straggler-only and
// speculation-on runs (including sweep-thread invariance), work conservation
// under stragglers, and the retry budget's bound on retransmissions.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/check.h"
#include "src/cluster/job_tracker.h"
#include "src/common/random.h"
#include "src/core/hawk_config.h"
#include "src/core/job_classifier.h"
#include "src/scheduler/experiment.h"
#include "src/scheduler/policy.h"
#include "src/scheduler/registry.h"
#include "src/workload/arrivals.h"
#include "src/workload/cluster_workloads.h"
#include "src/workload/trace.h"

namespace hawk {
namespace {

// Chaos-soak hook: CI reruns the fault-labeled suites with HAWK_FAULT_SEED
// set to walk several distinct crash/loss/straggler schedules through the
// same invariants. Locally (unset) the fallback keeps runs reproducible.
// Strict parse (the bench_util::BenchScale idiom): a malformed value fails
// loudly instead of silently soaking the fallback schedule.
uint64_t EnvFaultSeed(uint64_t fallback) {
  const char* env = std::getenv("HAWK_FAULT_SEED");
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const uint64_t value = std::strtoull(env, &end, 10);
  while (end != nullptr && std::isspace(static_cast<unsigned char>(*end))) {
    ++end;
  }
  HAWK_CHECK(end != nullptr && *end == '\0' && end != env)
      << "HAWK_FAULT_SEED is not an unsigned integer: \"" << env << "\"";
  return value;
}

// A context that records placements instead of simulating them — enough to
// drive the recovery hooks of any policy in isolation.
class RecordingContext : public SchedulerContext {
 public:
  RecordingContext(Cluster* cluster, JobTracker* tracker)
      : cluster_(cluster), tracker_(tracker), rng_(17) {}

  SimTime Now() const override { return 0; }
  Rng& SchedRng() override { return rng_; }
  Cluster& GetCluster() override { return *cluster_; }
  JobTracker& Tracker() override { return *tracker_; }
  RunCounters& Counters() override { return counters_; }

  void PlaceProbe(WorkerId, JobId, bool) override { ++probes_placed; }
  void PlaceTask(WorkerId, JobId, TaskIndex, DurationUs, bool) override { ++tasks_placed; }
  void PlaceSpeculative(WorkerId worker, JobId, TaskIndex, DurationUs, bool) override {
    ++speculative_placed;
    EXPECT_LT(worker, cluster_->NumWorkers());
  }
  void DeliverStolen(WorkerId, const std::vector<QueueEntry>&) override {}

  uint64_t Placements() const { return probes_placed + tasks_placed; }
  void Reset() { probes_placed = tasks_placed = speculative_placed = 0; }

  uint64_t probes_placed = 0;
  uint64_t tasks_placed = 0;
  uint64_t speculative_placed = 0;

 private:
  Cluster* cluster_;
  JobTracker* tracker_;
  Rng rng_;
  RunCounters counters_;
};

Trace TwoJobTrace() {
  Trace trace;
  Job short_job;  // Job 0: short, 4 tasks.
  short_job.submit_time = 0;
  short_job.task_durations = {1'000, 1'000, 1'000, 1'000};
  trace.Add(short_job);
  Job long_job;  // Job 1: long, 2 tasks.
  long_job.submit_time = 0;
  long_job.task_durations = {600'000, 600'000};
  trace.Add(long_job);
  trace.SortAndRenumber();
  return trace;
}

// Every registered scheduler — built-ins and variants alike — must give a
// lost task a fresh path to a grant, replace lost probes only while the job
// still has unassigned tasks, and never replace surplus probes.
TEST(RecoveryHooksTest, EveryRegisteredSchedulerHandlesLostTasksAndProbes) {
  for (const std::string& name : SchedulerRegistry::Global().Names()) {
    SCOPED_TRACE(name);
    const SchedulerRegistry::Entry* entry = SchedulerRegistry::Global().Find(name);
    ASSERT_NE(entry, nullptr);
    HawkConfig config;
    config.num_workers = 20;
    config.classify_mode = ClassifyMode::kHint;
    std::unique_ptr<SchedulerPolicy> policy = entry->factory(config);
    ASSERT_NE(policy, nullptr);
    const uint32_t general =
        entry->general_count ? entry->general_count(config) : config.num_workers;
    Cluster cluster(config.num_workers, general, config.Slots());
    const Trace trace = TwoJobTrace();
    JobTracker tracker(&trace);
    tracker.SetClassification(0, false, false, 1'000);
    tracker.SetClassification(1, true, true, 600'000);
    RecordingContext ctx(&cluster, &tracker);
    policy->Attach(&ctx);
    policy->OnJobArrival(trace.job(0), JobClass{false, false, 1'000.0});
    policy->OnJobArrival(trace.job(1), JobClass{true, true, 600'000.0});

    // A probe lost while the short job still has unassigned tasks must be
    // replaced (probe-based policies) — unless the policy assigned
    // everything at arrival (centralized placement), where the surplus rule
    // applies immediately.
    ctx.Reset();
    policy->OnProbeLost(/*job=*/0, /*is_long=*/false);
    if (tracker.AllTasksAssigned(0)) {
      EXPECT_EQ(ctx.Placements(), 0u);
    } else {
      EXPECT_GE(ctx.Placements(), 1u);
    }

    // Lost tasks must always be re-pathed, both classes. The contract is
    // ReturnTask-then-notify, exactly as the driver's fault layer calls it.
    ctx.Reset();
    while (tracker.TakeNextTask(0).has_value()) {
    }
    tracker.ReturnTask(0, TaskAssignment{0, 1'000});
    policy->OnTaskLost(/*job=*/0, /*is_long=*/false);
    EXPECT_GE(ctx.Placements(), 1u);

    ctx.Reset();
    while (tracker.TakeNextTask(1).has_value()) {
    }
    tracker.ReturnTask(1, TaskAssignment{0, 600'000});
    policy->OnTaskLost(/*job=*/1, /*is_long=*/true);
    EXPECT_GE(ctx.Placements(), 1u);

    // With every task of the short job handed out, a lost probe is surplus
    // and must not be replaced — replacements would only resolve to cancels.
    ctx.Reset();
    while (tracker.TakeNextTask(0).has_value()) {
    }
    ASSERT_TRUE(tracker.AllTasksAssigned(0));
    policy->OnProbeLost(/*job=*/0, /*is_long=*/false);
    EXPECT_EQ(ctx.Placements(), 0u);

    // The straggling hook launches exactly one duplicate via
    // PlaceSpeculative, never a probe or an owned task.
    ctx.Reset();
    policy->OnTaskStraggling(/*job=*/0, /*task_index=*/1, /*duration=*/1'000,
                             /*is_long=*/false);
    EXPECT_EQ(ctx.speculative_placed, 1u);
    EXPECT_EQ(ctx.Placements(), 0u);
  }
}

// The registry's speculation contract: only "hawk-spec" defaults the
// subsystem on, and an explicit config threshold wins everywhere.
TEST(RecoveryHooksTest, SpeculationThresholdsPerScheduler) {
  HawkConfig off;
  HawkConfig on;
  on.speculation_threshold = 3.5;
  for (const std::string& name : SchedulerRegistry::Global().Names()) {
    SCOPED_TRACE(name);
    const SchedulerRegistry::Entry* entry = SchedulerRegistry::Global().Find(name);
    const std::unique_ptr<SchedulerPolicy> policy = entry->factory(off);
    if (name == "hawk-spec") {
      EXPECT_GT(policy->SpeculationThreshold(off), 0.0);
    } else {
      EXPECT_EQ(policy->SpeculationThreshold(off), 0.0);
    }
    EXPECT_EQ(policy->SpeculationThreshold(on), 3.5);
  }
}

// --- determinism pins --------------------------------------------------------

Trace MakeTrace(uint32_t jobs = 120, uint64_t seed = 9, double interarrival_s = 1.5) {
  Trace trace = GenerateClusterWorkload(FacebookParams(jobs, seed));
  Rng arrivals_rng(11);
  AssignPoissonArrivals(&trace, SecondsToUs(interarrival_s), &arrivals_rng);
  return trace;
}

void ExpectIdentical(const RunResult& r1, const RunResult& r2) {
  ASSERT_EQ(r1.jobs.size(), r2.jobs.size());
  for (size_t i = 0; i < r1.jobs.size(); ++i) {
    ASSERT_EQ(r1.jobs[i].id, r2.jobs[i].id);
    ASSERT_EQ(r1.jobs[i].finish_time, r2.jobs[i].finish_time) << "job " << i;
  }
  EXPECT_EQ(r1.makespan_us, r2.makespan_us);
  EXPECT_EQ(r1.total_busy_us, r2.total_busy_us);
  EXPECT_EQ(r1.counters.events, r2.counters.events);
  EXPECT_EQ(r1.counters.tasks_launched, r2.counters.tasks_launched);
  EXPECT_EQ(r1.counters.wasted_work_us, r2.counters.wasted_work_us);
  EXPECT_EQ(r1.counters.tasks_speculated, r2.counters.tasks_speculated);
  EXPECT_EQ(r1.counters.speculative_wins, r2.counters.speculative_wins);
  EXPECT_EQ(r1.counters.speculative_wasted_us, r2.counters.speculative_wasted_us);
  EXPECT_EQ(r1.counters.retries_suppressed, r2.counters.retries_suppressed);
  EXPECT_EQ(r1.counters.tasks_abandoned, r2.counters.tasks_abandoned);
}

// Straggler-only injection (no crashes, no loss): bit-identical reruns for
// every registered scheduler, and thread-count-invariant sweeps.
TEST(RecoveryDeterminismTest, StragglerOnlyRunsAreReproducible) {
  const Trace trace = MakeTrace();
  HawkConfig config;
  config.num_workers = 100;
  config.classify_mode = ClassifyMode::kHint;
  config.seed = 7;
  config.straggler_rate = 0.1;
  config.straggler_slowdown_factor = 4.0;
  config.fault_seed = EnvFaultSeed(5);
  for (const std::string& scheduler : SchedulerRegistry::Global().Names()) {
    SCOPED_TRACE(scheduler);
    ExpectIdentical(RunExperiment(trace, config, scheduler),
                    RunExperiment(trace, config, scheduler));
  }
}

TEST(RecoveryDeterminismTest, StragglerSweepThreadCountInvariant) {
  const Trace trace = MakeTrace(80);
  HawkConfig config;
  config.num_workers = 100;
  config.classify_mode = ClassifyMode::kHint;
  config.seed = 7;
  config.straggler_slowdown_factor = 6.0;
  SweepSpec sweep(ExperimentSpec("hawk").WithTrace(&trace).WithConfig(config));
  sweep.VarySchedulers(SchedulerRegistry::Global().Names())
      .Vary("straggler_rate", {0.0, 0.05, 0.2});
  const std::vector<SweepRun> serial = RunSweep(sweep, /*num_threads=*/1);
  const std::vector<SweepRun> threaded = RunSweep(sweep, /*num_threads=*/4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].spec.Label());
    ExpectIdentical(serial[i].result, threaded[i].result);
  }
}

// Speculation armed (hawk-spec) on a straggler-laced run: reproducible, and
// invariant across sweep thread counts. This pins the whole spec state
// machine — duplicate launches, first-completion-wins, loser accounting.
TEST(RecoveryDeterminismTest, SpeculationRunsAreReproducibleAcrossThreads) {
  const Trace trace = MakeTrace(80);
  HawkConfig config;
  config.num_workers = 100;
  config.classify_mode = ClassifyMode::kHint;
  config.seed = 7;
  config.straggler_rate = 0.15;
  config.straggler_slowdown_factor = 8.0;
  config.fault_seed = EnvFaultSeed(2);
  const RunResult once = RunExperiment(trace, config, "hawk-spec");
  ExpectIdentical(once, RunExperiment(trace, config, "hawk-spec"));
  EXPECT_GT(once.counters.tasks_speculated, 0u);
  SweepSpec sweep(ExperimentSpec("hawk-spec").WithTrace(&trace).WithConfig(config));
  sweep.Vary("straggler_rate", {0.1, 0.25});
  const std::vector<SweepRun> serial = RunSweep(sweep, /*num_threads=*/1);
  const std::vector<SweepRun> threaded = RunSweep(sweep, /*num_threads=*/4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].spec.Label());
    ExpectIdentical(serial[i].result, threaded[i].result);
  }
}

// --- conservation and bounds -------------------------------------------------

// Stragglers stretch executions but lose nothing: every job completes, the
// stretch shows up as wasted work, and cluster busy time splits exactly into
// useful + wasted — for every registered scheduler, speculation included.
TEST(RecoveryConservationTest, StragglersPreserveWorkConservation) {
  const Trace trace = MakeTrace();
  HawkConfig config;
  config.num_workers = 100;
  config.classify_mode = ClassifyMode::kHint;
  config.seed = 7;
  config.straggler_rate = 0.2;
  config.straggler_slowdown_factor = 4.0;
  config.fault_seed = EnvFaultSeed(0);
  for (const std::string& scheduler : SchedulerRegistry::Global().Names()) {
    SCOPED_TRACE(scheduler);
    const RunResult result = RunExperiment(trace, config, scheduler);
    ASSERT_EQ(result.jobs.size(), trace.NumJobs());
    EXPECT_GT(result.counters.wasted_work_us, 0u);
    EXPECT_EQ(result.total_busy_us,
              static_cast<uint64_t>(trace.TotalWorkUs()) + result.counters.wasted_work_us);
    EXPECT_EQ(result.counters.tasks_launched, trace.TotalTasks());
  }
}

// Under speculation the duplicates must actually win sometimes, and every
// losing copy's time must be charged to both the speculative and the general
// waste ledgers (the conservation identity above already covered totals).
TEST(RecoveryConservationTest, SpeculationWinsAndChargesLosers) {
  const Trace trace = MakeTrace();
  HawkConfig config;
  config.num_workers = 100;
  config.classify_mode = ClassifyMode::kHint;
  config.seed = 7;
  config.straggler_rate = 0.25;
  config.straggler_slowdown_factor = 16.0;
  config.fault_seed = EnvFaultSeed(0);
  const RunResult result = RunExperiment(trace, config, "hawk-spec");
  ASSERT_EQ(result.jobs.size(), trace.NumJobs());
  EXPECT_GT(result.counters.tasks_speculated, 0u);
  EXPECT_GT(result.counters.speculative_wins, 0u);
  EXPECT_GT(result.counters.speculative_wasted_us, 0u);
  EXPECT_GE(result.counters.wasted_work_us, result.counters.speculative_wasted_us);
  EXPECT_EQ(result.total_busy_us,
            static_cast<uint64_t>(trace.TotalWorkUs()) + result.counters.wasted_work_us);
}

// The retry budget bounds retransmissions under heavy loss: attempts per
// delivery never exceed budget + 1, abandonments are counted, and the run
// still completes (abandoned deliveries recover through the lost-task and
// lost-probe lanes, like a crash).
TEST(RecoveryBoundsTest, RetryBudgetBoundsRetransmitsUnderHeavyLoss) {
  const Trace trace = MakeTrace(60);
  HawkConfig config;
  config.num_workers = 100;
  config.classify_mode = ClassifyMode::kHint;
  config.seed = 7;
  config.message_loss_rate = 0.5;
  config.retry_budget = 2;
  config.fault_seed = EnvFaultSeed(0);
  for (const std::string& scheduler : SchedulerRegistry::Global().Names()) {
    SCOPED_TRACE(scheduler);
    const RunResult result = RunExperiment(trace, config, scheduler);
    ASSERT_EQ(result.jobs.size(), trace.NumJobs());
    // At loss 0.5 and budget 2, one delivery in eight exhausts its budget.
    EXPECT_GT(result.counters.retries_suppressed, 0u);
    // Every drop is either a retransmit within budget or the final drop of
    // an abandoned chain — the exact ledger the budget bound falls out of.
    EXPECT_EQ(result.counters.messages_dropped,
              result.counters.message_retries + result.counters.retries_suppressed);
    // Abandoned *task* deliveries only exist for eagerly placed tasks;
    // probe-lane grants resolve sender-locally and surface as lost probes,
    // which is every placement under sparrow and the long-job lane under
    // hawk-latebind (its only task deliveries are rare fault re-placements).
    if (scheduler != "sparrow" && scheduler != "hawk-latebind") {
      EXPECT_GT(result.counters.tasks_abandoned, 0u);
    }
  }
}

}  // namespace
}  // namespace hawk
