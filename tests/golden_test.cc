// Golden-result pins: one 64-bit digest per (scheduler, seed, sim_shards)
// cell over a fixed chaos workload, for every registered scheduler, serial
// and sharded. Any change to simulation semantics — event ordering, RNG
// stream consumption, counter accounting — shows up as a digest mismatch
// here before it can masquerade as a perf win or silently shift paper
// results. The serial (sim_shards=1) rows double as the byte-identity pin
// for the pre-sharding executor; the sharded rows pin the sanctioned
// divergence (barrier-committed steals, per-worker straggler substreams) so
// it cannot drift further.
//
// Regenerate intentionally with:  HAWK_UPDATE_GOLDENS=1 ctest -R golden_test
// and review the fixture diff like any other code change.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/hawk_config.h"
#include "src/scheduler/experiment.h"
#include "src/workload/arrivals.h"
#include "src/workload/cluster_workloads.h"
#include "src/workload/trace.h"
#include "tests/result_digest.h"

namespace hawk {
namespace {

const char* kAllSchedulers[] = {"sparrow", "centralized", "hawk", "hawk-dchoice",
                                "hawk-spec", "hawk-latebind", "split"};
constexpr uint64_t kSeeds[] = {1, 2};
constexpr uint32_t kShardCounts[] = {1, 4};

// The pinned workload lights every layer: partitioned + stealing schedulers,
// speculation (via hawk-spec), crashes, churn, message loss, jitter and
// stragglers. Rates per worker-second, well under 1/longest-task so crashed
// work terminates (see fault_test.cc).
HawkConfig GoldenConfig(uint64_t seed) {
  HawkConfig config;
  config.num_workers = 100;
  config.classify_mode = ClassifyMode::kHint;
  config.seed = seed;
  config.worker_crash_rate = 3e-7;
  config.worker_churn_rate = 2e-7;
  config.worker_downtime_us = SecondsToUs(20.0);
  config.message_loss_rate = 0.05;
  config.message_delay_jitter_us = 2'000;
  config.straggler_rate = 0.05;
  config.fault_seed = 3;
  return config;
}

Trace GoldenTrace() {
  Trace trace = GenerateClusterWorkload(FacebookParams(150, 5));
  Rng arrivals_rng(11);
  AssignPoissonArrivals(&trace, SecondsToUs(2.0), &arrivals_rng);
  return trace;
}

std::string CellKey(const std::string& scheduler, uint64_t seed, uint32_t shards) {
  std::ostringstream key;
  key << scheduler << " seed=" << seed << " shards=" << shards;
  return key.str();
}

// Fixture format: `<scheduler> seed=<n> shards=<n> <hex digest>` per line,
// '#' comments and blank lines ignored.
std::map<std::string, uint64_t> LoadGoldens(const std::string& path) {
  std::map<std::string, uint64_t> goldens;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing golden fixture " << path
                            << " (regenerate with HAWK_UPDATE_GOLDENS=1)";
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string scheduler;
    std::string seed;
    std::string shards;
    std::string digest;
    fields >> scheduler >> seed >> shards >> digest;
    EXPECT_FALSE(digest.empty()) << "malformed golden line: " << line;
    goldens[scheduler + " " + seed + " " + shards] =
        std::strtoull(digest.c_str(), nullptr, 16);
  }
  return goldens;
}

TEST(GoldenResultTest, EveryRegisteredSchedulerMatchesPinnedDigests) {
  const Trace trace = GoldenTrace();
  std::map<std::string, uint64_t> actual;
  for (const char* scheduler : kAllSchedulers) {
    for (const uint64_t seed : kSeeds) {
      for (const uint32_t shards : kShardCounts) {
        HawkConfig config = GoldenConfig(seed);
        config.sim_shards = shards;
        actual[CellKey(scheduler, seed, shards)] =
            testing::DigestResult(RunExperiment(trace, config, scheduler));
      }
    }
  }

  const char* update = std::getenv("HAWK_UPDATE_GOLDENS");
  if (update != nullptr && *update != '\0') {
    std::ofstream out(HAWK_GOLDEN_FILE);
    ASSERT_TRUE(out.is_open()) << "cannot write " << HAWK_GOLDEN_FILE;
    out << "# RunResult digests pinned by golden_test.cc. One line per\n"
           "# (scheduler, seed, sim_shards) cell over the fixed chaos\n"
           "# workload. Regenerate: HAWK_UPDATE_GOLDENS=1 ctest -R golden\n";
    for (const auto& [key, digest] : actual) {
      char hex[17];
      std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(digest));
      out << key << " " << hex << "\n";
    }
    GTEST_SKIP() << "goldens rewritten to " << HAWK_GOLDEN_FILE;
  }

  const std::map<std::string, uint64_t> goldens = LoadGoldens(HAWK_GOLDEN_FILE);
  EXPECT_EQ(goldens.size(), actual.size())
      << "golden fixture is stale (cells added/removed); regenerate with "
         "HAWK_UPDATE_GOLDENS=1 and review the diff";
  for (const auto& [key, digest] : actual) {
    const auto it = goldens.find(key);
    if (it == goldens.end()) {
      ADD_FAILURE() << "no pinned digest for " << key;
      continue;
    }
    EXPECT_EQ(it->second, digest)
        << key << ": simulation semantics changed. If intentional, regenerate "
        << "with HAWK_UPDATE_GOLDENS=1 and justify the fixture diff.";
  }
}

// The sharded executor's contract is ONE digest per (scheduler, seed) for
// every shard count > 1, regardless of pool size: the merge barrier makes
// commit order a pure function of (due, worker), never of which thread ran
// which shard or how shards slice the worker space. This test pins that by
// checking the sim_threads x sim_shards grid against the shards=4 rows the
// fixture already carries — no new fixture cells, the grid must reproduce
// the existing ones bit-for-bit. Seed 1 only: the grid multiplies runs, and
// one seed suffices to catch an ordering bug (seed 2 is covered by the main
// matrix above).
TEST(GoldenResultTest, ThreadAndShardGridReproducesPinnedShardedDigests) {
  const char* update = std::getenv("HAWK_UPDATE_GOLDENS");
  if (update != nullptr && *update != '\0') {
    GTEST_SKIP() << "fixture regeneration run";
  }
  const Trace trace = GoldenTrace();
  const std::map<std::string, uint64_t> goldens = LoadGoldens(HAWK_GOLDEN_FILE);
  constexpr uint32_t kGridShards[] = {2, 8};
  constexpr uint32_t kGridThreads[] = {1, 2, 4};
  for (const char* scheduler : kAllSchedulers) {
    const auto pinned = goldens.find(CellKey(scheduler, /*seed=*/1, /*shards=*/4));
    ASSERT_NE(pinned, goldens.end()) << "no pinned sharded digest for " << scheduler;
    for (const uint32_t shards : kGridShards) {
      for (const uint32_t threads : kGridThreads) {
        HawkConfig config = GoldenConfig(/*seed=*/1);
        config.sim_shards = shards;
        config.sim_threads = threads;
        EXPECT_EQ(testing::DigestResult(RunExperiment(trace, config, scheduler)),
                  pinned->second)
            << scheduler << " shards=" << shards << " threads=" << threads
            << ": sharded result depends on the shard/thread grid";
      }
    }
  }
}

// The digest itself must be order- and value-sensitive, or the pins above
// are vacuous.
TEST(GoldenResultTest, DigestDiscriminates) {
  const Trace trace = GoldenTrace();
  const HawkConfig config = GoldenConfig(1);
  const RunResult base = RunExperiment(trace, config, "hawk");
  const uint64_t digest = testing::DigestResult(base);
  EXPECT_EQ(digest, testing::DigestResult(RunExperiment(trace, config, "hawk")));

  HawkConfig other_seed = GoldenConfig(2);
  EXPECT_NE(digest, testing::DigestResult(RunExperiment(trace, other_seed, "hawk")));

  RunResult tweaked = RunExperiment(trace, config, "hawk");
  tweaked.counters.steal_successes ^= 1;
  EXPECT_NE(digest, testing::DigestResult(tweaked));
}

}  // namespace
}  // namespace hawk
