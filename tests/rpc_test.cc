// Tests for the RPC substrate: serializer round-trips and bounds checking,
// message bus delivery, latency injection, drain semantics, and the
// prototype's wire messages.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/rpc/message_bus.h"
#include "src/rpc/serializer.h"
#include "src/runtime/proto_messages.h"

namespace hawk {
namespace {

TEST(SerializerTest, ScalarRoundTrip) {
  rpc::Writer w;
  w.WriteU8(200);
  w.WriteU32(123456789);
  w.WriteU64(0xDEADBEEFCAFEF00DULL);
  w.WriteI64(-42);
  w.WriteBool(true);
  w.WriteBool(false);
  const auto buf = w.Take();
  rpc::Reader r(buf);
  EXPECT_EQ(r.ReadU8(), 200);
  EXPECT_EQ(r.ReadU32(), 123456789u);
  EXPECT_EQ(r.ReadU64(), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_TRUE(r.ReadBool());
  EXPECT_FALSE(r.ReadBool());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializerTest, StringAndVectorRoundTrip) {
  rpc::Writer w;
  w.WriteString("hello hawk");
  w.WriteU32Vector({1, 2, 3});
  w.WriteI64Vector({-1, 0, 1'000'000'000'000LL});
  const auto buf = w.Take();
  rpc::Reader r(buf);
  EXPECT_EQ(r.ReadString(), "hello hawk");
  EXPECT_EQ(r.ReadU32Vector(), (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_EQ(r.ReadI64Vector(), (std::vector<int64_t>{-1, 0, 1'000'000'000'000LL}));
}

TEST(SerializerTest, EmptyContainers) {
  rpc::Writer w;
  w.WriteString("");
  w.WriteU32Vector({});
  const auto buf = w.Take();
  rpc::Reader r(buf);
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_TRUE(r.ReadU32Vector().empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(ProtoMessagesTest, JobSubmitRoundTrip) {
  runtime::JobSubmitMsg m;
  m.job = 77;
  m.is_long = true;
  m.estimate_us = 123456;
  m.task_durations_us = {100, 200, 300};
  const auto decoded = runtime::JobSubmitMsg::Decode(m.Encode());
  EXPECT_EQ(decoded.job, 77u);
  EXPECT_TRUE(decoded.is_long);
  EXPECT_EQ(decoded.estimate_us, 123456);
  EXPECT_EQ(decoded.task_durations_us, m.task_durations_us);
}

TEST(ProtoMessagesTest, TaskAndStealRoundTrip) {
  runtime::TaskMsg t;
  t.job = 5;
  t.task_index = 9;
  t.duration_us = 777;
  t.is_long = true;
  t.owner = runtime::kBackendAddress;
  t.slot = 41;
  const auto task = runtime::TaskMsg::Decode(t.Encode());
  EXPECT_EQ(task.owner, runtime::kBackendAddress);
  EXPECT_EQ(task.duration_us, 777);
  EXPECT_EQ(task.slot, 41u);

  runtime::StealResponseMsg s;
  s.probes.push_back({1, runtime::kFrontendBase, 0, false});
  s.probes.push_back({2, runtime::kFrontendBase + 3, 17, true});
  const auto steal = runtime::StealResponseMsg::Decode(s.Encode());
  ASSERT_EQ(steal.probes.size(), 2u);
  EXPECT_EQ(steal.probes[1].job, 2u);
  EXPECT_EQ(steal.probes[1].frontend, runtime::kFrontendBase + 3);
  EXPECT_EQ(steal.probes[1].slot, 17u);
  EXPECT_TRUE(steal.probes[1].is_long);
}

TEST(MessageBusTest, DeliversToRegisteredHandler) {
  rpc::MessageBus bus(std::chrono::microseconds(0));
  std::atomic<int> received{0};
  bus.Register(1, [&](const rpc::BusMessage& m) {
    EXPECT_EQ(m.from, 7u);
    EXPECT_EQ(m.type, 42u);
    EXPECT_EQ(m.payload.size(), 3u);
    received.fetch_add(1);
  });
  bus.Send(7, 1, 42, {1, 2, 3});
  bus.Drain();
  EXPECT_EQ(received.load(), 1);
  EXPECT_EQ(bus.MessagesDelivered(), 1u);
}

TEST(MessageBusTest, ManyMessagesAllDelivered) {
  rpc::MessageBus bus(std::chrono::microseconds(0), 4);
  std::atomic<int> received{0};
  for (rpc::Address a = 0; a < 10; ++a) {
    bus.Register(a, [&](const rpc::BusMessage&) { received.fetch_add(1); });
  }
  for (int i = 0; i < 1000; ++i) {
    bus.Send(0, static_cast<rpc::Address>(i % 10), 1, {});
  }
  bus.Drain();
  EXPECT_EQ(received.load(), 1000);
}

TEST(MessageBusTest, LatencyIsInjected) {
  rpc::MessageBus bus(std::chrono::microseconds(20'000));  // 20 ms
  std::atomic<bool> received{false};
  bus.Register(1, [&](const rpc::BusMessage&) { received.store(true); });
  // hawk-lint: allow(HL003) this test measures the bus's real injected latency
  const auto start = std::chrono::steady_clock::now();
  bus.Send(0, 1, 1, {});
  bus.Drain();
  const auto elapsed = std::chrono::steady_clock::now() - start;  // hawk-lint: allow(HL003) real-latency measurement

  EXPECT_TRUE(received.load());
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 19);
}

TEST(MessageBusTest, HandlersCanSendMessages) {
  // Ping-pong: handler for A forwards to B, which counts.
  rpc::MessageBus bus(std::chrono::microseconds(0));
  std::atomic<int> count{0};
  bus.Register(1, [&](const rpc::BusMessage& m) { bus.Send(1, 2, m.type, {}); });
  bus.Register(2, [&](const rpc::BusMessage&) { count.fetch_add(1); });
  for (int i = 0; i < 10; ++i) {
    bus.Send(0, 1, 1, {});
  }
  bus.Drain();
  EXPECT_EQ(count.load(), 10);
}

TEST(MessageBusTest, ShutdownIsIdempotent) {
  rpc::MessageBus bus(std::chrono::microseconds(0));
  bus.Shutdown();
  bus.Shutdown();
}

}  // namespace
}  // namespace hawk
