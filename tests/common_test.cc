// Unit tests for src/common: RNG determinism and distribution sanity,
// sample/percentile math, flag parsing, status propagation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "src/common/flags.h"
#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace hawk {
namespace {

TEST(TypesTest, SecondsRoundTrip) {
  EXPECT_EQ(SecondsToUs(1.0), 1'000'000);
  EXPECT_EQ(SecondsToUs(0.5), 500'000);
  EXPECT_EQ(MillisToUs(0.5), 500);
  EXPECT_DOUBLE_EQ(UsToSeconds(2'500'000), 2.5);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(40.0);
  }
  EXPECT_NEAR(sum / n, 40.0, 0.5);
}

TEST(RngTest, GaussianMomentsConverge) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, PositiveGaussianIsPositive) {
  Rng rng(17);
  // The paper's recipe uses stddev = 2 * mean: most draws need rejection.
  for (int i = 0; i < 20000; ++i) {
    EXPECT_GT(rng.PositiveGaussian(10.0, 20.0), 0.0);
  }
}

TEST(RngTest, LogNormalMedianConverges) {
  Rng rng(19);
  std::vector<double> values;
  const int n = 100001;
  values.reserve(n);
  for (int i = 0; i < n; ++i) {
    values.push_back(rng.LogNormalMedian(100.0, 1.0));
  }
  std::nth_element(values.begin(), values.begin() + n / 2, values.end());
  EXPECT_NEAR(values[n / 2], 100.0, 3.0);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  for (const uint32_t n : {10u, 100u, 10000u}) {
    for (const uint32_t k : {1u, 5u, 10u}) {
      const auto sample = rng.SampleWithoutReplacement(n, k);
      ASSERT_EQ(sample.size(), k);
      std::set<uint32_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (const uint32_t v : sample) {
        EXPECT_LT(v, n);
      }
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(29);
  const auto sample = rng.SampleWithoutReplacement(50, 50);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(RngTest, SampleWithoutReplacementUniformCoverage) {
  // Every element should be picked roughly k/n of the time, in both the
  // dense (Fisher-Yates) and sparse (Floyd) regimes.
  for (const uint32_t n : {20u, 400u}) {
    Rng rng(31 + n);
    const uint32_t k = 4;
    const int trials = 20000;
    std::vector<int> hits(n, 0);
    for (int t = 0; t < trials; ++t) {
      for (const uint32_t v : rng.SampleWithoutReplacement(n, k)) {
        hits[v]++;
      }
    }
    const double expected = static_cast<double>(trials) * k / n;
    for (const int h : hits) {
      EXPECT_NEAR(h, expected, expected * 0.35) << "n=" << n;
    }
  }
}

TEST(RngTest, ForkStreamsAreIndependentAndDeterministic) {
  Rng parent1(77);
  Rng parent2(77);
  Rng child1 = parent1.Fork();
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(child1.Next(), child2.Next());
  }
}

TEST(SamplesTest, PercentileExactValues) {
  Samples s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(90), 90.1, 1e-9);
}

TEST(SamplesTest, SingleValue) {
  Samples s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.Min(), 42.0);
  EXPECT_DOUBLE_EQ(s.Max(), 42.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 42.0);
}

TEST(SamplesTest, PercentileMatchesSortedReference) {
  Rng rng(5);
  Samples s;
  std::vector<double> reference;
  for (int i = 0; i < 997; ++i) {
    const double v = rng.Exponential(10.0);
    s.Add(v);
    reference.push_back(v);
  }
  std::sort(reference.begin(), reference.end());
  // Interpolated percentile must be bracketed by neighboring order stats.
  for (const double pct : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const double rank = pct / 100.0 * static_cast<double>(reference.size() - 1);
    const double lo = reference[static_cast<size_t>(rank)];
    const double hi = reference[std::min(reference.size() - 1,
                                         static_cast<size_t>(rank) + 1)];
    const double v = s.Percentile(pct);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

TEST(SamplesTest, MeanVarianceStddev) {
  Samples s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.Stddev(), 2.0);
}

TEST(SamplesTest, CdfAtBounds) {
  Samples s;
  for (int i = 1; i <= 10; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.CdfAt(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.CdfAt(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.CdfAt(10.0), 1.0);
  EXPECT_DOUBLE_EQ(s.CdfAt(100.0), 1.0);
}

TEST(SamplesTest, CdfSeriesMonotonic) {
  Rng rng(3);
  Samples s;
  for (int i = 0; i < 1000; ++i) {
    s.Add(rng.Exponential(5.0));
  }
  const auto series = s.CdfSeries(30);
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].first, series[i - 1].first);
    EXPECT_GE(series[i].second, series[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(SamplesTest, AddAllMatchesAdd) {
  Samples a;
  Samples b;
  const std::vector<double> values{3.0, 1.0, 2.0};
  for (const double v : values) {
    a.Add(v);
  }
  b.AddAll(values);
  EXPECT_DOUBLE_EQ(a.Median(), b.Median());
  EXPECT_EQ(a.Count(), b.Count());
}

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog",          "--alpha=3",  "--beta", "4.5", "--gamma",
                        "--name=hello",  "positional", "--list=1,2,3"};
  Flags flags(8, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("beta", 0.0), 4.5);
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_EQ(flags.GetString("name", ""), "hello");
  EXPECT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
  const auto list = flags.GetIntList("list", {});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], 1);
  EXPECT_EQ(list[2], 3);
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 1.5), 1.5);
  EXPECT_FALSE(flags.GetBool("missing", false));
  EXPECT_EQ(flags.GetString("missing", "x"), "x");
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, BoolExplicitValues) {
  const char* argv[] = {"prog", "--on=true", "--off=false"};
  Flags flags(3, const_cast<char**>(argv));
  EXPECT_TRUE(flags.GetBool("on", false));
  EXPECT_FALSE(flags.GetBool("off", true));
}

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status err = Status::Error("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.message(), "boom");
}

TEST(StatusOrTest, HoldsValueOrError) {
  StatusOr<int> v(7);
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 7);
  StatusOr<int> e(Status::Error("nope"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().message(), "nope");
}

}  // namespace
}  // namespace hawk
