// Integration tests: full simulation runs under every scheduler, checking
// completion, work conservation, mechanism invariants, determinism, and the
// paper's qualitative results on small workloads. Property-style sweeps are
// parameterized over scheduler kind, workload, and seed.
#include <gtest/gtest.h>

#include <string>

#include "src/core/hawk_config.h"
#include "src/metrics/comparison.h"
#include "src/scheduler/experiment.h"
#include "src/workload/arrivals.h"
#include "src/workload/cluster_workloads.h"
#include "src/workload/google_trace.h"
#include "src/workload/scaling.h"

namespace hawk {
namespace {

// A small Google-like trace calibrated to `util` on `workers`.
Trace TestTrace(uint32_t jobs, uint32_t workers, double util, uint64_t seed) {
  GoogleTraceParams params;
  params.num_jobs = jobs;
  params.seed = seed;
  Trace trace = CapTasksPreserveWork(GenerateGoogleTrace(params), workers / 2);
  Rng rng(seed ^ 0xF00D);
  AssignPoissonArrivals(&trace, MeanInterarrivalForUtilization(trace, util, workers), &rng);
  return trace;
}

HawkConfig TestConfig(uint32_t workers, uint64_t seed = 42) {
  HawkConfig config;
  config.num_workers = workers;
  config.seed = seed;
  return config;
}

void CheckInvariants(const Trace& trace, const RunResult& result) {
  // Every job finished, no job lost.
  ASSERT_EQ(result.jobs.size(), trace.NumJobs());
  for (size_t i = 0; i < trace.NumJobs(); ++i) {
    const Job& job = trace.job(i);
    const JobResult& r = result.jobs[i];
    EXPECT_EQ(r.id, job.id);
    EXPECT_EQ(r.submit_time, job.submit_time);
    EXPECT_GE(r.finish_time, r.submit_time);
    // A job cannot finish faster than its longest task.
    EXPECT_GE(r.runtime_us, job.MaxTaskDurationUs());
  }
  // Work conservation: every task executed exactly once, nothing invented.
  EXPECT_EQ(result.counters.tasks_launched, trace.TotalTasks());
  EXPECT_EQ(result.total_busy_us, trace.TotalWorkUs());
  // Utilization samples well-formed.
  for (const double u : result.utilization_samples) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

// --- Parameterized invariant sweep: scheduler x load x seed -------------------

struct SweepCase {
  const char* kind;  // Registered scheduler name.
  double util;
  uint64_t seed;
};

std::string SweepName(const testing::TestParamInfo<SweepCase>& info) {
  return std::string(info.param.kind) + "_util" +
         std::to_string(static_cast<int>(info.param.util * 100)) + "_seed" +
         std::to_string(info.param.seed);
}

class SchedulerSweepTest : public testing::TestWithParam<SweepCase> {};

TEST_P(SchedulerSweepTest, InvariantsHold) {
  const SweepCase& param = GetParam();
  const uint32_t workers = 400;
  const Trace trace = TestTrace(400, workers, param.util, param.seed);
  const RunResult result =
      RunExperiment(trace, TestConfig(workers, param.seed), param.kind);
  CheckInvariants(trace, result);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerSweepTest,
    testing::Values(SweepCase{"sparrow", 0.5, 1},
                    SweepCase{"sparrow", 0.9, 2},
                    SweepCase{"sparrow", 1.3, 3},
                    SweepCase{"centralized", 0.5, 1},
                    SweepCase{"centralized", 0.9, 2},
                    SweepCase{"centralized", 1.3, 3},
                    SweepCase{"hawk", 0.5, 1},
                    SweepCase{"hawk", 0.9, 2},
                    SweepCase{"hawk", 1.3, 3},
                    SweepCase{"split", 0.5, 1},
                    SweepCase{"split", 0.9, 2},
                    SweepCase{"split", 1.3, 3}),
    SweepName);

// --- Hawk ablation invariants ---------------------------------------------------

class HawkAblationTest : public testing::TestWithParam<int> {};

TEST_P(HawkAblationTest, InvariantsHoldWithTogglesOff) {
  const int variant = GetParam();
  const uint32_t workers = 300;
  const Trace trace = TestTrace(300, workers, 0.9, 5);
  HawkConfig config = TestConfig(workers);
  config.use_centralized_long = variant != 0;
  config.use_partition = variant != 1;
  config.use_stealing = variant != 2;
  const RunResult result = RunExperiment(trace, config, "hawk");
  CheckInvariants(trace, result);
  if (variant == 2) {
    EXPECT_EQ(result.counters.steal_attempts, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Toggles, HawkAblationTest, testing::Values(0, 1, 2));

// --- Per-scheduler behavior -------------------------------------------------------

TEST(SparrowTest, ProbeCountFollowsRatio) {
  const uint32_t workers = 200;
  const Trace trace = TestTrace(100, workers, 0.5, 7);
  HawkConfig config = TestConfig(workers);
  const RunResult result = RunExperiment(trace, config, "sparrow");
  EXPECT_EQ(result.counters.probes_placed, 2 * trace.TotalTasks());
  // Every probe either launched a task or was cancelled.
  EXPECT_EQ(result.counters.probe_requests,
            result.counters.tasks_launched + result.counters.cancels);
  EXPECT_EQ(result.counters.central_tasks_placed, 0u);
}

TEST(SparrowTest, LateBindingCancelsSurplusProbes) {
  const uint32_t workers = 200;
  const Trace trace = TestTrace(100, workers, 0.3, 9);
  const RunResult result =
      RunExperiment(trace, TestConfig(workers), "sparrow");
  // With probe ratio 2 and a mostly idle cluster, about half the probes are
  // cancelled.
  EXPECT_GT(result.counters.cancels, 0u);
  EXPECT_LE(result.counters.cancels, result.counters.probes_placed);
}

TEST(CentralizedTest, NoProbesEverythingPlaced) {
  const uint32_t workers = 200;
  const Trace trace = TestTrace(100, workers, 0.5, 11);
  const RunResult result =
      RunExperiment(trace, TestConfig(workers), "centralized");
  EXPECT_EQ(result.counters.probes_placed, 0u);
  EXPECT_EQ(result.counters.central_tasks_placed, trace.TotalTasks());
  EXPECT_EQ(result.counters.steal_attempts, 0u);
}

TEST(HawkTest, LongJobsPlacedCentrallyShortJobsProbed) {
  const uint32_t workers = 300;
  const Trace trace = TestTrace(300, workers, 0.8, 13);
  const RunResult result = RunExperiment(trace, TestConfig(workers), "hawk");
  uint64_t long_tasks = 0;
  uint64_t short_tasks = 0;
  const DurationUs cutoff = TestConfig(workers).cutoff_us;
  for (const Job& job : trace.jobs()) {
    if (job.AvgTaskDurationUs() >= static_cast<double>(cutoff)) {
      long_tasks += job.NumTasks();
    } else {
      short_tasks += job.NumTasks();
    }
  }
  EXPECT_EQ(result.counters.central_tasks_placed, long_tasks);
  EXPECT_EQ(result.counters.probes_placed, 2 * short_tasks);
}

TEST(HawkTest, StealingMovesEntriesUnderLoad) {
  const uint32_t workers = 300;
  const Trace trace = TestTrace(400, workers, 1.1, 15);
  const RunResult result = RunExperiment(trace, TestConfig(workers), "hawk");
  EXPECT_GT(result.counters.steal_attempts, 0u);
  EXPECT_GT(result.counters.steal_successes, 0u);
  EXPECT_GT(result.counters.entries_stolen, 0u);
  EXPECT_GE(result.counters.steal_attempts, result.counters.steal_successes);
}

TEST(HawkTest, EmptyShortPartitionFallsBackGracefully) {
  // partition fraction 0 -> the whole cluster is general; still correct.
  const uint32_t workers = 200;
  const Trace trace = TestTrace(200, workers, 0.8, 17);
  HawkConfig config = TestConfig(workers);
  config.short_partition_fraction = 0.0;
  const RunResult result = RunExperiment(trace, config, "hawk");
  CheckInvariants(trace, result);
}

TEST(SplitTest, ShortJobsConfinedToShortPartition) {
  // In the split cluster, short probes target only the short partition. With
  // a short job whose 2t probes exceed the short partition, the round-robin
  // overflow rule must still serve all tasks.
  const uint32_t workers = 100;
  Trace trace;
  Job job;
  job.task_durations.assign(40, SecondsToUs(10));  // 80 probes on 17 workers.
  trace.Add(job);
  trace.SortAndRenumber();
  HawkConfig config = TestConfig(workers);
  const RunResult result = RunExperiment(trace, config, "split");
  CheckInvariants(trace, result);
}

// --- Determinism -------------------------------------------------------------------

TEST(DeterminismTest, IdenticalSeedsIdenticalResults) {
  const uint32_t workers = 300;
  const Trace trace = TestTrace(300, workers, 0.9, 19);
  for (const char* kind : {"sparrow", "centralized", "hawk", "split"}) {
    const RunResult a = RunExperiment(trace, TestConfig(workers, 99), kind);
    const RunResult b = RunExperiment(trace, TestConfig(workers, 99), kind);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (size_t i = 0; i < a.jobs.size(); ++i) {
      EXPECT_EQ(a.jobs[i].runtime_us, b.jobs[i].runtime_us)
          << kind << " job " << i;
    }
    EXPECT_EQ(a.counters.events, b.counters.events);
  }
}

TEST(DeterminismTest, DifferentSeedsDifferentPlacements) {
  const uint32_t workers = 300;
  const Trace trace = TestTrace(300, workers, 0.9, 21);
  const RunResult a = RunExperiment(trace, TestConfig(workers, 1), "sparrow");
  const RunResult b = RunExperiment(trace, TestConfig(workers, 2), "sparrow");
  size_t differing = 0;
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    differing += a.jobs[i].runtime_us != b.jobs[i].runtime_us ? 1u : 0u;
  }
  EXPECT_GT(differing, 0u);
}

// --- Edge cases ---------------------------------------------------------------------

TEST(EdgeCaseTest, EmptyTrace) {
  Trace trace;
  const RunResult result = RunExperiment(trace, TestConfig(50), "hawk");
  EXPECT_TRUE(result.jobs.empty());
  EXPECT_EQ(result.counters.tasks_launched, 0u);
}

TEST(EdgeCaseTest, SingleTaskJob) {
  Trace trace;
  Job job;
  job.task_durations = {SecondsToUs(5)};
  trace.Add(job);
  trace.SortAndRenumber();
  for (const char* kind : {"sparrow", "centralized", "hawk"}) {
    const RunResult result = RunExperiment(trace, TestConfig(10), kind);
    ASSERT_EQ(result.jobs.size(), 1u);
    // Runtime = network delay + (late-binding RTT for probed paths) + 5 s.
    EXPECT_GE(result.jobs[0].runtime_us, SecondsToUs(5));
    EXPECT_LE(result.jobs[0].runtime_us, SecondsToUs(5) + MillisToUs(2));
  }
}

TEST(EdgeCaseTest, SingleWorkerCluster) {
  Trace trace;
  for (int i = 0; i < 5; ++i) {
    Job job;
    job.submit_time = i * 1000;
    job.task_durations = {SecondsToUs(1)};
    trace.Add(job);
  }
  trace.SortAndRenumber();
  HawkConfig config = TestConfig(1);
  config.short_partition_fraction = 0.0;  // One worker: no short partition.
  const RunResult result = RunExperiment(trace, config, "hawk");
  CheckInvariants(trace, result);
  // Serial execution: total makespan >= 5 tasks x 1 s.
  EXPECT_GE(result.makespan_us, 5 * SecondsToUs(1));
}

TEST(EdgeCaseTest, JobLargerThanClusterCentralized) {
  // 500 tasks on 50 workers: centralized placement queues 10 deep.
  Trace trace;
  Job job;
  job.task_durations.assign(500, SecondsToUs(10));
  job.long_hint = true;
  trace.Add(job);
  trace.SortAndRenumber();
  HawkConfig config = TestConfig(50);
  config.classify_mode = ClassifyMode::kHint;
  const RunResult result = RunExperiment(trace, config, "centralized");
  CheckInvariants(trace, result);
  EXPECT_GE(result.makespan_us, 10 * SecondsToUs(10));
}

TEST(EdgeCaseTest, ShortJobWithMoreProbesThanCluster) {
  // 2t probes exceed the cluster size: round-based spreading still serves
  // every task (invariant 7 in DESIGN.md).
  Trace trace;
  Job job;
  job.task_durations.assign(60, SecondsToUs(1));  // 120 probes on 80 workers.
  trace.Add(job);
  trace.SortAndRenumber();
  const RunResult result = RunExperiment(trace, TestConfig(80), "sparrow");
  CheckInvariants(trace, result);
}

TEST(EdgeCaseTest, ZeroDurationTasks) {
  Trace trace;
  Job job;
  job.task_durations.assign(10, 0);
  trace.Add(job);
  trace.SortAndRenumber();
  const RunResult result = RunExperiment(trace, TestConfig(20), "hawk");
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_EQ(result.counters.tasks_launched, 10u);
}

// --- Paper-shaped results on small runs (fast sanity for the benches) -----------

TEST(PaperShapeTest, HawkBeatsSparrowForShortJobsUnderLoad) {
  const uint32_t workers = 500;
  const Trace trace = TestTrace(800, workers, 0.95, 23);
  const HawkConfig config = TestConfig(workers);
  const RunResult hawk = RunExperiment(trace, config, "hawk");
  const RunResult sparrow = RunExperiment(trace, config, "sparrow");
  const RunComparison cmp = CompareRuns(hawk, sparrow);
  EXPECT_LT(cmp.short_jobs.p50_ratio, 0.9);
  EXPECT_LT(cmp.short_jobs.p90_ratio, 0.9);
}

TEST(PaperShapeTest, ConvergenceAtLowLoad) {
  const uint32_t workers = 2000;
  const Trace trace = TestTrace(500, workers, 0.15, 25);
  const HawkConfig config = TestConfig(workers);
  const RunResult hawk = RunExperiment(trace, config, "hawk");
  const RunResult sparrow = RunExperiment(trace, config, "sparrow");
  const RunComparison cmp = CompareRuns(hawk, sparrow);
  EXPECT_NEAR(cmp.short_jobs.p50_ratio, 1.0, 0.1);
  EXPECT_NEAR(cmp.long_jobs.p50_ratio, 1.0, 0.1);
}

TEST(PaperShapeTest, StealingHelpsShortJobs) {
  const uint32_t workers = 500;
  const Trace trace = TestTrace(800, workers, 0.95, 27);
  HawkConfig config = TestConfig(workers);
  const RunResult with_steal = RunExperiment(trace, config, "hawk");
  config.use_stealing = false;
  const RunResult without_steal = RunExperiment(trace, config, "hawk");
  const RunComparison cmp = CompareRuns(without_steal, with_steal);
  EXPECT_GT(cmp.short_jobs.p90_ratio, 1.1);
}

}  // namespace
}  // namespace hawk
