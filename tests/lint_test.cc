// Tests for tools/hawk_lint: drives the built binary over the fixture trees
// in tests/lint_fixtures/, each of which seeds exactly the violations its
// name advertises. The binary path and fixture root are injected by CMake
// via HAWK_LINT_BINARY / HAWK_LINT_FIXTURES compile definitions.
#include <cstdio>
#include <string>

#include "gtest/gtest.h"

namespace hawk {
namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

// Runs hawk_lint with --root pointing at one fixture tree and captures
// stdout+stderr. popen() is enough here: the linter is a short-lived batch
// process with line-oriented output.
LintRun RunLint(const std::string& fixture) {
  const std::string cmd = std::string(HAWK_LINT_BINARY) + " --root=" +
                          std::string(HAWK_LINT_FIXTURES) + "/" + fixture +
                          " 2>&1";
  LintRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    return run;
  }
  char buf[512];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) {
    run.output += buf;
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (std::string::size_type pos = haystack.find(needle);
       pos != std::string::npos; pos = haystack.find(needle, pos + 1)) {
    ++count;
  }
  return count;
}

TEST(HawkLint, ListsAllRules) {
  const std::string cmd = std::string(HAWK_LINT_BINARY) + " --list-rules 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  char buf[512];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) {
    output += buf;
  }
  pclose(pipe);
  for (const char* rule :
       {"HL000", "HL001", "HL002", "HL003", "HL004", "HL005", "HL006"}) {
    EXPECT_NE(output.find(rule), std::string::npos)
        << "missing rule " << rule << " in:\n"
        << output;
  }
}

TEST(HawkLint, FlagsPositionalMessageBraceInit) {
  const LintRun run = RunLint("rule1");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "HL001"), 1) << run.output;
  EXPECT_NE(run.output.find("msg_use.cc:10"), std::string::npos) << run.output;
}

TEST(HawkLint, FlagsUnorderedIterationInDeterminismDirs) {
  const LintRun run = RunLint("rule2");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "HL002"), 1) << run.output;
  // The find()/end() membership check in the same fixture must NOT fire.
  EXPECT_NE(run.output.find("iter.cc:10"), std::string::npos) << run.output;
}

TEST(HawkLint, FlagsWallClockAndRogueRng) {
  const LintRun run = RunLint("rule3");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "HL003"), 4) << run.output;
  EXPECT_NE(run.output.find("steady_clock"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("mt19937"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("random_device"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("rand()"), std::string::npos) << run.output;
}

TEST(HawkLint, FlagsFloatAccumulationWithoutOrderedReductionComment) {
  const LintRun run = RunLint("rule4");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // Line 9 accumulates without the comment; line 12 carries it and is clean.
  EXPECT_EQ(CountOccurrences(run.output, "HL004"), 1) << run.output;
  EXPECT_NE(run.output.find("accum.cc:9"), std::string::npos) << run.output;
}

TEST(HawkLint, FlagsUncoveredCounterField) {
  const LintRun run = RunLint("rule5");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "HL005"), 1) << run.output;
  EXPECT_NE(run.output.find("'uncovered'"), std::string::npos) << run.output;
  // `covered` is asserted in the fixture test and listed in its docs.
  EXPECT_EQ(run.output.find("'covered'"), std::string::npos) << run.output;
}

TEST(HawkLint, FlagsDiscardedStatusReturn) {
  const LintRun run = RunLint("rule6");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "HL006"), 1) << run.output;
  EXPECT_NE(run.output.find("discard.cc:11"), std::string::npos) << run.output;
}

TEST(HawkLint, ReasonedSuppressionSilencesFinding) {
  const LintRun run = RunLint("suppression_valid");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("0 finding(s)"), std::string::npos) << run.output;
}

TEST(HawkLint, ReasonlessSuppressionIsRejected) {
  const LintRun run = RunLint("suppression_reasonless");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // HL000 flags the bad suppression AND the underlying HL003 still fires.
  // Match the "RULE:" diagnostic label — HL000's message text also names
  // the suppressed rule, so a bare "HL003" substring would double-count.
  EXPECT_EQ(CountOccurrences(run.output, "HL000:"), 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "HL003:"), 1) << run.output;
}

}  // namespace
}  // namespace hawk
