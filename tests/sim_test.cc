// Unit and property tests for the discrete-event engine: ordering,
// tie-breaking, clock monotonicity, run-until semantics.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/random.h"
#include "src/sim/event_queue.h"
#include "src/sim/simulation.h"

namespace hawk {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  sim::EventQueue<int> q;
  q.Push(30, 3);
  q.Push(10, 1);
  q.Push(20, 2);
  EXPECT_EQ(q.Pop().payload, 1);
  EXPECT_EQ(q.Pop().payload, 2);
  EXPECT_EQ(q.Pop().payload, 3);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, SimultaneousEventsPopInInsertionOrder) {
  sim::EventQueue<int> q;
  for (int i = 0; i < 100; ++i) {
    q.Push(5, i);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(q.Pop().payload, i);
  }
}

TEST(EventQueueTest, RandomizedOrderingProperty) {
  Rng rng(99);
  sim::EventQueue<uint64_t> q;
  for (int i = 0; i < 10000; ++i) {
    q.Push(static_cast<SimTime>(rng.NextBounded(1000)), rng.Next());
  }
  SimTime last = -1;
  while (!q.Empty()) {
    const auto entry = q.Pop();
    EXPECT_GE(entry.at, last);
    last = entry.at;
  }
}

TEST(EventQueueTest, PeekDoesNotRemove) {
  sim::EventQueue<int> q;
  q.Push(7, 42);
  EXPECT_EQ(q.Peek().payload, 42);
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_EQ(q.Pop().payload, 42);
}

TEST(SimulationTest, RunsCallbacksInOrder) {
  sim::Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulationTest, CallbacksCanScheduleMore) {
  sim::Simulation sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) {
      sim.ScheduleAfter(10, chain);
    }
  };
  sim.ScheduleAt(0, chain);
  sim.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.Now(), 40);
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  sim::Simulation sim;
  int fired = 0;
  for (SimTime t = 0; t < 100; t += 10) {
    sim.ScheduleAt(t, [&] { ++fired; });
  }
  EXPECT_EQ(sim.RunUntil(45), 5u);  // t = 0,10,20,30,40
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.Now(), 45);
  EXPECT_EQ(sim.PendingEvents(), 5u);
  sim.Run();
  EXPECT_EQ(fired, 10);
}

TEST(SimulationTest, ClockNeverMovesBackwards) {
  sim::Simulation sim;
  SimTime last_seen = 0;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const SimTime t = static_cast<SimTime>(rng.NextBounded(10000));
    sim.ScheduleAt(t, [&sim, &last_seen] {
      EXPECT_GE(sim.Now(), last_seen);
      last_seen = sim.Now();
    });
  }
  sim.Run();
}

TEST(SimulationTest, SameInstantFifo) {
  sim::Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(5, [&] { order.push_back(0); });
  sim.ScheduleAt(5, [&] { order.push_back(1); });
  sim.ScheduleAt(5, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace hawk
