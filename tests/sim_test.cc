// Unit and property tests for the discrete-event engine: ordering,
// tie-breaking, clock monotonicity, run-until semantics, and oracle checks
// of the 4-ary heap / multi-lane queue against std::priority_queue.
#include <gtest/gtest.h>

#include <queue>
#include <tuple>
#include <vector>

#include "src/common/random.h"
#include "src/sim/event_queue.h"
#include "src/sim/simulation.h"

namespace hawk {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  sim::EventQueue<int> q;
  q.Push(30, 3);
  q.Push(10, 1);
  q.Push(20, 2);
  EXPECT_EQ(q.Pop().payload, 1);
  EXPECT_EQ(q.Pop().payload, 2);
  EXPECT_EQ(q.Pop().payload, 3);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, SimultaneousEventsPopInInsertionOrder) {
  sim::EventQueue<int> q;
  for (int i = 0; i < 100; ++i) {
    q.Push(5, i);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(q.Pop().payload, i);
  }
}

TEST(EventQueueTest, RandomizedOrderingProperty) {
  Rng rng(99);
  sim::EventQueue<uint64_t> q;
  for (int i = 0; i < 10000; ++i) {
    q.Push(static_cast<SimTime>(rng.NextBounded(1000)), rng.Next());
  }
  SimTime last = -1;
  while (!q.Empty()) {
    const auto entry = q.Pop();
    EXPECT_GE(entry.at, last);
    last = entry.at;
  }
}

TEST(EventQueueTest, PeekTimeDoesNotRemove) {
  sim::EventQueue<int> q;
  q.Push(7, 42);
  EXPECT_EQ(q.PeekTime(), 7);
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_EQ(q.Pop().payload, 42);
}

// Reference ordering: min by (time, seq) where seq is global insertion order.
// std::priority_queue is a max-heap, so the comparator is inverted.
struct OracleEntry {
  SimTime at;
  uint64_t seq;
  uint64_t payload;
  bool operator<(const OracleEntry& other) const {
    return std::tie(at, seq) > std::tie(other.at, other.seq);
  }
};

TEST(EventQueueTest, InterleavedPushPopMatchesPriorityQueueOracle) {
  Rng rng(123);
  sim::EventQueue<uint64_t> q;
  std::priority_queue<OracleEntry> oracle;
  uint64_t seq = 0;
  for (int round = 0; round < 20000; ++round) {
    // Biased toward pushes early, drains fully at the end.
    const bool push = !oracle.empty() ? rng.Bernoulli(0.55) : true;
    if (push) {
      const auto at = static_cast<SimTime>(rng.NextBounded(500));
      const uint64_t payload = rng.Next();
      q.Push(at, payload);
      oracle.push(OracleEntry{at, seq++, payload});
    } else {
      const auto got = q.Pop();
      const OracleEntry want = oracle.top();
      oracle.pop();
      ASSERT_EQ(got.at, want.at) << "round " << round;
      ASSERT_EQ(got.seq, want.seq) << "round " << round;
      ASSERT_EQ(got.payload, want.payload) << "round " << round;
    }
  }
  while (!oracle.empty()) {
    const auto got = q.Pop();
    const OracleEntry want = oracle.top();
    oracle.pop();
    ASSERT_EQ(got.at, want.at);
    ASSERT_EQ(got.seq, want.seq);
    ASSERT_EQ(got.payload, want.payload);
  }
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, FifoStabilityUnderInterleavedEqualTimes) {
  // Equal-time events must pop in insertion order even when pushes and pops
  // interleave and other timestamps are mixed in.
  sim::EventQueue<int> q;
  q.Push(5, 0);
  q.Push(5, 1);
  q.Push(3, 100);
  EXPECT_EQ(q.Pop().payload, 100);
  q.Push(5, 2);
  q.Push(4, 101);
  EXPECT_EQ(q.Pop().payload, 101);
  q.Push(5, 3);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(q.Pop().payload, i);
  }
  EXPECT_TRUE(q.Empty());
}

TEST(MultiLaneEventQueueTest, MatchesPriorityQueueOracle) {
  // Lane pushes model the driver's fixed-delay classes: per-lane timestamps
  // are nondecreasing (now + constant delta with a monotone clock). The pop
  // stream must equal the (time, seq) total order over all lanes + heap.
  Rng rng(321);
  sim::MultiLaneEventQueue<uint64_t, 3> q;
  std::priority_queue<OracleEntry> oracle;
  const SimTime deltas[3] = {500, 1000, 250000};
  SimTime now = 0;
  uint64_t seq = 0;
  for (int round = 0; round < 20000; ++round) {
    const bool push = !oracle.empty() ? rng.Bernoulli(0.55) : true;
    if (push) {
      const uint64_t payload = rng.Next();
      if (rng.Bernoulli(0.7)) {
        const auto lane = static_cast<size_t>(rng.NextBounded(3));
        const SimTime at = now + deltas[lane];
        q.PushLane(lane, at, payload);
        oracle.push(OracleEntry{at, seq++, payload});
      } else {
        const SimTime at = now + static_cast<SimTime>(rng.NextBounded(100000));
        q.Push(at, payload);
        oracle.push(OracleEntry{at, seq++, payload});
      }
    } else {
      const auto got = q.Pop();
      const OracleEntry want = oracle.top();
      oracle.pop();
      ASSERT_EQ(got.at, want.at) << "round " << round;
      ASSERT_EQ(got.seq, want.seq) << "round " << round;
      ASSERT_EQ(got.payload, want.payload) << "round " << round;
      ASSERT_GE(got.at, now) << "clock moved backwards";
      now = got.at;  // Monotone clock, as in the driver loop.
    }
  }
  while (!oracle.empty()) {
    const auto got = q.Pop();
    const OracleEntry want = oracle.top();
    oracle.pop();
    ASSERT_EQ(got.seq, want.seq);
  }
  EXPECT_TRUE(q.Empty());
}

TEST(MultiLaneEventQueueTest, SameInstantOrderedBySequenceAcrossLanes) {
  sim::MultiLaneEventQueue<int, 2> q;
  q.PushLane(0, 10, 0);  // seq 0
  q.Push(10, 1);         // seq 1
  q.PushLane(1, 10, 2);  // seq 2
  q.PushLane(0, 10, 3);  // seq 3
  q.Push(10, 4);         // seq 4
  EXPECT_EQ(q.Size(), 5u);
  EXPECT_EQ(q.PeekTime(), 10);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(q.Pop().payload, i);
  }
  EXPECT_TRUE(q.Empty());
}

TEST(SimulationTest, RunsCallbacksInOrder) {
  sim::Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulationTest, CallbacksCanScheduleMore) {
  sim::Simulation sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) {
      sim.ScheduleAfter(10, chain);
    }
  };
  sim.ScheduleAt(0, chain);
  sim.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.Now(), 40);
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  sim::Simulation sim;
  int fired = 0;
  for (SimTime t = 0; t < 100; t += 10) {
    sim.ScheduleAt(t, [&] { ++fired; });
  }
  EXPECT_EQ(sim.RunUntil(45), 5u);  // t = 0,10,20,30,40
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.Now(), 45);
  EXPECT_EQ(sim.PendingEvents(), 5u);
  sim.Run();
  EXPECT_EQ(fired, 10);
}

TEST(SimulationTest, ClockNeverMovesBackwards) {
  sim::Simulation sim;
  SimTime last_seen = 0;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const SimTime t = static_cast<SimTime>(rng.NextBounded(10000));
    sim.ScheduleAt(t, [&sim, &last_seen] {
      EXPECT_GE(sim.Now(), last_seen);
      last_seen = sim.Now();
    });
  }
  sim.Run();
}

TEST(SimulationTest, SameInstantFifo) {
  sim::Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(5, [&] { order.push_back(0); });
  sim.ScheduleAt(5, [&] { order.push_back(1); });
  sim.ScheduleAt(5, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace hawk
