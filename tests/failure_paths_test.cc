// Failure-path coverage for src/common/check.h and src/common/status.h:
// CHECK macros must abort with a readable message, Status/StatusOr must
// propagate errors without aborting on the happy path.
#include <string>

#include "gtest/gtest.h"
#include "src/common/check.h"
#include "src/common/status.h"

namespace hawk {
namespace {

TEST(FailurePathsDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH({ HAWK_CHECK(1 == 2) << "custom context"; }, "CHECK failed");
}

TEST(FailurePathsDeathTest, CheckMessageIncludesExpressionAndContext) {
  EXPECT_DEATH({ HAWK_CHECK(false) << "the-context-" << 42; },
               "CHECK failed.*false.*the-context-42");
}

TEST(FailurePathsDeathTest, CheckEqAbortsAndPrintsOperands) {
  const int a = 3;
  const int b = 7;
  EXPECT_DEATH({ HAWK_CHECK_EQ(a, b); }, "\\(3 vs 7\\)");
}

TEST(FailurePathsDeathTest, CheckComparisonVariantsAbort) {
  EXPECT_DEATH({ HAWK_CHECK_NE(5, 5); }, "CHECK failed");
  EXPECT_DEATH({ HAWK_CHECK_LT(2, 1); }, "CHECK failed");
  EXPECT_DEATH({ HAWK_CHECK_LE(2, 1); }, "CHECK failed");
  EXPECT_DEATH({ HAWK_CHECK_GT(1, 2); }, "CHECK failed");
  EXPECT_DEATH({ HAWK_CHECK_GE(1, 2); }, "CHECK failed");
}

TEST(FailurePathsDeathTest, CheckPassesSilentlyOnTrue) {
  HAWK_CHECK(true) << "never evaluated";
  HAWK_CHECK_EQ(4, 4);
  HAWK_CHECK_LT(1, 2);
  SUCCEED();
}

TEST(FailurePathsTest, StatusOkAndError) {
  const Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(ok.message().empty());

  const Status err = Status::Error("disk on fire");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.message(), "disk on fire");
}

TEST(FailurePathsTest, StatusOrHoldsValue) {
  StatusOr<int> result(41);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 41);
  EXPECT_TRUE(result.status().ok());
  result.value() = 42;
  EXPECT_EQ(result.value(), 42);
}

TEST(FailurePathsTest, StatusOrPropagatesError) {
  const StatusOr<std::string> result(Status::Error("parse failed at line 3"));
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.status().ok());
  EXPECT_EQ(result.status().message(), "parse failed at line 3");
}

TEST(FailurePathsDeathTest, StatusOrValueOnErrorAborts) {
  const StatusOr<int> result(Status::Error("no value here"));
  EXPECT_DEATH({ (void)result.value(); }, "no value here");
}

TEST(FailurePathsDeathTest, StatusOrFromOkStatusAborts) {
  EXPECT_DEATH({ StatusOr<int> bad{Status::Ok()}; },
               "StatusOr constructed from OK status");
}

}  // namespace
}  // namespace hawk
