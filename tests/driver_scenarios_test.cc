// White-box timing scenarios: tiny hand-built traces whose exact completion
// times are derivable from the cost model (0.5 ms one-way network delay,
// 1 ms late-binding RTT, zero-cost scheduling and stealing), checked to the
// microsecond. These pin the driver's event mechanics in place.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/core/hawk_config.h"
#include "src/scheduler/driver.h"
#include "src/scheduler/experiment.h"
#include "src/scheduler/sharded_driver.h"
#include "src/scheduler/sparrow.h"
#include "src/workload/arrivals.h"
#include "src/workload/cluster_workloads.h"
#include "src/workload/trace.h"

namespace hawk {
namespace {

constexpr DurationUs kDelay = MillisToUs(0.5);  // One-way network delay.
constexpr DurationUs kRtt = 2 * kDelay;         // Late-binding request cost.

HawkConfig Config(uint32_t workers) {
  HawkConfig config;
  config.num_workers = workers;
  config.seed = 7;
  return config;
}

Trace SingleJob(std::vector<DurationUs> durations, SimTime submit = 0, bool long_hint = false) {
  Trace trace;
  Job job;
  job.submit_time = submit;
  job.task_durations = std::move(durations);
  job.long_hint = long_hint;
  trace.Add(job);
  trace.SortAndRenumber();
  return trace;
}

TEST(DriverScenarioTest, SparrowSingleTaskExactTiming) {
  // Probe lands at submit+0.5ms; the worker is idle so it requests
  // immediately; the task arrives one RTT later and runs for 5 s.
  const Trace trace = SingleJob({SecondsToUs(5)});
  const RunResult result = RunExperiment(trace, Config(4), "sparrow");
  EXPECT_EQ(result.jobs[0].runtime_us, kDelay + kRtt + SecondsToUs(5));
}

TEST(DriverScenarioTest, CentralizedSingleTaskExactTiming) {
  // Direct task placement skips late binding: only the one-way delay.
  const Trace trace = SingleJob({SecondsToUs(5)});
  const RunResult result = RunExperiment(trace, Config(4), "centralized");
  EXPECT_EQ(result.jobs[0].runtime_us, kDelay + SecondsToUs(5));
}

TEST(DriverScenarioTest, HawkShortJobUsesLateBinding) {
  const Trace trace = SingleJob({SecondsToUs(5)});  // Below cutoff -> short.
  const RunResult result = RunExperiment(trace, Config(4), "hawk");
  EXPECT_EQ(result.jobs[0].runtime_us, kDelay + kRtt + SecondsToUs(5));
}

TEST(DriverScenarioTest, HawkLongJobUsesDirectPlacement) {
  const Trace trace = SingleJob({SecondsToUs(2000)});  // Above cutoff -> long.
  const RunResult result = RunExperiment(trace, Config(4), "hawk");
  EXPECT_EQ(result.jobs[0].runtime_us, kDelay + SecondsToUs(2000));
}

TEST(DriverScenarioTest, ParallelTasksOverlapPerfectly) {
  // 3 tasks on 10 idle workers: distinct probes, all run in parallel.
  const Trace trace = SingleJob({SecondsToUs(5), SecondsToUs(7), SecondsToUs(3)});
  const RunResult result = RunExperiment(trace, Config(10), "sparrow");
  EXPECT_EQ(result.jobs[0].runtime_us, kDelay + kRtt + SecondsToUs(7));
}

TEST(DriverScenarioTest, SingleWorkerSerializesWithRequestGaps) {
  // 2 tasks, 1 worker: 4 probes queue on it. Timeline:
  //   t0 = 0.5ms probe1 head -> request; t1 = t0+1ms: task1 (10 s) starts.
  //   task1 ends at t1+10s; probe2 head -> request; task2 starts 1ms later,
  //   runs 20 s. Remaining probes resolve to cancels afterwards.
  const Trace trace = SingleJob({SecondsToUs(10), SecondsToUs(20)});
  const RunResult result = RunExperiment(trace, Config(1), "sparrow");
  EXPECT_EQ(result.jobs[0].runtime_us, kDelay + kRtt + SecondsToUs(10) + kRtt +
                                           SecondsToUs(20));
  EXPECT_EQ(result.counters.cancels, 2u);
}

TEST(DriverScenarioTest, CentralizedFifoBehindEarlierJob) {
  // Job A (1 task, 100 s) at t=0; job B (1 task, 10 s) at t=1 s. One worker:
  // B's task is placed behind A's and waits for it.
  Trace trace;
  Job a;
  a.submit_time = 0;
  a.task_durations = {SecondsToUs(100)};
  Job b;
  b.submit_time = SecondsToUs(1);
  b.task_durations = {SecondsToUs(10)};
  trace.Add(a);
  trace.Add(b);
  trace.SortAndRenumber();
  const RunResult result = RunExperiment(trace, Config(1), "centralized");
  // A: delay + 100 s. B finishes when A's task (started at 0.5ms) completes
  // plus 10 s; B's runtime subtracts its 1 s submit offset.
  EXPECT_EQ(result.jobs[0].runtime_us, kDelay + SecondsToUs(100));
  EXPECT_EQ(result.jobs[1].finish_time, kDelay + SecondsToUs(110));
}

TEST(DriverScenarioTest, CentralizedAvoidsBusyWorkerViaEstimates) {
  // Two workers. Job A (1 long task, est 100 s) then job B (1 long task):
  // B must be placed on the other worker even though A is still running.
  Trace trace;
  Job a;
  a.submit_time = 0;
  a.task_durations = {SecondsToUs(100)};
  Job b;
  b.submit_time = SecondsToUs(1);
  b.task_durations = {SecondsToUs(10)};
  trace.Add(a);
  trace.Add(b);
  trace.SortAndRenumber();
  const RunResult result = RunExperiment(trace, Config(2), "centralized");
  EXPECT_EQ(result.jobs[1].runtime_us, kDelay + SecondsToUs(10));  // No queueing.
}

TEST(DriverScenarioTest, HawkStealRescuesBlockedShortTask) {
  // Cluster of 2 (general: worker 0; short partition: worker 1, with
  // fraction 0.5). A long job (1 task, 2000 s) occupies worker 0; a short
  // job's probes land behind it (both probes must go to... the whole
  // cluster). Worker 1 is idle, so the short job runs there or is stolen —
  // either way it must NOT wait 2000 s.
  Trace trace;
  Job long_job;
  long_job.submit_time = 0;
  long_job.task_durations = {SecondsToUs(2000)};
  Job short_job;
  short_job.submit_time = SecondsToUs(1);
  short_job.task_durations = {SecondsToUs(10)};
  trace.Add(long_job);
  trace.Add(short_job);
  trace.SortAndRenumber();
  HawkConfig config = Config(2);
  config.short_partition_fraction = 0.5;
  const RunResult result = RunExperiment(trace, config, "hawk");
  EXPECT_LT(result.jobs[1].runtime_us, SecondsToUs(20));
}

TEST(DriverScenarioTest, StealOnlyPathRescuesBlockedShort) {
  // Force the steal path deterministically: 2 general workers, no short
  // partition. Worker capacity is saturated by two long tasks; a short job's
  // two probes land behind them (one per worker, without replacement). When
  // the first long task completes, that worker pulls the short probe from
  // its own queue; but the OTHER worker's short probe is now surplus.
  // Meanwhile a mid-length filler keeps one worker busy long enough that a
  // successful steal is observable via counters at some point in the run.
  Trace trace;
  Job long_a;
  long_a.submit_time = 0;
  long_a.task_durations = {SecondsToUs(3000), SecondsToUs(3000)};
  Job short_b;
  short_b.submit_time = SecondsToUs(1);
  short_b.task_durations = {SecondsToUs(10), SecondsToUs(10)};
  trace.Add(long_a);
  trace.Add(short_b);
  trace.SortAndRenumber();
  HawkConfig config = Config(2);
  config.short_partition_fraction = 0.0;
  config.classify_mode = ClassifyMode::kCutoff;
  const RunResult result = RunExperiment(trace, config, "hawk");
  // Both long tasks run in parallel for 3000 s; the short tasks are queued
  // behind them with nobody idle to steal -> short job waits for a long
  // completion. This documents the "no idle worker, no rescue" boundary.
  EXPECT_GE(result.jobs[1].runtime_us, SecondsToUs(2990));
}

TEST(DriverScenarioTest, UtilizationSamplesMatchKnownSchedule) {
  // One worker, one 250 s task: utilization is 1.0 at samples t=100 s and
  // t=200 s, and the sampler stops once the job finished.
  const Trace trace = SingleJob({SecondsToUs(250)});
  const RunResult result = RunExperiment(trace, Config(1), "centralized");
  ASSERT_GE(result.utilization_samples.size(), 2u);
  EXPECT_DOUBLE_EQ(result.utilization_samples[0], 1.0);
  EXPECT_DOUBLE_EQ(result.utilization_samples[1], 1.0);
  EXPECT_LE(result.utilization_samples.size(), 3u);
}

TEST(DriverScenarioTest, QueueWaitTelemetryExactValue) {
  // Single worker, two directly-placed tasks: the second waits exactly the
  // first task's duration.
  Trace trace;
  Job job;
  job.submit_time = 0;
  job.task_durations = {SecondsToUs(100), SecondsToUs(10)};
  job.long_hint = true;
  trace.Add(job);
  trace.SortAndRenumber();
  HawkConfig config = Config(1);
  config.classify_mode = ClassifyMode::kHint;
  const RunResult result = RunExperiment(trace, config, "centralized");
  // Task 1 waits 0; task 2 waits 100 s (placed at the same instant).
  EXPECT_EQ(result.counters.long_queue_wait_us, static_cast<uint64_t>(SecondsToUs(100)));
}

TEST(DriverScenarioTest, LateArrivalSeesEmptyCluster) {
  // A job submitted at t=10 000 s on an idle cluster behaves identically to
  // one at t=0 (clock translation invariance).
  const Trace at_zero = SingleJob({SecondsToUs(5)}, 0);
  const Trace late = SingleJob({SecondsToUs(5)}, SecondsToUs(10000));
  const RunResult r0 = RunExperiment(at_zero, Config(4), "sparrow");
  const RunResult r1 = RunExperiment(late, Config(4), "sparrow");
  EXPECT_EQ(r0.jobs[0].runtime_us, r1.jobs[0].runtime_us);
}

// --- metamorphic properties --------------------------------------------------
// Relations that must hold between *pairs* of runs, checked against both the
// serial executor (sim_shards=1) and the sharded one (sim_shards=4). These
// catch semantic bugs no single-run pin can: accidental dependence on trace
// add-order, non-linear time arithmetic, or worker-identity leaks.

void ExpectSameOutcome(const RunResult& r1, const RunResult& r2) {
  ASSERT_EQ(r1.jobs.size(), r2.jobs.size());
  for (size_t i = 0; i < r1.jobs.size(); ++i) {
    ASSERT_EQ(r1.jobs[i].id, r2.jobs[i].id);
    ASSERT_EQ(r1.jobs[i].submit_time, r2.jobs[i].submit_time) << "job " << i;
    ASSERT_EQ(r1.jobs[i].finish_time, r2.jobs[i].finish_time) << "job " << i;
  }
  EXPECT_EQ(r1.makespan_us, r2.makespan_us);
  EXPECT_EQ(r1.total_busy_us, r2.total_busy_us);
  EXPECT_EQ(r1.utilization_samples, r2.utilization_samples);
}

// Same-shape job cohorts at shared submit instants: feeding them to Trace in
// any add-order must be invisible after SortAndRenumber, through the whole
// simulation. Guards against add-order leaking into ids/placement.
TEST(MetamorphicTest, EqualTimeArrivalOrderIsInvisible) {
  const std::vector<DurationUs> shapes[] = {
      {SecondsToUs(5), SecondsToUs(7)},
      {SecondsToUs(10)},
      {SecondsToUs(2000), SecondsToUs(2000)},  // Long cohort (hinted).
      {SecondsToUs(1), SecondsToUs(1), SecondsToUs(1)},
  };
  std::vector<Job> jobs;
  for (size_t cohort = 0; cohort < 4; ++cohort) {
    for (int copy = 0; copy < 3; ++copy) {
      Job job;
      job.submit_time = SecondsToUs(static_cast<double>(cohort));
      job.task_durations = shapes[cohort];
      job.long_hint = cohort == 2;
      jobs.push_back(job);
    }
  }
  auto make_trace = [&jobs](size_t rotate) {
    Trace trace;
    for (size_t i = 0; i < jobs.size(); ++i) {
      trace.Add(jobs[(i + rotate) % jobs.size()]);
    }
    trace.SortAndRenumber();
    return trace;
  };
  const Trace canonical = make_trace(0);
  const Trace rotated = make_trace(5);    // Splits every cohort across the seam.
  const Trace reversed = [&jobs] {
    Trace trace;
    for (size_t i = jobs.size(); i > 0; --i) {
      trace.Add(jobs[i - 1]);
    }
    trace.SortAndRenumber();
    return trace;
  }();
  for (const char* scheduler : {"sparrow", "hawk"}) {
    for (const uint32_t shards : {1u, 4u}) {
      SCOPED_TRACE(std::string(scheduler) + " shards=" + std::to_string(shards));
      HawkConfig config = Config(10);
      config.classify_mode = ClassifyMode::kHint;
      config.sim_shards = shards;
      const RunResult base = RunExperiment(canonical, config, scheduler);
      ExpectSameOutcome(base, RunExperiment(rotated, config, scheduler));
      ExpectSameOutcome(base, RunExperiment(reversed, config, scheduler));
    }
  }
}

// Scaling every time input by k=2 (task durations, submit times, and the
// config's time knobs: network delay, classification cutoff, sample period,
// steal-retry interval) must scale every output time by exactly 2. k is a
// power of two so even the double-valued runtime estimates scale exactly.
// Noise and faults stay off: their draws are not time-linear.
TEST(MetamorphicTest, DoublingAllTimeInputsDoublesAllOutputs) {
  constexpr int64_t kScale = 2;
  Trace base_trace = GenerateClusterWorkload(FacebookParams(120, 5));
  {
    Rng arrivals_rng(11);
    AssignPoissonArrivals(&base_trace, SecondsToUs(2.0), &arrivals_rng);
  }
  Trace scaled_trace;
  for (const Job& job : base_trace.jobs()) {
    Job scaled = job;
    scaled.submit_time *= kScale;
    for (DurationUs& duration : scaled.task_durations) {
      duration *= kScale;
    }
    scaled_trace.Add(scaled);
  }
  scaled_trace.SortAndRenumber();

  HawkConfig base_config;
  base_config.num_workers = 60;
  base_config.classify_mode = ClassifyMode::kHint;
  base_config.seed = 7;
  HawkConfig scaled_config = base_config;
  scaled_config.net_delay_us *= kScale;
  scaled_config.cutoff_us *= kScale;
  scaled_config.util_sample_period_us *= kScale;
  scaled_config.steal_retry_interval_us *= kScale;

  for (const char* scheduler : {"sparrow", "centralized", "hawk", "split"}) {
    for (const uint32_t shards : {1u, 4u}) {
      SCOPED_TRACE(std::string(scheduler) + " shards=" + std::to_string(shards));
      HawkConfig b = base_config;
      b.sim_shards = shards;
      HawkConfig s = scaled_config;
      s.sim_shards = shards;
      const RunResult r1 = RunExperiment(base_trace, b, scheduler);
      const RunResult r2 = RunExperiment(scaled_trace, s, scheduler);
      ASSERT_EQ(r1.jobs.size(), r2.jobs.size());
      for (size_t i = 0; i < r1.jobs.size(); ++i) {
        ASSERT_EQ(r1.jobs[i].id, r2.jobs[i].id);
        ASSERT_EQ(kScale * r1.jobs[i].finish_time, r2.jobs[i].finish_time) << "job " << i;
        ASSERT_EQ(kScale * r1.jobs[i].runtime_us, r2.jobs[i].runtime_us) << "job " << i;
      }
      EXPECT_EQ(kScale * r1.makespan_us, r2.makespan_us);
      EXPECT_EQ(kScale * r1.total_busy_us, r2.total_busy_us);
    }
  }
}

// Forwards every placement through a worker-id permutation and every
// execution callback through its inverse, so the wrapped policy lives in the
// relabeled cluster without knowing it.
class RelabelContext : public SchedulerContext {
 public:
  RelabelContext(SchedulerContext* real, std::vector<WorkerId> perm)
      : real_(real), perm_(std::move(perm)) {}
  SimTime Now() const override { return real_->Now(); }
  Rng& SchedRng() override { return real_->SchedRng(); }
  Cluster& GetCluster() override { return real_->GetCluster(); }
  JobTracker& Tracker() override { return real_->Tracker(); }
  RunCounters& Counters() override { return real_->Counters(); }
  void PlaceProbe(WorkerId worker, JobId job, bool is_long) override {
    real_->PlaceProbe(perm_[worker], job, is_long);
  }
  void PlaceTask(WorkerId worker, JobId job, TaskIndex task_index, DurationUs duration,
                 bool is_long) override {
    real_->PlaceTask(perm_[worker], job, task_index, duration, is_long);
  }
  void PlaceSpeculative(WorkerId worker, JobId job, TaskIndex task_index, DurationUs duration,
                        bool is_long) override {
    real_->PlaceSpeculative(perm_[worker], job, task_index, duration, is_long);
  }
  void DeliverStolen(WorkerId thief, const std::vector<QueueEntry>& entries) override {
    real_->DeliverStolen(perm_[thief], entries);
  }

 private:
  SchedulerContext* real_;
  std::vector<WorkerId> perm_;
};

class RelabelPolicy : public SchedulerPolicy {
 public:
  RelabelPolicy(std::unique_ptr<SchedulerPolicy> inner, std::vector<WorkerId> perm)
      : inner_(std::move(inner)), perm_(std::move(perm)), inverse_(perm_.size()) {
    for (size_t w = 0; w < perm_.size(); ++w) {
      inverse_[perm_[w]] = static_cast<WorkerId>(w);
    }
  }
  void Attach(SchedulerContext* ctx) override {
    SchedulerPolicy::Attach(ctx);
    relabel_ = std::make_unique<RelabelContext>(ctx, perm_);
    inner_->Attach(relabel_.get());
  }
  RuntimeShape ShapeForRuntime(const HawkConfig& config) const override {
    return inner_->ShapeForRuntime(config);
  }
  double SpeculationThreshold(const HawkConfig& config) const override {
    return inner_->SpeculationThreshold(config);
  }
  void OnJobArrival(const Job& job, const JobClass& cls) override {
    inner_->OnJobArrival(job, cls);
  }
  void OnWorkerIdle(WorkerId worker) override { inner_->OnWorkerIdle(inverse_[worker]); }
  void OnTaskStart(WorkerId worker, const QueueEntry& task) override {
    inner_->OnTaskStart(inverse_[worker], task);
  }
  void OnTaskFinish(WorkerId worker, JobId job, bool is_long) override {
    inner_->OnTaskFinish(inverse_[worker], job, is_long);
  }
  void OnTaskLost(JobId job, bool is_long) override { inner_->OnTaskLost(job, is_long); }
  void OnProbeLost(JobId job, bool is_long) override { inner_->OnProbeLost(job, is_long); }
  void OnTaskStraggling(JobId job, TaskIndex task_index, DurationUs duration,
                        bool is_long) override {
    inner_->OnTaskStraggling(job, task_index, duration, is_long);
  }
  std::string_view Name() const override { return "relabel"; }

 private:
  std::unique_ptr<SchedulerPolicy> inner_;
  std::vector<WorkerId> perm_;
  std::vector<WorkerId> inverse_;
  std::unique_ptr<RelabelContext> relabel_;
};

// Uniform workers are exchangeable: routing sparrow (no partition, no
// stealing) through a worker-id reversal must be invisible. The serial
// executor resolves same-instant ties by placement order — a relabeling-
// equivariant key — so there the invariance is bit-exact: every job time,
// the busy total and the utilization series match. The sharded executor's
// canonical commit order is (due, worker id): relabeling reorders
// same-microsecond commits between workers (e.g. which of two simultaneous
// grants takes which task duration), so worker identity is semantically
// load-bearing at epoch barriers and only the *distribution* is invariant —
// work conservation exactly, runtime statistics tightly.
TEST(MetamorphicTest, WorkerRelabelingIsInvisible) {
  Trace trace = GenerateClusterWorkload(FacebookParams(80, 5));
  {
    Rng arrivals_rng(11);
    AssignPoissonArrivals(&trace, SecondsToUs(2.0), &arrivals_rng);
  }
  HawkConfig config;
  config.num_workers = 40;
  config.classify_mode = ClassifyMode::kHint;
  config.seed = 7;
  std::vector<WorkerId> reversal(config.num_workers);
  for (WorkerId w = 0; w < config.num_workers; ++w) {
    reversal[w] = config.num_workers - 1 - w;
  }
  auto run = [&trace](const HawkConfig& c, std::unique_ptr<SchedulerPolicy> policy) {
    if (c.sim_shards > 1) {
      ShardedSimulationDriver driver(&trace, c, c.num_workers, policy.get());
      return driver.Run();
    }
    SimulationDriver driver(&trace, c, c.num_workers, policy.get());
    return driver.Run();
  };
  auto relabeled_policy = [&reversal, &config] {
    return std::make_unique<RelabelPolicy>(
        std::make_unique<SparrowPolicy>(config.probe_ratio), reversal);
  };

  // Serial: bit-exact.
  const RunResult serial_base =
      run(config, std::make_unique<SparrowPolicy>(config.probe_ratio));
  ExpectSameOutcome(serial_base, run(config, relabeled_policy()));

  // Sharded: exact conservation, statistical runtime invariance.
  HawkConfig sharded = config;
  sharded.sim_shards = 4;
  const RunResult base = run(sharded, std::make_unique<SparrowPolicy>(config.probe_ratio));
  const RunResult relabel = run(sharded, relabeled_policy());
  ASSERT_EQ(base.jobs.size(), relabel.jobs.size());
  EXPECT_EQ(base.total_busy_us, relabel.total_busy_us);  // Same work, done once.
  EXPECT_EQ(base.counters.tasks_launched, relabel.counters.tasks_launched);
  double base_mean = 0.0;
  double relabel_mean = 0.0;
  // Mean of per-job runtimes (equal weights, so plain sums compare safely).
  for (size_t i = 0; i < base.jobs.size(); ++i) {
    base_mean += static_cast<double>(base.jobs[i].runtime_us);
    relabel_mean += static_cast<double>(relabel.jobs[i].runtime_us);
  }
  base_mean /= static_cast<double>(base.jobs.size());
  relabel_mean /= static_cast<double>(relabel.jobs.size());
  EXPECT_NEAR(relabel_mean / base_mean, 1.0, 0.02);
  const double makespan_ratio =
      static_cast<double>(relabel.makespan_us) / static_cast<double>(base.makespan_us);
  EXPECT_NEAR(makespan_ratio, 1.0, 0.02);
}

}  // namespace
}  // namespace hawk
