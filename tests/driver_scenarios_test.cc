// White-box timing scenarios: tiny hand-built traces whose exact completion
// times are derivable from the cost model (0.5 ms one-way network delay,
// 1 ms late-binding RTT, zero-cost scheduling and stealing), checked to the
// microsecond. These pin the driver's event mechanics in place.
#include <gtest/gtest.h>

#include "src/core/hawk_config.h"
#include "src/scheduler/experiment.h"
#include "src/workload/trace.h"

namespace hawk {
namespace {

constexpr DurationUs kDelay = MillisToUs(0.5);  // One-way network delay.
constexpr DurationUs kRtt = 2 * kDelay;         // Late-binding request cost.

HawkConfig Config(uint32_t workers) {
  HawkConfig config;
  config.num_workers = workers;
  config.seed = 7;
  return config;
}

Trace SingleJob(std::vector<DurationUs> durations, SimTime submit = 0, bool long_hint = false) {
  Trace trace;
  Job job;
  job.submit_time = submit;
  job.task_durations = std::move(durations);
  job.long_hint = long_hint;
  trace.Add(job);
  trace.SortAndRenumber();
  return trace;
}

TEST(DriverScenarioTest, SparrowSingleTaskExactTiming) {
  // Probe lands at submit+0.5ms; the worker is idle so it requests
  // immediately; the task arrives one RTT later and runs for 5 s.
  const Trace trace = SingleJob({SecondsToUs(5)});
  const RunResult result = RunExperiment(trace, Config(4), "sparrow");
  EXPECT_EQ(result.jobs[0].runtime_us, kDelay + kRtt + SecondsToUs(5));
}

TEST(DriverScenarioTest, CentralizedSingleTaskExactTiming) {
  // Direct task placement skips late binding: only the one-way delay.
  const Trace trace = SingleJob({SecondsToUs(5)});
  const RunResult result = RunExperiment(trace, Config(4), "centralized");
  EXPECT_EQ(result.jobs[0].runtime_us, kDelay + SecondsToUs(5));
}

TEST(DriverScenarioTest, HawkShortJobUsesLateBinding) {
  const Trace trace = SingleJob({SecondsToUs(5)});  // Below cutoff -> short.
  const RunResult result = RunExperiment(trace, Config(4), "hawk");
  EXPECT_EQ(result.jobs[0].runtime_us, kDelay + kRtt + SecondsToUs(5));
}

TEST(DriverScenarioTest, HawkLongJobUsesDirectPlacement) {
  const Trace trace = SingleJob({SecondsToUs(2000)});  // Above cutoff -> long.
  const RunResult result = RunExperiment(trace, Config(4), "hawk");
  EXPECT_EQ(result.jobs[0].runtime_us, kDelay + SecondsToUs(2000));
}

TEST(DriverScenarioTest, ParallelTasksOverlapPerfectly) {
  // 3 tasks on 10 idle workers: distinct probes, all run in parallel.
  const Trace trace = SingleJob({SecondsToUs(5), SecondsToUs(7), SecondsToUs(3)});
  const RunResult result = RunExperiment(trace, Config(10), "sparrow");
  EXPECT_EQ(result.jobs[0].runtime_us, kDelay + kRtt + SecondsToUs(7));
}

TEST(DriverScenarioTest, SingleWorkerSerializesWithRequestGaps) {
  // 2 tasks, 1 worker: 4 probes queue on it. Timeline:
  //   t0 = 0.5ms probe1 head -> request; t1 = t0+1ms: task1 (10 s) starts.
  //   task1 ends at t1+10s; probe2 head -> request; task2 starts 1ms later,
  //   runs 20 s. Remaining probes resolve to cancels afterwards.
  const Trace trace = SingleJob({SecondsToUs(10), SecondsToUs(20)});
  const RunResult result = RunExperiment(trace, Config(1), "sparrow");
  EXPECT_EQ(result.jobs[0].runtime_us, kDelay + kRtt + SecondsToUs(10) + kRtt +
                                           SecondsToUs(20));
  EXPECT_EQ(result.counters.cancels, 2u);
}

TEST(DriverScenarioTest, CentralizedFifoBehindEarlierJob) {
  // Job A (1 task, 100 s) at t=0; job B (1 task, 10 s) at t=1 s. One worker:
  // B's task is placed behind A's and waits for it.
  Trace trace;
  Job a;
  a.submit_time = 0;
  a.task_durations = {SecondsToUs(100)};
  Job b;
  b.submit_time = SecondsToUs(1);
  b.task_durations = {SecondsToUs(10)};
  trace.Add(a);
  trace.Add(b);
  trace.SortAndRenumber();
  const RunResult result = RunExperiment(trace, Config(1), "centralized");
  // A: delay + 100 s. B finishes when A's task (started at 0.5ms) completes
  // plus 10 s; B's runtime subtracts its 1 s submit offset.
  EXPECT_EQ(result.jobs[0].runtime_us, kDelay + SecondsToUs(100));
  EXPECT_EQ(result.jobs[1].finish_time, kDelay + SecondsToUs(110));
}

TEST(DriverScenarioTest, CentralizedAvoidsBusyWorkerViaEstimates) {
  // Two workers. Job A (1 long task, est 100 s) then job B (1 long task):
  // B must be placed on the other worker even though A is still running.
  Trace trace;
  Job a;
  a.submit_time = 0;
  a.task_durations = {SecondsToUs(100)};
  Job b;
  b.submit_time = SecondsToUs(1);
  b.task_durations = {SecondsToUs(10)};
  trace.Add(a);
  trace.Add(b);
  trace.SortAndRenumber();
  const RunResult result = RunExperiment(trace, Config(2), "centralized");
  EXPECT_EQ(result.jobs[1].runtime_us, kDelay + SecondsToUs(10));  // No queueing.
}

TEST(DriverScenarioTest, HawkStealRescuesBlockedShortTask) {
  // Cluster of 2 (general: worker 0; short partition: worker 1, with
  // fraction 0.5). A long job (1 task, 2000 s) occupies worker 0; a short
  // job's probes land behind it (both probes must go to... the whole
  // cluster). Worker 1 is idle, so the short job runs there or is stolen —
  // either way it must NOT wait 2000 s.
  Trace trace;
  Job long_job;
  long_job.submit_time = 0;
  long_job.task_durations = {SecondsToUs(2000)};
  Job short_job;
  short_job.submit_time = SecondsToUs(1);
  short_job.task_durations = {SecondsToUs(10)};
  trace.Add(long_job);
  trace.Add(short_job);
  trace.SortAndRenumber();
  HawkConfig config = Config(2);
  config.short_partition_fraction = 0.5;
  const RunResult result = RunExperiment(trace, config, "hawk");
  EXPECT_LT(result.jobs[1].runtime_us, SecondsToUs(20));
}

TEST(DriverScenarioTest, StealOnlyPathRescuesBlockedShort) {
  // Force the steal path deterministically: 2 general workers, no short
  // partition. Worker capacity is saturated by two long tasks; a short job's
  // two probes land behind them (one per worker, without replacement). When
  // the first long task completes, that worker pulls the short probe from
  // its own queue; but the OTHER worker's short probe is now surplus.
  // Meanwhile a mid-length filler keeps one worker busy long enough that a
  // successful steal is observable via counters at some point in the run.
  Trace trace;
  Job long_a;
  long_a.submit_time = 0;
  long_a.task_durations = {SecondsToUs(3000), SecondsToUs(3000)};
  Job short_b;
  short_b.submit_time = SecondsToUs(1);
  short_b.task_durations = {SecondsToUs(10), SecondsToUs(10)};
  trace.Add(long_a);
  trace.Add(short_b);
  trace.SortAndRenumber();
  HawkConfig config = Config(2);
  config.short_partition_fraction = 0.0;
  config.classify_mode = ClassifyMode::kCutoff;
  const RunResult result = RunExperiment(trace, config, "hawk");
  // Both long tasks run in parallel for 3000 s; the short tasks are queued
  // behind them with nobody idle to steal -> short job waits for a long
  // completion. This documents the "no idle worker, no rescue" boundary.
  EXPECT_GE(result.jobs[1].runtime_us, SecondsToUs(2990));
}

TEST(DriverScenarioTest, UtilizationSamplesMatchKnownSchedule) {
  // One worker, one 250 s task: utilization is 1.0 at samples t=100 s and
  // t=200 s, and the sampler stops once the job finished.
  const Trace trace = SingleJob({SecondsToUs(250)});
  const RunResult result = RunExperiment(trace, Config(1), "centralized");
  ASSERT_GE(result.utilization_samples.size(), 2u);
  EXPECT_DOUBLE_EQ(result.utilization_samples[0], 1.0);
  EXPECT_DOUBLE_EQ(result.utilization_samples[1], 1.0);
  EXPECT_LE(result.utilization_samples.size(), 3u);
}

TEST(DriverScenarioTest, QueueWaitTelemetryExactValue) {
  // Single worker, two directly-placed tasks: the second waits exactly the
  // first task's duration.
  Trace trace;
  Job job;
  job.submit_time = 0;
  job.task_durations = {SecondsToUs(100), SecondsToUs(10)};
  job.long_hint = true;
  trace.Add(job);
  trace.SortAndRenumber();
  HawkConfig config = Config(1);
  config.classify_mode = ClassifyMode::kHint;
  const RunResult result = RunExperiment(trace, config, "centralized");
  // Task 1 waits 0; task 2 waits 100 s (placed at the same instant).
  EXPECT_EQ(result.counters.long_queue_wait_us, static_cast<uint64_t>(SecondsToUs(100)));
}

TEST(DriverScenarioTest, LateArrivalSeesEmptyCluster) {
  // A job submitted at t=10 000 s on an idle cluster behaves identically to
  // one at t=0 (clock translation invariance).
  const Trace at_zero = SingleJob({SecondsToUs(5)}, 0);
  const Trace late = SingleJob({SecondsToUs(5)}, SecondsToUs(10000));
  const RunResult r0 = RunExperiment(at_zero, Config(4), "sparrow");
  const RunResult r1 = RunExperiment(late, Config(4), "sparrow");
  EXPECT_EQ(r0.jobs[0].runtime_us, r1.jobs[0].runtime_us);
}

}  // namespace
}  // namespace hawk
