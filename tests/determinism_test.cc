// Determinism guarantees: a seed fully determines the Rng stream and an
// end-to-end simulation result. Guards future parallelization work against
// accidentally introducing run-to-run nondeterminism.
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/random.h"
#include "src/core/hawk_config.h"
#include "src/scheduler/experiment.h"
#include "src/workload/arrivals.h"
#include "src/workload/cluster_workloads.h"
#include "src/workload/trace.h"

namespace hawk {
namespace {

TEST(DeterminismTest, RngStreamIdenticalAcrossInstances) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(a.Next(), b.Next()) << "diverged at draw " << i;
  }
}

TEST(DeterminismTest, RngMixedDistributionStreamIdentical) {
  Rng a(777);
  Rng b(777);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextDouble(), b.NextDouble());
    ASSERT_EQ(a.Exponential(3.0), b.Exponential(3.0));
    ASSERT_EQ(a.Gaussian(1.0, 2.0), b.Gaussian(1.0, 2.0));
    ASSERT_EQ(a.UniformInt(0, 100), b.UniformInt(0, 100));
    ASSERT_EQ(a.Bernoulli(0.3), b.Bernoulli(0.3));
  }
}

TEST(DeterminismTest, RngForkIsDeterministic) {
  Rng a(99);
  Rng b(99);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(fa.Next(), fb.Next());
  }
  // Fork must not disturb the parent stream symmetry either.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  bool diverged = false;
  for (int i = 0; i < 16 && !diverged; ++i) {
    diverged = a.Next() != b.Next();
  }
  EXPECT_TRUE(diverged);
}

TEST(DeterminismTest, TraceGenerationIdenticalAcrossRuns) {
  const Trace t1 = GenerateClusterWorkload(FacebookParams(300, 17));
  const Trace t2 = GenerateClusterWorkload(FacebookParams(300, 17));
  ASSERT_EQ(t1.NumJobs(), t2.NumJobs());
  for (size_t i = 0; i < t1.NumJobs(); ++i) {
    ASSERT_EQ(t1.job(i).submit_time, t2.job(i).submit_time);
    ASSERT_EQ(t1.job(i).long_hint, t2.job(i).long_hint);
    ASSERT_EQ(t1.job(i).task_durations, t2.job(i).task_durations);
  }
}

// Runs the same trace through the same scheduler twice and demands
// bit-identical results: same per-job finish times, same counters, same
// utilization series.
void ExpectIdenticalRuns(std::string_view scheduler) {
  HawkConfig config;
  config.num_workers = 120;
  config.classify_mode = ClassifyMode::kHint;
  config.seed = 7;

  auto make_trace = [&] {
    Trace trace = GenerateClusterWorkload(FacebookParams(200, 5));
    Rng arrivals_rng(11);
    AssignPoissonArrivals(&trace, SecondsToUs(2.0), &arrivals_rng);
    return trace;
  };
  const Trace trace_a = make_trace();
  const Trace trace_b = make_trace();

  const RunResult r1 = RunExperiment(trace_a, config, scheduler);
  const RunResult r2 = RunExperiment(trace_b, config, scheduler);

  ASSERT_EQ(r1.jobs.size(), r2.jobs.size());
  for (size_t i = 0; i < r1.jobs.size(); ++i) {
    ASSERT_EQ(r1.jobs[i].id, r2.jobs[i].id);
    ASSERT_EQ(r1.jobs[i].finish_time, r2.jobs[i].finish_time) << "job " << i;
    ASSERT_EQ(r1.jobs[i].runtime_us, r2.jobs[i].runtime_us) << "job " << i;
  }
  EXPECT_EQ(r1.makespan_us, r2.makespan_us);
  EXPECT_EQ(r1.total_busy_us, r2.total_busy_us);
  EXPECT_EQ(r1.counters.events, r2.counters.events);
  EXPECT_EQ(r1.counters.tasks_launched, r2.counters.tasks_launched);
  EXPECT_EQ(r1.counters.probes_placed, r2.counters.probes_placed);
  EXPECT_EQ(r1.counters.steal_attempts, r2.counters.steal_attempts);
  EXPECT_EQ(r1.counters.entries_stolen, r2.counters.entries_stolen);
  EXPECT_EQ(r1.utilization_samples, r2.utilization_samples);
}

TEST(DeterminismTest, HawkRunIdenticalAcrossRuns) { ExpectIdenticalRuns("hawk"); }

TEST(DeterminismTest, SparrowRunIdenticalAcrossRuns) { ExpectIdenticalRuns("sparrow"); }

TEST(DeterminismTest, CentralizedRunIdenticalAcrossRuns) {
  ExpectIdenticalRuns("centralized");
}

TEST(DeterminismTest, SplitRunIdenticalAcrossRuns) { ExpectIdenticalRuns("split"); }

}  // namespace
}  // namespace hawk
