// End-to-end tests for the threaded prototype runtime: complete small traces
// under both modes, verify completion, task conservation, stealing activity,
// and agreement in shape with the simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "src/metrics/comparison.h"
#include "src/runtime/prototype_cluster.h"
#include "src/scheduler/experiment.h"
#include "src/workload/arrivals.h"
#include "src/workload/google_trace.h"
#include "src/workload/scaling.h"

namespace hawk {
namespace {

// A tiny Google-like trace in milliseconds-scale time.
Trace SmallScaledTrace(uint32_t jobs, uint64_t seed, double util, uint32_t nodes) {
  GoogleTraceParams params;
  params.num_jobs = jobs;
  params.seed = seed;
  Trace trace = CapTasksPreserveWork(GenerateGoogleTrace(params), nodes / 2);
  // Scale total work down to ~4 wall-clock seconds.
  const double factor = 4e6 / static_cast<double>(trace.TotalWorkUs());
  trace = RescaleTime(trace, factor);
  Rng rng(seed);
  AssignPoissonArrivals(&trace, MeanInterarrivalForUtilization(trace, util, nodes), &rng);
  return trace;
}

runtime::PrototypeConfig SmallConfig(runtime::PrototypeMode mode) {
  runtime::PrototypeConfig config;
  config.mode = mode;
  config.num_nodes = 40;
  config.num_frontends = 4;
  config.bus_latency = std::chrono::microseconds(200);
  config.util_sample_period = std::chrono::microseconds(20'000);
  config.timeout = std::chrono::milliseconds(60'000);
  return config;
}

void CheckPrototypeInvariants(const Trace& trace, const RunResult& result) {
  ASSERT_EQ(result.jobs.size(), trace.NumJobs());
  for (size_t i = 0; i < trace.NumJobs(); ++i) {
    EXPECT_EQ(result.jobs[i].id, trace.job(i).id);
    EXPECT_GE(result.jobs[i].finish_time, result.jobs[i].submit_time);
    // Wall-clock runtime is at least the longest task's sleep.
    EXPECT_GE(result.jobs[i].runtime_us, trace.job(i).MaxTaskDurationUs());
  }
  EXPECT_EQ(result.counters.tasks_launched, trace.TotalTasks());
}

TEST(PrototypeTest, HawkModeCompletesAllJobs) {
  const Trace trace = SmallScaledTrace(30, 3, 0.8, 40);
  const RunResult result =
      runtime::RunPrototype(trace, SmallConfig(runtime::PrototypeMode::kHawk));
  CheckPrototypeInvariants(trace, result);
  EXPECT_GT(result.counters.events, trace.TotalTasks());  // RPC traffic happened.
}

TEST(PrototypeTest, SparrowModeCompletesAllJobs) {
  const Trace trace = SmallScaledTrace(30, 5, 0.8, 40);
  const RunResult result =
      runtime::RunPrototype(trace, SmallConfig(runtime::PrototypeMode::kSparrow));
  CheckPrototypeInvariants(trace, result);
  // Sparrow mode has no backend and no stealing.
  EXPECT_EQ(result.counters.entries_stolen, 0u);
}

TEST(PrototypeTest, StealingActivatesUnderLoad) {
  const Trace trace = SmallScaledTrace(60, 7, 1.3, 40);
  const RunResult result =
      runtime::RunPrototype(trace, SmallConfig(runtime::PrototypeMode::kHawk));
  CheckPrototypeInvariants(trace, result);
  EXPECT_GT(result.counters.steal_attempts, 0u);
}

TEST(PrototypeTest, UtilizationSamplesCollected) {
  const Trace trace = SmallScaledTrace(30, 9, 0.8, 40);
  const RunResult result =
      runtime::RunPrototype(trace, SmallConfig(runtime::PrototypeMode::kHawk));
  EXPECT_GT(result.utilization_samples.size(), 3u);
  for (const double u : result.utilization_samples) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(PrototypeTest, AgreesWithSimulatorInShape) {
  // The paper's §4.10 claim at small scale: under load, the prototype and
  // the simulator agree that Hawk substantially improves short jobs.
  const uint32_t nodes = 40;
  const Trace trace = SmallScaledTrace(80, 11, 1.0, nodes);

  HawkConfig sim_config;
  sim_config.num_workers = nodes;
  sim_config.classify_mode = ClassifyMode::kHint;
  sim_config.net_delay_us = 200;
  const RunResult sim_hawk = RunExperiment(trace, sim_config, "hawk");
  const RunResult sim_sparrow = RunExperiment(trace, sim_config, "sparrow");
  const RunComparison sim = CompareRuns(sim_hawk, sim_sparrow);
  EXPECT_LT(sim.short_jobs.p90_ratio, 1.0);

  // The prototype measures real sleeps, so a background load spike during
  // one of the two runs can flip the comparison on a shared machine. Retry
  // a bounded number of times: a genuine scheduling regression fails every
  // attempt, transient contention does not.
  double best_p90_ratio = std::numeric_limits<double>::infinity();
  for (int attempt = 0; attempt < 3 && !(best_p90_ratio < 1.0); ++attempt) {
    const RunResult impl_hawk =
        runtime::RunPrototype(trace, SmallConfig(runtime::PrototypeMode::kHawk));
    const RunResult impl_sparrow =
        runtime::RunPrototype(trace, SmallConfig(runtime::PrototypeMode::kSparrow));
    const RunComparison impl = CompareRuns(impl_hawk, impl_sparrow);
    best_p90_ratio = std::min(best_p90_ratio, impl.short_jobs.p90_ratio);
  }
  EXPECT_LT(best_p90_ratio, 1.0);
}

}  // namespace
}  // namespace hawk
