// End-to-end tests for the threaded prototype runtime: complete small traces
// under registry-resolved schedulers, verify completion, task conservation,
// stealing activity, multi-slot agreement in shape with the simulator, and
// the clean-Status failure paths of the spec-driven entry points.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>

#include "src/metrics/comparison.h"
#include "src/runtime/prototype_cluster.h"
#include "src/runtime/schedulers.h"
#include "src/scheduler/experiment.h"
#include "src/workload/arrivals.h"
#include "src/workload/google_trace.h"
#include "src/workload/scaling.h"

// ThreadSanitizer slows bus handlers and executor wakeups by 5-20x, which
// distorts the injected 200 us RPC latency against the real sleep durations;
// the shape tests still run end to end under TSan (that concurrency exercise
// is the TSan job's whole point) but their wall-clock percentile assertions
// are only meaningful uninstrumented.
#if defined(__SANITIZE_THREAD__)
#define HAWK_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HAWK_UNDER_TSAN 1
#endif
#endif
#ifndef HAWK_UNDER_TSAN
#define HAWK_UNDER_TSAN 0
#endif

namespace hawk {
namespace {

// A tiny Google-like trace in milliseconds-scale time, sized for a fleet of
// `total_slots` execution slots.
Trace SmallScaledTrace(uint32_t jobs, uint64_t seed, double util, uint32_t total_slots) {
  GoogleTraceParams params;
  params.num_jobs = jobs;
  params.seed = seed;
  Trace trace = CapTasksPreserveWork(GenerateGoogleTrace(params), total_slots / 2);
  // Scale total work down to ~4 wall-clock seconds.
  const double factor = 4e6 / static_cast<double>(trace.TotalWorkUs());
  trace = RescaleTime(trace, factor);
  Rng rng(seed);
  AssignPoissonArrivals(&trace, MeanInterarrivalForUtilization(trace, util, total_slots),
                        &rng);
  return trace;
}

// Wall-clock-friendly runtime knobs shared by all tests; the scheduler and
// the cluster shape come from the (shared, validated) HawkConfig.
runtime::PrototypeConfig SmallConfig(std::string scheduler, uint32_t workers = 40,
                                     uint32_t slots = 1) {
  runtime::PrototypeConfig config;
  config.scheduler = std::move(scheduler);
  config.hawk.num_workers = workers;
  config.hawk.slots_per_worker = slots;
  config.hawk.classify_mode = ClassifyMode::kHint;
  config.hawk.net_delay_us = 200;
  config.hawk.util_sample_period_us = 20'000;
  config.num_frontends = 4;
  config.timeout = std::chrono::milliseconds(60'000);
  return config;
}

void CheckPrototypeInvariants(const Trace& trace, const RunResult& result) {
  ASSERT_EQ(result.jobs.size(), trace.NumJobs());
  for (size_t i = 0; i < trace.NumJobs(); ++i) {
    EXPECT_EQ(result.jobs[i].id, trace.job(i).id);
    EXPECT_GE(result.jobs[i].finish_time, result.jobs[i].submit_time);
    // Wall-clock runtime is at least the longest task's sleep.
    EXPECT_GE(result.jobs[i].runtime_us, trace.job(i).MaxTaskDurationUs());
  }
  EXPECT_EQ(result.counters.tasks_launched, trace.TotalTasks());
}

TEST(PrototypeTest, HawkCompletesAllJobs) {
  const Trace trace = SmallScaledTrace(30, 3, 0.8, 40);
  const StatusOr<RunResult> result = runtime::RunPrototype(trace, SmallConfig("hawk"));
  ASSERT_TRUE(result.ok()) << result.status().message();
  CheckPrototypeInvariants(trace, result.value());
  EXPECT_GT(result.value().counters.events, trace.TotalTasks());  // RPC traffic happened.
}

TEST(PrototypeTest, SparrowCompletesAllJobs) {
  const Trace trace = SmallScaledTrace(30, 5, 0.8, 40);
  const StatusOr<RunResult> result = runtime::RunPrototype(trace, SmallConfig("sparrow"));
  ASSERT_TRUE(result.ok()) << result.status().message();
  CheckPrototypeInvariants(trace, result.value());
  // Sparrow's runtime shape has no backend and no stealing.
  EXPECT_EQ(result.value().counters.entries_stolen, 0u);
}

TEST(PrototypeTest, CentralizedAndSplitRunThroughTheirShapes) {
  // The non-hybrid built-ins exercise the other RuntimeShape corners:
  // centralized routes both classes through the backend; split probes short
  // jobs over the short partition only.
  const Trace trace = SmallScaledTrace(24, 13, 0.7, 40);
  for (const char* scheduler : {"centralized", "split"}) {
    SCOPED_TRACE(scheduler);
    const StatusOr<RunResult> result = runtime::RunPrototype(trace, SmallConfig(scheduler));
    ASSERT_TRUE(result.ok()) << result.status().message();
    CheckPrototypeInvariants(trace, result.value());
    EXPECT_EQ(result.value().counters.entries_stolen, 0u);
  }
}

TEST(PrototypeTest, StealingActivatesUnderLoad) {
  const Trace trace = SmallScaledTrace(60, 7, 1.3, 40);
  const StatusOr<RunResult> result = runtime::RunPrototype(trace, SmallConfig("hawk"));
  ASSERT_TRUE(result.ok()) << result.status().message();
  CheckPrototypeInvariants(trace, result.value());
  EXPECT_GT(result.value().counters.steal_attempts, 0u);
}

TEST(PrototypeTest, UtilizationSamplesCollected) {
  const Trace trace = SmallScaledTrace(30, 9, 0.8, 40);
  const StatusOr<RunResult> result = runtime::RunPrototype(trace, SmallConfig("hawk"));
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_GT(result.value().utilization_samples.size(), 3u);
  for (const double u : result.value().utilization_samples) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(PrototypeTest, ExternallyRegisteredSchedulerRunsOnThePrototype) {
  // Anything in the registry is a prototype citizen; hawk-dchoice is the
  // in-library registered variant (its shape inherits Hawk's control plane).
  const Trace trace = SmallScaledTrace(30, 15, 0.9, 40);
  const StatusOr<RunResult> result = runtime::RunPrototype(trace, SmallConfig("hawk-dchoice"));
  ASSERT_TRUE(result.ok()) << result.status().message();
  CheckPrototypeInvariants(trace, result.value());
}

// --- spec-driven entry point and failure paths ------------------------------

TEST(PrototypeSpecTest, UnknownSchedulerNameIsACleanStatus) {
  const Trace trace = SmallScaledTrace(5, 17, 0.5, 40);
  runtime::PrototypeConfig config = SmallConfig("no-such-scheduler");
  const StatusOr<RunResult> result = runtime::RunPrototype(trace, config);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unknown scheduler"), std::string::npos);
  EXPECT_NE(result.status().message().find("no-such-scheduler"), std::string::npos);
  // The spec entry point takes the same path.
  const StatusOr<RunResult> via_spec = runtime::RunPrototype(
      ExperimentSpec("still-not-registered").WithConfig(config.hawk).WithTrace(&trace),
      config);
  ASSERT_FALSE(via_spec.ok());
  EXPECT_NE(via_spec.status().message().find("unknown scheduler"), std::string::npos);
}

TEST(PrototypeSpecTest, InvalidConfigsAreCleanStatuses) {
  const Trace trace = SmallScaledTrace(5, 19, 0.5, 40);
  runtime::PrototypeConfig config = SmallConfig("hawk");
  config.num_frontends = 0;
  EXPECT_FALSE(runtime::RunPrototype(trace, config).ok());
  config = SmallConfig("hawk");
  config.hawk.probe_ratio = 0;  // Invalid by HawkConfig::Validate.
  EXPECT_FALSE(runtime::RunPrototype(trace, config).ok());
  const StatusOr<RunResult> no_trace =
      runtime::RunPrototype(ExperimentSpec("hawk"), SmallConfig("hawk"));
  ASSERT_FALSE(no_trace.ok());
  EXPECT_NE(no_trace.status().message().find("no trace"), std::string::npos);
  // A scheduler whose shape needs a short partition, on a config without
  // one: a clean Status, not the factory/Attach abort the simulator gets.
  config = SmallConfig("split");
  config.hawk.use_partition = false;
  const StatusOr<RunResult> no_partition = runtime::RunPrototype(trace, config);
  ASSERT_FALSE(no_partition.ok());
  EXPECT_NE(no_partition.status().message().find("short partition"), std::string::npos);
}

TEST(CompletionSinkTest, TimeoutNamesOutstandingJobs) {
  runtime::CompletionSink sink;
  sink.ExpectJobs({1, 2, 3});
  sink.Record(2, /*is_long=*/false);
  const Status status = sink.AwaitAll(std::chrono::milliseconds(10));
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("2 job(s) outstanding"), std::string::npos);
  EXPECT_NE(status.message().find("1"), std::string::npos);
  EXPECT_NE(status.message().find("3"), std::string::npos);
  // Completing the stragglers resolves the wait.
  sink.Record(1, false);
  sink.Record(3, true);
  EXPECT_TRUE(sink.AwaitAll(std::chrono::milliseconds(10)).ok());
  EXPECT_EQ(sink.TakeAll().size(), 3u);
}

// --- agreement with the simulator -------------------------------------------

// Shared body: under load, the prototype and the simulator agree that Hawk
// substantially improves short jobs — the §4.10 claim — at the given slot
// layout. The prototype measures real sleeps, so a background load spike
// during one of the runs can flip the comparison on a shared machine; retry
// a bounded number of times (a genuine scheduling regression fails every
// attempt, transient contention does not).
void ExpectImplMatchesSimShape(uint32_t workers, uint32_t slots, uint32_t jobs,
                               uint64_t seed, double util) {
  const uint32_t total_slots = workers * slots;
  const Trace trace = SmallScaledTrace(jobs, seed, util, total_slots);

  runtime::PrototypeConfig runtime_knobs = SmallConfig("hawk", workers, slots);
  HawkConfig sim_config = runtime_knobs.hawk;

  // One spec pair drives both worlds.
  const ExperimentSpec hawk_spec =
      ExperimentSpec("hawk").WithConfig(sim_config).WithTrace(&trace);
  const ExperimentSpec sparrow_spec =
      ExperimentSpec("sparrow").WithConfig(sim_config).WithTrace(&trace);

  const RunResult sim_hawk = RunExperiment(hawk_spec);
  const RunResult sim_sparrow = RunExperiment(sparrow_spec);
  const RunComparison sim = CompareRuns(sim_hawk, sim_sparrow);
  EXPECT_LT(sim.short_jobs.p90_ratio, 1.0);

  double best_p90_ratio = std::numeric_limits<double>::infinity();
  const int max_attempts = HAWK_UNDER_TSAN ? 1 : 3;
  for (int attempt = 0; attempt < max_attempts && !(best_p90_ratio < 1.0); ++attempt) {
    const StatusOr<RunResult> impl_hawk = runtime::RunPrototype(hawk_spec, runtime_knobs);
    const StatusOr<RunResult> impl_sparrow =
        runtime::RunPrototype(sparrow_spec, runtime_knobs);
    ASSERT_TRUE(impl_hawk.ok()) << impl_hawk.status().message();
    ASSERT_TRUE(impl_sparrow.ok()) << impl_sparrow.status().message();
    const RunComparison impl = CompareRuns(impl_hawk.value(), impl_sparrow.value());
    best_p90_ratio = std::min(best_p90_ratio, impl.short_jobs.p90_ratio);
  }
  if (!HAWK_UNDER_TSAN) {
    EXPECT_LT(best_p90_ratio, 1.0);
  }
}

TEST(PrototypeTest, AgreesWithSimulatorInShape) {
  ExpectImplMatchesSimShape(/*workers=*/40, /*slots=*/1, /*jobs=*/80, /*seed=*/11,
                            /*util=*/1.0);
}

TEST(PrototypeTest, MultiSlotAgreesWithSimulatorInShape) {
  // Same claim on a 4-slot fleet: 10 node monitors x 4 slots carry the same
  // 40-slot capacity as the single-slot case above. Offered load is higher
  // because pooled 4-slot servers absorb head-of-line blocking until deeper
  // into overload — at util 1.0 the Hawk-vs-Sparrow p90 gap is within
  // wall-clock noise, at 1.3 it is decisive.
  ExpectImplMatchesSimShape(/*workers=*/10, /*slots=*/4, /*jobs=*/100, /*seed=*/21,
                            /*util=*/1.3);
}

}  // namespace
}  // namespace hawk
