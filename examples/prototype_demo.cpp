// Run the threaded prototype runtime (the paper's "real cluster run", §4.10)
// on a down-scaled Google trace sample: N node-monitor threads executing
// sleep tasks, 10 distributed schedulers, 1 centralized scheduler, all over
// an RPC bus with injected latency. Any registered scheduler runs here
// through the same ExperimentSpec the simulator uses; this demo sweeps the
// spec over hawk and sparrow and compares them.
//
//   prototype_demo [--nodes=100] [--slots=1] [--jobs=80] [--work-seconds=20]
//                  [--seed=5] [--scheds=hawk,sparrow]
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/metrics/comparison.h"
#include "src/metrics/report.h"
#include "src/runtime/prototype_cluster.h"
#include "src/scheduler/experiment.h"
#include "src/workload/arrivals.h"
#include "src/workload/google_trace.h"
#include "src/workload/scaling.h"

namespace {

// Comma-separated scheduler names ("hawk,sparrow,hawk-dchoice").
std::vector<std::string> ParseSchedulers(const std::string& list) {
  std::vector<std::string> names;
  std::string::size_type begin = 0;
  while (begin <= list.size()) {
    const std::string::size_type comma = list.find(',', begin);
    const std::string name = list.substr(
        begin, comma == std::string::npos ? std::string::npos : comma - begin);
    if (!name.empty()) {
      names.push_back(name);
    }
    if (comma == std::string::npos) {
      break;
    }
    begin = comma + 1;
  }
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const auto nodes = static_cast<uint32_t>(flags.GetInt("nodes", 100));
  const auto slots = static_cast<uint32_t>(flags.GetInt("slots", 1));
  const auto jobs = static_cast<uint32_t>(flags.GetInt("jobs", 80));
  const double work_seconds = flags.GetDouble("work-seconds", 20.0);
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 5));
  const std::vector<std::string> schedulers =
      ParseSchedulers(flags.GetString("scheds", "hawk,sparrow"));
  if (schedulers.empty()) {
    std::fprintf(stderr, "--scheds must name at least one registered scheduler\n");
    return 1;
  }

  // Google sample scaled the way the paper scales it for the prototype:
  // tasks capped by the cluster-size ratio, durations scaled into sleeps.
  hawk::GoogleTraceParams params;
  params.num_jobs = jobs;
  params.seed = seed;
  hawk::Trace trace = hawk::CapTasksPreserveWork(hawk::GenerateGoogleTrace(params), nodes / 2);
  trace = hawk::RescaleTime(trace, work_seconds * 1e6 /
                                       static_cast<double>(trace.TotalWorkUs()));
  hawk::Rng rng(seed);
  hawk::AssignPoissonArrivals(
      &trace, hawk::MeanInterarrivalForUtilization(trace, 0.9, nodes * slots), &rng);

  std::printf("Prototype: %u node monitors x %u slot(s), 10 frontends + 1 backend, %zu jobs, "
              "~%.0f s of sleep-task work, 0.5 ms RPC latency.\n\n",
              nodes, slots, trace.NumJobs(), work_seconds);

  // The shared config: same type, same validation, same fields as a
  // simulation of this cluster.
  hawk::HawkConfig config;
  config.num_workers = nodes;
  config.slots_per_worker = slots;
  config.classify_mode = hawk::ClassifyMode::kHint;
  config.seed = seed;
  config.util_sample_period_us = 100'000;  // Wall clock on the prototype.

  // The declarative grid: one base spec, one scheduler axis — exactly how a
  // simulation sweep would be declared — executed on the prototype.
  hawk::SweepSpec sweep(hawk::ExperimentSpec("hawk").WithConfig(config).WithTrace(&trace)
                            .WithLabel("proto"));
  sweep.VarySchedulers(schedulers);
  const auto runs_or = hawk::runtime::RunPrototypeSweep(sweep);
  if (!runs_or.ok()) {
    std::fprintf(stderr, "prototype sweep failed: %s\n", runs_or.status().message().c_str());
    return 1;
  }
  const std::vector<hawk::SweepRun>& runs = runs_or.value();

  hawk::Table table({"scheduler", "p50 short (ms)", "p90 short (ms)", "p50 long (ms)",
                     "rpc messages", "entries stolen"});
  for (const hawk::SweepRun& run : runs) {
    const hawk::Samples shorts = run.result.RuntimesSeconds(false);
    const hawk::Samples longs = run.result.RuntimesSeconds(true);
    table.AddRow({run.spec.Label(),
                  hawk::Table::Num(shorts.Percentile(50) * 1000.0, 1),
                  hawk::Table::Num(shorts.Percentile(90) * 1000.0, 1),
                  longs.Empty() ? "-" : hawk::Table::Num(longs.Percentile(50) * 1000.0, 1),
                  std::to_string(run.result.counters.events),
                  std::to_string(run.result.counters.entries_stolen)});
  }
  table.Print();

  if (runs.size() >= 2) {
    // The last scheduler is the baseline (sparrow in the default pair).
    const hawk::RunComparison cmp =
        hawk::CompareRuns(runs.front().result, runs.back().result);
    std::printf("\n%s vs %s on the prototype: short p50 %.2f, short p90 %.2f, "
                "long p50 %.2f (lower is better)\n",
                schedulers.front().c_str(), schedulers.back().c_str(),
                cmp.short_jobs.p50_ratio, cmp.short_jobs.p90_ratio,
                cmp.long_jobs.p50_ratio);
  }
  return 0;
}
