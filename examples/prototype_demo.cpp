// Run the threaded prototype runtime (the paper's "real cluster run", §4.10)
// on a down-scaled Google trace sample: N node-monitor threads executing
// sleep tasks, 10 distributed schedulers, 1 centralized scheduler, all over
// an RPC bus with injected latency. Compares Hawk and Sparrow modes.
//
//   prototype_demo [--nodes=100] [--jobs=80] [--work-seconds=20] [--seed=5]
#include <cstdio>

#include "src/common/flags.h"
#include "src/metrics/comparison.h"
#include "src/metrics/report.h"
#include "src/runtime/prototype_cluster.h"
#include "src/workload/arrivals.h"
#include "src/workload/google_trace.h"
#include "src/workload/scaling.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const auto nodes = static_cast<uint32_t>(flags.GetInt("nodes", 100));
  const auto jobs = static_cast<uint32_t>(flags.GetInt("jobs", 80));
  const double work_seconds = flags.GetDouble("work-seconds", 20.0);
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 5));

  // Google sample scaled the way the paper scales it for the prototype:
  // tasks capped by the cluster-size ratio, durations scaled into sleeps.
  hawk::GoogleTraceParams params;
  params.num_jobs = jobs;
  params.seed = seed;
  hawk::Trace trace = hawk::CapTasksPreserveWork(hawk::GenerateGoogleTrace(params), nodes / 2);
  trace = hawk::RescaleTime(trace, work_seconds * 1e6 /
                                       static_cast<double>(trace.TotalWorkUs()));
  hawk::Rng rng(seed);
  hawk::AssignPoissonArrivals(
      &trace, hawk::MeanInterarrivalForUtilization(trace, 0.9, nodes), &rng);

  std::printf("Prototype: %u node monitors, 10 frontends + 1 backend, %zu jobs, "
              "~%.0f s of sleep-task work, 0.5 ms RPC latency.\n\n",
              nodes, trace.NumJobs(), work_seconds);

  hawk::runtime::PrototypeConfig config;
  config.num_nodes = nodes;
  config.seed = seed;

  hawk::Table table({"mode", "p50 short (ms)", "p90 short (ms)", "p50 long (ms)",
                     "rpc messages", "entries stolen"});
  hawk::RunResult results[2];
  int row = 0;
  for (const auto mode :
       {hawk::runtime::PrototypeMode::kHawk, hawk::runtime::PrototypeMode::kSparrow}) {
    config.mode = mode;
    results[row] = hawk::runtime::RunPrototype(trace, config);
    const hawk::RunResult& run = results[row];
    const hawk::Samples shorts = run.RuntimesSeconds(false);
    const hawk::Samples longs = run.RuntimesSeconds(true);
    table.AddRow({mode == hawk::runtime::PrototypeMode::kHawk ? "hawk" : "sparrow",
                  hawk::Table::Num(shorts.Percentile(50) * 1000.0, 1),
                  hawk::Table::Num(shorts.Percentile(90) * 1000.0, 1),
                  longs.Empty() ? "-" : hawk::Table::Num(longs.Percentile(50) * 1000.0, 1),
                  std::to_string(run.counters.events),
                  std::to_string(run.counters.entries_stolen)});
    ++row;
  }
  table.Print();

  const hawk::RunComparison cmp = hawk::CompareRuns(results[0], results[1]);
  std::printf("\nHawk vs Sparrow on the prototype: short p50 %.2f, short p90 %.2f, "
              "long p50 %.2f (lower is better)\n",
              cmp.short_jobs.p50_ratio, cmp.short_jobs.p90_ratio, cmp.long_jobs.p50_ratio);
  return 0;
}
