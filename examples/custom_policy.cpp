// Extending the library: write a new scheduling policy against the public
// SchedulerPolicy interface, register it in the SchedulerRegistry from
// OUTSIDE src/, and run and sweep it through the exact same experiment API
// as the built-in schedulers.
//
// The example policy, "hawk-lb", is a Hawk variant whose distributed side
// probes the LEAST-LOADED of `d` random workers per probe (power-of-two-
// choices on queue length) instead of plain uniform placement — a natural
// "what if" on top of the paper's design. It reuses the core building blocks
// (classifier via the driver, waiting-time queue, stealing policy). One
// SchedulerRegistration line makes it a first-class experiment citizen:
// RunExperiment("hawk-lb"), sweep axes, CSV export — everything built-ins get.
#include <cstdio>
#include <memory>

#include "src/common/flags.h"
#include "src/core/hawk_config.h"
#include "src/core/slot_waiting_queue.h"
#include "src/core/stealing_policy.h"
#include "src/metrics/comparison.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"
#include "src/scheduler/policy.h"
#include "src/scheduler/registry.h"
#include "src/workload/arrivals.h"
#include "src/workload/google_trace.h"
#include "src/workload/scaling.h"

namespace {

class HawkLeastLoadedPolicy : public hawk::SchedulerPolicy {
 public:
  explicit HawkLeastLoadedPolicy(const hawk::HawkConfig& config) : config_(config) {}

  void Attach(hawk::SchedulerContext* ctx) override {
    hawk::SchedulerPolicy::Attach(ctx);
    central_ = std::make_unique<hawk::SlotWaitingTimeQueue>(ctx->GetCluster(),
                                                            ctx->GetCluster().GeneralCount());
    stealing_ = std::make_unique<hawk::StealingPolicy>(config_.steal_cap,
                                                       ctx->SchedRng().Next());
  }

  void OnJobArrival(const hawk::Job& job, const hawk::JobClass& cls) override {
    if (cls.is_long_sched) {
      const hawk::DurationUs estimate = ctx_->Tracker().EstimateUs(job.id);
      for (uint32_t i = 0; i < job.NumTasks(); ++i) {
        const auto assignment = ctx_->Tracker().TakeNextTask(job.id);
        const hawk::WorkerId worker = central_->AssignTask(ctx_->Now(), estimate);
        ctx_->PlaceTask(worker, job.id, assignment->task_index, assignment->duration, true);
      }
      return;
    }
    // Distributed side with a twist: each probe samples two random *slots*
    // (so big workers are proportionally more likely candidates) and goes to
    // the less-loaded owning worker (power of two choices on queue length
    // plus occupied slots).
    hawk::Cluster& cluster = ctx_->GetCluster();
    const uint64_t n = cluster.TotalSlots();
    for (uint32_t p = 0; p < config_.probe_ratio * job.NumTasks(); ++p) {
      const auto a = cluster.WorkerOfSlot(
          static_cast<hawk::SlotId>(ctx_->SchedRng().NextBounded(n)));
      const auto b = cluster.WorkerOfSlot(
          static_cast<hawk::SlotId>(ctx_->SchedRng().NextBounded(n)));
      const hawk::WorkerStore& workers = cluster.workers();
      const size_t qa = workers.QueueSize(a) + workers.OccupiedSlots(a);
      const size_t qb = workers.QueueSize(b) + workers.OccupiedSlots(b);
      ctx_->PlaceProbe(qa <= qb ? a : b, job.id, false);
    }
  }

  void OnWorkerIdle(hawk::WorkerId worker) override {
    const auto stolen = stealing_->TrySteal(ctx_->GetCluster(), worker, &ctx_->Counters());
    if (!stolen.empty()) {
      ctx_->DeliverStolen(worker, stolen);
    }
  }

  void OnTaskStart(hawk::WorkerId worker, const hawk::QueueEntry& task) override {
    if (task.is_long) {
      central_->OnTaskStart(worker, ctx_->Now(), ctx_->Tracker().EstimateUs(task.job));
    }
  }
  void OnTaskFinish(hawk::WorkerId worker, hawk::JobId job, bool is_long) override {
    (void)job;
    if (is_long) {
      central_->OnTaskFinish(worker, ctx_->Now());
    }
  }

  std::string_view Name() const override { return "hawk-lb"; }

 private:
  hawk::HawkConfig config_;
  std::unique_ptr<hawk::SlotWaitingTimeQueue> central_;
  std::unique_ptr<hawk::StealingPolicy> stealing_;
};

// The extension point: one registration line and "hawk-lb" can be run,
// swept and compared through the same path as the built-ins. The policy's
// general partition mirrors Hawk's (centralized long jobs over the general
// partition).
const hawk::SchedulerRegistration kRegisterHawkLb(
    "hawk-lb",
    [](const hawk::HawkConfig& config) -> std::unique_ptr<hawk::SchedulerPolicy> {
      return std::make_unique<HawkLeastLoadedPolicy>(config);
    },
    [](const hawk::HawkConfig& config) { return config.GeneralCount(); });

}  // namespace

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const auto workers = static_cast<uint32_t>(flags.GetInt("workers", 1500));
  const auto jobs = static_cast<uint32_t>(flags.GetInt("jobs", 3000));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  hawk::GoogleTraceParams params;
  params.num_jobs = jobs;
  params.seed = seed;
  hawk::Trace trace = hawk::CapTasksPreserveWork(hawk::GenerateGoogleTrace(params),
                                                 workers / 2);
  hawk::Rng rng(seed);
  hawk::AssignPoissonArrivals(
      &trace, hawk::MeanInterarrivalForUtilization(trace, 0.93, workers), &rng);

  hawk::HawkConfig config;
  config.num_workers = workers;
  config.seed = seed;

  // The registered custom policy runs through the exact same entry point as
  // the built-ins — one declarative sweep over all three schedulers.
  hawk::SweepSpec sweep(hawk::ExperimentSpec().WithConfig(config).WithTrace(&trace));
  sweep.VarySchedulers({"hawk-lb", "hawk", "sparrow"});
  const std::vector<hawk::SweepRun> runs =
      hawk::RunSweep(sweep, static_cast<uint32_t>(flags.GetInt("threads", 0)));

  hawk::Table table({"policy", "p50 short (s)", "p90 short (s)", "p50 long (s)",
                     "p90 long (s)"});
  for (const hawk::SweepRun& run : runs) {
    const hawk::Samples shorts = run.result.RuntimesSeconds(false);
    const hawk::Samples longs = run.result.RuntimesSeconds(true);
    table.AddRow({run.spec.scheduler == "hawk-lb" ? "hawk-lb (custom)" : run.spec.scheduler,
                  hawk::Table::Num(shorts.Percentile(50), 0),
                  hawk::Table::Num(shorts.Percentile(90), 0),
                  hawk::Table::Num(longs.Percentile(50), 0),
                  hawk::Table::Num(longs.Percentile(90), 0)});
  }
  table.Print();
  std::printf("\nNote: power-of-two-choices probing sees queue lengths that plain\n"
              "Sparrow cannot; the paper argues such state is impractical to keep\n"
              "fresh at cluster scale — treat hawk-lb as an informed upper bound.\n");
  return 0;
}
