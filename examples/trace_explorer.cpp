// Generate, inspect, save and reload workload traces.
//
//   trace_explorer --workload=google|cloudera|facebook|yahoo [--jobs=N]
//                  [--save=trace.txt] [--load=trace.txt]
//
// Prints the Table 1 mix statistics and the Figure 4 CDFs for the chosen
// workload, and demonstrates the text trace format round-trip.
#include <cstdio>
#include <string>

#include "src/common/flags.h"
#include "src/metrics/report.h"
#include "src/workload/cluster_workloads.h"
#include "src/workload/google_trace.h"
#include "src/workload/trace.h"
#include "src/workload/trace_stats.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const std::string workload = flags.GetString("workload", "google");
  const auto jobs = static_cast<uint32_t>(flags.GetInt("jobs", 5000));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  hawk::Trace trace;
  hawk::LongJobPredicate is_long = hawk::LongByHint();
  if (flags.Has("load")) {
    const auto loaded = hawk::Trace::LoadFromFile(flags.GetString("load", ""));
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n", loaded.status().message().c_str());
      return 1;
    }
    trace = loaded.value();
    std::printf("Loaded %zu jobs from %s\n", trace.NumJobs(),
                flags.GetString("load", "").c_str());
  } else if (workload == "google") {
    hawk::GoogleTraceParams params;
    params.num_jobs = jobs;
    params.seed = seed;
    trace = hawk::GenerateGoogleTrace(params);
    is_long = hawk::LongByCutoff(hawk::SecondsToUs(1129.0));
  } else if (workload == "cloudera") {
    trace = hawk::GenerateClusterWorkload(hawk::ClouderaParams(jobs, seed));
  } else if (workload == "facebook") {
    trace = hawk::GenerateClusterWorkload(hawk::FacebookParams(jobs, seed));
  } else if (workload == "yahoo") {
    trace = hawk::GenerateClusterWorkload(hawk::YahooParams(jobs, seed));
  } else {
    std::fprintf(stderr, "unknown --workload=%s\n", workload.c_str());
    return 1;
  }

  const hawk::WorkloadMix mix = hawk::ComputeMix(trace, is_long);
  std::printf("\nWorkload mix (Table 1 statistics):\n");
  std::printf("  jobs:              %zu (%zu long, %.2f%%)\n", mix.total_jobs, mix.long_jobs,
              mix.pct_long_jobs);
  std::printf("  tasks:             %llu (%.1f%% in long jobs)\n",
              static_cast<unsigned long long>(mix.total_tasks), mix.pct_tasks_long);
  std::printf("  task-seconds:      %.2f%% in long jobs\n", mix.pct_task_seconds_long);
  std::printf("  duration ratio:    %.2fx (long avg / short avg)\n\n",
              mix.avg_task_duration_ratio);

  const hawk::WorkloadCdfs cdfs = hawk::ComputeCdfs(trace, is_long);
  hawk::PrintCdf("avg task duration per job (s), long jobs", cdfs.long_avg_task_duration_s,
                 10);
  hawk::PrintCdf("avg task duration per job (s), short jobs", cdfs.short_avg_task_duration_s,
                 10);
  hawk::PrintCdf("tasks per job, long jobs", cdfs.long_tasks_per_job, 10);
  hawk::PrintCdf("tasks per job, short jobs", cdfs.short_tasks_per_job, 10);

  if (flags.Has("save")) {
    const std::string path = flags.GetString("save", "");
    const hawk::Status status = trace.SaveToFile(path);
    if (!status.ok()) {
      std::fprintf(stderr, "save failed: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("\nSaved trace to %s (reload with --load=%s)\n", path.c_str(), path.c_str());
  }
  return 0;
}
