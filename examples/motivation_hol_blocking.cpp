// The paper's motivating experiment (§2.3, Figure 1): why distributed
// scheduling struggles with heterogeneous workloads at high load.
//
// A cluster runs 95% short jobs (100 tasks x 100 s) and 5% long jobs
// (tasks of 20000 s). Even though idle slots exist nearly all the time,
// Sparrow's random probes queue short tasks behind long ones, inflating
// short-job runtimes by orders of magnitude. Hawk's stealing + partition
// rescue them. Run with --workers/--jobs to explore other scales.
#include <cstdio>

#include "src/common/flags.h"
#include "src/core/hawk_config.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"
#include "src/workload/cluster_workloads.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);
  const auto jobs = static_cast<uint32_t>(flags.GetInt("jobs", 1000));
  const auto workers = static_cast<uint32_t>(flags.GetInt("workers", 1500));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  // 1/10-scale version of the paper's 15000-server scenario.
  const hawk::Trace trace = hawk::GenerateMotivationTrace(jobs, 0.1, seed);

  hawk::HawkConfig config;
  config.num_workers = workers;
  config.seed = seed;
  // The long jobs here use ~99% of task-seconds; reserve a thin slice.
  config.short_partition_fraction = 0.10;

  std::printf("Scenario: %u workers, %zu jobs (95%% short: 100 tasks x 100 s; "
              "5%% long: 100 tasks x 20000 s), Poisson arrivals every 50 s.\n\n",
              workers, trace.NumJobs());

  const hawk::RunResult sparrow = hawk::RunExperiment(trace, config, "sparrow");
  const hawk::RunResult hawk_run = hawk::RunExperiment(trace, config, "hawk");

  const hawk::Samples sparrow_short = sparrow.RuntimesSeconds(/*long_jobs=*/false);
  const hawk::Samples hawk_short = hawk_run.RuntimesSeconds(/*long_jobs=*/false);

  hawk::PrintCdf("Figure 1 — short-job runtime CDF under SPARROW (seconds)", sparrow_short,
                 12);
  std::printf("\n");
  hawk::PrintCdf("Same workload under HAWK (seconds)", hawk_short, 12);

  std::printf("\nAn omniscient scheduler would finish most short jobs in ~100 s.\n");
  std::printf("Sparrow: median %.0f s | %.1f%% of short jobs exceed 15000 s "
              "(head-of-line blocking behind 20000 s tasks)\n",
              sparrow_short.Median(), (1.0 - sparrow_short.CdfAt(15000.0)) * 100.0);
  std::printf("Hawk:    median %.0f s | %.1f%% exceed 15000 s "
              "(%llu short tasks rescued by stealing)\n",
              hawk_short.Median(), (1.0 - hawk_short.CdfAt(15000.0)) * 100.0,
              static_cast<unsigned long long>(hawk_run.counters.entries_stolen));
  std::printf("Median utilization: sparrow %.0f%%, hawk %.0f%% — the cluster was "
              "busy, not broken; placement was the problem.\n",
              sparrow.MedianUtilization() * 100.0, hawk_run.MedianUtilization() * 100.0);
  return 0;
}
