// Quickstart: generate a small heterogeneous workload, run it under Hawk and
// under Sparrow on the same simulated cluster, and print runtime percentiles.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart [--jobs=1000] [--workers=600] [--seed=1]
#include <cstdio>

#include "src/common/flags.h"
#include "src/core/hawk_config.h"
#include "src/metrics/comparison.h"
#include "src/metrics/csv_export.h"
#include "src/metrics/report.h"
#include "src/scheduler/experiment.h"
#include "src/workload/arrivals.h"
#include "src/workload/google_trace.h"
#include "src/workload/scaling.h"

int main(int argc, char** argv) {
  hawk::Flags flags(argc, argv);

  // 1. A Google-like heterogeneous workload: 10% long jobs carrying ~84% of
  //    the work (see src/workload/google_trace.h for the calibration).
  hawk::GoogleTraceParams trace_params;
  trace_params.num_jobs = static_cast<uint32_t>(flags.GetInt("jobs", 1000));
  trace_params.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  hawk::Trace trace = hawk::GenerateGoogleTrace(trace_params);

  // 2. Scheduler configuration. The defaults mirror the paper's §4.1
  //    parameters; we size the cluster and arrival rate for a busy cluster.
  hawk::HawkConfig config;
  config.num_workers = static_cast<uint32_t>(flags.GetInt("workers", 600));
  config.seed = trace_params.seed;

  // Keep tasks-per-job compatible with 2t probes on this cluster, then pick
  // an arrival rate that drives ~90% utilization.
  trace = hawk::CapTasksPreserveWork(trace, config.num_workers / 2);
  hawk::Rng arrival_rng(trace_params.seed);
  hawk::AssignPoissonArrivals(
      &trace, hawk::MeanInterarrivalForUtilization(trace, 0.9, config.num_workers),
      &arrival_rng);

  // 3. Run both schedulers on the same trace.
  std::printf("Simulating %zu jobs on %u workers (general partition: %u)...\n",
              trace.NumJobs(), config.num_workers, config.GeneralCount());
  const hawk::RunResult hawk_run = hawk::RunExperiment(trace, config, "hawk");
  const hawk::RunResult sparrow_run = hawk::RunExperiment(trace, config, "sparrow");

  // 4. Report.
  hawk::Table table({"scheduler", "class", "jobs", "p50 (s)", "p90 (s)", "mean (s)"});
  for (const bool long_jobs : {false, true}) {
    for (const auto* entry : {&hawk_run, &sparrow_run}) {
      const hawk::Samples runtimes = entry->RuntimesSeconds(long_jobs);
      if (runtimes.Empty()) {
        continue;
      }
      table.AddRow({entry == &hawk_run ? "hawk" : "sparrow", long_jobs ? "long" : "short",
                    std::to_string(runtimes.Count()), hawk::Table::Num(runtimes.Percentile(50)),
                    hawk::Table::Num(runtimes.Percentile(90)),
                    hawk::Table::Num(runtimes.Mean())});
    }
  }
  table.Print();

  const hawk::RunComparison cmp = hawk::CompareRuns(hawk_run, sparrow_run);
  std::printf("\nHawk vs Sparrow: short p50 ratio %.2f, short p90 ratio %.2f, "
              "long p50 ratio %.2f, long p90 ratio %.2f (lower is better)\n",
              cmp.short_jobs.p50_ratio, cmp.short_jobs.p90_ratio, cmp.long_jobs.p50_ratio,
              cmp.long_jobs.p90_ratio);
  std::printf("Median cluster utilization: hawk %.1f%%, sparrow %.1f%%\n",
              cmp.treatment_median_util * 100.0, cmp.baseline_median_util * 100.0);
  std::printf("Steals: %llu attempts, %llu successful, %llu entries moved\n",
              static_cast<unsigned long long>(hawk_run.counters.steal_attempts),
              static_cast<unsigned long long>(hawk_run.counters.steal_successes),
              static_cast<unsigned long long>(hawk_run.counters.entries_stolen));
  std::printf("Avg queueing delay: short %.1f s (hawk) vs %.1f s (sparrow)\n",
              hawk_run.counters.AvgQueueWaitSeconds(false),
              sparrow_run.counters.AvgQueueWaitSeconds(false));

  // Optional CSV export for plotting (--csv=prefix writes prefix_hawk.csv
  // and prefix_sparrow.csv with one row per job).
  if (flags.Has("csv")) {
    const std::string prefix = flags.GetString("csv", "quickstart");
    for (const auto& [suffix, run] :
         {std::pair<const char*, const hawk::RunResult*>{"_hawk.csv", &hawk_run},
          {"_sparrow.csv", &sparrow_run}}) {
      const std::string path = prefix + suffix;
      const hawk::Status status = hawk::WriteJobResultsCsv(path, *run);
      if (!status.ok()) {
        std::fprintf(stderr, "csv export failed: %s\n", status.message().c_str());
        return 1;
      }
      std::printf("Wrote %s\n", path.c_str());
    }
  }
  return 0;
}
