#!/usr/bin/env bash
# Static analysis: hawk_lint (always) plus clang-tidy (when installed).
#
# hawk_lint is the repo's own determinism/invariant linter
# (tools/hawk_lint, rules HL001-HL006 — see docs/development.md#hawk-lint).
# It is dependency-free C++17 and is built here if missing. clang-tidy
# covers the generic bug classes via the curated .clang-tidy profile; it is
# optional locally and skipped with a message when absent — CI always runs
# both (see .github/workflows/ci.yml, job `lint`).
#
# Usage:
#   scripts/lint.sh               # hawk_lint + clang-tidy (if available)
#
# Environment:
#   BUILD_DIR   build directory (default: build). Reused if configured;
#               configured here (with compile_commands.json) otherwise.
#   JOBS        parallelism (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

die() {
  echo "lint.sh: error: $*" >&2
  exit 1
}

command -v cmake > /dev/null 2>&1 \
  || die "cmake not found on PATH — install CMake >= 3.16 (see README 'Build and test')"

# Build hawk_lint (a no-op when up to date). clang-tidy needs the compilation
# database, so export it at configure time.
if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  echo "lint.sh: configuring ${BUILD_DIR}"
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    || die "CMake configure failed in '${BUILD_DIR}'"
fi
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target hawk_lint \
  || die "hawk_lint build failed — was it disabled with HAWK_BUILD_TOOLS=OFF?"

echo "lint.sh: running hawk_lint"
"${BUILD_DIR}/hawk_lint" --root=.

# clang-tidy pass — optional locally. The curated profile in .clang-tidy is
# an explicit check allowlist with WarningsAsErrors, so any diagnostic fails.
if command -v clang-tidy > /dev/null 2>&1; then
  if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
    echo "lint.sh: exporting compile_commands.json in ${BUILD_DIR}"
    cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null \
      || die "CMake re-configure for compile_commands.json failed"
  fi
  echo "lint.sh: running clang-tidy over src/"
  if command -v run-clang-tidy > /dev/null 2>&1; then
    run-clang-tidy -quiet -p "${BUILD_DIR}" -j "${JOBS}" 'src/.*\.cc$'
  else
    # Serial fallback when only the bare clang-tidy binary is installed.
    find src -name '*.cc' -print0 \
      | xargs -0 -n 1 -P "${JOBS}" clang-tidy -p "${BUILD_DIR}" --quiet
  fi
  echo "lint.sh: clang-tidy clean"
else
  echo "lint.sh: clang-tidy not found on PATH — skipping the clang-tidy pass." \
       "hawk_lint still ran; CI's lint job runs both (see .github/workflows/ci.yml)."
fi

echo "lint.sh: OK"
