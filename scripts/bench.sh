#!/usr/bin/env bash
# Driver-throughput benchmark: builds the Release bench binary and emits
# BENCH_driver.json (Google Benchmark JSON) — the repo's perf-trajectory
# baseline. Compare events/s across commits to spot hot-path regressions.
#
# Usage:
#   scripts/bench.sh                      # full run, writes BENCH_driver.json
#   scripts/bench.sh --benchmark_filter=Hawk   # extra args forwarded to the bench
#
# Environment:
#   BUILD_DIR   build directory (default: build-bench)
#   JOBS        parallelism (default: nproc)
#   OUT         output JSON path (default: BENCH_driver.json)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-bench}"
JOBS="${JOBS:-$(nproc)}"
OUT="${OUT:-BENCH_driver.json}"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release -DHAWK_BUILD_TESTS=OFF \
      -DHAWK_BUILD_EXAMPLES=OFF
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_driver_throughput

"${BUILD_DIR}/bench_driver_throughput" \
  --benchmark_out="${OUT}" --benchmark_out_format=json \
  --benchmark_counters_tabular=true "$@"

echo "Wrote ${OUT}"
