#!/usr/bin/env bash
# Benchmark artifacts: builds the Release bench binaries and emits
#   BENCH_driver.json  driver-throughput (Google Benchmark JSON) — the repo's
#                      perf-trajectory baseline; compare events/s across
#                      commits to spot hot-path regressions.
#   BENCH_sweep.json   probe-ratio (power-of-d) ablation sweep run through
#                      the experiment API — tracks result trajectories for
#                      the sweep grid, not just throughput.
#
# Usage:
#   scripts/bench.sh                      # full run, writes both artifacts
#   scripts/bench.sh --benchmark_filter=Hawk   # extra args forwarded to the
#                                              # throughput bench
#
# Environment:
#   BUILD_DIR   build directory (default: build-bench)
#   JOBS        parallelism (default: nproc)
#   OUT         throughput JSON path (default: BENCH_driver.json)
#   SWEEP_OUT   sweep JSON path (default: BENCH_sweep.json)
#   SWEEP_SCALE HAWK_BENCH_SCALE for the sweep (default: 1)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-bench}"
JOBS="${JOBS:-$(nproc)}"
OUT="${OUT:-BENCH_driver.json}"
SWEEP_OUT="${SWEEP_OUT:-BENCH_sweep.json}"
SWEEP_SCALE="${SWEEP_SCALE:-1}"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release -DHAWK_BUILD_TESTS=OFF \
      -DHAWK_BUILD_EXAMPLES=OFF
cmake --build "${BUILD_DIR}" -j "${JOBS}" \
      --target bench_driver_throughput bench_ablation_power_of_d

"${BUILD_DIR}/bench_driver_throughput" \
  --benchmark_out="${OUT}" --benchmark_out_format=json \
  --benchmark_counters_tabular=true "$@"

echo "Wrote ${OUT}"

# The bench prints "Wrote ${SWEEP_OUT}" itself on success.
"${BUILD_DIR}/bench_ablation_power_of_d" --scale="${SWEEP_SCALE}" --threads="${JOBS}" \
  --json="${SWEEP_OUT}"
