#!/usr/bin/env bash
# Benchmark artifacts: builds the Release bench binaries and emits
#   BENCH_driver.json  driver-throughput (Google Benchmark JSON) — the repo's
#                      perf-trajectory baseline; compare events/s across
#                      commits to spot hot-path regressions. Includes the
#                      1M-worker scale point (10M paper nodes / 10).
#   BENCH_shard_scaling.json  sharded-executor scaling grid: serial baseline
#                      plus shards {2,4,8} x pool threads {1,2,4} at the
#                      100k- and 1M-worker scale points. The multi-core
#                      scaling table in docs/performance.md is read off this
#                      artifact.
#   BENCH_sweep.json   probe-ratio (power-of-d) ablation sweep run through
#                      the experiment API — tracks result trajectories for
#                      the sweep grid, not just throughput.
#   BENCH_hetero_slots.json  capacity-layout (multi-slot / heterogeneous
#                      worker) sweep at fixed total slots.
#   BENCH_impl_vs_sim.json  prototype-vs-simulation grid (fig 16/17): sparrow,
#                      hawk and the externally registered hawk-lb at 1 and 4
#                      slots per node, smoke scale (wall-clock runs; compare
#                      impl_* against sim_* columns, not across commits).
#   BENCH_faults.json  fault-injection ablation: crash-rate x loss-rate x
#                      every registered scheduler, simulated curves plus a
#                      tiny real-crash prototype grid.
#   BENCH_stragglers.json  straggler ablation: straggler-rate x every
#                      registered scheduler (hawk-spec shows speculation),
#                      p50/p99 normalized runtimes, simulated curves plus a
#                      tiny real-slowdown prototype grid.
#
# See docs/performance.md for the methodology and how to read each artifact.
#
# Usage:
#   scripts/bench.sh                      # full run, writes all artifacts
#   scripts/bench.sh --benchmark_filter=Hawk   # extra args forwarded to the
#                                              # throughput bench
#
# Environment:
#   BUILD_DIR   build directory (default: build-bench). If it already holds a
#               configured build it is reused; otherwise it is configured as
#               a Release build here.
#   JOBS        parallelism (default: nproc)
#   OUT         throughput JSON path (default: BENCH_driver.json)
#   SHARD_OUT   shard-scaling JSON path (default: BENCH_shard_scaling.json)
#   SWEEP_OUT   sweep JSON path (default: BENCH_sweep.json)
#   HETERO_OUT  hetero-slots JSON path (default: BENCH_hetero_slots.json)
#   IMPL_OUT    impl-vs-sim JSON path (default: BENCH_impl_vs_sim.json)
#   FAULTS_OUT  fault-ablation JSON path (default: BENCH_faults.json)
#   STRAGGLERS_OUT  straggler-ablation JSON path (default: BENCH_stragglers.json)
#   SWEEP_SCALE HAWK_BENCH_SCALE for the sweeps (default: 1)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-bench}"
JOBS="${JOBS:-$(nproc)}"
OUT="${OUT:-BENCH_driver.json}"
SHARD_OUT="${SHARD_OUT:-BENCH_shard_scaling.json}"
SWEEP_OUT="${SWEEP_OUT:-BENCH_sweep.json}"
HETERO_OUT="${HETERO_OUT:-BENCH_hetero_slots.json}"
IMPL_OUT="${IMPL_OUT:-BENCH_impl_vs_sim.json}"
FAULTS_OUT="${FAULTS_OUT:-BENCH_faults.json}"
STRAGGLERS_OUT="${STRAGGLERS_OUT:-BENCH_stragglers.json}"
# Scale contract: HAWK_BENCH_SCALE is parsed (strictly) in exactly one
# place — bench/bench_util.h's BenchScale(). This script only routes
# SWEEP_SCALE into that env var; it never parses or validates the value
# itself, so a malformed scale fails with bench_util's message, not two
# divergent ones. SWEEP_SCALE keeps working as the documented knob and an
# already-exported HAWK_BENCH_SCALE is respected as its default.
SWEEP_SCALE="${SWEEP_SCALE:-${HAWK_BENCH_SCALE:-1}}"
export HAWK_BENCH_SCALE="${SWEEP_SCALE}"

die() {
  echo "bench.sh: error: $*" >&2
  exit 1
}

command -v cmake > /dev/null 2>&1 \
  || die "cmake not found on PATH — install CMake >= 3.16 (see README 'Build and test')"

# Configure the Release bench build only when the directory is not already a
# configured build tree; a stale or foreign directory fails loudly instead of
# being silently clobbered.
if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  if [[ -e "${BUILD_DIR}" && ! -d "${BUILD_DIR}" ]]; then
    die "BUILD_DIR '${BUILD_DIR}' exists but is not a directory"
  fi
  echo "bench.sh: configuring Release bench build in ${BUILD_DIR}"
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release -DHAWK_BUILD_TESTS=OFF \
        -DHAWK_BUILD_EXAMPLES=OFF \
    || die "CMake configure failed in '${BUILD_DIR}' — inspect the output above, or remove the directory and re-run"
fi

cmake --build "${BUILD_DIR}" -j "${JOBS}" \
      --target bench_driver_throughput bench_ablation_power_of_d bench_ablation_hetero_slots \
               bench_fig16_17_impl_vs_sim bench_ablation_faults bench_ablation_stragglers \
  || die "bench build failed in '${BUILD_DIR}'"

[[ -x "${BUILD_DIR}/bench_driver_throughput" ]] \
  || die "bench_driver_throughput did not build — was Google Benchmark found? (see README 'Build and test')"

# Two passes over one binary: the serial/multi-slot rows form the perf
# trajectory (BENCH_driver.json), the sharded grid the multi-core scaling
# artifact (BENCH_shard_scaling.json). Splitting keeps each artifact's
# comparison story clean — trajectory rows compare across commits, scaling
# rows compare within one machine's run.
"${BUILD_DIR}/bench_driver_throughput" \
  --benchmark_filter='-.*Sharded.*' \
  --benchmark_out="${OUT}" --benchmark_out_format=json \
  --benchmark_counters_tabular=true "$@"

echo "Wrote ${OUT}"

"${BUILD_DIR}/bench_driver_throughput" \
  --benchmark_filter='.*Sharded.*' \
  --benchmark_out="${SHARD_OUT}" --benchmark_out_format=json \
  --benchmark_counters_tabular=true

echo "Wrote ${SHARD_OUT}"

# The benches print "Wrote ..." themselves on success.
"${BUILD_DIR}/bench_ablation_power_of_d" --threads="${JOBS}" \
  --json="${SWEEP_OUT}"

"${BUILD_DIR}/bench_ablation_hetero_slots" --threads="${JOBS}" \
  --json="${HETERO_OUT}"

# Prototype vs simulation at smoke scale: real node-monitor threads and sleep
# tasks, so this is wall-clock bound — keep it small and serial.
"${BUILD_DIR}/bench_fig16_17_impl_vs_sim" --jobs=16 --work-seconds=3 --num-ratios=2 \
  --json="${IMPL_OUT}"

# Fault ablation: the sim grid scales with SWEEP_SCALE; the prototype half is
# wall-clock bound (real crashes + sleep tasks) and stays at smoke scale.
"${BUILD_DIR}/bench_ablation_faults" --threads="${JOBS}" \
  --proto-jobs=12 --proto-work-seconds=3 --json="${FAULTS_OUT}"

# Straggler ablation: same split — scaled sim grid, smoke-scale prototype grid
# with real slowed-down executor sleeps.
"${BUILD_DIR}/bench_ablation_stragglers" --threads="${JOBS}" \
  --proto-jobs=12 --proto-work-seconds=3 --json="${STRAGGLERS_OUT}"
