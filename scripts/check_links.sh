#!/usr/bin/env bash
# Dead-link check for the documentation tree: every relative markdown link in
# README.md and docs/*.md must point at a file (or directory) that exists in
# the repo. External links (http/https/mailto) are skipped; intra-document
# anchors are checked against the target file only (the "#..." fragment is
# stripped). CI runs this so a renamed file cannot silently orphan the docs.
#
# Usage: scripts/check_links.sh
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
checked=0

check_file() {
  local doc="$1"
  local dir
  dir="$(dirname "$doc")"
  # Markdown inline links: [text](target). Fenced code blocks are stripped
  # first (C++ lambdas like `[](const Foo&)` would otherwise parse as
  # links); tolerate several links per line.
  local targets
  targets="$(awk '/^[[:space:]]*```/ { fence = !fence; next } !fence' "$doc" \
    | grep -oE '\]\([^)]+\)' | sed -E 's/^\]\(//; s/\)$//' || true)"
  while IFS= read -r target; do
    [[ -z "$target" ]] && continue
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
      '#'*) continue ;;  # Same-document anchor.
    esac
    local path="${target%%#*}"  # Strip any anchor fragment.
    [[ -z "$path" ]] && continue
    if [[ ! -e "$dir/$path" ]]; then
      echo "DEAD LINK: $doc -> $target (resolved: $dir/$path)" >&2
      fail=1
    fi
    checked=$((checked + 1))
  done <<< "$targets"
}

docs=(README.md)
if compgen -G "docs/*.md" > /dev/null; then
  docs+=(docs/*.md)
fi

for doc in "${docs[@]}"; do
  check_file "$doc"
done

if [[ "$fail" -ne 0 ]]; then
  echo "check_links.sh: dead relative links found" >&2
  exit 1
fi
echo "check_links.sh: OK (${checked} relative links checked across ${#docs[@]} files)"
