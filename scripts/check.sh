#!/usr/bin/env bash
# Tier-1 verify: configure, build everything, run the full test suite.
#
# Usage:
#   scripts/check.sh              # full configure + build + ctest
#   scripts/check.sh -L core      # extra args are forwarded to ctest
#
# Environment:
#   BUILD_DIR   build directory (default: build)
#   JOBS        parallelism (default: nproc)
#   HAWK_WERROR ON/OFF, treat warnings as errors (default: ON)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"
HAWK_WERROR="${HAWK_WERROR:-ON}"

cmake -B "${BUILD_DIR}" -S . -DHAWK_WERROR="${HAWK_WERROR}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" "$@"

# Static analysis rides along: hawk_lint always, clang-tidy when installed.
BUILD_DIR="${BUILD_DIR}" JOBS="${JOBS}" scripts/lint.sh
