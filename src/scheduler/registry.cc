#include "src/scheduler/registry.h"

#include <utility>

#include "src/common/check.h"

namespace hawk {

SchedulerRegistry& SchedulerRegistry::Global() {
  static SchedulerRegistry* registry = new SchedulerRegistry();
  return *registry;
}

Status SchedulerRegistry::Register(std::string name, Factory factory,
                                   GeneralCountFn general_count) {
  if (name.empty()) {
    return Status::Error("scheduler name must not be empty");
  }
  if (factory == nullptr) {
    return Status::Error("scheduler '" + name + "' registered with a null factory");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] =
      entries_.try_emplace(std::move(name), Entry{std::move(factory), std::move(general_count)});
  if (!inserted) {
    return Status::Error("scheduler '" + it->first + "' is already registered");
  }
  return Status::Ok();
}

const SchedulerRegistry::Entry* SchedulerRegistry::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> SchedulerRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    names.push_back(name);
  }
  return names;
}

std::string SchedulerRegistry::JoinedNames() const {
  std::string joined;
  for (const std::string& name : Names()) {
    joined += joined.empty() ? "" : ", ";
    joined += name;
  }
  return joined;
}

SchedulerRegistration::SchedulerRegistration(std::string name, SchedulerRegistry::Factory factory,
                                             SchedulerRegistry::GeneralCountFn general_count) {
  const Status status = SchedulerRegistry::Global().Register(
      std::move(name), std::move(factory), std::move(general_count));
  HAWK_CHECK(status.ok()) << status.message();
}

}  // namespace hawk
