#include "src/scheduler/driver.h"

#include <algorithm>
#include <cmath>

namespace hawk {

SimulationDriver::SimulationDriver(const Trace* trace, const HawkConfig& config,
                                   uint32_t general_count, SchedulerPolicy* policy)
    : trace_(trace),
      config_(config),
      policy_(policy),
      cluster_(config.num_workers, general_count, config.Slots()),
      tracker_(trace),
      classifier_(config.classify_mode, config.cutoff_us, config.estimate_noise_lo,
                  config.estimate_noise_hi, Rng(config.seed).Next()),
      sched_rng_(Rng(config.seed ^ 0x5DEECE66DULL).Next()),
      fault_rng_(Rng(config.seed ^ 0x8BADF00DDEADBEEFULL ^
                     (config.fault_seed * 0x9E3779B97F4A7C15ULL))
                     .Next()) {
  HAWK_CHECK(trace != nullptr);
  HAWK_CHECK(policy != nullptr);
  retry_pending_.assign(config.num_workers, 0);
  faults_enabled_ = config.FaultsEnabled();
  net_faulty_ = config.message_loss_rate > 0.0 || config.message_delay_jitter_us > 0;
  track_exec_ = config.worker_crash_rate > 0.0;
  incarnation_.assign(config.num_workers, 0);
  down_.assign(config.num_workers, DownKind::kUp);
  if (track_exec_) {
    exec_records_.resize(config.num_workers);
  }
  // Queried on the policy before Attach-dependent state matters;
  // ShapeForRuntime is const and must not touch the context.
  policy_can_steal_ = policy->ShapeForRuntime(config).stealing;
  policy_->Attach(this);
}

void SimulationDriver::PlaceProbe(WorkerId worker, JobId job, bool is_long) {
  result_.counters.probes_placed++;
  PushDelivery(SimEvent::ProbeArrive(worker, job, is_long));
}

void SimulationDriver::PlaceTask(WorkerId worker, JobId job, TaskIndex task_index,
                                 DurationUs duration, bool is_long) {
  result_.counters.central_tasks_placed++;
  PushDelivery(SimEvent::TaskArrive(worker, job, task_index, duration, is_long));
}

void SimulationDriver::PushDelivery(SimEvent ev) {
  ev.incarnation = incarnation_[ev.worker];
  ++inflight_deliveries_;
  if (!net_faulty_) {
    events_.PushLane(kLaneNetDelay, now_ + config_.net_delay_us, ev);
    return;
  }
  // Lossy/jittery network: the retransmit chain is collapsed into a single
  // delivery pushed at the time the first surviving copy arrives (each drop
  // costs one sender timeout), and jitter draws extra uniform delay. Both
  // break the lane's monotone-timestamp contract, so faulty deliveries pay
  // for heap ordering — the fault-free path above stays O(1).
  SimTime delay = config_.net_delay_us;
  if (config_.message_loss_rate > 0.0) {
    while (fault_rng_.Bernoulli(config_.message_loss_rate)) {
      ++result_.counters.messages_dropped;
      ++result_.counters.message_retries;
      delay += RetryTimeoutUs();
    }
  }
  if (config_.message_delay_jitter_us > 0) {
    delay += fault_rng_.UniformInt(0, config_.message_delay_jitter_us);
  }
  events_.Push(now_ + delay, ev);
}

void SimulationDriver::DeliverStolen(WorkerId thief, const std::vector<QueueEntry>& entries) {
  WorkerStore& workers = cluster_.workers();
  for (const QueueEntry& entry : entries) {
    workers.Enqueue(thief, entry);
  }
  // No dispatch here: the thief is inside its own TryDispatch pass, which
  // re-examines the queue when OnWorkerIdle returns.
}

RunResult SimulationDriver::Run() {
  // Job arrivals are streamed from the already-sorted trace via a cursor
  // instead of preloading one heap event per job: the heap stays at
  // O(in-flight events) no matter how long the trace is. Tie-breaking is
  // preserved exactly: in the preloaded formulation every job arrival was
  // pushed before any other event and therefore carried the lowest sequence
  // numbers, so job arrivals won every time-tie — here the cursor side of
  // the merge wins ties (<=) for the same effect, and dynamic events keep
  // their relative sequence order. Pop order, and thus every result bit,
  // is identical.
  const std::vector<Job>& jobs = trace_->jobs();
  size_t next_job = 0;
  if (!jobs.empty()) {
    events_.Push(config_.util_sample_period_us, SimEvent::UtilSample());
    // Fault processes are armed once here and re-arm themselves until the
    // last job finishes; a zero rate never draws from the fault RNG.
    if (config_.worker_crash_rate > 0.0) {
      ScheduleFaultTick(SimEvent::Type::kCrashTick);
    }
    if (config_.worker_churn_rate > 0.0) {
      ScheduleFaultTick(SimEvent::Type::kDepartTick);
    }
  }
  while (next_job < jobs.size() || !events_.Empty()) {
    if (next_job < jobs.size() &&
        (events_.Empty() || jobs[next_job].submit_time <= events_.PeekTime())) {
      const Job& job = jobs[next_job++];
      HAWK_CHECK_GE(job.submit_time, now_) << "trace must be sorted by submit time";
      now_ = job.submit_time;
      result_.counters.events++;
      ArriveJob(job);
      continue;
    }
    auto entry = events_.Pop();
    HAWK_CHECK_GE(entry.at, now_);
    now_ = entry.at;
    result_.counters.events++;
    Dispatch(entry.payload);
  }
  HAWK_CHECK(tracker_.AllJobsFinished())
      << "simulation drained with " << trace_->NumJobs() - tracker_.jobs_finished()
      << " unfinished jobs";
  CollectResults();
  return std::move(result_);
}

void SimulationDriver::ArriveJob(const Job& job) {
  const JobClass cls = classifier_.Classify(job);
  tracker_.SetClassification(
      job.id, cls.is_long_sched, cls.is_long_metrics,
      static_cast<DurationUs>(std::llround(std::max(0.0, cls.estimate_us))));
  result_.counters.jobs++;
  policy_->OnJobArrival(job, cls);
}

void SimulationDriver::Dispatch(const SimEvent& ev) {
  WorkerStore& workers = cluster_.workers();
  switch (ev.type) {
    case SimEvent::Type::kProbeArrive: {
      --inflight_deliveries_;
      // Addressed to a dead incarnation (sent before a crash) or to a down
      // worker: the probe is gone; replace it if the job still needs one.
      if (ev.incarnation != incarnation_[ev.worker] || down_[ev.worker] != DownKind::kUp) {
        LostProbe(ev.job, ev.is_long);
        break;
      }
      QueueEntry entry = QueueEntry::Probe(ev.job, ev.is_long);
      entry.enqueue_time = now_;
      workers.Enqueue(ev.worker, entry);
      TryDispatch(ev.worker);
      break;
    }
    case SimEvent::Type::kTaskArrive: {
      --inflight_deliveries_;
      // A concrete task bound for a dead/down worker goes back to its
      // scheduler lane for re-dispatch.
      if (ev.incarnation != incarnation_[ev.worker] || down_[ev.worker] != DownKind::kUp) {
        LostTask(ev.job, ev.task_index, static_cast<DurationUs>(ev.arg), ev.is_long);
        break;
      }
      QueueEntry entry = QueueEntry::Task(ev.job, ev.task_index, ev.arg, ev.is_long);
      entry.enqueue_time = now_;
      workers.Enqueue(ev.worker, entry);
      TryDispatch(ev.worker);
      break;
    }
    case SimEvent::Type::kRequestResolve: {
      if (ev.incarnation != incarnation_[ev.worker]) {
        // The requesting slot died with the crash (ResetSlots already freed
        // it); only the probe itself is left to account for.
        LostProbe(ev.job, ev.is_long);
        break;
      }
      workers.ResolveRequest(ev.worker, ev.is_long);
      if (down_[ev.worker] != DownKind::kUp) {
        // Graceful departure while the request was in flight: release the
        // slot but decline the work.
        LostProbe(ev.job, ev.is_long);
        break;
      }
      const auto assignment = tracker_.TakeNextTask(ev.job);
      if (assignment.has_value()) {
        result_.counters.tasks_launched++;
        RecordQueueWait(ev.is_long, now_ - ev.arg);
        QueueEntry task =
            QueueEntry::Task(ev.job, assignment->task_index, assignment->duration, ev.is_long);
        task.enqueue_time = ev.arg;
        // The freed slot is re-occupied immediately, so no other queue entry
        // can dispatch off this event.
        StartExecute(ev.worker, task);
      } else {
        result_.counters.cancels++;
        TryDispatch(ev.worker);
      }
      break;
    }
    case SimEvent::Type::kTaskComplete: {
      if (ev.incarnation != incarnation_[ev.worker]) {
        // Completion of a task the crash already killed and returned; the
        // re-dispatched copy is the only live one.
        break;
      }
      workers.FinishExecute(ev.worker, ev.is_long);
      if (track_exec_) {
        DropExecRecord(ev.worker, ev.job, ev.task_index);
      }
      tracker_.OnTaskFinished(ev.job, now_);
      policy_->OnTaskFinish(ev.worker, ev.job, ev.is_long);
      if (down_[ev.worker] == DownKind::kUp) {
        TryDispatch(ev.worker);
      }
      break;
    }
    case SimEvent::Type::kUtilSample: {
      result_.utilization_samples.push_back(cluster_.Utilization());
      if (!tracker_.AllJobsFinished()) {
        events_.Push(now_ + config_.util_sample_period_us, SimEvent::UtilSample());
      }
      break;
    }
    case SimEvent::Type::kIdleRetry: {
      if (ev.incarnation != incarnation_[ev.worker]) {
        // Pre-crash timer; the pending bit was already cleared by the crash
        // and may have been re-armed since — leave it alone.
        break;
      }
      retry_pending_[ev.worker] = 0;
      if (down_[ev.worker] == DownKind::kUp && workers.HasFreeSlot(ev.worker)) {
        TryDispatch(ev.worker);
      }
      break;
    }
    case SimEvent::Type::kCrashTick:
    case SimEvent::Type::kDepartTick: {
      HandleFaultTick(ev.type);
      break;
    }
    case SimEvent::Type::kWorkerRejoin: {
      RejoinWorker(ev.worker);
      break;
    }
  }
}

void SimulationDriver::RecordQueueWait(bool is_long, DurationUs wait_us) {
  if (is_long) {
    result_.counters.long_tasks_started++;
    result_.counters.long_queue_wait_us += static_cast<uint64_t>(wait_us);
  } else {
    result_.counters.short_tasks_started++;
    result_.counters.short_queue_wait_us += static_cast<uint64_t>(wait_us);
  }
}

void SimulationDriver::TryDispatch(WorkerId worker) {
  WorkerStore& workers = cluster_.workers();
  // Fill free slots from the FIFO queue until the worker is saturated or out
  // of work. With one slot per worker this is the classic loop: pop one
  // entry, start it (or park the slot on a late-binding RTT), done.
  bool steal_tried = false;
  while (workers.HasFreeSlot(worker)) {
    if (workers.QueueEmpty(worker)) {
      // One stealing opportunity per pass; a successful steal appends
      // entries, a failed one leaves the queue empty and the slot idle.
      if (!steal_tried) {
        steal_tried = true;
        policy_->OnWorkerIdle(worker);
        if (!workers.QueueEmpty(worker)) {
          continue;
        }
      }
      // Steal-retry extension: optionally re-notify the worker later if it
      // is still idle (the paper's design stops at one round). Only armed
      // while a retry could still find work — once the last jobs are down to
      // executing tasks (nothing queued, nothing in flight, no arrivals
      // left), a timer could only poll an empty cluster.
      if (config_.steal_retry_interval_us > 0 && retry_pending_[worker] == 0 &&
          !tracker_.AllJobsFinished() && StealRetryUseful()) {
        retry_pending_[worker] = 1;
        SimEvent retry = SimEvent::IdleRetry(worker);
        retry.incarnation = incarnation_[worker];
        events_.PushLane(kLaneStealRetry, now_ + config_.steal_retry_interval_us, retry);
      }
      return;
    }
    const QueueEntry entry = workers.PopFront(worker);
    if (entry.kind == EntryKind::kTask) {
      result_.counters.tasks_launched++;
      RecordQueueWait(entry.is_long, now_ - entry.enqueue_time);
      StartExecute(worker, entry);
      continue;
    }
    // Late binding: the worker asks the job's scheduler for a task; the
    // answer (task or cancel) arrives after one round trip, occupying a slot
    // meanwhile.
    workers.BeginRequest(worker, entry.is_long);
    result_.counters.probe_requests++;
    SimEvent resolve =
        SimEvent::RequestResolve(worker, entry.job, entry.is_long, entry.enqueue_time);
    resolve.incarnation = incarnation_[worker];
    // The request/answer round trip is modeled on a reliable control channel
    // (fixed RTT, monotone lane); only probe/task deliveries see loss/jitter.
    events_.PushLane(kLaneRtt, now_ + 2 * config_.net_delay_us, resolve);
  }
}

void SimulationDriver::StartExecute(WorkerId worker, const QueueEntry& task) {
  // Partition containment (§3.4): long tasks never execute in the short
  // partition, under any scheduler or ablation.
  HAWK_CHECK(!task.is_long || cluster_.InGeneralPartition(worker))
      << "long task on short-partition worker " << worker;
  cluster_.workers().BeginExecute(worker, now_, task);
  if (track_exec_) {
    exec_records_[worker].push_back(
        ExecRecord{task.job, task.task_index, task.duration, now_, task.is_long});
  }
  policy_->OnTaskStart(worker, task);
  SimEvent complete = SimEvent::TaskComplete(worker, task.job, task.task_index, task.is_long);
  complete.incarnation = incarnation_[worker];
  events_.Push(now_ + task.duration, complete);
}

bool SimulationDriver::StealRetryUseful() const {
  if (!policy_can_steal_) {
    return false;
  }
  if (faults_enabled_) {
    // Crashes and drops can re-queue work at any time; keep polling.
    return true;
  }
  // Work can still reach some queue: jobs not yet arrived, entries queued
  // somewhere, or deliveries in flight. Request resolves and completions
  // never enqueue, so none of the remaining event kinds can create stealable
  // work once these three sources are dry.
  return result_.counters.jobs < trace_->NumJobs() || cluster_.workers().TotalQueued() > 0 ||
         inflight_deliveries_ > 0;
}

void SimulationDriver::ScheduleFaultTick(SimEvent::Type type) {
  const double rate_per_second = type == SimEvent::Type::kCrashTick
                                     ? config_.worker_crash_rate
                                     : config_.worker_churn_rate;
  // Cluster-wide Poisson process: per-worker rate times fleet size.
  const double mean_us = 1e6 / (rate_per_second * static_cast<double>(config_.num_workers));
  const auto wait = static_cast<SimTime>(std::llround(fault_rng_.Exponential(mean_us)));
  events_.Push(now_ + std::max<SimTime>(wait, 1),
               type == SimEvent::Type::kCrashTick ? SimEvent::CrashTick()
                                                  : SimEvent::DepartTick());
}

void SimulationDriver::HandleFaultTick(SimEvent::Type type) {
  if (tracker_.AllJobsFinished()) {
    // The run is over; let the process die out so the event loop drains.
    return;
  }
  // Draw the victim before re-arming so the stream reads (victim, next-wait)
  // per tick regardless of what the victim draw hits.
  const auto victim =
      static_cast<WorkerId>(fault_rng_.UniformInt(0, config_.num_workers - 1));
  const bool up = down_[victim] == DownKind::kUp;
  ScheduleFaultTick(type);
  if (!up) {
    // Already out of service; this tick fizzles (the fault process does not
    // queue up faults behind a down node).
    return;
  }
  if (type == SimEvent::Type::kCrashTick) {
    CrashWorker(victim);
  } else {
    DepartWorker(victim);
  }
}

void SimulationDriver::CrashWorker(WorkerId worker) {
  WorkerStore& workers = cluster_.workers();
  result_.counters.worker_crashes++;
  down_[worker] = DownKind::kCrashed;
  // Everything in flight to or from the dead incarnation — deliveries,
  // request resolves, completions, idle retries — is now stale.
  ++incarnation_[worker];
  // A crashed worker must not leak a pending-retry bit that would suppress
  // retries after it rejoins.
  retry_pending_[worker] = 0;
  const std::vector<QueueEntry> drained = workers.DrainQueue(worker);
  std::vector<ExecRecord> killed;
  if (track_exec_) {
    killed.swap(exec_records_[worker]);
  } else {
    HAWK_CHECK_EQ(workers.ExecutingSlots(worker), 0u)
        << "crash injection without exec tracking";
  }
  workers.ResetSlots(worker);
  // Re-dispatch after the store is consistent: the policy callbacks below
  // may place probes/tasks (even back onto this worker — they bounce off the
  // down check on arrival).
  for (const QueueEntry& entry : drained) {
    ReDispatchEntry(entry);
  }
  for (const ExecRecord& rec : killed) {
    const DurationUs ran = now_ - rec.started_at;
    // BeginExecute charged the full duration up front; the killed run only
    // delivered `ran` of it, and even that is wasted.
    workers.DeductBusyUs(worker, rec.duration - ran);
    result_.counters.wasted_work_us += static_cast<uint64_t>(ran);
    LostTask(rec.job, rec.task_index, rec.duration, rec.is_long);
  }
  events_.Push(now_ + config_.worker_downtime_us, SimEvent::WorkerRejoin(worker));
}

void SimulationDriver::DepartWorker(WorkerId worker) {
  WorkerStore& workers = cluster_.workers();
  result_.counters.worker_departures++;
  down_[worker] = DownKind::kDeparted;
  // Graceful: queued entries are bounced back to their schedulers right
  // away, executing tasks run to completion, and in-flight requests resolve
  // as declines (see kRequestResolve). No incarnation bump — completions
  // from this incarnation are still good.
  const std::vector<QueueEntry> drained = workers.DrainQueue(worker);
  for (const QueueEntry& entry : drained) {
    ReDispatchEntry(entry);
  }
  events_.Push(now_ + config_.worker_downtime_us, SimEvent::WorkerRejoin(worker));
}

void SimulationDriver::RejoinWorker(WorkerId worker) {
  down_[worker] = DownKind::kUp;
  result_.counters.worker_rejoins++;
  // Fresh and empty: give it a dispatch pass so it can steal straight away.
  TryDispatch(worker);
}

void SimulationDriver::ReDispatchEntry(const QueueEntry& entry) {
  if (entry.kind == EntryKind::kTask) {
    LostTask(entry.job, entry.task_index, entry.duration, entry.is_long);
  } else {
    LostProbe(entry.job, entry.is_long);
  }
}

void SimulationDriver::LostProbe(JobId job, bool is_long) {
  result_.counters.probes_lost++;
  policy_->OnProbeLost(job, is_long);
}

void SimulationDriver::LostTask(JobId job, TaskIndex task_index, DurationUs duration,
                                bool is_long) {
  tracker_.ReturnTask(job, TaskAssignment{task_index, duration});
  result_.counters.tasks_re_dispatched++;
  policy_->OnTaskLost(job, is_long);
}

void SimulationDriver::DropExecRecord(WorkerId worker, JobId job, TaskIndex task_index) {
  std::vector<ExecRecord>& records = exec_records_[worker];
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].job == job && records[i].task_index == task_index) {
      records[i] = records.back();
      records.pop_back();
      return;
    }
  }
  HAWK_CHECK(false) << "no exec record for job " << job << " task " << task_index
                    << " on worker " << worker;
}

void SimulationDriver::CollectResults() {
  result_.total_busy_us = cluster_.TotalBusyUs();
  result_.jobs.reserve(trace_->NumJobs());
  for (const Job& job : trace_->jobs()) {
    JobResult r;
    r.id = job.id;
    r.is_long = tracker_.IsLongMetrics(job.id);
    r.submit_time = job.submit_time;
    r.finish_time = tracker_.FinishTime(job.id);
    HAWK_CHECK_GE(r.finish_time, r.submit_time);
    r.runtime_us = r.finish_time - r.submit_time;
    result_.makespan_us = std::max(result_.makespan_us, r.finish_time);
    result_.jobs.push_back(r);
  }
}

}  // namespace hawk
