#include "src/scheduler/driver.h"

#include <algorithm>
#include <cmath>

namespace hawk {

SimulationDriver::SimulationDriver(const Trace* trace, const HawkConfig& config,
                                   uint32_t general_count, SchedulerPolicy* policy)
    : trace_(trace),
      config_(config),
      policy_(policy),
      cluster_(config.num_workers, general_count, config.Slots()),
      tracker_(trace),
      classifier_(config.classify_mode, config.cutoff_us, config.estimate_noise_lo,
                  config.estimate_noise_hi, Rng(config.seed).Next()),
      sched_rng_(Rng(config.seed ^ 0x5DEECE66DULL).Next()) {
  HAWK_CHECK(trace != nullptr);
  HAWK_CHECK(policy != nullptr);
  retry_pending_.assign(config.num_workers, 0);
  policy_->Attach(this);
}

void SimulationDriver::PlaceProbe(WorkerId worker, JobId job, bool is_long) {
  result_.counters.probes_placed++;
  events_.PushLane(kLaneNetDelay, now_ + config_.net_delay_us,
                   SimEvent::ProbeArrive(worker, job, is_long));
}

void SimulationDriver::PlaceTask(WorkerId worker, JobId job, TaskIndex task_index,
                                 DurationUs duration, bool is_long) {
  result_.counters.central_tasks_placed++;
  events_.PushLane(kLaneNetDelay, now_ + config_.net_delay_us,
                   SimEvent::TaskArrive(worker, job, task_index, duration, is_long));
}

void SimulationDriver::DeliverStolen(WorkerId thief, const std::vector<QueueEntry>& entries) {
  WorkerStore& workers = cluster_.workers();
  for (const QueueEntry& entry : entries) {
    workers.Enqueue(thief, entry);
  }
  // No dispatch here: the thief is inside its own TryDispatch pass, which
  // re-examines the queue when OnWorkerIdle returns.
}

RunResult SimulationDriver::Run() {
  // Job arrivals are streamed from the already-sorted trace via a cursor
  // instead of preloading one heap event per job: the heap stays at
  // O(in-flight events) no matter how long the trace is. Tie-breaking is
  // preserved exactly: in the preloaded formulation every job arrival was
  // pushed before any other event and therefore carried the lowest sequence
  // numbers, so job arrivals won every time-tie — here the cursor side of
  // the merge wins ties (<=) for the same effect, and dynamic events keep
  // their relative sequence order. Pop order, and thus every result bit,
  // is identical.
  const std::vector<Job>& jobs = trace_->jobs();
  size_t next_job = 0;
  if (!jobs.empty()) {
    events_.Push(config_.util_sample_period_us, SimEvent::UtilSample());
  }
  while (next_job < jobs.size() || !events_.Empty()) {
    if (next_job < jobs.size() &&
        (events_.Empty() || jobs[next_job].submit_time <= events_.PeekTime())) {
      const Job& job = jobs[next_job++];
      HAWK_CHECK_GE(job.submit_time, now_) << "trace must be sorted by submit time";
      now_ = job.submit_time;
      result_.counters.events++;
      ArriveJob(job);
      continue;
    }
    auto entry = events_.Pop();
    HAWK_CHECK_GE(entry.at, now_);
    now_ = entry.at;
    result_.counters.events++;
    Dispatch(entry.payload);
  }
  HAWK_CHECK(tracker_.AllJobsFinished())
      << "simulation drained with " << trace_->NumJobs() - tracker_.jobs_finished()
      << " unfinished jobs";
  CollectResults();
  return std::move(result_);
}

void SimulationDriver::ArriveJob(const Job& job) {
  const JobClass cls = classifier_.Classify(job);
  tracker_.SetClassification(
      job.id, cls.is_long_sched, cls.is_long_metrics,
      static_cast<DurationUs>(std::llround(std::max(0.0, cls.estimate_us))));
  result_.counters.jobs++;
  policy_->OnJobArrival(job, cls);
}

void SimulationDriver::Dispatch(const SimEvent& ev) {
  WorkerStore& workers = cluster_.workers();
  switch (ev.type) {
    case SimEvent::Type::kProbeArrive: {
      QueueEntry entry = QueueEntry::Probe(ev.job, ev.is_long);
      entry.enqueue_time = now_;
      workers.Enqueue(ev.worker, entry);
      TryDispatch(ev.worker);
      break;
    }
    case SimEvent::Type::kTaskArrive: {
      QueueEntry entry = QueueEntry::Task(ev.job, ev.task_index, ev.arg, ev.is_long);
      entry.enqueue_time = now_;
      workers.Enqueue(ev.worker, entry);
      TryDispatch(ev.worker);
      break;
    }
    case SimEvent::Type::kRequestResolve: {
      workers.ResolveRequest(ev.worker, ev.is_long);
      const auto assignment = tracker_.TakeNextTask(ev.job);
      if (assignment.has_value()) {
        result_.counters.tasks_launched++;
        RecordQueueWait(ev.is_long, now_ - ev.arg);
        QueueEntry task =
            QueueEntry::Task(ev.job, assignment->task_index, assignment->duration, ev.is_long);
        task.enqueue_time = ev.arg;
        // The freed slot is re-occupied immediately, so no other queue entry
        // can dispatch off this event.
        StartExecute(ev.worker, task);
      } else {
        result_.counters.cancels++;
        TryDispatch(ev.worker);
      }
      break;
    }
    case SimEvent::Type::kTaskComplete: {
      workers.FinishExecute(ev.worker, ev.is_long);
      tracker_.OnTaskFinished(ev.job, now_);
      policy_->OnTaskFinish(ev.worker, ev.job, ev.is_long);
      TryDispatch(ev.worker);
      break;
    }
    case SimEvent::Type::kUtilSample: {
      result_.utilization_samples.push_back(cluster_.Utilization());
      if (!tracker_.AllJobsFinished()) {
        events_.Push(now_ + config_.util_sample_period_us, SimEvent::UtilSample());
      }
      break;
    }
    case SimEvent::Type::kIdleRetry: {
      retry_pending_[ev.worker] = 0;
      if (workers.HasFreeSlot(ev.worker)) {
        TryDispatch(ev.worker);
      }
      break;
    }
  }
}

void SimulationDriver::RecordQueueWait(bool is_long, DurationUs wait_us) {
  if (is_long) {
    result_.counters.long_tasks_started++;
    result_.counters.long_queue_wait_us += static_cast<uint64_t>(wait_us);
  } else {
    result_.counters.short_tasks_started++;
    result_.counters.short_queue_wait_us += static_cast<uint64_t>(wait_us);
  }
}

void SimulationDriver::TryDispatch(WorkerId worker) {
  WorkerStore& workers = cluster_.workers();
  // Fill free slots from the FIFO queue until the worker is saturated or out
  // of work. With one slot per worker this is the classic loop: pop one
  // entry, start it (or park the slot on a late-binding RTT), done.
  bool steal_tried = false;
  while (workers.HasFreeSlot(worker)) {
    if (workers.QueueEmpty(worker)) {
      // One stealing opportunity per pass; a successful steal appends
      // entries, a failed one leaves the queue empty and the slot idle.
      if (!steal_tried) {
        steal_tried = true;
        policy_->OnWorkerIdle(worker);
        if (!workers.QueueEmpty(worker)) {
          continue;
        }
      }
      // Steal-retry extension: optionally re-notify the worker later if it
      // is still idle (the paper's design stops at one round).
      if (config_.steal_retry_interval_us > 0 && retry_pending_[worker] == 0 &&
          !tracker_.AllJobsFinished()) {
        retry_pending_[worker] = 1;
        events_.PushLane(kLaneStealRetry, now_ + config_.steal_retry_interval_us,
                         SimEvent::IdleRetry(worker));
      }
      return;
    }
    const QueueEntry entry = workers.PopFront(worker);
    if (entry.kind == EntryKind::kTask) {
      result_.counters.tasks_launched++;
      RecordQueueWait(entry.is_long, now_ - entry.enqueue_time);
      StartExecute(worker, entry);
      continue;
    }
    // Late binding: the worker asks the job's scheduler for a task; the
    // answer (task or cancel) arrives after one round trip, occupying a slot
    // meanwhile.
    workers.BeginRequest(worker, entry.is_long);
    result_.counters.probe_requests++;
    events_.PushLane(kLaneRtt, now_ + 2 * config_.net_delay_us,
                     SimEvent::RequestResolve(worker, entry.job, entry.is_long,
                                              entry.enqueue_time));
  }
}

void SimulationDriver::StartExecute(WorkerId worker, const QueueEntry& task) {
  // Partition containment (§3.4): long tasks never execute in the short
  // partition, under any scheduler or ablation.
  HAWK_CHECK(!task.is_long || cluster_.InGeneralPartition(worker))
      << "long task on short-partition worker " << worker;
  cluster_.workers().BeginExecute(worker, now_, task);
  policy_->OnTaskStart(worker, task);
  events_.Push(now_ + task.duration,
               SimEvent::TaskComplete(worker, task.job, task.task_index, task.is_long));
}

void SimulationDriver::CollectResults() {
  result_.total_busy_us = cluster_.TotalBusyUs();
  result_.jobs.reserve(trace_->NumJobs());
  for (const Job& job : trace_->jobs()) {
    JobResult r;
    r.id = job.id;
    r.is_long = tracker_.IsLongMetrics(job.id);
    r.submit_time = job.submit_time;
    r.finish_time = tracker_.FinishTime(job.id);
    HAWK_CHECK_GE(r.finish_time, r.submit_time);
    r.runtime_us = r.finish_time - r.submit_time;
    result_.makespan_us = std::max(result_.makespan_us, r.finish_time);
    result_.jobs.push_back(r);
  }
}

}  // namespace hawk
