#include "src/scheduler/driver.h"

#include <algorithm>
#include <cmath>

namespace hawk {

SimulationDriver::SimulationDriver(const Trace* trace, const HawkConfig& config,
                                   uint32_t general_count, SchedulerPolicy* policy)
    : trace_(trace),
      config_(config),
      policy_(policy),
      cluster_(config.num_workers, general_count, config.Slots()),
      tracker_(trace),
      classifier_(config.classify_mode, config.cutoff_us, config.estimate_noise_lo,
                  config.estimate_noise_hi, Rng(config.seed).Next()),
      sched_rng_(Rng(config.seed ^ 0x5DEECE66DULL).Next()),
      fault_rng_(Rng(config.seed ^ 0x8BADF00DDEADBEEFULL ^
                     (config.fault_seed * 0x9E3779B97F4A7C15ULL))
                     .Next()),
      // The retransmit-timeout estimator starts from the cost model's RTT
      // (2 x one-way delay); the floor keeps retries at or above one RTT and
      // the cap bounds the exponential backoff at 256x the historical fixed
      // timeout (4 x one-way delay).
      rto_(/*expected_us=*/2.0 * static_cast<double>(config.net_delay_us),
           /*floor_us=*/std::max<DurationUs>(1, 2 * config.net_delay_us),
           /*cap_us=*/256 * std::max<DurationUs>(1, 4 * config.net_delay_us)) {
  HAWK_CHECK(trace != nullptr);
  HAWK_CHECK(policy != nullptr);
  retry_pending_.assign(config.num_workers, 0);
  faults_enabled_ = config.FaultsEnabled();
  net_faulty_ = config.message_loss_rate > 0.0 || config.message_delay_jitter_us > 0;
  track_exec_ = config.worker_crash_rate > 0.0;
  stragglers_on_ = config.straggler_rate > 0.0;
  // The policy, not the raw config, owns the effective speculation threshold
  // (hawk-spec forces it on). Queried before Attach; must not touch ctx_.
  spec_threshold_ = policy->SpeculationThreshold(config);
  speculation_enabled_ = spec_threshold_ > 0.0;
  incarnation_.assign(config.num_workers, 0);
  down_.assign(config.num_workers, DownKind::kUp);
  if (track_exec_) {
    exec_records_.resize(config.num_workers);
  }
  // Queried on the policy before Attach-dependent state matters;
  // ShapeForRuntime is const and must not touch the context.
  policy_can_steal_ = policy->ShapeForRuntime(config).stealing;
  policy_->Attach(this);
}

void SimulationDriver::PlaceProbe(WorkerId worker, JobId job, bool is_long) {
  result_.counters.probes_placed++;
  PushDelivery(SimEvent::ProbeArrive(worker, job, is_long));
}

void SimulationDriver::PlaceTask(WorkerId worker, JobId job, TaskIndex task_index,
                                 DurationUs duration, bool is_long) {
  result_.counters.central_tasks_placed++;
  PushDelivery(SimEvent::TaskArrive(worker, job, task_index, duration, is_long));
}

void SimulationDriver::PlaceSpeculative(WorkerId worker, JobId job, TaskIndex task_index,
                                        DurationUs duration, bool is_long) {
  HAWK_CHECK(speculation_enabled_) << "PlaceSpeculative outside a speculation run";
  SpecState& st = spec_state_[TaskKey(job, task_index)];
  ++st.spec_outstanding;
  ++result_.counters.tasks_speculated;
  SimEvent ev = SimEvent::TaskArrive(worker, job, task_index, duration, is_long);
  ev.flags |= SimEvent::kFlagSpeculative;
  PushDelivery(ev);
}

void SimulationDriver::PushDelivery(SimEvent ev) {
  ev.incarnation = incarnation_[ev.worker];
  ++inflight_deliveries_;
  if (!net_faulty_) {
    events_.PushLane(kLaneNetDelay, now_ + config_.net_delay_us, ev);
    return;
  }
  // Lossy/jittery network: the retransmit chain is collapsed into a single
  // event pushed at the time the first surviving copy arrives. Each drop
  // costs one sender timeout from the adaptive (Jacobson) estimator, backed
  // off exponentially with a per-delivery deterministic jitter; the retry
  // budget cuts the chain — a spent budget surfaces the loss to the
  // recovery lanes when the final timeout fires (kFlagAbandoned) instead of
  // retrying forever. Either way the lane's monotone-timestamp contract is
  // broken, so faulty deliveries pay for heap ordering — the fault-free
  // path above stays O(1).
  const uint64_t jitter_key = delivery_seq_++;
  SimTime delay = 0;
  uint32_t drops = 0;
  bool abandoned = false;
  if (config_.message_loss_rate > 0.0) {
    while (fault_rng_.Bernoulli(config_.message_loss_rate)) {
      ++result_.counters.messages_dropped;
      DurationUs timeout = rto_.BackoffTimeoutUs(drops);
      timeout += AdaptiveTimeout::JitterUs(jitter_key, drops, timeout / 4);
      delay += timeout;
      if (drops == config_.retry_budget) {
        // That drop consumed the final permitted copy: give up.
        ++result_.counters.retries_suppressed;
        abandoned = true;
        break;
      }
      ++drops;
      ++result_.counters.message_retries;
    }
  }
  if (abandoned) {
    // Sender-local detection: the failure surfaces when the last timeout
    // fires, with no further flight time.
    ev.flags |= SimEvent::kFlagAbandoned;
    events_.Push(now_ + std::max<SimTime>(delay, 1), ev);
    return;
  }
  delay += config_.net_delay_us;
  DurationUs jitter = 0;
  if (config_.message_delay_jitter_us > 0) {
    jitter = fault_rng_.UniformInt(0, config_.message_delay_jitter_us);
    delay += jitter;
  }
  if (drops == 0) {
    // Karn's rule: only first-transmission RTTs feed the estimator.
    rto_.AddSample(2.0 * static_cast<double>(config_.net_delay_us + jitter));
  }
  events_.Push(now_ + delay, ev);
}

void SimulationDriver::DeliverStolen(WorkerId thief, const std::vector<QueueEntry>& entries) {
  WorkerStore& workers = cluster_.workers();
  for (const QueueEntry& entry : entries) {
    workers.Enqueue(thief, entry);
  }
  // No dispatch here: the thief is inside its own TryDispatch pass, which
  // re-examines the queue when OnWorkerIdle returns.
}

RunResult SimulationDriver::Run() {
  // Job arrivals are streamed from the already-sorted trace via a cursor
  // instead of preloading one heap event per job: the heap stays at
  // O(in-flight events) no matter how long the trace is. Tie-breaking is
  // preserved exactly: in the preloaded formulation every job arrival was
  // pushed before any other event and therefore carried the lowest sequence
  // numbers, so job arrivals won every time-tie — here the cursor side of
  // the merge wins ties (<=) for the same effect, and dynamic events keep
  // their relative sequence order. Pop order, and thus every result bit,
  // is identical.
  const std::vector<Job>& jobs = trace_->jobs();
  size_t next_job = 0;
  if (!jobs.empty()) {
    events_.Push(config_.util_sample_period_us, SimEvent::UtilSample());
    // Fault processes are armed once here and re-arm themselves until the
    // last job finishes; a zero rate never draws from the fault RNG.
    if (config_.worker_crash_rate > 0.0) {
      ScheduleFaultTick(SimEvent::Type::kCrashTick);
    }
    if (config_.worker_churn_rate > 0.0) {
      ScheduleFaultTick(SimEvent::Type::kDepartTick);
    }
  }
  while (next_job < jobs.size() || !events_.Empty()) {
    if (next_job < jobs.size() &&
        (events_.Empty() || jobs[next_job].submit_time <= events_.PeekTime())) {
      const Job& job = jobs[next_job++];
      HAWK_CHECK_GE(job.submit_time, now_) << "trace must be sorted by submit time";
      now_ = job.submit_time;
      result_.counters.events++;
      ArriveJob(job);
      continue;
    }
    auto entry = events_.Pop();
    HAWK_CHECK_GE(entry.at, now_);
    now_ = entry.at;
    result_.counters.events++;
    Dispatch(entry.payload);
  }
  HAWK_CHECK(tracker_.AllJobsFinished())
      << "simulation drained with " << trace_->NumJobs() - tracker_.jobs_finished()
      << " unfinished jobs";
  CollectResults();
  return std::move(result_);
}

void SimulationDriver::ArriveJob(const Job& job) {
  const JobClass cls = classifier_.Classify(job);
  tracker_.SetClassification(
      job.id, cls.is_long_sched, cls.is_long_metrics,
      static_cast<DurationUs>(std::llround(std::max(0.0, cls.estimate_us))));
  result_.counters.jobs++;
  policy_->OnJobArrival(job, cls);
}

void SimulationDriver::Dispatch(const SimEvent& ev) {
  WorkerStore& workers = cluster_.workers();
  switch (ev.type) {
    case SimEvent::Type::kProbeArrive: {
      --inflight_deliveries_;
      // Abandoned by the retry budget, addressed to a dead incarnation (sent
      // before a crash), or to a down worker: the probe is gone; replace it
      // if the job still needs one.
      if ((ev.flags & SimEvent::kFlagAbandoned) != 0 ||
          ev.incarnation != incarnation_[ev.worker] || down_[ev.worker] != DownKind::kUp) {
        LostProbe(ev.job, ev.is_long);
        break;
      }
      QueueEntry entry = QueueEntry::Probe(ev.job, ev.is_long);
      entry.enqueue_time = now_;
      workers.Enqueue(ev.worker, entry);
      TryDispatch(ev.worker);
      break;
    }
    case SimEvent::Type::kTaskArrive: {
      --inflight_deliveries_;
      // A concrete task bound for a dead/down worker — or abandoned by the
      // retry budget — goes back to its scheduler lane for re-dispatch. A
      // speculative duplicate is not tracker-owned: losing it only matters
      // if it was the last live copy.
      if ((ev.flags & SimEvent::kFlagAbandoned) != 0 ||
          ev.incarnation != incarnation_[ev.worker] || down_[ev.worker] != DownKind::kUp) {
        if ((ev.flags & SimEvent::kFlagAbandoned) != 0) {
          ++result_.counters.tasks_abandoned;
        }
        if ((ev.flags & SimEvent::kFlagSpeculative) != 0) {
          SpecCopyVanished(ev.job, ev.task_index, static_cast<DurationUs>(ev.arg), ev.is_long);
        } else {
          LostTask(ev.job, ev.task_index, static_cast<DurationUs>(ev.arg), ev.is_long);
        }
        break;
      }
      QueueEntry entry = QueueEntry::Task(ev.job, ev.task_index, ev.arg, ev.is_long);
      entry.speculative = (ev.flags & SimEvent::kFlagSpeculative) != 0;
      entry.enqueue_time = now_;
      workers.Enqueue(ev.worker, entry);
      TryDispatch(ev.worker);
      break;
    }
    case SimEvent::Type::kRequestResolve: {
      if (ev.incarnation != incarnation_[ev.worker]) {
        // The requesting slot died with the crash (ResetSlots already freed
        // it); only the probe itself is left to account for.
        LostProbe(ev.job, ev.is_long);
        break;
      }
      workers.ResolveRequest(ev.worker, ev.is_long);
      if (down_[ev.worker] != DownKind::kUp) {
        // Graceful departure while the request was in flight: release the
        // slot but decline the work.
        LostProbe(ev.job, ev.is_long);
        break;
      }
      const auto assignment = tracker_.TakeNextTask(ev.job);
      if (assignment.has_value()) {
        result_.counters.tasks_launched++;
        RecordQueueWait(ev.is_long, now_ - ev.arg);
        QueueEntry task =
            QueueEntry::Task(ev.job, assignment->task_index, assignment->duration, ev.is_long);
        task.enqueue_time = ev.arg;
        // The freed slot is re-occupied immediately, so no other queue entry
        // can dispatch off this event.
        StartExecute(ev.worker, task);
      } else {
        result_.counters.cancels++;
        TryDispatch(ev.worker);
      }
      break;
    }
    case SimEvent::Type::kTaskComplete: {
      if (ev.incarnation != incarnation_[ev.worker]) {
        // Completion of a task the crash already killed and returned; the
        // re-dispatched copy is the only live one.
        break;
      }
      workers.FinishExecute(ev.worker, ev.is_long);
      if (track_exec_) {
        DropExecRecord(ev.worker, ev.job, ev.task_index,
                       (ev.flags & SimEvent::kFlagSpeculative) != 0);
      }
      // First completion of the logical task wins; a speculation loser is
      // deduplicated here and never reaches the tracker. Finish feedback
      // mirrors the start-side rule: only the tracker-owned copy reports,
      // because only its start was charged to the policy's state.
      if (!speculation_enabled_ || SpecCompletion(ev)) {
        tracker_.OnTaskFinished(ev.job, now_);
      }
      if ((ev.flags & SimEvent::kFlagSpeculative) == 0) {
        policy_->OnTaskFinish(ev.worker, ev.job, ev.is_long);
      }
      if (down_[ev.worker] == DownKind::kUp) {
        TryDispatch(ev.worker);
      }
      break;
    }
    case SimEvent::Type::kUtilSample: {
      result_.utilization_samples.push_back(cluster_.Utilization());
      if (!tracker_.AllJobsFinished()) {
        events_.Push(now_ + config_.util_sample_period_us, SimEvent::UtilSample());
      }
      break;
    }
    case SimEvent::Type::kIdleRetry: {
      if (ev.incarnation != incarnation_[ev.worker]) {
        // Pre-crash timer; the pending bit was already cleared by the crash
        // and may have been re-armed since — leave it alone.
        break;
      }
      retry_pending_[ev.worker] = 0;
      if (down_[ev.worker] == DownKind::kUp && workers.HasFreeSlot(ev.worker)) {
        TryDispatch(ev.worker);
      }
      break;
    }
    case SimEvent::Type::kCrashTick:
    case SimEvent::Type::kDepartTick: {
      HandleFaultTick(ev.type);
      break;
    }
    case SimEvent::Type::kSpecCheck: {
      HandleSpecCheck(ev);
      break;
    }
    case SimEvent::Type::kWorkerRejoin: {
      RejoinWorker(ev.worker);
      break;
    }
  }
}

void SimulationDriver::RecordQueueWait(bool is_long, DurationUs wait_us) {
  if (is_long) {
    result_.counters.long_tasks_started++;
    result_.counters.long_queue_wait_us += static_cast<uint64_t>(wait_us);
  } else {
    result_.counters.short_tasks_started++;
    result_.counters.short_queue_wait_us += static_cast<uint64_t>(wait_us);
  }
}

void SimulationDriver::TryDispatch(WorkerId worker) {
  WorkerStore& workers = cluster_.workers();
  // Fill free slots from the FIFO queue until the worker is saturated or out
  // of work. With one slot per worker this is the classic loop: pop one
  // entry, start it (or park the slot on a late-binding RTT), done.
  bool steal_tried = false;
  while (workers.HasFreeSlot(worker)) {
    if (workers.QueueEmpty(worker)) {
      // One stealing opportunity per pass; a successful steal appends
      // entries, a failed one leaves the queue empty and the slot idle.
      if (!steal_tried) {
        steal_tried = true;
        policy_->OnWorkerIdle(worker);
        if (!workers.QueueEmpty(worker)) {
          continue;
        }
      }
      // Steal-retry extension: optionally re-notify the worker later if it
      // is still idle (the paper's design stops at one round). Only armed
      // while a retry could still find work — once the last jobs are down to
      // executing tasks (nothing queued, nothing in flight, no arrivals
      // left), a timer could only poll an empty cluster.
      if (config_.steal_retry_interval_us > 0 && retry_pending_[worker] == 0 &&
          !tracker_.AllJobsFinished() && StealRetryUseful()) {
        retry_pending_[worker] = 1;
        SimEvent retry = SimEvent::IdleRetry(worker);
        retry.incarnation = incarnation_[worker];
        events_.PushLane(kLaneStealRetry, now_ + config_.steal_retry_interval_us, retry);
      }
      return;
    }
    const QueueEntry entry = workers.PopFront(worker);
    if (entry.kind == EntryKind::kTask) {
      // Speculative duplicates are accounted in tasks_speculated, not
      // tasks_launched, so `tasks_launched == trace tasks` holds for every
      // scheduler; their queue wait is duplicate overhead, not job latency.
      if (!entry.speculative) {
        result_.counters.tasks_launched++;
        RecordQueueWait(entry.is_long, now_ - entry.enqueue_time);
      }
      StartExecute(worker, entry);
      continue;
    }
    // Late binding: the worker asks the job's scheduler for a task; the
    // answer (task or cancel) arrives after one round trip, occupying a slot
    // meanwhile.
    workers.BeginRequest(worker, entry.is_long);
    result_.counters.probe_requests++;
    SimEvent resolve =
        SimEvent::RequestResolve(worker, entry.job, entry.is_long, entry.enqueue_time);
    resolve.incarnation = incarnation_[worker];
    // The request/answer round trip is modeled on a reliable control channel
    // (fixed RTT, monotone lane); only probe/task deliveries see loss/jitter.
    events_.PushLane(kLaneRtt, now_ + 2 * config_.net_delay_us, resolve);
  }
}

void SimulationDriver::StartExecute(WorkerId worker, const QueueEntry& task) {
  // Partition containment (§3.4): long tasks never execute in the short
  // partition, under any scheduler or ablation.
  HAWK_CHECK(!task.is_long || cluster_.InGeneralPartition(worker))
      << "long task on short-partition worker " << worker;
  // Straggler injection: a stricken copy drags for slowdown x its duration.
  // The stretch is real occupancy (charged to busy) but not useful work, so
  // it is pre-charged to wasted here; a crash that kills the copy early
  // corrects the pre-charge (see CrashWorker).
  DurationUs actual = task.duration;
  if (stragglers_on_ && fault_rng_.Bernoulli(config_.straggler_rate)) {
    actual = std::max(task.duration,
                      static_cast<DurationUs>(std::llround(
                          static_cast<double>(task.duration) *
                          config_.straggler_slowdown_factor)));
    result_.counters.wasted_work_us += static_cast<uint64_t>(actual - task.duration);
  }
  QueueEntry charged = task;
  charged.duration = actual;
  cluster_.workers().BeginExecute(worker, now_, charged);
  if (track_exec_) {
    exec_records_[worker].push_back(ExecRecord{task.job, task.task_index, task.duration,
                                               actual, now_, task.is_long, task.speculative});
  }
  // The policy sees the nominal duration: a straggler is indistinguishable
  // from a healthy task at start time, exactly as on a real cluster.
  // Speculative duplicates are invisible to execution feedback — a
  // centralized waiting-time queue never assigned them, so a start charge
  // for one would underflow the backlog of whatever worker runs the copy.
  if (!task.speculative) {
    policy_->OnTaskStart(worker, task);
  }
  if (speculation_enabled_ && !task.speculative) {
    // Schedule the straggling check only when this copy will provably still
    // be running when it fires — otherwise the completion beats it and the
    // check could only no-op.
    const DurationUs estimate = tracker_.EstimateUs(task.job);
    if (estimate > 0) {
      const auto delay = std::max<SimTime>(
          1, static_cast<SimTime>(
                 std::llround(spec_threshold_ * static_cast<double>(estimate))));
      if (delay < actual && spec_state_.find(TaskKey(task.job, task.task_index)) ==
                                spec_state_.end()) {
        SimEvent check =
            SimEvent::SpecCheck(worker, task.job, task.task_index, task.duration, task.is_long);
        check.incarnation = incarnation_[worker];
        events_.Push(now_ + delay, check);
      }
    }
  }
  SimEvent complete =
      SimEvent::TaskComplete(worker, task.job, task.task_index, task.duration, task.is_long);
  if (task.speculative) {
    complete.flags |= SimEvent::kFlagSpeculative;
  }
  complete.incarnation = incarnation_[worker];
  events_.Push(now_ + actual, complete);
}

bool SimulationDriver::StealRetryUseful() const {
  if (!policy_can_steal_) {
    return false;
  }
  if (faults_enabled_) {
    // Crashes and drops can re-queue work at any time; keep polling.
    return true;
  }
  // Work can still reach some queue: jobs not yet arrived, entries queued
  // somewhere, or deliveries in flight. Request resolves and completions
  // never enqueue, so none of the remaining event kinds can create stealable
  // work once these three sources are dry.
  return result_.counters.jobs < trace_->NumJobs() || cluster_.workers().TotalQueued() > 0 ||
         inflight_deliveries_ > 0;
}

void SimulationDriver::ScheduleFaultTick(SimEvent::Type type) {
  const double rate_per_second = type == SimEvent::Type::kCrashTick
                                     ? config_.worker_crash_rate
                                     : config_.worker_churn_rate;
  // Cluster-wide Poisson process: per-worker rate times fleet size.
  const double mean_us = 1e6 / (rate_per_second * static_cast<double>(config_.num_workers));
  const auto wait = static_cast<SimTime>(std::llround(fault_rng_.Exponential(mean_us)));
  events_.Push(now_ + std::max<SimTime>(wait, 1),
               type == SimEvent::Type::kCrashTick ? SimEvent::CrashTick()
                                                  : SimEvent::DepartTick());
}

void SimulationDriver::HandleFaultTick(SimEvent::Type type) {
  if (tracker_.AllJobsFinished()) {
    // The run is over; let the process die out so the event loop drains.
    return;
  }
  // Draw the victim before re-arming so the stream reads (victim, next-wait)
  // per tick regardless of what the victim draw hits.
  const auto victim =
      static_cast<WorkerId>(fault_rng_.UniformInt(0, config_.num_workers - 1));
  const bool up = down_[victim] == DownKind::kUp;
  ScheduleFaultTick(type);
  if (!up) {
    // Already out of service; this tick fizzles (the fault process does not
    // queue up faults behind a down node).
    return;
  }
  if (type == SimEvent::Type::kCrashTick) {
    CrashWorker(victim);
  } else {
    DepartWorker(victim);
  }
}

void SimulationDriver::CrashWorker(WorkerId worker) {
  WorkerStore& workers = cluster_.workers();
  result_.counters.worker_crashes++;
  down_[worker] = DownKind::kCrashed;
  // Everything in flight to or from the dead incarnation — deliveries,
  // request resolves, completions, idle retries — is now stale.
  ++incarnation_[worker];
  // A crashed worker must not leak a pending-retry bit that would suppress
  // retries after it rejoins.
  retry_pending_[worker] = 0;
  const std::vector<QueueEntry> drained = workers.DrainQueue(worker);
  std::vector<ExecRecord> killed;
  if (track_exec_) {
    killed.swap(exec_records_[worker]);
  } else {
    HAWK_CHECK_EQ(workers.ExecutingSlots(worker), 0u)
        << "crash injection without exec tracking";
  }
  workers.ResetSlots(worker);
  // Re-dispatch after the store is consistent: the policy callbacks below
  // may place probes/tasks (even back onto this worker — they bounce off the
  // down check on arrival).
  for (const QueueEntry& entry : drained) {
    ReDispatchEntry(entry);
  }
  for (const ExecRecord& rec : killed) {
    const DurationUs ran = now_ - rec.started_at;
    // BeginExecute charged the full (possibly straggler-stretched) duration
    // up front; the killed run only delivered `ran` of it, and even that is
    // wasted. A straggler's stretch was already pre-charged to wasted at
    // start, so the correction nets the copy's waste to exactly `ran`.
    workers.DeductBusyUs(worker, rec.actual_duration - ran);
    const int64_t waste_delta = ran - (rec.actual_duration - rec.duration);
    result_.counters.wasted_work_us = static_cast<uint64_t>(
        static_cast<int64_t>(result_.counters.wasted_work_us) + waste_delta);
    if (rec.speculative) {
      SpecCopyVanished(rec.job, rec.task_index, rec.duration, rec.is_long);
      continue;
    }
    if (speculation_enabled_) {
      const uint64_t key = TaskKey(rec.job, rec.task_index);
      auto it = spec_state_.find(key);
      if (it != spec_state_.end()) {
        // The primary died while duplicate machinery is live: if a duplicate
        // is still out there (or the task already finished), it owns the
        // outcome; only a fully orphaned task re-enters the lost-task lane.
        SpecState& st = it->second;
        st.primary_owned = false;
        if (!st.done && st.spec_outstanding == 0) {
          st.primary_owned = true;
          LostTask(rec.job, rec.task_index, rec.duration, rec.is_long);
        }
        MaybeEraseSpec(key);
        continue;
      }
    }
    LostTask(rec.job, rec.task_index, rec.duration, rec.is_long);
  }
  events_.Push(now_ + config_.worker_downtime_us, SimEvent::WorkerRejoin(worker));
}

void SimulationDriver::DepartWorker(WorkerId worker) {
  WorkerStore& workers = cluster_.workers();
  result_.counters.worker_departures++;
  down_[worker] = DownKind::kDeparted;
  // Graceful: queued entries are bounced back to their schedulers right
  // away, executing tasks run to completion, and in-flight requests resolve
  // as declines (see kRequestResolve). No incarnation bump — completions
  // from this incarnation are still good.
  const std::vector<QueueEntry> drained = workers.DrainQueue(worker);
  for (const QueueEntry& entry : drained) {
    ReDispatchEntry(entry);
  }
  events_.Push(now_ + config_.worker_downtime_us, SimEvent::WorkerRejoin(worker));
}

void SimulationDriver::RejoinWorker(WorkerId worker) {
  down_[worker] = DownKind::kUp;
  result_.counters.worker_rejoins++;
  // Fresh and empty: give it a dispatch pass so it can steal straight away.
  TryDispatch(worker);
}

void SimulationDriver::ReDispatchEntry(const QueueEntry& entry) {
  if (entry.kind == EntryKind::kTask) {
    if (entry.speculative) {
      SpecCopyVanished(entry.job, entry.task_index, entry.duration, entry.is_long);
    } else {
      LostTask(entry.job, entry.task_index, entry.duration, entry.is_long);
    }
  } else {
    LostProbe(entry.job, entry.is_long);
  }
}

void SimulationDriver::LostProbe(JobId job, bool is_long) {
  result_.counters.probes_lost++;
  policy_->OnProbeLost(job, is_long);
}

void SimulationDriver::LostTask(JobId job, TaskIndex task_index, DurationUs duration,
                                bool is_long) {
  tracker_.ReturnTask(job, TaskAssignment{task_index, duration});
  result_.counters.tasks_re_dispatched++;
  policy_->OnTaskLost(job, is_long);
}

void SimulationDriver::HandleSpecCheck(const SimEvent& ev) {
  if (ev.incarnation != incarnation_[ev.worker]) {
    // The watched copy died with its worker; crash re-dispatch owns recovery.
    return;
  }
  const uint64_t key = TaskKey(ev.job, ev.task_index);
  if (spec_state_.find(key) != spec_state_.end()) {
    // Already speculated (at most one duplicate decision per logical task).
    return;
  }
  // Checks are only scheduled when the copy outlives the threshold, so the
  // primary is provably still running here: hand the placement decision to
  // the policy. State is created by PlaceSpeculative, so a policy that
  // declines leaves no trace.
  policy_->OnTaskStraggling(ev.job, ev.task_index, static_cast<DurationUs>(ev.arg), ev.is_long);
}

void SimulationDriver::SpecCopyVanished(JobId job, TaskIndex task_index, DurationUs duration,
                                        bool is_long) {
  const uint64_t key = TaskKey(job, task_index);
  auto it = spec_state_.find(key);
  HAWK_CHECK(it != spec_state_.end()) << "speculative copy of job " << job << " task "
                                      << task_index << " has no state";
  SpecState& st = it->second;
  HAWK_CHECK_GT(st.spec_outstanding, 0u);
  --st.spec_outstanding;
  if (!st.done && st.spec_outstanding == 0 && !st.primary_owned) {
    // The duplicate was the last live copy: ownership reverts to the normal
    // lost-task lane so the task still completes.
    st.primary_owned = true;
    LostTask(job, task_index, duration, is_long);
  }
  MaybeEraseSpec(key);
}

bool SimulationDriver::SpecCompletion(const SimEvent& ev) {
  const uint64_t key = TaskKey(ev.job, ev.task_index);
  const bool speculative = (ev.flags & SimEvent::kFlagSpeculative) != 0;
  auto it = spec_state_.find(key);
  if (it == spec_state_.end()) {
    HAWK_CHECK(!speculative) << "speculative completion without state";
    return true;  // Never speculated: the normal single-copy path.
  }
  SpecState& st = it->second;
  if (speculative) {
    HAWK_CHECK_GT(st.spec_outstanding, 0u);
    --st.spec_outstanding;
  } else {
    st.primary_owned = false;
  }
  const bool first = !st.done;
  if (first) {
    st.done = true;
    if (speculative) {
      ++result_.counters.speculative_wins;
    }
  } else {
    // The losing copy's nominal work is pure waste (its straggler stretch,
    // if any, was already charged at start).
    ++result_.counters.duplicate_completions;
    result_.counters.speculative_wasted_us += static_cast<uint64_t>(ev.arg);
    result_.counters.wasted_work_us += static_cast<uint64_t>(ev.arg);
  }
  MaybeEraseSpec(key);
  return first;
}

void SimulationDriver::MaybeEraseSpec(uint64_t key) {
  auto it = spec_state_.find(key);
  if (it != spec_state_.end() && it->second.spec_outstanding == 0 &&
      !it->second.primary_owned) {
    HAWK_CHECK(it->second.done) << "speculation state dropped with the task unfinished";
    spec_state_.erase(it);
  }
}

void SimulationDriver::DropExecRecord(WorkerId worker, JobId job, TaskIndex task_index,
                                      bool speculative) {
  // The speculative flag disambiguates the (rare but legal) case of a
  // primary and its duplicate executing on the same worker.
  std::vector<ExecRecord>& records = exec_records_[worker];
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].job == job && records[i].task_index == task_index &&
        records[i].speculative == speculative) {
      records[i] = records.back();
      records.pop_back();
      return;
    }
  }
  HAWK_CHECK(false) << "no exec record for job " << job << " task " << task_index
                    << " on worker " << worker;
}

void SimulationDriver::CollectResults() {
  result_.total_busy_us = cluster_.TotalBusyUs();
  result_.jobs.reserve(trace_->NumJobs());
  for (const Job& job : trace_->jobs()) {
    JobResult r;
    r.id = job.id;
    r.is_long = tracker_.IsLongMetrics(job.id);
    r.submit_time = job.submit_time;
    r.finish_time = tracker_.FinishTime(job.id);
    HAWK_CHECK_GE(r.finish_time, r.submit_time);
    r.runtime_us = r.finish_time - r.submit_time;
    result_.makespan_us = std::max(result_.makespan_us, r.finish_time);
    result_.jobs.push_back(r);
  }
}

}  // namespace hawk
