// Scheduler policy interface.
//
// A policy decides *where* probes and tasks go; the simulation driver owns
// *when* things happen (network delays, queue mechanics, late binding) and
// exposes the minimal placement API below. The same policies are reused by
// the threaded prototype runtime through an equivalent context.
#ifndef HAWK_SCHEDULER_POLICY_H_
#define HAWK_SCHEDULER_POLICY_H_

#include <string_view>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/job_tracker.h"
#include "src/cluster/results.h"
#include "src/common/random.h"
#include "src/core/job_classifier.h"
#include "src/workload/job.h"

namespace hawk {

class SchedulerContext {
 public:
  virtual ~SchedulerContext() = default;

  virtual SimTime Now() const = 0;
  virtual Rng& SchedRng() = 0;
  virtual Cluster& GetCluster() = 0;
  virtual JobTracker& Tracker() = 0;
  virtual RunCounters& Counters() = 0;

  // Sends a probe for `job` to `worker`; arrives after one network delay.
  virtual void PlaceProbe(WorkerId worker, JobId job, bool is_long) = 0;

  // Sends a concrete task to `worker`; arrives after one network delay.
  virtual void PlaceTask(WorkerId worker, JobId job, TaskIndex task_index, DurationUs duration,
                         bool is_long) = 0;

  // Appends stolen entries to the thief's queue. Only call for the worker the
  // current OnWorkerIdle() notification is about; the driver re-examines that
  // queue when the notification returns (stealing is free in the simulation
  // cost model, §4.1).
  virtual void DeliverStolen(WorkerId thief, const std::vector<QueueEntry>& entries) = 0;
};

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  virtual void Attach(SchedulerContext* ctx) { ctx_ = ctx; }

  // A job arrived; `cls` carries the scheduling and metrics classifications
  // and the (possibly noisy) runtime estimate.
  virtual void OnJobArrival(const Job& job, const JobClass& cls) = 0;

  // `worker` ran out of work (empty queue, nothing executing). Policies may
  // steal here via DeliverStolen().
  virtual void OnWorkerIdle(WorkerId worker) { (void)worker; }

  // Execution feedback — in the real system, node monitors report these to
  // the schedulers; centralized components use them to keep their waiting-
  // time view synchronized with reality (§3.7).
  virtual void OnTaskStart(WorkerId worker, const QueueEntry& task) {
    (void)worker;
    (void)task;
  }
  virtual void OnTaskFinish(WorkerId worker, JobId job, bool is_long) {
    (void)worker;
    (void)job;
    (void)is_long;
  }

  virtual std::string_view Name() const = 0;

 protected:
  SchedulerContext* ctx_ = nullptr;
};

}  // namespace hawk

#endif  // HAWK_SCHEDULER_POLICY_H_
