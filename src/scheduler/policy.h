// Scheduler policy interface.
//
// A policy decides *where* probes and tasks go; the simulation driver owns
// *when* things happen (network delays, queue mechanics, late binding) and
// exposes the minimal placement API below. The same policies are reused by
// the threaded prototype runtime through an equivalent context.
#ifndef HAWK_SCHEDULER_POLICY_H_
#define HAWK_SCHEDULER_POLICY_H_

#include <string_view>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/job_tracker.h"
#include "src/cluster/results.h"
#include "src/common/random.h"
#include "src/core/job_classifier.h"
#include "src/core/stealing_policy.h"
#include "src/workload/job.h"

namespace hawk {

class SchedulerContext {
 public:
  virtual ~SchedulerContext() = default;

  virtual SimTime Now() const = 0;
  virtual Rng& SchedRng() = 0;
  virtual Cluster& GetCluster() = 0;
  virtual JobTracker& Tracker() = 0;
  virtual RunCounters& Counters() = 0;

  // Sends a probe for `job` to `worker`; arrives after one network delay.
  virtual void PlaceProbe(WorkerId worker, JobId job, bool is_long) = 0;

  // Sends a concrete task to `worker`; arrives after one network delay.
  virtual void PlaceTask(WorkerId worker, JobId job, TaskIndex task_index, DurationUs duration,
                         bool is_long) = 0;

  // Sends a *speculative duplicate* of an already-running task to `worker`.
  // The copy is outside JobTracker ownership: the first completion of the
  // pair wins, the loser is deduplicated and counted as speculative waste.
  // Only called from SchedulerPolicy::OnTaskStraggling implementations.
  virtual void PlaceSpeculative(WorkerId worker, JobId job, TaskIndex task_index,
                                DurationUs duration, bool is_long) = 0;

  // Appends stolen entries to the thief's queue. Only call for the worker the
  // current OnWorkerIdle() notification is about; the driver re-examines that
  // queue when the notification returns (stealing is free in the simulation
  // cost model, §4.1).
  virtual void DeliverStolen(WorkerId thief, const std::vector<QueueEntry>& entries) = 0;
};

// How the threaded prototype runtime (src/runtime/) realizes a policy's
// control plane. The simulator drives a policy's placement decisions
// synchronously against shared cluster state; the prototype cannot — its
// state lives across node-monitor threads — so a policy instead *describes*
// its control-plane shape and the runtime assembles the matching frontends,
// backend, and stealing configuration from the shared src/core/ components.
// Probe placement is uniform over the declared slot span (the paper's
// §3.5 mechanism); a policy whose simulated placement inspects live queue
// state (e.g. the "hawk-lb" example) degrades to uniform probing on the
// prototype — exactly the paper's argument that such state is impractical
// to keep fresh over a real network.
struct RuntimeShape {
  // Slot spans, resolved against the runtime's cluster layout. The general
  // partition is a slot-id prefix, the short partition the complementary
  // suffix (see Cluster).
  enum class ProbeSpan : uint8_t { kWholeCluster, kGeneralPartition, kShortPartition };

  // Long jobs go to the centralized backend (§3.7 waiting-time queue over
  // the general partition). Off: they are probed over long_probe_span.
  bool centralized_long = true;
  // Short jobs go to the centralized backend too (the §4.5 baseline).
  bool centralized_short = false;
  // Idle node monitors steal blocked short work (§3.6).
  bool stealing = true;
  // Steal-victim contact order (kDChoice degrades to kRandom on the
  // prototype: its static layout cluster carries no live queue state).
  StealingPolicy::VictimSelection victim_selection = StealingPolicy::VictimSelection::kRandom;
  ProbeSpan short_probe_span = ProbeSpan::kWholeCluster;
  ProbeSpan long_probe_span = ProbeSpan::kGeneralPartition;
};

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  virtual void Attach(SchedulerContext* ctx) { ctx_ = ctx; }

  // Control-plane shape for the prototype runtime. The default derives a
  // Hawk-family shape from the config's §4.4 component toggles, which is
  // also right for externally registered Hawk variants; non-hybrid policies
  // (Sparrow, centralized, split) override. Called on a fresh, unattached
  // instance — implementations must not touch ctx_.
  virtual RuntimeShape ShapeForRuntime(const HawkConfig& config) const {
    RuntimeShape shape;
    shape.centralized_long = config.use_centralized_long;
    shape.stealing = config.use_stealing && config.steal_cap > 0;
    return shape;
  }

  // A job arrived; `cls` carries the scheduling and metrics classifications
  // and the (possibly noisy) runtime estimate.
  virtual void OnJobArrival(const Job& job, const JobClass& cls) = 0;

  // `worker` ran out of work (empty queue, nothing executing). Policies may
  // steal here via DeliverStolen().
  virtual void OnWorkerIdle(WorkerId worker) { (void)worker; }

  // Execution feedback — in the real system, node monitors report these to
  // the schedulers; centralized components use them to keep their waiting-
  // time view synchronized with reality (§3.7).
  virtual void OnTaskStart(WorkerId worker, const QueueEntry& task) {
    (void)worker;
    (void)task;
  }
  virtual void OnTaskFinish(WorkerId worker, JobId job, bool is_long) {
    (void)worker;
    (void)job;
    (void)is_long;
  }

  // --- fault re-dispatch ---------------------------------------------------
  // Only invoked by the fault layer; fault-free runs never call these.

  // A placed task died (its worker crashed, or its delivery was invalidated)
  // and was handed back through JobTracker::ReturnTask just before this call.
  // The policy must give the job a fresh path to a grant. The default
  // re-probes over the span the job's class is normally probed over (long ->
  // general partition, short -> whole cluster), which is right for every
  // probe-based policy; centralized policies override and re-place instead.
  virtual void OnTaskLost(JobId job, bool is_long) { ReProbe(job, is_long); }

  // A probe died with its worker (queued there, in flight to it, or parked
  // on a late-binding request). A replacement is probed only while the job
  // still has unassigned tasks — surplus probes would just resolve to
  // cancels, so they are not replaced.
  virtual void OnProbeLost(JobId job, bool is_long) {
    if (ctx_->Tracker().AllTasksAssigned(job)) {
      return;
    }
    ReProbe(job, is_long);
  }

  // --- speculative re-execution --------------------------------------------
  // Effective speculation threshold under `config`; <= 0 disables the
  // subsystem. The default passes the config knob through; the "hawk-spec"
  // registered variant overrides with a default-on threshold so speculation
  // falls out of the registry without touching the config. Called on a
  // fresh, unattached instance — implementations must not touch ctx_.
  virtual double SpeculationThreshold(const HawkConfig& config) const {
    return config.speculation_threshold;
  }

  // A running copy of (job, task_index) has exceeded
  // speculation_threshold x the job's estimated task runtime and the driver
  // decided to speculate. The policy picks where the duplicate goes and
  // places it via PlaceSpeculative; the default mirrors ReProbe's span rule
  // (long -> general partition, short -> anywhere), choosing a uniformly
  // random slot. Centralized placements are deliberately not reused here:
  // a straggler's duplicate must not queue behind the same backlog that
  // delayed the original, so a random lightly-loaded node is the point.
  virtual void OnTaskStraggling(JobId job, TaskIndex task_index, DurationUs duration,
                                bool is_long) {
    Cluster& cluster = ctx_->GetCluster();
    const uint64_t span = is_long ? cluster.GeneralSlots() : cluster.TotalSlots();
    const auto slot = static_cast<SlotId>(ctx_->SchedRng().NextBounded(span));
    ctx_->PlaceSpeculative(cluster.WorkerOfSlot(slot), job, task_index, duration, is_long);
  }

  virtual std::string_view Name() const = 0;

 protected:
  // One replacement probe on a uniformly random slot; long jobs stay inside
  // the general partition (§3.4 containment), short jobs may go anywhere.
  void ReProbe(JobId job, bool is_long) {
    Cluster& cluster = ctx_->GetCluster();
    const uint64_t span = is_long ? cluster.GeneralSlots() : cluster.TotalSlots();
    const auto slot = static_cast<SlotId>(ctx_->SchedRng().NextBounded(span));
    ctx_->PlaceProbe(cluster.WorkerOfSlot(slot), job, is_long);
  }

  SchedulerContext* ctx_ = nullptr;
};

}  // namespace hawk

#endif  // HAWK_SCHEDULER_POLICY_H_
