#include "src/scheduler/experiment.h"

#include <cmath>
#include <cstdio>
#include <memory>

#include "src/common/check.h"
#include "src/core/hawk_scheduler.h"
#include "src/scheduler/centralized.h"
#include "src/scheduler/driver.h"
#include "src/scheduler/registry.h"
#include "src/scheduler/sharded_driver.h"
#include "src/scheduler/sparrow.h"
#include "src/scheduler/split.h"
#include "src/scheduler/sweep_runner.h"

namespace hawk {
namespace {

// The four built-in schedulers self-register through the same public
// mechanism external variants use (see examples/custom_policy.cpp). Any
// binary that runs experiments links this translation unit, so the names are
// always available to RunExperiment/RunSweep.
const SchedulerRegistration kRegisterSparrow(
    std::string(kSchedulerSparrow),
    [](const HawkConfig& config) -> std::unique_ptr<SchedulerPolicy> {
      return std::make_unique<SparrowPolicy>(config.probe_ratio);
    });

const SchedulerRegistration kRegisterCentralized(
    std::string(kSchedulerCentralized),
    [](const HawkConfig&) -> std::unique_ptr<SchedulerPolicy> {
      return std::make_unique<CentralizedPolicy>();
    });

const SchedulerRegistration kRegisterHawk(
    std::string(kSchedulerHawk),
    [](const HawkConfig& config) -> std::unique_ptr<SchedulerPolicy> {
      return std::make_unique<HawkPolicy>(config);
    },
    [](const HawkConfig& config) { return config.GeneralCount(); });

// Stealing variant (ROADMAP next-candidate): Hawk with power-of-d-choices
// victim selection — the steal sample is contacted most-loaded-first instead
// of in draw order, trading nothing for fewer victim probes per success.
// Swept beside plain hawk in bench_ablation_steal_retry.
const SchedulerRegistration kRegisterHawkDChoice(
    "hawk-dchoice",
    [](const HawkConfig& config) -> std::unique_ptr<SchedulerPolicy> {
      return std::make_unique<HawkPolicy>(config, StealingPolicy::VictimSelection::kDChoice);
    },
    [](const HawkConfig& config) { return config.GeneralCount(); });

// Adaptive-recovery variant: Hawk with speculative re-execution on by
// default (see HawkSpecPolicy::SpeculationThreshold). Swept beside plain
// hawk in bench_ablation_stragglers.
const SchedulerRegistration kRegisterHawkSpec(
    "hawk-spec",
    [](const HawkConfig& config) -> std::unique_ptr<SchedulerPolicy> {
      return std::make_unique<HawkSpecPolicy>(config);
    },
    [](const HawkConfig& config) { return config.GeneralCount(); });

// Late-binding centralized hybrid (ROADMAP carry-over): the long-job lane
// places probes on the minimum-wait workers and lets the §3.5 request
// machinery bind tasks at service time. Swept beside hawk and centralized in
// bench_fig8_9_vs_centralized.
const SchedulerRegistration kRegisterHawkLateBind(
    "hawk-latebind",
    [](const HawkConfig& config) -> std::unique_ptr<SchedulerPolicy> {
      return std::make_unique<HawkLateBindPolicy>(config);
    },
    [](const HawkConfig& config) { return config.GeneralCount(); });

// The empty-short-partition precondition is enforced in
// SplitClusterPolicy::Attach (simulation) and by RunPrototype's span check
// (runtime, as a clean Status) — not here: factories must stay abort-free so
// the prototype can construct a policy just to read its RuntimeShape.
const SchedulerRegistration kRegisterSplit(
    std::string(kSchedulerSplit),
    [](const HawkConfig& config) -> std::unique_ptr<SchedulerPolicy> {
      return std::make_unique<SplitClusterPolicy>(config.probe_ratio);
    },
    [](const HawkConfig& config) { return config.GeneralCount(); });

// Axis-label value formatting: integers print bare ("probe_ratio=4"),
// everything else compactly ("short_partition_fraction=0.17").
std::string FormatAxisValue(double value) {
  char buf[32];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%g", value);
  }
  return buf;
}

}  // namespace

SweepSpec& SweepSpec::Vary(std::string_view field, std::vector<double> values) {
  // Surface typos at declaration time, not after an hour of sweeping.
  {
    HawkConfig probe;
    const Status status = SetConfigField(&probe, field, 0.0);
    HAWK_CHECK(status.ok()) << status.message();
  }
  Axis axis;
  axis.name = std::string(field);
  axis.points.reserve(values.size());
  for (const double value : values) {
    AxisPoint point;
    point.label = axis.name + "=" + FormatAxisValue(value);
    point.apply = [name = axis.name, value](ExperimentSpec& spec) {
      const Status status = SetConfigField(&spec.config, name, value);
      HAWK_CHECK(status.ok()) << status.message();
    };
    axis.points.push_back(std::move(point));
  }
  axes_.push_back(std::move(axis));
  return *this;
}

SweepSpec& SweepSpec::VarySchedulers(std::vector<std::string> names) {
  Axis axis;
  axis.name = "scheduler";
  axis.points.reserve(names.size());
  for (std::string& name : names) {
    AxisPoint point;
    point.label = name;
    point.apply = [name](ExperimentSpec& spec) { spec.scheduler = name; };
    axis.points.push_back(std::move(point));
  }
  axes_.push_back(std::move(axis));
  return *this;
}

SweepSpec& SweepSpec::VaryTraces(std::vector<std::pair<std::string, const Trace*>> traces) {
  Axis axis;
  axis.name = "trace";
  axis.points.reserve(traces.size());
  for (auto& [label, trace] : traces) {
    HAWK_CHECK(trace != nullptr) << "VaryTraces: null trace for '" << label << "'";
    AxisPoint point;
    point.label = label;
    point.apply = [trace = trace](ExperimentSpec& spec) { spec.trace = trace; };
    axis.points.push_back(std::move(point));
  }
  axes_.push_back(std::move(axis));
  return *this;
}

SweepSpec& SweepSpec::VaryConfig(std::string_view axis_name,
                                 std::vector<std::pair<std::string, ConfigMutator>> points) {
  Axis axis;
  axis.name = std::string(axis_name);
  axis.points.reserve(points.size());
  for (auto& [label, mutate] : points) {
    HAWK_CHECK(mutate != nullptr) << "VaryConfig: null mutator for '" << label << "'";
    AxisPoint point;
    point.label = label;
    point.apply = [mutate = std::move(mutate)](ExperimentSpec& spec) { mutate(spec.config); };
    axis.points.push_back(std::move(point));
  }
  axes_.push_back(std::move(axis));
  return *this;
}

size_t SweepSpec::Cardinality() const {
  size_t count = 1;
  for (const Axis& axis : axes_) {
    count *= axis.points.size();
  }
  return count;
}

std::vector<ExperimentSpec> SweepSpec::Expand() const {
  std::vector<ExperimentSpec> specs;
  specs.reserve(Cardinality());
  {
    ExperimentSpec seed = base_;
    seed.label = base_.Label();
    specs.push_back(std::move(seed));
  }
  for (const Axis& axis : axes_) {
    std::vector<ExperimentSpec> next;
    next.reserve(specs.size() * axis.points.size());
    for (const ExperimentSpec& spec : specs) {
      for (const AxisPoint& point : axis.points) {
        ExperimentSpec expanded = spec;
        point.apply(expanded);
        expanded.label += "/" + point.label;
        next.push_back(std::move(expanded));
      }
    }
    specs = std::move(next);
  }
  return specs;
}

RunResult RunExperiment(const ExperimentSpec& spec) {
  HAWK_CHECK(spec.trace != nullptr) << "experiment '" << spec.Label() << "' has no trace";
  const Status status = spec.config.Validate();
  HAWK_CHECK(status.ok()) << "invalid config for experiment '" << spec.Label()
                          << "': " << status.message();
  const SchedulerRegistry::Entry* entry = SchedulerRegistry::Global().Find(spec.scheduler);
  if (entry == nullptr) {
    HAWK_CHECK(false) << "unknown scheduler '" << spec.scheduler
                      << "'; registered schedulers: "
                      << SchedulerRegistry::Global().JoinedNames();
  }
  const std::unique_ptr<SchedulerPolicy> policy = entry->factory(spec.config);
  HAWK_CHECK(policy != nullptr) << "scheduler '" << spec.scheduler
                                << "' factory returned null";
  const uint32_t general_count =
      entry->general_count ? entry->general_count(spec.config) : spec.config.num_workers;
  if (spec.config.sim_shards > 1) {
    ShardedSimulationDriver driver(spec.trace, spec.config, general_count, policy.get());
    return driver.Run();
  }
  SimulationDriver driver(spec.trace, spec.config, general_count, policy.get());
  return driver.Run();
}

RunResult RunExperiment(const Trace& trace, const HawkConfig& config,
                        std::string_view scheduler) {
  return RunExperiment(
      ExperimentSpec(std::string(scheduler)).WithConfig(config).WithTrace(&trace));
}

std::vector<SweepRun> RunExperiments(std::vector<ExperimentSpec> specs, uint32_t num_threads) {
  // Fail fast on the whole grid before burning any simulation time.
  for (const ExperimentSpec& spec : specs) {
    HAWK_CHECK(spec.trace != nullptr) << "experiment '" << spec.Label() << "' has no trace";
    const Status status = spec.config.Validate();
    HAWK_CHECK(status.ok()) << "invalid config for experiment '" << spec.Label()
                            << "': " << status.message();
    HAWK_CHECK(SchedulerRegistry::Global().Contains(spec.scheduler))
        << "unknown scheduler '" << spec.scheduler << "' in experiment '" << spec.Label()
        << "'";
  }
  const SweepRunner runner(num_threads);
  std::vector<RunResult> results =
      runner.Run(specs.size(), [&specs](size_t i) { return RunExperiment(specs[i]); });
  std::vector<SweepRun> runs;
  runs.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    runs.push_back(SweepRun{std::move(specs[i]), std::move(results[i])});
  }
  return runs;
}

std::vector<SweepRun> RunSweep(const SweepSpec& sweep, uint32_t num_threads) {
  return RunExperiments(sweep.Expand(), num_threads);
}

}  // namespace hawk
