#include "src/scheduler/experiment.h"

#include <memory>

#include "src/common/check.h"
#include "src/core/hawk_scheduler.h"
#include "src/scheduler/centralized.h"
#include "src/scheduler/driver.h"
#include "src/scheduler/split.h"
#include "src/scheduler/sparrow.h"

namespace hawk {

std::string_view SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kSparrow:
      return "sparrow";
    case SchedulerKind::kCentralized:
      return "centralized";
    case SchedulerKind::kHawk:
      return "hawk";
    case SchedulerKind::kSplit:
      return "split";
  }
  return "?";
}

RunResult RunScheduler(const Trace& trace, const HawkConfig& config, SchedulerKind kind) {
  std::unique_ptr<SchedulerPolicy> policy;
  uint32_t general_count = config.num_workers;
  switch (kind) {
    case SchedulerKind::kSparrow:
      policy = std::make_unique<SparrowPolicy>(config.probe_ratio);
      break;
    case SchedulerKind::kCentralized:
      policy = std::make_unique<CentralizedPolicy>();
      break;
    case SchedulerKind::kHawk:
      policy = std::make_unique<HawkPolicy>(config);
      general_count = config.GeneralCount();
      break;
    case SchedulerKind::kSplit:
      policy = std::make_unique<SplitClusterPolicy>(config.probe_ratio);
      general_count = config.GeneralCount();
      HAWK_CHECK_LT(general_count, config.num_workers)
          << "split cluster requires a non-empty short partition";
      break;
  }
  SimulationDriver driver(&trace, config, general_count, policy.get());
  return driver.Run();
}

}  // namespace hawk
