// The experiment API: declarative specs over the open scheduler registry.
//
// An ExperimentSpec names one simulation — (scheduler name, config, trace,
// label) — and RunExperiment() executes it through the registry (see
// registry.h) and the simulation driver. SweepSpec declares cross-product
// axes over config fields, schedulers, and traces, expands to a vector of
// labelled specs, and RunSweep() fans the grid across SweepRunner threads.
// Every result is bit-identical to a serial run of the same spec: the
// parallelism is across runs, never inside one.
//
//   // One run:
//   RunResult r = RunExperiment(ExperimentSpec("hawk").WithTrace(&trace));
//
//   // A grid — schedulers x probe ratios x cluster sizes — in one decl:
//   SweepSpec sweep(ExperimentSpec("sparrow").WithTrace(&trace).WithConfig(base));
//   sweep.VarySchedulers({"sparrow", "hawk"})
//        .Vary("probe_ratio", {1, 2, 4, 8})
//        .Vary("num_workers", {1000, 1500, 2000});
//   std::vector<SweepRun> runs = RunSweep(sweep, /*num_threads=*/0);
#ifndef HAWK_SCHEDULER_EXPERIMENT_H_
#define HAWK_SCHEDULER_EXPERIMENT_H_

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/cluster/results.h"
#include "src/core/hawk_config.h"
#include "src/workload/trace.h"

namespace hawk {

// Built-in scheduler names, registered whenever this experiment layer is
// linked in. New schedulers register through SchedulerRegistry (registry.h);
// anything registered is accepted wherever these names are.
inline constexpr std::string_view kSchedulerSparrow = "sparrow";
inline constexpr std::string_view kSchedulerCentralized = "centralized";
inline constexpr std::string_view kSchedulerHawk = "hawk";
inline constexpr std::string_view kSchedulerSplit = "split";

// A value-type description of one simulation run. Copyable and cheap to
// mutate — sweeps expand into vectors of these. The trace is referenced, not
// owned, and must outlive any run of the spec.
struct ExperimentSpec {
  std::string scheduler{kSchedulerHawk};
  HawkConfig config;
  const Trace* trace = nullptr;
  std::string label;  // Empty means "use the scheduler name"; see Label().

  ExperimentSpec() = default;
  explicit ExperimentSpec(std::string scheduler_name) : scheduler(std::move(scheduler_name)) {}

  // Fluent builder: each setter returns *this so specs read as one
  // declaration. All fields are also plain members — mutate directly when
  // that is clearer.
  ExperimentSpec& WithScheduler(std::string name) {
    scheduler = std::move(name);
    return *this;
  }
  ExperimentSpec& WithConfig(const HawkConfig& c) {
    config = c;
    return *this;
  }
  ExperimentSpec& WithTrace(const Trace* t) {
    trace = t;
    return *this;
  }
  ExperimentSpec& WithLabel(std::string l) {
    label = std::move(l);
    return *this;
  }

  const std::string& Label() const { return label.empty() ? scheduler : label; }
};

// A declarative cross-product grid: a base spec plus axes. Each axis
// multiplies the grid; Expand() emits the product in deterministic order with
// the FIRST declared axis varying slowest. Labels are
// "<base>/<axis>=<value>/..." and are unique as long as each axis's values
// are distinct.
class SweepSpec {
 public:
  using ConfigMutator = std::function<void(HawkConfig&)>;

  explicit SweepSpec(ExperimentSpec base) : base_(std::move(base)) {}

  // Axis over a named numeric config field (see ConfigFieldNames() in
  // hawk_config.h). Aborts on an unknown field name — a typo must not
  // silently sweep nothing.
  SweepSpec& Vary(std::string_view field, std::vector<double> values);

  // Axis over registered scheduler names.
  SweepSpec& VarySchedulers(std::vector<std::string> names);

  // Axis over traces, each with a display label.
  SweepSpec& VaryTraces(std::vector<std::pair<std::string, const Trace*>> traces);

  // Escape hatch for axes that are not a single numeric field: each point is
  // a label plus an arbitrary config edit (e.g. the §4.4 component toggles,
  // or a (noise_lo, noise_hi) pair).
  SweepSpec& VaryConfig(std::string_view axis,
                        std::vector<std::pair<std::string, ConfigMutator>> points);

  const ExperimentSpec& base() const { return base_; }

  // Number of specs Expand() will produce (product of axis sizes).
  size_t Cardinality() const;

  // The full grid, labelled, first axis slowest-varying.
  std::vector<ExperimentSpec> Expand() const;

 private:
  struct AxisPoint {
    std::string label;                          // "<axis>=<value>".
    std::function<void(ExperimentSpec&)> apply;
  };
  struct Axis {
    std::string name;
    std::vector<AxisPoint> points;
  };

  ExperimentSpec base_;
  std::vector<Axis> axes_;
};

// Runs one spec to completion: validates the config (aborting loudly on a
// bad one), instantiates the scheduler through the global registry (aborting
// on an unknown name), and drives the simulation. Deterministic: the spec
// fully determines the result.
RunResult RunExperiment(const ExperimentSpec& spec);

// Convenience for the common inline case.
RunResult RunExperiment(const Trace& trace, const HawkConfig& config,
                        std::string_view scheduler);

// One labelled sweep outcome; `spec` is the expanded grid point that
// produced `result`.
struct SweepRun {
  ExperimentSpec spec;
  RunResult result;
};

// Expands the sweep and fans it across a SweepRunner thread pool
// (num_threads == 0 picks hardware concurrency). Results come back in
// Expand() order, each bit-identical to RunExperiment on the same spec.
std::vector<SweepRun> RunSweep(const SweepSpec& sweep, uint32_t num_threads = 0);

// Same fan-out for a hand-built list of specs.
std::vector<SweepRun> RunExperiments(std::vector<ExperimentSpec> specs,
                                     uint32_t num_threads = 0);

}  // namespace hawk

#endif  // HAWK_SCHEDULER_EXPERIMENT_H_
