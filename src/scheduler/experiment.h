// One-call experiment entry points used by benches, examples and tests.
#ifndef HAWK_SCHEDULER_EXPERIMENT_H_
#define HAWK_SCHEDULER_EXPERIMENT_H_

#include <string_view>

#include "src/cluster/results.h"
#include "src/core/hawk_config.h"
#include "src/workload/trace.h"

namespace hawk {

enum class SchedulerKind : uint8_t {
  kSparrow,      // Fully distributed baseline (§2.3).
  kCentralized,  // Fully centralized baseline (§4.5).
  kHawk,         // The hybrid scheduler (§3); honors the config toggles.
  kSplit,        // Disjoint long/short partitions (§4.6).
};

std::string_view SchedulerKindName(SchedulerKind kind);

// Simulates `trace` under the given scheduler and returns the run results.
// The partition split is taken from the config for Hawk and Split; Sparrow
// and Centralized always see the whole cluster as one partition.
RunResult RunScheduler(const Trace& trace, const HawkConfig& config, SchedulerKind kind);

}  // namespace hawk

#endif  // HAWK_SCHEDULER_EXPERIMENT_H_
