#include "src/scheduler/sparrow.h"

#include "src/core/probe_placement.h"

namespace hawk {

void SparrowPolicy::OnJobArrival(const Job& job, const JobClass& cls) {
  const uint32_t num_workers = ctx_->GetCluster().NumWorkers();
  const uint32_t num_probes = probe_ratio_ * job.NumTasks();
  ChooseProbeTargetsInto(ctx_->SchedRng(), /*first=*/0, num_workers, num_probes, &targets_,
                         &picks_);
  for (const WorkerId w : targets_) {
    ctx_->PlaceProbe(w, job.id, cls.is_long_sched);
  }
}

}  // namespace hawk
