#include "src/scheduler/sparrow.h"

#include "src/core/probe_placement.h"

namespace hawk {

void SparrowPolicy::OnJobArrival(const Job& job, const JobClass& cls) {
  const Cluster& cluster = ctx_->GetCluster();
  // Probes target slots, not workers: a multi-slot worker is proportionally
  // more likely to receive a probe (with single-slot workers the two spaces
  // coincide).
  const auto num_slots = static_cast<uint32_t>(cluster.TotalSlots());
  const uint32_t num_probes = probe_ratio_ * job.NumTasks();
  ChooseProbeTargetsInto(ctx_->SchedRng(), /*first=*/0, num_slots, num_probes, &targets_,
                         &picks_);
  for (const SlotId slot : targets_) {
    ctx_->PlaceProbe(cluster.WorkerOfSlot(slot), job.id, cls.is_long_sched);
  }
}

}  // namespace hawk
