// Open scheduler registry: string names -> factories producing
// SchedulerPolicy instances from a HawkConfig.
//
// The four built-in schedulers (sparrow, centralized, hawk, split) register
// themselves when the experiment layer is linked in; external code — examples,
// downstream users — registers new variants through the exact same mechanism
// (see examples/custom_policy.cpp, which adds "hawk-lb" from outside src/).
// A registered name is a first-class experiment citizen: it can be run,
// swept, compared and exported like any built-in.
#ifndef HAWK_SCHEDULER_REGISTRY_H_
#define HAWK_SCHEDULER_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/core/hawk_config.h"
#include "src/scheduler/policy.h"

namespace hawk {

class SchedulerRegistry {
 public:
  // Builds a fresh policy for one run. Factories must be thread-safe (sweeps
  // call them concurrently) and self-contained: each returned policy is used
  // by exactly one driver.
  using Factory = std::function<std::unique_ptr<SchedulerPolicy>(const HawkConfig&)>;
  // Size of the partition the driver treats as "general" (workers
  // [0, general_count)). Null means the whole cluster — the right answer for
  // unpartitioned schedulers.
  using GeneralCountFn = std::function<uint32_t(const HawkConfig&)>;

  struct Entry {
    Factory factory;
    GeneralCountFn general_count;  // May be null: whole cluster.
  };

  // The process-wide registry used by RunExperiment / RunSweep.
  static SchedulerRegistry& Global();

  // Registers `name`. Duplicate names are rejected with an error status (the
  // first registration wins), so two libraries cannot silently fight over a
  // name. Registration must happen before concurrent sweeps start — in
  // practice at static-init or early in main().
  Status Register(std::string name, Factory factory, GeneralCountFn general_count = nullptr);

  // Null if `name` was never registered. The pointer stays valid for the
  // registry's lifetime (entries are never removed).
  const Entry* Find(std::string_view name) const;

  bool Contains(std::string_view name) const { return Find(name) != nullptr; }

  // All registered names, sorted.
  std::vector<std::string> Names() const;

  // The registered names as one comma-separated string — the shared tail of
  // every "unknown scheduler" error message.
  std::string JoinedNames() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

// Static-initializer helper: registers a scheduler or aborts on a duplicate
// name. Intended for file-scope use next to the policy being registered:
//
//   const hawk::SchedulerRegistration kRegisterMine(
//       "mine", [](const hawk::HawkConfig& c) {
//         return std::make_unique<MyPolicy>(c);
//       });
class SchedulerRegistration {
 public:
  SchedulerRegistration(std::string name, SchedulerRegistry::Factory factory,
                        SchedulerRegistry::GeneralCountFn general_count = nullptr);
};

}  // namespace hawk

#endif  // HAWK_SCHEDULER_REGISTRY_H_
