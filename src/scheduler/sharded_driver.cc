#include "src/scheduler/sharded_driver.h"

#include <algorithm>
#include <cmath>
#include <iterator>

namespace hawk {
namespace {

// Field-wise sum of two counter sets. Every RunCounters field is an additive
// event/time tally, so per-shard counters merge into the coordinator's by
// plain summation. Listed explicitly: a new RunCounters field must be added
// here (and the shard_test conservation checks will catch an omission).
void MergeCounters(RunCounters& into, const RunCounters& from) {
  into.jobs += from.jobs;
  into.tasks_launched += from.tasks_launched;
  into.probes_placed += from.probes_placed;
  into.probe_requests += from.probe_requests;
  into.cancels += from.cancels;
  into.central_tasks_placed += from.central_tasks_placed;
  into.steal_attempts += from.steal_attempts;
  into.steal_victim_probes += from.steal_victim_probes;
  into.steal_successes += from.steal_successes;
  into.entries_stolen += from.entries_stolen;
  into.events += from.events;
  into.short_tasks_started += from.short_tasks_started;
  into.long_tasks_started += from.long_tasks_started;
  into.short_queue_wait_us += from.short_queue_wait_us;
  into.long_queue_wait_us += from.long_queue_wait_us;
  into.worker_crashes += from.worker_crashes;
  into.worker_departures += from.worker_departures;
  into.worker_rejoins += from.worker_rejoins;
  into.messages_dropped += from.messages_dropped;
  into.message_retries += from.message_retries;
  into.tasks_re_dispatched += from.tasks_re_dispatched;
  into.probes_lost += from.probes_lost;
  into.duplicate_completions += from.duplicate_completions;
  into.wasted_work_us += from.wasted_work_us;
  into.tasks_speculated += from.tasks_speculated;
  into.speculative_wins += from.speculative_wins;
  into.speculative_wasted_us += from.speculative_wasted_us;
  into.retries_suppressed += from.retries_suppressed;
  into.tasks_abandoned += from.tasks_abandoned;
  into.node_suspicions += from.node_suspicions;
}

void RecordQueueWait(RunCounters& counters, bool is_long, DurationUs wait_us) {
  if (is_long) {
    counters.long_tasks_started++;
    counters.long_queue_wait_us += static_cast<uint64_t>(wait_us);
  } else {
    counters.short_tasks_started++;
    counters.short_queue_wait_us += static_cast<uint64_t>(wait_us);
  }
}

// Light busy-wait hint for the spin loops (a no-op fallback elsewhere).
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

// Spin budget before parking on a condvar. Small on purpose: a miss costs
// one condvar round-trip, while a long spin on an oversubscribed machine
// burns the very core the awaited phase needs.
constexpr int kSpinIters = 2048;

// Shard boundaries are rounded to this many workers when shards are at least
// 128x that size: 32 per-worker counters of 2 bytes fill one 64-byte cache
// line, so with the store's line-aligned array bases a 32-worker boundary
// keeps neighbouring shards out of each other's lines in every hot array.
constexpr WorkerId kBoundaryAlignWorkers = 32;

}  // namespace

ShardedSimulationDriver::ShardedSimulationDriver(const Trace* trace, const HawkConfig& config,
                                                 uint32_t general_count,
                                                 SchedulerPolicy* policy)
    : trace_(trace),
      config_(config),
      policy_(policy),
      cluster_(config.num_workers, general_count, config.Slots()),
      tracker_(trace),
      classifier_(config.classify_mode, config.cutoff_us, config.estimate_noise_lo,
                  config.estimate_noise_hi, Rng(config.seed).Next()),
      // Identical stream derivations to the serial driver: scheduler
      // decisions and loss/jitter/fault-tick draws come from the same seeds,
      // in the same coordinator-serialized order.
      sched_rng_(Rng(config.seed ^ 0x5DEECE66DULL).Next()),
      fault_rng_(Rng(config.seed ^ 0x8BADF00DDEADBEEFULL ^
                     (config.fault_seed * 0x9E3779B97F4A7C15ULL))
                     .Next()),
      rto_(/*expected_us=*/2.0 * static_cast<double>(config.net_delay_us),
           /*floor_us=*/std::max<DurationUs>(1, 2 * config.net_delay_us),
           /*cap_us=*/256 * std::max<DurationUs>(1, 4 * config.net_delay_us)) {
  HAWK_CHECK(trace != nullptr);
  HAWK_CHECK(policy != nullptr);
  HAWK_CHECK_GE(config.sim_shards, 2u) << "sim_shards <= 1 runs the serial SimulationDriver";
  HAWK_CHECK_LE(config.sim_shards, config.num_workers);
  horizon_us_ = std::max<DurationUs>(1, config.net_delay_us);

  // Contiguous shard boundaries balanced by slot capacity: shard s starts at
  // the first worker whose slot range reaches share s/S of the cluster's
  // slots, clamped so every shard keeps at least one worker. A pure function
  // of the config, so identical across thread counts.
  const WorkerStore& store = cluster_.workers();
  const uint32_t num_shards = config.sim_shards;
  const uint64_t total_slots = store.TotalSlots();
  shard_begin_.reserve(num_shards);
  shard_begin_.push_back(0);
  // Large-cluster boundaries are additionally rounded to 32-worker multiples
  // (a cache line of 2-byte counters; see kBoundaryAlignWorkers), so
  // neighbouring shards never write the same line of any per-worker hot
  // array. Like the shard count itself, the exact boundary placement is
  // non-semantic: the canonical (due, worker) commit order is partition-
  // independent, which shard_test pins across shard counts.
  const bool round_boundaries =
      config.num_workers / num_shards >= kBoundaryAlignWorkers * 128;
  for (uint32_t s = 1; s < num_shards; ++s) {
    const uint64_t target = total_slots * s / num_shards;
    WorkerId w = shard_begin_.back() + 1;
    while (w < config.num_workers && static_cast<uint64_t>(store.SlotBegin(w)) < target) {
      ++w;
    }
    const WorkerId max_begin = config.num_workers - (num_shards - s);
    WorkerId begin = std::min(w, max_begin);
    if (round_boundaries) {
      const WorkerId rounded = (begin + kBoundaryAlignWorkers / 2) / kBoundaryAlignWorkers *
                               kBoundaryAlignWorkers;
      begin = std::min(std::max<WorkerId>(rounded, shard_begin_.back() + 1), max_begin);
    }
    shard_begin_.push_back(begin);
  }
  cluster_.workers().ConfigureShards(shard_begin_);
  shards_ = std::vector<Shard>(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    shards_[s].begin = shard_begin_[s];
    shards_[s].end = s + 1 < num_shards ? shard_begin_[s + 1] : config.num_workers;
  }
  ready_ = std::vector<ReadyFlag>(num_shards);
  merge_taken_.assign(num_shards, 0);
  coalesce_ = config.sim_epoch_coalescing;

  retry_pending_.assign(config.num_workers, 0);
  faults_enabled_ = config.FaultsEnabled();
  net_faulty_ = config.message_loss_rate > 0.0 || config.message_delay_jitter_us > 0;
  track_exec_ = config.worker_crash_rate > 0.0;
  stragglers_on_ = config.straggler_rate > 0.0;
  spec_threshold_ = policy->SpeculationThreshold(config);
  speculation_enabled_ = spec_threshold_ > 0.0;
  incarnation_.assign(config.num_workers, 0);
  down_.assign(config.num_workers, DownKind::kUp);
  if (track_exec_) {
    exec_records_.resize(config.num_workers);
  }
  if (stragglers_on_) {
    // Substream salt derived like the fault stream (re-rolled by fault_seed,
    // pinned by seed) but from a distinct constant, so straggler draws are
    // uncorrelated with loss/crash draws.
    straggler_salt_ =
        Rng(config.seed ^ 0x5851F42D4C957F2DULL ^ (config.fault_seed * 0x9E3779B97F4A7C15ULL))
            .Next();
    straggler_seq_.assign(config.num_workers, 0);
  }
  policy_can_steal_ = policy->ShapeForRuntime(config).stealing;
  policy_->Attach(this);
}

ShardedSimulationDriver::~ShardedSimulationDriver() { StopPool(); }

uint32_t ShardedSimulationDriver::ShardOfWorker(WorkerId worker) const {
  const auto it = std::upper_bound(shard_begin_.begin(), shard_begin_.end(), worker);
  return static_cast<uint32_t>(it - shard_begin_.begin()) - 1;
}

// --- SchedulerContext placements (barrier-only) ------------------------------

void ShardedSimulationDriver::PlaceProbe(WorkerId worker, JobId job, bool is_long) {
  result_.counters.probes_placed++;
  PushDelivery(ShardEvent::ProbeArrive(worker, job, is_long));
}

void ShardedSimulationDriver::PlaceTask(WorkerId worker, JobId job, TaskIndex task_index,
                                        DurationUs duration, bool is_long) {
  result_.counters.central_tasks_placed++;
  PushDelivery(ShardEvent::TaskArrive(worker, job, task_index, duration, is_long));
}

void ShardedSimulationDriver::PlaceSpeculative(WorkerId worker, JobId job, TaskIndex task_index,
                                               DurationUs duration, bool is_long) {
  HAWK_CHECK(speculation_enabled_) << "PlaceSpeculative outside a speculation run";
  SpecState& st = spec_state_[TaskKey(job, task_index)];
  ++st.spec_outstanding;
  ++result_.counters.tasks_speculated;
  ShardEvent ev = ShardEvent::TaskArrive(worker, job, task_index, duration, is_long);
  ev.flags |= ShardEvent::kFlagSpeculative;
  PushDelivery(ev);
}

void ShardedSimulationDriver::DeliverStolen(WorkerId thief,
                                            const std::vector<QueueEntry>& entries) {
  WorkerStore& workers = cluster_.workers();
  for (const QueueEntry& entry : entries) {
    workers.Enqueue(thief, entry);
  }
  // No dispatch: the thief is inside its own TryDispatchCoord pass.
}

void ShardedSimulationDriver::PushDelivery(ShardEvent ev) {
  ev.incarnation = incarnation_[ev.worker];
  ++deliveries_pushed_;
  Shard& shard = shards_[ShardOfWorker(ev.worker)];
  if (!net_faulty_) {
    // The coordinator clock is monotone (clamped), so fault-free deliveries
    // keep the O(1) monotone lane even though epoch windows overlap.
    shard.queue.PushLane(kLaneDelivery, now_ + config_.net_delay_us, ev);
    return;
  }
  // Lossy/jittery network: identical retransmit-chain collapse to the serial
  // driver (same fault RNG, drawn in coordinator order).
  const uint64_t jitter_key = delivery_seq_++;
  SimTime delay = 0;
  uint32_t drops = 0;
  bool abandoned = false;
  if (config_.message_loss_rate > 0.0) {
    while (fault_rng_.Bernoulli(config_.message_loss_rate)) {
      ++result_.counters.messages_dropped;
      DurationUs timeout = rto_.BackoffTimeoutUs(drops);
      timeout += AdaptiveTimeout::JitterUs(jitter_key, drops, timeout / 4);
      delay += timeout;
      if (drops == config_.retry_budget) {
        ++result_.counters.retries_suppressed;
        abandoned = true;
        break;
      }
      ++drops;
      ++result_.counters.message_retries;
    }
  }
  if (abandoned) {
    ev.flags |= ShardEvent::kFlagAbandoned;
    shard.queue.Push(now_ + std::max<SimTime>(delay, 1), ev);
    return;
  }
  delay += config_.net_delay_us;
  DurationUs jitter = 0;
  if (config_.message_delay_jitter_us > 0) {
    jitter = fault_rng_.UniformInt(0, config_.message_delay_jitter_us);
    delay += jitter;
  }
  if (drops == 0) {
    rto_.AddSample(2.0 * static_cast<double>(config_.net_delay_us + jitter));
  }
  shard.queue.Push(now_ + delay, ev);
}

void ShardedSimulationDriver::PushRequest(WorkerId worker, JobId job, bool is_long,
                                          SimTime enqueued_at) {
  CoordEvent request;
  request.kind = CoordEvent::Kind::kRequest;
  request.worker = worker;
  request.job = job;
  request.is_long = is_long;
  request.enqueue_time = enqueued_at;
  request.incarnation = incarnation_[worker];
  pending_.Push(now_ + 2 * config_.net_delay_us, request);
}

// --- main loop ---------------------------------------------------------------

RunResult ShardedSimulationDriver::Run() {
  const std::vector<Job>& jobs = trace_->jobs();
  size_t next_job = 0;
  if (!jobs.empty()) {
    CoordEvent sample;
    sample.kind = CoordEvent::Kind::kUtilSample;
    pending_.Push(config_.util_sample_period_us, sample);
    if (config_.worker_crash_rate > 0.0) {
      ScheduleFaultTick(CoordEvent::Kind::kCrashTick);
    }
    if (config_.worker_churn_rate > 0.0) {
      ScheduleFaultTick(CoordEvent::Kind::kDepartTick);
    }
  }
  // Phase pool. sim_threads is non-semantic: shard phases are pure functions
  // of the pre-phase state, so any thread count (including inline execution)
  // yields the same bits.
  const uint32_t hw = std::max<uint32_t>(1, std::thread::hardware_concurrency());
  const uint32_t want = config_.sim_threads == 0 ? hw : config_.sim_threads;
  const uint32_t pool = std::min(static_cast<uint32_t>(shards_.size()),
                                 std::max<uint32_t>(1, want));
  if (pool > 1) {
    pool_size_ = pool;
    // Spinning only pays when every waiter owns a core; once pool + the
    // coordinator oversubscribe the machine, a spinning thread is burning
    // exactly the core the awaited phase (or merge) needs, so park
    // immediately instead. Timing-only: determinism never depends on how a
    // waiter waits.
    spin_iters_ = pool + 1 <= hw ? kSpinIters : 0;
    threads_.reserve(pool);
    for (uint32_t i = 0; i < pool; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  while (true) {
    // Global next time: minimum over the arrival cursor, the coordinator
    // queue and every shard queue. The epoch window is [nt, nt + horizon).
    bool any = false;
    SimTime nt = 0;
    const auto consider = [&any, &nt](SimTime t) {
      if (!any || t < nt) {
        nt = t;
        any = true;
      }
    };
    if (next_job < jobs.size()) {
      consider(jobs[next_job].submit_time);
    }
    if (!pending_.Empty()) {
      consider(pending_.PeekTime());
    }
    for (const Shard& shard : shards_) {
      if (!shard.queue.Empty()) {
        consider(shard.queue.PeekTime());
      }
    }
    if (!any) {
      break;
    }
    const SimTime t_end = nt + horizon_us_;
    // Barrier: arrivals and coordinator items strictly inside the window, in
    // (time, push order) with arrivals winning ties — the serial driver's
    // cursor rule. The coordinator clock only moves forward: records from an
    // overlapping earlier window are processed at the clamped clock, so
    // policies never observe time running backwards.
    while (true) {
      const bool have_arrival = next_job < jobs.size() && jobs[next_job].submit_time < t_end;
      const bool have_item = !pending_.Empty() && pending_.PeekTime() < t_end;
      if (have_arrival &&
          (!have_item || jobs[next_job].submit_time <= pending_.PeekTime())) {
        const Job& job = jobs[next_job++];
        now_ = std::max(now_, job.submit_time);
        result_.counters.events++;
        ArriveJob(job);
        continue;
      }
      if (!have_item) {
        break;
      }
      const auto entry = pending_.Pop();
      now_ = std::max(now_, entry.at);
      result_.counters.events++;
      ProcessCoordEvent(entry.payload);
    }
    // Epoch coalescing: when the window holds no shard-side event, an empty
    // phase would commit nothing — skip straight to the next horizon without
    // waking the pool. Checked after the barrier because barrier grants
    // (StartExecuteCoord) can push completions due inside this very window;
    // deliveries cannot (their due is >= now + net_delay >= window end).
    if (coalesce_) {
      bool shard_work = false;
      for (const Shard& shard : shards_) {
        if (!shard.queue.Empty() && shard.queue.PeekTime() < t_end) {
          shard_work = true;
          break;
        }
      }
      if (!shard_work) {
        continue;
      }
    }
    RunPhases(t_end);
    MergeOutboxes();
  }
  StopPool();
  HAWK_CHECK(tracker_.AllJobsFinished())
      << "simulation drained with " << trace_->NumJobs() - tracker_.jobs_finished()
      << " unfinished jobs";
  for (const Shard& shard : shards_) {
    MergeCounters(result_.counters, shard.counters);
  }
  CollectResults();
  return std::move(result_);
}

// Canonical commit order: (due time, worker). Each worker lives in exactly
// one shard, so any (due, worker) tie is within one shard's outbox, where the
// phase's local stable sort preserves that worker's own (deterministic,
// shard-count independent) emission order. Merging sorted runs can therefore
// never face an inter-run tie: the merged order depends on neither thread
// interleaving nor shard count nor the order the runs were folded in.
bool ShardedSimulationDriver::RecordLess(const OutRecord& a, const OutRecord& b) {
  if (a.due != b.due) {
    return a.due < b.due;
  }
  return a.event.worker < b.event.worker;
}

void ShardedSimulationDriver::MergeRun(const std::vector<OutRecord>& run) {
  if (run.empty()) {
    return;
  }
  if (merge_acc_.empty()) {
    merge_acc_.assign(run.begin(), run.end());
    return;
  }
  merge_tmp_.clear();
  merge_tmp_.reserve(merge_acc_.size() + run.size());
  std::merge(merge_acc_.begin(), merge_acc_.end(), run.begin(), run.end(),
             std::back_inserter(merge_tmp_), RecordLess);
  merge_acc_.swap(merge_tmp_);
}

void ShardedSimulationDriver::MergeOutboxes() {
  // Stage one of the pipeline: fold each shard's sorted outbox into the
  // accumulated run the moment its ready flag appears, so the coordinator's
  // merge overlaps with phases still draining on the pool. The merge result
  // is order-independent (see RecordLess), so taking runs in completion
  // order is still deterministic.
  const auto num_shards = static_cast<uint32_t>(shards_.size());
  merge_acc_.clear();
  std::fill(merge_taken_.begin(), merge_taken_.end(), 0);
  uint32_t merged = 0;
  int spins = 0;
  bool pool_drained = threads_.empty();
  while (merged < num_shards) {
    bool progressed = false;
    for (uint32_t s = 0; s < num_shards; ++s) {
      if (merge_taken_[s] == 0 && ready_[s].v.load(std::memory_order_acquire) != 0) {
        MergeRun(shards_[s].outbox);
        merge_taken_[s] = 1;
        ++merged;
        progressed = true;
      }
    }
    if (merged == num_shards || progressed) {
      spins = 0;
      continue;
    }
    if (++spins > spin_iters_ && !pool_drained) {
      // Stop burning a core: park until the whole epoch retires (every shard
      // is ready once all threads are done), then sweep up the stragglers.
      AwaitPhasesDone();
      pool_drained = true;
      continue;
    }
    CpuRelax();
  }
  // Stage two: the barrier replay needs exclusive ownership of worker and
  // queue state again, so wait for every pool thread to retire before
  // returning to the coordinator loop.
  AwaitPhasesDone();
  for (const OutRecord& rec : merge_acc_) {
    pending_.Push(rec.due, rec.event);
  }
}

void ShardedSimulationDriver::ArriveJob(const Job& job) {
  const JobClass cls = classifier_.Classify(job);
  tracker_.SetClassification(
      job.id, cls.is_long_sched, cls.is_long_metrics,
      static_cast<DurationUs>(std::llround(std::max(0.0, cls.estimate_us))));
  result_.counters.jobs++;
  policy_->OnJobArrival(job, cls);
}

// --- coordinator event processing --------------------------------------------

void ShardedSimulationDriver::ProcessCoordEvent(const CoordEvent& ev) {
  WorkerStore& workers = cluster_.workers();
  switch (ev.kind) {
    case CoordEvent::Kind::kIdle: {
      // A worker went idle during a phase; the steal opportunity commits
      // here. Skip if the worker's world changed since emission (crash bumped
      // the incarnation, or it departed).
      if (ev.incarnation != incarnation_[ev.worker] || down_[ev.worker] != DownKind::kUp) {
        break;
      }
      TryDispatchCoord(ev.worker);
      break;
    }
    case CoordEvent::Kind::kRequest: {
      if (ev.incarnation != incarnation_[ev.worker]) {
        // The requesting slot died with the crash (ResetSlots freed it).
        LostProbe(ev.job, ev.is_long);
        break;
      }
      workers.ResolveRequest(ev.worker, ev.is_long);
      if (down_[ev.worker] != DownKind::kUp) {
        LostProbe(ev.job, ev.is_long);
        break;
      }
      const auto assignment = tracker_.TakeNextTask(ev.job);
      if (assignment.has_value()) {
        result_.counters.tasks_launched++;
        RecordQueueWait(result_.counters, ev.is_long, SaturatingWait(now_, ev.enqueue_time));
        QueueEntry task =
            QueueEntry::Task(ev.job, assignment->task_index, assignment->duration, ev.is_long);
        task.enqueue_time = ev.enqueue_time;
        StartExecuteCoord(ev.worker, task);
      } else {
        result_.counters.cancels++;
        TryDispatchCoord(ev.worker);
      }
      break;
    }
    case CoordEvent::Kind::kTaskStart: {
      QueueEntry task = QueueEntry::Task(ev.job, ev.task_index, ev.duration, ev.is_long);
      task.enqueue_time = ev.enqueue_time;
      policy_->OnTaskStart(ev.worker, task);
      break;
    }
    case CoordEvent::Kind::kTaskFinish: {
      if (!speculation_enabled_ ||
          SpecCompletion(ev.job, ev.task_index, ev.duration, ev.speculative)) {
        tracker_.OnTaskFinished(ev.job, now_);
      }
      if (!ev.speculative) {
        policy_->OnTaskFinish(ev.worker, ev.job, ev.is_long);
      }
      break;
    }
    case CoordEvent::Kind::kLostProbe: {
      LostProbe(ev.job, ev.is_long);
      break;
    }
    case CoordEvent::Kind::kLostTask: {
      LostTask(ev.job, ev.task_index, ev.duration, ev.is_long);
      break;
    }
    case CoordEvent::Kind::kSpecVanished: {
      SpecCopyVanished(ev.job, ev.task_index, ev.duration, ev.is_long);
      break;
    }
    case CoordEvent::Kind::kStraggling: {
      // The phase verified the copy outlived the threshold and its worker's
      // incarnation; here the speculation gate applies — at most one
      // duplicate decision per logical task (phases cannot read spec_state_,
      // so their checks fire unconditionally and are filtered here).
      if (spec_state_.find(TaskKey(ev.job, ev.task_index)) != spec_state_.end()) {
        break;
      }
      policy_->OnTaskStraggling(ev.job, ev.task_index, ev.duration, ev.is_long);
      break;
    }
    case CoordEvent::Kind::kUtilSample: {
      result_.utilization_samples.push_back(cluster_.Utilization());
      if (!tracker_.AllJobsFinished()) {
        CoordEvent sample;
        sample.kind = CoordEvent::Kind::kUtilSample;
        pending_.Push(now_ + config_.util_sample_period_us, sample);
      }
      break;
    }
    case CoordEvent::Kind::kIdleRetry: {
      if (ev.incarnation != incarnation_[ev.worker]) {
        break;
      }
      retry_pending_[ev.worker] = 0;
      if (down_[ev.worker] == DownKind::kUp && workers.HasFreeSlot(ev.worker)) {
        TryDispatchCoord(ev.worker);
      }
      break;
    }
    case CoordEvent::Kind::kCrashTick:
    case CoordEvent::Kind::kDepartTick: {
      HandleFaultTick(ev.kind);
      break;
    }
    case CoordEvent::Kind::kWorkerRejoin: {
      RejoinWorker(ev.worker);
      break;
    }
  }
}

void ShardedSimulationDriver::TryDispatchCoord(WorkerId worker) {
  WorkerStore& workers = cluster_.workers();
  bool steal_tried = false;
  while (workers.HasFreeSlot(worker)) {
    if (workers.QueueEmpty(worker)) {
      if (!steal_tried) {
        steal_tried = true;
        policy_->OnWorkerIdle(worker);
        if (!workers.QueueEmpty(worker)) {
          continue;
        }
      }
      MaybeArmStealRetry(worker);
      return;
    }
    const QueueEntry entry = workers.PopFront(worker);
    if (entry.kind == EntryKind::kTask) {
      if (!entry.speculative) {
        result_.counters.tasks_launched++;
        RecordQueueWait(result_.counters, entry.is_long,
                        SaturatingWait(now_, entry.enqueue_time));
      }
      StartExecuteCoord(worker, entry);
      continue;
    }
    workers.BeginRequest(worker, entry.is_long);
    result_.counters.probe_requests++;
    PushRequest(worker, entry.job, entry.is_long, entry.enqueue_time);
  }
}

void ShardedSimulationDriver::StartExecuteCoord(WorkerId worker, const QueueEntry& task) {
  BeginExecutionAt(shards_[ShardOfWorker(worker)], worker, task, now_);
  // Barrier context: policy feedback is synchronous, like the serial driver.
  if (!task.speculative) {
    policy_->OnTaskStart(worker, task);
  }
}

void ShardedSimulationDriver::MaybeArmStealRetry(WorkerId worker) {
  if (config_.steal_retry_interval_us > 0 && retry_pending_[worker] == 0 &&
      !tracker_.AllJobsFinished() && StealRetryUseful()) {
    retry_pending_[worker] = 1;
    CoordEvent retry;
    retry.kind = CoordEvent::Kind::kIdleRetry;
    retry.worker = worker;
    retry.incarnation = incarnation_[worker];
    pending_.Push(now_ + config_.steal_retry_interval_us, retry);
  }
}

bool ShardedSimulationDriver::StealRetryUseful() const {
  if (!policy_can_steal_) {
    return false;
  }
  if (faults_enabled_) {
    return true;
  }
  return result_.counters.jobs < trace_->NumJobs() || cluster_.workers().TotalQueued() > 0 ||
         InflightDeliveries() > 0;
}

uint64_t ShardedSimulationDriver::InflightDeliveries() const {
  uint64_t consumed = 0;
  for (const Shard& shard : shards_) {
    consumed += shard.deliveries_consumed;
  }
  HAWK_CHECK_GE(deliveries_pushed_, consumed);
  return deliveries_pushed_ - consumed;
}

// --- fault layer (barrier-only) ----------------------------------------------

void ShardedSimulationDriver::ScheduleFaultTick(CoordEvent::Kind kind) {
  const double rate_per_second = kind == CoordEvent::Kind::kCrashTick
                                     ? config_.worker_crash_rate
                                     : config_.worker_churn_rate;
  const double mean_us = 1e6 / (rate_per_second * static_cast<double>(config_.num_workers));
  const auto wait = static_cast<SimTime>(std::llround(fault_rng_.Exponential(mean_us)));
  CoordEvent tick;
  tick.kind = kind;
  pending_.Push(now_ + std::max<SimTime>(wait, 1), tick);
}

void ShardedSimulationDriver::HandleFaultTick(CoordEvent::Kind kind) {
  if (tracker_.AllJobsFinished()) {
    return;
  }
  // Victim before re-arm: the stream reads (victim, next-wait) per tick,
  // like the serial driver.
  const auto victim =
      static_cast<WorkerId>(fault_rng_.UniformInt(0, config_.num_workers - 1));
  const bool up = down_[victim] == DownKind::kUp;
  ScheduleFaultTick(kind);
  if (!up) {
    return;
  }
  if (kind == CoordEvent::Kind::kCrashTick) {
    CrashWorker(victim);
  } else {
    DepartWorker(victim);
  }
}

void ShardedSimulationDriver::CrashWorker(WorkerId worker) {
  WorkerStore& workers = cluster_.workers();
  result_.counters.worker_crashes++;
  down_[worker] = DownKind::kCrashed;
  ++incarnation_[worker];
  retry_pending_[worker] = 0;
  // Pooled teardown scratch: the coordinator owns both vectors and nothing on
  // the re-dispatch paths below re-enters a crash/depart, so one of each is
  // enough, and a warm crash costs no allocation. The swap leaves the
  // worker's exec-record vector empty with the scratch's old capacity.
  std::vector<QueueEntry>& drained = drain_scratch_;
  drained.clear();
  workers.DrainQueueInto(worker, &drained);
  std::vector<ExecRecord>& killed = crash_exec_scratch_;
  killed.clear();
  if (track_exec_) {
    killed.swap(exec_records_[worker]);
  } else {
    HAWK_CHECK_EQ(workers.ExecutingSlots(worker), 0u)
        << "crash injection without exec tracking";
  }
  workers.ResetSlots(worker);
  for (const QueueEntry& entry : drained) {
    ReDispatchEntry(entry);
  }
  for (const ExecRecord& rec : killed) {
    // The crash commits at the (clamped) barrier clock, which can sit just
    // before a start that an overlapping phase window already processed;
    // clamp the delivered share at zero rather than crediting negative work.
    const DurationUs ran = std::max<SimTime>(0, now_ - rec.started_at);
    workers.DeductBusyUs(worker, rec.actual_duration - ran);
    const int64_t waste_delta = ran - (rec.actual_duration - rec.duration);
    result_.counters.wasted_work_us = static_cast<uint64_t>(
        static_cast<int64_t>(result_.counters.wasted_work_us) + waste_delta);
    if (rec.speculative) {
      SpecCopyVanished(rec.job, rec.task_index, rec.duration, rec.is_long);
      continue;
    }
    if (speculation_enabled_) {
      const uint64_t key = TaskKey(rec.job, rec.task_index);
      auto it = spec_state_.find(key);
      if (it != spec_state_.end()) {
        SpecState& st = it->second;
        st.primary_owned = false;
        if (!st.done && st.spec_outstanding == 0) {
          st.primary_owned = true;
          LostTask(rec.job, rec.task_index, rec.duration, rec.is_long);
        }
        MaybeEraseSpec(key);
        continue;
      }
    }
    LostTask(rec.job, rec.task_index, rec.duration, rec.is_long);
  }
  CoordEvent rejoin;
  rejoin.kind = CoordEvent::Kind::kWorkerRejoin;
  rejoin.worker = worker;
  pending_.Push(now_ + config_.worker_downtime_us, rejoin);
}

void ShardedSimulationDriver::DepartWorker(WorkerId worker) {
  WorkerStore& workers = cluster_.workers();
  result_.counters.worker_departures++;
  down_[worker] = DownKind::kDeparted;
  std::vector<QueueEntry>& drained = drain_scratch_;
  drained.clear();
  workers.DrainQueueInto(worker, &drained);
  for (const QueueEntry& entry : drained) {
    ReDispatchEntry(entry);
  }
  CoordEvent rejoin;
  rejoin.kind = CoordEvent::Kind::kWorkerRejoin;
  rejoin.worker = worker;
  pending_.Push(now_ + config_.worker_downtime_us, rejoin);
}

void ShardedSimulationDriver::RejoinWorker(WorkerId worker) {
  down_[worker] = DownKind::kUp;
  result_.counters.worker_rejoins++;
  TryDispatchCoord(worker);
}

void ShardedSimulationDriver::ReDispatchEntry(const QueueEntry& entry) {
  if (entry.kind == EntryKind::kTask) {
    if (entry.speculative) {
      SpecCopyVanished(entry.job, entry.task_index, entry.duration, entry.is_long);
    } else {
      LostTask(entry.job, entry.task_index, entry.duration, entry.is_long);
    }
  } else {
    LostProbe(entry.job, entry.is_long);
  }
}

void ShardedSimulationDriver::LostProbe(JobId job, bool is_long) {
  result_.counters.probes_lost++;
  policy_->OnProbeLost(job, is_long);
}

void ShardedSimulationDriver::LostTask(JobId job, TaskIndex task_index, DurationUs duration,
                                       bool is_long) {
  tracker_.ReturnTask(job, TaskAssignment{task_index, duration});
  result_.counters.tasks_re_dispatched++;
  policy_->OnTaskLost(job, is_long);
}

void ShardedSimulationDriver::SpecCopyVanished(JobId job, TaskIndex task_index,
                                               DurationUs duration, bool is_long) {
  const uint64_t key = TaskKey(job, task_index);
  auto it = spec_state_.find(key);
  HAWK_CHECK(it != spec_state_.end()) << "speculative copy of job " << job << " task "
                                      << task_index << " has no state";
  SpecState& st = it->second;
  HAWK_CHECK_GT(st.spec_outstanding, 0u);
  --st.spec_outstanding;
  if (!st.done && st.spec_outstanding == 0 && !st.primary_owned) {
    st.primary_owned = true;
    LostTask(job, task_index, duration, is_long);
  }
  MaybeEraseSpec(key);
}

bool ShardedSimulationDriver::SpecCompletion(JobId job, TaskIndex task_index,
                                             DurationUs duration, bool speculative) {
  const uint64_t key = TaskKey(job, task_index);
  auto it = spec_state_.find(key);
  if (it == spec_state_.end()) {
    HAWK_CHECK(!speculative) << "speculative completion without state";
    return true;
  }
  SpecState& st = it->second;
  if (speculative) {
    HAWK_CHECK_GT(st.spec_outstanding, 0u);
    --st.spec_outstanding;
  } else {
    st.primary_owned = false;
  }
  const bool first = !st.done;
  if (first) {
    st.done = true;
    if (speculative) {
      ++result_.counters.speculative_wins;
    }
  } else {
    ++result_.counters.duplicate_completions;
    result_.counters.speculative_wasted_us += static_cast<uint64_t>(duration);
    result_.counters.wasted_work_us += static_cast<uint64_t>(duration);
  }
  MaybeEraseSpec(key);
  return first;
}

void ShardedSimulationDriver::MaybeEraseSpec(uint64_t key) {
  auto it = spec_state_.find(key);
  if (it != spec_state_.end() && it->second.spec_outstanding == 0 &&
      !it->second.primary_owned) {
    HAWK_CHECK(it->second.done) << "speculation state dropped with the task unfinished";
    spec_state_.erase(it);
  }
}

// --- shard phases (worker-local) ---------------------------------------------

void ShardedSimulationDriver::RunShardPhase(Shard& shard, SimTime t_end) {
  WorkerStore& workers = cluster_.workers();
  while (!shard.queue.Empty() && shard.queue.PeekTime() < t_end) {
    const auto popped = shard.queue.Pop();
    const ShardEvent& ev = popped.payload;
    const SimTime at = popped.at;
    shard.counters.events++;
    switch (ev.type) {
      case ShardEvent::Type::kProbeArrive: {
        ++shard.deliveries_consumed;
        if ((ev.flags & ShardEvent::kFlagAbandoned) != 0 ||
            ev.incarnation != incarnation_[ev.worker] || down_[ev.worker] != DownKind::kUp) {
          OutRecord rec;
          rec.due = at;
          rec.event.kind = CoordEvent::Kind::kLostProbe;
          rec.event.worker = ev.worker;
          rec.event.job = ev.job;
          rec.event.is_long = ev.is_long;
          shard.outbox.push_back(rec);
          break;
        }
        QueueEntry entry = QueueEntry::Probe(ev.job, ev.is_long);
        entry.enqueue_time = at;
        workers.Enqueue(ev.worker, entry);
        TryDispatchLocal(shard, ev.worker, at);
        break;
      }
      case ShardEvent::Type::kTaskArrive: {
        ++shard.deliveries_consumed;
        const bool speculative = (ev.flags & ShardEvent::kFlagSpeculative) != 0;
        if ((ev.flags & ShardEvent::kFlagAbandoned) != 0 ||
            ev.incarnation != incarnation_[ev.worker] || down_[ev.worker] != DownKind::kUp) {
          if ((ev.flags & ShardEvent::kFlagAbandoned) != 0) {
            ++shard.counters.tasks_abandoned;
          }
          OutRecord rec;
          rec.due = at;
          rec.event.kind = speculative ? CoordEvent::Kind::kSpecVanished
                                       : CoordEvent::Kind::kLostTask;
          rec.event.worker = ev.worker;
          rec.event.job = ev.job;
          rec.event.task_index = ev.task_index;
          rec.event.duration = ev.arg;
          rec.event.is_long = ev.is_long;
          shard.outbox.push_back(rec);
          break;
        }
        QueueEntry entry = QueueEntry::Task(ev.job, ev.task_index, ev.arg, ev.is_long);
        entry.speculative = speculative;
        entry.enqueue_time = at;
        workers.Enqueue(ev.worker, entry);
        TryDispatchLocal(shard, ev.worker, at);
        break;
      }
      case ShardEvent::Type::kTaskComplete: {
        if (ev.incarnation != incarnation_[ev.worker]) {
          break;
        }
        workers.FinishExecute(ev.worker, ev.is_long);
        if (track_exec_) {
          DropExecRecord(ev.worker, ev.job, ev.task_index,
                         (ev.flags & ShardEvent::kFlagSpeculative) != 0);
        }
        OutRecord rec;
        rec.due = at;
        rec.event.kind = CoordEvent::Kind::kTaskFinish;
        rec.event.worker = ev.worker;
        rec.event.job = ev.job;
        rec.event.task_index = ev.task_index;
        rec.event.duration = ev.arg;
        rec.event.is_long = ev.is_long;
        rec.event.speculative = (ev.flags & ShardEvent::kFlagSpeculative) != 0;
        shard.outbox.push_back(rec);
        if (down_[ev.worker] == DownKind::kUp) {
          TryDispatchLocal(shard, ev.worker, at);
        }
        break;
      }
      case ShardEvent::Type::kSpecCheck: {
        if (ev.incarnation != incarnation_[ev.worker]) {
          break;
        }
        // The watched copy is provably still running (checks only get
        // scheduled when the stretch outlives the threshold, and this
        // worker's completion pops after the check). The speculation gate
        // itself lives at the barrier.
        OutRecord rec;
        rec.due = at;
        rec.event.kind = CoordEvent::Kind::kStraggling;
        rec.event.worker = ev.worker;
        rec.event.job = ev.job;
        rec.event.task_index = ev.task_index;
        rec.event.duration = ev.arg;
        rec.event.is_long = ev.is_long;
        shard.outbox.push_back(rec);
        break;
      }
    }
  }
}

void ShardedSimulationDriver::TryDispatchLocal(Shard& shard, WorkerId worker, SimTime at) {
  WorkerStore& workers = cluster_.workers();
  while (workers.HasFreeSlot(worker)) {
    if (workers.QueueEmpty(worker)) {
      // Stealing is cross-worker, so the idle transition is handed to the
      // barrier; guards there skip it if the worker's state moved on. This is
      // the sharded executor's sanctioned timing divergence: a steal lands at
      // the idle transition's commit time, not instantaneously.
      OutRecord rec;
      rec.due = at;
      rec.event.kind = CoordEvent::Kind::kIdle;
      rec.event.worker = worker;
      rec.event.incarnation = incarnation_[worker];
      shard.outbox.push_back(rec);
      return;
    }
    const QueueEntry entry = workers.PopFront(worker);
    if (entry.kind == EntryKind::kTask) {
      if (!entry.speculative) {
        shard.counters.tasks_launched++;
        RecordQueueWait(shard.counters, entry.is_long,
                        SaturatingWait(at, entry.enqueue_time));
      }
      BeginExecutionAt(shard, worker, entry, at);
      if (!entry.speculative) {
        // Phase context: policy feedback travels as a record.
        OutRecord rec;
        rec.due = at;
        rec.event.kind = CoordEvent::Kind::kTaskStart;
        rec.event.worker = worker;
        rec.event.job = entry.job;
        rec.event.task_index = entry.task_index;
        rec.event.duration = entry.duration;
        rec.event.is_long = entry.is_long;
        rec.event.enqueue_time = entry.enqueue_time;
        shard.outbox.push_back(rec);
      }
      continue;
    }
    workers.BeginRequest(worker, entry.is_long);
    shard.counters.probe_requests++;
    OutRecord rec;
    rec.due = at + 2 * config_.net_delay_us;
    rec.event.kind = CoordEvent::Kind::kRequest;
    rec.event.worker = worker;
    rec.event.job = entry.job;
    rec.event.is_long = entry.is_long;
    rec.event.enqueue_time = entry.enqueue_time;
    rec.event.incarnation = incarnation_[worker];
    shard.outbox.push_back(rec);
  }
}

void ShardedSimulationDriver::BeginExecutionAt(Shard& shard, WorkerId worker,
                                               const QueueEntry& task, SimTime at) {
  HAWK_CHECK(!task.is_long || cluster_.InGeneralPartition(worker))
      << "long task on short-partition worker " << worker;
  DurationUs actual = task.duration;
  if (stragglers_on_ && StragglerDraw(worker)) {
    actual = std::max(task.duration,
                      static_cast<DurationUs>(std::llround(
                          static_cast<double>(task.duration) *
                          config_.straggler_slowdown_factor)));
    shard.counters.wasted_work_us += static_cast<uint64_t>(actual - task.duration);
  }
  QueueEntry charged = task;
  charged.duration = actual;
  cluster_.workers().BeginExecute(worker, at, charged);
  if (track_exec_) {
    exec_records_[worker].push_back(ExecRecord{task.job, task.task_index, task.duration,
                                               actual, at, task.is_long, task.speculative});
  }
  if (speculation_enabled_ && !task.speculative) {
    const DurationUs estimate = tracker_.EstimateUs(task.job);
    if (estimate > 0) {
      const auto delay = std::max<SimTime>(
          1, static_cast<SimTime>(
                 std::llround(spec_threshold_ * static_cast<double>(estimate))));
      if (delay < actual) {
        // Unlike the serial driver, no spec_state_ look-aside here: phases
        // cannot read coordinator state, so the check is scheduled
        // unconditionally and the barrier filters already-speculated tasks.
        ShardEvent check =
            ShardEvent::SpecCheck(worker, task.job, task.task_index, task.duration, task.is_long);
        check.incarnation = incarnation_[worker];
        shard.queue.Push(at + delay, check);
      }
    }
  }
  ShardEvent complete =
      ShardEvent::TaskComplete(worker, task.job, task.task_index, task.duration, task.is_long);
  if (task.speculative) {
    complete.flags |= ShardEvent::kFlagSpeculative;
  }
  complete.incarnation = incarnation_[worker];
  shard.queue.Push(at + actual, complete);
}

bool ShardedSimulationDriver::StragglerDraw(WorkerId worker) {
  // splitmix64-style hash of (salt, worker, draw index): a stateless
  // substream per worker, so which executions straggle depends only on the
  // per-worker execution order — not on shard count or thread interleaving.
  uint64_t x = straggler_salt_;
  x += (static_cast<uint64_t>(worker) + 1) * 0x9E3779B97F4A7C15ULL;
  x += (straggler_seq_[worker]++ + 1) * 0xD1B54A32D192ED03ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  const double unit = static_cast<double>(x >> 11) * 0x1.0p-53;
  return unit < config_.straggler_rate;
}

void ShardedSimulationDriver::DropExecRecord(WorkerId worker, JobId job, TaskIndex task_index,
                                             bool speculative) {
  std::vector<ExecRecord>& records = exec_records_[worker];
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].job == job && records[i].task_index == task_index &&
        records[i].speculative == speculative) {
      records[i] = records.back();
      records.pop_back();
      return;
    }
  }
  HAWK_CHECK(false) << "no exec record for job " << job << " task " << task_index
                    << " on worker " << worker;
}

// --- phase thread pool -------------------------------------------------------

void ShardedSimulationDriver::RunOneShard(uint32_t s, SimTime t_end) {
  Shard& shard = shards_[s];
  // Outbox arena reset: the coordinator finished merging last epoch's records
  // strictly before this generation was published, so clearing here (capacity
  // retained) moves the reset off the coordinator's critical path.
  shard.outbox.clear();
  RunShardPhase(shard, t_end);
  std::stable_sort(shard.outbox.begin(), shard.outbox.end(), RecordLess);
  ready_[s].v.store(1, std::memory_order_release);
}

void ShardedSimulationDriver::RunPhases(SimTime t_end) {
  const auto num_shards = static_cast<uint32_t>(shards_.size());
  if (threads_.empty()) {
    for (uint32_t s = 0; s < num_shards; ++s) {
      RunOneShard(s, t_end);
    }
    return;
  }
  // Epoch reset, then the generation bump (release) that publishes it. No
  // pool thread is running here: MergeOutboxes waited for threads_done_
  // before the previous barrier.
  for (ReadyFlag& flag : ready_) {
    flag.v.store(0, std::memory_order_relaxed);
  }
  threads_done_.v.store(0, std::memory_order_relaxed);
  phase_end_ = t_end;
  next_shard_.v.store(0, std::memory_order_relaxed);
  generation_.v.fetch_add(1, std::memory_order_release);
  uint32_t sleeping = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sleeping = sleepers_;
  }
  if (sleeping > 0) {
    cv_start_.notify_all();
  }
}

void ShardedSimulationDriver::AwaitPhasesDone() {
  if (threads_.empty()) {
    return;
  }
  for (int i = 0; i < spin_iters_; ++i) {
    if (threads_done_.v.load(std::memory_order_acquire) == pool_size_) {
      return;
    }
    CpuRelax();
  }
  std::unique_lock<std::mutex> lock(mu_);
  coord_parked_ = true;
  cv_done_.wait(lock, [this] {
    return threads_done_.v.load(std::memory_order_acquire) == pool_size_;
  });
  coord_parked_ = false;
}

void ShardedSimulationDriver::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    // Await the next generation: spin briefly, then park on cv_start_.
    bool advanced = false;
    for (int i = 0; i < spin_iters_; ++i) {
      if (stop_.load(std::memory_order_acquire)) {
        return;
      }
      if (generation_.v.load(std::memory_order_acquire) != seen) {
        advanced = true;
        break;
      }
      CpuRelax();
    }
    if (!advanced) {
      std::unique_lock<std::mutex> lock(mu_);
      ++sleepers_;
      cv_start_.wait(lock, [this, seen] {
        return stop_.load(std::memory_order_relaxed) ||
               generation_.v.load(std::memory_order_relaxed) != seen;
      });
      --sleepers_;
      if (stop_.load(std::memory_order_relaxed)) {
        return;
      }
    }
    ++seen;
    const SimTime t_end = phase_end_;  // Published before the generation bump.
    const auto num_shards = static_cast<uint32_t>(shards_.size());
    for (uint32_t s = next_shard_.v.fetch_add(1, std::memory_order_relaxed); s < num_shards;
         s = next_shard_.v.fetch_add(1, std::memory_order_relaxed)) {
      RunOneShard(s, t_end);
    }
    // Retire: the release edge pairs with the coordinator's acquire in
    // AwaitPhasesDone; the last thread wakes a parked coordinator.
    if (threads_done_.v.fetch_add(1, std::memory_order_release) + 1 == pool_size_) {
      std::lock_guard<std::mutex> lock(mu_);
      if (coord_parked_) {
        cv_done_.notify_one();
      }
    }
  }
}

void ShardedSimulationDriver::StopPool() {
  if (threads_.empty()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_release);
  }
  cv_start_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
  threads_.clear();
  pool_size_ = 0;
  stop_.store(false, std::memory_order_relaxed);
}

void ShardedSimulationDriver::CollectResults() {
  result_.total_busy_us = cluster_.TotalBusyUs();
  result_.jobs.reserve(trace_->NumJobs());
  for (const Job& job : trace_->jobs()) {
    JobResult r;
    r.id = job.id;
    r.is_long = tracker_.IsLongMetrics(job.id);
    r.submit_time = job.submit_time;
    r.finish_time = tracker_.FinishTime(job.id);
    HAWK_CHECK_GE(r.finish_time, r.submit_time);
    r.runtime_us = r.finish_time - r.submit_time;
    result_.makespan_us = std::max(result_.makespan_us, r.finish_time);
    result_.jobs.push_back(r);
  }
}

}  // namespace hawk
