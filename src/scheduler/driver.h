// Event-driven simulation of a cluster run (the paper's evaluation vehicle).
//
// The driver replays a trace against a cluster under a SchedulerPolicy and
// produces a RunResult. Cost model (paper §4.1): one-way network delay of
// 0.5 ms for probe/task placement, one RTT for a late-binding task request,
// zero cost for scheduling decisions and stealing. Workers are FIFO servers
// with one queue feeding `slots_per_worker` execution slots (one by
// default, reproducing the paper's single-slot model exactly).
//
// Event flow per worker:
//   probe/task arrives -> TryDispatch: pop entries while free slots remain;
//   a task occupies a slot until completion, a probe parks a slot for one
//   RTT and resolves to the job's next unlaunched task or to a cancel; when
//   the queue drains with a slot still free the policy gets an OnWorkerIdle
//   callback and may refill the queue by stealing.
#ifndef HAWK_SCHEDULER_DRIVER_H_
#define HAWK_SCHEDULER_DRIVER_H_

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/job_tracker.h"
#include "src/cluster/results.h"
#include "src/core/adaptive_timeout.h"
#include "src/core/hawk_config.h"
#include "src/core/job_classifier.h"
#include "src/scheduler/policy.h"
#include "src/sim/event_queue.h"
#include "src/workload/trace.h"

namespace hawk {

class SimulationDriver : public SchedulerContext {
 public:
  // `general_count` defines the partition split (pass num_workers for
  // unpartitioned baselines). The trace and policy must outlive the driver.
  SimulationDriver(const Trace* trace, const HawkConfig& config, uint32_t general_count,
                   SchedulerPolicy* policy);

  // Runs the whole trace to completion and returns per-job results (ordered
  // by job id), utilization samples and counters.
  RunResult Run();

  // --- SchedulerContext ----------------------------------------------------
  SimTime Now() const override { return now_; }
  Rng& SchedRng() override { return sched_rng_; }
  Cluster& GetCluster() override { return cluster_; }
  JobTracker& Tracker() override { return tracker_; }
  RunCounters& Counters() override { return result_.counters; }
  void PlaceProbe(WorkerId worker, JobId job, bool is_long) override;
  void PlaceTask(WorkerId worker, JobId job, TaskIndex task_index, DurationUs duration,
                 bool is_long) override;
  void PlaceSpeculative(WorkerId worker, JobId job, TaskIndex task_index, DurationUs duration,
                        bool is_long) override;
  void DeliverStolen(WorkerId thief, const std::vector<QueueEntry>& entries) override;

 private:
  // POD heap payload. Job arrivals are not events: the driver streams them
  // from the (sorted) trace via a cursor, so the heap only ever holds
  // in-flight work, not the whole future. Construct via the named factories
  // below — they exist so call sites cannot silently swap positional fields.
  struct SimEvent {
    enum class Type : uint8_t {
      kProbeArrive,
      kTaskArrive,
      kRequestResolve,
      kTaskComplete,
      kUtilSample,
      kIdleRetry,  // Steal-retry extension: re-notify a still-idle worker.
      // Fault layer (all zero-rate by default, so none of these exist in a
      // fault-free run):
      kCrashTick,      // Poisson tick: fail-stop crash of a random worker.
      kDepartTick,     // Poisson tick: graceful departure of a random worker.
      kWorkerRejoin,   // A down worker comes back (empty) after downtime.
      kSpecCheck,      // Speculation: is this task copy still running?
    };
    // Event flag bits (`flags`).
    static constexpr uint8_t kFlagSpeculative = 1;  // Duplicate task copy.
    static constexpr uint8_t kFlagAbandoned = 2;    // Delivery gave up: the
                                                    // retry budget is spent.
    Type type = Type::kUtilSample;
    bool is_long = false;
    uint8_t flags = 0;
    WorkerId worker = kInvalidWorker;
    JobId job = kInvalidJob;
    TaskIndex task_index = 0;
    // Type-dependent slot: the task duration for kTaskArrive, kSpecCheck and
    // kTaskComplete (the nominal duration — speculation-loser accounting
    // needs it), the entry's original enqueue time for kRequestResolve
    // (queueing-delay telemetry).
    int64_t arg = 0;
    // Which incarnation of `worker` this event was addressed to. A crash
    // bumps the worker's incarnation, so everything already in flight toward
    // (or from) the dead incarnation — deliveries, request resolves, task
    // completions, idle retries — is recognized as stale at pop time.
    // Always 0 in fault-free runs, matching the worker's never-bumped count.
    uint32_t incarnation = 0;

    static SimEvent ProbeArrive(WorkerId worker, JobId job, bool is_long) {
      SimEvent e;
      e.type = Type::kProbeArrive;
      e.is_long = is_long;
      e.worker = worker;
      e.job = job;
      return e;
    }
    static SimEvent TaskArrive(WorkerId worker, JobId job, TaskIndex task_index,
                               DurationUs duration, bool is_long) {
      SimEvent e;
      e.type = Type::kTaskArrive;
      e.is_long = is_long;
      e.worker = worker;
      e.job = job;
      e.task_index = task_index;
      e.arg = duration;
      return e;
    }
    static SimEvent RequestResolve(WorkerId worker, JobId job, bool is_long,
                                   SimTime enqueued_at) {
      SimEvent e;
      e.type = Type::kRequestResolve;
      e.is_long = is_long;
      e.worker = worker;
      e.job = job;
      e.arg = enqueued_at;
      return e;
    }
    static SimEvent TaskComplete(WorkerId worker, JobId job, TaskIndex task_index,
                                 DurationUs duration, bool is_long) {
      SimEvent e;
      e.type = Type::kTaskComplete;
      e.is_long = is_long;
      e.worker = worker;
      e.job = job;
      e.task_index = task_index;
      e.arg = duration;
      return e;
    }
    static SimEvent SpecCheck(WorkerId worker, JobId job, TaskIndex task_index,
                              DurationUs duration, bool is_long) {
      SimEvent e;
      e.type = Type::kSpecCheck;
      e.is_long = is_long;
      e.worker = worker;
      e.job = job;
      e.task_index = task_index;
      e.arg = duration;
      return e;
    }
    static SimEvent UtilSample() { return SimEvent{}; }
    static SimEvent IdleRetry(WorkerId worker) {
      SimEvent e;
      e.type = Type::kIdleRetry;
      e.worker = worker;
      return e;
    }
    static SimEvent CrashTick() {
      SimEvent e;
      e.type = Type::kCrashTick;
      return e;
    }
    static SimEvent DepartTick() {
      SimEvent e;
      e.type = Type::kDepartTick;
      return e;
    }
    static SimEvent WorkerRejoin(WorkerId worker) {
      SimEvent e;
      e.type = Type::kWorkerRejoin;
      e.worker = worker;
      return e;
    }
  };

  // Why a worker is out of service. A crashed worker loses everything
  // (queue, requests, in-flight tasks — all invalidated via the incarnation
  // bump); a departed worker bounces new work but lets executing tasks
  // finish.
  enum class DownKind : uint8_t { kUp = 0, kCrashed, kDeparted };

  // In-flight execution record, kept per worker only while crash injection
  // is active: a crash must know which (job, task) pairs die with the node.
  struct ExecRecord {
    JobId job;
    TaskIndex task_index;
    DurationUs duration;         // Nominal (trace) duration.
    DurationUs actual_duration;  // Stretched when the copy is a straggler.
    SimTime started_at;
    bool is_long;
    bool speculative;
  };

  // Per-task speculation state, created when a duplicate is launched and
  // erased once neither lineage can produce further events. `primary_owned`
  // means the logical task is still held by the normal single-copy machinery
  // (a primary copy exists somewhere, or the tracker holds it for
  // re-dispatch); `spec_outstanding` counts duplicate copies alive in any
  // state (in flight, queued, executing).
  struct SpecState {
    uint8_t spec_outstanding = 0;
    bool done = false;
    bool primary_owned = true;
  };

  static uint64_t TaskKey(JobId job, TaskIndex task_index) {
    return (static_cast<uint64_t>(job) << 32) | task_index;
  }

  // Classifies a newly submitted job and hands it to the policy.
  void ArriveJob(const Job& job);
  void Dispatch(const SimEvent& ev);
  void RecordQueueWait(bool is_long, DurationUs wait_us);
  // Advances an idle worker: pops queue entries until it is executing,
  // waiting on a task request, or idle with an empty queue (after giving the
  // policy one stealing opportunity per pass over an empty queue).
  void TryDispatch(WorkerId worker);
  void StartExecute(WorkerId worker, const QueueEntry& task);
  void CollectResults();

  // --- fault layer ---------------------------------------------------------
  // Queues a probe/task delivery: the fault-free path is the historical
  // monotone lane push; with loss/jitter active the delivery may be dropped
  // (and retransmitted after a sender timeout) or delayed, which forces the
  // variable-delay heap.
  void PushDelivery(SimEvent ev);
  // True while another steal-retry timer can still observably help: the
  // policy steals and work exists (or can still appear) outside this
  // worker's empty queue. Stops the end-of-run dead timers that used to poll
  // an already-drained cluster while the last tasks finished executing.
  bool StealRetryUseful() const;
  void ScheduleFaultTick(SimEvent::Type type);
  // Poisson tick handlers: pick a victim (skipping already-down workers) and
  // apply the fault, then re-arm the tick while the run is still live.
  void HandleFaultTick(SimEvent::Type type);
  void CrashWorker(WorkerId worker);
  void DepartWorker(WorkerId worker);
  void RejoinWorker(WorkerId worker);
  // Hands a drained queue entry back to its scheduler (task -> ReturnTask +
  // OnTaskLost, probe -> OnProbeLost).
  void ReDispatchEntry(const QueueEntry& entry);
  void LostProbe(JobId job, bool is_long);
  void LostTask(JobId job, TaskIndex task_index, DurationUs duration, bool is_long);
  void DropExecRecord(WorkerId worker, JobId job, TaskIndex task_index, bool speculative);

  // --- speculative re-execution --------------------------------------------
  // kSpecCheck handler: the watched primary copy is provably still running
  // when the check fires (checks are only scheduled when the stretch outlives
  // the threshold), so unless it crashed or was already speculated, ask the
  // policy to place a duplicate.
  void HandleSpecCheck(const SimEvent& ev);
  // A duplicate copy ceased to exist without completing (lost delivery,
  // drained queue, crash kill). If it was the last live copy and the task is
  // unfinished, ownership reverts to the normal lost-task lane.
  void SpecCopyVanished(JobId job, TaskIndex task_index, DurationUs duration, bool is_long);
  // Dedupe at completion: returns true when this completion is the first for
  // the logical task (and so must reach the tracker), false for a loser.
  bool SpecCompletion(const SimEvent& ev);
  void MaybeEraseSpec(uint64_t key);

  // Fixed-delay event classes get O(1) monotone lanes in the event queue;
  // only variable-delay events (task completions, utilization samples) pay
  // for heap ordering.
  static constexpr size_t kLaneNetDelay = 0;    // Probe/task delivery: +net_delay.
  static constexpr size_t kLaneRtt = 1;         // Late-binding resolve: +2*net_delay.
  static constexpr size_t kLaneStealRetry = 2;  // Idle retry: +steal_retry_interval.

  const Trace* trace_;
  HawkConfig config_;
  SchedulerPolicy* policy_;
  Cluster cluster_;
  JobTracker tracker_;
  JobClassifier classifier_;
  Rng sched_rng_;
  sim::MultiLaneEventQueue<SimEvent, 3> events_;
  SimTime now_ = 0;
  RunResult result_;
  // Steal-retry extension: one outstanding retry per worker.
  std::vector<uint8_t> retry_pending_;

  // --- fault state ---------------------------------------------------------
  // Dedicated RNG so fault draws never perturb scheduler decisions: a
  // zero-fault run draws nothing from it and is byte-identical to pre-fault
  // builds, and sweeping fault_seed re-rolls only the faults.
  Rng fault_rng_;
  bool faults_enabled_ = false;  // Any fault axis nonzero.
  bool net_faulty_ = false;      // Loss or jitter active (heap deliveries).
  bool track_exec_ = false;      // Crash injection needs in-flight records.
  bool stragglers_on_ = false;   // straggler_rate > 0: executions may drag.
  // Speculation (policy-effective threshold; hawk-spec forces it on).
  bool speculation_enabled_ = false;
  double spec_threshold_ = 0.0;
  // Jacobson-style retransmit-timeout estimator for lossy deliveries, fed
  // with first-transmission RTT observations (Karn's rule: retransmitted
  // deliveries contribute no sample).
  AdaptiveTimeout rto_;
  uint64_t delivery_seq_ = 0;  // Keys the deterministic retry jitter.
  // Tasks whose duplicate machinery is live; keyed by TaskKey. Only ever
  // populated when speculation_enabled_.
  std::unordered_map<uint64_t, SpecState> spec_state_;
  // Whether the policy's shape steals at all; retry timers are pointless
  // otherwise.
  bool policy_can_steal_ = false;
  std::vector<uint32_t> incarnation_;  // Bumped on crash; stamps events.
  std::vector<DownKind> down_;
  // Per-worker in-flight tasks; empty vectors unless track_exec_.
  std::vector<std::vector<ExecRecord>> exec_records_;
  // Probe/task deliveries currently in flight (incl. to-be-dropped ones);
  // feeds StealRetryUseful.
  uint64_t inflight_deliveries_ = 0;
};

}  // namespace hawk

#endif  // HAWK_SCHEDULER_DRIVER_H_
