// Event-driven simulation of a cluster run (the paper's evaluation vehicle).
//
// The driver replays a trace against a cluster under a SchedulerPolicy and
// produces a RunResult. Cost model (paper §4.1): one-way network delay of
// 0.5 ms for probe/task placement, one RTT for a late-binding task request,
// zero cost for scheduling decisions and stealing. Workers are single-slot
// FIFO servers.
//
// Event flow per worker:
//   probe/task arrives -> TryDispatch: pop entries; a task starts executing,
//   a probe blocks the worker for one RTT (kRequesting) and resolves to the
//   job's next unlaunched task or to a cancel; when the queue drains the
//   policy gets an OnWorkerIdle callback and may refill it by stealing.
#ifndef HAWK_SCHEDULER_DRIVER_H_
#define HAWK_SCHEDULER_DRIVER_H_

#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/job_tracker.h"
#include "src/cluster/results.h"
#include "src/core/hawk_config.h"
#include "src/core/job_classifier.h"
#include "src/scheduler/policy.h"
#include "src/sim/event_queue.h"
#include "src/workload/trace.h"

namespace hawk {

class SimulationDriver : public SchedulerContext {
 public:
  // `general_count` defines the partition split (pass num_workers for
  // unpartitioned baselines). The trace and policy must outlive the driver.
  SimulationDriver(const Trace* trace, const HawkConfig& config, uint32_t general_count,
                   SchedulerPolicy* policy);

  // Runs the whole trace to completion and returns per-job results (ordered
  // by job id), utilization samples and counters.
  RunResult Run();

  // --- SchedulerContext ----------------------------------------------------
  SimTime Now() const override { return now_; }
  Rng& SchedRng() override { return sched_rng_; }
  Cluster& GetCluster() override { return cluster_; }
  JobTracker& Tracker() override { return tracker_; }
  RunCounters& Counters() override { return result_.counters; }
  void PlaceProbe(WorkerId worker, JobId job, bool is_long) override;
  void PlaceTask(WorkerId worker, JobId job, TaskIndex task_index, DurationUs duration,
                 bool is_long) override;
  void DeliverStolen(WorkerId thief, const std::vector<QueueEntry>& entries) override;

 private:
  struct SimEvent {
    enum class Type : uint8_t {
      kJobArrival,
      kProbeArrive,
      kTaskArrive,
      kRequestResolve,
      kTaskComplete,
      kUtilSample,
      kIdleRetry,  // Steal-retry extension: re-notify a still-idle worker.
    };
    Type type;
    bool is_long = false;
    WorkerId worker = kInvalidWorker;
    JobId job = kInvalidJob;
    TaskIndex task_index = 0;
    DurationUs duration = 0;
    SimTime aux = 0;  // Entry enqueue time, for queueing-delay telemetry.
  };

  void Dispatch(const SimEvent& ev);
  void RecordQueueWait(bool is_long, DurationUs wait_us);
  // Advances an idle worker: pops queue entries until it is executing,
  // waiting on a task request, or idle with an empty queue (after giving the
  // policy one stealing opportunity per pass over an empty queue).
  void TryDispatch(WorkerId worker);
  void StartExecute(WorkerId worker, const QueueEntry& task);
  void CollectResults();

  const Trace* trace_;
  HawkConfig config_;
  SchedulerPolicy* policy_;
  Cluster cluster_;
  JobTracker tracker_;
  JobClassifier classifier_;
  Rng sched_rng_;
  sim::EventQueue<SimEvent> events_;
  SimTime now_ = 0;
  RunResult result_;
  // Steal-retry extension: one outstanding retry per worker.
  std::vector<uint8_t> retry_pending_;
};

}  // namespace hawk

#endif  // HAWK_SCHEDULER_DRIVER_H_
