// Parallel experiment sweeps.
//
// Every figure reproduction evaluates a grid of (scheduler, config, trace)
// points, and each run is fully self-contained: it builds its own driver,
// cluster, policy and RNGs, and only reads the (immutable) trace.
// SweepRunner exploits that isolation to fan a sweep across a thread pool.
// Results come back indexed by sweep point, and each individual run is
// bit-identical to what a serial loop would produce — the parallelism is
// across runs, never inside one.
//
// This is the execution engine under RunSweep()/RunExperiments()
// (experiment.h); use those for declarative grids, and this directly only
// when the work items are not experiment specs.
#ifndef HAWK_SCHEDULER_SWEEP_RUNNER_H_
#define HAWK_SCHEDULER_SWEEP_RUNNER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/cluster/results.h"

namespace hawk {

class SweepRunner {
 public:
  // Produces the result for sweep point `index`. Must be safe to call
  // concurrently for distinct indices.
  using RunPointFn = std::function<RunResult(size_t index)>;

  // `num_threads` == 0 picks the hardware concurrency (min 1).
  explicit SweepRunner(uint32_t num_threads = 0);

  uint32_t num_threads() const { return num_threads_; }

  // Evaluates `run_point` for every index in [0, num_points) and returns
  // results in index order. Points are claimed dynamically (atomic cursor),
  // so heterogeneous run times load-balance.
  std::vector<RunResult> Run(size_t num_points, const RunPointFn& run_point) const;

 private:
  uint32_t num_threads_;
};

}  // namespace hawk

#endif  // HAWK_SCHEDULER_SWEEP_RUNNER_H_
