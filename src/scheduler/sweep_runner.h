// Parallel experiment sweeps.
//
// Every figure reproduction evaluates a grid of (scheduler, config, trace)
// points, and each RunScheduler call is fully self-contained: it builds its
// own driver, cluster, policy and RNGs, and only reads the (immutable)
// trace. SweepRunner exploits that isolation to fan a sweep across a thread
// pool. Results come back indexed by sweep point, and each individual run is
// bit-identical to what a serial RunScheduler loop would produce — the
// parallelism is across runs, never inside one.
#ifndef HAWK_SCHEDULER_SWEEP_RUNNER_H_
#define HAWK_SCHEDULER_SWEEP_RUNNER_H_

#include <vector>

#include "src/cluster/results.h"
#include "src/core/hawk_config.h"
#include "src/scheduler/experiment.h"
#include "src/workload/trace.h"

namespace hawk {

// One simulation to run: `trace` must outlive the sweep and is shared
// read-only across threads.
struct SweepPoint {
  const Trace* trace = nullptr;
  HawkConfig config;
  SchedulerKind kind = SchedulerKind::kHawk;
};

class SweepRunner {
 public:
  // `num_threads` == 0 picks the hardware concurrency (min 1).
  explicit SweepRunner(uint32_t num_threads = 0);

  uint32_t num_threads() const { return num_threads_; }

  // Runs every point and returns results in point order. Points are claimed
  // dynamically (atomic cursor), so heterogeneous run times load-balance.
  std::vector<RunResult> Run(const std::vector<SweepPoint>& points) const;

 private:
  uint32_t num_threads_;
};

}  // namespace hawk

#endif  // HAWK_SCHEDULER_SWEEP_RUNNER_H_
