#include "src/scheduler/centralized.h"

#include <cmath>

#include "src/common/check.h"

namespace hawk {

void CentralizedPolicy::OnJobArrival(const Job& job, const JobClass& cls) {
  (void)cls;
  // The tracker holds the canonical rounded estimate; using it here keeps the
  // assignment and the start/finish feedback in exact agreement.
  const DurationUs estimate_us = ctx_->Tracker().EstimateUs(job.id);
  for (uint32_t i = 0; i < job.NumTasks(); ++i) {
    const auto assignment = ctx_->Tracker().TakeNextTask(job.id);
    HAWK_CHECK(assignment.has_value());
    const WorkerId worker = queue_->AssignTask(ctx_->Now(), estimate_us);
    ctx_->PlaceTask(worker, job.id, assignment->task_index, assignment->duration,
                    cls.is_long_sched);
  }
}

}  // namespace hawk
