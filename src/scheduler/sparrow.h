// Sparrow: fully distributed scheduling with batch probing (paper §2.3).
//
// Every job is scheduled the same way: `probe_ratio * t` probes to random
// workers across the whole cluster; tasks are late-bound when probes reach
// queue heads. This is the paper's primary baseline.
#ifndef HAWK_SCHEDULER_SPARROW_H_
#define HAWK_SCHEDULER_SPARROW_H_

#include <vector>

#include "src/scheduler/policy.h"

namespace hawk {

class SparrowPolicy : public SchedulerPolicy {
 public:
  explicit SparrowPolicy(uint32_t probe_ratio = 2) : probe_ratio_(probe_ratio) {}

  void OnJobArrival(const Job& job, const JobClass& cls) override;

  // Prototype shape: every job probed over the whole cluster, no backend,
  // no partition, no stealing.
  RuntimeShape ShapeForRuntime(const HawkConfig& config) const override {
    (void)config;
    RuntimeShape shape;
    shape.centralized_long = false;
    shape.stealing = false;
    shape.long_probe_span = RuntimeShape::ProbeSpan::kWholeCluster;
    return shape;
  }

  std::string_view Name() const override { return "sparrow"; }

 private:
  uint32_t probe_ratio_;
  // Probe-placement scratch (slot ids), reused across job arrivals.
  std::vector<SlotId> targets_;
  std::vector<uint32_t> picks_;
};

}  // namespace hawk

#endif  // HAWK_SCHEDULER_SPARROW_H_
