#include "src/scheduler/split.h"

#include <cmath>

#include "src/common/check.h"
#include "src/core/probe_placement.h"

namespace hawk {

void SplitClusterPolicy::OnJobArrival(const Job& job, const JobClass& cls) {
  const Cluster& cluster = ctx_->GetCluster();
  if (cls.is_long_sched) {
    const DurationUs estimate_us = ctx_->Tracker().EstimateUs(job.id);
    for (uint32_t i = 0; i < job.NumTasks(); ++i) {
      const auto assignment = ctx_->Tracker().TakeNextTask(job.id);
      HAWK_CHECK(assignment.has_value());
      const WorkerId worker = queue_->AssignTask(ctx_->Now(), estimate_us);
      ctx_->PlaceTask(worker, job.id, assignment->task_index, assignment->duration,
                      /*is_long=*/true);
    }
    return;
  }
  // Short jobs are confined to the short partition (a slot-id suffix).
  HAWK_CHECK_GT(cluster.ShortPartitionCount(), 0u) << "split cluster requires a short partition";
  const SlotId short_first = cluster.GeneralSlots();
  const auto short_slots = static_cast<uint32_t>(cluster.TotalSlots() - short_first);
  const uint32_t num_probes = probe_ratio_ * job.NumTasks();
  ChooseProbeTargetsInto(ctx_->SchedRng(), short_first, short_slots, num_probes, &targets_,
                         &picks_);
  for (const SlotId slot : targets_) {
    ctx_->PlaceProbe(cluster.WorkerOfSlot(slot), job.id, /*is_long=*/false);
  }
}

}  // namespace hawk
