#include "src/scheduler/sweep_runner.h"

#include <atomic>
#include <thread>

#include "src/common/check.h"

namespace hawk {

SweepRunner::SweepRunner(uint32_t num_threads) : num_threads_(num_threads) {
  if (num_threads_ == 0) {
    num_threads_ = std::thread::hardware_concurrency();
  }
  if (num_threads_ == 0) {
    num_threads_ = 1;
  }
}

std::vector<RunResult> SweepRunner::Run(size_t num_points, const RunPointFn& run_point) const {
  HAWK_CHECK(run_point != nullptr);
  std::vector<RunResult> results(num_points);
  const uint32_t workers = std::min(num_threads_, static_cast<uint32_t>(num_points));
  if (workers <= 1) {
    for (size_t i = 0; i < num_points; ++i) {
      results[i] = run_point(i);
    }
    return results;
  }
  std::atomic<size_t> cursor{0};
  auto drain = [num_points, &results, &cursor, &run_point] {
    while (true) {
      const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_points) {
        return;
      }
      results[i] = run_point(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (uint32_t t = 0; t < workers; ++t) {
    pool.emplace_back(drain);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  return results;
}

}  // namespace hawk
