#include "src/scheduler/sweep_runner.h"

#include <atomic>
#include <thread>

#include "src/common/check.h"

namespace hawk {

SweepRunner::SweepRunner(uint32_t num_threads) : num_threads_(num_threads) {
  if (num_threads_ == 0) {
    num_threads_ = std::thread::hardware_concurrency();
  }
  if (num_threads_ == 0) {
    num_threads_ = 1;
  }
}

std::vector<RunResult> SweepRunner::Run(const std::vector<SweepPoint>& points) const {
  for (const SweepPoint& point : points) {
    HAWK_CHECK(point.trace != nullptr);
  }
  std::vector<RunResult> results(points.size());
  const uint32_t workers = std::min(num_threads_, static_cast<uint32_t>(points.size()));
  if (workers <= 1) {
    for (size_t i = 0; i < points.size(); ++i) {
      results[i] = RunScheduler(*points[i].trace, points[i].config, points[i].kind);
    }
    return results;
  }
  std::atomic<size_t> cursor{0};
  auto drain = [&points, &results, &cursor] {
    while (true) {
      const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= points.size()) {
        return;
      }
      results[i] = RunScheduler(*points[i].trace, points[i].config, points[i].kind);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (uint32_t t = 0; t < workers; ++t) {
    pool.emplace_back(drain);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  return results;
}

}  // namespace hawk
