// Split-cluster baseline (paper §4.6).
//
// The cluster is split into two disjoint partitions: a long partition
// (workers [0, general_count), centralized scheduling) and a short partition
// (the rest, distributed Sparrow-style scheduling). Unlike Hawk there is no
// general partition — short jobs cannot use idle long-partition workers —
// and there is no stealing.
#ifndef HAWK_SCHEDULER_SPLIT_H_
#define HAWK_SCHEDULER_SPLIT_H_

#include <memory>

#include "src/core/slot_waiting_queue.h"
#include "src/scheduler/policy.h"

namespace hawk {

class SplitClusterPolicy : public SchedulerPolicy {
 public:
  explicit SplitClusterPolicy(uint32_t probe_ratio = 2) : probe_ratio_(probe_ratio) {}

  void Attach(SchedulerContext* ctx) override {
    SchedulerPolicy::Attach(ctx);
    HAWK_CHECK_GT(ctx->GetCluster().ShortPartitionCount(), 0u)
        << "split cluster requires a non-empty short partition";
    queue_ = std::make_unique<SlotWaitingTimeQueue>(ctx->GetCluster(),
                                                    ctx->GetCluster().GeneralCount());
  }

  void OnJobArrival(const Job& job, const JobClass& cls) override;

  // Waiting-time feedback for the centrally scheduled long partition.
  void OnTaskStart(WorkerId worker, const QueueEntry& task) override {
    if (!task.is_long) {
      return;
    }
    queue_->OnTaskStart(worker, ctx_->Now(), ctx_->Tracker().EstimateUs(task.job));
  }
  void OnTaskFinish(WorkerId worker, JobId job, bool is_long) override {
    (void)job;
    if (!is_long) {
      return;
    }
    queue_->OnTaskFinish(worker, ctx_->Now());
  }

  // Lost long tasks re-place through the long partition's waiting-time
  // queue; lost short work re-probes the disjoint short partition (the
  // base-class whole-cluster default would violate the split).
  void OnTaskLost(JobId job, bool is_long) override {
    if (is_long) {
      const DurationUs estimate_us = ctx_->Tracker().EstimateUs(job);
      const auto assignment = ctx_->Tracker().TakeNextTask(job);
      HAWK_CHECK(assignment.has_value()) << "lost task of job " << job << " not returned";
      const WorkerId worker = queue_->AssignTask(ctx_->Now(), estimate_us);
      ctx_->PlaceTask(worker, job, assignment->task_index, assignment->duration,
                      /*is_long=*/true);
      return;
    }
    ReProbeShortPartition(job);
  }

  void OnProbeLost(JobId job, bool is_long) override {
    (void)is_long;  // Only short jobs probe under split.
    if (ctx_->Tracker().AllTasksAssigned(job)) {
      return;
    }
    ReProbeShortPartition(job);
  }

  // Prototype shape: long jobs centrally placed on the long partition,
  // short jobs probed over the disjoint short partition, no stealing.
  RuntimeShape ShapeForRuntime(const HawkConfig& config) const override {
    (void)config;
    RuntimeShape shape;
    shape.centralized_long = true;
    shape.stealing = false;
    shape.short_probe_span = RuntimeShape::ProbeSpan::kShortPartition;
    return shape;
  }

  std::string_view Name() const override { return "split-cluster"; }

 private:
  void ReProbeShortPartition(JobId job) {
    const Cluster& cluster = ctx_->GetCluster();
    const SlotId short_first = cluster.GeneralSlots();
    const uint64_t short_slots = cluster.TotalSlots() - short_first;
    const auto slot =
        static_cast<SlotId>(short_first + ctx_->SchedRng().NextBounded(short_slots));
    ctx_->PlaceProbe(cluster.WorkerOfSlot(slot), job, /*is_long=*/false);
  }

  uint32_t probe_ratio_;
  std::unique_ptr<SlotWaitingTimeQueue> queue_;
  // Probe-placement scratch (slot ids), reused across job arrivals.
  std::vector<SlotId> targets_;
  std::vector<uint32_t> picks_;
};

}  // namespace hawk

#endif  // HAWK_SCHEDULER_SPLIT_H_
