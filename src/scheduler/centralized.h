// Fully centralized baseline (paper §4.5).
//
// Applies the §3.7 waiting-time algorithm to *all* jobs over the whole
// cluster: every task of an arriving job is placed on the worker with the
// minimum estimated waiting time, which is then charged with the job's
// estimated task runtime. No partitioning, no stealing.
#ifndef HAWK_SCHEDULER_CENTRALIZED_H_
#define HAWK_SCHEDULER_CENTRALIZED_H_

#include <memory>

#include "src/core/slot_waiting_queue.h"
#include "src/scheduler/policy.h"

namespace hawk {

class CentralizedPolicy : public SchedulerPolicy {
 public:
  void Attach(SchedulerContext* ctx) override {
    SchedulerPolicy::Attach(ctx);
    queue_ = std::make_unique<SlotWaitingTimeQueue>(ctx->GetCluster(),
                                                    ctx->GetCluster().NumWorkers());
  }

  void OnJobArrival(const Job& job, const JobClass& cls) override;

  // Node-monitor feedback keeps the waiting-time view synchronized: the
  // baseline tracks every task (it schedules everything centrally).
  void OnTaskStart(WorkerId worker, const QueueEntry& task) override {
    queue_->OnTaskStart(worker, ctx_->Now(), ctx_->Tracker().EstimateUs(task.job));
  }
  void OnTaskFinish(WorkerId worker, JobId job, bool is_long) override {
    (void)job;
    (void)is_long;
    queue_->OnTaskFinish(worker, ctx_->Now());
  }

  // Every task is centrally placed, so every lost task is re-placed through
  // the waiting-time queue. (No probes exist; OnProbeLost can never fire.)
  void OnTaskLost(JobId job, bool is_long) override {
    const DurationUs estimate_us = ctx_->Tracker().EstimateUs(job);
    const auto assignment = ctx_->Tracker().TakeNextTask(job);
    HAWK_CHECK(assignment.has_value()) << "lost task of job " << job << " not returned";
    const WorkerId worker = queue_->AssignTask(ctx_->Now(), estimate_us);
    ctx_->PlaceTask(worker, job, assignment->task_index, assignment->duration, is_long);
  }

  // Prototype shape: every job — both classes — is placed by the central
  // backend's waiting-time queue over the whole cluster; no stealing.
  RuntimeShape ShapeForRuntime(const HawkConfig& config) const override {
    (void)config;
    RuntimeShape shape;
    shape.centralized_long = true;
    shape.centralized_short = true;
    shape.stealing = false;
    return shape;
  }

  std::string_view Name() const override { return "centralized"; }

  const SlotWaitingTimeQueue& waiting_times() const { return *queue_; }

 private:
  std::unique_ptr<SlotWaitingTimeQueue> queue_;
};

}  // namespace hawk

#endif  // HAWK_SCHEDULER_CENTRALIZED_H_
