// Epoch-synchronized sharded simulation of a cluster run.
//
// The serial SimulationDriver processes one global (time, seq) event order on
// one core. This driver splits the worker-id space into `sim_shards`
// contiguous shards and advances them in parallel inside conservative time
// windows, classic conservative parallel discrete-event simulation applied to
// the repo's cost model: every cross-worker effect (probe/task delivery, a
// late-binding answer, a steal hand-off) takes at least one one-way network
// delay, so all shards can run `net_delay_us` of virtual time without ever
// needing each other's state.
//
// Per epoch:
//   1. The coordinator picks the global next time NT (minimum over the
//      arrival cursor, its own pending queue and every shard queue) and sets
//      the window to [NT, NT + net_delay_us).
//   2. Barrier (single-threaded): job arrivals and pending coordinator items
//      inside the window are processed in (time, seq) order — policy
//      callbacks, tracker mutations, shared-RNG draws, steals, fault ticks
//      all happen here and only here.
//   3. Phase (parallel): each shard drains its own event queue up to the
//      window end, touching only worker-local state (queues, slots, busy
//      accounting, its own counters), appending cross-worker effects to a
//      per-shard outbox, and finishing with a local stable sort of that
//      outbox by (due time, worker) — the shard's own post-work, off the
//      coordinator's critical path.
//   4. Merge (pipelined): as each shard publishes its sorted outbox, the
//      coordinator folds it into an accumulated sorted run with a two-way
//      merge — overlapping merge work with still-running phases — and pushes
//      the final run into its pending queue for the next barrier. Each worker
//      lives in exactly one shard, so (due, worker) ties never cross runs and
//      the merged order is a pure function of the records: independent of
//      thread interleaving, shard count, and merge arrival order.
//
// Epochs whose window holds no shard-side event skip steps 3–4 entirely
// (epoch coalescing): the coordinator advances horizon after horizon without
// waking the phase pool, which an empty phase could not have influenced.
//
// The phase pool is persistent and lock-light: workers spin briefly on an
// epoch generation counter before parking on a condvar, claim shards off a
// shared atomic cursor, and publish per-shard ready flags (merge gate) plus a
// pool-wide done counter (barrier-replay gate). Per-epoch allocations are
// pooled — outboxes, merge runs and fault-path scratch keep their capacity
// across epochs — and every spun-on control word sits on its own cache line.
//
// Determinism contract: for a fixed config (including sim_shards > 1) the
// RunResult is bit-identical across sim_threads values, and identical across
// sim_shards values > 1. Results are a sanctioned, golden-pinned divergence
// from the serial driver (sim_shards == 1): steals commit at epoch barriers
// instead of instantaneously, policy feedback is reordered into (time,
// worker) record order, and straggler draws use stateless per-worker
// substreams instead of the serial driver's single fault stream.
#ifndef HAWK_SCHEDULER_SHARDED_DRIVER_H_
#define HAWK_SCHEDULER_SHARDED_DRIVER_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/job_tracker.h"
#include "src/cluster/results.h"
#include "src/core/adaptive_timeout.h"
#include "src/core/hawk_config.h"
#include "src/core/job_classifier.h"
#include "src/scheduler/policy.h"
#include "src/sim/event_queue.h"
#include "src/workload/trace.h"

namespace hawk {

class ShardedSimulationDriver : public SchedulerContext {
 public:
  // `general_count` defines the partition split (pass num_workers for
  // unpartitioned baselines). The trace and policy must outlive the driver.
  // Requires config.sim_shards >= 2 (callers route sim_shards == 1 to the
  // serial SimulationDriver, which stays byte-identical to history).
  ShardedSimulationDriver(const Trace* trace, const HawkConfig& config, uint32_t general_count,
                          SchedulerPolicy* policy);
  ~ShardedSimulationDriver() override;

  // Runs the whole trace to completion and returns per-job results (ordered
  // by job id), utilization samples and merged counters.
  RunResult Run();

  // --- SchedulerContext ----------------------------------------------------
  // All context methods are barrier-only: policies are invoked exclusively
  // from the single-threaded coordinator, never from a shard phase.
  SimTime Now() const override { return now_; }
  Rng& SchedRng() override { return sched_rng_; }
  Cluster& GetCluster() override { return cluster_; }
  JobTracker& Tracker() override { return tracker_; }
  RunCounters& Counters() override { return result_.counters; }
  void PlaceProbe(WorkerId worker, JobId job, bool is_long) override;
  void PlaceTask(WorkerId worker, JobId job, TaskIndex task_index, DurationUs duration,
                 bool is_long) override;
  void PlaceSpeculative(WorkerId worker, JobId job, TaskIndex task_index, DurationUs duration,
                        bool is_long) override;
  void DeliverStolen(WorkerId thief, const std::vector<QueueEntry>& entries) override;

 private:
  // Worker-local event, processed inside a shard phase. Mirrors the serial
  // driver's SimEvent minus the coordinator-only kinds (request resolution,
  // timers, fault ticks), which live in CoordEvent instead. Construct via the
  // named factories.
  struct ShardEvent {
    enum class Type : uint8_t {
      kProbeArrive,
      kTaskArrive,
      kTaskComplete,
      kSpecCheck,
    };
    static constexpr uint8_t kFlagSpeculative = 1;
    static constexpr uint8_t kFlagAbandoned = 2;
    Type type = Type::kProbeArrive;
    bool is_long = false;
    uint8_t flags = 0;
    WorkerId worker = kInvalidWorker;
    JobId job = kInvalidJob;
    TaskIndex task_index = 0;
    // Task duration for kTaskArrive / kTaskComplete / kSpecCheck (nominal).
    int64_t arg = 0;
    // Incarnation of `worker` this event was addressed to; see the serial
    // driver — a crash bumps it, staling everything already in flight.
    uint32_t incarnation = 0;

    static ShardEvent ProbeArrive(WorkerId worker, JobId job, bool is_long) {
      ShardEvent e;
      e.type = Type::kProbeArrive;
      e.is_long = is_long;
      e.worker = worker;
      e.job = job;
      return e;
    }
    static ShardEvent TaskArrive(WorkerId worker, JobId job, TaskIndex task_index,
                                 DurationUs duration, bool is_long) {
      ShardEvent e;
      e.type = Type::kTaskArrive;
      e.is_long = is_long;
      e.worker = worker;
      e.job = job;
      e.task_index = task_index;
      e.arg = duration;
      return e;
    }
    static ShardEvent TaskComplete(WorkerId worker, JobId job, TaskIndex task_index,
                                   DurationUs duration, bool is_long) {
      ShardEvent e;
      e.type = Type::kTaskComplete;
      e.is_long = is_long;
      e.worker = worker;
      e.job = job;
      e.task_index = task_index;
      e.arg = duration;
      return e;
    }
    static ShardEvent SpecCheck(WorkerId worker, JobId job, TaskIndex task_index,
                                DurationUs duration, bool is_long) {
      ShardEvent e;
      e.type = Type::kSpecCheck;
      e.is_long = is_long;
      e.worker = worker;
      e.job = job;
      e.task_index = task_index;
      e.arg = duration;
      return e;
    }
  };

  // Coordinator-side event: either a cross-worker record emitted by a shard
  // phase (committed at the next barrier) or a coordinator-owned timer.
  struct CoordEvent {
    enum class Kind : uint8_t {
      // Phase records.
      kIdle,         // Worker went idle with an empty queue: steal opportunity.
      kRequest,      // Late-binding probe request; resolves one RTT later.
      kTaskStart,    // Non-speculative execution started: policy feedback.
      kTaskFinish,   // Execution completed: tracker + policy feedback.
      kLostProbe,    // Delivery died (stale/down/abandoned): replace probe.
      kLostTask,     // Task delivery died: hand back for re-dispatch.
      kSpecVanished, // A speculative duplicate ceased to exist uncompleted.
      kStraggling,   // A watched copy outlived the speculation threshold.
      // Coordinator timers.
      kUtilSample,
      kIdleRetry,
      kCrashTick,
      kDepartTick,
      kWorkerRejoin,
    };
    Kind kind = Kind::kUtilSample;
    bool is_long = false;
    bool speculative = false;
    WorkerId worker = kInvalidWorker;
    JobId job = kInvalidJob;
    TaskIndex task_index = 0;
    DurationUs duration = 0;   // Nominal task duration, where applicable.
    SimTime enqueue_time = 0;  // Original entry placement time (kRequest).
    uint32_t incarnation = 0;
  };

  // A phase-emitted record with its commit time: outboxes are merged by
  // (due, worker) before entering the coordinator queue.
  struct OutRecord {
    SimTime due = 0;
    CoordEvent event;
  };

  enum class DownKind : uint8_t { kUp = 0, kCrashed, kDeparted };

  // In-flight execution record; see the serial driver.
  struct ExecRecord {
    JobId job;
    TaskIndex task_index;
    DurationUs duration;
    DurationUs actual_duration;
    SimTime started_at;
    bool is_long;
    bool speculative;
  };

  // Per-task speculation state; see the serial driver.
  struct SpecState {
    uint8_t spec_outstanding = 0;
    bool done = false;
    bool primary_owned = true;
  };

  // One worker shard: a contiguous worker-id range, its event queue (lane 0
  // is the monotone fault-free delivery lane; completions, spec checks and
  // faulty deliveries use the heap), its outbox and its private counters.
  // Cache-line aligned so concurrent shards never share a line; the queue is
  // additionally line-aligned so the shard's queue heads (heap front, lane
  // cursors) never share a line with the topology fields the coordinator
  // reads. The outbox is an arena: cleared (capacity retained) by the owning
  // phase at claim time, read by the coordinator's merge after the shard's
  // ready flag, never reallocated per epoch once warm.
  struct alignas(64) Shard {
    WorkerId begin = 0;
    WorkerId end = 0;
    alignas(64) sim::MultiLaneEventQueue<ShardEvent, 1> queue;
    std::vector<OutRecord> outbox;
    RunCounters counters;
    uint64_t deliveries_consumed = 0;  // Feeds the in-flight delivery count.
  };

  // One-per-shard ready flag, line-isolated: the coordinator spins on these
  // while phase threads are writing their shards' hot state, so a flag must
  // not share a line with anything else.
  struct alignas(64) ReadyFlag {
    std::atomic<uint32_t> v{0};
  };
  // Line-isolated pool control words (each spun on from one side of the
  // coordinator/phase handoff while the other side works).
  struct alignas(64) PaddedAtomicU32 {
    std::atomic<uint32_t> v{0};
  };
  struct alignas(64) PaddedAtomicU64 {
    std::atomic<uint64_t> v{0};
  };

  static constexpr size_t kLaneDelivery = 0;

  static uint64_t TaskKey(JobId job, TaskIndex task_index) {
    return (static_cast<uint64_t>(job) << 32) | task_index;
  }

  // Queue waits can go negative under barrier-retroactive commits (a steal
  // commits at a barrier whose clock is ahead of the thief's next phase
  // event); clamp at zero instead of wrapping the uint64 accumulators.
  static DurationUs SaturatingWait(SimTime now, SimTime enqueued_at) {
    return now > enqueued_at ? now - enqueued_at : 0;
  }

  // --- coordinator (barrier) side ------------------------------------------
  void ArriveJob(const Job& job);
  void ProcessCoordEvent(const CoordEvent& ev);
  void TryDispatchCoord(WorkerId worker);
  void StartExecuteCoord(WorkerId worker, const QueueEntry& task);
  void PushDelivery(ShardEvent ev);
  void PushRequest(WorkerId worker, JobId job, bool is_long, SimTime enqueued_at);
  void MaybeArmStealRetry(WorkerId worker);
  bool StealRetryUseful() const;
  uint64_t InflightDeliveries() const;
  void ScheduleFaultTick(CoordEvent::Kind kind);
  void HandleFaultTick(CoordEvent::Kind kind);
  void CrashWorker(WorkerId worker);
  void DepartWorker(WorkerId worker);
  void RejoinWorker(WorkerId worker);
  void ReDispatchEntry(const QueueEntry& entry);
  void LostProbe(JobId job, bool is_long);
  void LostTask(JobId job, TaskIndex task_index, DurationUs duration, bool is_long);
  void SpecCopyVanished(JobId job, TaskIndex task_index, DurationUs duration, bool is_long);
  bool SpecCompletion(JobId job, TaskIndex task_index, DurationUs duration, bool speculative);
  void MaybeEraseSpec(uint64_t key);
  // Folds every shard's sorted outbox into pending_, two-way merging runs as
  // their ready flags appear (overlapping with late phases), then waits for
  // the pool's done counter so the next barrier owns all state again.
  void MergeOutboxes();
  void MergeRun(const std::vector<OutRecord>& run);
  static bool RecordLess(const OutRecord& a, const OutRecord& b);
  void CollectResults();

  // --- shard (phase) side --------------------------------------------------
  // Drains shard events strictly before `t_end`. Worker-local only: may touch
  // the shard's workers, its queue/outbox/counters, exec records and the
  // per-worker straggler substreams — never policies, tracker writes or
  // shared RNGs.
  void RunShardPhase(Shard& shard, SimTime t_end);
  void TryDispatchLocal(Shard& shard, WorkerId worker, SimTime at);
  // Occupies a slot and schedules the completion (and speculation check).
  // Shared by the phase path and the barrier grant path; the caller owns the
  // policy feedback (kTaskStart record vs synchronous OnTaskStart).
  void BeginExecutionAt(Shard& shard, WorkerId worker, const QueueEntry& task, SimTime at);
  // Stateless per-worker straggler substream: draw i for worker w hashes
  // (salt, w, i), so the draw a given execution sees does not depend on shard
  // count or thread interleaving — the sharded executor's sanctioned RNG
  // divergence from the serial driver's single fault stream.
  bool StragglerDraw(WorkerId worker);
  void DropExecRecord(WorkerId worker, JobId job, TaskIndex task_index, bool speculative);

  // --- phase thread pool ---------------------------------------------------
  uint32_t ShardOfWorker(WorkerId worker) const;
  // Runs one shard's phase end to end: outbox reset, drain, local sort.
  void RunOneShard(uint32_t s, SimTime t_end);
  // Publishes t_end and bumps the epoch generation (inline execution when the
  // pool is empty). Returns immediately; MergeOutboxes consumes the results.
  void RunPhases(SimTime t_end);
  // Blocks until every pool thread has retired from the current epoch.
  void AwaitPhasesDone();
  void WorkerLoop();
  void StopPool();

  const Trace* trace_;
  HawkConfig config_;
  SchedulerPolicy* policy_;
  Cluster cluster_;
  JobTracker tracker_;
  JobClassifier classifier_;
  Rng sched_rng_;
  SimTime now_ = 0;
  RunResult result_;
  DurationUs horizon_us_ = 1;

  // Coordinator pending queue: phase records + coordinator timers, ordered by
  // (time, push order). Push order is canonical: outboxes are sorted before
  // insertion and barrier processing is single-threaded.
  sim::EventQueue<CoordEvent> pending_;
  // Pooled merge state (coordinator-owned; capacity retained across epochs).
  std::vector<OutRecord> merge_acc_;
  std::vector<OutRecord> merge_tmp_;
  std::vector<uint8_t> merge_taken_;
  // Pooled fault-path scratch (coordinator-owned; see CrashWorker).
  std::vector<QueueEntry> drain_scratch_;
  std::vector<ExecRecord> crash_exec_scratch_;

  std::vector<Shard> shards_;
  std::vector<WorkerId> shard_begin_;  // shard_begin_[s] = first worker of s.

  // Steal-retry extension state (coordinator-owned).
  std::vector<uint8_t> retry_pending_;

  // --- fault state (coordinator-owned unless noted) ------------------------
  Rng fault_rng_;
  bool faults_enabled_ = false;
  bool net_faulty_ = false;
  bool track_exec_ = false;
  bool stragglers_on_ = false;
  bool speculation_enabled_ = false;
  double spec_threshold_ = 0.0;
  AdaptiveTimeout rto_;
  uint64_t delivery_seq_ = 0;
  std::unordered_map<uint64_t, SpecState> spec_state_;
  bool policy_can_steal_ = false;
  // Phases read these for staleness checks; only the coordinator writes them.
  std::vector<uint32_t> incarnation_;
  std::vector<DownKind> down_;
  // Per-worker in-flight tasks (phase-owned during phases, coordinator-owned
  // at barriers); empty vectors unless track_exec_.
  std::vector<std::vector<ExecRecord>> exec_records_;
  uint64_t deliveries_pushed_ = 0;
  // Straggler substream position per worker (same ownership as exec records).
  uint64_t straggler_salt_ = 0;
  std::vector<uint64_t> straggler_seq_;

  // Epoch coalescing toggle (config-mirrored; non-semantic).
  bool coalesce_ = true;

  // Persistent phase pool. An epoch starts when the coordinator bumps
  // `generation_` (workers spin briefly on it, then park on cv_start_);
  // `phase_end_` is published before the bump and read after the acquire.
  // Workers claim shards off `next_shard_`, publish per-shard `ready_` flags
  // with release stores (the coordinator's merge gate) and retire through
  // `threads_done_` (the barrier-replay gate; the last worker wakes a parked
  // coordinator through cv_done_). Every spun-on word is line-isolated.
  std::vector<std::thread> threads_;
  uint32_t pool_size_ = 0;
  // Pre-park spin budget for every waiter (workers awaiting a generation,
  // the coordinator awaiting runs/retirement). Zero when pool + coordinator
  // oversubscribe the hardware: a spinning waiter would hold the very core
  // the awaited work needs. Timing-only — never observable in the bits.
  int spin_iters_ = 0;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  uint32_t sleepers_ = 0;        // Guarded by mu_.
  bool coord_parked_ = false;    // Guarded by mu_.
  std::atomic<bool> stop_{false};
  SimTime phase_end_ = 0;
  PaddedAtomicU64 generation_;
  PaddedAtomicU32 next_shard_;
  PaddedAtomicU32 threads_done_;
  std::vector<ReadyFlag> ready_;  // One per shard.
};

}  // namespace hawk

#endif  // HAWK_SCHEDULER_SHARDED_DRIVER_H_
