// Leveled logging to stderr.
//
// The simulator itself never logs on hot paths; logging exists for the
// threaded prototype runtime, examples, and benches. Level is settable
// programmatically or via the HAWK_LOG_LEVEL environment variable
// (debug|info|warn|error, default info).
#ifndef HAWK_COMMON_LOGGING_H_
#define HAWK_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace hawk {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

// Returns the process-wide minimum level that will be emitted.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hawk

#define HAWK_LOG(level) \
  ::hawk::internal::LogMessage(::hawk::LogLevel::k##level, __FILE__, __LINE__)

#endif  // HAWK_COMMON_LOGGING_H_
