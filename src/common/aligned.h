// Cache-line-aligned allocation for dense per-worker arrays.
//
// The sharded simulation executor partitions the worker-id space and lets
// shard phases mutate their worker ranges concurrently. The per-worker hot
// counters are small integers packed 32-per-line, so a shard boundary falling
// mid-line makes the two neighbouring shards ping-pong that line. Boundary
// rounding (ShardedSimulationDriver) puts boundaries on 32-worker multiples;
// this allocator makes the array bases line-aligned so those multiples are
// real line boundaries.
#ifndef HAWK_COMMON_ALIGNED_H_
#define HAWK_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace hawk {

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T, std::size_t Align>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T), "alignment below the type's natural one");

  // Explicit rebind: allocator_traits cannot synthesize one across the
  // non-type Align parameter.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Align>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U, Align>&) const {
    return false;
  }
};

template <typename T>
using CacheAlignedVector = std::vector<T, AlignedAllocator<T, kCacheLineBytes>>;

}  // namespace hawk

#endif  // HAWK_COMMON_ALIGNED_H_
