// Lightweight assertion macros.
//
// CHECK-style macros abort with a readable message on violated invariants.
// They are enabled in all build types: the simulator's correctness arguments
// (task conservation, FIFO discipline, partition containment) lean on them.
#ifndef HAWK_COMMON_CHECK_H_
#define HAWK_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace hawk {
namespace internal {

[[noreturn]] inline void CheckFail(const char* file, int line, const char* expr,
                                   const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line, expr, message.c_str());
  std::fflush(stderr);
  std::abort();
}

// Stream collector so call sites can write CHECK(x) << "context".
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessage() { CheckFail(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hawk

#define HAWK_CHECK(cond)                                              \
  if (cond) {                                                         \
  } else                                                              \
    ::hawk::internal::CheckMessage(__FILE__, __LINE__, #cond)

#define HAWK_CHECK_OP(a, b, op) HAWK_CHECK((a)op(b)) << " (" << (a) << " vs " << (b) << ") "

#define HAWK_CHECK_EQ(a, b) HAWK_CHECK_OP(a, b, ==)
#define HAWK_CHECK_NE(a, b) HAWK_CHECK_OP(a, b, !=)
#define HAWK_CHECK_LE(a, b) HAWK_CHECK_OP(a, b, <=)
#define HAWK_CHECK_LT(a, b) HAWK_CHECK_OP(a, b, <)
#define HAWK_CHECK_GE(a, b) HAWK_CHECK_OP(a, b, >=)
#define HAWK_CHECK_GT(a, b) HAWK_CHECK_OP(a, b, >)

#endif  // HAWK_COMMON_CHECK_H_
