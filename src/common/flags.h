// Minimal command-line flag parsing for example and bench binaries.
//
// Accepts "--name=value", "--name value", and bare "--name" for booleans.
// There is no registry of valid names, so unknown flags are silently kept
// (misspell one and you run the default configuration); malformed values
// abort via HAWK_CHECK at the Get* call that reads them.
#ifndef HAWK_COMMON_FLAGS_H_
#define HAWK_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hawk {

class Flags {
 public:
  // Parses argv. Aborts with a message on malformed input.
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name, const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  // Comma-separated integer list, e.g. "--sizes=1000,1500,2000".
  std::vector<int64_t> GetIntList(const std::string& name,
                                  const std::vector<int64_t>& default_value) const;

  // Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace hawk

#endif  // HAWK_COMMON_FLAGS_H_
