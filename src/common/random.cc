#include "src/common/random.h"

#include <algorithm>
#include <cmath>

namespace hawk {
namespace {

constexpr double kPi = 3.14159265358979323846;

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  HAWK_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of `bound`.
  const uint64_t threshold = (0 - bound) % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  HAWK_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::Uniform(double lo, double hi) {
  HAWK_CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

double Rng::Exponential(double mean) {
  HAWK_CHECK_GT(mean, 0.0);
  // Inverse-CDF; 1 - u in (0, 1] avoids log(0).
  return -mean * std::log(1.0 - NextDouble());
}

double Rng::Gaussian(double mean, double stddev) {
  HAWK_CHECK_GE(stddev, 0.0);
  // Box-Muller without caching the second variate: caching would entangle
  // successive distribution calls and complicate fork-based determinism.
  double u1 = NextDouble();
  while (u1 <= 0.0) {
    u1 = NextDouble();
  }
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * kPi * u2);
}

double Rng::PositiveGaussian(double mean, double stddev) {
  HAWK_CHECK_GT(mean, 0.0);
  while (true) {
    const double v = Gaussian(mean, stddev);
    if (v > 0.0) {
      return v;
    }
  }
}

double Rng::LogNormalMedian(double median, double sigma) {
  HAWK_CHECK_GT(median, 0.0);
  return median * std::exp(Gaussian(0.0, sigma));
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  std::vector<uint32_t> chosen;
  SampleWithoutReplacement(n, k, &chosen);
  return chosen;
}

void Rng::SampleWithoutReplacement(uint32_t n, uint32_t k, std::vector<uint32_t>* out) {
  HAWK_CHECK_LE(k, n);
  out->clear();
  if (k == 0) {
    return;
  }
  if (static_cast<uint64_t>(k) * 8 >= n) {
    // Dense draw: partial Fisher-Yates, using *out itself as the index array
    // so no scratch allocation is needed once its capacity is warm.
    out->resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      (*out)[i] = i;
    }
    for (uint32_t i = 0; i < k; ++i) {
      const uint32_t j = i + static_cast<uint32_t>(NextBounded(n - i));
      std::swap((*out)[i], (*out)[j]);
    }
    out->resize(k);
    return;
  }
  // Sparse draw (k << n): Floyd's algorithm, O(k) expected, avoids touching
  // all n candidates. Hot path for steal-victim selection on large clusters.
  // Membership testing never touches the draw stream, so the structure is a
  // pure implementation choice: a linear scan over the output for small k
  // (steal caps), an epoch-stamped scratch array for larger k (probe
  // batches) — both allocation-free once warm.
  std::vector<uint32_t>& chosen = *out;
  if (k <= 16) {
    for (uint32_t i = n - k; i < n; ++i) {
      const uint32_t j = static_cast<uint32_t>(NextBounded(i + 1));
      bool have_j = false;
      for (const uint32_t v : chosen) {
        if (v == j) {
          have_j = true;
          break;
        }
      }
      chosen.push_back(have_j ? i : j);
    }
  } else {
    if (sample_stamp_.size() < n) {
      sample_stamp_.resize(n, 0);
    }
    if (++sample_epoch_ == 0) {  // Epoch wrap: invalidate all stale stamps.
      std::fill(sample_stamp_.begin(), sample_stamp_.end(), 0);
      sample_epoch_ = 1;
    }
    for (uint32_t i = n - k; i < n; ++i) {
      const uint32_t j = static_cast<uint32_t>(NextBounded(i + 1));
      const uint32_t pick = sample_stamp_[j] == sample_epoch_ ? i : j;
      sample_stamp_[pick] = sample_epoch_;
      chosen.push_back(pick);
    }
  }
  // Floyd's produces a biased *order*; shuffle so callers that probe the
  // sample sequentially (steal attempts) see a uniform ordering.
  for (uint32_t i = k; i > 1; --i) {
    const uint32_t j = static_cast<uint32_t>(NextBounded(i));
    std::swap(chosen[i - 1], chosen[j]);
  }
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace hawk
