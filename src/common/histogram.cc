#include "src/common/histogram.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace hawk {

void Samples::Add(double value) {
  values_.push_back(value);
  sorted_ = false;
}

void Samples::AddAll(const std::vector<double>& values) {
  values_.insert(values_.end(), values.begin(), values.end());
  sorted_ = false;
}

void Samples::EnsureSorted() const {
  if (!sorted_) {
    auto* mutable_values = const_cast<std::vector<double>*>(&values_);
    std::sort(mutable_values->begin(), mutable_values->end());
    sorted_ = true;
  }
}

double Samples::Min() const {
  HAWK_CHECK(!values_.empty());
  EnsureSorted();
  return values_.front();
}

double Samples::Max() const {
  HAWK_CHECK(!values_.empty());
  EnsureSorted();
  return values_.back();
}

double Samples::Sum() const {
  double sum = 0.0;
  for (const double v : values_) {
    sum += v;
  }
  return sum;
}

double Samples::Mean() const {
  HAWK_CHECK(!values_.empty());
  return Sum() / static_cast<double>(values_.size());
}

double Samples::Variance() const {
  HAWK_CHECK(!values_.empty());
  const double mean = Mean();
  double acc = 0.0;
  for (const double v : values_) {
    acc += (v - mean) * (v - mean);
  }
  return acc / static_cast<double>(values_.size());
}

double Samples::Stddev() const { return std::sqrt(Variance()); }

double Samples::Percentile(double pct) const {
  HAWK_CHECK(!values_.empty());
  HAWK_CHECK_GE(pct, 0.0);
  HAWK_CHECK_LE(pct, 100.0);
  EnsureSorted();
  if (values_.size() == 1) {
    return values_[0];
  }
  const double rank = pct / 100.0 * static_cast<double>(values_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double Samples::CdfAt(double value) const {
  if (values_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  const auto it = std::upper_bound(values_.begin(), values_.end(), value);
  return static_cast<double>(it - values_.begin()) / static_cast<double>(values_.size());
}

std::vector<std::pair<double, double>> Samples::CdfSeries(size_t points) const {
  HAWK_CHECK_GT(points, 1u);
  std::vector<std::pair<double, double>> series;
  if (values_.empty()) {
    return series;
  }
  EnsureSorted();
  series.reserve(points);
  for (size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points - 1);
    const size_t idx =
        std::min(values_.size() - 1, static_cast<size_t>(q * static_cast<double>(values_.size())));
    series.emplace_back(values_[idx], static_cast<double>(idx + 1) /
                                          static_cast<double>(values_.size()));
  }
  return series;
}

}  // namespace hawk
