// Power-of-two ring buffer.
//
// FIFO container for hot simulation paths: push/pop never touch an allocator
// once the ring is warm, storage is contiguous (two spans at most), and
// random access is one mask. Shared by the worker queues (src/cluster) and
// the event queue's monotone lanes (src/sim) so the modular-index and grow
// invariants live in exactly one place.
#ifndef HAWK_COMMON_RING_BUFFER_H_
#define HAWK_COMMON_RING_BUFFER_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace hawk {

template <typename T>
class RingBuffer {
 public:
  bool Empty() const { return size_ == 0; }
  size_t Size() const { return size_; }

  const T& Front() const {
    HAWK_CHECK(size_ > 0);
    return ring_[head_];
  }

  const T& Back() const {
    HAWK_CHECK(size_ > 0);
    return ring_[(head_ + size_ - 1) & mask_];
  }

  // Element at FIFO position `i` (0 = next to pop).
  const T& At(size_t i) const {
    HAWK_CHECK_LT(i, size_);
    return ring_[(head_ + i) & mask_];
  }

  void PushBack(T value) {
    if (size_ == ring_.size()) {
      Grow();
    }
    ring_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  T PopFront() {
    HAWK_CHECK(size_ > 0);
    T value = std::move(ring_[head_]);
    head_ = (head_ + 1) & mask_;
    --size_;
    return value;
  }

  // Removes FIFO positions [begin, end), shifting whichever side of the gap
  // is smaller.
  void EraseRange(size_t begin, size_t end) {
    HAWK_CHECK_LE(begin, end);
    HAWK_CHECK_LE(end, size_);
    const size_t count = end - begin;
    if (count == 0) {
      return;
    }
    if (begin <= size_ - end) {
      // Fewer entries before the gap: shift the head side right.
      for (size_t i = begin; i > 0; --i) {
        ring_[(head_ + i - 1 + count) & mask_] = std::move(ring_[(head_ + i - 1) & mask_]);
      }
      head_ = (head_ + count) & mask_;
    } else {
      // Fewer entries after the gap: shift the tail side left.
      for (size_t i = end; i < size_; ++i) {
        ring_[(head_ + i - count) & mask_] = std::move(ring_[(head_ + i) & mask_]);
      }
    }
    size_ -= count;
  }

  void Clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  void Grow() {
    const size_t new_capacity = ring_.empty() ? 8 : ring_.size() * 2;
    std::vector<T> grown(new_capacity);
    for (size_t i = 0; i < size_; ++i) {
      grown[i] = std::move(ring_[(head_ + i) & mask_]);
    }
    ring_ = std::move(grown);
    head_ = 0;
    mask_ = new_capacity - 1;
  }

  // ring_.size() is always zero or a power of two; mask_ = ring_.size() - 1.
  // Valid entries are ring_[(head_ + i) & mask_] for i in [0, size_).
  std::vector<T> ring_;
  size_t head_ = 0;
  size_t size_ = 0;
  size_t mask_ = 0;
};

}  // namespace hawk

#endif  // HAWK_COMMON_RING_BUFFER_H_
