#include "src/common/flags.h"

#include <cstdlib>
#include <sstream>

#include "src/common/check.h"

namespace hawk {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  program_name_ = argc > 0 ? argv[0] : "unknown";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // Bare boolean flag.
    }
  }
}

bool Flags::Has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::GetString(const std::string& name, const std::string& default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  char* end = nullptr;
  const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  HAWK_CHECK(end != nullptr && *end == '\0') << "flag --" << name << " is not an integer: "
                                             << it->second;
  return v;
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  HAWK_CHECK(end != nullptr && *end == '\0') << "flag --" << name << " is not a number: "
                                             << it->second;
  return v;
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no") {
    return false;
  }
  HAWK_CHECK(false) << "flag --" << name << " is not a boolean: " << v;
  return default_value;
}

std::vector<int64_t> Flags::GetIntList(const std::string& name,
                                       const std::vector<int64_t>& default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  std::vector<int64_t> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    char* end = nullptr;
    const int64_t v = std::strtoll(item.c_str(), &end, 10);
    HAWK_CHECK(end != nullptr && *end == '\0')
        << "flag --" << name << " has a non-integer element: " << item;
    out.push_back(v);
  }
  return out;
}

}  // namespace hawk
