// Sample collection with exact percentile and CDF extraction.
//
// Experiments collect up to a few hundred thousand job runtimes; an exact
// sorted-sample implementation is both simpler and more faithful to the
// paper's reported percentiles than a sketch would be.
#ifndef HAWK_COMMON_HISTOGRAM_H_
#define HAWK_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace hawk {

class Samples {
 public:
  Samples() = default;

  void Add(double value);
  void AddAll(const std::vector<double>& values);

  size_t Count() const { return values_.size(); }
  bool Empty() const { return values_.empty(); }

  double Min() const;
  double Max() const;
  double Mean() const;
  double Sum() const;
  double Variance() const;  // Population variance.
  double Stddev() const;

  // Exact percentile with linear interpolation between order statistics.
  // `pct` in [0, 100]. Requires a non-empty sample set.
  double Percentile(double pct) const;
  double Median() const { return Percentile(50.0); }

  // Empirical CDF evaluated at `value`: P(X <= value).
  double CdfAt(double value) const;

  // (value, cumulative probability) pairs over `points` evenly spaced order
  // statistics — the series behind the paper's CDF figures.
  std::vector<std::pair<double, double>> CdfSeries(size_t points) const;

  const std::vector<double>& values() const { return values_; }

 private:
  void EnsureSorted() const;

  std::vector<double> values_;
  mutable bool sorted_ = true;
};

}  // namespace hawk

#endif  // HAWK_COMMON_HISTOGRAM_H_
