// Core scalar types shared across the Hawk library.
//
// All simulated time is kept in integer microseconds to make event ordering
// exact and runs bit-reproducible across platforms; helpers convert to and
// from seconds at the edges (trace files, reports).
#ifndef HAWK_COMMON_TYPES_H_
#define HAWK_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace hawk {

// A point in simulated time, in microseconds since simulation start.
using SimTime = int64_t;
// A span of simulated time, in microseconds.
using DurationUs = int64_t;

// Identifier types. Plain integers are used (rather than wrapper classes) to
// keep hot simulation structures trivially copyable; the distinct aliases
// document intent at interfaces.
using JobId = uint32_t;
using TaskIndex = uint32_t;
using WorkerId = uint32_t;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();
inline constexpr JobId kInvalidJob = std::numeric_limits<JobId>::max();
inline constexpr WorkerId kInvalidWorker = std::numeric_limits<WorkerId>::max();

inline constexpr DurationUs kMicrosPerSecond = 1'000'000;
inline constexpr DurationUs kMicrosPerMilli = 1'000;

// Converts seconds (as used in the paper's traces and figures) to microseconds.
constexpr DurationUs SecondsToUs(double seconds) {
  return static_cast<DurationUs>(seconds * static_cast<double>(kMicrosPerSecond) + 0.5);
}

constexpr DurationUs MillisToUs(double millis) {
  return static_cast<DurationUs>(millis * static_cast<double>(kMicrosPerMilli) + 0.5);
}

constexpr double UsToSeconds(DurationUs us) {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerSecond);
}

}  // namespace hawk

#endif  // HAWK_COMMON_TYPES_H_
