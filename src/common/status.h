// Lightweight error propagation for fallible, non-hot-path operations
// (trace file I/O, configuration validation). Hot simulation paths use
// HAWK_CHECK for invariants instead; no exceptions are used in the library.
#ifndef HAWK_COMMON_STATUS_H_
#define HAWK_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "src/common/check.h"

namespace hawk {

class Status {
 public:
  static Status Ok() { return Status(); }
  static Status Error(std::string message) { return Status(std::move(message)); }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  Status() : ok_(true) {}
  explicit Status(std::string message) : ok_(false), message_(std::move(message)) {}

  bool ok_;
  std::string message_;
};

// Either a value or an error message. Minimal analogue of absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : data_(std::move(value)) {}          // NOLINT: implicit by design
  StatusOr(Status status) : data_(std::move(status)) {    // NOLINT: implicit by design
    HAWK_CHECK(!std::get<Status>(data_).ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const {
    HAWK_CHECK(ok()) << status().message();
    return std::get<T>(data_);
  }
  T& value() {
    HAWK_CHECK(ok()) << status().message();
    return std::get<T>(data_);
  }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace hawk

#endif  // HAWK_COMMON_STATUS_H_
