// Deterministic random number generation.
//
// The standard <random> distributions are implementation-defined, which would
// make traces and simulation results differ across standard libraries. All
// randomness in the project flows through this xoshiro256++ engine and the
// hand-rolled distributions below, so a seed fully determines an experiment.
#ifndef HAWK_COMMON_RANDOM_H_
#define HAWK_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"

namespace hawk {

// xoshiro256++ by Blackman & Vigna (public domain reference implementation
// re-expressed); seeded via SplitMix64 so that any 64-bit seed is usable.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed);

  uint64_t Next();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [0, bound), bias-free via rejection.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Exponential with the given mean (= scale parameter).
  double Exponential(double mean);

  // Standard normal via Box-Muller (deterministic, no cached spare).
  double Gaussian(double mean, double stddev);

  // Gaussian(mean, stddev) rejection-sampled to be strictly positive; used by
  // the paper's synthetic-trace recipe ("excluding negative values").
  double PositiveGaussian(double mean, double stddev);

  // Log-normal given the median (= exp(mu)) and sigma of the underlying normal.
  double LogNormalMedian(double median, double sigma);

  // True with probability p.
  bool Bernoulli(double p);

  // Fisher-Yates sample of k distinct values from [0, n). k must be <= n.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  // Buffer-reusing variant for hot paths: fills *out with the sample,
  // reusing its capacity (no allocation once warm). The draw sequence is
  // identical to the returning overload, so the two are interchangeable
  // without perturbing determinism.
  void SampleWithoutReplacement(uint32_t n, uint32_t k, std::vector<uint32_t>* out);

  // Forks an independent, deterministic child stream (for per-component RNGs).
  Rng Fork();

 private:
  uint64_t state_[4];
  // Epoch-stamped membership scratch for the buffer-reusing sample overload.
  // Purely an acceleration structure: it never influences the draw stream,
  // and forks/seeds are unaffected by it.
  std::vector<uint32_t> sample_stamp_;
  uint32_t sample_epoch_ = 0;
};

}  // namespace hawk

#endif  // HAWK_COMMON_RANDOM_H_
