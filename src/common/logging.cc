#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace hawk {
namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized, resolve from environment.
std::mutex g_write_mutex;

LogLevel LevelFromEnvironment() {
  const char* env = std::getenv("HAWK_LOG_LEVEL");
  if (env == nullptr) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(env, "debug") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(env, "warn") == 0) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(env, "error") == 0) {
    return LogLevel::kError;
  }
  return LogLevel::kInfo;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(LevelFromEnvironment());
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  enabled_ = static_cast<int>(level) >= static_cast<int>(GetLogLevel());
  if (enabled_) {
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << LevelName(level) << " " << (base != nullptr ? base + 1 : file) << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    // Single write under a mutex so prototype-runtime threads do not
    // interleave characters.
    std::lock_guard<std::mutex> lock(g_write_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  (void)level_;
}

}  // namespace internal
}  // namespace hawk
