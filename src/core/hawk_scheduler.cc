#include "src/core/hawk_scheduler.h"

#include <cmath>

#include "src/core/probe_placement.h"

namespace hawk {

void HawkPolicy::Attach(SchedulerContext* ctx) {
  SchedulerPolicy::Attach(ctx);
  const Cluster& cluster = ctx->GetCluster();
  central_queue_ = std::make_unique<SlotWaitingTimeQueue>(cluster, cluster.GeneralCount());
  stealing_ = std::make_unique<StealingPolicy>(config_.steal_cap, ctx->SchedRng().Next(),
                                               victim_selection_);
}

void HawkPolicy::OnJobArrival(const Job& job, const JobClass& cls) {
  const Cluster& cluster = ctx_->GetCluster();
  if (cls.is_long_sched) {
    if (config_.use_centralized_long) {
      ScheduleLongCentralized(job, cls);
    } else {
      // Component breakdown: long jobs fall back to distributed probing, but
      // stay confined to the general partition (§4.4).
      ScheduleDistributed(job, cls, /*first=*/0, cluster.GeneralSlots());
    }
    return;
  }
  // Short jobs probe the whole cluster: the short partition is reserved for
  // them, and any idle general-partition slot is fair game (§3.4, §3.5).
  ScheduleDistributed(job, cls, /*first=*/0, static_cast<uint32_t>(cluster.TotalSlots()));
}

void HawkPolicy::ScheduleLongCentralized(const Job& job, const JobClass& cls) {
  (void)cls;
  // Canonical rounded estimate from the tracker: the same value is replayed
  // by the start/finish feedback, keeping the backlog accounting exact.
  const DurationUs estimate_us = ctx_->Tracker().EstimateUs(job.id);
  for (uint32_t i = 0; i < job.NumTasks(); ++i) {
    const auto assignment = ctx_->Tracker().TakeNextTask(job.id);
    HAWK_CHECK(assignment.has_value());
    const WorkerId worker = central_queue_->AssignTask(ctx_->Now(), estimate_us);
    ctx_->PlaceTask(worker, job.id, assignment->task_index, assignment->duration,
                    /*is_long=*/true);
  }
}

void HawkPolicy::ScheduleDistributed(const Job& job, const JobClass& cls, SlotId first,
                                     uint32_t count) {
  const Cluster& cluster = ctx_->GetCluster();
  const uint32_t num_probes = config_.probe_ratio * job.NumTasks();
  ChooseProbeTargetsInto(ctx_->SchedRng(), first, count, num_probes, &targets_, &picks_);
  for (const SlotId slot : targets_) {
    ctx_->PlaceProbe(cluster.WorkerOfSlot(slot), job.id, cls.is_long_sched);
  }
}

void HawkPolicy::OnTaskStart(WorkerId worker, const QueueEntry& task) {
  // Only centrally placed (long) tasks are tracked by the waiting-time
  // queue; short tasks are invisible to the centralized component (§3.7).
  if (!task.is_long || !config_.use_centralized_long) {
    return;
  }
  central_queue_->OnTaskStart(worker, ctx_->Now(), ctx_->Tracker().EstimateUs(task.job));
}

void HawkPolicy::OnTaskFinish(WorkerId worker, JobId job, bool is_long) {
  (void)job;
  if (!is_long || !config_.use_centralized_long) {
    return;
  }
  central_queue_->OnTaskFinish(worker, ctx_->Now());
}

void HawkPolicy::OnTaskLost(JobId job, bool is_long) {
  // A centrally placed long task goes back through the waiting-time queue —
  // its scheduler lane — so the replacement again lands on the worker with
  // the minimum estimated wait. Everything else re-probes (base behavior).
  if (is_long && config_.use_centralized_long) {
    const DurationUs estimate_us = ctx_->Tracker().EstimateUs(job);
    const auto assignment = ctx_->Tracker().TakeNextTask(job);
    HAWK_CHECK(assignment.has_value()) << "lost task of job " << job << " not returned";
    const WorkerId worker = central_queue_->AssignTask(ctx_->Now(), estimate_us);
    ctx_->PlaceTask(worker, job, assignment->task_index, assignment->duration,
                    /*is_long=*/true);
    return;
  }
  SchedulerPolicy::OnTaskLost(job, is_long);
}

void HawkLateBindPolicy::ScheduleLongCentralized(const Job& job, const JobClass& cls) {
  (void)cls;
  // One probe per task on the minimum-wait worker. Tasks stay in the tracker
  // until a probe reaches service and its request is granted — the same late
  // binding short jobs get, aimed by the waiting-time queue instead of
  // random sampling. The estimate is charged here (AssignTask) and
  // discharged by OnTaskStart when the granted task runs, exactly as in the
  // eager lane.
  const DurationUs estimate_us = ctx_->Tracker().EstimateUs(job.id);
  for (uint32_t i = 0; i < job.NumTasks(); ++i) {
    const WorkerId worker = central_queue().AssignTask(ctx_->Now(), estimate_us);
    ctx_->PlaceProbe(worker, job.id, /*is_long=*/true);
  }
}

void HawkLateBindPolicy::OnProbeLost(JobId job, bool is_long) {
  if (ctx_->Tracker().AllTasksAssigned(job)) {
    return;
  }
  // Long probes are this policy's scheduler lane: the replacement goes back
  // through the waiting-time queue so it again lands on the minimum-wait
  // worker (mirrors HawkPolicy::OnTaskLost for the eager lane). Short probes
  // keep the base random re-probe.
  if (is_long && config().use_centralized_long) {
    const DurationUs estimate_us = ctx_->Tracker().EstimateUs(job);
    const WorkerId worker = central_queue().AssignTask(ctx_->Now(), estimate_us);
    ctx_->PlaceProbe(worker, job, /*is_long=*/true);
    return;
  }
  SchedulerPolicy::OnProbeLost(job, is_long);
}

void HawkPolicy::OnWorkerIdle(WorkerId worker) {
  if (!config_.use_stealing || config_.steal_cap == 0) {
    return;
  }
  // Stolen entries land straight on the thief's queue; the driver re-examines
  // it when this notification returns (stealing is free in the §4.1 cost
  // model), so no DeliverStolen round trip is needed.
  stealing_->TryStealInto(ctx_->GetCluster(), worker, &ctx_->Counters());
}

}  // namespace hawk
