// Randomized work stealing (paper §3.6).
//
// When a worker runs out of work it contacts up to `cap` random victims and
// steals from the first one holding an eligible group. Both general- and
// short-partition workers may steal, but victims are always in the general
// partition — "that is where the head-of-line blocking is caused by long
// jobs". What is stolen is the first consecutive group of short entries
// after a long entry (WorkerStore::ExtractStealableGroup, Fig. 3).
//
// Victim candidates are drawn from the general partition's *slot* space
// (excluding the thief's own slots), so a big multi-slot worker is
// proportionally more likely to be contacted — it holds proportionally more
// of the cluster's blocked work. With single-slot workers the slot space is
// the worker space and the draw sequence is identical to sampling workers.
//
// Victim *ordering* is pluggable: kRandom contacts the sampled victims in
// draw order (the paper's design); kDChoice sorts the same sample by
// descending queue length first — the power-of-d-choices idea applied to
// victim selection (PAPERS.md) — so the first contact is the likeliest to
// hold a stealable group. Both the simulation policies and the threaded
// prototype's node monitors obtain their victim lists here
// (ChooseVictimsInto); only the steal *execution* differs between the two.
#ifndef HAWK_CORE_STEALING_POLICY_H_
#define HAWK_CORE_STEALING_POLICY_H_

#include <algorithm>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/results.h"
#include "src/common/random.h"

namespace hawk {

class StealingPolicy {
 public:
  enum class VictimSelection : uint8_t {
    kRandom,   // Contact sampled victims in draw order (paper §3.6).
    kDChoice,  // Same sample, most-loaded victim first (power of d choices).
  };

  // `cap`: max random victims contacted per attempt (paper default 10).
  StealingPolicy(uint32_t cap, uint64_t seed,
                 VictimSelection selection = VictimSelection::kRandom)
      : cap_(cap), selection_(selection), rng_(seed) {}

  uint32_t cap() const { return cap_; }
  VictimSelection selection() const { return selection_; }

  // Fills `*victims` with the distinct victim workers one steal attempt
  // would contact, in contact order: up to `cap` candidate slots sampled
  // without replacement from the general partition (excluding the thief's
  // own slots), mapped to their owning workers, deduplicated, and — under
  // kDChoice — stably reordered by descending queue length. Draws from the
  // policy's RNG stream exactly like TryStealInto; under kRandom the contact
  // order equals the historical draw order bit for bit. Empty when cap is 0
  // or no other general-partition slot exists.
  void ChooseVictimsInto(const Cluster& cluster, WorkerId thief,
                         std::vector<WorkerId>* victims) {
    victims->clear();
    if (cap_ == 0) {
      return;
    }
    const SlotId general_slots = cluster.GeneralSlots();
    const bool thief_in_general = cluster.InGeneralPartition(thief);
    // Candidate pool: general-partition slots, minus the thief's own when it
    // is inside.
    const uint32_t thief_slots = thief_in_general ? cluster.workers().Slots(thief) : 0;
    const uint32_t pool = general_slots - thief_slots;
    if (pool == 0) {
      return;
    }
    const SlotId thief_begin = thief_in_general ? cluster.workers().SlotBegin(thief) : 0;
    const uint32_t contacts = std::min(cap_, pool);
    rng_.SampleWithoutReplacement(pool, contacts, &picks_);
    for (const uint32_t pick : picks_) {
      // Skip over the thief's slot range to map pool index -> slot id.
      const SlotId slot =
          (thief_in_general && pick >= thief_begin) ? pick + thief_slots : pick;
      const WorkerId victim = cluster.WorkerOfSlot(slot);
      // Distinct slots can map to the same multi-slot worker; re-probing it
      // within one attempt is a deterministic repeat-failure, so duplicates
      // are skipped and not counted as contacts. The sample stays fixed at
      // min(cap, pool) slots — single-slot fleets keep the exact historical
      // draw sequence — so an attempt in a multi-slot fleet may contact
      // fewer than cap distinct victims when its sample collides.
      if (std::find(victims->begin(), victims->end(), victim) != victims->end()) {
        continue;
      }
      victims->push_back(victim);
    }
    if (selection_ == VictimSelection::kDChoice) {
      // Most-loaded first; stable so equal queues keep the draw order (and
      // an all-empty view — e.g. the prototype's static layout cluster,
      // which carries no live queue state — degrades to kRandom exactly).
      std::stable_sort(victims->begin(), victims->end(),
                       [&cluster](WorkerId a, WorkerId b) {
                         return cluster.workers().QueueSize(a) >
                                cluster.workers().QueueSize(b);
                       });
    }
  }

  // Attempts one steal for `thief`, moving the first eligible victim's
  // stealable group straight onto the thief's queue (no intermediate
  // buffer). Returns the number of entries stolen; updates the steal
  // counters in `counters`. This is the simulation hot path: the victim
  // sample is drawn into a reused member buffer, so a failed attempt
  // allocates nothing.
  size_t TryStealInto(Cluster& cluster, WorkerId thief, RunCounters* counters) {
    return ForEachVictim(cluster, thief, counters, [&cluster, thief](WorkerId victim) {
      return cluster.workers().StealGroupInto(victim, thief);
    });
  }

  // Compatibility path for tests and custom policies: returns the stolen
  // entries instead of delivering them; the entries have already been
  // removed from the victim. Same victim-selection loop as TryStealInto, so
  // draw sequence and steal outcome are identical.
  std::vector<QueueEntry> TrySteal(Cluster& cluster, WorkerId thief, RunCounters* counters) {
    std::vector<QueueEntry> stolen;
    ForEachVictim(cluster, thief, counters, [&cluster, &stolen](WorkerId victim) {
      stolen = cluster.workers().ExtractStealableGroup(victim);
      return stolen.size();
    });
    return stolen;
  }

 private:
  // Shared victim loop: obtains the attempt's contact list through
  // ChooseVictimsInto (the same selection the prototype's node monitors
  // use), probes victims in that order via `try_victim(victim) -> entries
  // stolen`, and stops at the first success. Updates the steal counters;
  // returns the number of entries stolen.
  template <typename TryVictim>
  size_t ForEachVictim(Cluster& cluster, WorkerId thief, RunCounters* counters,
                       TryVictim&& try_victim) {
    if (cap_ == 0) {
      return 0;
    }
    counters->steal_attempts++;
    ChooseVictimsInto(cluster, thief, &victims_);
    for (const WorkerId victim : victims_) {
      counters->steal_victim_probes++;
      const size_t stolen = try_victim(victim);
      if (stolen > 0) {
        counters->steal_successes++;
        counters->entries_stolen += stolen;
        return stolen;
      }
    }
    return 0;
  }

  uint32_t cap_;
  VictimSelection selection_;
  Rng rng_;
  // Victim-sample scratch, reused across attempts.
  std::vector<uint32_t> picks_;
  // The current attempt's contact list (<= cap entries).
  std::vector<WorkerId> victims_;
};

}  // namespace hawk

#endif  // HAWK_CORE_STEALING_POLICY_H_
