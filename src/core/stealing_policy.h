// Randomized work stealing (paper §3.6).
//
// When a worker runs out of work it contacts up to `cap` distinct random
// workers and steals from the first one holding an eligible group. Both
// general- and short-partition workers may steal, but victims are always in
// the general partition — "that is where the head-of-line blocking is caused
// by long jobs". What is stolen is the first consecutive group of short
// entries after a long entry (Worker::ExtractStealableGroup, Fig. 3).
#ifndef HAWK_CORE_STEALING_POLICY_H_
#define HAWK_CORE_STEALING_POLICY_H_

#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/results.h"
#include "src/common/random.h"

namespace hawk {

class StealingPolicy {
 public:
  // `cap`: max random victims contacted per attempt (paper default 10).
  StealingPolicy(uint32_t cap, uint64_t seed) : cap_(cap), rng_(seed) {}

  uint32_t cap() const { return cap_; }

  // Attempts one steal for `thief`. Victim candidates are general-partition
  // workers other than the thief. Returns the stolen entries (empty when the
  // attempt failed); the entries have already been removed from the victim.
  // Updates the steal counters in `counters`.
  std::vector<QueueEntry> TrySteal(Cluster& cluster, WorkerId thief, RunCounters* counters) {
    std::vector<QueueEntry> stolen;
    if (cap_ == 0) {
      return stolen;
    }
    counters->steal_attempts++;
    const uint32_t general = cluster.GeneralCount();
    // Candidate pool: general partition, minus the thief when it is inside.
    const uint32_t pool = cluster.InGeneralPartition(thief) ? general - 1 : general;
    if (pool == 0) {
      return stolen;
    }
    const uint32_t contacts = std::min(cap_, pool);
    const std::vector<uint32_t> picks = rng_.SampleWithoutReplacement(pool, contacts);
    for (const uint32_t pick : picks) {
      // Skip over the thief's slot to map pool index -> worker id.
      const WorkerId victim =
          (cluster.InGeneralPartition(thief) && pick >= thief) ? pick + 1 : pick;
      counters->steal_victim_probes++;
      stolen = cluster.worker(victim).ExtractStealableGroup();
      if (!stolen.empty()) {
        counters->steal_successes++;
        counters->entries_stolen += stolen.size();
        return stolen;
      }
    }
    return stolen;
  }

 private:
  uint32_t cap_;
  Rng rng_;
};

}  // namespace hawk

#endif  // HAWK_CORE_STEALING_POLICY_H_
