// Randomized work stealing (paper §3.6).
//
// When a worker runs out of work it contacts up to `cap` distinct random
// workers and steals from the first one holding an eligible group. Both
// general- and short-partition workers may steal, but victims are always in
// the general partition — "that is where the head-of-line blocking is caused
// by long jobs". What is stolen is the first consecutive group of short
// entries after a long entry (Worker::ExtractStealableGroup, Fig. 3).
#ifndef HAWK_CORE_STEALING_POLICY_H_
#define HAWK_CORE_STEALING_POLICY_H_

#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/results.h"
#include "src/common/random.h"

namespace hawk {

class StealingPolicy {
 public:
  // `cap`: max random victims contacted per attempt (paper default 10).
  StealingPolicy(uint32_t cap, uint64_t seed) : cap_(cap), rng_(seed) {}

  uint32_t cap() const { return cap_; }

  // Attempts one steal for `thief`, moving the first eligible victim's
  // stealable group straight onto the thief's queue (no intermediate
  // buffer). Victim candidates are general-partition workers other than the
  // thief. Returns the number of entries stolen; updates the steal counters
  // in `counters`. This is the simulation hot path: the victim sample is
  // drawn into a reused member buffer, so a failed attempt allocates
  // nothing.
  size_t TryStealInto(Cluster& cluster, WorkerId thief, RunCounters* counters) {
    Worker& thief_worker = cluster.worker(thief);
    return ForEachVictim(cluster, thief, counters, [&cluster, &thief_worker](WorkerId victim) {
      return cluster.worker(victim).StealGroupInto(&thief_worker);
    });
  }

  // Compatibility path for tests and custom policies: returns the stolen
  // entries instead of delivering them; the entries have already been
  // removed from the victim. Same victim-selection loop as TryStealInto, so
  // draw sequence and steal outcome are identical.
  std::vector<QueueEntry> TrySteal(Cluster& cluster, WorkerId thief, RunCounters* counters) {
    std::vector<QueueEntry> stolen;
    ForEachVictim(cluster, thief, counters, [&cluster, &stolen](WorkerId victim) {
      stolen = cluster.worker(victim).ExtractStealableGroup();
      return stolen.size();
    });
    return stolen;
  }

 private:
  // Shared victim-selection loop: samples up to `cap_` candidates from the
  // general partition (excluding the thief), probes them in sample order via
  // `try_victim(victim) -> entries stolen`, and stops at the first success.
  // Updates the steal counters; returns the number of entries stolen.
  template <typename TryVictim>
  size_t ForEachVictim(Cluster& cluster, WorkerId thief, RunCounters* counters,
                       TryVictim&& try_victim) {
    if (cap_ == 0) {
      return 0;
    }
    counters->steal_attempts++;
    const uint32_t general = cluster.GeneralCount();
    // Candidate pool: general partition, minus the thief when it is inside.
    const uint32_t pool = cluster.InGeneralPartition(thief) ? general - 1 : general;
    if (pool == 0) {
      return 0;
    }
    const uint32_t contacts = std::min(cap_, pool);
    rng_.SampleWithoutReplacement(pool, contacts, &picks_);
    for (const uint32_t pick : picks_) {
      // Skip over the thief's slot to map pool index -> worker id.
      const WorkerId victim =
          (cluster.InGeneralPartition(thief) && pick >= thief) ? pick + 1 : pick;
      counters->steal_victim_probes++;
      const size_t stolen = try_victim(victim);
      if (stolen > 0) {
        counters->steal_successes++;
        counters->entries_stolen += stolen;
        return stolen;
      }
    }
    return 0;
  }

  uint32_t cap_;
  Rng rng_;
  // Victim-sample scratch, reused across attempts.
  std::vector<uint32_t> picks_;
};

}  // namespace hawk

#endif  // HAWK_CORE_STEALING_POLICY_H_
