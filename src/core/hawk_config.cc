#include "src/core/hawk_config.h"

#include <algorithm>
#include <limits>
#include <string>
#include <type_traits>

namespace hawk {
namespace {

// Range-checked narrowing: an out-of-range double -> integer cast is UB and
// would silently bypass Validate()'s fail-loudly contract (e.g.
// Vary("probe_ratio", {-1}) wrapping to 4294967295 and passing validation).
template <typename T>
bool SetIntegerField(T* field, double value) {
  // Exact bounds: 2^63 and 2^64 are representable doubles; the max itself
  // is not (for int64/uint64), so use half-open upper bounds.
  if (value != value) {  // NaN.
    return false;
  }
  if constexpr (std::is_same_v<T, uint32_t>) {
    if (value < 0.0 || value >= 4294967296.0) {
      return false;
    }
  } else if constexpr (std::is_same_v<T, uint64_t>) {
    if (value < 0.0 || value >= 18446744073709551616.0) {
      return false;
    }
  } else {
    static_assert(std::is_same_v<T, int64_t>);
    if (value < -9223372036854775808.0 || value >= 9223372036854775808.0) {
      return false;
    }
  }
  *field = static_cast<T>(value);
  return true;
}

// One row per sweepable field; `set` returns false when the value cannot be
// represented in the field. Kept sorted by name; ConfigFieldNames() returns
// them in this order.
struct FieldSetter {
  std::string_view name;
  bool (*set)(HawkConfig&, double);
};

constexpr FieldSetter kFields[] = {
    {"big_worker_fraction",
     [](HawkConfig& c, double v) {
       c.big_worker_fraction = v;
       return true;
     }},
    {"big_worker_slots",
     [](HawkConfig& c, double v) { return SetIntegerField(&c.big_worker_slots, v); }},
    {"cutoff_us", [](HawkConfig& c, double v) { return SetIntegerField(&c.cutoff_us, v); }},
    {"estimate_noise_hi",
     [](HawkConfig& c, double v) {
       c.estimate_noise_hi = v;
       return true;
     }},
    {"estimate_noise_lo",
     [](HawkConfig& c, double v) {
       c.estimate_noise_lo = v;
       return true;
     }},
    {"fault_seed", [](HawkConfig& c, double v) { return SetIntegerField(&c.fault_seed, v); }},
    {"message_delay_jitter_us",
     [](HawkConfig& c, double v) { return SetIntegerField(&c.message_delay_jitter_us, v); }},
    {"message_loss_rate",
     [](HawkConfig& c, double v) {
       c.message_loss_rate = v;
       return true;
     }},
    {"net_delay_us",
     [](HawkConfig& c, double v) { return SetIntegerField(&c.net_delay_us, v); }},
    {"num_workers",
     [](HawkConfig& c, double v) { return SetIntegerField(&c.num_workers, v); }},
    {"partition_by_slots",
     [](HawkConfig& c, double v) {
       c.partition_by_slots = v != 0.0;
       return true;
     }},
    {"probe_ratio",
     [](HawkConfig& c, double v) { return SetIntegerField(&c.probe_ratio, v); }},
    {"retry_budget",
     [](HawkConfig& c, double v) { return SetIntegerField(&c.retry_budget, v); }},
    {"seed", [](HawkConfig& c, double v) { return SetIntegerField(&c.seed, v); }},
    {"short_partition_fraction",
     [](HawkConfig& c, double v) {
       c.short_partition_fraction = v;
       return true;
     }},
    {"sim_epoch_coalescing",
     [](HawkConfig& c, double v) {
       c.sim_epoch_coalescing = v != 0.0;
       return true;
     }},
    {"sim_shards",
     [](HawkConfig& c, double v) { return SetIntegerField(&c.sim_shards, v); }},
    {"sim_threads",
     [](HawkConfig& c, double v) { return SetIntegerField(&c.sim_threads, v); }},
    {"slots_per_worker",
     [](HawkConfig& c, double v) { return SetIntegerField(&c.slots_per_worker, v); }},
    {"speculation_threshold",
     [](HawkConfig& c, double v) {
       c.speculation_threshold = v;
       return true;
     }},
    {"steal_cap", [](HawkConfig& c, double v) { return SetIntegerField(&c.steal_cap, v); }},
    {"steal_retry_interval_us",
     [](HawkConfig& c, double v) { return SetIntegerField(&c.steal_retry_interval_us, v); }},
    {"straggler_rate",
     [](HawkConfig& c, double v) {
       c.straggler_rate = v;
       return true;
     }},
    {"straggler_slowdown_factor",
     [](HawkConfig& c, double v) {
       c.straggler_slowdown_factor = v;
       return true;
     }},
    {"use_centralized_long",
     [](HawkConfig& c, double v) {
       c.use_centralized_long = v != 0.0;
       return true;
     }},
    {"use_partition",
     [](HawkConfig& c, double v) {
       c.use_partition = v != 0.0;
       return true;
     }},
    {"use_stealing",
     [](HawkConfig& c, double v) {
       c.use_stealing = v != 0.0;
       return true;
     }},
    {"util_sample_period_us",
     [](HawkConfig& c, double v) { return SetIntegerField(&c.util_sample_period_us, v); }},
    {"worker_churn_rate",
     [](HawkConfig& c, double v) {
       c.worker_churn_rate = v;
       return true;
     }},
    {"worker_crash_rate",
     [](HawkConfig& c, double v) {
       c.worker_crash_rate = v;
       return true;
     }},
    {"worker_downtime_us",
     [](HawkConfig& c, double v) { return SetIntegerField(&c.worker_downtime_us, v); }},
};

}  // namespace

uint32_t HawkConfig::GeneralCount() const {
  if (!use_partition) {
    return num_workers;
  }
  if (!partition_by_slots) {
    const auto short_count = static_cast<uint32_t>(
        static_cast<double>(num_workers) * short_partition_fraction);
    // Never let the general partition vanish entirely.
    return num_workers > short_count ? num_workers - short_count : 1;
  }
  // Capacity-aware split: reserve short_partition_fraction of the cluster's
  // *slots*. The short partition is the worker-id suffix, so walk down from
  // the top of the id space while the suffix's slot total stays within the
  // target share (floor semantics, mirroring the worker-count split). The
  // layout is a pure function of the config (SlotSpec::SlotsOf), so this
  // needs no WorkerStore. With uniform capacity,
  // floor(floor(N*s*f)/s) == floor(N*f): the boundary matches the
  // worker-count split exactly.
  const SlotSpec spec = Slots();
  uint64_t total_slots = 0;
  for (WorkerId w = 0; w < num_workers; ++w) {
    total_slots += spec.SlotsOf(w, num_workers);
  }
  const auto target_short_slots = static_cast<uint64_t>(
      static_cast<double>(total_slots) * short_partition_fraction);
  uint64_t suffix_slots = 0;
  uint32_t general = num_workers;
  while (general > 1) {
    const uint32_t candidate = spec.SlotsOf(general - 1, num_workers);
    if (suffix_slots + candidate > target_short_slots) {
      break;
    }
    suffix_slots += candidate;
    --general;
  }
  return general;
}

Status HawkConfig::Validate() const {
  if (num_workers == 0) {
    return Status::Error("num_workers must be nonzero");
  }
  if (probe_ratio < 1) {
    return Status::Error("probe_ratio must be >= 1 (got 0)");
  }
  if (slots_per_worker < 1 || slots_per_worker > kMaxSlotsPerWorker) {
    return Status::Error("slots_per_worker must be in [1, " +
                         std::to_string(kMaxSlotsPerWorker) + "], got " +
                         std::to_string(slots_per_worker));
  }
  if (!(big_worker_fraction >= 0.0 && big_worker_fraction <= 1.0)) {
    return Status::Error("big_worker_fraction must be in [0, 1], got " +
                         std::to_string(big_worker_fraction));
  }
  if (big_worker_fraction > 0.0 &&
      (big_worker_slots < 1 || big_worker_slots > kMaxSlotsPerWorker)) {
    return Status::Error("big_worker_slots must be in [1, " +
                         std::to_string(kMaxSlotsPerWorker) +
                         "] when big_worker_fraction > 0, got " +
                         std::to_string(big_worker_slots));
  }
  {
    // Exact layout total (not a worst-case bound): heterogeneous fleets are
    // rejected only when their actual slot count overflows.
    const SlotSpec spec = Slots();
    const uint64_t big = spec.BigWorkerCount(num_workers);
    const uint64_t total = (static_cast<uint64_t>(num_workers) - big) * slots_per_worker +
                           big * big_worker_slots;
    if (total > std::numeric_limits<uint32_t>::max()) {
      return Status::Error("total slot count (" + std::to_string(total) +
                           ") overflows the 32-bit slot-index space");
    }
  }
  if (!(short_partition_fraction >= 0.0 && short_partition_fraction < 1.0)) {
    return Status::Error("short_partition_fraction must be in [0, 1), got " +
                         std::to_string(short_partition_fraction));
  }
  if (!(estimate_noise_lo >= 0.0)) {
    return Status::Error("estimate_noise_lo must be >= 0, got " +
                         std::to_string(estimate_noise_lo));
  }
  if (!(estimate_noise_lo <= estimate_noise_hi)) {
    return Status::Error("estimate_noise_lo (" + std::to_string(estimate_noise_lo) +
                         ") must be <= estimate_noise_hi (" + std::to_string(estimate_noise_hi) +
                         ")");
  }
  if (cutoff_us < 0) {
    return Status::Error("cutoff_us must be >= 0");
  }
  if (net_delay_us < 0) {
    return Status::Error("net_delay_us must be >= 0");
  }
  if (steal_retry_interval_us < 0) {
    return Status::Error("steal_retry_interval_us must be >= 0");
  }
  if (util_sample_period_us <= 0) {
    return Status::Error("util_sample_period_us must be > 0");
  }
  if (!(worker_crash_rate >= 0.0)) {
    return Status::Error("worker_crash_rate must be >= 0, got " +
                         std::to_string(worker_crash_rate));
  }
  if (!(worker_churn_rate >= 0.0)) {
    return Status::Error("worker_churn_rate must be >= 0, got " +
                         std::to_string(worker_churn_rate));
  }
  if ((worker_crash_rate > 0.0 || worker_churn_rate > 0.0) && worker_downtime_us <= 0) {
    return Status::Error("worker_downtime_us must be > 0 when crash/churn rates are set");
  }
  // Loss strictly below 1: retransmission terminates with probability 1 and
  // the expected retry chain stays finite.
  if (!(message_loss_rate >= 0.0 && message_loss_rate < 1.0)) {
    return Status::Error("message_loss_rate must be in [0, 1), got " +
                         std::to_string(message_loss_rate));
  }
  if (message_delay_jitter_us < 0) {
    return Status::Error("message_delay_jitter_us must be >= 0");
  }
  if (!(straggler_rate >= 0.0 && straggler_rate <= 1.0)) {
    return Status::Error("straggler_rate must be in [0, 1], got " +
                         std::to_string(straggler_rate));
  }
  if (straggler_rate > 0.0 && !(straggler_slowdown_factor > 1.0)) {
    return Status::Error(
        "straggler_slowdown_factor must be > 1 when straggler_rate > 0, got " +
        std::to_string(straggler_slowdown_factor));
  }
  if (!(speculation_threshold >= 0.0)) {
    return Status::Error("speculation_threshold must be >= 0, got " +
                         std::to_string(speculation_threshold));
  }
  if (retry_budget < 1) {
    return Status::Error("retry_budget must be >= 1 (got 0)");
  }
  if (sim_shards < 1) {
    return Status::Error("sim_shards must be >= 1 (got 0)");
  }
  if (sim_shards > 1) {
    if (sim_shards > num_workers) {
      return Status::Error("sim_shards (" + std::to_string(sim_shards) +
                           ") must not exceed num_workers (" + std::to_string(num_workers) +
                           "); every shard needs at least one worker");
    }
    // The sharded executor's safe horizon is the one-way network delay: all
    // cross-worker effects take at least one delivery, so each shard can
    // advance net_delay_us of virtual time between barriers. A zero delay
    // leaves no conservative window.
    if (net_delay_us < 1) {
      return Status::Error("sim_shards > 1 requires net_delay_us >= 1 (the horizon)");
    }
  }
  return Status::Ok();
}

Status SetConfigField(HawkConfig* config, std::string_view field, double value) {
  for (const FieldSetter& setter : kFields) {
    if (setter.name == field) {
      if (!setter.set(*config, value)) {
        return Status::Error("value " + std::to_string(value) +
                             " is out of range for config field '" + std::string(field) + "'");
      }
      return Status::Ok();
    }
  }
  std::string known;
  for (const FieldSetter& setter : kFields) {
    known += known.empty() ? "" : ", ";
    known += setter.name;
  }
  return Status::Error("unknown config field '" + std::string(field) + "'; known fields: " +
                       known);
}

std::vector<std::string_view> ConfigFieldNames() {
  std::vector<std::string_view> names;
  names.reserve(std::size(kFields));
  for (const FieldSetter& setter : kFields) {
    names.push_back(setter.name);
  }
  return names;
}

}  // namespace hawk
