// Probe target selection for batch probing (paper §2.3, §3.5).
//
// A job with t tasks sends `ratio * t` probes to targets chosen uniformly at
// random *without replacement* from an eligible index range. Callers pass
// either a worker-id range (single-slot clusters) or a slot-id range
// (multi-slot clusters, mapping back via Cluster::WorkerOfSlot) — the two
// coincide at one slot per worker, and sampling slots weights workers by
// capacity. When the probe count exceeds the eligible index count (large
// jobs on small partitions), probes are spread in whole rounds — every index
// receives floor(p / n) probes and a random distinct subset receives one
// more — preserving the invariant that the number of probes is never smaller
// than the number of tasks.
#ifndef HAWK_CORE_PROBE_PLACEMENT_H_
#define HAWK_CORE_PROBE_PLACEMENT_H_

#include <vector>

#include "src/common/check.h"
#include "src/common/random.h"
#include "src/common/types.h"

namespace hawk {

// Fills `*targets` with `num_probes` worker ids in [first, first + count),
// reusing the capacity of `*targets` and `*picks_scratch` so a warmed-up
// policy places probes without allocating. Draw sequence matches the
// returning overload below.
inline void ChooseProbeTargetsInto(Rng& rng, WorkerId first, uint32_t count,
                                   uint32_t num_probes, std::vector<WorkerId>* targets,
                                   std::vector<uint32_t>* picks_scratch) {
  HAWK_CHECK_GT(count, 0u);
  targets->clear();
  targets->reserve(num_probes);
  const uint32_t rounds = num_probes / count;
  const uint32_t remainder = num_probes % count;
  for (uint32_t r = 0; r < rounds; ++r) {
    for (uint32_t i = 0; i < count; ++i) {
      targets->push_back(first + i);
    }
  }
  if (remainder > 0) {
    rng.SampleWithoutReplacement(count, remainder, picks_scratch);
    for (const uint32_t pick : *picks_scratch) {
      targets->push_back(first + pick);
    }
  }
}

// Returns `num_probes` worker ids in [first, first + count).
inline std::vector<WorkerId> ChooseProbeTargets(Rng& rng, WorkerId first, uint32_t count,
                                                uint32_t num_probes) {
  std::vector<WorkerId> targets;
  std::vector<uint32_t> picks;
  ChooseProbeTargetsInto(rng, first, count, num_probes, &targets, &picks);
  return targets;
}

}  // namespace hawk

#endif  // HAWK_CORE_PROBE_PLACEMENT_H_
