// Configuration for the Hawk scheduler and the experiment harness.
//
// Defaults follow the paper's §4.1 "Parameters": probe ratio 2, steal cap 10,
// cutoff 1129 s (Google trace), 0.5 ms one-way network delay, utilization
// sampled every 100 s, short partition sized from the long-job task-seconds
// share (17% for the Google trace).
#ifndef HAWK_CORE_HAWK_CONFIG_H_
#define HAWK_CORE_HAWK_CONFIG_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/cluster/worker_store.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace hawk {

// How jobs are split into long/short for scheduling and metrics.
enum class ClassifyMode : uint8_t {
  // Compare the (possibly noise-injected) per-job average task runtime
  // against the cutoff — the paper's mechanism (§3.3), used for Google runs.
  kCutoff,
  // Use the generator's ground-truth cluster label — the paper's definition
  // for the synthetic Cloudera/Facebook/Yahoo traces (§4.1).
  kHint,
};

struct HawkConfig {
  uint32_t num_workers = 1500;

  // Concurrent task slots per worker (paper §4.1 models multi-slot nodes as
  // more single-slot workers; here the slots share one FIFO queue). Probe
  // placement and steal-victim selection sample the slot space, so capacity
  // weights placement automatically.
  uint32_t slots_per_worker = 1;

  // Heterogeneous capacity: this fraction of workers (spread evenly across
  // the id space) is upgraded to `big_worker_slots` slots instead of
  // `slots_per_worker`. 0 / 0 disables the upgrade.
  double big_worker_fraction = 0.0;
  uint32_t big_worker_slots = 0;

  // Fraction of workers reserved for short tasks only (§3.4). Hawk sizes it
  // from the long jobs' task-seconds share; see PartitionFromMix().
  double short_partition_fraction = 0.17;

  // Capacity-aware partition sizing: when set, the §3.4 split reserves
  // `short_partition_fraction` of the cluster's *slots* instead of its
  // workers, so a heterogeneous fleet (big_worker_fraction > 0) gives the
  // short partition its intended share of capacity, not of machine count.
  // Off (the default) keeps the historical worker-count split bit for bit;
  // with uniform capacity the two splits place the boundary on the same
  // worker, so the flag only changes results on heterogeneous fleets.
  bool partition_by_slots = false;

  // Long/short cutoff on estimated task runtime (§3.3).
  DurationUs cutoff_us = SecondsToUs(1129.0);
  ClassifyMode classify_mode = ClassifyMode::kCutoff;

  // Estimate mis-estimation range (§4.8): the true average is multiplied by
  // U(noise_lo, noise_hi). 1.0/1.0 disables noise.
  double estimate_noise_lo = 1.0;
  double estimate_noise_hi = 1.0;

  // Sparrow-style probing (§3.5): probes per task.
  uint32_t probe_ratio = 2;

  // Randomized stealing (§3.6): max random victims contacted per idle
  // transition. 0 disables stealing outright.
  uint32_t steal_cap = 10;

  // Extension beyond the paper: when > 0, a worker whose steal attempt found
  // nothing retries after this interval for as long as it stays idle (the
  // paper's design is one bounded round per idle transition). Exercised by
  // bench_ablation_steal_retry.
  DurationUs steal_retry_interval_us = 0;

  // Feature toggles for the §4.4 component breakdown.
  bool use_centralized_long = true;  // Off: long jobs probe the general partition.
  bool use_partition = true;         // Off: the whole cluster is general.
  bool use_stealing = true;

  // Simulation cost model (§4.1): one-way network delay; scheduling and
  // stealing decisions are free.
  DurationUs net_delay_us = MillisToUs(0.5);

  DurationUs util_sample_period_us = SecondsToUs(100.0);

  uint64_t seed = 42;

  // --- sharded simulation ---------------------------------------------------
  // Number of worker-store shards the simulation executor may advance in
  // parallel within one run. 1 (the default) selects the serial driver and is
  // byte-identical to builds without the sharded executor. Values > 1 select
  // the epoch-synchronized sharded executor: results are bit-identical across
  // thread counts and across shard counts > 1 for a given seed, but are a
  // sanctioned divergence from sim_shards=1 (stealing commits at epoch
  // barriers and straggler draws use per-worker substreams; pinned by the
  // golden-result fixtures). Simulation-only: the prototype runtime ignores
  // this knob.
  uint32_t sim_shards = 1;

  // OS threads driving the shard phases. 0 (the default) uses
  // min(sim_shards, hardware concurrency). Non-semantic: any value yields
  // bit-identical results for a fixed sim_shards.
  uint32_t sim_threads = 0;

  // Epoch coalescing in the sharded executor: when an epoch window contains
  // no shard-side events, the coordinator advances to the next window without
  // waking the phase pool (an empty phase commits nothing, so skipping it is
  // order-preserving by construction). Non-semantic like sim_threads: on and
  // off are bit-identical; the knob exists so tests can pin that.
  bool sim_epoch_coalescing = true;

  // --- fault injection ------------------------------------------------------
  // All knobs default to zero: a zero-fault run draws nothing from the fault
  // RNG and is byte-identical to a build without the fault layer.

  // Fail-stop crashes per worker-second (Poisson). A crashed worker loses its
  // queue and its in-flight tasks; lost tasks are handed back to their
  // scheduler lane for re-dispatch and the worker rejoins empty after
  // `worker_downtime_us`.
  double worker_crash_rate = 0.0;

  // Graceful departures per worker-second (Poisson). A departing worker
  // bounces queued and newly arriving entries back to their schedulers but
  // lets executing tasks finish, then rejoins after `worker_downtime_us`.
  double worker_churn_rate = 0.0;

  // How long a crashed or departed worker stays out of service.
  DurationUs worker_downtime_us = SecondsToUs(30.0);

  // Probability in [0, 1) that a probe/task delivery is dropped. Drops are
  // detected by a sender timeout and retransmitted (4x net_delay_us per
  // retry), so no message is lost forever — only delayed.
  double message_loss_rate = 0.0;

  // Extra per-delivery latency, uniform in [0, jitter]. Nonzero jitter makes
  // delivery order differ from send order, like a real network.
  DurationUs message_delay_jitter_us = 0;

  // Extra seed mixed into the fault RNG stream: sweeping fault_seed re-rolls
  // crash times and message drops while keeping workload and scheduler
  // decisions pinned to `seed`.
  uint64_t fault_seed = 0;

  // Probability in [0, 1] that a task execution is stricken slow: the copy
  // runs straggler_slowdown_factor times its duration (the extra time is
  // wasted work). The node stays alive and responsive — only this execution
  // drags — which is the failure mode crash injection cannot model.
  double straggler_rate = 0.0;

  // How much slower a stricken execution runs (> 1). Inert at
  // straggler_rate == 0.
  double straggler_slowdown_factor = 8.0;

  // Speculative re-execution (> 0 enables): when a running task's elapsed
  // time exceeds speculation_threshold x the job's estimated task runtime,
  // one duplicate copy is launched; the first completion wins and the loser
  // is counted as speculative waste. 0 disables speculation entirely.
  double speculation_threshold = 0.0;

  // Max retransmits per delivery under message loss. When the budget is
  // spent the sender abandons the delivery (counted, recovered through the
  // same lost-task/lost-probe lanes a crash uses) instead of retrying
  // forever — a storm limiter, not a correctness knob.
  uint32_t retry_budget = 16;

  // True when any fault axis is active (drives the fault-only bookkeeping in
  // the driver and the prototype).
  bool FaultsEnabled() const {
    return worker_crash_rate > 0.0 || worker_churn_rate > 0.0 ||
           message_loss_rate > 0.0 || message_delay_jitter_us > 0 ||
           straggler_rate > 0.0;
  }

  // True when the speculative re-execution subsystem is on.
  bool SpeculationEnabled() const { return speculation_threshold > 0.0; }

  // Sanity-checks the configuration; run entry points call this so a bad
  // config fails loudly instead of silently producing a nonsense run.
  Status Validate() const;

  // Size of the general partition (workers [0, GeneralCount())). Sized by
  // worker count, or — with partition_by_slots — by slot capacity; either
  // way the general partition never vanishes entirely.
  uint32_t GeneralCount() const;

  // Per-worker capacity layout for Cluster/WorkerStore construction.
  SlotSpec Slots() const {
    SlotSpec spec;
    spec.slots_per_worker = slots_per_worker;
    spec.big_worker_fraction = big_worker_fraction;
    spec.big_worker_slots = big_worker_slots;
    return spec;
  }
};

// Named numeric access to HawkConfig fields — the hook SweepSpec::Vary uses
// to declare sweep axes by field name. Integer fields truncate the double;
// boolean toggles treat nonzero as true. Unknown names return an error.
Status SetConfigField(HawkConfig* config, std::string_view field, double value);

// All field names SetConfigField accepts, sorted.
std::vector<std::string_view> ConfigFieldNames();

}  // namespace hawk

#endif  // HAWK_CORE_HAWK_CONFIG_H_
