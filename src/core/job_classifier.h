// Long/short job classification (paper §3.3).
//
// Produces two classifications per job: the *scheduling* class, derived from
// the (possibly noisy) runtime estimate, and the *metrics* class, derived
// from the noise-free estimate — Fig. 14 reports runtimes "for the set of
// jobs classified as long when no mis-estimations are present".
#ifndef HAWK_CORE_JOB_CLASSIFIER_H_
#define HAWK_CORE_JOB_CLASSIFIER_H_

#include "src/core/estimator.h"
#include "src/core/hawk_config.h"
#include "src/workload/job.h"

namespace hawk {

struct JobClass {
  bool is_long_sched = false;
  bool is_long_metrics = false;
  // The (possibly noisy) estimated task runtime the scheduler acts on, in
  // microseconds; the centralized component charges this to workers (§3.7).
  double estimate_us = 0.0;
};

class JobClassifier {
 public:
  JobClassifier(ClassifyMode mode, DurationUs cutoff_us, double noise_lo, double noise_hi,
                uint64_t seed)
      : mode_(mode), cutoff_us_(cutoff_us), estimator_(noise_lo, noise_hi, seed) {}

  JobClass Classify(const Job& job) {
    JobClass result;
    result.estimate_us = estimator_.EstimateAvgTaskUs(job);
    if (mode_ == ClassifyMode::kHint) {
      result.is_long_sched = job.long_hint;
      result.is_long_metrics = job.long_hint;
      return result;
    }
    result.is_long_sched = result.estimate_us >= static_cast<double>(cutoff_us_);
    result.is_long_metrics =
        Estimator::ExactAvgTaskUs(job) >= static_cast<double>(cutoff_us_);
    return result;
  }

  DurationUs cutoff_us() const { return cutoff_us_; }

 private:
  ClassifyMode mode_;
  DurationUs cutoff_us_;
  Estimator estimator_;
};

}  // namespace hawk

#endif  // HAWK_CORE_JOB_CLASSIFIER_H_
