#include "src/core/partition.h"

#include <algorithm>

#include "src/common/check.h"

namespace hawk {

double ShortPartitionFractionFromMix(const WorkloadMix& mix, double floor, double ceiling) {
  HAWK_CHECK_GE(floor, 0.0);
  HAWK_CHECK_LE(floor, ceiling);
  const double short_share = 1.0 - mix.pct_task_seconds_long / 100.0;
  return std::clamp(short_share, floor, ceiling);
}

double ShortPartitionFractionForTrace(const Trace& trace, const LongJobPredicate& is_long) {
  return ShortPartitionFractionFromMix(ComputeMix(trace, is_long));
}

}  // namespace hawk
