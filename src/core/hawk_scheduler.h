// The Hawk hybrid scheduler (paper §3) — the primary contribution.
//
// Long jobs are placed by a centralized waiting-time queue restricted to the
// general partition; short jobs are probed Sparrow-style over the entire
// cluster; idle workers steal blocked short work from random general-
// partition victims. Each mechanism has a toggle so the §4.4 component
// breakdown ("Hawk w/out centralized / partition / stealing") runs through
// the exact same code.
#ifndef HAWK_CORE_HAWK_SCHEDULER_H_
#define HAWK_CORE_HAWK_SCHEDULER_H_

#include <memory>

#include "src/core/hawk_config.h"
#include "src/core/slot_waiting_queue.h"
#include "src/core/stealing_policy.h"
#include "src/scheduler/policy.h"

namespace hawk {

class HawkPolicy : public SchedulerPolicy {
 public:
  // `victim_selection` picks the steal-victim contact order; kDChoice is the
  // "hawk-dchoice" registered variant (most-loaded victim first).
  explicit HawkPolicy(const HawkConfig& config,
                      StealingPolicy::VictimSelection victim_selection =
                          StealingPolicy::VictimSelection::kRandom)
      : config_(config), victim_selection_(victim_selection) {}

  void Attach(SchedulerContext* ctx) override;

  RuntimeShape ShapeForRuntime(const HawkConfig& config) const override {
    RuntimeShape shape = SchedulerPolicy::ShapeForRuntime(config);
    shape.victim_selection = victim_selection_;
    return shape;
  }

  void OnJobArrival(const Job& job, const JobClass& cls) override;
  void OnWorkerIdle(WorkerId worker) override;
  void OnTaskStart(WorkerId worker, const QueueEntry& task) override;
  void OnTaskFinish(WorkerId worker, JobId job, bool is_long) override;
  void OnTaskLost(JobId job, bool is_long) override;

  std::string_view Name() const override { return "hawk"; }

  const HawkConfig& config() const { return config_; }
  const SlotWaitingTimeQueue& waiting_times() const { return *central_queue_; }

 protected:
  // The long-job lane. Virtual so the "hawk-latebind" variant can swap the
  // eager task binding for probe placement without duplicating the routing
  // in OnJobArrival.
  virtual void ScheduleLongCentralized(const Job& job, const JobClass& cls);

  SlotWaitingTimeQueue& central_queue() { return *central_queue_; }

 private:
  void ScheduleDistributed(const Job& job, const JobClass& cls, SlotId first, uint32_t count);

  HawkConfig config_;
  StealingPolicy::VictimSelection victim_selection_;
  // Waiting-time queue over the general partition's slots only (§3.7).
  std::unique_ptr<SlotWaitingTimeQueue> central_queue_;
  std::unique_ptr<StealingPolicy> stealing_;
  // Probe-placement scratch (slot ids), reused across job arrivals.
  std::vector<SlotId> targets_;
  std::vector<uint32_t> picks_;
};

// "hawk-spec" registered variant: Hawk with speculative re-execution forced
// on. A config that sets speculation_threshold explicitly still wins;
// otherwise the variant supplies kDefaultSpeculationThreshold, so sweeping
// {"hawk", "hawk-spec"} under one config isolates the effect of speculation.
class HawkSpecPolicy : public HawkPolicy {
 public:
  static constexpr double kDefaultSpeculationThreshold = 2.0;

  using HawkPolicy::HawkPolicy;

  double SpeculationThreshold(const HawkConfig& config) const override {
    return config.speculation_threshold > 0.0 ? config.speculation_threshold
                                              : kDefaultSpeculationThreshold;
  }

  std::string_view Name() const override { return "hawk-spec"; }
};

// "hawk-latebind" registered variant: the centralized long-job lane places
// *probes* on the minimum-wait workers instead of binding tasks eagerly, so
// the driver's late-binding request machinery (§3.5) hands out tasks in
// probe-service order. The waiting-time accounting is unchanged — one
// AssignTask charge per probe, discharged when the granted task starts on
// that worker, which the per-worker FIFO protocol covers because a worker
// serves its probes in placement order. Lost probes are replaced through the
// waiting-time queue (not a random re-probe) so the min-wait property
// survives faults. On the prototype runtime the variant degrades to the
// eager centralized backend, like every placement nuance that needs live
// central state (see RuntimeShape).
class HawkLateBindPolicy : public HawkPolicy {
 public:
  using HawkPolicy::HawkPolicy;

  void OnProbeLost(JobId job, bool is_long) override;

  std::string_view Name() const override { return "hawk-latebind"; }

 protected:
  void ScheduleLongCentralized(const Job& job, const JobClass& cls) override;
};

}  // namespace hawk

#endif  // HAWK_CORE_HAWK_SCHEDULER_H_
