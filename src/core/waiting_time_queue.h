// Centralized long-job placement (paper §3.7).
//
// The centralized component keeps a priority queue of <worker, waiting time>
// sorted by waiting time: "the sum of the estimated execution time for all
// long tasks in that server's queue plus the remaining estimated execution
// time of any long task that currently may be executing". Each task of a new
// long job goes to the head (minimum waiting time) and the queue is updated
// after every assignment.
//
// The scheduler's view stays "timely and fairly accurate" (§3.7) because —
// exactly as in the Spark implementation, where node monitors report to the
// scheduler — it receives task start and finish notifications and
// re-synchronizes its estimate with reality at each one:
//   waiting(w, now) = backlog(w) + remaining(w, now)
//   backlog(w)   = sum of estimates of tasks assigned to w, not yet started
//   remaining(w) = max(0, exec_drain(w) - now), exec_drain set to now + est
//                  when a task starts and to now when it finishes.
// Between notifications the stored key — an absolute estimated drain time —
// is constant, so waiting times decay with the clock at no bookkeeping cost
// while the set ordering stays valid. Start notifications also absorb delays
// the scheduler cannot see directly (e.g. short tasks interleaved ahead of a
// long task on a general-partition worker): the backlog simply starts later.
#ifndef HAWK_CORE_WAITING_TIME_QUEUE_H_
#define HAWK_CORE_WAITING_TIME_QUEUE_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace hawk {

class WaitingTimeQueue {
 public:
  // Tracks workers [0, num_workers); all start with zero waiting time.
  explicit WaitingTimeQueue(uint32_t num_workers) {
    HAWK_CHECK_GT(num_workers, 0u);
    backlog_.assign(num_workers, 0);
    exec_drain_.assign(num_workers, 0);
    executing_.assign(num_workers, 0);
    key_.assign(num_workers, 0);
    key_executing_bit_.assign(num_workers, 0);
    heap_.reserve(num_workers);
    pos_.resize(num_workers);
    // All keys are equal (zero drain, idle), so ascending worker order is
    // already a valid min-heap under the comparator.
    for (uint32_t w = 0; w < num_workers; ++w) {
      heap_.push_back(Key{0, 0, w});
      pos_[w] = w;
    }
  }

  uint32_t NumWorkers() const { return static_cast<uint32_t>(backlog_.size()); }

  // Assigns one task with estimated runtime `estimate_us` to the worker with
  // the minimum waiting time and adds the estimate to its backlog. Ties are
  // broken by lowest worker id (deterministic).
  WorkerId AssignTask(SimTime now, DurationUs estimate_us) {
    HAWK_CHECK_GE(estimate_us, 0);
    // Stored keys only age downward relative to reality (a key is a lower
    // bound on the fresh key), so refreshing heads until the minimum is
    // fresh yields the exact minimum-waiting worker. Fast path: every fresh
    // key is >= now, and a drained head (no backlog, nothing executing) has
    // fresh key exactly `now` — it is a global minimum without any refresh,
    // which keeps assignments O(log n) on mostly-idle clusters. (Ties among
    // drained workers then resolve least-recently-drained first.)
    while (true) {
      const WorkerId head = heap_.front().worker;
      if (backlog_[head] == 0 && executing_[head] == 0) {
        break;
      }
      const SimTime fresh = std::max(now, exec_drain_[head]) + backlog_[head];
      if (fresh == key_[head]) {
        break;
      }
      Reindex(head, now);
    }
    const WorkerId worker = heap_.front().worker;
    backlog_[worker] += estimate_us;
    Reindex(worker, now);
    return worker;
  }

  // Notification: a tracked task with estimate `estimate_us` began executing
  // on `worker`. Must match a prior AssignTask estimate.
  void OnTaskStart(WorkerId worker, SimTime now, DurationUs estimate_us) {
    HAWK_CHECK_LT(worker, backlog_.size());
    HAWK_CHECK_GE(backlog_[worker], estimate_us) << "start without matching assignment";
    backlog_[worker] -= estimate_us;
    exec_drain_[worker] = now + estimate_us;
    executing_[worker] = 1;
    Reindex(worker, now);
  }

  // Notification: the tracked task executing on `worker` finished.
  void OnTaskFinish(WorkerId worker, SimTime now) {
    HAWK_CHECK_LT(worker, backlog_.size());
    exec_drain_[worker] = now;
    executing_[worker] = 0;
    Reindex(worker, now);
  }

  // Estimated waiting time of `worker` at `now` (§3.7 definition).
  DurationUs WaitingTime(WorkerId worker, SimTime now) const {
    HAWK_CHECK_LT(worker, backlog_.size());
    return backlog_[worker] + std::max<DurationUs>(0, exec_drain_[worker] - now);
  }

  DurationUs BacklogEstimate(WorkerId worker) const {
    HAWK_CHECK_LT(worker, backlog_.size());
    return backlog_[worker];
  }

 private:
  // Ordering: primary key is the absolute time at which the worker's known
  // long work would drain (max(now, exec_drain) + backlog — constant between
  // notifications). Among equal drains — notably workers whose estimated
  // waiting hit zero — prefer workers that are NOT currently executing a
  // tracked task: an overdue task (running past its estimate) has zero
  // *estimated* remaining time, but a genuinely free worker is still the
  // better home for a new task. Final tie-break: lowest id (deterministic).
  struct Key {
    SimTime drain;
    uint8_t executing;
    WorkerId worker;
    bool operator<(const Key& other) const {
      if (drain != other.drain) {
        return drain < other.drain;
      }
      if (executing != other.executing) {
        return executing < other.executing;
      }
      return worker < other.worker;
    }
  };

  // The priority structure is an indexed 4-ary min-heap over one Key per
  // worker (pos_ maps worker -> heap slot): find-min is O(1), a key update
  // is one allocation-free sift, and sift comparisons walk contiguous
  // memory. The comparator defines a total order, so the minimum — and thus
  // every assignment — is identical to what an ordered set would produce.
  void Reindex(WorkerId worker, SimTime now) {
    key_[worker] = std::max(now, exec_drain_[worker]) + backlog_[worker];
    key_executing_bit_[worker] = executing_[worker];
    const size_t i = pos_[worker];
    heap_[i] = Key{key_[worker], key_executing_bit_[worker], worker};
    SiftUp(i);
    SiftDown(pos_[worker]);
  }

  static constexpr size_t kArity = 4;

  void Place(size_t slot, const Key& key) {
    heap_[slot] = key;
    pos_[key.worker] = static_cast<uint32_t>(slot);
  }

  void SiftUp(size_t i) {
    const Key key = heap_[i];
    while (i > 0) {
      const size_t parent = (i - 1) / kArity;
      if (!(key < heap_[parent])) {
        break;
      }
      Place(i, heap_[parent]);
      i = parent;
    }
    Place(i, key);
  }

  void SiftDown(size_t i) {
    const size_t n = heap_.size();
    const Key key = heap_[i];
    while (true) {
      const size_t first_child = i * kArity + 1;
      if (first_child >= n) {
        break;
      }
      const size_t end_child = std::min(first_child + kArity, n);
      size_t best = first_child;
      for (size_t c = first_child + 1; c < end_child; ++c) {
        if (heap_[c] < heap_[best]) {
          best = c;
        }
      }
      if (!(heap_[best] < key)) {
        break;
      }
      Place(i, heap_[best]);
      i = best;
    }
    Place(i, key);
  }

  std::vector<Key> heap_;
  std::vector<uint32_t> pos_;  // worker -> heap slot
  std::vector<SimTime> key_;
  std::vector<uint8_t> key_executing_bit_;  // Executing flag as stored in the key.
  std::vector<DurationUs> backlog_;
  std::vector<SimTime> exec_drain_;
  std::vector<uint8_t> executing_;
};

}  // namespace hawk

#endif  // HAWK_CORE_WAITING_TIME_QUEUE_H_
