// Short-partition sizing (paper §3.4).
//
// "Hawk sizes the general partition based on the proportion of time that
// cluster resources are used by long jobs", i.e. the short partition gets the
// short jobs' task-seconds share. The paper rounds these to 17% (Google),
// 9% (Cloudera), 2% (Facebook) and 2% (Yahoo).
#ifndef HAWK_CORE_PARTITION_H_
#define HAWK_CORE_PARTITION_H_

#include "src/workload/trace_stats.h"

namespace hawk {

// Short-partition fraction from a measured workload mix: 1 - long task-second
// share, clamped to [floor, ceiling] so neither partition vanishes.
double ShortPartitionFractionFromMix(const WorkloadMix& mix, double floor = 0.01,
                                     double ceiling = 0.5);

// Convenience: compute the mix and derive the fraction in one step.
double ShortPartitionFractionForTrace(const Trace& trace, const LongJobPredicate& is_long);

}  // namespace hawk

#endif  // HAWK_CORE_PARTITION_H_
