// Slot-aware view over WaitingTimeQueue for multi-slot workers.
//
// The §3.7 centralized component models each execution slot as an
// independent single-slot server (the paper's own equivalence, §4.1): a
// worker with S slots contributes S *lanes* to the underlying
// WaitingTimeQueue, and a task is assigned to the minimum-waiting lane of
// any tracked worker. With every worker at one slot, lane ids equal worker
// ids and this adapter is a transparent pass-through — the assignment
// sequence is bit-identical to driving WaitingTimeQueue directly.
//
// Feedback routing comes in two flavors; a user picks one and sticks to it:
//
// Worker-routed (the simulation driver): starts and finishes are reported
// per worker, not per lane. Starts are unambiguous — a worker's centrally
// placed tasks are enqueued in placement order and its FIFO queue starts
// them in that order — so start feedback pops the worker's pending-lane
// FIFO. Finish feedback pops the running-lane FIFO; with S > 1, concurrent
// tasks on one worker may finish out of start order, in which case the
// estimate is re-synchronized on a sibling lane of the same worker. That
// keeps the worker's aggregate view exact and only blurs which of its
// identical lanes carries the residue — invisible to placement, which sees
// the worker, not the lane. Use AssignTask(now, est) with
// OnTaskStart/OnTaskFinish.
//
// Lane-routed (the prototype backend): the FIFO inference above assumes
// feedback arrives in placement order, which a multi-threaded RPC bus does
// not guarantee. There the assigner stamps the charged lane on the
// placement message, node monitors echo it in their start/finish reports,
// and feedback hits the exact lane regardless of delivery order. Use
// AssignTask(now, est, &lane) with OnTaskStartLane/OnTaskFinishLane.
#ifndef HAWK_CORE_SLOT_WAITING_QUEUE_H_
#define HAWK_CORE_SLOT_WAITING_QUEUE_H_

#include <algorithm>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/check.h"
#include "src/common/ring_buffer.h"
#include "src/common/types.h"
#include "src/core/waiting_time_queue.h"

namespace hawk {

class SlotWaitingTimeQueue {
 public:
  // Tracks workers [0, num_workers) of `cluster` — a worker-id prefix, which
  // in this codebase is always either the general partition or the whole
  // cluster. Slot counts are read from the cluster's store at construction.
  SlotWaitingTimeQueue(const Cluster& cluster, uint32_t num_workers)
      : num_workers_(num_workers),
        lane_count_(cluster.workers().SlotBegin(num_workers)),
        identity_(lane_count_ == num_workers),
        inner_(lane_count_) {
    HAWK_CHECK_GT(num_workers, 0u);
    HAWK_CHECK_LE(num_workers, cluster.NumWorkers());
    if (!identity_) {
      lane_to_worker_.resize(lane_count_);
      lane_begin_.resize(static_cast<size_t>(num_workers) + 1);
      for (WorkerId w = 0; w < num_workers; ++w) {
        lane_begin_[w] = cluster.workers().SlotBegin(w);
        for (SlotId lane = cluster.workers().SlotBegin(w);
             lane < cluster.workers().SlotBegin(w + 1); ++lane) {
          lane_to_worker_[lane] = w;
        }
      }
      lane_begin_[num_workers] = lane_count_;
      pending_.resize(num_workers);
      running_.resize(num_workers);
    }
  }

  uint32_t NumWorkers() const { return num_workers_; }
  uint32_t NumLanes() const { return lane_count_; }

  // Assigns one task with estimated runtime `estimate_us` to the worker
  // owning the minimum-waiting lane and charges that lane's backlog. Ties
  // break by lowest lane id, hence lowest worker id (deterministic).
  // Worker-routed protocol: the assignment is remembered in the worker's
  // pending-lane FIFO for OnTaskStart to pop.
  WorkerId AssignTask(SimTime now, DurationUs estimate_us) {
    const SlotId lane = inner_.AssignTask(now, estimate_us);
    if (identity_) {
      return lane;
    }
    const WorkerId worker = lane_to_worker_[lane];
    pending_[worker].PushBack(lane);
    return worker;
  }

  // Lane-routed protocol: same assignment, additionally reporting the
  // charged lane — a slot id of the tracked prefix — via `*lane`. No
  // pending-FIFO state is recorded: the caller must route this task's
  // start/finish feedback with OnTaskStartLane/OnTaskFinishLane (mixing
  // protocols would desynchronize the worker-routed FIFOs).
  WorkerId AssignTask(SimTime now, DurationUs estimate_us, SlotId* lane) {
    *lane = inner_.AssignTask(now, estimate_us);
    return identity_ ? *lane : lane_to_worker_[*lane];
  }

  // Notification: a tracked task with estimate `estimate_us` began executing
  // on `worker`. Must match a prior AssignTask in per-worker FIFO order.
  void OnTaskStart(WorkerId worker, SimTime now, DurationUs estimate_us) {
    if (identity_) {
      inner_.OnTaskStart(worker, now, estimate_us);
      return;
    }
    HAWK_CHECK_LT(worker, num_workers_);
    HAWK_CHECK(!pending_[worker].Empty()) << "start without matching assignment on worker "
                                          << worker;
    const SlotId lane = pending_[worker].PopFront();
    inner_.OnTaskStart(lane, now, estimate_us);
    running_[worker].PushBack(lane);
  }

  // Lane-routed notifications: feedback for a task assigned through the
  // lane-reporting AssignTask overload, addressed to the exact charged lane.
  // Order-insensitive across lanes and exact within one (every start
  // discharges precisely the estimate its own assignment charged), which is
  // what an out-of-order delivery bus requires.
  void OnTaskStartLane(SlotId lane, SimTime now, DurationUs estimate_us) {
    HAWK_CHECK_LT(lane, lane_count_);
    inner_.OnTaskStart(lane, now, estimate_us);
  }
  void OnTaskFinishLane(SlotId lane, SimTime now) {
    HAWK_CHECK_LT(lane, lane_count_);
    inner_.OnTaskFinish(lane, now);
  }

  // Notification: a tracked task executing on `worker` finished.
  void OnTaskFinish(WorkerId worker, SimTime now) {
    if (identity_) {
      inner_.OnTaskFinish(worker, now);
      return;
    }
    HAWK_CHECK_LT(worker, num_workers_);
    HAWK_CHECK(!running_[worker].Empty()) << "finish without matching start on worker "
                                          << worker;
    const SlotId lane = running_[worker].PopFront();
    inner_.OnTaskFinish(lane, now);
  }

  // Estimated waiting time a new task would see on `worker`: the minimum
  // over the worker's lanes (§3.7 definition per lane).
  DurationUs WaitingTime(WorkerId worker, SimTime now) const {
    if (identity_) {
      return inner_.WaitingTime(worker, now);
    }
    HAWK_CHECK_LT(worker, num_workers_);
    DurationUs best = kSimTimeMax;
    ForEachLane(worker, [&](SlotId lane) {
      best = std::min(best, inner_.WaitingTime(lane, now));
    });
    return best;
  }

  // Sum of assigned-not-started estimates across the worker's lanes.
  DurationUs BacklogEstimate(WorkerId worker) const {
    if (identity_) {
      return inner_.BacklogEstimate(worker);
    }
    HAWK_CHECK_LT(worker, num_workers_);
    DurationUs total = 0;
    ForEachLane(worker, [&](SlotId lane) { total += inner_.BacklogEstimate(lane); });
    return total;
  }

 private:
  template <typename Fn>
  void ForEachLane(WorkerId worker, Fn&& fn) const {
    for (SlotId lane = lane_begin_[worker]; lane < lane_begin_[worker + 1]; ++lane) {
      fn(lane);
    }
  }

  uint32_t num_workers_;
  uint32_t lane_count_;
  // True when every tracked worker has exactly one slot: lane == worker and
  // no routing state is needed (the dominant, paper-default configuration).
  bool identity_;
  WaitingTimeQueue inner_;
  std::vector<WorkerId> lane_to_worker_;
  std::vector<SlotId> lane_begin_;  // Size num_workers+1; empty when identity_.
  // Per-worker FIFO of lanes with an assignment awaiting its start / finish
  // notification. Empty vectors when identity_.
  std::vector<RingBuffer<SlotId>> pending_;
  std::vector<RingBuffer<SlotId>> running_;
};

}  // namespace hawk

#endif  // HAWK_CORE_SLOT_WAITING_QUEUE_H_
