// Task-runtime estimation (paper §3.3, §4.8).
//
// Hawk estimates a job's task runtime as the average of its task runtimes —
// in production from previous executions of the recurring job, here from the
// trace itself. The mis-estimation experiment (Fig. 14) multiplies the
// correct estimate by a uniform random factor from a configurable range.
#ifndef HAWK_CORE_ESTIMATOR_H_
#define HAWK_CORE_ESTIMATOR_H_

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/workload/job.h"

namespace hawk {

class Estimator {
 public:
  // noise range [lo, hi]; lo == hi == 1.0 yields exact estimates.
  Estimator(double noise_lo, double noise_hi, uint64_t seed)
      : noise_lo_(noise_lo), noise_hi_(noise_hi), rng_(seed) {
    HAWK_CHECK_GT(noise_lo, 0.0);
    HAWK_CHECK_LE(noise_lo, noise_hi);
  }

  // The estimate the scheduler acts on, in microseconds. Draws one noise
  // factor per call; call once per job arrival.
  double EstimateAvgTaskUs(const Job& job) {
    const double exact = job.AvgTaskDurationUs();
    if (noise_lo_ == 1.0 && noise_hi_ == 1.0) {
      return exact;
    }
    return exact * rng_.Uniform(noise_lo_, noise_hi_);
  }

  // The noise-free estimate (metrics classification, Fig. 14 protocol).
  static double ExactAvgTaskUs(const Job& job) { return job.AvgTaskDurationUs(); }

 private:
  double noise_lo_;
  double noise_hi_;
  Rng rng_;
};

}  // namespace hawk

#endif  // HAWK_CORE_ESTIMATOR_H_
