// Jacobson/Karn-style adaptive retransmission timeout, shared by the
// simulator's lossy-delivery model and the prototype's failure-recovery
// reaper.
//
// The estimator is TCP's (Jacobson 1988): an EWMA of the observed latency
// (gain 1/8) plus an EWMA of its mean deviation (gain 1/4); the timeout is
// mean + 4 * deviation. Retransmits back off exponentially with a capped
// shift and a small deterministic jitter, so a loss burst spreads its
// retries instead of synchronizing them — and a per-delivery retry budget
// (HawkConfig::retry_budget) bounds the chain outright.
#ifndef HAWK_CORE_ADAPTIVE_TIMEOUT_H_
#define HAWK_CORE_ADAPTIVE_TIMEOUT_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "src/common/types.h"

namespace hawk {

class AdaptiveTimeout {
 public:
  // `expected_us` seeds the mean; the deviation starts at half of it, so the
  // cold-start timeout is 3x the expectation before any sample arrives
  // (TCP's conservative initialization). `floor_us`/`cap_us` clamp the
  // timeout after backoff — the cap is what makes the backoff "capped".
  AdaptiveTimeout(double expected_us, DurationUs floor_us, DurationUs cap_us)
      : srtt_(std::max(0.0, expected_us)),
        rttvar_(std::max(0.0, expected_us) / 2.0),
        floor_us_(std::max<DurationUs>(floor_us, 1)),
        cap_us_(std::max(cap_us, floor_us_)) {}

  // Feed one observed latency (an RTT, or a task's service overhead).
  void AddSample(double observed_us) {
    const double err = observed_us - srtt_;
    srtt_ += kMeanGain * err;
    rttvar_ += kDevGain * (std::abs(err) - rttvar_);
  }

  // Base timeout (attempt 0): srtt + 4 * rttvar, clamped to [floor, cap].
  DurationUs TimeoutUs() const { return BackoffTimeoutUs(0); }

  // Timeout before the (attempt+1)-th transmission of the same payload:
  // exponential backoff with the shift capped so the doubling stops growing
  // past kMaxBackoffShift even before the absolute cap bites.
  DurationUs BackoffTimeoutUs(uint32_t attempt) const {
    const double base = srtt_ + 4.0 * rttvar_;
    const double scaled =
        base * static_cast<double>(uint64_t{1} << std::min(attempt, kMaxBackoffShift));
    if (scaled >= static_cast<double>(cap_us_)) {
      return cap_us_;
    }
    return std::clamp(static_cast<DurationUs>(std::llround(scaled)), floor_us_, cap_us_);
  }

  double MeanUs() const { return srtt_; }
  double DeviationUs() const { return rttvar_; }

  // Deterministic retry jitter in [0, span): a splitmix64 hash of
  // (key, attempt), so both executors de-synchronize retransmits without
  // consuming an RNG stream (the sim's reproducibility across sweep thread
  // counts depends on exactly that).
  static DurationUs JitterUs(uint64_t key, uint32_t attempt, DurationUs span) {
    if (span <= 0) {
      return 0;
    }
    uint64_t z = key + 0x9E3779B97F4A7C15ULL * (attempt + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    return static_cast<DurationUs>(z % static_cast<uint64_t>(span));
  }

 private:
  static constexpr double kMeanGain = 0.125;  // 1/8
  static constexpr double kDevGain = 0.25;    // 1/4
  static constexpr uint32_t kMaxBackoffShift = 6;  // 64x, then the cap.

  double srtt_;
  double rttvar_;
  DurationUs floor_us_;
  DurationUs cap_us_;
};

}  // namespace hawk

#endif  // HAWK_CORE_ADAPTIVE_TIMEOUT_H_
