#include "src/sim/simulation.h"

#include <utility>

#include "src/common/check.h"

namespace hawk {
namespace sim {

void Simulation::ScheduleAt(SimTime at, Callback fn) {
  HAWK_CHECK_GE(at, now_) << "scheduling into the past";
  queue_.Push(at, std::move(fn));
}

void Simulation::ScheduleAfter(DurationUs delay, Callback fn) {
  HAWK_CHECK_GE(delay, 0);
  ScheduleAt(now_ + delay, std::move(fn));
}

uint64_t Simulation::Run() {
  uint64_t count = 0;
  while (!queue_.Empty()) {
    auto entry = queue_.Pop();
    HAWK_CHECK_GE(entry.at, now_);
    now_ = entry.at;
    entry.payload();
    ++count;
  }
  return count;
}

uint64_t Simulation::RunUntil(SimTime deadline) {
  uint64_t count = 0;
  while (!queue_.Empty() && queue_.PeekTime() <= deadline) {
    auto entry = queue_.Pop();
    now_ = entry.at;
    entry.payload();
    ++count;
  }
  now_ = std::max(now_, deadline);
  return count;
}

}  // namespace sim
}  // namespace hawk
