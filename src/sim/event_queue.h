// Binary-heap event queue for discrete-event simulation.
//
// Events are ordered by (time, sequence number): the sequence number makes
// simultaneous events pop in insertion order, which keeps runs deterministic
// and independent of heap internals. The payload type is a template parameter
// so the scheduler driver can use a compact POD event on its hot path while
// tests and the generic Simulation wrapper use callback payloads.
#ifndef HAWK_SIM_EVENT_QUEUE_H_
#define HAWK_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace hawk {
namespace sim {

template <typename Payload>
class EventQueue {
 public:
  struct Entry {
    SimTime at;
    uint64_t seq;
    Payload payload;
  };

  void Push(SimTime at, Payload payload) {
    HAWK_CHECK_GE(at, 0);
    heap_.push_back(Entry{at, next_seq_++, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end(), Later);
  }

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  const Entry& Peek() const {
    HAWK_CHECK(!heap_.empty());
    return heap_.front();
  }

  Entry Pop() {
    HAWK_CHECK(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    return entry;
  }

  void Clear() { heap_.clear(); }

 private:
  // std::push_heap builds a max-heap; "Later" puts the earliest entry on top.
  static bool Later(const Entry& a, const Entry& b) {
    if (a.at != b.at) {
      return a.at > b.at;
    }
    return a.seq > b.seq;
  }

  std::vector<Entry> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace sim
}  // namespace hawk

#endif  // HAWK_SIM_EVENT_QUEUE_H_
