// 4-ary heap event queue for discrete-event simulation.
//
// Events are ordered by (time, sequence number): the sequence number makes
// simultaneous events pop in insertion order, which keeps runs deterministic
// and independent of heap internals. The payload type is a template parameter
// so the scheduler driver can use a compact POD event on its hot path while
// tests and the generic Simulation wrapper use callback payloads.
//
// Layout and shape are tuned for the driver's hot loop:
//   - 4-ary instead of binary: half the depth, and all four children of a
//     node are adjacent in memory.
//   - Split storage: the 16-byte (time, seq) keys live in their own array,
//     so sift comparisons never drag payload bytes through the cache; the
//     payloads move in lockstep.
//   - Inlined tuple comparison (no comparator indirection) and hole-based
//     sifting (one move per level instead of a swap).
// Pop order is a pure function of the (time, seq) total order, so any
// correct heap — including the std::push_heap/pop_heap binary heap this
// replaces — produces bit-identical simulations.
#ifndef HAWK_SIM_EVENT_QUEUE_H_
#define HAWK_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/ring_buffer.h"
#include "src/common/types.h"

namespace hawk {
namespace sim {

template <typename Payload>
class EventQueue {
 public:
  struct Entry {
    SimTime at;
    uint64_t seq;
    Payload payload;
  };

  void Push(SimTime at, Payload payload) {
    PushWithSeq(at, next_seq_++, std::move(payload));
  }

  // Push with an externally assigned sequence number, for composite queues
  // (MultiLaneEventQueue) that share one counter across several lanes. Do
  // not mix with Push() on the same queue.
  void PushWithSeq(SimTime at, uint64_t seq, Payload payload) {
    HAWK_CHECK_GE(at, 0);
    keys_.push_back(Key{at, seq});
    payloads_.push_back(std::move(payload));
    SiftUp(keys_.size() - 1);
  }

  bool Empty() const { return keys_.empty(); }
  size_t Size() const { return keys_.size(); }

  // Timestamp of the earliest event.
  SimTime PeekTime() const {
    HAWK_CHECK(!keys_.empty());
    return keys_.front().at;
  }

  // Sequence number of the earliest event.
  uint64_t PeekSeq() const {
    HAWK_CHECK(!keys_.empty());
    return keys_.front().seq;
  }

  Entry Pop() {
    HAWK_CHECK(!keys_.empty());
    Entry top{keys_.front().at, keys_.front().seq, std::move(payloads_.front())};
    const size_t last = keys_.size() - 1;
    if (last > 0) {
      keys_.front() = keys_[last];
      payloads_.front() = std::move(payloads_[last]);
      keys_.pop_back();
      payloads_.pop_back();
      SiftDown(0);
    } else {
      keys_.pop_back();
      payloads_.pop_back();
    }
    return top;
  }

  void Clear() {
    keys_.clear();
    payloads_.clear();
  }

  void Reserve(size_t capacity) {
    keys_.reserve(capacity);
    payloads_.reserve(capacity);
  }

 private:
  struct Key {
    SimTime at;
    uint64_t seq;
  };

  static constexpr size_t kArity = 4;

  static bool Earlier(const Key& a, const Key& b) {
    if (a.at != b.at) {
      return a.at < b.at;
    }
    return a.seq < b.seq;
  }

  void SiftUp(size_t i) {
    const Key key = keys_[i];
    Payload payload = std::move(payloads_[i]);
    while (i > 0) {
      const size_t parent = (i - 1) / kArity;
      if (!Earlier(key, keys_[parent])) {
        break;
      }
      keys_[i] = keys_[parent];
      payloads_[i] = std::move(payloads_[parent]);
      i = parent;
    }
    keys_[i] = key;
    payloads_[i] = std::move(payload);
  }

  void SiftDown(size_t i) {
    const size_t n = keys_.size();
    const Key key = keys_[i];
    Payload payload = std::move(payloads_[i]);
    while (true) {
      const size_t first_child = i * kArity + 1;
      if (first_child >= n) {
        break;
      }
      const size_t end_child = std::min(first_child + kArity, n);
      size_t best = first_child;
      for (size_t c = first_child + 1; c < end_child; ++c) {
        if (Earlier(keys_[c], keys_[best])) {
          best = c;
        }
      }
      if (!Earlier(keys_[best], key)) {
        break;
      }
      keys_[i] = keys_[best];
      payloads_[i] = std::move(payloads_[best]);
      i = best;
    }
    keys_[i] = key;
    payloads_[i] = std::move(payload);
  }

  std::vector<Key> keys_;
  std::vector<Payload> payloads_;
  uint64_t next_seq_ = 0;
};

// Event queue with O(1) fast lanes for fixed-delay event classes.
//
// Discrete-event schedules are dominated by events pushed at a constant
// offset from the (monotone) simulation clock — network-delay deliveries,
// RTT-delayed resolutions, fixed retry timers. Those pushes arrive in
// nondecreasing timestamp order, so each such class can live in a plain FIFO
// ring that is sorted by construction: push is O(1) and never sifts.
// Arbitrary-delay events (task completions, periodic samples) go to the
// 4-ary heap lane. Pop takes the (time, seq) minimum over the lane fronts
// and the heap top; seq is a single counter across all lanes, so the pop
// order is exactly the (time, seq) total order a single heap would produce —
// bit-identical simulations, at a fraction of the cost.
template <typename Payload, size_t kLanes>
class MultiLaneEventQueue {
 public:
  using Entry = typename EventQueue<Payload>::Entry;

  // Pushes an arbitrary-delay event (heap lane).
  void Push(SimTime at, Payload payload) {
    heap_.PushWithSeq(at, next_seq_++, std::move(payload));
  }

  // Pushes onto a monotone lane: `at` must be >= the lane's previous push.
  void PushLane(size_t lane, SimTime at, Payload payload) {
    HAWK_CHECK_GE(at, 0);
    Lane& l = lanes_[lane];
    HAWK_CHECK(l.Empty() || at >= l.Back().at) << "lane pushes must be monotone";
    l.PushBack(Entry{at, next_seq_++, std::move(payload)});
  }

  bool Empty() const { return Size() == 0; }

  size_t Size() const {
    size_t total = heap_.Size();
    for (const Lane& l : lanes_) {
      total += l.Size();
    }
    return total;
  }

  SimTime PeekTime() const {
    const int lane = EarliestLane();
    return lane < 0 ? heap_.PeekTime() : lanes_[static_cast<size_t>(lane)].Front().at;
  }

  Entry Pop() {
    const int lane = EarliestLane();
    return lane < 0 ? heap_.Pop() : lanes_[static_cast<size_t>(lane)].PopFront();
  }

  void Clear() {
    heap_.Clear();
    for (Lane& l : lanes_) {
      l.Clear();
    }
  }

 private:
  // A monotone lane is sorted by construction, so a FIFO ring suffices.
  using Lane = RingBuffer<Entry>;

  // Index of the lane holding the globally earliest entry, or -1 for the
  // heap. HAWK_CHECKs that the queue is non-empty.
  int EarliestLane() const {
    HAWK_CHECK(!Empty());
    int best_lane = -2;
    SimTime best_at = 0;
    uint64_t best_seq = 0;
    if (!heap_.Empty()) {
      best_lane = -1;
      best_at = heap_.PeekTime();
      best_seq = heap_.PeekSeq();
    }
    for (size_t i = 0; i < kLanes; ++i) {
      if (lanes_[i].Empty()) {
        continue;
      }
      const Entry& front = lanes_[i].Front();
      if (best_lane == -2 || front.at < best_at ||
          (front.at == best_at && front.seq < best_seq)) {
        best_lane = static_cast<int>(i);
        best_at = front.at;
        best_seq = front.seq;
      }
    }
    return best_lane;
  }

  EventQueue<Payload> heap_;
  Lane lanes_[kLanes];
  uint64_t next_seq_ = 0;
};

}  // namespace sim
}  // namespace hawk

#endif  // HAWK_SIM_EVENT_QUEUE_H_
