// Callback-based simulation loop.
//
// A thin convenience layer over EventQueue for components that do not need
// the driver's POD-event hot path: tests, examples, and workload replay.
// Guarantees: the clock never moves backwards, and events scheduled for the
// same instant fire in scheduling order.
#ifndef HAWK_SIM_SIMULATION_H_
#define HAWK_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>

#include "src/common/types.h"
#include "src/sim/event_queue.h"

namespace hawk {
namespace sim {

class Simulation {
 public:
  using Callback = std::function<void()>;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (>= Now()).
  void ScheduleAt(SimTime at, Callback fn);

  // Schedules `fn` to run `delay` after Now().
  void ScheduleAfter(DurationUs delay, Callback fn);

  // Runs events until the queue is empty. Returns the number of events run.
  uint64_t Run();

  // Runs events with time <= deadline. Events beyond the deadline stay queued;
  // the clock is advanced to the deadline. Returns the number of events run.
  uint64_t RunUntil(SimTime deadline);

  bool Empty() const { return queue_.Empty(); }
  size_t PendingEvents() const { return queue_.Size(); }

 private:
  SimTime now_ = 0;
  EventQueue<Callback> queue_;
};

}  // namespace sim
}  // namespace hawk

#endif  // HAWK_SIM_SIMULATION_H_
