// Run-to-run comparison metrics (the y-axes of the paper's figures).
//
// The paper reports Hawk normalized to a baseline: ratio of the 50th (or
// 90th) percentile job runtime, per job class; plus, for Fig. 5c, the
// fraction of jobs Hawk improves (runtime better than or equal to the
// baseline's for the same job) and the ratio of average runtimes.
#ifndef HAWK_METRICS_COMPARISON_H_
#define HAWK_METRICS_COMPARISON_H_

#include "src/cluster/results.h"

namespace hawk {

struct ClassComparison {
  double p50_ratio = 0.0;  // treatment p50 / baseline p50; < 1 means better.
  double p90_ratio = 0.0;
  double avg_ratio = 0.0;                 // Fig. 5c: average job runtime ratio.
  double fraction_improved_or_equal = 0;  // Fig. 5c: per-job comparison.
  size_t jobs = 0;
};

struct RunComparison {
  ClassComparison short_jobs;
  ClassComparison long_jobs;
  double treatment_median_util = 0.0;
  double baseline_median_util = 0.0;
};

// Both runs must come from the same trace (same job ids and classes).
RunComparison CompareRuns(const RunResult& treatment, const RunResult& baseline);

}  // namespace hawk

#endif  // HAWK_METRICS_COMPARISON_H_
