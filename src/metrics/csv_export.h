// CSV export of experiment outputs, for plotting the figures with external
// tools. One row per job (results) or per sample (utilization).
#ifndef HAWK_METRICS_CSV_EXPORT_H_
#define HAWK_METRICS_CSV_EXPORT_H_

#include <string>

#include "src/cluster/results.h"
#include "src/common/status.h"

namespace hawk {

// Columns: job_id,is_long,submit_us,finish_us,runtime_us
Status WriteJobResultsCsv(const std::string& path, const RunResult& result);

// Columns: sample_index,utilization
Status WriteUtilizationCsv(const std::string& path, const RunResult& result);

}  // namespace hawk

#endif  // HAWK_METRICS_CSV_EXPORT_H_
