// CSV export of experiment outputs, for plotting the figures with external
// tools. One row per job (results), per sample (utilization), or per sweep
// point (sweep summaries).
#ifndef HAWK_METRICS_CSV_EXPORT_H_
#define HAWK_METRICS_CSV_EXPORT_H_

#include <string>
#include <vector>

#include "src/cluster/results.h"
#include "src/common/status.h"
#include "src/scheduler/experiment.h"

namespace hawk {

// Columns: job_id,is_long,submit_us,finish_us,runtime_us
Status WriteJobResultsCsv(const std::string& path, const RunResult& result);

// Columns: sample_index,utilization
Status WriteUtilizationCsv(const std::string& path, const RunResult& result);

// One summary row per labelled sweep point, in sweep order. Columns:
// label,scheduler,num_workers,probe_ratio,seed,jobs,
// p50_short_s,p90_short_s,p50_long_s,p90_long_s,median_util
Status WriteSweepSummaryCsv(const std::string& path, const std::vector<SweepRun>& runs);

}  // namespace hawk

#endif  // HAWK_METRICS_CSV_EXPORT_H_
