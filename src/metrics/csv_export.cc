#include "src/metrics/csv_export.h"

#include <fstream>

namespace hawk {

Status WriteJobResultsCsv(const std::string& path, const RunResult& result) {
  std::ofstream out(path);
  if (!out) {
    return Status::Error("cannot open for writing: " + path);
  }
  out << "job_id,is_long,submit_us,finish_us,runtime_us\n";
  for (const JobResult& job : result.jobs) {
    out << job.id << ',' << (job.is_long ? 1 : 0) << ',' << job.submit_time << ','
        << job.finish_time << ',' << job.runtime_us << '\n';
  }
  if (!out) {
    return Status::Error("write failed: " + path);
  }
  return Status::Ok();
}

Status WriteUtilizationCsv(const std::string& path, const RunResult& result) {
  std::ofstream out(path);
  if (!out) {
    return Status::Error("cannot open for writing: " + path);
  }
  out << "sample_index,utilization\n";
  for (size_t i = 0; i < result.utilization_samples.size(); ++i) {
    out << i << ',' << result.utilization_samples[i] << '\n';
  }
  if (!out) {
    return Status::Error("write failed: " + path);
  }
  return Status::Ok();
}

}  // namespace hawk
