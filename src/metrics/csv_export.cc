#include "src/metrics/csv_export.h"

#include <fstream>

namespace hawk {
namespace {

// Sweep labels are user-supplied (VaryConfig point names may contain commas
// or quotes); quote them per RFC 4180 so rows stay parseable.
std::string EscapeCsv(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string escaped = "\"";
  for (const char c : field) {
    if (c == '"') {
      escaped += '"';
    }
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

}  // namespace

Status WriteJobResultsCsv(const std::string& path, const RunResult& result) {
  std::ofstream out(path);
  if (!out) {
    return Status::Error("cannot open for writing: " + path);
  }
  out << "job_id,is_long,submit_us,finish_us,runtime_us\n";
  for (const JobResult& job : result.jobs) {
    out << job.id << ',' << (job.is_long ? 1 : 0) << ',' << job.submit_time << ','
        << job.finish_time << ',' << job.runtime_us << '\n';
  }
  if (!out) {
    return Status::Error("write failed: " + path);
  }
  return Status::Ok();
}

Status WriteSweepSummaryCsv(const std::string& path, const std::vector<SweepRun>& runs) {
  std::ofstream out(path);
  if (!out) {
    return Status::Error("cannot open for writing: " + path);
  }
  out << "label,scheduler,num_workers,probe_ratio,seed,jobs,"
         "p50_short_s,p90_short_s,p50_long_s,p90_long_s,median_util\n";
  for (const SweepRun& run : runs) {
    const Samples shorts = run.result.RuntimesSeconds(false);
    const Samples longs = run.result.RuntimesSeconds(true);
    out << EscapeCsv(run.spec.Label()) << ',' << EscapeCsv(run.spec.scheduler) << ','
        << run.spec.config.num_workers << ',' << run.spec.config.probe_ratio << ','
        << run.spec.config.seed << ',' << run.result.jobs.size() << ','
        << (shorts.Empty() ? 0.0 : shorts.Percentile(50)) << ','
        << (shorts.Empty() ? 0.0 : shorts.Percentile(90)) << ','
        << (longs.Empty() ? 0.0 : longs.Percentile(50)) << ','
        << (longs.Empty() ? 0.0 : longs.Percentile(90)) << ','
        << run.result.MedianUtilization() << '\n';
  }
  if (!out) {
    return Status::Error("write failed: " + path);
  }
  return Status::Ok();
}

Status WriteUtilizationCsv(const std::string& path, const RunResult& result) {
  std::ofstream out(path);
  if (!out) {
    return Status::Error("cannot open for writing: " + path);
  }
  out << "sample_index,utilization\n";
  for (size_t i = 0; i < result.utilization_samples.size(); ++i) {
    out << i << ',' << result.utilization_samples[i] << '\n';
  }
  if (!out) {
    return Status::Error("write failed: " + path);
  }
  return Status::Ok();
}

}  // namespace hawk
