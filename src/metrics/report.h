// ASCII rendering helpers for bench output: aligned tables and CDF plots,
// so each bench binary prints the same rows/series as the paper's tables
// and figures.
#ifndef HAWK_METRICS_REPORT_H_
#define HAWK_METRICS_REPORT_H_

#include <string>
#include <vector>

#include "src/common/histogram.h"

namespace hawk {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Renders with right-aligned, padded columns.
  std::string ToString() const;
  void Print() const;

  static std::string Num(double value, int precision = 3);
  static std::string Pct(double value, int precision = 2);  // value in [0,1] -> "12.34%"

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints "value cumulative%" pairs for a CDF at the given number of points,
// matching the series behind the paper's CDF figures.
void PrintCdf(const std::string& title, const Samples& samples, size_t points = 20);

}  // namespace hawk

#endif  // HAWK_METRICS_REPORT_H_
