#include "src/metrics/comparison.h"

#include "src/common/check.h"
#include "src/common/histogram.h"

namespace hawk {
namespace {

ClassComparison CompareClass(const RunResult& treatment, const RunResult& baseline,
                             bool long_jobs) {
  ClassComparison cmp;
  Samples treat;
  Samples base;
  size_t improved = 0;
  for (size_t i = 0; i < treatment.jobs.size(); ++i) {
    const JobResult& t = treatment.jobs[i];
    const JobResult& b = baseline.jobs[i];
    HAWK_CHECK_EQ(t.id, b.id) << "comparing runs from different traces";
    if (t.is_long != long_jobs) {
      continue;
    }
    treat.Add(static_cast<double>(t.runtime_us));
    base.Add(static_cast<double>(b.runtime_us));
    if (t.runtime_us <= b.runtime_us) {
      ++improved;
    }
  }
  cmp.jobs = treat.Count();
  if (cmp.jobs == 0) {
    return cmp;
  }
  cmp.p50_ratio = treat.Percentile(50.0) / base.Percentile(50.0);
  cmp.p90_ratio = treat.Percentile(90.0) / base.Percentile(90.0);
  cmp.avg_ratio = treat.Mean() / base.Mean();
  cmp.fraction_improved_or_equal =
      static_cast<double>(improved) / static_cast<double>(cmp.jobs);
  return cmp;
}

}  // namespace

RunComparison CompareRuns(const RunResult& treatment, const RunResult& baseline) {
  HAWK_CHECK_EQ(treatment.jobs.size(), baseline.jobs.size());
  RunComparison cmp;
  cmp.short_jobs = CompareClass(treatment, baseline, /*long_jobs=*/false);
  cmp.long_jobs = CompareClass(treatment, baseline, /*long_jobs=*/true);
  cmp.treatment_median_util = treatment.MedianUtilization();
  cmp.baseline_median_util = baseline.MedianUtilization();
  return cmp;
}

}  // namespace hawk
