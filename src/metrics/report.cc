#include "src/metrics/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/common/check.h"

namespace hawk {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  HAWK_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << std::string(widths[c] - cells[c].size(), ' ') << cells[c];
    }
    out << '\n';
  };
  emit_row(headers_);
  size_t total = headers_.size() > 0 ? 2 * (headers_.size() - 1) : 0;
  for (const size_t w : widths) {
    total += w;
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Table::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::Pct(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, value * 100.0);
  return buf;
}

void PrintCdf(const std::string& title, const Samples& samples, size_t points) {
  std::printf("%s (n=%zu)\n", title.c_str(), samples.Count());
  if (samples.Empty()) {
    std::printf("  (empty)\n");
    return;
  }
  for (const auto& [value, cum] : samples.CdfSeries(points)) {
    std::printf("  %14.3f  %6.2f%%\n", value, cum * 100.0);
  }
}

}  // namespace hawk
