#include "src/rpc/message_bus.h"

#include "src/common/check.h"

namespace hawk {
namespace rpc {

MessageBus::MessageBus(std::chrono::microseconds latency, uint32_t delivery_threads)
    : latency_(latency) {
  HAWK_CHECK_GT(delivery_threads, 0u);
  threads_.reserve(delivery_threads);
  for (uint32_t i = 0; i < delivery_threads; ++i) {
    threads_.emplace_back([this] { DeliveryLoop(); });
  }
}

MessageBus::~MessageBus() { Shutdown(); }

void MessageBus::Register(Address address, Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  HAWK_CHECK(handlers_.emplace(address, std::move(handler)).second)
      << "duplicate rpc address " << address;
}

void MessageBus::EnableFaults(const FaultInjection& faults) {
  std::lock_guard<std::mutex> lock(mu_);
  HAWK_CHECK_GE(faults.loss_rate, 0.0);
  HAWK_CHECK_LT(faults.loss_rate, 1.0);
  HAWK_CHECK(faults.loss_rate == 0.0 || faults.droppable != nullptr)
      << "loss injection needs a droppable predicate";
  faults_ = faults;
  faults_enabled_ = true;
  fault_rng_ = Rng(faults.seed);
}

void MessageBus::Send(Address from, Address to, uint32_t type, std::vector<uint8_t> payload) {
  std::lock_guard<std::mutex> lock(mu_);
  HAWK_CHECK(!shutdown_) << "send on stopped bus";
  auto deliver_at = std::chrono::steady_clock::now() + latency_;
  if (faults_enabled_) {
    if (faults_.loss_rate > 0.0 && faults_.droppable(type) &&
        fault_rng_.Bernoulli(faults_.loss_rate)) {
      ++dropped_;
      return;
    }
    if (faults_.jitter.count() > 0) {
      deliver_at += std::chrono::microseconds(
          fault_rng_.UniformInt(0, faults_.jitter.count()));
    }
  }
  Pending pending;
  pending.deliver_at = deliver_at;
  pending.seq = next_seq_++;
  pending.message = BusMessage{from, to, type, std::move(payload)};
  queue_.push(std::move(pending));
  cv_.notify_one();
}

void MessageBus::DeliveryLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (shutdown_) {
      return;
    }
    if (queue_.empty()) {
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      continue;
    }
    const auto deliver_at = queue_.top().deliver_at;
    const auto now = std::chrono::steady_clock::now();
    if (deliver_at > now) {
      cv_.wait_until(lock, deliver_at);
      continue;
    }
    BusMessage message = std::move(const_cast<Pending&>(queue_.top()).message);
    queue_.pop();
    const auto it = handlers_.find(message.to);
    HAWK_CHECK(it != handlers_.end()) << "no handler for rpc address " << message.to;
    Handler& handler = it->second;
    ++in_flight_;
    lock.unlock();
    handler(message);
    lock.lock();
    --in_flight_;
    ++delivered_;
    if (queue_.empty() && in_flight_ == 0) {
      drained_cv_.notify_all();
    }
  }
}

void MessageBus::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return (queue_.empty() && in_flight_ == 0) || shutdown_; });
}

void MessageBus::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
  }
  cv_.notify_all();
  drained_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

uint64_t MessageBus::MessagesDelivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_;
}

uint64_t MessageBus::MessagesDropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace rpc
}  // namespace hawk
