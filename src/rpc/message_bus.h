// In-process RPC message bus with latency injection — the Thrift stand-in
// for the prototype runtime (paper §3.8).
//
// Endpoints register handlers under integer addresses. Senders enqueue
// serialized payloads; a delivery thread dispatches each message to its
// destination handler after the configured network latency. Handlers run on
// the delivery thread, mirroring a Thrift server's worker; replies are just
// messages sent back to the caller's address. One-way messages plus
// request/response correlation ids cover everything the node monitors and
// schedulers need.
#ifndef HAWK_RPC_MESSAGE_BUS_H_
#define HAWK_RPC_MESSAGE_BUS_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"

namespace hawk {
namespace rpc {

using Address = uint32_t;

struct BusMessage {
  Address from = 0;
  Address to = 0;
  uint32_t type = 0;  // Application-defined message type tag.
  std::vector<uint8_t> payload;
};

class MessageBus {
 public:
  // `latency` is the injected one-way delivery delay (wall clock).
  explicit MessageBus(std::chrono::microseconds latency, uint32_t delivery_threads = 2);
  ~MessageBus();

  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  using Handler = std::function<void(const BusMessage&)>;

  // Fault injection for the wire: messages whose type the `droppable`
  // predicate accepts are lost with probability `loss_rate` at send time,
  // and every delivery is delayed by an extra Uniform[0, jitter] on top of
  // the base latency. The application layer supplies the predicate because
  // only it knows which message types have timeout-based recovery — losing
  // a type without one would wedge the protocol, which models a crashed
  // endpoint, not a lossy wire.
  struct FaultInjection {
    double loss_rate = 0.0;
    std::chrono::microseconds jitter{0};
    uint64_t seed = 0;
    std::function<bool(uint32_t type)> droppable;
  };

  // Enables wire faults. Call before any traffic (like Register).
  void EnableFaults(const FaultInjection& faults);

  // Registers the handler for `address`. Must happen before messages are
  // sent to that address. Not thread-safe against concurrent Send.
  void Register(Address address, Handler handler);

  // Enqueues a message for delivery after the bus latency. Thread-safe.
  void Send(Address from, Address to, uint32_t type, std::vector<uint8_t> payload);

  // Blocks until every message enqueued so far has been delivered.
  void Drain();

  // Stops delivery threads; undelivered messages are dropped.
  void Shutdown();

  uint64_t MessagesDelivered() const;
  uint64_t MessagesDropped() const;

 private:
  struct Pending {
    std::chrono::steady_clock::time_point deliver_at;
    uint64_t seq;
    BusMessage message;
    bool operator>(const Pending& other) const {
      if (deliver_at != other.deliver_at) {
        return deliver_at > other.deliver_at;
      }
      return seq > other.seq;
    }
  };

  void DeliveryLoop();

  const std::chrono::microseconds latency_;
  // Wire faults; inert until EnableFaults. The RNG is guarded by mu_ (Send
  // already holds it), so concurrent senders draw from one stream.
  FaultInjection faults_;
  bool faults_enabled_ = false;
  Rng fault_rng_{0};
  uint64_t dropped_ = 0;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable drained_cv_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue_;
  std::unordered_map<Address, Handler> handlers_;
  std::vector<std::thread> threads_;
  uint64_t next_seq_ = 0;
  uint64_t delivered_ = 0;
  uint32_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace rpc
}  // namespace hawk

#endif  // HAWK_RPC_MESSAGE_BUS_H_
