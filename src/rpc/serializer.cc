#include "src/rpc/serializer.h"

namespace hawk {
namespace rpc {

void Writer::WriteString(const std::string& s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  WriteRaw(s.data(), s.size());
}

void Writer::WriteU32Vector(const std::vector<uint32_t>& v) {
  WriteU32(static_cast<uint32_t>(v.size()));
  for (const uint32_t x : v) {
    WriteU32(x);
  }
}

void Writer::WriteI64Vector(const std::vector<int64_t>& v) {
  WriteU32(static_cast<uint32_t>(v.size()));
  for (const int64_t x : v) {
    WriteI64(x);
  }
}

uint8_t Reader::ReadU8() {
  uint8_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

uint32_t Reader::ReadU32() {
  uint32_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

uint64_t Reader::ReadU64() {
  uint64_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

int64_t Reader::ReadI64() {
  int64_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

std::string Reader::ReadString() {
  const uint32_t size = ReadU32();
  HAWK_CHECK_LE(pos_ + size, buf_.size()) << "rpc string truncated";
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), size);
  pos_ += size;
  return s;
}

std::vector<uint32_t> Reader::ReadU32Vector() {
  const uint32_t size = ReadU32();
  std::vector<uint32_t> v;
  v.reserve(size);
  for (uint32_t i = 0; i < size; ++i) {
    v.push_back(ReadU32());
  }
  return v;
}

std::vector<int64_t> Reader::ReadI64Vector() {
  const uint32_t size = ReadU32();
  std::vector<int64_t> v;
  v.reserve(size);
  for (uint32_t i = 0; i < size; ++i) {
    v.push_back(ReadI64());
  }
  return v;
}

}  // namespace rpc
}  // namespace hawk
