// Byte-level message serialization for the prototype's RPC substrate.
//
// The paper's prototype exchanges Thrift-encoded messages between node
// monitors and schedulers; this is the equivalent wire layer. Values are
// encoded little-endian into a byte buffer and decoded with bounds checks,
// so the prototype exercises a real encode/transfer/decode path rather than
// passing pointers around.
#ifndef HAWK_RPC_SERIALIZER_H_
#define HAWK_RPC_SERIALIZER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/check.h"

namespace hawk {
namespace rpc {

class Writer {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(v); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteString(const std::string& s);
  void WriteU32Vector(const std::vector<uint32_t>& v);
  void WriteI64Vector(const std::vector<int64_t>& v);

  std::vector<uint8_t> Take() { return std::move(buf_); }
  const std::vector<uint8_t>& buffer() const { return buf_; }

 private:
  void WriteRaw(const void* data, size_t size) {
    const auto* bytes = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), bytes, bytes + size);
  }

  std::vector<uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& buf) : buf_(buf) {}

  uint8_t ReadU8();
  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  bool ReadBool() { return ReadU8() != 0; }
  std::string ReadString();
  std::vector<uint32_t> ReadU32Vector();
  std::vector<int64_t> ReadI64Vector();

  bool AtEnd() const { return pos_ == buf_.size(); }

 private:
  void ReadRaw(void* out, size_t size) {
    HAWK_CHECK_LE(pos_ + size, buf_.size()) << "rpc message truncated";
    std::memcpy(out, buf_.data() + pos_, size);
    pos_ += size;
  }

  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

}  // namespace rpc
}  // namespace hawk

#endif  // HAWK_RPC_SERIALIZER_H_
