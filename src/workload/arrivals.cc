#include "src/workload/arrivals.h"

#include <cmath>

#include "src/common/check.h"

namespace hawk {

void AssignPoissonArrivals(Trace* trace, DurationUs mean_interarrival_us, Rng* rng) {
  HAWK_CHECK_GT(mean_interarrival_us, 0);
  HAWK_CHECK(rng != nullptr);
  SimTime now = 0;
  for (Job& job : *trace->mutable_jobs()) {
    now += static_cast<DurationUs>(
        std::llround(rng->Exponential(static_cast<double>(mean_interarrival_us))));
    job.submit_time = now;
  }
  trace->SortAndRenumber();
}

DurationUs MeanInterarrivalForUtilization(const Trace& trace, double target_utilization,
                                          uint32_t num_workers) {
  HAWK_CHECK_GT(target_utilization, 0.0);
  HAWK_CHECK_GT(num_workers, 0u);
  HAWK_CHECK_GT(trace.NumJobs(), 0u);
  const double total_work = static_cast<double>(trace.TotalWorkUs());
  const double mean = total_work / (target_utilization * static_cast<double>(num_workers) *
                                    static_cast<double>(trace.NumJobs()));
  return std::max<DurationUs>(1, static_cast<DurationUs>(mean));
}

}  // namespace hawk
