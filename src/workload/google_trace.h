// Synthetic stand-in for the 2011 Google cluster trace (see DESIGN.md §3).
//
// The real trace is not available offline; this generator is calibrated so
// the trace-level statistics Hawk's results depend on match the paper:
//   - 10% of jobs are long (Table 1/2),
//   - long jobs carry ~84% of task-seconds (Table 1),
//   - heavy-tailed tasks-per-job and per-job average task durations whose
//     CDF ranges match Figure 4 (short durations concentrated below ~800 s,
//     long durations 1.1ks-16ks; short jobs up to ~180 tasks, long jobs with
//     a tail to 8000 tasks),
//   - short/long populations overlap near the default 1129 s cutoff so the
//     cutoff-sensitivity experiment (Fig. 12/13) reclassifies jobs the way
//     the paper describes.
#ifndef HAWK_WORKLOAD_GOOGLE_TRACE_H_
#define HAWK_WORKLOAD_GOOGLE_TRACE_H_

#include <cstdint>

#include "src/workload/trace.h"

namespace hawk {

struct GoogleTraceParams {
  uint32_t num_jobs = 4000;
  uint64_t seed = 1;

  double frac_long = 0.10;

  // Short jobs: #tasks ~ 1 + Exp(mean), capped; per-job mean task duration
  // ~ Exp(mean), capped just below the long population.
  double short_tasks_mean = 19.0;
  uint32_t short_tasks_cap = 180;
  double short_dur_mean_s = 300.0;
  double short_dur_cap_s = 1100.0;
  double short_dur_min_s = 1.0;

  // Long jobs: #tasks ~ LogNormal(median, sigma), capped; per-job mean task
  // duration = base + LogNormal(median, sigma) (shifted so every long job
  // sits above the default cutoff), positively correlated with #tasks via
  // (n / tasks_median)^corr_exponent, mirroring the real trace where the
  // biggest jobs also have the longest tasks.
  double long_tasks_median = 22.0;
  double long_tasks_sigma = 1.3;
  uint32_t long_tasks_cap = 8000;
  double long_dur_base_s = 1130.0;
  double long_dur_median_s = 1800.0;
  double long_dur_sigma = 1.0;
  double long_dur_cap_s = 15000.0;
  double long_corr_exponent = 0.15;

  // Per-task durations are the job mean times a unit-mean log-normal factor
  // with this sigma ("task durations vary within a given job", §4.1).
  double task_spread_sigma = 0.3;
};

// Generates jobs with submit_time == 0; callers assign arrivals afterwards
// (AssignPoissonArrivals) so the same job population can be replayed at
// different loads.
Trace GenerateGoogleTrace(const GoogleTraceParams& params);

}  // namespace hawk

#endif  // HAWK_WORKLOAD_GOOGLE_TRACE_H_
