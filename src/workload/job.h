// Job and task model (paper §3.1).
//
// A job is a set of tasks that can run in parallel on different workers; a
// job completes only once all of its tasks have finished. Trace tuples are
// (jobID, submission time, number of tasks, duration of each task), matching
// the simulator input format described in §4.1.
#ifndef HAWK_WORKLOAD_JOB_H_
#define HAWK_WORKLOAD_JOB_H_

#include <numeric>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace hawk {

struct Job {
  JobId id = 0;
  SimTime submit_time = 0;
  // Actual duration of each task. The estimated task runtime for the job is
  // the average of these (paper §3.3), optionally perturbed by an Estimator.
  std::vector<DurationUs> task_durations;
  // Ground-truth generator label: true when the job was drawn from a "long"
  // mixture component / k-means cluster. Used for metrics on the synthetic
  // Cloudera/Facebook/Yahoo traces where the paper defines long jobs by
  // cluster membership rather than by cutoff.
  bool long_hint = false;

  uint32_t NumTasks() const { return static_cast<uint32_t>(task_durations.size()); }

  // Total work in the job, in microseconds ("task-seconds" in the paper).
  DurationUs TotalWorkUs() const {
    return std::accumulate(task_durations.begin(), task_durations.end(), DurationUs{0});
  }

  // The paper's per-job runtime estimate: average task runtime (§3.3).
  double AvgTaskDurationUs() const {
    HAWK_CHECK(!task_durations.empty());
    return static_cast<double>(TotalWorkUs()) / static_cast<double>(task_durations.size());
  }

  DurationUs MaxTaskDurationUs() const {
    HAWK_CHECK(!task_durations.empty());
    DurationUs max = 0;
    for (const DurationUs d : task_durations) {
      max = std::max(max, d);
    }
    return max;
  }
};

}  // namespace hawk

#endif  // HAWK_WORKLOAD_JOB_H_
