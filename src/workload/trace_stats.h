// Trace-level statistics: the numbers behind Tables 1 & 2, the §2.1 text
// statistics, and the CDF series of Figure 4.
#ifndef HAWK_WORKLOAD_TRACE_STATS_H_
#define HAWK_WORKLOAD_TRACE_STATS_H_

#include <functional>
#include <string>

#include "src/common/histogram.h"
#include "src/workload/trace.h"

namespace hawk {

// Predicate deciding whether a job counts as long for reporting purposes.
// Two standard choices: ground-truth generator label (cluster membership,
// used for the synthetic Cloudera/Facebook/Yahoo traces) or an average-task-
// duration cutoff (used for the Google trace, default 1129 s).
using LongJobPredicate = std::function<bool(const Job&)>;

LongJobPredicate LongByHint();
LongJobPredicate LongByCutoff(DurationUs cutoff_us);

struct WorkloadMix {
  size_t total_jobs = 0;
  size_t long_jobs = 0;
  uint64_t total_tasks = 0;
  uint64_t long_tasks = 0;
  double pct_long_jobs = 0.0;          // Table 1, column 2.
  double pct_task_seconds_long = 0.0;  // Table 1, column 3.
  double pct_tasks_long = 0.0;         // §2.1: 28% for Google.
  double avg_task_duration_ratio = 0.0;  // §2.1: long avg / short avg (7.34x for Google).
};

WorkloadMix ComputeMix(const Trace& trace, const LongJobPredicate& is_long);

// Per-class distributions for Figure 4: average task duration per job
// (seconds) and number of tasks per job.
struct WorkloadCdfs {
  Samples long_avg_task_duration_s;   // Fig. 4a
  Samples short_avg_task_duration_s;  // Fig. 4b
  Samples long_tasks_per_job;         // Fig. 4c
  Samples short_tasks_per_job;        // Fig. 4d
};

WorkloadCdfs ComputeCdfs(const Trace& trace, const LongJobPredicate& is_long);

}  // namespace hawk

#endif  // HAWK_WORKLOAD_TRACE_STATS_H_
