#include "src/workload/google_trace.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/random.h"

namespace hawk {
namespace {

// Per-task durations around the job mean: unit-mean log-normal factors keep
// the realized average close to the sampled mean while providing the
// within-job variation the paper notes.
void FillTaskDurations(Job* job, uint32_t num_tasks, double mean_dur_s, double spread_sigma,
                       Rng* rng) {
  job->task_durations.reserve(num_tasks);
  const double unit_median = std::exp(-0.5 * spread_sigma * spread_sigma);
  for (uint32_t i = 0; i < num_tasks; ++i) {
    const double factor = rng->LogNormalMedian(unit_median, spread_sigma);
    const double dur_s = std::max(0.5, mean_dur_s * factor);
    job->task_durations.push_back(SecondsToUs(dur_s));
  }
}

}  // namespace

Trace GenerateGoogleTrace(const GoogleTraceParams& params) {
  HAWK_CHECK_GT(params.num_jobs, 0u);
  HAWK_CHECK_GE(params.frac_long, 0.0);
  HAWK_CHECK_LE(params.frac_long, 1.0);
  Rng rng(params.seed);

  Trace trace;
  const uint32_t num_long =
      static_cast<uint32_t>(std::lround(params.frac_long * params.num_jobs));
  // Exactly `frac_long` of the jobs are long (Table 1/2 report exact
  // fractions); the class sequence is shuffled below so that arrival
  // assignment — which follows job order — interleaves the classes instead
  // of front-loading a burst of long jobs.
  std::vector<uint8_t> is_long(params.num_jobs, 0);
  for (uint32_t i = 0; i < num_long; ++i) {
    is_long[i] = 1;
  }
  for (uint32_t i = params.num_jobs - 1; i > 0; --i) {
    const auto j = static_cast<uint32_t>(rng.NextBounded(i + 1));
    std::swap(is_long[i], is_long[j]);
  }
  for (uint32_t i = 0; i < params.num_jobs; ++i) {
    Job job;
    job.long_hint = is_long[i] != 0;
    if (job.long_hint) {
      const double raw_tasks = rng.LogNormalMedian(params.long_tasks_median,
                                                   params.long_tasks_sigma);
      const uint32_t num_tasks = static_cast<uint32_t>(
          std::clamp<double>(static_cast<double>(std::lround(raw_tasks)), 1.0,
                             static_cast<double>(params.long_tasks_cap)));
      const double corr =
          std::pow(static_cast<double>(num_tasks) / params.long_tasks_median,
                   params.long_corr_exponent);
      const double shifted = std::min(
          params.long_dur_cap_s,
          rng.LogNormalMedian(params.long_dur_median_s, params.long_dur_sigma) * corr);
      const double mean_dur_s = params.long_dur_base_s + shifted;
      FillTaskDurations(&job, num_tasks, mean_dur_s, params.task_spread_sigma, &rng);
    } else {
      const double raw_tasks = 1.0 + rng.Exponential(params.short_tasks_mean);
      const uint32_t num_tasks = static_cast<uint32_t>(
          std::clamp<double>(static_cast<double>(std::lround(raw_tasks)), 1.0,
                             static_cast<double>(params.short_tasks_cap)));
      const double mean_dur_s =
          std::clamp(rng.Exponential(params.short_dur_mean_s), params.short_dur_min_s,
                     params.short_dur_cap_s);
      FillTaskDurations(&job, num_tasks, mean_dur_s, params.task_spread_sigma, &rng);
    }
    trace.Add(std::move(job));
  }
  trace.SortAndRenumber();
  return trace;
}

}  // namespace hawk
