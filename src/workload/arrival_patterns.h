// Arrival processes beyond homogeneous Poisson (§4.1 uses Poisson; real
// datacenter traces are diurnal and bursty — Reiss et al.'s Google-trace
// analysis, the paper's [15]). These generators let experiments probe how
// Hawk's mechanisms behave when load arrives unevenly:
//   - DiurnalArrivals: sinusoidal rate modulation around a base rate,
//     modelling day/night swings.
//   - BurstyArrivals: a two-state Markov-modulated Poisson process (on/off
//     bursts), modelling spiky submission behaviour.
// Both preserve the requested *mean* inter-arrival, so runs stay comparable
// with plain Poisson at equal offered load (verified by tests and used by
// bench_ablation_burstiness).
#ifndef HAWK_WORKLOAD_ARRIVAL_PATTERNS_H_
#define HAWK_WORKLOAD_ARRIVAL_PATTERNS_H_

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/workload/trace.h"

namespace hawk {

struct DiurnalParams {
  DurationUs mean_interarrival_us = SecondsToUs(10.0);
  // Peak-to-mean amplitude in [0, 1): rate(t) = base * (1 + amplitude*sin).
  double amplitude = 0.5;
  // Length of one day/night cycle in simulated time.
  DurationUs period_us = SecondsToUs(86400.0 / 10.0);
};

// Overwrites submission times with a non-homogeneous Poisson process whose
// rate follows a sinusoid (implemented by thinning). Re-sorts and renumbers.
void AssignDiurnalArrivals(Trace* trace, const DiurnalParams& params, Rng* rng);

struct BurstyParams {
  DurationUs mean_interarrival_us = SecondsToUs(10.0);
  // Fraction of time spent in the burst (on) state, in (0, 1].
  double burst_duty = 0.3;
  // Rate multiplier inside a burst relative to the *mean* rate; the off-state
  // rate is derived so the overall mean matches mean_interarrival_us.
  // Requires burstiness * burst_duty < 1.
  double burstiness = 3.0;
  // Mean length of one on+off cycle.
  DurationUs cycle_us = SecondsToUs(2000.0);
};

// Overwrites submission times with a two-state MMPP. Re-sorts and renumbers.
void AssignBurstyArrivals(Trace* trace, const BurstyParams& params, Rng* rng);

}  // namespace hawk

#endif  // HAWK_WORKLOAD_ARRIVAL_PATTERNS_H_
