#include "src/workload/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace hawk {

void Trace::SortAndRenumber() {
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const Job& a, const Job& b) { return a.submit_time < b.submit_time; });
  for (size_t i = 0; i < jobs_.size(); ++i) {
    jobs_[i].id = static_cast<JobId>(i);
  }
}

uint64_t Trace::TotalTasks() const {
  uint64_t total = 0;
  for (const Job& job : jobs_) {
    total += job.NumTasks();
  }
  return total;
}

DurationUs Trace::TotalWorkUs() const {
  DurationUs total = 0;
  for (const Job& job : jobs_) {
    total += job.TotalWorkUs();
  }
  return total;
}

SimTime Trace::SpanUs() const {
  SimTime span = 0;
  for (const Job& job : jobs_) {
    span = std::max(span, job.submit_time);
  }
  return span;
}

Status Trace::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::Error("cannot open for writing: " + path);
  }
  out << "# hawk trace v1: job_id submit_us long_hint num_tasks dur_us...\n";
  for (const Job& job : jobs_) {
    out << job.id << ' ' << job.submit_time << ' ' << (job.long_hint ? 1 : 0) << ' '
        << job.NumTasks();
    for (const DurationUs d : job.task_durations) {
      out << ' ' << d;
    }
    out << '\n';
  }
  if (!out) {
    return Status::Error("write failed: " + path);
  }
  return Status::Ok();
}

StatusOr<Trace> Trace::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::Error("cannot open for reading: " + path);
  }
  Trace trace;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ss(line);
    Job job;
    uint32_t long_hint = 0;
    uint32_t num_tasks = 0;
    if (!(ss >> job.id >> job.submit_time >> long_hint >> num_tasks)) {
      return Status::Error("malformed header at " + path + ":" + std::to_string(line_number));
    }
    if (num_tasks == 0) {
      return Status::Error("job with zero tasks at " + path + ":" + std::to_string(line_number));
    }
    job.long_hint = long_hint != 0;
    job.task_durations.reserve(num_tasks);
    for (uint32_t i = 0; i < num_tasks; ++i) {
      DurationUs d = 0;
      if (!(ss >> d) || d < 0) {
        return Status::Error("malformed duration at " + path + ":" + std::to_string(line_number));
      }
      job.task_durations.push_back(d);
    }
    trace.Add(std::move(job));
  }
  trace.SortAndRenumber();
  return trace;
}

}  // namespace hawk
