// Trace scaling transforms (paper §4.1, "Real cluster run").
//
// The paper scales the Google trace to its 100-node prototype by (a) capping
// tasks-per-job "keeping constant the ratio between the cluster size and the
// largest number of tasks in a job" while stretching the remaining tasks to
// preserve each job's task-seconds, and (b) dividing durations by 1000x
// (seconds become milliseconds). The same transforms also make a trace safe
// for a simulated cluster: with 2t probes per t tasks, tasks-per-job must not
// exceed half the eligible workers or probes could not cover all tasks.
#ifndef HAWK_WORKLOAD_SCALING_H_
#define HAWK_WORKLOAD_SCALING_H_

#include "src/common/random.h"
#include "src/workload/trace.h"

namespace hawk {

// Caps every job at `max_tasks` tasks. Removed work is redistributed onto the
// kept tasks by scaling their durations so the job's total task-seconds is
// preserved exactly (up to integer rounding). Kept tasks are an evenly strided
// subsample so the duration distribution shape survives.
Trace CapTasksPreserveWork(const Trace& trace, uint32_t max_tasks);

// Multiplies all durations and submission times by `factor` (e.g. 1e-3 for
// the paper's seconds->milliseconds prototype scaling). Durations are clamped
// to at least 1 us.
Trace RescaleTime(const Trace& trace, double factor);

// Uniform random sample of `count` jobs (all jobs if count >= size). Ids are
// renumbered; submission times are kept (callers usually reassign arrivals).
Trace SampleJobs(const Trace& trace, size_t count, Rng* rng);

}  // namespace hawk

#endif  // HAWK_WORKLOAD_SCALING_H_
