// Trace container and text-format serialization.
//
// File format, one job per line:
//   job_id submit_us long_hint num_tasks dur_us_1 ... dur_us_n
// Lines starting with '#' are comments. Jobs are kept sorted by submission
// time; Load validates monotonicity and task counts.
#ifndef HAWK_WORKLOAD_TRACE_H_
#define HAWK_WORKLOAD_TRACE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/workload/job.h"

namespace hawk {

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<Job> jobs) : jobs_(std::move(jobs)) { SortAndRenumber(); }

  void Add(Job job) { jobs_.push_back(std::move(job)); }

  // Sorts by submission time and reassigns dense ids [0, n). Call after
  // building or mutating a trace by hand.
  void SortAndRenumber();

  size_t NumJobs() const { return jobs_.size(); }
  const Job& job(size_t i) const { return jobs_[i]; }
  const std::vector<Job>& jobs() const { return jobs_; }
  std::vector<Job>* mutable_jobs() { return &jobs_; }

  uint64_t TotalTasks() const;
  // Sum of all task durations across all jobs, in microseconds.
  DurationUs TotalWorkUs() const;
  // Time of the last submission (0 for an empty trace).
  SimTime SpanUs() const;

  Status SaveToFile(const std::string& path) const;
  static StatusOr<Trace> LoadFromFile(const std::string& path);

 private:
  std::vector<Job> jobs_;
};

}  // namespace hawk

#endif  // HAWK_WORKLOAD_TRACE_H_
