// Job arrival processes (paper §4.1).
//
// The paper draws job inter-arrival times from a Poisson process whose mean
// is the experiment's load knob; utilization is then varied either by scaling
// the cluster (simulation sweeps) or by scaling the inter-arrival mean
// relative to the mean task runtime (prototype runs).
#ifndef HAWK_WORKLOAD_ARRIVALS_H_
#define HAWK_WORKLOAD_ARRIVALS_H_

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/workload/trace.h"

namespace hawk {

// Overwrites submission times with a Poisson process of the given mean
// inter-arrival; the first job arrives after one draw. Re-sorts and renumbers.
void AssignPoissonArrivals(Trace* trace, DurationUs mean_interarrival_us, Rng* rng);

// Mean inter-arrival that yields `target_utilization` of `num_workers` busy on
// average over the submission window:
//   utilization = total_work / (num_jobs * mean_interarrival * num_workers)
DurationUs MeanInterarrivalForUtilization(const Trace& trace, double target_utilization,
                                          uint32_t num_workers);

}  // namespace hawk

#endif  // HAWK_WORKLOAD_ARRIVALS_H_
