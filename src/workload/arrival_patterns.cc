#include "src/workload/arrival_patterns.h"

#include <cmath>

#include "src/common/check.h"

namespace hawk {
namespace {

constexpr double kTwoPi = 6.28318530717958647692;

}  // namespace

void AssignDiurnalArrivals(Trace* trace, const DiurnalParams& params, Rng* rng) {
  HAWK_CHECK(trace != nullptr);
  HAWK_CHECK(rng != nullptr);
  HAWK_CHECK_GT(params.mean_interarrival_us, 0);
  HAWK_CHECK_GE(params.amplitude, 0.0);
  HAWK_CHECK_LT(params.amplitude, 1.0);
  HAWK_CHECK_GT(params.period_us, 0);

  // Thinning (Lewis & Shedler): candidate events from a homogeneous process
  // at the peak rate; accept with probability rate(t) / peak_rate.
  const double base_rate = 1.0 / static_cast<double>(params.mean_interarrival_us);
  const double peak_rate = base_rate * (1.0 + params.amplitude);
  double t = 0.0;
  for (Job& job : *trace->mutable_jobs()) {
    while (true) {
      t += rng->Exponential(1.0 / peak_rate);
      const double phase = kTwoPi * std::fmod(t, static_cast<double>(params.period_us)) /
                           static_cast<double>(params.period_us);
      const double rate = base_rate * (1.0 + params.amplitude * std::sin(phase));
      if (rng->NextDouble() * peak_rate <= rate) {
        break;
      }
    }
    job.submit_time = static_cast<SimTime>(t);
  }
  trace->SortAndRenumber();
}

void AssignBurstyArrivals(Trace* trace, const BurstyParams& params, Rng* rng) {
  HAWK_CHECK(trace != nullptr);
  HAWK_CHECK(rng != nullptr);
  HAWK_CHECK_GT(params.mean_interarrival_us, 0);
  HAWK_CHECK_GT(params.burst_duty, 0.0);
  HAWK_CHECK_LE(params.burst_duty, 1.0);
  HAWK_CHECK_GE(params.burstiness, 1.0);
  HAWK_CHECK_LT(params.burstiness * params.burst_duty, 1.0 + 1e-9)
      << "burst state would exceed the total arrival budget";

  const double mean_rate = 1.0 / static_cast<double>(params.mean_interarrival_us);
  const double on_rate = params.burstiness * mean_rate;
  // Off-state rate chosen so duty*on + (1-duty)*off == mean.
  const double off_rate = params.burst_duty >= 1.0
                              ? mean_rate
                              : (mean_rate - params.burst_duty * on_rate) /
                                    (1.0 - params.burst_duty);
  const double mean_on_us = params.burst_duty * static_cast<double>(params.cycle_us);
  const double mean_off_us = static_cast<double>(params.cycle_us) - mean_on_us;

  double t = 0.0;
  bool in_burst = true;
  double state_end = rng->Exponential(mean_on_us);
  for (Job& job : *trace->mutable_jobs()) {
    while (true) {
      const double rate = in_burst ? on_rate : off_rate;
      // An off-state rate of ~0 never fires; skip straight to the next state.
      const double step = rate > 1e-18 ? rng->Exponential(1.0 / rate)
                                       : std::numeric_limits<double>::infinity();
      if (t + step <= state_end) {
        t += step;
        break;
      }
      t = state_end;
      in_burst = !in_burst;
      state_end = t + rng->Exponential(in_burst ? mean_on_us : mean_off_us);
    }
    job.submit_time = static_cast<SimTime>(t);
  }
  trace->SortAndRenumber();
}

}  // namespace hawk
