#include "src/workload/cluster_workloads.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/random.h"
#include "src/workload/arrivals.h"

namespace hawk {

ClusterWorkloadParams ClouderaParams(uint32_t num_jobs, uint64_t seed) {
  // Target (Table 1): 5.02% long jobs, 92.79% task-seconds in long jobs.
  ClusterWorkloadParams params;
  params.name = "cloudera-c";
  params.clusters = {
      {0.9498, 25.0, 40.0},    // short
      {0.0250, 120.0, 600.0},  // long: map-heavy batch
      {0.0150, 400.0, 1200.0}, // long: large scans
      {0.0102, 250.0, 1000.0}, // long: mixed
  };
  params.num_jobs = num_jobs;
  params.seed = seed;
  return params;
}

ClusterWorkloadParams FacebookParams(uint32_t num_jobs, uint64_t seed) {
  // Target (Table 1): 2.01% long jobs, 99.79% task-seconds in long jobs.
  ClusterWorkloadParams params;
  params.name = "facebook-2010";
  params.clusters = {
      {0.9799, 15.0, 20.0},      // short
      {0.0120, 300.0, 5000.0},   // long
      {0.0061, 2000.0, 8000.0},  // long: very large jobs
      {0.0020, 6000.0, 2000.0},  // long: many-task jobs
  };
  params.num_jobs = num_jobs;
  params.seed = seed;
  return params;
}

ClusterWorkloadParams YahooParams(uint32_t num_jobs, uint64_t seed) {
  // Target (Table 1): 9.41% long jobs, 98.31% task-seconds in long jobs.
  ClusterWorkloadParams params;
  params.name = "yahoo-2011";
  params.clusters = {
      {0.9059, 40.0, 30.0},     // short
      {0.0600, 200.0, 1500.0},  // long
      {0.0341, 700.0, 1900.0},  // long
  };
  params.num_jobs = num_jobs;
  params.seed = seed;
  return params;
}

Trace GenerateClusterWorkload(const ClusterWorkloadParams& params) {
  HAWK_CHECK_GT(params.num_jobs, 0u);
  HAWK_CHECK_GE(params.clusters.size(), 2u) << "need a short cluster and at least one long";
  double total_weight = 0.0;
  for (const WorkloadCluster& c : params.clusters) {
    HAWK_CHECK_GT(c.weight, 0.0);
    total_weight += c.weight;
  }
  HAWK_CHECK_GT(total_weight, 0.0);

  Rng rng(params.seed);
  Trace trace;
  for (uint32_t i = 0; i < params.num_jobs; ++i) {
    // Pick a cluster by weight.
    double pick = rng.NextDouble() * total_weight;
    size_t cluster_idx = 0;
    for (; cluster_idx + 1 < params.clusters.size(); ++cluster_idx) {
      pick -= params.clusters[cluster_idx].weight;
      if (pick < 0.0) {
        break;
      }
    }
    const WorkloadCluster& cluster = params.clusters[cluster_idx];

    Job job;
    job.long_hint = cluster_idx != 0;
    const uint32_t num_tasks = static_cast<uint32_t>(std::clamp<double>(
        static_cast<double>(std::lround(1.0 + rng.Exponential(cluster.tasks_centroid))), 1.0,
        static_cast<double>(params.tasks_cap)));
    const double mean_dur_s =
        std::clamp(rng.Exponential(cluster.dur_centroid_s), 0.5, params.dur_cap_s);
    job.task_durations.reserve(num_tasks);
    for (uint32_t t = 0; t < num_tasks; ++t) {
      // The paper's recipe: Gaussian with stddev = 2 * mean, excluding
      // negative values.
      const double dur_s = rng.PositiveGaussian(mean_dur_s, 2.0 * mean_dur_s);
      job.task_durations.push_back(SecondsToUs(dur_s));
    }
    trace.Add(std::move(job));
  }
  trace.SortAndRenumber();
  return trace;
}

Trace GenerateMotivationTrace(uint32_t num_jobs, double scale, uint64_t seed) {
  HAWK_CHECK_GT(num_jobs, 0u);
  HAWK_CHECK_GT(scale, 0.0);
  Rng rng(seed);
  Trace trace;
  const uint32_t long_tasks =
      std::max<uint32_t>(1, static_cast<uint32_t>(std::lround(1000.0 * scale)));
  for (uint32_t i = 0; i < num_jobs; ++i) {
    Job job;
    job.long_hint = rng.NextDouble() < 0.05;
    const uint32_t num_tasks = job.long_hint ? long_tasks : 100;
    const DurationUs dur = job.long_hint ? SecondsToUs(20000.0) : SecondsToUs(100.0);
    job.task_durations.assign(num_tasks, dur);
    trace.Add(std::move(job));
  }
  AssignPoissonArrivals(&trace, SecondsToUs(50.0), &rng);
  return trace;
}

}  // namespace hawk
