// Cloudera-C, Facebook 2010 and Yahoo 2011 workload synthesis (paper §4.1).
//
// The paper builds these traces from the k-means cluster descriptions in
// Chen et al.: the first cluster is the short jobs, the remaining clusters
// are long jobs; per job,
//   #tasks            ~ Exponential(cluster tasks centroid)
//   mean task runtime ~ Exponential(cluster duration centroid)
//   task runtimes     ~ Gaussian(mean, 2*mean) excluding negative values.
// The numeric centroids are not published; the tables below are calibrated so
// the generated traces reproduce the paper's Table 1 (% long jobs and
// % task-seconds) — see DESIGN.md §3 and bench_table1_workload_mix.
#ifndef HAWK_WORKLOAD_CLUSTER_WORKLOADS_H_
#define HAWK_WORKLOAD_CLUSTER_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/workload/trace.h"

namespace hawk {

struct WorkloadCluster {
  double weight;           // Fraction of jobs drawn from this cluster.
  double tasks_centroid;   // Mean of the exponential for #tasks per job.
  double dur_centroid_s;   // Mean of the exponential for mean task runtime.
};

struct ClusterWorkloadParams {
  std::string name;
  // First cluster is the short-job cluster; all others are long (paper §4.1).
  std::vector<WorkloadCluster> clusters;
  uint32_t num_jobs = 4000;
  uint32_t tasks_cap = 8000;
  double dur_cap_s = 50000.0;
  uint64_t seed = 2;
};

// Calibrated parameter sets for the three paper workloads. `num_jobs` scales
// the trace size; class proportions are preserved.
ClusterWorkloadParams ClouderaParams(uint32_t num_jobs, uint64_t seed);
ClusterWorkloadParams FacebookParams(uint32_t num_jobs, uint64_t seed);
ClusterWorkloadParams YahooParams(uint32_t num_jobs, uint64_t seed);

// Generates jobs with submit_time == 0 (assign arrivals afterwards).
Trace GenerateClusterWorkload(const ClusterWorkloadParams& params);

// The §2.3 motivation scenario behind Figure 1, scaled by `scale` (the paper
// runs 15000 servers; scale=0.1 pairs with a 1500-worker cluster): 1000 jobs,
// 95% short (100 tasks x 100 s), 5% long (1000*scale tasks x 20000 s), Poisson
// arrivals with 50 s mean. Within-job durations are constant by design.
Trace GenerateMotivationTrace(uint32_t num_jobs, double scale, uint64_t seed);

}  // namespace hawk

#endif  // HAWK_WORKLOAD_CLUSTER_WORKLOADS_H_
