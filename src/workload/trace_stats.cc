#include "src/workload/trace_stats.h"

namespace hawk {

LongJobPredicate LongByHint() {
  return [](const Job& job) { return job.long_hint; };
}

LongJobPredicate LongByCutoff(DurationUs cutoff_us) {
  return [cutoff_us](const Job& job) {
    return job.AvgTaskDurationUs() >= static_cast<double>(cutoff_us);
  };
}

WorkloadMix ComputeMix(const Trace& trace, const LongJobPredicate& is_long) {
  WorkloadMix mix;
  mix.total_jobs = trace.NumJobs();
  double long_work = 0.0;
  double short_work = 0.0;
  double long_avg_dur_sum = 0.0;
  double short_avg_dur_sum = 0.0;
  for (const Job& job : trace.jobs()) {
    mix.total_tasks += job.NumTasks();
    const double work = static_cast<double>(job.TotalWorkUs());
    if (is_long(job)) {
      ++mix.long_jobs;
      mix.long_tasks += job.NumTasks();
      long_work += work;
      long_avg_dur_sum += job.AvgTaskDurationUs();
    } else {
      short_work += work;
      short_avg_dur_sum += job.AvgTaskDurationUs();
    }
  }
  const double total_work = long_work + short_work;
  if (mix.total_jobs > 0) {
    mix.pct_long_jobs = 100.0 * static_cast<double>(mix.long_jobs) /
                        static_cast<double>(mix.total_jobs);
  }
  if (total_work > 0.0) {
    mix.pct_task_seconds_long = 100.0 * long_work / total_work;
  }
  if (mix.total_tasks > 0) {
    mix.pct_tasks_long =
        100.0 * static_cast<double>(mix.long_tasks) / static_cast<double>(mix.total_tasks);
  }
  const size_t short_jobs = mix.total_jobs - mix.long_jobs;
  if (mix.long_jobs > 0 && short_jobs > 0 && short_avg_dur_sum > 0.0) {
    const double long_mean = long_avg_dur_sum / static_cast<double>(mix.long_jobs);
    const double short_mean = short_avg_dur_sum / static_cast<double>(short_jobs);
    mix.avg_task_duration_ratio = long_mean / short_mean;
  }
  return mix;
}

WorkloadCdfs ComputeCdfs(const Trace& trace, const LongJobPredicate& is_long) {
  WorkloadCdfs cdfs;
  for (const Job& job : trace.jobs()) {
    const double avg_dur_s = job.AvgTaskDurationUs() / static_cast<double>(kMicrosPerSecond);
    const double num_tasks = static_cast<double>(job.NumTasks());
    if (is_long(job)) {
      cdfs.long_avg_task_duration_s.Add(avg_dur_s);
      cdfs.long_tasks_per_job.Add(num_tasks);
    } else {
      cdfs.short_avg_task_duration_s.Add(avg_dur_s);
      cdfs.short_tasks_per_job.Add(num_tasks);
    }
  }
  return cdfs;
}

}  // namespace hawk
