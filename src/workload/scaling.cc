#include "src/workload/scaling.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace hawk {

Trace CapTasksPreserveWork(const Trace& trace, uint32_t max_tasks) {
  HAWK_CHECK_GT(max_tasks, 0u);
  Trace scaled;
  for (const Job& job : trace.jobs()) {
    if (job.NumTasks() <= max_tasks) {
      scaled.Add(job);
      continue;
    }
    Job capped;
    capped.submit_time = job.submit_time;
    capped.long_hint = job.long_hint;
    // Evenly strided subsample keeps the within-job duration mix.
    capped.task_durations.reserve(max_tasks);
    const double stride = static_cast<double>(job.NumTasks()) / static_cast<double>(max_tasks);
    DurationUs kept_work = 0;
    for (uint32_t i = 0; i < max_tasks; ++i) {
      const auto idx = static_cast<size_t>(static_cast<double>(i) * stride);
      const DurationUs d = job.task_durations[std::min<size_t>(idx, job.NumTasks() - 1)];
      capped.task_durations.push_back(d);
      kept_work += d;
    }
    HAWK_CHECK_GT(kept_work, 0);
    const double stretch =
        static_cast<double>(job.TotalWorkUs()) / static_cast<double>(kept_work);
    for (DurationUs& d : capped.task_durations) {
      d = std::max<DurationUs>(1, static_cast<DurationUs>(std::llround(
                                      static_cast<double>(d) * stretch)));
    }
    scaled.Add(std::move(capped));
  }
  scaled.SortAndRenumber();
  return scaled;
}

Trace RescaleTime(const Trace& trace, double factor) {
  HAWK_CHECK_GT(factor, 0.0);
  Trace scaled;
  for (const Job& job : trace.jobs()) {
    Job rescaled = job;
    rescaled.submit_time = static_cast<SimTime>(
        std::llround(static_cast<double>(job.submit_time) * factor));
    for (DurationUs& d : rescaled.task_durations) {
      d = std::max<DurationUs>(
          1, static_cast<DurationUs>(std::llround(static_cast<double>(d) * factor)));
    }
    scaled.Add(std::move(rescaled));
  }
  scaled.SortAndRenumber();
  return scaled;
}

Trace SampleJobs(const Trace& trace, size_t count, Rng* rng) {
  HAWK_CHECK(rng != nullptr);
  if (count >= trace.NumJobs()) {
    return trace;
  }
  const std::vector<uint32_t> picks = rng->SampleWithoutReplacement(
      static_cast<uint32_t>(trace.NumJobs()), static_cast<uint32_t>(count));
  Trace sampled;
  for (const uint32_t idx : picks) {
    sampled.Add(trace.job(idx));
  }
  sampled.SortAndRenumber();
  return sampled;
}

}  // namespace hawk
