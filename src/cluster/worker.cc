#include "src/cluster/worker.h"

namespace hawk {

size_t Worker::StealableGroupBegin() const {
  // Scan [current work, queue...]; the group starts at the first short entry
  // observed after at least one long entry.
  bool seen_long = CurrentIsLong();
  for (size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].is_long) {
      seen_long = true;
      continue;
    }
    if (seen_long) {
      return i;
    }
  }
  return queue_.size();
}

bool Worker::HasStealableGroup() const { return StealableGroupBegin() < queue_.size(); }

std::vector<QueueEntry> Worker::ExtractStealableGroup() {
  const size_t begin = StealableGroupBegin();
  std::vector<QueueEntry> stolen;
  if (begin >= queue_.size()) {
    return stolen;
  }
  size_t end = begin;
  while (end < queue_.size() && !queue_[end].is_long) {
    ++end;
  }
  stolen.assign(queue_.begin() + static_cast<std::ptrdiff_t>(begin),
                queue_.begin() + static_cast<std::ptrdiff_t>(end));
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(begin),
               queue_.begin() + static_cast<std::ptrdiff_t>(end));
  return stolen;
}

}  // namespace hawk
