#include "src/cluster/worker.h"

namespace hawk {

size_t Worker::StealableGroupBegin() const {
  // O(1) screening on the composition counters: the group is made of short
  // entries, and (unless the current work is long) needs a long entry ahead
  // of it in the queue.
  const size_t size = queue_.Size();
  if (queue_short_ == 0) {
    return size;
  }
  if (!CurrentIsLong() && queue_long_ == 0) {
    return size;
  }
  // Scan [current work, queue...]; the group starts at the first short entry
  // observed after at least one long entry.
  bool seen_long = CurrentIsLong();
  for (size_t i = 0; i < size; ++i) {
    if (queue_.At(i).is_long) {
      seen_long = true;
      continue;
    }
    if (seen_long) {
      return i;
    }
  }
  return size;
}

std::vector<QueueEntry> Worker::ExtractStealableGroup() {
  std::vector<QueueEntry> stolen;
  const size_t begin = StealableGroupBegin();
  if (begin >= queue_.Size()) {
    return stolen;
  }
  size_t end = begin;
  while (end < queue_.Size() && !queue_.At(end).is_long) {
    stolen.push_back(queue_.At(end));
    ++end;
  }
  RemoveGroup(begin, end);
  return stolen;
}

void Worker::RemoveGroup(size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    if (queue_.At(i).is_long) {
      --queue_long_;
    } else {
      --queue_short_;
    }
  }
  queue_.EraseRange(begin, end);
}

}  // namespace hawk
