// The simulated cluster: a struct-of-arrays WorkerStore plus the Hawk
// partitioning scheme (paper §3.4).
//
// Workers [0, general_count) form the *general partition* (short and long
// tasks may run there); workers [general_count, num_workers) form the *short
// partition*, reserved for short tasks. Baselines that do not partition use
// general_count == num_workers.
//
// Because the store's slot-index space is laid out in worker-id order, the
// general partition is also a slot-id prefix [0, GeneralSlots()): probe
// placement and steal-victim selection sample slots (weighting workers by
// capacity) and map back with WorkerOfSlot().
#ifndef HAWK_CLUSTER_CLUSTER_H_
#define HAWK_CLUSTER_CLUSTER_H_

#include "src/cluster/worker_store.h"
#include "src/common/check.h"
#include "src/common/types.h"

namespace hawk {

class Cluster {
 public:
  Cluster(uint32_t num_workers, uint32_t general_count, const SlotSpec& slots = SlotSpec{})
      : store_(num_workers, slots), general_count_(general_count) {
    HAWK_CHECK_LE(general_count, num_workers);
    HAWK_CHECK_GT(general_count, 0u) << "general partition may not be empty";
    general_slots_ = store_.SlotBegin(general_count);
  }

  uint32_t NumWorkers() const { return store_.NumWorkers(); }
  uint32_t GeneralCount() const { return general_count_; }
  uint32_t ShortPartitionCount() const { return NumWorkers() - general_count_; }

  bool InGeneralPartition(WorkerId id) const { return id < general_count_; }

  // Worker state, queues and execution transitions all live on the store.
  WorkerStore& workers() { return store_; }
  const WorkerStore& workers() const { return store_; }

  // --- slot-index space ----------------------------------------------------
  uint64_t TotalSlots() const { return store_.TotalSlots(); }
  // Slots belonging to the general partition: ids [0, GeneralSlots()).
  SlotId GeneralSlots() const { return general_slots_; }
  WorkerId WorkerOfSlot(SlotId slot) const { return store_.WorkerOfSlot(slot); }

  // Fraction of slots currently executing a task (the paper's "percentage of
  // used servers", generalized to slot capacity). O(1): the executing count
  // is maintained by the store's execution state transitions instead of a
  // full scan per utilization sample.
  double Utilization() const {
    return static_cast<double>(store_.ExecutingTotal()) /
           static_cast<double>(store_.TotalSlots());
  }

  // Number of slots currently executing a task.
  uint64_t ExecutingCount() const { return store_.ExecutingTotal(); }

  // Total accumulated execution time across workers (work conservation).
  DurationUs TotalBusyUs() const { return store_.TotalBusyUs(); }

 private:
  WorkerStore store_;
  uint32_t general_count_;
  SlotId general_slots_;
};

}  // namespace hawk

#endif  // HAWK_CLUSTER_CLUSTER_H_
