// The simulated cluster: a set of single-slot workers plus the Hawk
// partitioning scheme (paper §3.4).
//
// Workers [0, general_count) form the *general partition* (short and long
// tasks may run there); workers [general_count, num_workers) form the *short
// partition*, reserved for short tasks. Baselines that do not partition use
// general_count == num_workers.
#ifndef HAWK_CLUSTER_CLUSTER_H_
#define HAWK_CLUSTER_CLUSTER_H_

#include <vector>

#include "src/cluster/worker.h"
#include "src/common/check.h"
#include "src/common/types.h"

namespace hawk {

class Cluster {
 public:
  Cluster(uint32_t num_workers, uint32_t general_count)
      : general_count_(general_count) {
    HAWK_CHECK_GT(num_workers, 0u);
    HAWK_CHECK_LE(general_count, num_workers);
    HAWK_CHECK_GT(general_count, 0u) << "general partition may not be empty";
    workers_.reserve(num_workers);
    for (uint32_t i = 0; i < num_workers; ++i) {
      workers_.emplace_back(i);
    }
    for (Worker& w : workers_) {
      w.BindExecutingCounter(&executing_count_);
    }
  }

  // Workers hold a pointer to executing_count_; pinning the cluster keeps it
  // valid for their whole lifetime.
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  uint32_t NumWorkers() const { return static_cast<uint32_t>(workers_.size()); }
  uint32_t GeneralCount() const { return general_count_; }
  uint32_t ShortPartitionCount() const { return NumWorkers() - general_count_; }

  bool InGeneralPartition(WorkerId id) const { return id < general_count_; }

  Worker& worker(WorkerId id) {
    HAWK_CHECK_LT(id, workers_.size());
    return workers_[id];
  }
  const Worker& worker(WorkerId id) const {
    HAWK_CHECK_LT(id, workers_.size());
    return workers_[id];
  }

  // Fraction of workers currently executing a task (paper's "percentage of
  // used servers"). O(1): the count is maintained by the workers' execution
  // state transitions instead of a full scan per utilization sample.
  double Utilization() const {
    return static_cast<double>(executing_count_) / static_cast<double>(workers_.size());
  }

  // Number of workers currently in the kExecuting state.
  uint32_t ExecutingCount() const { return executing_count_; }

  // Total accumulated execution time across workers (work conservation).
  DurationUs TotalBusyUs() const {
    DurationUs total = 0;
    for (const Worker& w : workers_) {
      total += w.busy_accum_us();
    }
    return total;
  }

 private:
  std::vector<Worker> workers_;
  uint32_t general_count_;
  uint32_t executing_count_ = 0;
};

}  // namespace hawk

#endif  // HAWK_CLUSTER_CLUSTER_H_
