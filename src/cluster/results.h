// Experiment outputs: per-job results, utilization samples and mechanism
// counters. These are the raw series every figure in the paper is computed
// from.
#ifndef HAWK_CLUSTER_RESULTS_H_
#define HAWK_CLUSTER_RESULTS_H_

#include <cstdint>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/types.h"

namespace hawk {

struct JobResult {
  JobId id = 0;
  bool is_long = false;  // Metrics classification (noise-free).
  SimTime submit_time = 0;
  SimTime finish_time = 0;
  DurationUs runtime_us = 0;  // finish - submit, includes all queueing.
};

struct RunCounters {
  uint64_t jobs = 0;
  uint64_t tasks_launched = 0;
  uint64_t probes_placed = 0;
  uint64_t probe_requests = 0;
  uint64_t cancels = 0;
  uint64_t central_tasks_placed = 0;
  uint64_t steal_attempts = 0;       // Idle transitions that tried to steal.
  uint64_t steal_victim_probes = 0;  // Random victims contacted.
  uint64_t steal_successes = 0;      // Attempts that obtained >= 1 entry.
  uint64_t entries_stolen = 0;
  uint64_t events = 0;

  // Queueing-delay telemetry: total time launched tasks spent between entry
  // placement and execution start, split by scheduling class.
  uint64_t short_tasks_started = 0;
  uint64_t long_tasks_started = 0;
  uint64_t short_queue_wait_us = 0;
  uint64_t long_queue_wait_us = 0;

  // Fault-injection telemetry (all zero in fault-free runs). The prototype
  // fills the same counters from its monitors/schedulers, so fault behavior
  // is comparable across the two executors.
  uint64_t worker_crashes = 0;       // Fail-stop crashes applied.
  uint64_t worker_departures = 0;    // Graceful churn departures applied.
  uint64_t worker_rejoins = 0;       // Workers brought back after downtime.
  uint64_t messages_dropped = 0;     // Probe/task deliveries lost in transit.
  uint64_t message_retries = 0;      // Retransmissions after a sender timeout.
  uint64_t tasks_re_dispatched = 0;  // Tasks handed back for re-dispatch.
  uint64_t probes_lost = 0;          // Probes that died with their worker.
  uint64_t duplicate_completions = 0;  // Same task reported done twice
                                       // (prototype re-dispatch races).
  uint64_t wasted_work_us = 0;  // Partial execution thrown away by crashes,
                                // straggler drag, and losing speculative
                                // copies.

  // Adaptive-recovery telemetry (all zero unless speculation or the retry
  // budget actually fires).
  uint64_t tasks_speculated = 0;   // Duplicate copies launched.
  uint64_t speculative_wins = 0;   // Duplicates that finished first.
  uint64_t speculative_wasted_us = 0;  // Execution time of losing copies.
  uint64_t retries_suppressed = 0;  // Retransmits withheld by the budget.
  uint64_t tasks_abandoned = 0;     // Task deliveries given up on after the
                                    // retry budget (recovered via re-dispatch).
  uint64_t node_suspicions = 0;     // Alive -> suspected transitions seen by
                                    // the heartbeat detector (prototype only).

  double AvgQueueWaitSeconds(bool long_class) const {
    const uint64_t count = long_class ? long_tasks_started : short_tasks_started;
    const uint64_t wait = long_class ? long_queue_wait_us : short_queue_wait_us;
    if (count == 0) {
      return 0.0;
    }
    return static_cast<double>(wait) / static_cast<double>(count) /
           static_cast<double>(kMicrosPerSecond);
  }
};

struct RunResult {
  std::vector<JobResult> jobs;
  std::vector<double> utilization_samples;  // One per 100 s (configurable).
  RunCounters counters;
  SimTime makespan_us = 0;       // Completion time of the last job.
  DurationUs total_busy_us = 0;  // Sum of worker execution time (= sum of task durations).

  // Runtime samples in seconds for one job class.
  Samples RuntimesSeconds(bool long_jobs) const {
    Samples samples;
    for (const JobResult& job : jobs) {
      if (job.is_long == long_jobs) {
        samples.Add(static_cast<double>(job.runtime_us) /
                    static_cast<double>(kMicrosPerSecond));
      }
    }
    return samples;
  }

  double MedianUtilization() const {
    Samples samples;
    for (const double u : utilization_samples) {
      samples.Add(u);
    }
    return samples.Empty() ? 0.0 : samples.Median();
  }

  double MaxUtilization() const {
    double max = 0.0;
    for (const double u : utilization_samples) {
      max = std::max(max, u);
    }
    return max;
  }
};

}  // namespace hawk

#endif  // HAWK_CLUSTER_RESULTS_H_
