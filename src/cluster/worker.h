// A single-slot worker with one FIFO queue (paper §3.1).
//
// The worker is a passive data structure: the simulation driver (or the
// threaded prototype's node monitor) owns the control flow. Each worker can
// execute one task at a time; §4.1 notes multi-slot nodes are equivalent to
// this model with one queue per slot, i.e. more single-slot workers.
#ifndef HAWK_CLUSTER_WORKER_H_
#define HAWK_CLUSTER_WORKER_H_

#include <deque>
#include <vector>

#include "src/cluster/queue_entry.h"
#include "src/common/check.h"
#include "src/common/types.h"

namespace hawk {

enum class WorkerState : uint8_t {
  kIdle,        // No task running, queue drained.
  kRequesting,  // A probe reached the head; RPC to the job's scheduler in flight.
  kExecuting,   // Running a task.
};

class Worker {
 public:
  explicit Worker(WorkerId id) : id_(id) {}

  WorkerId id() const { return id_; }
  WorkerState state() const { return state_; }
  bool Busy() const { return state_ != WorkerState::kIdle; }

  // --- queue -----------------------------------------------------------
  void Enqueue(QueueEntry entry) { queue_.push_back(entry); }
  bool QueueEmpty() const { return queue_.empty(); }
  size_t QueueSize() const { return queue_.size(); }
  const std::deque<QueueEntry>& queue() const { return queue_; }

  QueueEntry PopFront() {
    HAWK_CHECK(!queue_.empty());
    QueueEntry entry = queue_.front();
    queue_.pop_front();
    return entry;
  }

  // --- execution state transitions --------------------------------------
  void BeginRequest(bool probe_is_long) {
    HAWK_CHECK(state_ == WorkerState::kIdle);
    state_ = WorkerState::kRequesting;
    current_is_long_ = probe_is_long;
  }

  void BeginExecute(SimTime now, const QueueEntry& task) {
    HAWK_CHECK(state_ != WorkerState::kExecuting);
    HAWK_CHECK(task.kind == EntryKind::kTask);
    state_ = WorkerState::kExecuting;
    current_is_long_ = task.is_long;
    executing_job_ = task.job;
    executing_until_ = now + task.duration;
    busy_accum_us_ += task.duration;
  }

  void FinishExecute() {
    HAWK_CHECK(state_ == WorkerState::kExecuting);
    state_ = WorkerState::kIdle;
    executing_job_ = kInvalidJob;
  }

  void CancelRequest() {
    HAWK_CHECK(state_ == WorkerState::kRequesting);
    state_ = WorkerState::kIdle;
  }

  bool ExecutingLong() const { return state_ == WorkerState::kExecuting && current_is_long_; }
  // True while executing or resolving a long entry; the steal scan treats an
  // in-flight long probe like an executing long task.
  bool CurrentIsLong() const { return Busy() && current_is_long_; }
  JobId executing_job() const { return executing_job_; }
  SimTime executing_until() const { return executing_until_; }

  // Total microseconds of task execution accumulated (work conservation).
  DurationUs busy_accum_us() const { return busy_accum_us_; }

  // --- stealing (paper §3.6, Fig. 3) -------------------------------------
  // Removes and returns the first consecutive group of short entries that
  // follows a long entry in [current work, queue...] order:
  //   a1/a2) executing a short task: the group after the first long entry in
  //          the queue;
  //   b1/b2) executing a long task: the first short group in the queue (the
  //          group "immediately after that long task"), skipping any further
  //          long entries that precede it.
  // Returns an empty vector when there is no head-of-line blocking to relieve.
  std::vector<QueueEntry> ExtractStealableGroup();

  // True iff ExtractStealableGroup would return a non-empty group.
  bool HasStealableGroup() const;

 private:
  // Index of the first entry of the stealable group, or queue size if none.
  size_t StealableGroupBegin() const;

  WorkerId id_;
  WorkerState state_ = WorkerState::kIdle;
  bool current_is_long_ = false;
  JobId executing_job_ = kInvalidJob;
  SimTime executing_until_ = 0;
  DurationUs busy_accum_us_ = 0;
  std::deque<QueueEntry> queue_;
};

}  // namespace hawk

#endif  // HAWK_CLUSTER_WORKER_H_
