// A single-slot worker with one FIFO queue (paper §3.1).
//
// The worker is a passive data structure: the simulation driver (or the
// threaded prototype's node monitor) owns the control flow. Each worker can
// execute one task at a time; §4.1 notes multi-slot nodes are equivalent to
// this model with one queue per slot, i.e. more single-slot workers.
//
// The queue is a power-of-two ring buffer rather than std::deque: pops and
// pushes never touch an allocator once the ring is warm, and the steal-group
// scan walks contiguous memory. The worker also tracks how many long/short
// entries the queue holds so steal-victim screening is O(1) — a victim with
// no short entries (or no long entry anywhere in [current work, queue...])
// is rejected without scanning.
#ifndef HAWK_CLUSTER_WORKER_H_
#define HAWK_CLUSTER_WORKER_H_

#include <cstddef>
#include <vector>

#include "src/cluster/queue_entry.h"
#include "src/common/check.h"
#include "src/common/ring_buffer.h"
#include "src/common/types.h"

namespace hawk {

enum class WorkerState : uint8_t {
  kIdle,        // No task running, queue drained.
  kRequesting,  // A probe reached the head; RPC to the job's scheduler in flight.
  kExecuting,   // Running a task.
};

class Worker {
 public:
  explicit Worker(WorkerId id) : id_(id) {}

  WorkerId id() const { return id_; }
  WorkerState state() const { return state_; }
  bool Busy() const { return state_ != WorkerState::kIdle; }

  // --- queue -----------------------------------------------------------
  void Enqueue(const QueueEntry& entry) {
    queue_.PushBack(entry);
    if (entry.is_long) {
      ++queue_long_;
    } else {
      ++queue_short_;
    }
  }

  bool QueueEmpty() const { return queue_.Empty(); }
  size_t QueueSize() const { return queue_.Size(); }

  // Queue entry at FIFO position `i` (0 = next to pop).
  const QueueEntry& QueueAt(size_t i) const { return queue_.At(i); }

  QueueEntry PopFront() {
    const QueueEntry entry = queue_.PopFront();
    if (entry.is_long) {
      --queue_long_;
    } else {
      --queue_short_;
    }
    return entry;
  }

  // --- execution state transitions --------------------------------------
  void BeginRequest(bool probe_is_long) {
    HAWK_CHECK(state_ == WorkerState::kIdle);
    state_ = WorkerState::kRequesting;
    current_is_long_ = probe_is_long;
  }

  void BeginExecute(SimTime now, const QueueEntry& task) {
    HAWK_CHECK(state_ != WorkerState::kExecuting);
    HAWK_CHECK(task.kind == EntryKind::kTask);
    state_ = WorkerState::kExecuting;
    current_is_long_ = task.is_long;
    executing_job_ = task.job;
    executing_until_ = now + task.duration;
    busy_accum_us_ += task.duration;
    if (executing_count_ != nullptr) {
      ++*executing_count_;
    }
  }

  void FinishExecute() {
    HAWK_CHECK(state_ == WorkerState::kExecuting);
    state_ = WorkerState::kIdle;
    executing_job_ = kInvalidJob;
    if (executing_count_ != nullptr) {
      --*executing_count_;
    }
  }

  void CancelRequest() {
    HAWK_CHECK(state_ == WorkerState::kRequesting);
    state_ = WorkerState::kIdle;
  }

  bool ExecutingLong() const { return state_ == WorkerState::kExecuting && current_is_long_; }
  // True while executing or resolving a long entry; the steal scan treats an
  // in-flight long probe like an executing long task.
  bool CurrentIsLong() const { return Busy() && current_is_long_; }
  JobId executing_job() const { return executing_job_; }
  SimTime executing_until() const { return executing_until_; }

  // Total microseconds of task execution accumulated (work conservation).
  DurationUs busy_accum_us() const { return busy_accum_us_; }

  // Cluster-level accounting hook: while bound, the worker maintains
  // *counter across kExecuting transitions so Cluster::Utilization() is O(1).
  void BindExecutingCounter(uint32_t* counter) {
    executing_count_ = counter;
    if (counter != nullptr && state_ == WorkerState::kExecuting) {
      ++*counter;
    }
  }

  // --- stealing (paper §3.6, Fig. 3) -------------------------------------
  // The stealable group is the first consecutive run of short entries that
  // follows a long entry in [current work, queue...] order:
  //   a1/a2) executing a short task: the group after the first long entry in
  //          the queue;
  //   b1/b2) executing a long task: the first short group in the queue (the
  //          group "immediately after that long task"), skipping any further
  //          long entries that precede it.

  // Moves the stealable group, if any, straight onto `thief`'s queue (no
  // intermediate buffer) and returns the number of entries moved.
  size_t StealGroupInto(Worker* thief) {
    const size_t begin = StealableGroupBegin();
    if (begin >= queue_.Size()) {
      return 0;
    }
    size_t end = begin;
    while (end < queue_.Size() && !QueueAt(end).is_long) {
      thief->Enqueue(QueueAt(end));
      ++end;
    }
    RemoveGroup(begin, end);
    return end - begin;
  }

  // Removes and returns the stealable group (empty vector when there is no
  // head-of-line blocking to relieve). Compatibility path for tests and
  // custom policies; the simulation hot path uses StealGroupInto.
  std::vector<QueueEntry> ExtractStealableGroup();

  // True iff the stealable group is non-empty.
  bool HasStealableGroup() const { return StealableGroupBegin() < queue_.Size(); }

 private:
  // Index (FIFO position) of the first entry of the stealable group, or the
  // queue size if none. Screens on the long/short composition counters
  // before scanning.
  size_t StealableGroupBegin() const;

  // Erases queue positions [begin, end) and updates the composition counters.
  void RemoveGroup(size_t begin, size_t end);

  WorkerId id_;
  WorkerState state_ = WorkerState::kIdle;
  bool current_is_long_ = false;
  JobId executing_job_ = kInvalidJob;
  SimTime executing_until_ = 0;
  DurationUs busy_accum_us_ = 0;
  uint32_t* executing_count_ = nullptr;

  RingBuffer<QueueEntry> queue_;
  // Queue composition, maintained incrementally.
  uint32_t queue_long_ = 0;
  uint32_t queue_short_ = 0;
};

}  // namespace hawk

#endif  // HAWK_CLUSTER_WORKER_H_
