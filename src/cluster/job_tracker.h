// Per-job progress: late-binding task hand-out and completion tracking.
//
// The tracker owns the single authoritative copy of "which tasks of job J
// have been handed out", which is what makes Sparrow-style late binding safe:
// however many probes are queued across the cluster, each task is given out
// exactly once, and surplus probes resolve to cancels.
#ifndef HAWK_CLUSTER_JOB_TRACKER_H_
#define HAWK_CLUSTER_JOB_TRACKER_H_

#include <optional>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/workload/trace.h"

namespace hawk {

struct TaskAssignment {
  TaskIndex task_index;
  DurationUs duration;
};

class JobTracker {
 public:
  explicit JobTracker(const Trace* trace) : trace_(trace) {
    HAWK_CHECK(trace != nullptr);
    progress_.resize(trace->NumJobs());
    for (size_t i = 0; i < trace->NumJobs(); ++i) {
      progress_[i].unfinished = trace->job(i).NumTasks();
    }
  }

  // Classification recorded at job arrival: the class the scheduler acted on
  // (possibly mis-estimated), the noise-free class used for metrics, and the
  // estimate itself (schedulers look it up on task start/finish feedback).
  void SetClassification(JobId id, bool is_long_sched, bool is_long_metrics,
                         DurationUs estimate_us) {
    State& s = state(id);
    s.is_long_sched = is_long_sched;
    s.is_long_metrics = is_long_metrics;
    s.estimate_us = estimate_us;
  }

  bool IsLongSched(JobId id) const { return state(id).is_long_sched; }
  bool IsLongMetrics(JobId id) const { return state(id).is_long_metrics; }
  DurationUs EstimateUs(JobId id) const { return state(id).estimate_us; }

  // Hands out the next unassigned task, or nullopt if all tasks are out
  // (the probe's request is answered with a cancel). Tasks handed back by
  // ReturnTask are re-issued first, oldest first.
  std::optional<TaskAssignment> TakeNextTask(JobId id) {
    State& s = state(id);
    if (!s.returned.empty()) {
      const TaskAssignment a = s.returned.front();
      s.returned.erase(s.returned.begin());
      return a;
    }
    const Job& job = trace_->job(id);
    if (s.next_unassigned >= job.NumTasks()) {
      return std::nullopt;
    }
    const TaskIndex idx = s.next_unassigned++;
    return TaskAssignment{idx, job.task_durations[idx]};
  }

  // Hands a previously assigned task back for re-dispatch (its worker
  // crashed or its placement was invalidated). The exactly-once guarantee
  // holds because the caller only returns a task whose current placement is
  // provably dead; an over-return of a finished job fails the unfinished
  // CHECK below on the extra completion.
  void ReturnTask(JobId id, const TaskAssignment& assignment) {
    State& s = state(id);
    HAWK_CHECK_LT(assignment.task_index, trace_->job(id).NumTasks());
    HAWK_CHECK_GT(s.unfinished, 0u) << "task returned for finished job " << id;
    s.returned.push_back(assignment);
  }

  bool AllTasksAssigned(JobId id) const {
    const State& s = state(id);
    return s.returned.empty() && s.next_unassigned >= trace_->job(id).NumTasks();
  }

  // Marks one task finished; returns true when this completed the job.
  bool OnTaskFinished(JobId id, SimTime now) {
    State& s = state(id);
    HAWK_CHECK_GT(s.unfinished, 0u) << "job " << id << " over-completed";
    --s.unfinished;
    if (s.unfinished == 0) {
      s.finish_time = now;
      ++jobs_finished_;
      return true;
    }
    return false;
  }

  bool JobFinished(JobId id) const { return state(id).unfinished == 0; }
  SimTime FinishTime(JobId id) const { return state(id).finish_time; }

  size_t jobs_finished() const { return jobs_finished_; }
  bool AllJobsFinished() const { return jobs_finished_ == trace_->NumJobs(); }

 private:
  struct State {
    uint32_t next_unassigned = 0;
    uint32_t unfinished = 0;
    bool is_long_sched = false;
    bool is_long_metrics = false;
    DurationUs estimate_us = 0;
    SimTime finish_time = -1;
    // Tasks handed back by the fault layer, awaiting re-dispatch (empty in
    // fault-free runs).
    std::vector<TaskAssignment> returned;
  };

  State& state(JobId id) {
    HAWK_CHECK_LT(id, progress_.size());
    return progress_[id];
  }
  const State& state(JobId id) const {
    HAWK_CHECK_LT(id, progress_.size());
    return progress_[id];
  }

  const Trace* trace_;
  std::vector<State> progress_;
  size_t jobs_finished_ = 0;
};

}  // namespace hawk

#endif  // HAWK_CLUSTER_JOB_TRACKER_H_
