// Struct-of-arrays worker state for million-worker clusters.
//
// The former array-of-structs `Worker` world kept each worker's state, queue
// composition and ring buffer in one object; at 100k+ workers the simulation
// hot loops (dispatch gating, steal-victim screening, utilization sampling)
// paid a cache line per worker touched. WorkerStore splits the state by
// temperature instead:
//
//   hot, one dense array each, indexed by WorkerId:
//     free_           free slots (the dispatch gate reads only this)
//     executing_      slots currently running a task
//     requesting_     slots blocked on a late-binding RTT
//     occupied_long_  occupied slots holding long work (steal screening)
//     queue_short_ /  queue composition counters (steal screening rejects a
//     queue_long_     victim without ever touching its ring)
//
//   cold side arrays, same indexing:
//     queues_         per-worker FIFO ring buffers (probe/task entries)
//     busy_accum_us_  accumulated execution time (work conservation)
//     slots_          per-worker capacity
//
// Workers are multi-slot (paper §4.1: a multi-slot node is equivalent to
// more single-slot workers; here the slots share one FIFO queue): a worker
// with S slots executes up to S tasks concurrently, and every mechanism that
// used to ask "is this worker free" asks "does this worker have a free slot".
// With every worker at one slot the semantics — and the simulation results,
// bit for bit — are identical to the old single-slot world.
//
// Capacity may be heterogeneous: SlotSpec upgrades an evenly spread fraction
// of workers to a bigger slot count (the heterogeneous-servers scenario
// family). The store exposes a slot-index space [0, TotalSlots()) — worker 0's
// slots first, then worker 1's, ... — so probe placement and steal victim
// sampling can weight workers by capacity simply by sampling slots.
#ifndef HAWK_CLUSTER_WORKER_STORE_H_
#define HAWK_CLUSTER_WORKER_STORE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/cluster/queue_entry.h"
#include "src/common/aligned.h"
#include "src/common/check.h"
#include "src/common/ring_buffer.h"
#include "src/common/types.h"

namespace hawk {

// An index into the cluster-wide slot space [0, TotalSlots()). Slot s belongs
// to the worker whose slot range contains s; ranges are contiguous and in
// worker-id order, so any worker-id prefix (e.g. the general partition) is
// also a slot-id prefix.
using SlotId = uint32_t;

// Per-worker capacity ceiling: uint16 slot counters keep the hot arrays
// dense, and the cap sits well below the type's ceiling so per-worker
// arithmetic can never wrap. HawkConfig::Validate() enforces the same bound
// so bad configs fail with a Status before reaching the store's CHECKs.
inline constexpr uint32_t kMaxSlotsPerWorker = 4096;

// Per-worker capacity layout: every worker gets `slots_per_worker` slots,
// except an evenly spread `big_worker_fraction` of workers upgraded to
// `big_worker_slots` (0 disables the upgrade). Deterministic: the layout is a
// pure function of (spec, num_workers).
struct SlotSpec {
  uint32_t slots_per_worker = 1;
  double big_worker_fraction = 0.0;
  uint32_t big_worker_slots = 0;  // 0 = no heterogeneity.

  bool Uniform() const {
    return big_worker_fraction <= 0.0 || big_worker_slots == 0 ||
           big_worker_slots == slots_per_worker;
  }

  // Number of upgraded workers out of `num_workers` (round-to-nearest).
  uint32_t BigWorkerCount(uint32_t num_workers) const {
    if (Uniform()) {
      return 0;
    }
    const double count = big_worker_fraction * static_cast<double>(num_workers) + 0.5;
    return static_cast<uint32_t>(count);
  }

  // Capacity of `worker`. Big workers are spread evenly across the id space
  // (worker i is big iff the rounded cumulative big count increases at i) so
  // neither partition is systematically starved of capacity.
  uint32_t SlotsOf(WorkerId worker, uint32_t num_workers) const {
    const uint32_t big = BigWorkerCount(num_workers);
    if (big == 0) {
      return slots_per_worker;
    }
    const uint64_t before = static_cast<uint64_t>(worker) * big / num_workers;
    const uint64_t after = (static_cast<uint64_t>(worker) + 1) * big / num_workers;
    return after > before ? big_worker_slots : slots_per_worker;
  }
};

class WorkerStore {
 public:
  explicit WorkerStore(uint32_t num_workers, const SlotSpec& spec = SlotSpec{});

  uint32_t NumWorkers() const { return static_cast<uint32_t>(slots_.size()); }
  uint64_t TotalSlots() const { return total_slots_; }

  // --- sharded execution ---------------------------------------------------
  // Splits the occupancy accumulators (queued/executing totals) by worker
  // shard so concurrent shards of the sharded simulation executor never write
  // one shared counter. `shard_begin` lists each shard's first worker id,
  // strictly increasing and starting at 0; shard s owns the contiguous range
  // [shard_begin[s], shard_begin[s+1]) (the last shard runs to NumWorkers()).
  // Must be called before any entry is queued or executed. The default,
  // unconfigured store keeps a single accumulator, so the serial driver's
  // arithmetic is unchanged.
  void ConfigureShards(const std::vector<WorkerId>& shard_begin);

  // --- slots -------------------------------------------------------------
  uint32_t Slots(WorkerId id) const { return slots_[Check(id)]; }
  uint32_t FreeSlots(WorkerId id) const { return free_[Check(id)]; }
  bool HasFreeSlot(WorkerId id) const { return free_[Check(id)] > 0; }
  uint32_t ExecutingSlots(WorkerId id) const { return executing_[Check(id)]; }
  uint32_t RequestingSlots(WorkerId id) const { return requesting_[Check(id)]; }
  uint32_t OccupiedSlots(WorkerId id) const {
    const size_t i = Check(id);
    return static_cast<uint32_t>(executing_[i]) + requesting_[i];
  }
  // True while any occupied slot (executing or resolving) holds long work;
  // the steal scan treats an in-flight long probe like an executing long task.
  bool AnyOccupiedLong(WorkerId id) const { return occupied_long_[Check(id)] > 0; }

  // --- slot-index space ----------------------------------------------------
  // First slot id of `id`'s contiguous slot range. SlotBegin(NumWorkers())
  // == TotalSlots().
  SlotId SlotBegin(WorkerId id) const {
    HAWK_CHECK_LE(id, slots_.size());
    return uniform_ ? static_cast<SlotId>(id * uniform_slots_) : slot_begin_[id];
  }
  WorkerId WorkerOfSlot(SlotId slot) const {
    HAWK_CHECK_LT(slot, total_slots_);
    return uniform_ ? slot / uniform_slots_ : slot_to_worker_[slot];
  }

  // --- queue -----------------------------------------------------------
  void Enqueue(WorkerId id, const QueueEntry& entry) {
    const size_t i = Check(id);
    queues_[i].PushBack(entry);
    if (entry.is_long) {
      ++queue_long_[i];
    } else {
      ++queue_short_[i];
    }
    ++totals_[ShardOf(i)].queued;
  }

  bool QueueEmpty(WorkerId id) const { return queues_[Check(id)].Empty(); }
  size_t QueueSize(WorkerId id) const { return queues_[Check(id)].Size(); }

  // Queue entry at FIFO position `i` (0 = next to pop).
  const QueueEntry& QueueAt(WorkerId id, size_t i) const { return queues_[Check(id)].At(i); }

  QueueEntry PopFront(WorkerId id) {
    const size_t i = Check(id);
    const QueueEntry entry = queues_[i].PopFront();
    if (entry.is_long) {
      --queue_long_[i];
    } else {
      --queue_short_[i];
    }
    ShardTotals& totals = totals_[ShardOf(i)];
    HAWK_CHECK_GT(totals.queued, 0u);
    --totals.queued;
    return entry;
  }

  // --- fault injection -----------------------------------------------------
  // Removes every queued entry of `id` (FIFO order) and appends it to `*out`.
  // The fault layer hands the entries back to their schedulers for
  // re-dispatch; callers on hot fault paths pool `*out` across calls so a
  // crash costs no allocation once warm.
  void DrainQueueInto(WorkerId id, std::vector<QueueEntry>* out) {
    const size_t i = Check(id);
    out->reserve(out->size() + queues_[i].Size());
    while (!queues_[i].Empty()) {
      out->push_back(PopFront(id));
    }
  }

  // Allocating convenience wrapper around DrainQueueInto.
  std::vector<QueueEntry> DrainQueue(WorkerId id) {
    std::vector<QueueEntry> drained;
    DrainQueueInto(id, &drained);
    return drained;
  }

  // Fail-stop crash: releases every occupied slot (executing and requesting)
  // in one stroke. The queue must already be drained; the caller is
  // responsible for invalidating the in-flight completions/resolves whose
  // slots this frees.
  void ResetSlots(WorkerId id) {
    const size_t i = Check(id);
    HAWK_CHECK(queues_[i].Empty()) << "ResetSlots on worker " << id
                                   << " with a non-empty queue (drain first)";
    ShardTotals& totals = totals_[ShardOf(i)];
    HAWK_CHECK_GE(totals.executing, executing_[i]);
    totals.executing -= executing_[i];
    executing_[i] = 0;
    requesting_[i] = 0;
    occupied_long_[i] = 0;
    free_[i] = slots_[i];
  }

  // Takes back execution time charged by BeginExecute for work a crash threw
  // away (BeginExecute charges the full duration up front; a killed task only
  // delivered part of it).
  void DeductBusyUs(WorkerId id, DurationUs us) {
    const size_t i = Check(id);
    HAWK_CHECK_GE(busy_accum_us_[i], us);
    busy_accum_us_[i] -= us;
  }

  // --- execution state transitions --------------------------------------
  // Occupies a free slot with a late-binding request (probe at head of
  // queue; resolves after one RTT).
  void BeginRequest(WorkerId id, bool probe_is_long) {
    const size_t i = Check(id);
    HAWK_CHECK_GT(free_[i], 0u) << "BeginRequest on worker " << id << " with no free slot";
    --free_[i];
    ++requesting_[i];
    if (probe_is_long) {
      ++occupied_long_[i];
    }
  }

  // Releases a requesting slot (the RTT answer arrived — task or cancel).
  // `probe_is_long` must match the BeginRequest that occupied the slot.
  void ResolveRequest(WorkerId id, bool probe_is_long) {
    const size_t i = Check(id);
    HAWK_CHECK_GT(requesting_[i], 0u) << "ResolveRequest on worker " << id
                                      << " with no request in flight";
    --requesting_[i];
    ++free_[i];
    if (probe_is_long) {
      HAWK_CHECK_GT(occupied_long_[i], 0u);
      --occupied_long_[i];
    }
  }

  // Occupies a free slot with an executing task.
  void BeginExecute(WorkerId id, SimTime now, const QueueEntry& task) {
    (void)now;
    const size_t i = Check(id);
    HAWK_CHECK_GT(free_[i], 0u) << "BeginExecute on worker " << id << " with no free slot";
    HAWK_CHECK(task.kind == EntryKind::kTask);
    --free_[i];
    ++executing_[i];
    if (task.is_long) {
      ++occupied_long_[i];
    }
    busy_accum_us_[i] += task.duration;
    ++totals_[ShardOf(i)].executing;
  }

  // Releases an executing slot. `was_long` must match the task's scheduling
  // class from BeginExecute.
  void FinishExecute(WorkerId id, bool was_long) {
    const size_t i = Check(id);
    HAWK_CHECK_GT(executing_[i], 0u) << "FinishExecute on worker " << id
                                     << " with nothing executing";
    --executing_[i];
    ++free_[i];
    if (was_long) {
      HAWK_CHECK_GT(occupied_long_[i], 0u);
      --occupied_long_[i];
    }
    ShardTotals& totals = totals_[ShardOf(i)];
    HAWK_CHECK_GT(totals.executing, 0u);
    --totals.executing;
  }

  // --- stealing (paper §3.6, Fig. 3) -------------------------------------
  // The stealable group is the first consecutive run of short entries that
  // follows a long entry in [current work, queue...] order:
  //   a1/a2) occupied by short work only: the group after the first long
  //          entry in the queue;
  //   b1/b2) any occupied slot holds long work: the first short group in the
  //          queue, skipping any further long entries that precede it.
  // A partially full multi-slot worker screens exactly like a single-slot
  // one: only the queue composition and the occupied-long count matter.

  // Moves the stealable group, if any, straight onto `thief`'s queue (no
  // intermediate buffer) and returns the number of entries moved.
  size_t StealGroupInto(WorkerId victim, WorkerId thief);

  // Removes and returns the stealable group (empty vector when there is no
  // head-of-line blocking to relieve). Compatibility path for tests and
  // custom policies; the simulation hot path uses StealGroupInto.
  std::vector<QueueEntry> ExtractStealableGroup(WorkerId id);

  // True iff the stealable group is non-empty.
  bool HasStealableGroup(WorkerId id) const {
    return StealableGroupBegin(id) < queues_[id].Size();
  }

  // --- accounting ---------------------------------------------------------
  // Slots currently executing a task, across the whole store. O(shards);
  // single-element in the default (unsharded) layout.
  uint64_t ExecutingTotal() const {
    uint64_t total = 0;
    for (const ShardTotals& t : totals_) {
      total += t.executing;
    }
    return total;
  }

  // Entries queued across the whole store. O(shards); the steal-retry path
  // uses it to tell "work is waiting somewhere" from "everything left is
  // executing". Only meaningful between shard phases in sharded runs.
  uint64_t TotalQueued() const {
    uint64_t total = 0;
    for (const ShardTotals& t : totals_) {
      total += t.queued;
    }
    return total;
  }

  // Total microseconds of task execution accumulated on `id`.
  DurationUs BusyAccumUs(WorkerId id) const { return busy_accum_us_[Check(id)]; }

  DurationUs TotalBusyUs() const {
    DurationUs total = 0;
    for (const DurationUs busy : busy_accum_us_) {
      total += busy;
    }
    return total;
  }

 private:
  // One cache line per shard: shards mutate their own totals concurrently, so
  // neighbouring shards must never share a line (false sharing would only
  // cost performance, but a shared counter would be a data race).
  struct alignas(64) ShardTotals {
    uint64_t executing = 0;
    uint64_t queued = 0;
  };

  size_t Check(WorkerId id) const {
    HAWK_CHECK_LT(id, slots_.size());
    return id;
  }

  uint32_t ShardOf(size_t i) const { return shard_of_.empty() ? 0u : shard_of_[i]; }

  // Index (FIFO position) of the first entry of the stealable group, or the
  // queue size if none. Screens on the composition counters before scanning.
  size_t StealableGroupBegin(WorkerId id) const;

  // Erases queue positions [begin, end) and updates the composition counters.
  void RemoveGroup(WorkerId id, size_t begin, size_t end);

  // Hot arrays (dense, one small integer per worker). Cache-line-aligned
  // bases: concurrent shards of the sharded executor mutate disjoint worker
  // ranges of these arrays, and the driver rounds large-cluster shard
  // boundaries to 32-worker multiples — with aligned bases that puts every
  // boundary on a line boundary in each array, so neighbouring shards never
  // write the same line.
  CacheAlignedVector<uint16_t> free_;
  CacheAlignedVector<uint16_t> executing_;
  CacheAlignedVector<uint16_t> requesting_;
  CacheAlignedVector<uint16_t> occupied_long_;
  CacheAlignedVector<uint32_t> queue_long_;
  CacheAlignedVector<uint32_t> queue_short_;

  // Cold side arrays (queues_ and busy_accum_us_ are phase-written too, so
  // they get the same aligned-base treatment).
  std::vector<uint16_t> slots_;
  CacheAlignedVector<RingBuffer<QueueEntry>> queues_;
  CacheAlignedVector<DurationUs> busy_accum_us_;

  // Slot-index mapping. Uniform layouts need no tables (divide/multiply by
  // the shared slot count); heterogeneous layouts carry prefix + reverse maps.
  bool uniform_ = true;
  uint32_t uniform_slots_ = 1;
  std::vector<SlotId> slot_begin_;       // Size N+1; empty when uniform.
  std::vector<WorkerId> slot_to_worker_; // Size TotalSlots; empty when uniform.

  uint64_t total_slots_ = 0;

  // Occupancy accumulators, one per shard (exactly one until ConfigureShards).
  std::vector<ShardTotals> totals_{1};
  std::vector<uint32_t> shard_of_;  // Empty = everything in shard 0.
};

}  // namespace hawk

#endif  // HAWK_CLUSTER_WORKER_STORE_H_
