#include "src/cluster/worker_store.h"

namespace hawk {

WorkerStore::WorkerStore(uint32_t num_workers, const SlotSpec& spec) {
  HAWK_CHECK_GT(num_workers, 0u);
  HAWK_CHECK_GE(spec.slots_per_worker, 1u);
  HAWK_CHECK_LE(spec.slots_per_worker, kMaxSlotsPerWorker);
  if (!spec.Uniform()) {
    HAWK_CHECK_GE(spec.big_worker_slots, 1u);
    HAWK_CHECK_LE(spec.big_worker_slots, kMaxSlotsPerWorker);
  }

  slots_.resize(num_workers);
  free_.resize(num_workers);
  executing_.assign(num_workers, 0);
  requesting_.assign(num_workers, 0);
  occupied_long_.assign(num_workers, 0);
  queue_long_.assign(num_workers, 0);
  queue_short_.assign(num_workers, 0);
  queues_.resize(num_workers);
  busy_accum_us_.assign(num_workers, 0);

  uniform_ = spec.Uniform() || spec.BigWorkerCount(num_workers) == 0;
  uniform_slots_ = spec.slots_per_worker;
  if (!uniform_) {
    slot_begin_.resize(static_cast<size_t>(num_workers) + 1);
  }
  uint64_t next_slot = 0;
  for (uint32_t w = 0; w < num_workers; ++w) {
    const uint32_t s = uniform_ ? spec.slots_per_worker : spec.SlotsOf(w, num_workers);
    slots_[w] = static_cast<uint16_t>(s);
    free_[w] = static_cast<uint16_t>(s);
    if (!uniform_) {
      slot_begin_[w] = static_cast<SlotId>(next_slot);
    }
    next_slot += s;
  }
  total_slots_ = next_slot;
  // The slot-index space is sampled with 32-bit draws (probe placement,
  // steal victim selection); a layout that overflows it is a config error.
  HAWK_CHECK_LE(total_slots_, static_cast<uint64_t>(kInvalidWorker))
      << "total slot count overflows the 32-bit slot-index space";
  if (!uniform_) {
    slot_begin_[num_workers] = static_cast<SlotId>(total_slots_);
    slot_to_worker_.resize(total_slots_);
    for (uint32_t w = 0; w < num_workers; ++w) {
      for (SlotId s = slot_begin_[w]; s < slot_begin_[w + 1]; ++s) {
        slot_to_worker_[s] = w;
      }
    }
  }
}

size_t WorkerStore::StealableGroupBegin(WorkerId id) const {
  // O(1) screening on the composition counters: the group is made of short
  // entries, and (unless some occupied slot holds long work) needs a long
  // entry ahead of it in the queue.
  const size_t i = Check(id);
  const RingBuffer<QueueEntry>& queue = queues_[i];
  const size_t size = queue.Size();
  if (queue_short_[i] == 0) {
    return size;
  }
  const bool occupied_long = occupied_long_[i] > 0;
  if (!occupied_long && queue_long_[i] == 0) {
    return size;
  }
  // Scan [current work, queue...]; the group starts at the first short entry
  // observed after at least one long entry.
  bool seen_long = occupied_long;
  for (size_t k = 0; k < size; ++k) {
    if (queue.At(k).is_long) {
      seen_long = true;
      continue;
    }
    if (seen_long) {
      return k;
    }
  }
  return size;
}

size_t WorkerStore::StealGroupInto(WorkerId victim, WorkerId thief) {
  // Self-stealing would re-enqueue entries onto the queue being scanned and
  // never terminate; a policy that fails to exclude the thief from its
  // victim sample must fail fast instead.
  HAWK_CHECK_NE(victim, thief) << "worker " << thief << " stealing from itself";
  const size_t begin = StealableGroupBegin(victim);
  const RingBuffer<QueueEntry>& queue = queues_[victim];
  if (begin >= queue.Size()) {
    return 0;
  }
  size_t end = begin;
  while (end < queue.Size() && !queue.At(end).is_long) {
    Enqueue(thief, queue.At(end));
    ++end;
  }
  RemoveGroup(victim, begin, end);
  return end - begin;
}

std::vector<QueueEntry> WorkerStore::ExtractStealableGroup(WorkerId id) {
  std::vector<QueueEntry> stolen;
  const size_t begin = StealableGroupBegin(id);
  const RingBuffer<QueueEntry>& queue = queues_[id];
  if (begin >= queue.Size()) {
    return stolen;
  }
  size_t end = begin;
  while (end < queue.Size() && !queue.At(end).is_long) {
    stolen.push_back(queue.At(end));
    ++end;
  }
  RemoveGroup(id, begin, end);
  return stolen;
}

void WorkerStore::RemoveGroup(WorkerId id, size_t begin, size_t end) {
  const size_t i = Check(id);
  for (size_t k = begin; k < end; ++k) {
    if (queues_[i].At(k).is_long) {
      --queue_long_[i];
    } else {
      --queue_short_[i];
    }
  }
  ShardTotals& totals = totals_[ShardOf(i)];
  HAWK_CHECK_GE(totals.queued, end - begin);
  totals.queued -= end - begin;
  queues_[i].EraseRange(begin, end);
}

void WorkerStore::ConfigureShards(const std::vector<WorkerId>& shard_begin) {
  HAWK_CHECK(!shard_begin.empty());
  HAWK_CHECK_EQ(shard_begin.front(), 0u) << "shard 0 must start at worker 0";
  HAWK_CHECK_EQ(ExecutingTotal(), 0u) << "ConfigureShards on a store already in use";
  HAWK_CHECK_EQ(TotalQueued(), 0u) << "ConfigureShards on a store already in use";
  const uint32_t num_workers = NumWorkers();
  shard_of_.assign(num_workers, 0);
  for (size_t s = 0; s + 1 < shard_begin.size(); ++s) {
    HAWK_CHECK_LT(shard_begin[s], shard_begin[s + 1]) << "shard boundaries must be increasing";
  }
  HAWK_CHECK_LT(shard_begin.back(), num_workers) << "empty trailing shard";
  for (size_t s = 0; s < shard_begin.size(); ++s) {
    const WorkerId end = s + 1 < shard_begin.size() ? shard_begin[s + 1] : num_workers;
    for (WorkerId w = shard_begin[s]; w < end; ++w) {
      shard_of_[w] = static_cast<uint32_t>(s);
    }
  }
  totals_.assign(shard_begin.size(), ShardTotals{});
}

}  // namespace hawk
