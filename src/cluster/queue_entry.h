// Worker queue entries.
//
// A queue entry is either a Sparrow-style probe (late-bound: the concrete
// task is requested from the job's scheduler when the probe reaches the head
// of the queue) or a concrete task (placed directly by the centralized
// scheduler). Entries carry the scheduling classification of their owning job
// so the steal-group scan (paper Fig. 3) can distinguish long from short
// entries without chasing job state.
#ifndef HAWK_CLUSTER_QUEUE_ENTRY_H_
#define HAWK_CLUSTER_QUEUE_ENTRY_H_

#include <cstdint>

#include "src/common/types.h"

namespace hawk {

enum class EntryKind : uint8_t {
  kProbe,  // Late binding: resolves to a task or a cancel at head-of-queue.
  kTask,   // Concrete task with a known duration.
};

struct QueueEntry {
  EntryKind kind = EntryKind::kProbe;
  bool is_long = false;     // Scheduling classification of the owning job.
  // A speculative duplicate of an already-running task (kTask only). The
  // copy is not owned by the JobTracker: losing it is not a lost task, and
  // only the first completion of the pair reaches the tracker. The flag
  // survives queueing and stealing.
  bool speculative = false;
  JobId job = kInvalidJob;
  TaskIndex task_index = 0;   // Valid for kTask.
  DurationUs duration = 0;    // Valid for kTask.
  // When the entry first joined a worker queue; survives stealing so the
  // queueing-delay telemetry reflects total time from placement to launch.
  SimTime enqueue_time = 0;

  static QueueEntry Probe(JobId job, bool is_long) {
    QueueEntry e;
    e.kind = EntryKind::kProbe;
    e.job = job;
    e.is_long = is_long;
    return e;
  }

  static QueueEntry Task(JobId job, TaskIndex task_index, DurationUs duration, bool is_long) {
    QueueEntry e;
    e.kind = EntryKind::kTask;
    e.job = job;
    e.task_index = task_index;
    e.duration = duration;
    e.is_long = is_long;
    return e;
  }
};

}  // namespace hawk

#endif  // HAWK_CLUSTER_QUEUE_ENTRY_H_
