// Node monitor: the per-worker agent of the prototype runtime (paper §3.8).
//
// Holds the worker's FIFO queue of probes and tasks and executes up to
// `slots` tasks concurrently (multi-slot workers, mirroring the simulator's
// WorkerStore: the slots share one FIFO queue). Tasks are sleeps, as in the
// paper's prototype; rather than burning one thread per slot, a single
// executor thread tracks the running tasks' wall-clock completion deadlines
// in a min-heap and completes them as they fall due. The monitor performs
// Sparrow-style late binding over RPC — each free slot can park on its own
// outstanding task request — and implements both sides of randomized work
// stealing: as a thief when it runs out of queued work (victim selection via
// the shared StealingPolicy over the run's layout cluster), and as a victim
// serving steal requests against its queue (Fig. 3 group rule).
#ifndef HAWK_RUNTIME_NODE_MONITOR_H_
#define HAWK_RUNTIME_NODE_MONITOR_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/random.h"
#include "src/common/types.h"
#include "src/core/stealing_policy.h"
#include "src/rpc/message_bus.h"
#include "src/runtime/proto_messages.h"

namespace hawk {
namespace runtime {

class FailureDetector;

struct NodeMonitorConfig {
  // The run's immutable cluster layout: worker slot counts, the general
  // partition boundary, and the slot-index space stealing samples from.
  // Shared read-only by every monitor; must outlive them.
  const Cluster* layout = nullptr;
  uint32_t steal_cap = 10;  // 0 disables stealing.
  bool stealing_enabled = true;
  StealingPolicy::VictimSelection victim_selection = StealingPolicy::VictimSelection::kRandom;
  // Fault tolerance: when nonzero, a thief whose steal request has gone
  // unanswered this long gives the victim up for dead and resumes its round
  // — without it, one crashed victim permanently wedges the thief's
  // stealing. Zero (the default) keeps the fault-free protocol untouched.
  std::chrono::microseconds steal_response_timeout{0};
  // Straggler injection: each task start is stricken with probability
  // `straggler_rate` and really runs `straggler_slowdown_factor` x its
  // nominal duration on the slot (a genuinely slow executor, not a modeled
  // one). The stretch is charged as wasted work, like the simulator's.
  double straggler_rate = 0.0;
  double straggler_slowdown_factor = 8.0;
  // When set, steal rounds skip victims the detector currently suspects;
  // null keeps victim selection detector-blind.
  const FailureDetector* detector = nullptr;
};

class NodeMonitor {
 public:
  NodeMonitor(rpc::Address address, const NodeMonitorConfig& config, rpc::MessageBus* bus,
              uint64_t seed);
  ~NodeMonitor();

  NodeMonitor(const NodeMonitor&) = delete;
  NodeMonitor& operator=(const NodeMonitor&) = delete;

  // Registers the bus handler. Call before any traffic.
  void Start();
  // Stops the executor thread; pending queue entries are dropped.
  void Stop();

  // Fail-stop crash: the monitor drops its queue, outstanding requests, and
  // running tasks (their elapsed time is accounted as wasted work) and stops
  // reacting to every message until Rejoin — from the outside it is simply
  // silent, exactly like a dead node. The schedulers' timeout-based reaping
  // is what recovers the work that died here.
  void Crash();
  // Brings a crashed monitor back, empty, with all slots free.
  void Rejoin();

  // Emits one heartbeat to the failure detector's address. Driven by the
  // harness's heartbeat thread; a crashed monitor stays silent, which is
  // exactly the signal the detector's suspicion machinery keys on.
  void SendHeartbeat();

  // Slots currently executing a task (utilization sampling).
  uint32_t ExecutingSlots() const { return executing_slots_.load(std::memory_order_relaxed); }

  // Counters (racy reads are fine; read after Drain for exact values).
  uint64_t tasks_executed() const { return tasks_executed_.load(std::memory_order_relaxed); }
  uint64_t steals_attempted() const { return steals_attempted_.load(std::memory_order_relaxed); }
  uint64_t entries_stolen() const { return entries_stolen_.load(std::memory_order_relaxed); }
  DurationUs busy_us() const { return busy_us_.load(std::memory_order_relaxed); }
  DurationUs wasted_work_us() const { return wasted_work_us_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    bool is_probe = true;
    ProbeMsg probe;  // Valid for probes.
    TaskMsg task;    // Valid for tasks.
  };

  // A task occupying a slot until its wall-clock deadline. `actual_us` is
  // the real slot occupancy — the nominal duration, or its straggler
  // stretch when the start was stricken.
  struct RunningTask {
    std::chrono::steady_clock::time_point deadline;
    int64_t actual_us = 0;
    TaskMsg task;
  };
  struct DeadlineLater {
    bool operator()(const RunningTask& a, const RunningTask& b) const {
      return a.deadline > b.deadline;
    }
  };

  void HandleMessage(const rpc::BusMessage& message);
  void ExecutorLoop();

  // Fills free slots from the queue, then considers stealing. Caller holds mu_.
  void Advance();
  // Occupies a free slot with `task`. Centrally placed tasks report their
  // start to the owning scheduler (§3.7 feedback). Caller holds mu_.
  void StartTaskLocked(const TaskMsg& task, bool centrally_placed);
  // Releases the slot a resolved (granted or cancelled) request was parked
  // on. Caller holds mu_.
  void ResolveRequestLocked(JobId job);
  // Starts or continues a steal round. Caller holds mu_.
  void TryStealLocked();
  // Victim side: extract the first consecutive group of short probes after a
  // long entry (Fig. 3). Caller holds mu_.
  std::vector<ProbeMsg> ExtractStealableLocked();

  const rpc::Address address_;
  const NodeMonitorConfig config_;
  rpc::MessageBus* bus_;
  // Shared steal-victim selection (same sampling and ordering as the
  // simulation policies); seeded per monitor.
  StealingPolicy stealing_;
  // Straggler draws; a dedicated stream so enabling stragglers cannot
  // perturb steal-victim sampling. Never drawn from at rate zero.
  Rng straggler_rng_;

  std::mutex mu_;
  std::condition_variable exec_cv_;
  std::deque<Entry> queue_;
  // The monitor's capacity (layout slot count); free_slots_ starts here and
  // snaps back on crash.
  const uint32_t capacity_;
  uint32_t free_slots_;
  uint32_t requesting_ = 0;
  // Occupied slots (requesting or executing) holding long work — the steal
  // screening input, mirroring WorkerStore::AnyOccupiedLong.
  uint32_t occupied_long_ = 0;
  // Outstanding late-binding requests per job: count and the probes' class
  // (one class per job), so grants/cancels release the right accounting.
  std::unordered_map<JobId, std::pair<uint32_t, bool>> outstanding_;
  std::priority_queue<RunningTask, std::vector<RunningTask>, DeadlineLater> running_;
  bool steal_in_flight_ = false;
  bool steal_round_exhausted_ = false;   // Round failed; wait for new work.
  std::vector<WorkerId> steal_victims_;  // This round's contact list.
  size_t next_victim_ = 0;               // Cursor into steal_victims_.
  // When steal_in_flight_: give the victim up for dead past this point
  // (only armed when the config sets a steal response timeout).
  std::chrono::steady_clock::time_point steal_deadline_;
  bool crashed_ = false;
  bool stopping_ = false;

  std::atomic<uint32_t> executing_slots_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> steals_attempted_{0};
  std::atomic<uint64_t> entries_stolen_{0};
  std::atomic<int64_t> busy_us_{0};
  std::atomic<int64_t> wasted_work_us_{0};

  std::thread executor_;
};

}  // namespace runtime
}  // namespace hawk

#endif  // HAWK_RUNTIME_NODE_MONITOR_H_
