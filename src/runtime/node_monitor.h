// Node monitor: the per-worker agent of the prototype runtime (paper §3.8).
//
// Holds the worker's FIFO queue of probes and tasks, executes one task at a
// time on a dedicated executor thread (tasks are sleeps, as in the paper's
// prototype), performs Sparrow-style late binding over RPC, and implements
// both sides of randomized work stealing: as a thief when it runs out of
// work, and as a victim serving steal requests against its queue.
#ifndef HAWK_RUNTIME_NODE_MONITOR_H_
#define HAWK_RUNTIME_NODE_MONITOR_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/rpc/message_bus.h"
#include "src/runtime/proto_messages.h"

namespace hawk {
namespace runtime {

struct NodeMonitorConfig {
  uint32_t num_nodes = 100;
  uint32_t general_count = 83;  // Nodes [0, general_count) form the general partition.
  uint32_t steal_cap = 10;      // 0 disables stealing.
  bool stealing_enabled = true;
};

class NodeMonitor {
 public:
  NodeMonitor(rpc::Address address, const NodeMonitorConfig& config, rpc::MessageBus* bus,
              uint64_t seed);
  ~NodeMonitor();

  NodeMonitor(const NodeMonitor&) = delete;
  NodeMonitor& operator=(const NodeMonitor&) = delete;

  // Registers the bus handler. Call before any traffic.
  void Start();
  // Stops the executor thread; pending queue entries are dropped.
  void Stop();

  bool ExecutingNow() const { return executing_.load(std::memory_order_relaxed); }

  // Counters (racy reads are fine; read after Drain for exact values).
  uint64_t tasks_executed() const { return tasks_executed_.load(std::memory_order_relaxed); }
  uint64_t steals_attempted() const { return steals_attempted_.load(std::memory_order_relaxed); }
  uint64_t entries_stolen() const { return entries_stolen_.load(std::memory_order_relaxed); }
  DurationUs busy_us() const { return busy_us_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    bool is_probe = true;
    ProbeMsg probe;  // Valid for probes.
    TaskMsg task;    // Valid for tasks.
  };

  enum class State : uint8_t { kIdle, kRequesting, kExecuting };

  void HandleMessage(const rpc::BusMessage& message);
  void ExecutorLoop();

  // Advances the queue state machine. Caller holds mu_.
  void Advance(std::unique_lock<std::mutex>& lock);
  // Starts or continues a steal round. Caller holds mu_.
  void TryStealLocked();
  // Victim side: extract the first consecutive short group after a long
  // entry (probes are short; placed tasks are long). Caller holds mu_.
  std::vector<ProbeMsg> ExtractStealableLocked();

  const rpc::Address address_;
  const NodeMonitorConfig config_;
  rpc::MessageBus* bus_;
  Rng rng_;

  std::mutex mu_;
  std::condition_variable exec_cv_;
  std::deque<Entry> queue_;
  State state_ = State::kIdle;
  bool current_is_long_ = false;
  bool steal_in_flight_ = false;
  bool steal_round_exhausted_ = false;  // Round failed; wait for new work.
  std::vector<rpc::Address> steal_victims_;  // Remaining victims this round.
  bool has_exec_task_ = false;
  TaskMsg exec_task_;
  bool stopping_ = false;

  std::atomic<bool> executing_{false};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> steals_attempted_{0};
  std::atomic<uint64_t> entries_stolen_{0};
  std::atomic<int64_t> busy_us_{0};

  std::thread executor_;
};

}  // namespace runtime
}  // namespace hawk

#endif  // HAWK_RUNTIME_NODE_MONITOR_H_
