// Prototype schedulers (paper §3.8, §4.10): distributed frontends handling
// short jobs via batch probing and one centralized backend placing long jobs
// with the waiting-time queue. The prototype uses "1 centralized and 10
// distributed schedulers" for its 100-node runs.
#ifndef HAWK_RUNTIME_SCHEDULERS_H_
#define HAWK_RUNTIME_SCHEDULERS_H_

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/core/waiting_time_queue.h"
#include "src/rpc/message_bus.h"
#include "src/runtime/proto_messages.h"

namespace hawk {
namespace runtime {

// Collects wall-clock job completions from all schedulers.
class CompletionSink {
 public:
  struct Completion {
    JobId job = 0;
    bool is_long = false;
    std::chrono::steady_clock::time_point finished_at;
  };

  void ExpectJobs(size_t count);
  void Record(JobId job, bool is_long);
  // Blocks until all expected jobs completed or the deadline passes; returns
  // true on completion.
  bool AwaitAll(std::chrono::milliseconds timeout);
  std::vector<Completion> TakeAll();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t expected_ = 0;
  std::vector<Completion> completions_;
};

// A distributed scheduler frontend: owns the jobs submitted to it, places
// `probe_ratio * t` probes over the whole cluster (or a sub-range, for the
// split-cluster setup), and late-binds tasks on request.
class DistributedFrontend {
 public:
  DistributedFrontend(rpc::Address address, uint32_t probe_first, uint32_t probe_count,
                      uint32_t probe_ratio, rpc::MessageBus* bus, CompletionSink* sink,
                      uint64_t seed);

  void Start();

  uint64_t jobs_handled() const { return jobs_handled_; }
  uint64_t cancels_sent() const { return cancels_sent_; }

 private:
  struct JobState {
    std::vector<int64_t> durations_us;
    uint32_t next_unassigned = 0;
    uint32_t finished = 0;
    bool is_long = false;
  };

  void HandleMessage(const rpc::BusMessage& message);

  const rpc::Address address_;
  const uint32_t probe_first_;
  const uint32_t probe_count_;
  const uint32_t probe_ratio_;
  rpc::MessageBus* bus_;
  CompletionSink* sink_;

  std::mutex mu_;
  Rng rng_;
  std::unordered_map<JobId, JobState> jobs_;
  uint64_t jobs_handled_ = 0;
  uint64_t cancels_sent_ = 0;
};

// The centralized backend: places every task of a long job on the general-
// partition node with the minimum estimated waiting time; task start/finish
// reports from the node monitors keep the estimates synchronized (§3.7).
class CentralBackend {
 public:
  CentralBackend(rpc::Address address, uint32_t general_count, rpc::MessageBus* bus,
                 CompletionSink* sink);

  void Start();

  uint64_t jobs_handled() const { return jobs_handled_; }

 private:
  struct JobState {
    uint32_t unfinished = 0;
    int64_t estimate_us = 0;
  };

  void HandleMessage(const rpc::BusMessage& message);

  const rpc::Address address_;
  rpc::MessageBus* bus_;
  CompletionSink* sink_;

  std::mutex mu_;
  WaitingTimeQueue waiting_;
  std::unordered_map<JobId, JobState> jobs_;
  std::chrono::steady_clock::time_point epoch_;
  uint64_t jobs_handled_ = 0;

  SimTime NowUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }
};

}  // namespace runtime
}  // namespace hawk

#endif  // HAWK_RUNTIME_SCHEDULERS_H_
