// Prototype schedulers (paper §3.8, §4.10): distributed frontends handling
// probed jobs and one centralized backend placing jobs with the §3.7
// waiting-time queue. The prototype uses "1 centralized and 10 distributed
// schedulers" for its 100-node runs.
//
// Which jobs go where, which slot span probes cover, and whether the backend
// exists at all is decided by the registered policy's RuntimeShape
// (src/scheduler/policy.h) — the frontends and backend are policy-agnostic
// executors of the shared src/core/ components: ChooseProbeTargetsInto for
// probe placement over the layout cluster's slot space and
// SlotWaitingTimeQueue for multi-slot centralized placement.
#ifndef HAWK_RUNTIME_SCHEDULERS_H_
#define HAWK_RUNTIME_SCHEDULERS_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/core/slot_waiting_queue.h"
#include "src/rpc/message_bus.h"
#include "src/runtime/proto_messages.h"
#include "src/scheduler/policy.h"

namespace hawk {
namespace runtime {

// Collects wall-clock job completions from all schedulers.
class CompletionSink {
 public:
  struct Completion {
    JobId job = 0;
    bool is_long = false;
    std::chrono::steady_clock::time_point finished_at;
  };

  // Declares the job ids the run will complete; tracking ids (not just a
  // count) lets a timeout name the jobs still outstanding.
  void ExpectJobs(const std::vector<JobId>& ids);
  void Record(JobId job, bool is_long);
  // Blocks until all expected jobs completed or the deadline passes. On
  // timeout the error lists the outstanding job ids (up to a cap) so a slow
  // or stuck run is diagnosable from the log alone.
  Status AwaitAll(std::chrono::milliseconds timeout);
  std::vector<Completion> TakeAll();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_set<JobId> outstanding_;
  std::vector<Completion> completions_;
};

// A distributed scheduler frontend: owns the jobs submitted to it, places
// `probe_ratio * t` probes over the slot span the policy's RuntimeShape
// declares for the job's class, and late-binds tasks on request.
class DistributedFrontend {
 public:
  // `layout` is the run's immutable cluster layout (slot spans, capacity
  // weighting); it must outlive the frontend and is shared read-only across
  // all runtime components.
  DistributedFrontend(rpc::Address address, const Cluster* layout, const RuntimeShape& shape,
                      uint32_t probe_ratio, rpc::MessageBus* bus, CompletionSink* sink,
                      uint64_t seed);

  void Start();

  uint64_t jobs_handled() const { return jobs_handled_; }
  uint64_t cancels_sent() const { return cancels_sent_; }

 private:
  struct JobState {
    std::vector<int64_t> durations_us;
    uint32_t next_unassigned = 0;
    uint32_t finished = 0;
    bool is_long = false;
  };

  void HandleMessage(const rpc::BusMessage& message);

  const rpc::Address address_;
  const Cluster* layout_;
  const RuntimeShape shape_;
  const uint32_t probe_ratio_;
  rpc::MessageBus* bus_;
  CompletionSink* sink_;

  std::mutex mu_;
  Rng rng_;
  std::unordered_map<JobId, JobState> jobs_;
  // Probe-placement scratch (slot ids), reused across submissions.
  std::vector<SlotId> targets_;
  std::vector<uint32_t> picks_;
  uint64_t jobs_handled_ = 0;
  uint64_t cancels_sent_ = 0;
};

// The centralized backend: places every task of a submitted job on the
// minimum-waiting slot lane of the tracked partition (§3.7), via the same
// SlotWaitingTimeQueue the simulator's policies use; task start/finish
// reports from the node monitors keep the estimates synchronized.
class CentralBackend {
 public:
  // Tracks the general partition of `layout` — the whole cluster when the
  // policy registered no partition sizing.
  CentralBackend(rpc::Address address, const Cluster* layout, rpc::MessageBus* bus,
                 CompletionSink* sink);

  void Start();

  uint64_t jobs_handled() const { return jobs_handled_; }

 private:
  struct JobState {
    uint32_t unfinished = 0;
    bool is_long = true;
  };

  void HandleMessage(const rpc::BusMessage& message);

  const rpc::Address address_;
  rpc::MessageBus* bus_;
  CompletionSink* sink_;

  std::mutex mu_;
  SlotWaitingTimeQueue waiting_;
  std::unordered_map<JobId, JobState> jobs_;
  // Per-lane reorder absorption for the multi-threaded bus, where a short
  // task's kTaskDone handler can run before its own kTaskStarted handler
  // (and before the job record would be consulted):
  //   - lane_charges_: estimates charged at assignment, discharged by
  //     starts in per-lane FIFO order. Charges always precede placements,
  //     so a lane's deque is never empty when its start arrives, whatever
  //     the delivery order; if two same-lane tasks' starts swap, their
  //     estimates swap with them — per-lane totals stay exact.
  //   - lane_running_ / lane_deferred_finishes_: starts-minus-finishes
  //     applied to the waiting queue, and finishes that arrived before any
  //     matching start. An early finish is parked and replayed right after
  //     the start lands, so a lane can never end up marked executing with
  //     no finish coming.
  std::vector<std::deque<int64_t>> lane_charges_;
  std::vector<uint32_t> lane_running_;
  std::vector<uint32_t> lane_deferred_finishes_;
  std::chrono::steady_clock::time_point epoch_;
  uint64_t jobs_handled_ = 0;

  SimTime NowUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }
};

}  // namespace runtime
}  // namespace hawk

#endif  // HAWK_RUNTIME_SCHEDULERS_H_
