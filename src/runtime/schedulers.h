// Prototype schedulers (paper §3.8, §4.10): distributed frontends handling
// probed jobs and one centralized backend placing jobs with the §3.7
// waiting-time queue. The prototype uses "1 centralized and 10 distributed
// schedulers" for its 100-node runs.
//
// Which jobs go where, which slot span probes cover, and whether the backend
// exists at all is decided by the registered policy's RuntimeShape
// (src/scheduler/policy.h) — the frontends and backend are policy-agnostic
// executors of the shared src/core/ components: ChooseProbeTargetsInto for
// probe placement over the layout cluster's slot space and
// SlotWaitingTimeQueue for multi-slot centralized placement.
#ifndef HAWK_RUNTIME_SCHEDULERS_H_
#define HAWK_RUNTIME_SCHEDULERS_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/core/adaptive_timeout.h"
#include "src/core/slot_waiting_queue.h"
#include "src/rpc/message_bus.h"
#include "src/runtime/failure_detector.h"
#include "src/runtime/proto_messages.h"
#include "src/scheduler/policy.h"

namespace hawk {
namespace runtime {

// Collects wall-clock job completions from all schedulers.
class CompletionSink {
 public:
  struct Completion {
    JobId job = 0;
    bool is_long = false;
    std::chrono::steady_clock::time_point finished_at;
  };

  // Declares the job ids the run will complete; tracking ids (not just a
  // count) lets a timeout name the jobs still outstanding.
  void ExpectJobs(const std::vector<JobId>& ids);
  // Records a completion. A job already recorded (possible when fault
  // recovery re-dispatches a task whose original copy was merely slow) is
  // counted as a duplicate and dropped rather than double-counted; a job id
  // that was never expected aborts — that is a wiring bug, not a fault.
  void Record(JobId job, bool is_long);
  // Per-job progress annotation for timeout diagnostics: given a job id,
  // returns a short suffix like " (3/10 tasks done)" — or "" when the
  // caller cannot locate the job. Supplied by the harness, which can ask
  // the schedulers that own the jobs; the sink itself only sees whole-job
  // completions.
  using ProgressFn = std::function<std::string(JobId)>;

  // Blocks until all expected jobs completed or the deadline passes. On
  // timeout the error lists the outstanding job ids (up to a cap, sorted so
  // runs are comparable), each annotated with its done/total task counts
  // when `progress` is supplied — so a slow or stuck run is diagnosable
  // from the log alone, down to the task that never came back.
  Status AwaitAll(std::chrono::milliseconds timeout, const ProgressFn& progress = nullptr);
  std::vector<Completion> TakeAll();

  uint64_t duplicates() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_set<JobId> expected_;  // Every id ever passed to ExpectJobs.
  std::unordered_set<JobId> outstanding_;
  std::vector<Completion> completions_;
  uint64_t duplicates_ = 0;
};

// Wall-clock fault-recovery knobs shared by the scheduler executors. A
// zero-initialized policy (enabled = false, speculation off) makes every
// fault path inert: no deadlines are armed and ReapOverdue is a no-op.
struct FaultRecoveryPolicy {
  bool enabled = false;
  // Seed and cap basis for the adaptive detection timeout: each executor
  // tracks the observed grant->completion overshoot with a Jacobson
  // estimator (src/core/adaptive_timeout.h) seeded from this value, so the
  // effective detection window shrinks toward real overheads on a healthy
  // cluster and backs off exponentially per re-dispatch of the same task.
  // Also the (fixed) probe-loss watchdog window.
  std::chrono::microseconds detection_timeout{750'000};
  // Re-dispatches of one task beyond this budget are counted as
  // retries_suppressed (and the task as abandoned, once) instead of
  // tasks_re_dispatched. Unlike the simulator — where an abandoned delivery
  // is genuinely dropped and recovered through the loss path — the
  // prototype keeps retrying at the maximum backoff interval: a wall-clock
  // run must terminate, and the counters still expose the budget overrun.
  uint32_t retry_budget = 16;
  // Speculative re-execution: a granted task whose copy has been running
  // longer than threshold x its nominal duration gets one duplicate grant;
  // first completion wins, the loser is deduplicated. <= 0 disables.
  double speculation_threshold = 0.0;

  bool SpeculationOn() const { return speculation_threshold > 0.0; }
  // Whether ReapOverdue has anything to do at all.
  bool Armed() const { return enabled || SpeculationOn(); }
};

// A distributed scheduler frontend: owns the jobs submitted to it, places
// `probe_ratio * t` probes over the slot span the policy's RuntimeShape
// declares for the job's class, and late-binds tasks on request.
class DistributedFrontend {
 public:
  // `layout` is the run's immutable cluster layout (slot spans, capacity
  // weighting); it must outlive the frontend and is shared read-only across
  // all runtime components.
  // `detector` (optional) steers probe placement away from currently
  // suspected nodes; null keeps placement detector-blind.
  DistributedFrontend(rpc::Address address, const Cluster* layout, const RuntimeShape& shape,
                      uint32_t probe_ratio, const FaultRecoveryPolicy& faults,
                      rpc::MessageBus* bus, CompletionSink* sink, uint64_t seed,
                      const FailureDetector* detector = nullptr);

  void Start();

  // Fault recovery (no-op unless the policy enables it): returns overdue
  // granted tasks to the assignable pool and re-probes for them — with
  // per-task exponential backoff on the adaptive detection window and the
  // retry budget's accounting — and re-probes jobs whose unassigned tasks
  // have made no progress (their probes died with a crashed node or were
  // dropped by the bus). When speculation is on, also issues one duplicate
  // grant path for any copy running past threshold x its duration. Driven
  // by the harness's reaper thread.
  void ReapOverdue();

  // Task-level progress of a job this frontend owns, for AwaitAll timeout
  // diagnostics. False if the job is unknown here (finished, or owned by
  // another scheduler).
  bool JobProgress(JobId job, uint32_t* done, uint32_t* total) const;

  uint64_t jobs_handled() const { return jobs_handled_; }
  uint64_t cancels_sent() const { return cancels_sent_; }
  uint64_t tasks_re_dispatched() const;
  uint64_t probes_re_sent() const;
  uint64_t duplicate_completions() const;
  uint64_t tasks_speculated() const;
  uint64_t speculative_wasted_us() const;
  uint64_t retries_suppressed() const;
  uint64_t tasks_abandoned() const;

 private:
  // Per-task lifecycle; kGranted tasks carry a presumed-dead deadline.
  enum class TaskPhase : uint8_t { kUnassigned, kGranted, kDone };
  struct TaskState {
    TaskPhase phase = TaskPhase::kUnassigned;
    std::chrono::steady_clock::time_point deadline;
    // When the current copy was granted — the base of the speculation check
    // and of the completion-overshoot sample fed to the adaptive estimator.
    std::chrono::steady_clock::time_point granted_at;
    uint32_t attempts = 0;   // Re-dispatches so far (backoff exponent).
    bool speculated = false;  // One duplicate per logical task, ever.
  };
  struct JobState {
    std::vector<int64_t> durations_us;
    std::vector<TaskState> tasks;
    uint32_t next_unassigned = 0;
    // Task indices returned by fault recovery, re-granted before the cursor
    // advances (the runtime twin of JobTracker's returned list).
    std::vector<uint32_t> returned;
    uint32_t finished = 0;
    bool is_long = false;
    // Probe-loss watchdog: pushed forward by any grant/completion progress
    // and by (re-)probing; expiring with unassigned tasks means every
    // outstanding probe is sitting on a dead node or was dropped.
    std::chrono::steady_clock::time_point probe_deadline;
  };

  void HandleMessage(const rpc::BusMessage& message);
  // Sends `count` fresh probes for `job` over the class's slot span,
  // steering individual draws away from detector-suspected nodes. Caller
  // holds mu_.
  void SendProbesLocked(JobId job, JobState& state, uint32_t count);

  const rpc::Address address_;
  const Cluster* layout_;
  const RuntimeShape shape_;
  const uint32_t probe_ratio_;
  const FaultRecoveryPolicy faults_;
  rpc::MessageBus* bus_;
  CompletionSink* sink_;
  const FailureDetector* detector_;

  mutable std::mutex mu_;
  Rng rng_;
  // Adaptive detection window (guarded by mu_): grant->completion overshoot
  // of unretried, unspeculated copies, Jacobson-smoothed.
  AdaptiveTimeout rto_;
  std::unordered_map<JobId, JobState> jobs_;
  // Probe-placement scratch (slot ids), reused across submissions.
  std::vector<SlotId> targets_;
  std::vector<uint32_t> picks_;
  uint64_t jobs_handled_ = 0;
  uint64_t cancels_sent_ = 0;
  uint64_t tasks_re_dispatched_ = 0;
  uint64_t probes_re_sent_ = 0;
  uint64_t duplicate_completions_ = 0;
  uint64_t tasks_speculated_ = 0;
  uint64_t speculative_wasted_us_ = 0;
  uint64_t retries_suppressed_ = 0;
  uint64_t tasks_abandoned_ = 0;
};

// The centralized backend: places every task of a submitted job on the
// minimum-waiting slot lane of the tracked partition (§3.7), via the same
// SlotWaitingTimeQueue the simulator's policies use; task start/finish
// reports from the node monitors keep the estimates synchronized.
class CentralBackend {
 public:
  // Tracks the general partition of `layout` — the whole cluster when the
  // policy registered no partition sizing.
  CentralBackend(rpc::Address address, const Cluster* layout, const FaultRecoveryPolicy& faults,
                 rpc::MessageBus* bus, CompletionSink* sink);

  void Start();

  // Fault recovery (no-op unless the policy enables it): re-places overdue
  // unfinished tasks through the waiting-time queue, with per-task backoff
  // on the adaptive detection window and retry-budget accounting. A
  // re-placed task whose original copy was merely slow can complete twice;
  // the second completion is counted and dropped. Driven by the harness's
  // reaper thread.
  void ReapOverdue();

  // Task-level progress of a job this backend owns, for AwaitAll timeout
  // diagnostics. False if the job is unknown here.
  bool JobProgress(JobId job, uint32_t* done, uint32_t* total) const;

  uint64_t jobs_handled() const { return jobs_handled_; }
  uint64_t tasks_re_dispatched() const;
  uint64_t duplicate_completions() const;
  uint64_t retries_suppressed() const;
  uint64_t tasks_abandoned() const;

 private:
  struct TaskState {
    bool done = false;
    std::chrono::steady_clock::time_point deadline;
    std::chrono::steady_clock::time_point placed_at;
    uint32_t attempts = 0;  // Re-placements so far (backoff exponent).
  };
  struct JobState {
    uint32_t unfinished = 0;
    bool is_long = true;
    // Kept for fault recovery: re-placement needs the duration and the
    // original estimate to charge the new lane.
    std::vector<int64_t> durations_us;
    int64_t estimate_us = 0;
    std::vector<TaskState> tasks;
  };

  void HandleMessage(const rpc::BusMessage& message);
  // Places one task through the waiting-time queue. Caller holds mu_.
  void PlaceTaskLocked(JobId job, JobState& state, uint32_t task_index);

  const rpc::Address address_;
  const FaultRecoveryPolicy faults_;
  rpc::MessageBus* bus_;
  CompletionSink* sink_;

  mutable std::mutex mu_;
  SlotWaitingTimeQueue waiting_;
  // Adaptive detection window (guarded by mu_): placement->completion
  // overshoot of unretried placements, Jacobson-smoothed. Unlike the
  // frontend's, this one absorbs queue wait — centrally placed tasks park
  // behind their lane's backlog, and that wait is genuine, not failure.
  AdaptiveTimeout rto_;
  std::unordered_map<JobId, JobState> jobs_;
  // Per-lane reorder absorption for the multi-threaded bus, where a short
  // task's kTaskDone handler can run before its own kTaskStarted handler
  // (and before the job record would be consulted):
  //   - lane_charges_: estimates charged at assignment, discharged by
  //     starts in per-lane FIFO order. Charges always precede placements,
  //     so a lane's deque is never empty when its start arrives, whatever
  //     the delivery order; if two same-lane tasks' starts swap, their
  //     estimates swap with them — per-lane totals stay exact.
  //   - lane_running_ / lane_deferred_finishes_: starts-minus-finishes
  //     applied to the waiting queue, and finishes that arrived before any
  //     matching start. An early finish is parked and replayed right after
  //     the start lands, so a lane can never end up marked executing with
  //     no finish coming.
  std::vector<std::deque<int64_t>> lane_charges_;
  std::vector<uint32_t> lane_running_;
  std::vector<uint32_t> lane_deferred_finishes_;
  std::chrono::steady_clock::time_point epoch_;
  uint64_t jobs_handled_ = 0;
  uint64_t tasks_re_dispatched_ = 0;
  uint64_t duplicate_completions_ = 0;
  uint64_t retries_suppressed_ = 0;
  uint64_t tasks_abandoned_ = 0;

  SimTime NowUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }
};

}  // namespace runtime
}  // namespace hawk

#endif  // HAWK_RUNTIME_SCHEDULERS_H_
