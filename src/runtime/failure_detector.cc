#include "src/runtime/failure_detector.h"

#include "src/common/check.h"
#include "src/runtime/proto_messages.h"

namespace hawk {
namespace runtime {

using Clock = std::chrono::steady_clock;

FailureDetector::FailureDetector(uint32_t num_nodes,
                                 std::chrono::microseconds expected_interval) {
  const auto interval_us = static_cast<double>(expected_interval.count());
  // Floor at kMinIntervalsMissed heartbeats: with a healthy node the
  // estimator converges to srtt ~ interval and a small deviation, so without
  // the floor one jittered delivery would trip suspicion every period.
  const AdaptiveTimeout seed(interval_us,
                             kMinIntervalsMissed * std::max<DurationUs>(
                                                       expected_interval.count(), 1),
                             64 * std::max<DurationUs>(expected_interval.count(), 1));
  nodes_.assign(num_nodes, NodeState(seed));
}

void FailureDetector::Start(rpc::MessageBus* bus) {
  HAWK_CHECK(bus != nullptr);
  bus->Register(kDetectorAddress, [this](const rpc::BusMessage& message) {
    HAWK_CHECK_EQ(message.type, static_cast<uint32_t>(kHeartbeat))
        << "failure detector got unexpected message type " << message.type;
    OnHeartbeat(HeartbeatMsg::Decode(message.payload).node);
  });
}

void FailureDetector::OnHeartbeat(rpc::Address node) {
  std::lock_guard<std::mutex> lock(mu_);
  HAWK_CHECK_LT(node, nodes_.size()) << "heartbeat from unknown node " << node;
  NodeState& state = nodes_[node];
  const Clock::time_point now = Clock::now();
  if (state.seen) {
    state.interval.AddSample(static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - state.last).count()));
  }
  state.seen = true;
  state.last = now;
  state.suspected = false;  // Any heartbeat rehabilitates — rejoin complete.
}

bool FailureDetector::Suspected(rpc::Address node) const {
  std::lock_guard<std::mutex> lock(mu_);
  HAWK_CHECK_LT(node, nodes_.size()) << "suspicion query for unknown node " << node;
  NodeState& state = nodes_[node];
  if (!state.seen) {
    return false;  // Bootstrap grace.
  }
  const int64_t silent_us = std::chrono::duration_cast<std::chrono::microseconds>(
                                Clock::now() - state.last)
                                .count();
  const bool suspected = silent_us > state.interval.TimeoutUs();
  if (suspected && !state.suspected) {
    suspicions_.fetch_add(1, std::memory_order_relaxed);
  }
  state.suspected = suspected;
  return suspected;
}

}  // namespace runtime
}  // namespace hawk
