#include "src/runtime/node_monitor.h"

#include <algorithm>
#include <chrono>

#include "src/common/check.h"

namespace hawk {
namespace runtime {

NodeMonitor::NodeMonitor(rpc::Address address, const NodeMonitorConfig& config,
                         rpc::MessageBus* bus, uint64_t seed)
    : address_(address), config_(config), bus_(bus), rng_(seed) {
  HAWK_CHECK(bus != nullptr);
  HAWK_CHECK_LT(address, config.num_nodes);
}

NodeMonitor::~NodeMonitor() { Stop(); }

void NodeMonitor::Start() {
  bus_->Register(address_, [this](const rpc::BusMessage& m) { HandleMessage(m); });
  executor_ = std::thread([this] { ExecutorLoop(); });
}

void NodeMonitor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
  }
  exec_cv_.notify_all();
  if (executor_.joinable()) {
    executor_.join();
  }
}

void NodeMonitor::HandleMessage(const rpc::BusMessage& message) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) {
    return;
  }
  switch (message.type) {
    case kProbe: {
      Entry entry;
      entry.is_probe = true;
      entry.probe = ProbeMsg::Decode(message.payload);
      queue_.push_back(entry);
      steal_round_exhausted_ = false;  // New work: future idleness may steal again.
      Advance(lock);
      break;
    }
    case kTaskPlace: {
      Entry entry;
      entry.is_probe = false;
      entry.task = TaskMsg::Decode(message.payload);
      queue_.push_back(entry);
      steal_round_exhausted_ = false;
      Advance(lock);
      break;
    }
    case kTaskGrant: {
      HAWK_CHECK(state_ == State::kRequesting);
      exec_task_ = TaskMsg::Decode(message.payload);
      state_ = State::kExecuting;
      current_is_long_ = exec_task_.is_long;
      has_exec_task_ = true;
      exec_cv_.notify_all();
      break;
    }
    case kTaskCancel: {
      HAWK_CHECK(state_ == State::kRequesting);
      state_ = State::kIdle;
      Advance(lock);
      break;
    }
    case kStealRequest: {
      const StealRequestMsg request = StealRequestMsg::Decode(message.payload);
      StealResponseMsg response;
      response.probes = ExtractStealableLocked();
      bus_->Send(address_, request.thief, kStealResponse, response.Encode());
      break;
    }
    case kStealResponse: {
      const StealResponseMsg response = StealResponseMsg::Decode(message.payload);
      steal_in_flight_ = false;
      if (!response.probes.empty()) {
        entries_stolen_.fetch_add(response.probes.size(), std::memory_order_relaxed);
        steal_victims_.clear();  // Round succeeded; stop contacting victims.
        steal_round_exhausted_ = false;
        for (const ProbeMsg& probe : response.probes) {
          Entry entry;
          entry.is_probe = true;
          entry.probe = probe;
          queue_.push_back(entry);
        }
      } else if (steal_victims_.empty()) {
        // Round over with nothing stolen: stay idle until new work appears
        // ("whenever a server is out of tasks" is one bounded round, §3.6).
        steal_round_exhausted_ = true;
      }
      Advance(lock);
      break;
    }
    default:
      HAWK_CHECK(false) << "node monitor got unexpected message type " << message.type;
  }
}

void NodeMonitor::Advance(std::unique_lock<std::mutex>& lock) {
  (void)lock;
  if (state_ != State::kIdle) {
    return;
  }
  if (queue_.empty()) {
    if (config_.stealing_enabled && config_.steal_cap > 0) {
      TryStealLocked();
    }
    return;
  }
  const Entry entry = queue_.front();
  queue_.pop_front();
  if (entry.is_probe) {
    // Late binding: ask the owning frontend for a task; kTaskGrant or
    // kTaskCancel moves the state machine on.
    state_ = State::kRequesting;
    current_is_long_ = false;  // Probes carry short work in the prototype.
    JobRefMsg request;
    request.job = entry.probe.job;
    request.sender = address_;
    bus_->Send(address_, entry.probe.frontend, kTaskRequest, request.Encode());
    return;
  }
  state_ = State::kExecuting;
  current_is_long_ = entry.task.is_long;
  exec_task_ = entry.task;
  has_exec_task_ = true;
  if (entry.task.is_long) {
    JobRefMsg started;
    started.job = entry.task.job;
    started.sender = address_;
    bus_->Send(address_, entry.task.owner, kTaskStarted, started.Encode());
  }
  exec_cv_.notify_all();
}

void NodeMonitor::TryStealLocked() {
  if (steal_in_flight_ || steal_round_exhausted_) {
    return;
  }
  if (steal_victims_.empty()) {
    // Start a new round: pick up to `cap` distinct random general-partition
    // victims (excluding ourselves).
    const uint32_t pool =
        address_ < config_.general_count ? config_.general_count - 1 : config_.general_count;
    if (pool == 0) {
      return;
    }
    const uint32_t contacts = std::min(config_.steal_cap, pool);
    for (const uint32_t pick : rng_.SampleWithoutReplacement(pool, contacts)) {
      const rpc::Address victim =
          (address_ < config_.general_count && pick >= address_) ? pick + 1 : pick;
      steal_victims_.push_back(victim);
    }
    steals_attempted_.fetch_add(1, std::memory_order_relaxed);
  }
  const rpc::Address victim = steal_victims_.back();
  steal_victims_.pop_back();
  steal_in_flight_ = true;
  StealRequestMsg request;
  request.thief = address_;
  bus_->Send(address_, victim, kStealRequest, request.Encode());
}

std::vector<ProbeMsg> NodeMonitor::ExtractStealableLocked() {
  // Mirror of Worker::ExtractStealableGroup (Fig. 3): first consecutive group
  // of short entries (probes) following a long entry in [current, queue...].
  std::vector<ProbeMsg> stolen;
  bool seen_long = state_ != State::kIdle && current_is_long_;
  size_t begin = queue_.size();
  for (size_t i = 0; i < queue_.size(); ++i) {
    const bool is_long = !queue_[i].is_probe && queue_[i].task.is_long;
    if (is_long) {
      seen_long = true;
      continue;
    }
    if (seen_long) {
      begin = i;
      break;
    }
  }
  size_t end = begin;
  while (end < queue_.size() && queue_[end].is_probe) {
    ++end;
  }
  for (size_t i = begin; i < end; ++i) {
    stolen.push_back(queue_[i].probe);
  }
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(begin),
               queue_.begin() + static_cast<std::ptrdiff_t>(end));
  return stolen;
}

void NodeMonitor::ExecutorLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    exec_cv_.wait(lock, [this] { return stopping_ || has_exec_task_; });
    if (stopping_) {
      return;
    }
    const TaskMsg task = exec_task_;
    has_exec_task_ = false;
    executing_.store(true, std::memory_order_relaxed);
    lock.unlock();

    // The paper's prototype runs sleep tasks whose durations are the scaled
    // trace durations.
    std::this_thread::sleep_for(std::chrono::microseconds(task.duration_us));

    busy_us_.fetch_add(task.duration_us, std::memory_order_relaxed);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    executing_.store(false, std::memory_order_relaxed);

    TaskMsg done = task;
    bus_->Send(address_, task.owner, kTaskDone, done.Encode());

    lock.lock();
    if (stopping_) {
      return;
    }
    HAWK_CHECK(state_ == State::kExecuting);
    state_ = State::kIdle;
    Advance(lock);
  }
}

}  // namespace runtime
}  // namespace hawk
