#include "src/runtime/node_monitor.h"

#include <algorithm>
#include <chrono>

#include "src/common/check.h"
#include "src/runtime/failure_detector.h"

namespace hawk {
namespace runtime {

using Clock = std::chrono::steady_clock;

namespace {

// Capacity lookup for the constructor's init list; checks the layout exists
// before anything dereferences it.
uint32_t SlotsOf(const NodeMonitorConfig& config, rpc::Address address) {
  HAWK_CHECK(config.layout != nullptr);
  HAWK_CHECK_LT(address, config.layout->NumWorkers());
  return config.layout->workers().Slots(address);
}

}  // namespace

NodeMonitor::NodeMonitor(rpc::Address address, const NodeMonitorConfig& config,
                         rpc::MessageBus* bus, uint64_t seed)
    : address_(address),
      config_(config),
      bus_(bus),
      stealing_(config.steal_cap, seed, config.victim_selection),
      straggler_rng_(seed ^ 0x57A66E7ULL),
      capacity_(SlotsOf(config, address)),
      free_slots_(capacity_) {
  HAWK_CHECK(bus != nullptr);
}

NodeMonitor::~NodeMonitor() { Stop(); }

void NodeMonitor::Start() {
  bus_->Register(address_, [this](const rpc::BusMessage& m) { HandleMessage(m); });
  executor_ = std::thread([this] { ExecutorLoop(); });
}

void NodeMonitor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
  }
  exec_cv_.notify_all();
  if (executor_.joinable()) {
    executor_.join();
  }
}

void NodeMonitor::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_ || stopping_) {
    return;
  }
  crashed_ = true;
  // Fail-stop: everything this node held dies with it. The elapsed part of
  // each running task is wasted work — it is charged to busy time too, so
  // cluster busy time keeps meaning "slot-seconds spent running", matching
  // the simulator's accounting (completed work + wasted work).
  const Clock::time_point now = Clock::now();
  while (!running_.empty()) {
    const RunningTask& running = running_.top();
    const auto started = running.deadline - std::chrono::microseconds(running.actual_us);
    const int64_t ran_us = std::max<int64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - started).count(), 0);
    wasted_work_us_.fetch_add(ran_us, std::memory_order_relaxed);
    busy_us_.fetch_add(ran_us, std::memory_order_relaxed);
    running_.pop();
  }
  queue_.clear();
  outstanding_.clear();
  requesting_ = 0;
  occupied_long_ = 0;
  executing_slots_.store(0, std::memory_order_relaxed);
  free_slots_ = capacity_;
  steal_in_flight_ = false;
  steal_victims_.clear();
  next_victim_ = 0;
  steal_round_exhausted_ = false;
}

void NodeMonitor::Rejoin() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!crashed_ || stopping_) {
    return;
  }
  crashed_ = false;
  // Fresh and empty: give it a dispatch pass so it can start stealing.
  Advance();
}

void NodeMonitor::SendHeartbeat() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_ || stopping_) {
      return;  // A dead node is silent — that silence IS the failure signal.
    }
  }
  bus_->Send(address_, kDetectorAddress, kHeartbeat, HeartbeatMsg::From(address_).Encode());
}

void NodeMonitor::HandleMessage(const rpc::BusMessage& message) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_ || crashed_) {
    // A crashed node is silent: probes and placed tasks die here (the
    // schedulers' timeouts recover them), grants and steal traffic vanish.
    return;
  }
  switch (message.type) {
    case kProbe: {
      Entry entry;
      entry.is_probe = true;
      entry.probe = ProbeMsg::Decode(message.payload);
      // The frontend sampled a slot; it must be one of ours (stolen probes
      // bypass this path — they arrive inside kStealResponse).
      HAWK_CHECK_EQ(config_.layout->WorkerOfSlot(entry.probe.slot), address_)
          << "probe for slot " << entry.probe.slot << " misrouted to node " << address_;
      queue_.push_back(entry);
      steal_round_exhausted_ = false;  // New work: future idleness may steal again.
      Advance();
      break;
    }
    case kTaskPlace: {
      Entry entry;
      entry.is_probe = false;
      entry.task = TaskMsg::Decode(message.payload);
      HAWK_CHECK_EQ(config_.layout->WorkerOfSlot(entry.task.slot), address_)
          << "placed task for slot " << entry.task.slot << " misrouted to node " << address_;
      queue_.push_back(entry);
      steal_round_exhausted_ = false;
      Advance();
      break;
    }
    case kTaskGrant: {
      const TaskMsg task = TaskMsg::Decode(message.payload);
      // The request's slot converts directly into the execution slot.
      ResolveRequestLocked(task.job);
      StartTaskLocked(task, /*centrally_placed=*/false);
      break;
    }
    case kTaskCancel: {
      const JobRefMsg cancel = JobRefMsg::Decode(message.payload);
      ResolveRequestLocked(cancel.job);
      Advance();
      break;
    }
    case kStealRequest: {
      const StealRequestMsg request = StealRequestMsg::Decode(message.payload);
      StealResponseMsg response;
      response.probes = ExtractStealableLocked();
      bus_->Send(address_, request.thief, kStealResponse, response.Encode());
      break;
    }
    case kStealResponse: {
      const StealResponseMsg response = StealResponseMsg::Decode(message.payload);
      steal_in_flight_ = false;
      if (!response.probes.empty()) {
        entries_stolen_.fetch_add(response.probes.size(), std::memory_order_relaxed);
        // Round succeeded; stop contacting victims.
        steal_victims_.clear();
        next_victim_ = 0;
        steal_round_exhausted_ = false;
        for (const ProbeMsg& probe : response.probes) {
          Entry entry;
          entry.is_probe = true;
          entry.probe = probe;
          queue_.push_back(entry);
        }
      } else if (next_victim_ >= steal_victims_.size()) {
        // Round over with nothing stolen: stay idle until new work appears
        // ("whenever a server is out of tasks" is one bounded round, §3.6).
        steal_round_exhausted_ = true;
      }
      Advance();
      break;
    }
    default:
      HAWK_CHECK(false) << "node monitor got unexpected message type " << message.type;
  }
}

void NodeMonitor::Advance() {
  // Fill free slots from the FIFO queue (the runtime twin of the simulation
  // driver's TryDispatch): a task occupies a slot until its deadline; a
  // probe parks a slot on a late-binding request.
  while (free_slots_ > 0 && !queue_.empty()) {
    const Entry entry = queue_.front();
    queue_.pop_front();
    if (entry.is_probe) {
      --free_slots_;
      ++requesting_;
      if (entry.probe.is_long) {
        ++occupied_long_;
      }
      auto& record = outstanding_[entry.probe.job];
      ++record.first;
      record.second = entry.probe.is_long;
      const JobRefMsg request = JobRefMsg::TaskRequest(entry.probe.job, address_);
      bus_->Send(address_, entry.probe.frontend, kTaskRequest, request.Encode());
      continue;
    }
    StartTaskLocked(entry.task, /*centrally_placed=*/true);
  }
  if (free_slots_ > 0 && queue_.empty() && config_.stealing_enabled &&
      config_.steal_cap > 0) {
    TryStealLocked();
  }
}

void NodeMonitor::StartTaskLocked(const TaskMsg& task, bool centrally_placed) {
  HAWK_CHECK_GT(free_slots_, 0u) << "task start on node " << address_ << " with no free slot";
  --free_slots_;
  executing_slots_.fetch_add(1, std::memory_order_relaxed);
  if (task.is_long) {
    ++occupied_long_;
  }
  // Straggler injection: a stricken start really occupies the slot for the
  // stretched duration — the owning scheduler still believes the nominal
  // one, which is what its speculation/timeout machinery must see through.
  int64_t actual_us = task.duration_us;
  if (config_.straggler_rate > 0.0 && straggler_rng_.Bernoulli(config_.straggler_rate)) {
    actual_us = std::max<int64_t>(
        task.duration_us,
        std::llround(static_cast<double>(task.duration_us) * config_.straggler_slowdown_factor));
  }
  running_.push(RunningTask{Clock::now() + std::chrono::microseconds(actual_us), actual_us, task});
  if (centrally_placed) {
    // §3.7 feedback: the owning (centralized) scheduler re-synchronizes its
    // waiting-time estimate on every start of a task it placed. The echoed
    // slot routes the feedback to the exact lane the backend charged.
    const JobRefMsg started = JobRefMsg::TaskStarted(task.job, address_, task.slot);
    bus_->Send(address_, task.owner, kTaskStarted, started.Encode());
  }
  exec_cv_.notify_all();
}

void NodeMonitor::ResolveRequestLocked(JobId job) {
  HAWK_CHECK_GT(requesting_, 0u) << "request resolution on node " << address_
                                 << " with no request in flight";
  const auto it = outstanding_.find(job);
  HAWK_CHECK(it != outstanding_.end())
      << "request resolution for unknown job " << job << " on node " << address_;
  --requesting_;
  ++free_slots_;
  if (it->second.second) {
    HAWK_CHECK_GT(occupied_long_, 0u);
    --occupied_long_;
  }
  if (--it->second.first == 0) {
    outstanding_.erase(it);
  }
}

void NodeMonitor::TryStealLocked() {
  if (steal_in_flight_ && config_.steal_response_timeout.count() > 0 &&
      Clock::now() > steal_deadline_) {
    // The victim crashed (or its response was lost) after we contacted it;
    // give it up so the round — and all future stealing — is not wedged on
    // a reply that will never come.
    steal_in_flight_ = false;
  }
  if (steal_in_flight_ || steal_round_exhausted_) {
    return;
  }
  if (next_victim_ >= steal_victims_.size()) {
    // Start a new round: the shared StealingPolicy samples up to `cap`
    // distinct general-partition victims from the layout's slot space
    // (capacity-weighted, thief excluded) — the same draw the simulation's
    // policies make.
    stealing_.ChooseVictimsInto(*config_.layout, address_, &steal_victims_);
    next_victim_ = 0;
    if (steal_victims_.empty()) {
      return;
    }
    steals_attempted_.fetch_add(1, std::memory_order_relaxed);
  }
  // Suspected victims are skipped, not contacted-and-timed-out: a steal
  // round pointed at a dead node would stall for the whole response timeout
  // before moving on. Suspicion is advisory — a skipped-but-alive victim is
  // simply sampled again in a later round, once its heartbeats resume. A
  // round whose remaining victims are all suspected counts as exhausted
  // (same as a round of empty responses), so the thief does not re-roll
  // rounds in a tight loop.
  if (config_.detector != nullptr) {
    while (next_victim_ < steal_victims_.size() &&
           config_.detector->Suspected(steal_victims_[next_victim_])) {
      ++next_victim_;
    }
    if (next_victim_ >= steal_victims_.size()) {
      steal_round_exhausted_ = true;
      return;
    }
  }
  const rpc::Address victim = steal_victims_[next_victim_++];
  steal_in_flight_ = true;
  if (config_.steal_response_timeout.count() > 0) {
    steal_deadline_ = Clock::now() + config_.steal_response_timeout;
  }
  bus_->Send(address_, victim, kStealRequest, StealRequestMsg::From(address_).Encode());
}

std::vector<ProbeMsg> NodeMonitor::ExtractStealableLocked() {
  // Mirror of WorkerStore::ExtractStealableGroup (Fig. 3): the first
  // consecutive group of short probes following a long entry in
  // [occupied slots, queue...] order. Occupied long work — executing long
  // tasks or in-flight long probes — counts like a long entry at the head,
  // matching AnyOccupiedLong in the simulation.
  std::vector<ProbeMsg> stolen;
  bool seen_long = occupied_long_ > 0;
  const auto entry_is_long = [](const Entry& entry) {
    return entry.is_probe ? entry.probe.is_long : entry.task.is_long;
  };
  size_t begin = queue_.size();
  for (size_t i = 0; i < queue_.size(); ++i) {
    if (entry_is_long(queue_[i])) {
      seen_long = true;
      continue;
    }
    if (seen_long) {
      begin = i;
      break;
    }
  }
  // Only probes can be relocated over the wire; a concrete task ends the
  // group (concrete short tasks never coexist with stealing under the
  // current shapes, so this matches the simulator's group rule in practice).
  size_t end = begin;
  while (end < queue_.size() && queue_[end].is_probe && !queue_[end].probe.is_long) {
    ++end;
  }
  for (size_t i = begin; i < end; ++i) {
    stolen.push_back(queue_[i].probe);
  }
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(begin),
               queue_.begin() + static_cast<std::ptrdiff_t>(end));
  return stolen;
}

void NodeMonitor::ExecutorLoop() {
  // One thread services every slot: running tasks are sleeps, so the thread
  // tracks their completion deadlines in a min-heap and completes each task
  // as it falls due instead of blocking one thread per slot.
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (running_.empty()) {
      exec_cv_.wait(lock, [this] { return stopping_ || !running_.empty(); });
      continue;
    }
    const Clock::time_point deadline = running_.top().deadline;
    if (Clock::now() < deadline) {
      // Wakes early when a shorter task starts or on shutdown; the loop
      // re-evaluates either way.
      exec_cv_.wait_until(lock, deadline);
      continue;
    }
    const Clock::time_point now = Clock::now();
    while (!running_.empty() && running_.top().deadline <= now) {
      const TaskMsg task = running_.top().task;
      const int64_t actual_us = running_.top().actual_us;
      running_.pop();
      // Busy time is real slot occupancy; a straggler's stretch beyond the
      // nominal duration is occupancy that did no new work — wasted.
      busy_us_.fetch_add(actual_us, std::memory_order_relaxed);
      wasted_work_us_.fetch_add(actual_us - task.duration_us, std::memory_order_relaxed);
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      executing_slots_.fetch_sub(1, std::memory_order_relaxed);
      ++free_slots_;
      if (task.is_long) {
        HAWK_CHECK_GT(occupied_long_, 0u);
        --occupied_long_;
      }
      bus_->Send(address_, task.owner, kTaskDone, task.Encode());
      Advance();
    }
  }
}

}  // namespace runtime
}  // namespace hawk
