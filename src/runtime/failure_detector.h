// Heartbeat-based failure detector for the prototype runtime.
//
// Node monitors emit periodic kHeartbeat messages over the (lossy, jittery)
// MessageBus; the detector builds a per-node suspicion signal purely from
// heartbeat arrival times, in the accrual-detector tradition: each node's
// inter-arrival mean and deviation are tracked with the same Jacobson
// estimator the recovery timeouts use (src/core/adaptive_timeout.h), and a
// node whose silence exceeds its adapted threshold is *suspected* — not
// declared dead. Suspicion is advisory and self-healing: frontends steer
// probes away from suspected nodes and thiefs skip them as steal victims,
// but nothing is reaped on suspicion alone (timeout re-dispatch remains the
// recovery mechanism of record), and the first heartbeat after a rejoin
// clears it.
//
// Bootstrap grace: a node is never suspected before its first heartbeat
// arrives, so a cold start (or a detector started mid-run) cannot condemn
// the whole fleet at once.
#ifndef HAWK_RUNTIME_FAILURE_DETECTOR_H_
#define HAWK_RUNTIME_FAILURE_DETECTOR_H_

#include <atomic>
#include <chrono>
#include <mutex>
#include <vector>

#include "src/core/adaptive_timeout.h"
#include "src/rpc/message_bus.h"

namespace hawk {
namespace runtime {

class FailureDetector {
 public:
  // `expected_interval` is the harness's heartbeat period — the seed for
  // every node's inter-arrival estimate. The suspicion threshold is floored
  // at kMinIntervalsMissed x the interval so ordinary delivery jitter
  // cannot flap a healthy node in and out of suspicion.
  FailureDetector(uint32_t num_nodes, std::chrono::microseconds expected_interval);

  // Registers the kHeartbeat handler at kDetectorAddress. Call before any
  // heartbeat traffic, like every other bus registration.
  void Start(rpc::MessageBus* bus);

  // Whether `node` is currently suspected (silent past its adapted
  // threshold). Thread-safe; called from frontend and monitor threads.
  bool Suspected(rpc::Address node) const;

  // Total alive -> suspected transitions observed so far.
  uint64_t suspicions() const { return suspicions_.load(std::memory_order_relaxed); }

  static constexpr int64_t kMinIntervalsMissed = 3;

 private:
  struct NodeState {
    explicit NodeState(const AdaptiveTimeout& seed) : interval(seed) {}
    AdaptiveTimeout interval;
    std::chrono::steady_clock::time_point last{};
    bool seen = false;
    bool suspected = false;  // Last verdict, for transition counting.
  };

  void OnHeartbeat(rpc::Address node);

  mutable std::mutex mu_;
  mutable std::vector<NodeState> nodes_;
  mutable std::atomic<uint64_t> suspicions_{0};
};

}  // namespace runtime
}  // namespace hawk

#endif  // HAWK_RUNTIME_FAILURE_DETECTOR_H_
