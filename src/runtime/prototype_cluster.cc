#include "src/runtime/prototype_cluster.h"

#include <atomic>
#include <cmath>
#include <thread>
#include <unordered_map>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/runtime/node_monitor.h"
#include "src/runtime/proto_messages.h"
#include "src/runtime/schedulers.h"

namespace hawk {
namespace runtime {
namespace {

using Clock = std::chrono::steady_clock;

bool IsLongJob(const Job& job, const PrototypeConfig& config) {
  if (config.cutoff_us == 0) {
    return job.long_hint;
  }
  return job.AvgTaskDurationUs() >= static_cast<double>(config.cutoff_us);
}

}  // namespace

RunResult RunPrototype(const Trace& trace, const PrototypeConfig& config) {
  HAWK_CHECK_GT(config.num_nodes, 0u);
  HAWK_CHECK_GT(config.num_frontends, 0u);
  const bool hawk_mode = config.mode == PrototypeMode::kHawk;
  const uint32_t general_count =
      hawk_mode ? std::max<uint32_t>(
                      1, config.num_nodes -
                             static_cast<uint32_t>(config.num_nodes *
                                                   config.short_partition_fraction))
                : config.num_nodes;

  rpc::MessageBus bus(config.bus_latency, config.bus_threads);
  CompletionSink sink;
  sink.ExpectJobs(trace.NumJobs());

  // Node monitors (bus addresses 0..num_nodes-1).
  NodeMonitorConfig nm_config;
  nm_config.num_nodes = config.num_nodes;
  nm_config.general_count = general_count;
  nm_config.steal_cap = config.steal_cap;
  nm_config.stealing_enabled = hawk_mode;
  std::vector<std::unique_ptr<NodeMonitor>> monitors;
  monitors.reserve(config.num_nodes);
  Rng seeder(config.seed);
  for (uint32_t n = 0; n < config.num_nodes; ++n) {
    monitors.push_back(std::make_unique<NodeMonitor>(n, nm_config, &bus, seeder.Next()));
  }

  // Distributed frontends; short jobs probe the whole cluster in Hawk mode
  // (§3.5) and in Sparrow mode.
  std::vector<std::unique_ptr<DistributedFrontend>> frontends;
  frontends.reserve(config.num_frontends);
  for (uint32_t f = 0; f < config.num_frontends; ++f) {
    frontends.push_back(std::make_unique<DistributedFrontend>(
        kFrontendBase + f, /*probe_first=*/0, /*probe_count=*/config.num_nodes,
        config.probe_ratio, &bus, &sink, seeder.Next()));
  }

  std::unique_ptr<CentralBackend> backend;
  if (hawk_mode) {
    backend = std::make_unique<CentralBackend>(kBackendAddress, general_count, &bus, &sink);
  }

  for (auto& monitor : monitors) {
    monitor->Start();
  }
  for (auto& frontend : frontends) {
    frontend->Start();
  }
  if (backend != nullptr) {
    backend->Start();
  }

  // Utilization sampler thread (the wall-clock analogue of the simulator's
  // 100 s snapshots).
  std::atomic<bool> sampling{true};
  std::vector<double> utilization_samples;
  std::thread sampler([&] {
    while (sampling.load(std::memory_order_relaxed)) {
      uint32_t executing = 0;
      for (const auto& monitor : monitors) {
        if (monitor->ExecutingNow()) {
          ++executing;
        }
      }
      utilization_samples.push_back(static_cast<double>(executing) /
                                    static_cast<double>(config.num_nodes));
      std::this_thread::sleep_for(config.util_sample_period);
    }
  });

  // Submit jobs in real time following the trace's submission schedule.
  const Clock::time_point start = Clock::now();
  std::unordered_map<JobId, Clock::time_point> submit_times;
  submit_times.reserve(trace.NumJobs());
  std::unordered_map<JobId, bool> is_long_map;
  is_long_map.reserve(trace.NumJobs());
  {
    uint32_t next_frontend = 0;
    for (const Job& job : trace.jobs()) {
      const Clock::time_point due = start + std::chrono::microseconds(job.submit_time);
      std::this_thread::sleep_until(due);
      const bool is_long = IsLongJob(job, config);
      JobSubmitMsg submit;
      submit.job = job.id;
      submit.is_long = is_long;
      submit.estimate_us = static_cast<int64_t>(std::llround(job.AvgTaskDurationUs()));
      submit.task_durations_us.assign(job.task_durations.begin(), job.task_durations.end());
      submit_times.emplace(job.id, Clock::now());
      is_long_map.emplace(job.id, is_long);
      if (is_long && hawk_mode) {
        bus.Send(kBackendAddress, kBackendAddress, kJobSubmit, submit.Encode());
      } else {
        const rpc::Address frontend = kFrontendBase + (next_frontend++ % config.num_frontends);
        bus.Send(frontend, frontend, kJobSubmit, submit.Encode());
      }
    }
  }

  const bool completed = sink.AwaitAll(config.timeout);
  if (!completed) {
    HAWK_LOG(Error) << "prototype run timed out; results are partial";
  }
  bus.Drain();

  sampling.store(false, std::memory_order_relaxed);
  sampler.join();
  for (auto& monitor : monitors) {
    monitor->Stop();
  }
  bus.Shutdown();

  // Assemble a RunResult in the simulator's shape (times relative to start).
  RunResult result;
  result.utilization_samples = std::move(utilization_samples);
  for (const auto& completion : sink.TakeAll()) {
    JobResult job_result;
    job_result.id = completion.job;
    job_result.is_long = is_long_map.at(completion.job);
    const auto submit_at = submit_times.at(completion.job);
    job_result.submit_time =
        std::chrono::duration_cast<std::chrono::microseconds>(submit_at - start).count();
    job_result.finish_time = std::chrono::duration_cast<std::chrono::microseconds>(
                                 completion.finished_at - start)
                                 .count();
    job_result.runtime_us = job_result.finish_time - job_result.submit_time;
    result.makespan_us = std::max(result.makespan_us, job_result.finish_time);
    result.jobs.push_back(job_result);
  }
  std::sort(result.jobs.begin(), result.jobs.end(),
            [](const JobResult& a, const JobResult& b) { return a.id < b.id; });

  result.counters.jobs = result.jobs.size();
  for (const auto& monitor : monitors) {
    result.counters.tasks_launched += monitor->tasks_executed();
    result.counters.steal_attempts += monitor->steals_attempted();
    result.counters.entries_stolen += monitor->entries_stolen();
  }
  result.counters.events = bus.MessagesDelivered();
  return result;
}

}  // namespace runtime
}  // namespace hawk
