#include "src/runtime/prototype_cluster.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/core/job_classifier.h"
#include "src/runtime/failure_detector.h"
#include "src/runtime/node_monitor.h"
#include "src/runtime/proto_messages.h"
#include "src/runtime/schedulers.h"
#include "src/scheduler/registry.h"

namespace hawk {
namespace runtime {
namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

Status PrototypeConfig::Validate() const {
  if (scheduler.empty()) {
    return Status::Error("prototype scheduler name must not be empty");
  }
  const Status hawk_status = hawk.Validate();
  if (!hawk_status.ok()) {
    return hawk_status;
  }
  if (num_frontends == 0) {
    return Status::Error("num_frontends must be nonzero");
  }
  if (bus_threads == 0) {
    return Status::Error("bus_threads must be nonzero");
  }
  if (timeout.count() <= 0) {
    return Status::Error("timeout must be positive");
  }
  if (fault_detection_timeout.count() <= 0) {
    return Status::Error("fault_detection_timeout must be positive");
  }
  if (reap_period.count() <= 0) {
    return Status::Error("reap_period must be positive");
  }
  if (heartbeat_period.count() <= 0) {
    return Status::Error("heartbeat_period must be positive");
  }
  return Status::Ok();
}

StatusOr<RunResult> RunPrototype(const Trace& trace, const PrototypeConfig& config) {
  const Status valid = config.Validate();
  if (!valid.ok()) {
    return valid;
  }
  // Registry resolution — the same lookup RunExperiment performs, but with a
  // clean Status instead of an abort: prototype configs frequently come from
  // command-line flags.
  const SchedulerRegistry::Entry* entry = SchedulerRegistry::Global().Find(config.scheduler);
  if (entry == nullptr) {
    return Status::Error("unknown scheduler '" + config.scheduler +
                         "'; registered schedulers: " +
                         SchedulerRegistry::Global().JoinedNames());
  }
  const std::unique_ptr<SchedulerPolicy> policy = entry->factory(config.hawk);
  if (policy == nullptr) {
    return Status::Error("scheduler '" + config.scheduler + "' factory returned null");
  }
  // The policy is consulted for its control-plane shape and partition, never
  // attached: the runtime executes the shape with the shared components.
  const RuntimeShape shape = policy->ShapeForRuntime(config.hawk);
  const uint32_t general_count =
      entry->general_count ? entry->general_count(config.hawk) : config.hawk.num_workers;
  const HawkConfig& hawk = config.hawk;

  // The immutable layout every runtime component shares: slot counts per
  // node, the general-partition boundary, and the slot-index space used by
  // probe placement and steal-victim sampling.
  const Cluster layout(hawk.num_workers, general_count, hawk.Slots());
  if (shape.short_probe_span == RuntimeShape::ProbeSpan::kShortPartition &&
      layout.GeneralSlots() == layout.TotalSlots()) {
    return Status::Error("scheduler '" + config.scheduler +
                         "' probes the short partition, but the partition is empty");
  }

  // Fault layer: all axes live in the shared HawkConfig, so a spec sweeps
  // the simulator and the prototype identically. With every axis at zero the
  // runtime is wired exactly as before — no reaper, no fault controller, no
  // bus fault hook, no timeouts armed.
  const bool faults_on = hawk.FaultsEnabled();
  rpc::MessageBus bus(std::chrono::microseconds(hawk.net_delay_us), config.bus_threads);
  if (hawk.message_loss_rate > 0.0 || hawk.message_delay_jitter_us > 0) {
    rpc::MessageBus::FaultInjection wire;
    wire.loss_rate = hawk.message_loss_rate;
    wire.jitter = std::chrono::microseconds(hawk.message_delay_jitter_us);
    wire.seed = Rng(hawk.seed ^ 0xD207B175ULL ^ (hawk.fault_seed * 0x9E3779B97F4A7C15ULL)).Next();
    // Only message types with timeout-based recovery are droppable: probes
    // (re-probed by the frontend watchdog), placements and completions
    // (re-dispatched by the owner's deadline reaper), and heartbeats (the
    // detector tolerates gaps by design — a dropped beat can at worst cause
    // a transient suspicion the next arrival clears). Losing a grant,
    // cancel, or steal message would leak a monitor slot or wedge a
    // protocol round with no recovery path — that models a crashed
    // endpoint, which the crash axis injects properly.
    wire.droppable = [](uint32_t type) {
      return type == kProbe || type == kTaskPlace || type == kTaskDone ||
             type == kHeartbeat;
    };
    bus.EnableFaults(wire);
  }
  CompletionSink sink;
  {
    std::vector<JobId> ids;
    ids.reserve(trace.NumJobs());
    for (const Job& job : trace.jobs()) {
      ids.push_back(job.id);
    }
    sink.ExpectJobs(ids);
  }

  // Heartbeat failure detector — only spun up when a fault axis is active,
  // so fault-free runs carry no heartbeat traffic and match pre-fault
  // message counts exactly. Registered on the bus before any node monitor
  // starts, like every other endpoint.
  std::unique_ptr<FailureDetector> detector;
  if (faults_on) {
    detector = std::make_unique<FailureDetector>(
        hawk.num_workers,
        std::chrono::duration_cast<std::chrono::microseconds>(config.heartbeat_period));
    detector->Start(&bus);
  }

  // Node monitors (bus addresses 0..num_workers-1).
  NodeMonitorConfig nm_config;
  nm_config.layout = &layout;
  nm_config.steal_cap = hawk.steal_cap;
  nm_config.stealing_enabled = shape.stealing && hawk.steal_cap > 0;
  nm_config.victim_selection = shape.victim_selection;
  nm_config.straggler_rate = hawk.straggler_rate;
  nm_config.straggler_slowdown_factor = hawk.straggler_slowdown_factor;
  nm_config.detector = detector.get();
  if (faults_on) {
    nm_config.steal_response_timeout =
        std::chrono::duration_cast<std::chrono::microseconds>(config.fault_detection_timeout);
  }
  std::vector<std::unique_ptr<NodeMonitor>> monitors;
  monitors.reserve(hawk.num_workers);
  Rng seeder(hawk.seed);
  for (uint32_t n = 0; n < hawk.num_workers; ++n) {
    monitors.push_back(std::make_unique<NodeMonitor>(n, nm_config, &bus, seeder.Next()));
  }

  FaultRecoveryPolicy recovery;
  recovery.enabled = faults_on;
  recovery.detection_timeout =
      std::chrono::duration_cast<std::chrono::microseconds>(config.fault_detection_timeout);
  recovery.retry_budget = hawk.retry_budget;
  // The policy decides the effective threshold (the "hawk-spec" variant is
  // default-on), exactly as the simulation driver asks it.
  recovery.speculation_threshold = policy->SpeculationThreshold(hawk);

  // Distributed frontends, probing the spans the policy shape declares.
  std::vector<std::unique_ptr<DistributedFrontend>> frontends;
  frontends.reserve(config.num_frontends);
  for (uint32_t f = 0; f < config.num_frontends; ++f) {
    frontends.push_back(std::make_unique<DistributedFrontend>(kFrontendBase + f, &layout, shape,
                                                              hawk.probe_ratio, recovery, &bus,
                                                              &sink, seeder.Next(),
                                                              detector.get()));
  }

  std::unique_ptr<CentralBackend> backend;
  if (shape.centralized_long || shape.centralized_short) {
    backend = std::make_unique<CentralBackend>(kBackendAddress, &layout, recovery, &bus, &sink);
  }

  for (auto& monitor : monitors) {
    monitor->Start();
  }
  for (auto& frontend : frontends) {
    frontend->Start();
  }
  if (backend != nullptr) {
    backend->Start();
  }

  // Utilization sampler thread (the wall-clock analogue of the simulator's
  // periodic snapshots): executing slots over total slots, like
  // Cluster::Utilization. The inter-sample wait is interruptible so a
  // period longer than the run (e.g. a spec carrying the simulator's 100 s
  // default) cannot stall teardown until the next tick.
  std::mutex sampler_mu;
  std::condition_variable sampler_cv;
  bool sampling = true;
  std::vector<double> utilization_samples;
  std::thread sampler([&] {
    const auto period = std::chrono::microseconds(hawk.util_sample_period_us);
    std::unique_lock<std::mutex> lock(sampler_mu);
    while (sampling) {
      lock.unlock();
      uint64_t executing = 0;
      for (const auto& monitor : monitors) {
        executing += monitor->ExecutingSlots();
      }
      utilization_samples.push_back(static_cast<double>(executing) /
                                    static_cast<double>(layout.TotalSlots()));
      lock.lock();
      sampler_cv.wait_for(lock, period, [&] { return !sampling; });
    }
  });

  // Fault controller: a Poisson process of real fail-stop crashes (the
  // runtime analogue of the simulator's kCrashTick), with each victim
  // rejoining empty after the configured downtime. The RNG derivation
  // matches the simulator's, so fault_seed re-rolls faults here too without
  // touching scheduling seeds.
  std::mutex fault_mu;
  std::condition_variable fault_cv;
  bool fault_stop = false;
  uint64_t worker_crashes = 0;
  uint64_t worker_rejoins = 0;
  std::thread fault_controller;
  if (hawk.worker_crash_rate > 0.0) {
    fault_controller = std::thread([&] {
      Rng rng(Rng(hawk.seed ^ 0x8BADF00DDEADBEEFULL ^
                  (hawk.fault_seed * 0x9E3779B97F4A7C15ULL))
                  .Next());
      const double mean_us = 1e6 / (hawk.worker_crash_rate * hawk.num_workers);
      const auto draw_wait = [&rng, mean_us] {
        return std::chrono::microseconds(
            std::max<int64_t>(std::llround(rng.Exponential(mean_us)), 1));
      };
      std::vector<std::pair<Clock::time_point, WorkerId>> rejoins;
      Clock::time_point next_crash = Clock::now() + draw_wait();
      std::unique_lock<std::mutex> lock(fault_mu);
      while (!fault_stop) {
        Clock::time_point next = next_crash;
        for (const auto& rejoin : rejoins) {
          next = std::min(next, rejoin.first);
        }
        fault_cv.wait_until(lock, next, [&] { return fault_stop; });
        if (fault_stop) {
          break;
        }
        const Clock::time_point now = Clock::now();
        for (auto it = rejoins.begin(); it != rejoins.end();) {
          if (it->first <= now) {
            monitors[it->second]->Rejoin();
            ++worker_rejoins;
            it = rejoins.erase(it);
          } else {
            ++it;
          }
        }
        if (now >= next_crash) {
          const auto victim = static_cast<WorkerId>(rng.UniformInt(0, hawk.num_workers - 1));
          const bool down = std::any_of(rejoins.begin(), rejoins.end(),
                                        [victim](const auto& r) { return r.second == victim; });
          if (!down) {
            monitors[victim]->Crash();
            ++worker_crashes;
            rejoins.emplace_back(now + std::chrono::microseconds(hawk.worker_downtime_us),
                                 victim);
          }
          next_crash = now + draw_wait();
        }
      }
    });
  }

  // Heartbeat pump: one harness thread beats every live monitor each period
  // (a per-monitor thread would be num_workers threads for a strictly
  // periodic send). Crashed monitors stay silent inside SendHeartbeat — the
  // silence is the detector's signal.
  std::mutex hb_mu;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  std::thread heartbeat_pump;
  if (detector != nullptr) {
    heartbeat_pump = std::thread([&] {
      std::unique_lock<std::mutex> lock(hb_mu);
      while (!hb_stop) {
        lock.unlock();
        for (auto& monitor : monitors) {
          monitor->SendHeartbeat();
        }
        lock.lock();
        hb_cv.wait_for(lock, config.heartbeat_period, [&] { return hb_stop; });
      }
    });
  }

  // Reaper: periodically lets each scheduler re-dispatch work it presumes
  // dead (and, when speculation is armed, clone stragglers). This is the
  // prototype's whole recovery engine — without it a crash or drop strands
  // its tasks forever.
  std::mutex reap_mu;
  std::condition_variable reap_cv;
  bool reap_stop = false;
  std::thread reaper;
  if (faults_on || recovery.SpeculationOn()) {
    reaper = std::thread([&] {
      std::unique_lock<std::mutex> lock(reap_mu);
      while (!reap_stop) {
        reap_cv.wait_for(lock, config.reap_period, [&] { return reap_stop; });
        if (reap_stop) {
          break;
        }
        lock.unlock();
        for (auto& frontend : frontends) {
          frontend->ReapOverdue();
        }
        if (backend != nullptr) {
          backend->ReapOverdue();
        }
        lock.lock();
      }
    });
  }

  // Shared classification (§3.3): the same classifier, cutoff and noise
  // stream the simulation driver would construct for this config.
  JobClassifier classifier(hawk.classify_mode, hawk.cutoff_us, hawk.estimate_noise_lo,
                           hawk.estimate_noise_hi, Rng(hawk.seed).Next());

  // Submit jobs in real time following the trace's submission schedule.
  const Clock::time_point start = Clock::now();
  std::unordered_map<JobId, Clock::time_point> submit_times;
  submit_times.reserve(trace.NumJobs());
  std::unordered_map<JobId, bool> is_long_map;
  is_long_map.reserve(trace.NumJobs());
  {
    uint32_t next_frontend = 0;
    for (const Job& job : trace.jobs()) {
      const Clock::time_point due = start + std::chrono::microseconds(job.submit_time);
      std::this_thread::sleep_until(due);
      const JobClass cls = classifier.Classify(job);
      const JobSubmitMsg submit = JobSubmitMsg::Make(
          job.id, cls.is_long_sched, std::llround(std::max(0.0, cls.estimate_us)),
          {job.task_durations.begin(), job.task_durations.end()});
      submit_times.emplace(job.id, Clock::now());
      is_long_map.emplace(job.id, cls.is_long_metrics);
      const bool to_backend =
          cls.is_long_sched ? shape.centralized_long : shape.centralized_short;
      if (to_backend) {
        bus.Send(kBackendAddress, kBackendAddress, kJobSubmit, submit.Encode());
      } else {
        const rpc::Address frontend = kFrontendBase + (next_frontend++ % config.num_frontends);
        bus.Send(frontend, frontend, kJobSubmit, submit.Encode());
      }
    }
  }

  // On timeout the sink lists the stuck jobs; the progress callback enriches
  // each with how far its owner got (done/total tasks) — the difference
  // between "never scheduled" and "one task wedged" when triaging a hang.
  const auto progress = [&](JobId job) -> std::string {
    uint32_t done = 0;
    uint32_t total = 0;
    for (const auto& frontend : frontends) {
      if (frontend->JobProgress(job, &done, &total)) {
        return " (" + std::to_string(done) + "/" + std::to_string(total) + " tasks done)";
      }
    }
    if (backend != nullptr && backend->JobProgress(job, &done, &total)) {
      return " (" + std::to_string(done) + "/" + std::to_string(total) + " tasks done)";
    }
    return " (owner already retired it)";
  };
  const Status completed = sink.AwaitAll(config.timeout, progress);
  if (!completed.ok()) {
    HAWK_LOG(Error) << completed.message() << "; results are partial";
  }
  // Stop the fault machinery before draining: the reaper sends on the bus,
  // so it must be gone before the bus winds down.
  if (fault_controller.joinable()) {
    {
      std::lock_guard<std::mutex> lock(fault_mu);
      fault_stop = true;
    }
    fault_cv.notify_all();
    fault_controller.join();
  }
  if (reaper.joinable()) {
    {
      std::lock_guard<std::mutex> lock(reap_mu);
      reap_stop = true;
    }
    reap_cv.notify_all();
    reaper.join();
  }
  if (heartbeat_pump.joinable()) {
    {
      std::lock_guard<std::mutex> lock(hb_mu);
      hb_stop = true;
    }
    hb_cv.notify_all();
    heartbeat_pump.join();
  }
  bus.Drain();

  {
    std::lock_guard<std::mutex> lock(sampler_mu);
    sampling = false;
  }
  sampler_cv.notify_all();
  sampler.join();
  for (auto& monitor : monitors) {
    monitor->Stop();
  }
  bus.Shutdown();

  // Assemble a RunResult in the simulator's shape (times relative to start).
  RunResult result;
  result.utilization_samples = std::move(utilization_samples);
  for (const auto& completion : sink.TakeAll()) {
    JobResult job_result;
    job_result.id = completion.job;
    job_result.is_long = is_long_map.at(completion.job);
    const auto submit_at = submit_times.at(completion.job);
    job_result.submit_time =
        std::chrono::duration_cast<std::chrono::microseconds>(submit_at - start).count();
    job_result.finish_time = std::chrono::duration_cast<std::chrono::microseconds>(
                                 completion.finished_at - start)
                                 .count();
    job_result.runtime_us = job_result.finish_time - job_result.submit_time;
    result.makespan_us = std::max(result.makespan_us, job_result.finish_time);
    result.jobs.push_back(job_result);
  }
  std::sort(result.jobs.begin(), result.jobs.end(),
            [](const JobResult& a, const JobResult& b) { return a.id < b.id; });

  result.counters.jobs = result.jobs.size();
  for (const auto& monitor : monitors) {
    result.counters.tasks_launched += monitor->tasks_executed();
    result.counters.steal_attempts += monitor->steals_attempted();
    result.counters.entries_stolen += monitor->entries_stolen();
    result.counters.wasted_work_us += static_cast<uint64_t>(monitor->wasted_work_us());
  }
  result.counters.events = bus.MessagesDelivered();
  // Fault counters, with the same meanings as the simulator's: parity lets
  // bench_ablation_faults print one table over both executors.
  result.counters.worker_crashes = worker_crashes;
  result.counters.worker_rejoins = worker_rejoins;
  result.counters.messages_dropped = bus.MessagesDropped();
  result.counters.duplicate_completions = sink.duplicates();
  for (const auto& frontend : frontends) {
    result.counters.tasks_re_dispatched += frontend->tasks_re_dispatched();
    result.counters.probes_lost += frontend->probes_re_sent();
    result.counters.duplicate_completions += frontend->duplicate_completions();
    result.counters.tasks_speculated += frontend->tasks_speculated();
    result.counters.speculative_wasted_us += frontend->speculative_wasted_us();
    result.counters.retries_suppressed += frontend->retries_suppressed();
    result.counters.tasks_abandoned += frontend->tasks_abandoned();
  }
  if (backend != nullptr) {
    result.counters.tasks_re_dispatched += backend->tasks_re_dispatched();
    result.counters.duplicate_completions += backend->duplicate_completions();
    result.counters.retries_suppressed += backend->retries_suppressed();
    result.counters.tasks_abandoned += backend->tasks_abandoned();
  }
  if (detector != nullptr) {
    result.counters.node_suspicions = detector->suspicions();
  }
  result.total_busy_us = 0;
  for (const auto& monitor : monitors) {
    result.total_busy_us += monitor->busy_us();
  }
  return result;
}

StatusOr<RunResult> RunPrototype(const ExperimentSpec& spec, const PrototypeConfig& runtime) {
  if (spec.trace == nullptr) {
    return Status::Error("prototype experiment '" + spec.Label() + "' has no trace");
  }
  PrototypeConfig config = runtime;
  config.scheduler = spec.scheduler;
  config.hawk = spec.config;
  // The sampler period is a wall-clock knob and stays with `runtime`: a
  // spec tuned for the simulator typically carries the 100 s sim-time
  // default, which on the wall clock would mean one utilization sample per
  // run and a silently-zero median utilization.
  config.hawk.util_sample_period_us = runtime.hawk.util_sample_period_us;
  return RunPrototype(*spec.trace, config);
}

StatusOr<std::vector<SweepRun>> RunPrototypeSweep(const SweepSpec& sweep,
                                                  const PrototypeConfig& runtime) {
  std::vector<SweepRun> runs;
  std::vector<ExperimentSpec> specs = sweep.Expand();
  runs.reserve(specs.size());
  for (ExperimentSpec& spec : specs) {
    StatusOr<RunResult> result = RunPrototype(spec, runtime);
    if (!result.ok()) {
      return Status::Error("prototype sweep point '" + spec.Label() +
                           "' failed: " + result.status().message());
    }
    runs.push_back(SweepRun{std::move(spec), std::move(result.value())});
  }
  return runs;
}

}  // namespace runtime
}  // namespace hawk
