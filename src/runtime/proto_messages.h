// Wire messages for the prototype runtime (paper §3.8).
//
// The prototype's node monitors and schedulers communicate exclusively
// through serialized messages on the rpc::MessageBus, mirroring the paper's
// Thrift RPC between Sparrow node monitors. Each struct has Encode/Decode
// against src/rpc/serializer.h.
#ifndef HAWK_RUNTIME_PROTO_MESSAGES_H_
#define HAWK_RUNTIME_PROTO_MESSAGES_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/types.h"
#include "src/rpc/message_bus.h"
#include "src/rpc/serializer.h"

namespace hawk {
namespace runtime {

enum MessageType : uint32_t {
  kJobSubmit = 1,     // submitter -> frontend/backend: a job with task durations
  kProbe = 2,         // frontend -> node monitor: enqueue a reservation
  kTaskRequest = 3,   // node monitor -> frontend: probe reached queue head
  kTaskGrant = 4,     // frontend -> node monitor: run this task
  kTaskCancel = 5,    // frontend -> node monitor: job has no tasks left
  kTaskPlace = 6,     // backend -> node monitor: enqueue a concrete (long) task
  kTaskStarted = 7,   // node monitor -> backend: long task began executing
  kTaskDone = 8,      // node monitor -> owner scheduler: task finished
  kStealRequest = 9,  // node monitor -> node monitor: try to steal short work
  kStealResponse = 10,  // victim -> thief: stolen probes (possibly none)
  kHeartbeat = 11  // node monitor -> failure detector: still alive
};

// Construction convention (hawk-lint rule HL001, mirroring the SimEvent
// fix): every message below is built through a named factory that assigns
// fields by name, never through positional brace-init — a reordered or
// added field then cannot silently land in the wrong slot. The factories
// are the only sanctioned senders' constructors; Decode/ReadFrom remain the
// receivers' path.
struct JobSubmitMsg {
  JobId job = 0;
  bool is_long = false;
  int64_t estimate_us = 0;
  std::vector<int64_t> task_durations_us;

  static JobSubmitMsg Make(JobId job, bool is_long, int64_t estimate_us,
                           std::vector<int64_t> task_durations_us) {
    JobSubmitMsg m;
    m.job = job;
    m.is_long = is_long;
    m.estimate_us = estimate_us;
    m.task_durations_us = std::move(task_durations_us);
    return m;
  }

  std::vector<uint8_t> Encode() const {
    rpc::Writer w;
    w.WriteU32(job);
    w.WriteBool(is_long);
    w.WriteI64(estimate_us);
    w.WriteI64Vector(task_durations_us);
    return w.Take();
  }
  static JobSubmitMsg Decode(const std::vector<uint8_t>& buf) {
    rpc::Reader r(buf);
    JobSubmitMsg m;
    m.job = r.ReadU32();
    m.is_long = r.ReadBool();
    m.estimate_us = r.ReadI64();
    m.task_durations_us = r.ReadI64Vector();
    return m;
  }
};

// kProbe. Also the unit stolen between node monitors: a probe retains its
// owning frontend so the thief's task request goes to the right scheduler.
// `slot` is the global slot index the frontend sampled (multi-slot capacity
// weighting; the receiving monitor validates it owns the slot); `is_long`
// is the probed job's scheduling class — node monitors need it for steal
// screening, since long probes block a queue like long tasks do (§3.6).
struct ProbeMsg {
  JobId job = 0;
  rpc::Address frontend = 0;
  uint32_t slot = 0;
  bool is_long = false;

  static ProbeMsg Make(JobId job, rpc::Address frontend, uint32_t slot, bool is_long) {
    ProbeMsg m;
    m.job = job;
    m.frontend = frontend;
    m.slot = slot;
    m.is_long = is_long;
    return m;
  }

  // The field layout lives in WriteTo/ReadFrom only; Encode/Decode and the
  // steal-response batch framing below all delegate, so a new field cannot
  // silently miss one of the copies and misalign the wire.
  void WriteTo(rpc::Writer& w) const {
    w.WriteU32(job);
    w.WriteU32(frontend);
    w.WriteU32(slot);
    w.WriteBool(is_long);
  }
  static ProbeMsg ReadFrom(rpc::Reader& r) {
    ProbeMsg m;
    m.job = r.ReadU32();
    m.frontend = r.ReadU32();
    m.slot = r.ReadU32();
    m.is_long = r.ReadBool();
    return m;
  }

  std::vector<uint8_t> Encode() const {
    rpc::Writer w;
    WriteTo(w);
    return w.Take();
  }
  static ProbeMsg Decode(const std::vector<uint8_t>& buf) {
    rpc::Reader r(buf);
    return ReadFrom(r);
  }
};

// kTaskRequest / kTaskStarted / kTaskCancel: job + the sender's address.
// For kTaskStarted, `slot` echoes the lane the backend charged at placement
// (TaskMsg::slot), so the waiting-time feedback is routed to the exact lane
// regardless of bus delivery order; unused (0) for the other types.
struct JobRefMsg {
  JobId job = 0;
  rpc::Address sender = 0;
  uint32_t slot = 0;

  // One named constructor per message role the struct carries.
  static JobRefMsg TaskRequest(JobId job, rpc::Address sender) {
    JobRefMsg m;
    m.job = job;
    m.sender = sender;
    return m;
  }
  static JobRefMsg TaskCancel(JobId job, rpc::Address sender) {
    JobRefMsg m;
    m.job = job;
    m.sender = sender;
    return m;
  }
  static JobRefMsg TaskStarted(JobId job, rpc::Address sender, uint32_t slot) {
    JobRefMsg m;
    m.job = job;
    m.sender = sender;
    m.slot = slot;
    return m;
  }

  std::vector<uint8_t> Encode() const {
    rpc::Writer w;
    w.WriteU32(job);
    w.WriteU32(sender);
    w.WriteU32(slot);
    return w.Take();
  }
  static JobRefMsg Decode(const std::vector<uint8_t>& buf) {
    rpc::Reader r(buf);
    JobRefMsg m;
    m.job = r.ReadU32();
    m.sender = r.ReadU32();
    m.slot = r.ReadU32();
    return m;
  }
};

// kTaskGrant / kTaskPlace / kTaskDone. For kTaskPlace, `slot` is the global
// slot index (§3.7 lane) the backend's waiting-time queue charged — the
// receiving monitor validates it owns the slot. Grants and completions have
// no slot affinity (the monitor's slots share one FIFO queue) and leave it 0.
struct TaskMsg {
  JobId job = 0;
  TaskIndex task_index = 0;
  int64_t duration_us = 0;
  bool is_long = false;
  rpc::Address owner = 0;  // Scheduler to notify on completion.
  uint32_t slot = 0;

  // kTaskGrant: late-binding grant from a distributed frontend; the
  // monitor's slots share one FIFO queue, so there is no slot affinity.
  static TaskMsg Grant(JobId job, TaskIndex task_index, int64_t duration_us, bool is_long,
                       rpc::Address owner) {
    TaskMsg m;
    m.job = job;
    m.task_index = task_index;
    m.duration_us = duration_us;
    m.is_long = is_long;
    m.owner = owner;
    return m;
  }
  // kTaskPlace: direct placement by the centralized backend into the §3.7
  // lane (`slot`) its waiting-time queue charged.
  static TaskMsg Place(JobId job, TaskIndex task_index, int64_t duration_us, bool is_long,
                       rpc::Address owner, uint32_t slot) {
    TaskMsg m = Grant(job, task_index, duration_us, is_long, owner);
    m.slot = slot;
    return m;
  }

  std::vector<uint8_t> Encode() const {
    rpc::Writer w;
    w.WriteU32(job);
    w.WriteU32(task_index);
    w.WriteI64(duration_us);
    w.WriteBool(is_long);
    w.WriteU32(owner);
    w.WriteU32(slot);
    return w.Take();
  }
  static TaskMsg Decode(const std::vector<uint8_t>& buf) {
    rpc::Reader r(buf);
    TaskMsg m;
    m.job = r.ReadU32();
    m.task_index = r.ReadU32();
    m.duration_us = r.ReadI64();
    m.is_long = r.ReadBool();
    m.owner = r.ReadU32();
    m.slot = r.ReadU32();
    return m;
  }
};

// kStealRequest: thief's address. kStealResponse: batch of stolen probes.
struct StealRequestMsg {
  rpc::Address thief = 0;

  static StealRequestMsg From(rpc::Address thief) {
    StealRequestMsg m;
    m.thief = thief;
    return m;
  }

  std::vector<uint8_t> Encode() const {
    rpc::Writer w;
    w.WriteU32(thief);
    return w.Take();
  }
  static StealRequestMsg Decode(const std::vector<uint8_t>& buf) {
    rpc::Reader r(buf);
    StealRequestMsg m;
    m.thief = r.ReadU32();
    return m;
  }
};

struct StealResponseMsg {
  std::vector<ProbeMsg> probes;

  std::vector<uint8_t> Encode() const {
    rpc::Writer w;
    w.WriteU32(static_cast<uint32_t>(probes.size()));
    for (const ProbeMsg& p : probes) {
      p.WriteTo(w);
    }
    return w.Take();
  }
  static StealResponseMsg Decode(const std::vector<uint8_t>& buf) {
    rpc::Reader r(buf);
    StealResponseMsg m;
    const uint32_t count = r.ReadU32();
    m.probes.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      m.probes.push_back(ProbeMsg::ReadFrom(r));
    }
    return m;
  }
};

// kHeartbeat: the sending node. Deliberately minimal — the detector's
// suspicion state is built entirely from arrival times, not payload.
struct HeartbeatMsg {
  rpc::Address node = 0;

  static HeartbeatMsg From(rpc::Address node) {
    HeartbeatMsg m;
    m.node = node;
    return m;
  }

  std::vector<uint8_t> Encode() const {
    rpc::Writer w;
    w.WriteU32(node);
    return w.Take();
  }
  static HeartbeatMsg Decode(const std::vector<uint8_t>& buf) {
    rpc::Reader r(buf);
    HeartbeatMsg m;
    m.node = r.ReadU32();
    return m;
  }
};

// Address plan: node monitors get [0, num_nodes), frontends get
// kFrontendBase + i, the backend gets kBackendAddress, the failure detector
// gets kDetectorAddress.
inline constexpr rpc::Address kFrontendBase = 1'000'000;
inline constexpr rpc::Address kBackendAddress = 2'000'000;
inline constexpr rpc::Address kDetectorAddress = 3'000'000;

}  // namespace runtime
}  // namespace hawk

#endif  // HAWK_RUNTIME_PROTO_MESSAGES_H_
