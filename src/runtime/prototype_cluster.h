// The prototype cluster harness (paper §4.10): N node monitors, a set of
// distributed scheduler frontends, and (for Hawk) one centralized backend,
// all communicating over the latency-injecting RPC bus. Tasks are sleeps
// whose durations come from a (typically 1000x down-scaled) trace; jobs are
// submitted in real time following the trace's submission times.
//
// This is the in-process equivalent of the paper's 100-node Spark deployment
// with 1 centralized and 10 distributed schedulers: the full scheduling and
// stealing control plane runs with real concurrency and real messaging; only
// the physical network and the Spark executor are replaced (sleep tasks are
// what the paper ran too).
#ifndef HAWK_RUNTIME_PROTOTYPE_CLUSTER_H_
#define HAWK_RUNTIME_PROTOTYPE_CLUSTER_H_

#include <chrono>
#include <memory>
#include <vector>

#include "src/cluster/results.h"
#include "src/workload/trace.h"

namespace hawk {
namespace runtime {

enum class PrototypeMode : uint8_t {
  kSparrow,  // Frontends only; whole cluster; no partition, no stealing.
  kHawk,     // Frontends for short jobs + centralized backend for long jobs,
             // short partition, randomized stealing.
};

struct PrototypeConfig {
  PrototypeMode mode = PrototypeMode::kHawk;
  uint32_t num_nodes = 100;
  uint32_t num_frontends = 10;
  double short_partition_fraction = 0.17;
  DurationUs cutoff_us = 0;  // Jobs with avg task runtime >= cutoff are long.
  uint32_t probe_ratio = 2;
  uint32_t steal_cap = 10;
  // One-way RPC latency injected by the bus (wall clock).
  std::chrono::microseconds bus_latency{500};
  uint32_t bus_threads = 3;
  // Utilization sampling period (wall clock; the scaled analogue of 100 s).
  std::chrono::microseconds util_sample_period{100'000};
  // Hard cap on a run (safety for stuck runs).
  std::chrono::milliseconds timeout{120'000};
  uint64_t seed = 42;
};

// Runs `trace` (already time-scaled to wall-clock-friendly durations) on the
// prototype and returns the same RunResult shape the simulator produces, so
// benches can compare prototype and simulation directly. Job classification
// uses `long_hint` when cutoff_us == 0, otherwise the cutoff.
RunResult RunPrototype(const Trace& trace, const PrototypeConfig& config);

}  // namespace runtime
}  // namespace hawk

#endif  // HAWK_RUNTIME_PROTOTYPE_CLUSTER_H_
