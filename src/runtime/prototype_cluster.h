// The prototype cluster harness (paper §4.10): N node monitors, a set of
// distributed scheduler frontends, and (when the policy's shape asks for
// one) a centralized backend, all communicating over the latency-injecting
// RPC bus. Tasks are sleeps whose durations come from a (typically 1000x
// down-scaled) trace; jobs are submitted in real time following the trace's
// submission times.
//
// This is the in-process equivalent of the paper's 100-node Spark deployment
// with 1 centralized and 10 distributed schedulers: the full scheduling and
// stealing control plane runs with real concurrency and real messaging; only
// the physical network and the Spark executor are replaced (sleep tasks are
// what the paper ran too).
//
// The runtime is registry-driven: a run names a scheduler, the
// SchedulerRegistry resolves it, and the policy's RuntimeShape
// (src/scheduler/policy.h) decides which control-plane pieces exist —
// so any registered scheduler, built-in or external, runs on the prototype
// through the same ExperimentSpec it is simulated with ("impl vs sim" for
// every variant, §4.10). Nodes are multi-slot: the shared HawkConfig's
// slots_per_worker / big_worker_fraction / big_worker_slots shape the fleet
// exactly as they shape the simulated cluster.
#ifndef HAWK_RUNTIME_PROTOTYPE_CLUSTER_H_
#define HAWK_RUNTIME_PROTOTYPE_CLUSTER_H_

#include <chrono>
#include <string>
#include <vector>

#include "src/cluster/results.h"
#include "src/common/status.h"
#include "src/core/hawk_config.h"
#include "src/scheduler/experiment.h"
#include "src/workload/trace.h"

namespace hawk {
namespace runtime {

// One validated config type end to end: everything the simulator also
// understands lives in the embedded HawkConfig (cluster size and slot
// layout, partition fraction, cutoff/classification, probe ratio, steal cap,
// seed); only genuinely wall-clock concerns are runtime fields.
struct PrototypeConfig {
  // Registered scheduler name, resolved through SchedulerRegistry::Global().
  std::string scheduler = "hawk";

  // Shared simulation/runtime parameters. `num_workers` is the node-monitor
  // count; `util_sample_period_us` and `net_delay_us` are interpreted on the
  // wall clock (the prototype's traces are already time-scaled, so simulated
  // microseconds are wall microseconds).
  HawkConfig hawk;

  // The paper deploys 10 distributed schedulers beside the centralized one.
  uint32_t num_frontends = 10;
  uint32_t bus_threads = 3;
  // Hard cap on a run (safety for stuck runs); a timeout logs the jobs still
  // outstanding and returns partial results.
  std::chrono::milliseconds timeout{120'000};

  // Fault recovery (active only when the embedded HawkConfig enables any
  // fault axis): how long past a task's expected completion its scheduler
  // waits before presuming the node dead and re-dispatching, and how often
  // the reaper scans for overdue work. Both are wall-clock; the fault axes
  // themselves (worker_crash_rate, message_loss_rate, ...) live in `hawk` so
  // one spec sweeps the simulator and the prototype identically. The
  // prototype implements crashes and wire faults; worker_churn_rate (a
  // simulator refinement of crashing — graceful drain) is ignored here.
  std::chrono::milliseconds fault_detection_timeout{750};
  std::chrono::milliseconds reap_period{100};
  // How often each live node monitor heartbeats the failure detector (only
  // spun up when a fault axis is active). The detector's suspicion floor is
  // FailureDetector::kMinIntervalsMissed x this period.
  std::chrono::milliseconds heartbeat_period{100};

  PrototypeConfig() {
    // Wall-clock-friendly defaults: the simulator's 0.5 ms delay is already
    // right, but 100 s between utilization samples would outlive most
    // prototype runs — sample every 100 ms instead.
    hawk.util_sample_period_us = 100'000;
  }

  // hawk.Validate() plus the runtime-only checks.
  Status Validate() const;
};

// Runs `trace` (already time-scaled to wall-clock-friendly durations) on the
// prototype and returns the same RunResult shape the simulator produces, so
// benches can compare prototype and simulation directly. An unknown
// scheduler name or invalid config returns an error Status (runtime configs
// often come from flags) instead of aborting.
StatusOr<RunResult> RunPrototype(const Trace& trace, const PrototypeConfig& config);

// Spec-driven entry point: the scheduler name, HawkConfig, and trace come
// from `spec` — the exact spec a simulation of the same run would use — and
// the wall-clock knobs come from `runtime`: its frontend/bus/timeout fields
// plus `runtime.hawk.util_sample_period_us` (the sampler period is a
// wall-clock concern; a spec tuned for the simulator usually carries the
// 100 s sim-time default). The rest of `runtime`'s scheduler/hawk fields
// are ignored. This is what lets one SweepSpec drive both RunSweep (sim)
// and the prototype.
StatusOr<RunResult> RunPrototype(const ExperimentSpec& spec,
                                 const PrototypeConfig& runtime = PrototypeConfig());

// Expands `sweep` and runs every grid point on the prototype, serially —
// wall-clock runs must not share the machine — returning labelled results in
// Expand() order. Stops at the first invalid spec.
StatusOr<std::vector<SweepRun>> RunPrototypeSweep(const SweepSpec& sweep,
                                                  const PrototypeConfig& runtime =
                                                      PrototypeConfig());

}  // namespace runtime
}  // namespace hawk

#endif  // HAWK_RUNTIME_PROTOTYPE_CLUSTER_H_
